package privid_test

import (
	"strings"
	"testing"
	"time"

	"privid"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// quickstart describes: owner registration, analyst code, query,
// noisy releases, budget consumption.
func TestFacadeEndToEnd(t *testing.T) {
	engine := privid.New(privid.Options{Seed: 1, Evaluation: true})
	src := privid.NewSceneCamera("campus", privid.CampusProfile(), 7, time.Hour)
	if err := engine.RegisterCamera(privid.CameraConfig{
		Name:    "campus",
		Source:  src,
		Policy:  privid.Policy{Rho: time.Minute, K: 2},
		Epsilon: 10,
	}); err != nil {
		t.Fatal(err)
	}
	if err := engine.Registry().Register("headcount", func(chunk *privid.Chunk) []privid.Row {
		n := 0
		for _, o := range chunk.Frame(chunk.Len() / 2).Objects {
			if o.EntityID >= 0 {
				n++
			}
		}
		return []privid.Row{{privid.N(float64(n))}}
	}); err != nil {
		t.Fatal(err)
	}
	prog, err := privid.Parse(`
SPLIT campus BEGIN 3-15-2021/6:00am END 3-15-2021/7:00am
  BY TIME 30sec STRIDE 0sec INTO c;
PROCESS c USING headcount TIMEOUT 5sec PRODUCING 1 ROWS
  WITH SCHEMA (n:NUMBER=0) INTO t;
SELECT AVG(range(n, 0, 30)) FROM t CONSUMING 1;`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 1 {
		t.Fatalf("%d releases", len(res.Releases))
	}
	r := res.Releases[0]
	if !r.RawSet {
		t.Fatalf("evaluation mode should expose raw values")
	}
	if r.Raw < 0 || r.Raw > 30 {
		t.Errorf("raw average out of range: %v", r.Raw)
	}
	if r.NoiseScale <= 0 {
		t.Errorf("noise scale = %v", r.NoiseScale)
	}
	if res.EpsilonSpent != 1 {
		t.Errorf("spent = %v", res.EpsilonSpent)
	}
	// The budget ledger must reflect the spend.
	rem, err := engine.Remaining("campus", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rem != 9 {
		t.Errorf("remaining = %v, want 9", rem)
	}
}

func TestFacadeProfilesAndFleet(t *testing.T) {
	if got := len(privid.AllProfiles()); got != 10 {
		t.Errorf("profiles = %d, want 10", got)
	}
	cfg := privid.DefaultTaxiConfig()
	cfg.Days = 3
	cfg.Taxis = 20
	cfg.Cameras = 10
	fleet := privid.NewTaxiFleet(cfg)
	src := fleet.Source(5)
	if !strings.HasPrefix(src.Info().Camera, "porto") {
		t.Errorf("camera name %q", src.Info().Camera)
	}
}

func TestFacadeOwnerTooling(t *testing.T) {
	p := privid.CampusProfile()
	s := privid.GenerateScene(p, 3, 20*time.Minute)
	pm := privid.BuildMaskPolicyMap("campus", s, 2, []float64{1, 4})
	if len(pm.Entries) != 2 {
		t.Fatalf("%d policy entries", len(pm.Entries))
	}
	if pm.Entries[1].Policy.Rho > pm.Entries[0].Policy.Rho {
		t.Errorf("mask ladder rho not decreasing")
	}
	src := privid.NewSceneCamera("campus", p, 3, 20*time.Minute)
	if est := privid.EstimateMaxDuration(src, p, 3); est <= 0 {
		t.Errorf("duration estimate %v", est)
	}
	schemes := privid.SchemesFromProfile(privid.HighwayProfile())
	if _, ok := schemes["directions"]; !ok {
		t.Errorf("highway schemes missing directions: %v", schemes)
	}
}
