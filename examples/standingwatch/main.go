// Standingwatch: a standing (streaming) query — Appendix D's "values
// that depend upon future timestamps will be released as soon as
// possible". A city dashboard subscribes to hourly pedestrian counts;
// Privid releases each hour's noisy count as that hour's video
// elapses, charging each hour's privacy budget exactly once.
package main

import (
	"fmt"
	"log"
	"time"

	"privid"
)

func main() {
	const window = 4 * time.Hour
	engine := privid.New(privid.Options{Seed: 3})
	err := engine.RegisterCamera(privid.CameraConfig{
		Name:    "campus",
		Source:  privid.NewSceneCamera("campus", privid.CampusProfile(), 7, window),
		Policy:  privid.Policy{Rho: time.Minute, K: 2},
		Epsilon: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	err = engine.Registry().Register("headcount", func(chunk *privid.Chunk) []privid.Row {
		n := 0
		for _, o := range chunk.Frame(chunk.Len() / 2).Objects {
			if o.EntityID >= 0 {
				n++
			}
		}
		return []privid.Row{{privid.N(float64(n))}}
	})
	if err != nil {
		log.Fatal(err)
	}

	// The standing query: average concurrent pedestrians per hour over
	// the whole (partly future) window.
	prog, err := privid.Parse(`
SPLIT campus BEGIN 3-15-2021/6:00am END 3-15-2021/10:00am
    BY TIME 30sec STRIDE 0sec INTO c;
PROCESS c USING headcount TIMEOUT 5sec PRODUCING 1 ROWS
    WITH SCHEMA (n:NUMBER=0) INTO t;
SELECT AVG(range(n, 0, 30)) FROM (SELECT range(n,0,30) AS n, bin(chunk, 3600) AS hr FROM t)
    GROUP BY hr CONSUMING 0.5;`)
	if err != nil {
		log.Fatal(err)
	}
	sq, err := engine.Standing(prog)
	if err != nil {
		log.Fatal(err)
	}

	// Simulated wall clock: poll every 30 simulated minutes.
	start := time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC)
	for tick := 1; tick <= 9; tick++ {
		now := start.Add(time.Duration(tick) * 30 * time.Minute)
		res, err := sq.Advance(now)
		if err != nil {
			log.Fatalf("advance at %v: %v", now, err)
		}
		for _, r := range res.Releases {
			fmt.Printf("[%s] released %s = %.1f (eps %.2f)\n",
				now.Format("15:04"), r.Desc, r.Value, r.Epsilon)
		}
		if len(res.Releases) == 0 {
			fmt.Printf("[%s] nothing new (current hour still accumulating)\n", now.Format("15:04"))
		}
	}
	fmt.Printf("total hourly values released: %d\n", sq.Released())

	// The owner's audit trail shows every interaction.
	fmt.Println("audit log:")
	for _, entry := range engine.AuditLog() {
		fmt.Println("  ", entry)
	}
}
