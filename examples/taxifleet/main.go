// Taxifleet: multi-camera aggregation over the Porto-style taxi fleet
// (the paper's Case 2): JOIN for intersection, OUTER JOIN for union,
// and ARGMAX across cameras — all under one privacy guarantee.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"privid"
)

func main() {
	cfg := privid.DefaultTaxiConfig()
	cfg.Days = 14 // two weeks keeps the example quick; the paper uses 365
	fleet := privid.NewTaxiFleet(cfg)

	engine := privid.New(privid.Options{Seed: 5})
	register := func(cam int) {
		name := fmt.Sprintf("porto%d", cam)
		err := engine.RegisterCamera(privid.CameraConfig{
			Name:    name,
			Source:  fleet.Source(cam),
			Policy:  privid.Policy{Rho: 525 * time.Second, K: 2},
			Epsilon: 10,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	cams := []int{10, 19, 20, 21, 27}
	for _, c := range cams {
		register(c)
	}

	// The analyst's model: report the distinct taxis visible in the
	// chunk (taxi roof IDs are large and easily read).
	err := engine.Registry().Register("taxis", func(chunk *privid.Chunk) []privid.Row {
		seen := map[string]bool{}
		var rows []privid.Row
		for f := int64(0); f < chunk.Len(); f++ {
			for _, o := range chunk.Frame(f).Objects {
				if o.Plate != "" && !seen[o.Plate] {
					seen[o.Plate] = true
					rows = append(rows, privid.Row{privid.S(o.Plate)})
				}
			}
		}
		return rows
	})
	if err != nil {
		log.Fatal(err)
	}

	begin := "1-1-2013/12:00am"
	end := "1-15-2013/12:00am"
	splits := func(cams []int) string {
		var b strings.Builder
		for _, c := range cams {
			fmt.Fprintf(&b, `SPLIT porto%d BEGIN %s END %s BY TIME 15sec STRIDE 0sec INTO c%d;
PROCESS c%d USING taxis TIMEOUT 10sec PRODUCING 4 ROWS WITH SCHEMA (plate:STRING="") INTO t%d;
`, c, begin, end, c, c, c)
		}
		return b.String()
	}

	// How many taxi-days touched BOTH porto10 and porto27?
	prog, err := privid.Parse(splits([]int{10, 27}) + `
SELECT COUNT(*) FROM
    (SELECT plate, day(chunk) AS d FROM t10 GROUP BY plate, d)
    JOIN
    (SELECT plate, day(chunk) AS d FROM t27 GROUP BY plate, d)
    ON plate, d CONSUMING 1;`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Execute(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("taxi-days at both porto10 and porto27: %.0f (over %d days)\n",
		res.Releases[0].Value, cfg.Days)

	// Which of the central cameras is busiest? (ARGMAX across tagged
	// per-camera tables; the released value is only the winning name.)
	group := []int{19, 20, 21}
	var union []string
	var keys []string
	for _, c := range group {
		union = append(union, fmt.Sprintf("(SELECT \"porto%d\" AS cam FROM t%d)", c, c))
		keys = append(keys, fmt.Sprintf("%q", fmt.Sprintf("porto%d", c)))
	}
	prog2, err := privid.Parse(splits(group) + fmt.Sprintf(`
SELECT ARGMAX(cam) FROM %s GROUP BY cam WITH KEYS [%s] CONSUMING 1;`,
		strings.Join(union, " UNION "), strings.Join(keys, ", ")))
	if err != nil {
		log.Fatal(err)
	}
	res2, err := engine.Execute(prog2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("busiest central camera: %s\n", res2.Releases[0].ArgmaxKey.Str())
}
