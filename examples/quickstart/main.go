// Quickstart: count pedestrians per hour on the campus camera with
// (ρ, K, ε)-event-duration privacy — the paper's Q1 in miniature.
//
// The flow is the full Privid pipeline:
//  1. the video owner registers a camera with a (ρ, K) policy and a
//     per-frame privacy budget,
//  2. the analyst registers their per-chunk processing code,
//  3. the analyst submits a SPLIT / PROCESS / SELECT query,
//  4. Privid releases one Laplace-noised count per hour.
package main

import (
	"fmt"
	"log"
	"time"

	"privid"
)

func main() {
	const window = 3 * time.Hour

	// --- Video owner side -------------------------------------------
	engine := privid.New(privid.Options{Seed: 42})
	source := privid.NewSceneCamera("campus", privid.CampusProfile(), 7, window)
	err := engine.RegisterCamera(privid.CameraConfig{
		Name:   "campus",
		Source: source,
		// Protect anything visible for <= 1 minute at a time, up to
		// twice (people crossing the walkway, with one return trip).
		Policy:  privid.Policy{Rho: time.Minute, K: 2},
		Epsilon: 5, // per-frame privacy budget
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Analyst side ------------------------------------------------
	// The analyst's "model": emit one row per pedestrian that enters
	// the scene during the chunk (ignoring anyone already visible in
	// the first second, so each person is counted exactly once across
	// chunks — the §6.2 pattern for objects without unique IDs).
	err = engine.Registry().Register("count_entrants", func(chunk *privid.Chunk) []privid.Row {
		present := map[int]bool{}
		for f := int64(0); f < 10 && f < chunk.Len(); f++ {
			for _, o := range chunk.Frame(f).Objects {
				present[o.EntityID] = true
			}
		}
		counted := map[int]bool{}
		var rows []privid.Row
		for f := int64(10); f < chunk.Len(); f++ {
			for _, o := range chunk.Frame(f).Objects {
				if o.EntityID < 0 || present[o.EntityID] || counted[o.EntityID] {
					continue
				}
				counted[o.EntityID] = true
				rows = append(rows, privid.Row{privid.N(1)})
			}
		}
		return rows
	})
	if err != nil {
		log.Fatal(err)
	}

	prog, err := privid.Parse(`
SPLIT campus BEGIN 3-15-2021/6:00am END 3-15-2021/9:00am
    BY TIME 30sec STRIDE 0sec INTO chunks;

PROCESS chunks USING count_entrants TIMEOUT 10sec PRODUCING 5 ROWS
    WITH SCHEMA (one:NUMBER=0) INTO walkers;

/* One noisy count per hour; each release consumes eps = 1. */
SELECT COUNT(*) FROM (SELECT bin(chunk, 3600) AS hr FROM walkers)
    GROUP BY hr CONSUMING 1.0;`)
	if err != nil {
		log.Fatal(err)
	}

	res, err := engine.Execute(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pedestrians per hour (privacy-preserving):")
	for i, r := range res.Releases {
		fmt.Printf("  hour %d: %6.0f   (noise scale %.1f, eps %.2f)\n",
			i, r.Value, r.NoiseScale, r.Epsilon)
	}
	fmt.Printf("total budget consumed: %.2f\n", res.EpsilonSpent)

	// Re-running the same query draws the budget down again; once the
	// per-frame budget is exhausted, Privid denies further queries
	// over those frames.
	for i := 0; i < 6; i++ {
		if _, err := engine.Execute(prog); err != nil {
			fmt.Printf("query %d denied: %v\n", i+2, err)
			break
		}
	}
}
