// Fleetcount: one cross-camera query over a three-camera fleet — the
// paper's §8 "how many people crossed any of these intersections"
// shape — submitted through the HTTP API so the per-camera budget
// report in the JSON result is visible end to end.
//
// It demonstrates the three multi-camera guarantees:
//
//  1. Sharded execution: `SPLIT campus, highway, urban ... INTO fleet`
//     fans the per-camera shards out across the worker pool, so the
//     3-camera query costs about one camera's wall-clock.
//  2. Trusted provenance: every PROCESS row carries the implicit
//     camera column, so `GROUP BY camera WITH KEYS [...]` releases one
//     per-camera count whose sensitivity is only that camera's ΔP and
//     whose charge hits only that camera's ledger.
//  3. Atomic admission: a fleet query that includes a camera with an
//     exhausted budget is denied as a whole — the healthy cameras are
//     charged nothing.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"privid"
)

const window = 30 * time.Minute

// fleetQuery counts chunk-level pedestrian observations fleet-wide and
// per camera in one program. The camera column is engine-stamped
// (trusted), so listing the camera names with WITH KEYS is safe: the
// analyst already knows which cameras they queried.
const fleetQuery = `
SPLIT campus, highway, urban
  BEGIN 3-15-2021/6:00am END 3-15-2021/6:30am
  BY TIME 30sec STRIDE 0sec INTO fleet;
PROCESS fleet USING headcount TIMEOUT 5sec PRODUCING 1 ROWS
  WITH SCHEMA (n:NUMBER=0) INTO t;
SELECT SUM(range(n, 0, 40)) FROM t CONSUMING 0.5;
SELECT camera, COUNT(*) FROM t
  GROUP BY camera WITH KEYS ["campus", "highway", "urban"]
  CONSUMING 0.5;`

func main() {
	// --- Video owner side -------------------------------------------
	engine := privid.New(privid.Options{Seed: 42})
	for _, cam := range []struct {
		name    string
		profile privid.Profile
		epsilon float64
	}{
		{"campus", privid.CampusProfile(), 10},
		{"highway", privid.HighwayProfile(), 10},
		{"urban", privid.UrbanProfile(), 10},
		// A fourth camera whose owner grants almost no budget: any
		// fleet query touching it is denied atomically.
		{"depot", privid.CampusProfile(), 0.01},
	} {
		err := engine.RegisterCamera(privid.CameraConfig{
			Name:    cam.name,
			Source:  privid.NewSceneCamera(cam.name, cam.profile, 7, window),
			Policy:  privid.Policy{Rho: time.Minute, K: 2},
			Epsilon: cam.epsilon,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// --- Analyst side ------------------------------------------------
	err := engine.Registry().Register("headcount", func(chunk *privid.Chunk) []privid.Row {
		n := 0
		for _, o := range chunk.Frame(chunk.Len() / 2).Objects {
			if o.EntityID >= 0 {
				n++
			}
		}
		return []privid.Row{{privid.N(float64(n))}}
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Serve it over HTTP ------------------------------------------
	sched := privid.NewScheduler(engine, privid.SchedulerOptions{Workers: 2})
	defer sched.Close()
	srv := httptest.NewServer(privid.NewAPIHandler(engine, sched))
	defer srv.Close()

	fmt.Println("== 3-camera fleet count (sharded, one query) ==")
	result := submitAndWait(srv.URL, fleetQuery)
	for _, r := range result.Releases {
		fmt.Printf("  %-28s %8.1f  (ε=%.2g, Δ=%.0f)\n", r.Desc, r.Value, r.Epsilon, r.Sensitivity)
	}
	fmt.Println("  per-camera budgets after the query:")
	for _, cb := range result.Cameras {
		fmt.Printf("    %-8s charged ε=%.2f, remaining %.2f\n", cb.Camera, cb.EpsilonSpent, cb.Remaining)
	}

	// --- Atomic admission --------------------------------------------
	fmt.Println("\n== fleet query including the budget-starved depot camera ==")
	before := remaining(srv.URL, "campus")
	denied := `
SPLIT campus, depot
  BEGIN 3-15-2021/6:00am END 3-15-2021/6:30am
  BY TIME 30sec STRIDE 0sec INTO fleet;
PROCESS fleet USING headcount TIMEOUT 5sec PRODUCING 1 ROWS
  WITH SCHEMA (n:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.5;`
	if _, errMsg := submit(srv.URL, denied); errMsg != "" {
		fmt.Printf("  denied as a whole: %s\n", errMsg)
	} else {
		log.Fatal("expected the depot query to be denied")
	}
	after := remaining(srv.URL, "campus")
	fmt.Printf("  campus budget before/after the denial: %.2f / %.2f (nothing charged)\n", before, after)
}

// resultPayload mirrors the server's result JSON.
type resultPayload struct {
	Releases []struct {
		Desc        string      `json:"desc"`
		Key         interface{} `json:"key"`
		Value       float64     `json:"value"`
		Epsilon     float64     `json:"epsilon"`
		Sensitivity float64     `json:"sensitivity"`
	} `json:"releases"`
	EpsilonSpent float64 `json:"epsilon_spent"`
	Cameras      []struct {
		Camera       string  `json:"camera"`
		EpsilonSpent float64 `json:"epsilon_spent"`
		Remaining    float64 `json:"remaining"`
	} `json:"cameras"`
}

// submit posts a query and polls it to a terminal state, returning the
// result or the failure message.
func submit(baseURL, src string) (*resultPayload, string) {
	body, err := json.Marshal(map[string]string{"analyst": "fleet-analyst", "query": src})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/queries", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	decode(resp, &job)
	if job.ID == "" {
		return nil, job.Error
	}
	for {
		resp, err := http.Get(baseURL + "/v1/queries/" + job.ID)
		if err != nil {
			log.Fatal(err)
		}
		var status struct {
			State  string         `json:"state"`
			Error  string         `json:"error"`
			Result *resultPayload `json:"result"`
		}
		decode(resp, &status)
		switch status.State {
		case "done":
			return status.Result, ""
		case "failed":
			return nil, status.Error
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func submitAndWait(baseURL, src string) *resultPayload {
	res, errMsg := submit(baseURL, src)
	if errMsg != "" {
		log.Fatalf("query failed: %s", errMsg)
	}
	return res
}

// remaining fetches one camera's remaining budget at frame 0.
func remaining(baseURL, camera string) float64 {
	resp, err := http.Get(baseURL + "/v1/cameras/" + camera + "/budget?frame=3000")
	if err != nil {
		log.Fatal(err)
	}
	var out struct {
		Remaining float64 `json:"remaining"`
	}
	decode(resp, &out)
	return out.Remaining
}

func decode(resp *http.Response, v interface{}) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
