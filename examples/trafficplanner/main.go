// Trafficplanner: highway analytics with both of Privid's utility
// optimizations — Listing 1's speed/color queries, plus spatial
// splitting (§7.2) to compare the two travel directions.
package main

import (
	"fmt"
	"log"
	"time"

	"privid"
)

func main() {
	const window = 2 * time.Hour
	profile := privid.HighwayProfile()

	engine := privid.New(privid.Options{Seed: 11})
	err := engine.RegisterCamera(privid.CameraConfig{
		Name:    "highway",
		Source:  privid.NewSceneCamera("highway", profile, 3, window),
		Policy:  privid.Policy{Rho: 90 * time.Second, K: 1},
		Epsilon: 10,
		// The owner registers the per-direction splitting scheme; the
		// boundary is hard (cars never switch directions mid-frame).
		Schemes: privid.SchemesFromProfile(profile),
	})
	if err != nil {
		log.Fatal(err)
	}

	// The analyst's model: read each detected car's plate, color and
	// speed — the model.py of Listing 1.
	err = engine.Registry().Register("carmodel", func(chunk *privid.Chunk) []privid.Row {
		seen := map[string]bool{}
		var rows []privid.Row
		for f := int64(0); f < chunk.Len(); f += 5 {
			for _, o := range chunk.Frame(f).Objects {
				if o.Plate == "" || seen[o.Plate] {
					continue
				}
				seen[o.Plate] = true
				rows = append(rows, privid.Row{
					privid.S(o.Plate), privid.S(o.Color), privid.N(o.Speed),
				})
			}
		}
		return rows
	})
	if err != nil {
		log.Fatal(err)
	}

	// Listing 1: average speed + unique cars per color.
	prog, err := privid.Parse(`
SPLIT highway BEGIN 3-15-2021/6:00am END 3-15-2021/8:00am
    BY TIME 5sec STRIDE 0sec INTO chunksA;
PROCESS chunksA USING carmodel TIMEOUT 5sec PRODUCING 10 ROWS
    WITH SCHEMA (plate:STRING="", color:STRING="", speed:NUMBER=0) INTO tableA;

/* S1: average speed of all cars */
SELECT AVG(range(speed, 30, 60)) FROM tableA CONSUMING 0.5;

/* S2: count unique cars of each color */
SELECT color, COUNT(plate) FROM
    (SELECT plate, color FROM tableA GROUP BY plate)
    GROUP BY color WITH KEYS ["RED", "WHITE", "SILVER"] CONSUMING 1;`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Execute(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Listing-1 queries:")
	for _, r := range res.Releases {
		fmt.Printf("  %-28s = %8.1f  (noise scale %.2f)\n", r.Desc, r.Value, r.NoiseScale)
	}

	// Spatial splitting: per-direction volumes from one query. The
	// region column is created by Privid and therefore trusted.
	// PRODUCING must cover the concurrent cars per region — including
	// the shoulder's long-parked cars, which otherwise crowd moving
	// traffic out of the row budget (the §7.1 masking optimization
	// exists precisely to remove them; see examples/maskstudio).
	prog2, err := privid.Parse(`
SPLIT highway BEGIN 3-15-2021/6:00am END 3-15-2021/8:00am
    BY TIME 30sec STRIDE 0sec BY REGION directions INTO chunksB;
PROCESS chunksB USING carmodel TIMEOUT 5sec PRODUCING 90 ROWS
    WITH SCHEMA (plate:STRING="", color:STRING="", speed:NUMBER=0) INTO tableB;
SELECT region, COUNT(plate) FROM
    (SELECT plate, region FROM tableB GROUP BY plate)
    GROUP BY region WITH KEYS ["eastbound", "westbound"] CONSUMING 1;`)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := engine.Execute(prog2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-direction unique cars (spatial splitting):")
	for _, r := range res2.Releases {
		fmt.Printf("  %-28s = %8.0f\n", r.Desc, r.Value)
	}
	fmt.Printf("total budget consumed: %.2f\n", res.EpsilonSpent+res2.EpsilonSpent)
}
