// Maskstudio: the video owner's workflow for choosing privacy
// policies (§5.2, §7.1, Appendix F):
//  1. estimate the max duration individuals are visible, using the
//     imperfect CV pipeline (it over-estimates — the safe direction),
//  2. run Algorithm 2 to build a ladder of masks trading coverage for
//     a smaller ρ (and therefore less noise at the same privacy),
//  3. publish the mask → policy map, and let an analyst pick from it.
package main

import (
	"fmt"
	"log"
	"time"

	"privid"
)

func main() {
	const dur = time.Hour
	profile := privid.UrbanProfile()
	camera := privid.NewSceneCamera("urban", profile, 9, dur)

	// Step 1: duration estimation from historical video.
	est := privid.EstimateMaxDuration(camera, profile, 9)
	fmt.Printf("CV estimate of max visible duration: %.0f s\n", est)

	// Step 2 + 3: Algorithm 2's greedy mask ladder, computed over the
	// owner's historical footage (the same deterministic scene the
	// camera replays).
	scene := privid.GenerateScene(profile, 9, dur)
	pm := privid.BuildMaskPolicyMap("urban", scene, 2, []float64{1, 2, 4, 8})
	fmt.Println("published mask -> policy ladder:")
	for _, e := range pm.Entries {
		fmt.Printf("  %-12s masks %5.1f%% of frame -> policy %v\n",
			e.ID, e.Mask.Fraction()*100, e.Policy)
	}

	// The analyst picks the entry with the smallest rho that masks at
	// most 20% of the frame.
	best, ok := pm.Best(0.20)
	if !ok {
		log.Fatal("no mask fits the analyst's constraint")
	}
	fmt.Printf("analyst's choice: %s (rho=%v)\n", best.ID, best.Policy.Rho.Round(time.Second))

	// Register the camera with the ladder and run a query under the
	// chosen mask: the sensitivity (and noise) now reflect its smaller rho.
	engine := privid.New(privid.Options{Seed: 1})
	err := engine.RegisterCamera(privid.CameraConfig{
		Name:     "urban",
		Source:   camera,
		Policy:   privid.Policy{Rho: time.Duration(est * float64(time.Second)), K: 2},
		Epsilon:  5,
		Policies: pm,
	})
	if err != nil {
		log.Fatal(err)
	}
	err = engine.Registry().Register("headcount", func(chunk *privid.Chunk) []privid.Row {
		mid := chunk.Frame(chunk.Len() / 2)
		n := 0
		for _, o := range mid.Objects {
			if o.EntityID >= 0 {
				n++
			}
		}
		return []privid.Row{{privid.N(float64(n))}}
	})
	if err != nil {
		log.Fatal(err)
	}
	prog, err := privid.Parse(fmt.Sprintf(`
SPLIT urban BEGIN 3-15-2021/6:00am END 3-15-2021/7:00am
    BY TIME 30sec STRIDE 0sec WITH MASK %s INTO c;
PROCESS c USING headcount TIMEOUT 5sec PRODUCING 1 ROWS
    WITH SCHEMA (n:NUMBER=0) INTO t;
SELECT AVG(range(n, 0, 60)) FROM t CONSUMING 1;`, best.ID))
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Execute(prog)
	if err != nil {
		log.Fatal(err)
	}
	r := res.Releases[0]
	fmt.Printf("avg concurrent pedestrians (masked, private): %.1f (noise scale %.2f)\n",
		r.Value, r.NoiseScale)
}
