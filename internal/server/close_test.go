package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"privid/internal/core"
	"privid/internal/policy"
	"privid/internal/scene"
	"privid/internal/table"
	"privid/internal/video"
)

// newSlowEngine registers a camera plus an executable that blocks
// until release is closed, so tests can hold jobs in-flight
// deterministically.
func newSlowEngine(t *testing.T) (e *core.Engine, release chan struct{}, started *atomic.Int64) {
	t.Helper()
	// Parallelism is explicit: the default (GOMAXPROCS) can be 1 on a
	// small CI machine, which would serialize the blocking executables
	// on the engine-wide sandbox semaphore.
	e = core.New(core.Options{Seed: 1, Parallelism: 8})
	s := scene.Generate(scene.Campus(), 1, 10*time.Minute)
	if err := e.RegisterCamera(core.CameraConfig{
		Name:    "campus",
		Source:  &video.SceneSource{Camera: "campus", Scene: s},
		Policy:  policy.Policy{Rho: time.Minute, K: 2},
		Epsilon: 100,
	}); err != nil {
		t.Fatal(err)
	}
	release = make(chan struct{})
	started = &atomic.Int64{}
	if err := e.Registry().Register("slow", func(chunk *video.Chunk) []table.Row {
		started.Add(1)
		<-release
		return []table.Row{{table.N(1)}}
	}); err != nil {
		t.Fatal(err)
	}
	return e, release, started
}

const slowQuery = `
SPLIT campus BEGIN 3-15-2021/6:00am END 3-15-2021/6:01am
  BY TIME 60sec STRIDE 0sec INTO c;
PROCESS c USING slow TIMEOUT 30sec PRODUCING 1 ROWS
  WITH SCHEMA (n:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.01;`

// slowQuery2 covers a different minute than slowQuery: identical
// queries would coalesce on the chunk-execution singleflight (the
// second becomes a follower and never enters the sandbox), and tests
// that need two executions in flight must use distinct chunks.
const slowQuery2 = `
SPLIT campus BEGIN 3-15-2021/6:01am END 3-15-2021/6:02am
  BY TIME 60sec STRIDE 0sec INTO c;
PROCESS c USING slow TIMEOUT 30sec PRODUCING 1 ROWS
  WITH SCHEMA (n:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.01;`

// TestCloseWaitsForInFlightJobs: Close must block until running (and
// queued) jobs reach a terminal state, never abandoning them mid-
// execution.
func TestCloseWaitsForInFlightJobs(t *testing.T) {
	e, release, started := newSlowEngine(t)
	s := NewScheduler(e, SchedulerOptions{Workers: 2})
	id1, err := s.Submit("alice", slowQuery)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit("bob", slowQuery2)
	if err != nil {
		t.Fatal(err)
	}
	// Both jobs are in the sandbox, blocked on release.
	deadline := time.Now().Add(10 * time.Second)
	for started.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("jobs never started")
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while jobs were still executing")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned after jobs finished")
	}
	for _, id := range []string{id1, id2} {
		info, ok := s.Job(id)
		if !ok || !info.Finished() {
			t.Errorf("job %s not terminal after Close: %+v", id, info)
		}
		if info.State != JobDone {
			t.Errorf("job %s = %s (%s)", id, info.State, info.Error)
		}
	}
}

// TestSubmitAfterCloseCleanError: a Submit after Close returns
// ErrClosed — before paying for a parse, and without racing the queue.
func TestSubmitAfterCloseCleanError(t *testing.T) {
	e, release, _ := newSlowEngine(t)
	close(release) // jobs run instantly
	s := NewScheduler(e, SchedulerOptions{Workers: 1})
	s.Close()
	if _, err := s.Submit("alice", slowQuery); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	// Even an unparsable query reports ErrClosed, not a parse error:
	// the scheduler is gone either way.
	if _, err := s.Submit("alice", "garbage ;;;"); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit garbage after close: %v, want ErrClosed", err)
	}
}

// TestSubmitCloseRace hammers Submit from many goroutines while Close
// runs (verify under -race): every submission either succeeds — and
// then its job reaches a terminal state before Close returns — or
// fails with a clean admission error; nothing panics on the closed
// queue.
func TestSubmitCloseRace(t *testing.T) {
	e, release, _ := newSlowEngine(t)
	close(release)
	s := NewScheduler(e, SchedulerOptions{Workers: 4, PerAnalystInFlight: 64, QueueDepth: 64})

	var wg sync.WaitGroup
	var accepted atomic.Int64
	ids := make(chan string, 256)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id, err := s.Submit("alice", slowQuery)
				switch {
				case err == nil:
					accepted.Add(1)
					ids <- id
				case errors.Is(err, ErrClosed), errors.Is(err, ErrAnalystBusy), errors.Is(err, ErrQueueFull):
				default:
					t.Errorf("unexpected submit error: %v", err)
				}
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	s.Close()
	wg.Wait()
	close(ids)
	// Close drained everything that was accepted.
	for id := range ids {
		info, ok := s.Job(id)
		if !ok || !info.Finished() {
			t.Errorf("accepted job %s not terminal after Close", id)
		}
	}
	// Double Close is safe, including concurrently.
	var wg2 sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg2.Add(1)
		go func() { defer wg2.Done(); s.Close() }()
	}
	wg2.Wait()
	if accepted.Load() == 0 {
		t.Log("no submissions beat Close; race still exercised")
	}
}
