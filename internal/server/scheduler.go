// Package server is Privid's serving layer: an asynchronous job
// scheduler that runs analyst queries on a worker pool over one
// engine, and an HTTP/JSON API exposing query submission, job polling,
// camera and budget inspection, and the owner's audit log.
//
// The scheduler model is submit → job ID → poll: queries can run for
// minutes (they process video), so the API never blocks a connection
// on execution. Fairness under heavy multi-analyst traffic comes from
// a bounded per-analyst in-flight limit — one analyst flooding the
// queue is refused admission (retryable) before it can starve others —
// while the worker pool bounds total engine concurrency. Privacy
// enforcement stays entirely inside the engine: the scheduler adds no
// privacy semantics of its own.
//
// The layer performs no authentication: the analyst name is
// client-supplied, so the in-flight limit is a fairness mechanism
// among honest clients, not a security boundary, and the owner-facing
// endpoints (audit log, stats, other analysts' jobs) are open. A real
// deployment must front the API with authentication that fixes the
// analyst identity and gates owner endpoints; see DESIGN.md
// §"Deployment trust boundary".
package server

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"privid/internal/core"
	"privid/internal/obs"
	"privid/internal/query"
	"privid/internal/store"
)

// SchedulerOptions configure a Scheduler.
type SchedulerOptions struct {
	// Workers is the worker-pool size (concurrent query executions).
	// 0 uses runtime.GOMAXPROCS(0).
	Workers int
	// PerAnalystInFlight bounds one analyst's queued+running jobs;
	// submissions beyond it are refused with ErrAnalystBusy. 0 uses 4.
	PerAnalystInFlight int
	// QueueDepth bounds the backlog of queued jobs across all
	// analysts; submissions beyond it are refused with ErrQueueFull.
	// 0 uses 256.
	QueueDepth int
	// MaxFinishedJobs bounds how many terminal (done/failed) jobs the
	// scheduler retains for polling; the oldest are dropped beyond it,
	// so a long-running server's memory stays bounded. 0 uses 1000.
	MaxFinishedJobs int
	// SlowQueryLog receives one JSON line (obs.SlowEntry) per terminal
	// job whose execution took at least SlowQueryThreshold. nil disables
	// the slow-query log.
	SlowQueryLog io.Writer
	// SlowQueryThreshold is the execution-duration threshold for the
	// slow-query log; non-positive disables it.
	SlowQueryThreshold time.Duration
	// Now overrides the job-timestamp clock (tests only).
	Now func() time.Time
}

func (o SchedulerOptions) withDefaults() SchedulerOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.PerAnalystInFlight <= 0 {
		o.PerAnalystInFlight = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.MaxFinishedJobs <= 0 {
		o.MaxFinishedJobs = 1000
	}
	return o
}

// JobState is the lifecycle state of a submitted query.
type JobState string

const (
	// JobQueued means the job is waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning means a worker is executing the job.
	JobRunning JobState = "running"
	// JobDone means execution succeeded and the result is available.
	JobDone JobState = "done"
	// JobFailed means execution was denied or errored.
	JobFailed JobState = "failed"
)

// JobInfo is a snapshot of one job's state.
type JobInfo struct {
	ID      string
	Analyst string
	Query   string
	State   JobState
	// Error is the failure reason (JobFailed only).
	Error string
	// Result is the query outcome (JobDone only).
	Result *core.Result
	// Trace is the execution's span tree (JSON-encoded obs.SpanTree),
	// set when the job reaches a terminal state and persisted with it,
	// so GET /v1/queries/{id}/trace resolves across restarts.
	Trace       json.RawMessage
	SubmittedAt time.Time
	StartedAt   time.Time // zero until running
	FinishedAt  time.Time // zero until done/failed
}

// Finished reports whether the job has reached a terminal state.
func (j JobInfo) Finished() bool { return j.State == JobDone || j.State == JobFailed }

// Submission errors the API layer maps to retryable HTTP statuses.
var (
	// ErrAnalystBusy means the analyst is at their in-flight limit.
	ErrAnalystBusy = errors.New("server: analyst at in-flight job limit, retry later")
	// ErrQueueFull means the global backlog is at capacity.
	ErrQueueFull = errors.New("server: job queue full, retry later")
	// ErrClosed means the scheduler is shutting down.
	ErrClosed = errors.New("server: scheduler closed")
)

type job struct {
	info JobInfo
	prog *query.Program
	// qhash tags the job's WAL charge records (sha256 of the source,
	// truncated) so the durable ledger ties ε debits to queries.
	qhash string
	// parseStart/parseDur time the submit-side parse so the worker can
	// attach it to the execution trace as a pre-measured span.
	parseStart time.Time
	parseDur   time.Duration
}

// queryHash derives the WAL tag for a query source.
func queryHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return fmt.Sprintf("%x", sum[:8])
}

// Scheduler runs analyst queries asynchronously on a worker pool over
// one engine. It is safe for concurrent use.
type Scheduler struct {
	engine *core.Engine
	opts   SchedulerOptions
	// store persists terminal jobs (the engine's durable store;
	// store.NullStore when durability is off), so an analyst polling
	// after a server restart still gets their result.
	store store.Store
	queue chan *job
	wg    sync.WaitGroup
	// met holds hot-path instruments in the engine's registry (all
	// no-op when metrics are disabled); slow is the slow-query log (nil
	// when unconfigured).
	met  *schedMetrics
	slow *obs.SlowLog

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string       // submission order, for listing
	inflight map[string]int // analyst → queued+running jobs
	finished int            // terminal jobs currently retained
	// doneTotal/failedTotal are monotonic lifetime counters; the
	// retained-job map alone would undercount once pruning starts.
	doneTotal, failedTotal int64
	// recovered counts terminal jobs adopted from the durable store at
	// startup.
	recovered int64
	// boot is the incarnation epoch embedded in new job IDs. A fresh
	// store mints plain q-NNNNNN IDs (boot 0); a scheduler that
	// recovered any prior records mints q-r<boot>-NNNNNN with boot one
	// past the highest epoch seen. This keeps IDs unique across
	// restarts even when some terminal records were never persisted
	// (e.g. a torn or failing WAL): resuming seq from the highest
	// *recovered* ID alone would re-mint the lost IDs, and a client
	// polling a stale handle would silently get a different job.
	boot   int64
	seq    int64
	closed bool
}

// parseJobID splits a job ID into its boot epoch and sequence number.
// Legacy IDs (q-NNNNNN) are epoch 0; epoch-scoped IDs are
// q-r<boot>-NNNNNN.
func parseJobID(id string) (boot, seq int64, ok bool) {
	rest, found := strings.CutPrefix(id, "q-")
	if !found {
		return 0, 0, false
	}
	if b, tail, dash := strings.Cut(rest, "-"); dash {
		if !strings.HasPrefix(b, "r") {
			return 0, 0, false
		}
		bn, err1 := strconv.ParseInt(b[1:], 10, 64)
		sn, err2 := strconv.ParseInt(tail, 10, 64)
		if err1 != nil || err2 != nil {
			return 0, 0, false
		}
		return bn, sn, true
	}
	sn, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return 0, sn, true
}

// NewScheduler starts a scheduler over the engine. Call Close to drain
// the pool. When the engine has a durable state dir, terminal jobs
// recovered from it become immediately pollable (their results were
// persisted before the previous process exited), and newly finished
// jobs are persisted in turn.
func NewScheduler(engine *core.Engine, opts SchedulerOptions) *Scheduler {
	opts = opts.withDefaults()
	s := &Scheduler{
		engine:   engine,
		opts:     opts,
		store:    engine.StateStore(),
		queue:    make(chan *job, opts.QueueDepth),
		jobs:     map[string]*job{},
		inflight: map[string]int{},
		met:      newSchedMetrics(engine.Metrics()),
		slow:     obs.NewSlowLog(opts.SlowQueryLog, opts.SlowQueryThreshold),
	}
	for _, jr := range engine.RecoveredJobs() {
		s.adoptRecovered(jr)
	}
	s.pruneLocked() // bound recovered history like live history
	if reg := engine.Metrics(); reg != nil {
		s.registerCollectors(reg)
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// adoptRecovered installs one persisted terminal job so polls resolve
// across restarts. Called before the workers start, so no locking.
func (s *Scheduler) adoptRecovered(jr store.JobRecord) {
	state := JobState(jr.State)
	if state != JobDone && state != JobFailed {
		return
	}
	if _, dup := s.jobs[jr.ID]; dup {
		return
	}
	info := JobInfo{
		ID:          jr.ID,
		Analyst:     jr.Analyst,
		Query:       jr.Query,
		State:       state,
		Error:       jr.Error,
		Trace:       jr.Trace,
		SubmittedAt: jr.SubmittedAt,
		StartedAt:   jr.StartedAt,
		FinishedAt:  jr.FinishedAt,
	}
	if state == JobDone {
		// The charge behind this result is durable regardless; a
		// missing or undecodable payload degrades to a resolvable-
		// but-failed job rather than a recovery failure (or a "done"
		// job whose result endpoint would have nothing to serve).
		var res core.Result
		switch {
		case len(jr.Result) == 0:
			info.State = JobFailed
			info.Error = "server: persisted result missing"
		case json.Unmarshal(jr.Result, &res) != nil:
			info.State = JobFailed
			info.Error = "server: persisted result undecodable"
		default:
			info.Result = &res
		}
	}
	s.jobs[jr.ID] = &job{info: info}
	s.order = append(s.order, jr.ID)
	s.finished++
	s.recovered++
	switch info.State {
	case JobDone:
		s.doneTotal++
	case JobFailed:
		s.failedTotal++
	}
	// Resume numbering after the recovered tail and move to a fresh
	// boot epoch, so new IDs can never collide with IDs this store has
	// ever minted — including ones whose records did not survive.
	if bn, sn, ok := parseJobID(jr.ID); ok {
		if bn+1 > s.boot {
			s.boot = bn + 1
		}
		if sn > s.seq {
			s.seq = sn
		}
	}
}

func (s *Scheduler) now() time.Time {
	if s.opts.Now != nil {
		return s.opts.Now()
	}
	return time.Now()
}

// Submit parses and enqueues a query on behalf of an analyst and
// returns its job ID. Parse and validation errors are returned
// synchronously (the query never becomes a job); execution errors —
// including budget denial — surface as JobFailed. Admission is refused
// with ErrAnalystBusy or ErrQueueFull under load.
func (s *Scheduler) Submit(analyst, src string) (string, error) {
	if analyst == "" {
		return "", fmt.Errorf("server: analyst name required")
	}
	// Fast-fail on a closed scheduler before paying for a parse; the
	// authoritative check below re-tests under the lock, so Submit
	// racing Close still gets a clean ErrClosed, never a send on a
	// closed queue.
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return "", ErrClosed
	}
	// The parse is timed with the real clock (not opts.Now) because it
	// becomes a span on the execution trace, and traces always use real
	// time (see core.ExecuteTraced).
	parseStart := time.Now()
	prog, err := query.Parse(src)
	parseDur := time.Since(parseStart)
	s.met.stage("parse", parseDur)
	if err != nil {
		s.met.refused("parse")
		return "", err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.met.refused("closed")
		return "", ErrClosed
	}
	if s.inflight[analyst] >= s.opts.PerAnalystInFlight {
		s.mu.Unlock()
		s.met.refused("busy")
		return "", ErrAnalystBusy
	}
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		s.met.refused("queue_full")
		return "", ErrQueueFull
	}
	s.seq++
	id := fmt.Sprintf("q-%06d", s.seq)
	if s.boot > 0 {
		id = fmt.Sprintf("q-r%d-%06d", s.boot, s.seq)
	}
	j := &job{
		info: JobInfo{
			ID:          id,
			Analyst:     analyst,
			Query:       src,
			State:       JobQueued,
			SubmittedAt: s.now(),
		},
		prog:       prog,
		qhash:      queryHash(src),
		parseStart: parseStart,
		parseDur:   parseDur,
	}
	s.jobs[j.info.ID] = j
	s.order = append(s.order, j.info.ID)
	s.inflight[analyst]++
	// Reserve the slot under the lock; the buffered send cannot block
	// because queue length was checked above and only Submit sends.
	s.queue <- j
	s.mu.Unlock()
	s.met.submissions.Inc()
	return j.info.ID, nil
}

// worker executes queued jobs until the queue closes.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		j.info.State = JobRunning
		j.info.StartedAt = s.now()
		queueWait := j.info.StartedAt.Sub(j.info.SubmittedAt)
		s.mu.Unlock()
		s.met.stage("queue_wait", queueWait)

		res, tr, err := s.engine.ExecuteTraced(j.prog, j.qhash)

		// Annotate the finished trace with serving-layer context: the
		// job identity and the submit-side parse as a pre-measured span.
		// Identifiers and durations only — never result values.
		tr.Root().Set("job_id", j.info.ID)
		tr.Root().Set("analyst", j.info.Analyst)
		tr.Root().ChildSpanning("parse", j.parseStart, j.parseDur)
		traceJSON, _ := tr.JSON()

		s.mu.Lock()
		j.info.FinishedAt = s.now()
		j.info.Trace = traceJSON
		if err != nil {
			j.info.State = JobFailed
			j.info.Error = err.Error()
			s.failedTotal++
		} else {
			j.info.State = JobDone
			j.info.Result = res
			s.doneTotal++
		}
		s.inflight[j.info.Analyst]--
		if s.inflight[j.info.Analyst] == 0 {
			delete(s.inflight, j.info.Analyst)
		}
		s.finished++
		s.pruneLocked()
		rec := terminalRecord(j.info)
		info := j.info
		s.mu.Unlock()

		// Persist the terminal job outside the lock so polls are not
		// blocked on an fsync. Best-effort: the privacy-critical
		// charge was already fsynced inside Execute; losing the job
		// record merely means a post-restart poll cannot resolve it.
		_ = s.store.Commit(rec)
		s.recordSlow(info, tr, res, queueWait)
	}
}

// recordSlow writes a slow-query log entry for a terminal job (the log
// itself gates on its threshold; nothing happens when unconfigured).
func (s *Scheduler) recordSlow(info JobInfo, tr *obs.Trace, res *core.Result, queueWait time.Duration) {
	if s.slow == nil {
		return
	}
	e := obs.SlowEntry{
		At:        info.FinishedAt,
		JobID:     info.ID,
		Analyst:   info.Analyst,
		Query:     info.Query,
		State:     string(info.State),
		Error:     info.Error,
		Duration:  info.FinishedAt.Sub(info.StartedAt),
		QueueWait: queueWait,
	}
	if res != nil {
		e.EpsilonSpent = res.EpsilonSpent
	}
	if sd := tr.Tree().StageDurations(); len(sd) > 0 {
		e.Stages = make(map[string]int64, len(sd))
		for name, d := range sd {
			e.Stages[name] = d.Nanoseconds()
		}
	}
	s.slow.Record(e)
}

// terminalRecord converts a terminal job snapshot into its durable
// form. Caller holds s.mu (reads the stable terminal state).
func terminalRecord(info JobInfo) store.Record {
	jr := store.JobRecord{
		ID:          info.ID,
		Analyst:     info.Analyst,
		Query:       info.Query,
		State:       string(info.State),
		Error:       info.Error,
		Trace:       info.Trace,
		SubmittedAt: info.SubmittedAt,
		StartedAt:   info.StartedAt,
		FinishedAt:  info.FinishedAt,
	}
	if info.Result != nil {
		if b, err := json.Marshal(info.Result); err == nil {
			jr.Result = b
		}
	}
	return store.Record{Job: &jr}
}

// pruneLocked drops the oldest terminal jobs beyond MaxFinishedJobs so
// retained history (query text + results) stays bounded. Queued and
// running jobs are never dropped. Caller holds s.mu.
func (s *Scheduler) pruneLocked() {
	for s.finished > s.opts.MaxFinishedJobs {
		dropped := false
		for i, id := range s.order {
			if !s.jobs[id].info.Finished() {
				continue
			}
			delete(s.jobs, id)
			s.order = append(s.order[:i], s.order[i+1:]...)
			s.finished--
			dropped = true
			break
		}
		if !dropped {
			return
		}
	}
}

// Job returns a snapshot of one job.
func (s *Scheduler) Job(id string) (JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return j.info, true
}

// Jobs returns snapshots of every job in submission order, optionally
// filtered to one analyst ("" keeps all).
func (s *Scheduler) Jobs(analyst string) []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobInfo, 0, len(s.order))
	for _, id := range s.order {
		info := s.jobs[id].info
		if analyst != "" && info.Analyst != analyst {
			continue
		}
		out = append(out, info)
	}
	return out
}

// Stats is a snapshot of scheduler load. Done and Failed are lifetime
// totals (they keep counting after old terminal jobs are pruned), so
// within one process lifetime Queued+Running+Done+Failed equals
// Submitted. After a restart with a durable state dir, Submitted
// resumes from the highest recovered job ID while Done/Failed count
// only the recovered-and-retained jobs, so the identity is approximate
// across restarts.
type Stats struct {
	Workers   int
	Queued    int
	Running   int
	Done      int64
	Failed    int64
	Submitted int64
	// Recovered counts terminal jobs adopted from the durable store at
	// startup (included in Done/Failed).
	Recovered int64
	// SlowQueries counts slow-query log entries written (0 when the log
	// is unconfigured).
	SlowQueries int64
}

// Stats returns a snapshot of scheduler load.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Workers:     s.opts.Workers,
		Submitted:   s.seq,
		Done:        s.doneTotal,
		Failed:      s.failedTotal,
		Recovered:   s.recovered,
		SlowQueries: int64(s.slow.Entries()),
	}
	for _, j := range s.jobs {
		switch j.info.State {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		}
	}
	return st
}

// Close stops accepting submissions, waits for queued and running jobs
// to finish, syncs the slow-query log, and returns. Safe to call more
// than once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		_ = s.slow.Sync()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	// Flush the slow-query log after the last worker exits so the tail
	// of a shutdown's entries survives process exit.
	_ = s.slow.Sync()
}
