package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"privid/internal/core"
	"privid/internal/table"
)

// API is the HTTP/JSON facade over one engine and its scheduler.
//
// Routes (all JSON):
//
//	GET  /v1/healthz                   liveness probe
//	POST /v1/queries                   submit {analyst, query} → 202 {id}
//	GET  /v1/queries?analyst=A         list jobs (newest last)
//	GET  /v1/queries/{id}              job status (+result when done)
//	GET  /v1/queries/{id}/result       result only; 409 while pending
//	GET  /v1/queries/{id}/trace        span tree (409 pending, 404 none)
//	GET  /v1/cameras                   registered cameras
//	GET  /v1/cameras/{name}/budget     remaining ε at ?frame=N (default 0)
//	GET  /v1/executables               registered PROCESS executables
//	GET  /v1/audit                     owner's audit log
//	GET  /v1/stats                     scheduler load + cache + per-camera ε
//	GET  /v1/state                     durable-store status (WAL/snapshots)
//	GET  /v1/metrics                   Prometheus text exposition (not JSON)
type API struct {
	engine *core.Engine
	sched  *Scheduler
	mux    *http.ServeMux
}

// NewAPI returns the HTTP handler serving engine through sched.
func NewAPI(engine *core.Engine, sched *Scheduler) *API {
	a := &API{engine: engine, sched: sched, mux: http.NewServeMux()}
	a.mux.HandleFunc("GET /v1/healthz", a.health)
	a.mux.HandleFunc("POST /v1/queries", a.submit)
	a.mux.HandleFunc("GET /v1/queries", a.listJobs)
	a.mux.HandleFunc("GET /v1/queries/{id}", a.getJob)
	a.mux.HandleFunc("GET /v1/queries/{id}/result", a.getResult)
	a.mux.HandleFunc("GET /v1/queries/{id}/trace", a.getTrace)
	a.mux.HandleFunc("GET /v1/cameras", a.listCameras)
	a.mux.HandleFunc("GET /v1/cameras/{name}/budget", a.getBudget)
	a.mux.HandleFunc("GET /v1/executables", a.listExecutables)
	a.mux.HandleFunc("GET /v1/audit", a.getAudit)
	a.mux.HandleFunc("GET /v1/stats", a.getStats)
	a.mux.HandleFunc("GET /v1/state", a.getState)
	a.mux.HandleFunc("GET /v1/metrics", a.getMetrics)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// valueJSON is the wire form of a table.Value.
type valueJSON struct {
	Type string  `json:"type"`
	Str  string  `json:"str"`
	Num  float64 `json:"num,omitempty"`
}

func toValueJSON(v table.Value) *valueJSON {
	return &valueJSON{Type: v.Type().String(), Str: v.Str(), Num: v.Num()}
}

// releaseJSON is the wire form of one noised data release.
type releaseJSON struct {
	Desc        string     `json:"desc"`
	Key         *valueJSON `json:"key,omitempty"`
	Value       float64    `json:"value"`
	ArgmaxKey   *valueJSON `json:"argmax_key,omitempty"`
	IsArgmax    bool       `json:"is_argmax,omitempty"`
	Epsilon     float64    `json:"epsilon"`
	Sensitivity float64    `json:"sensitivity"`
	NoiseScale  float64    `json:"noise_scale"`
	// Raw is the pre-noise value, present only when the engine runs
	// in Evaluation mode (accuracy studies and the sim harness's
	// ground-truth invariant); never populated in a real deployment.
	Raw    float64 `json:"raw,omitempty"`
	RawSet bool    `json:"raw_set,omitempty"`
	// Begin/End are the release's wall-clock span (the query window
	// for whole-table aggregates, the bucket span for time-bucketed
	// GROUP BY); each touched camera was charged over its queried
	// span clipped to it.
	Begin time.Time `json:"begin,omitzero"`
	End   time.Time `json:"end,omitzero"`
}

// cameraBudgetJSON is the wire form of one camera's share of a query's
// privacy cost.
type cameraBudgetJSON struct {
	Camera string `json:"camera"`
	// EpsilonSpent is what this query charged the camera's ledger.
	EpsilonSpent float64 `json:"epsilon_spent"`
	// Remaining is the minimum budget left on any charged frame, after
	// the charge.
	Remaining float64 `json:"remaining"`
}

// resultJSON is the wire form of a finished query's outcome.
type resultJSON struct {
	Releases     []releaseJSON `json:"releases"`
	EpsilonSpent float64       `json:"epsilon_spent"`
	// Cameras reports per-camera budget impact for cross-camera
	// queries (also present, with one entry, for single-camera ones).
	Cameras []cameraBudgetJSON `json:"cameras,omitempty"`
}

func toResultJSON(res *core.Result) *resultJSON {
	out := &resultJSON{EpsilonSpent: res.EpsilonSpent, Releases: []releaseJSON{}}
	for _, cb := range res.Cameras {
		out.Cameras = append(out.Cameras, cameraBudgetJSON{
			Camera:       cb.Camera,
			EpsilonSpent: cb.EpsilonSpent,
			Remaining:    cb.Remaining,
		})
	}
	for _, r := range res.Releases {
		rj := releaseJSON{
			Desc:        r.Desc,
			Value:       r.Value,
			IsArgmax:    r.IsArgmax,
			Epsilon:     r.Epsilon,
			Sensitivity: r.Sensitivity,
			NoiseScale:  r.NoiseScale,
			Raw:         r.Raw,
			RawSet:      r.RawSet,
			Begin:       r.Begin,
			End:         r.End,
		}
		if r.HasKey {
			rj.Key = toValueJSON(r.Key)
		}
		if r.IsArgmax {
			rj.ArgmaxKey = toValueJSON(r.ArgmaxKey)
		}
		out.Releases = append(out.Releases, rj)
	}
	return out
}

// jobJSON is the wire form of a job snapshot. Result is present only
// once the job is done.
type jobJSON struct {
	ID          string      `json:"id"`
	Analyst     string      `json:"analyst"`
	State       JobState    `json:"state"`
	Error       string      `json:"error,omitempty"`
	SubmittedAt time.Time   `json:"submitted_at"`
	StartedAt   *time.Time  `json:"started_at,omitempty"`
	FinishedAt  *time.Time  `json:"finished_at,omitempty"`
	Result      *resultJSON `json:"result,omitempty"`
}

func toJobJSON(info JobInfo, withResult bool) jobJSON {
	j := jobJSON{
		ID:          info.ID,
		Analyst:     info.Analyst,
		State:       info.State,
		Error:       info.Error,
		SubmittedAt: info.SubmittedAt,
	}
	if !info.StartedAt.IsZero() {
		t := info.StartedAt
		j.StartedAt = &t
	}
	if !info.FinishedAt.IsZero() {
		t := info.FinishedAt
		j.FinishedAt = &t
	}
	if withResult && info.Result != nil {
		j.Result = toResultJSON(info.Result)
	}
	return j
}

func (a *API) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// submitRequest is the POST /v1/queries body.
type submitRequest struct {
	Analyst string `json:"analyst"`
	Query   string `json:"query"`
}

// maxSubmitBytes caps a submission body; a query program is text and
// never legitimately approaches this.
const maxSubmitBytes = 1 << 20

func (a *API) submit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := a.sched.Submit(req.Analyst, req.Query)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrAnalystBusy), errors.Is(err, ErrQueueFull):
			status = http.StatusTooManyRequests
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	info, _ := a.sched.Job(id)
	writeJSON(w, http.StatusAccepted, toJobJSON(info, false))
}

func (a *API) listJobs(w http.ResponseWriter, r *http.Request) {
	infos := a.sched.Jobs(r.URL.Query().Get("analyst"))
	out := make([]jobJSON, len(infos))
	for i, info := range infos {
		out[i] = toJobJSON(info, false)
	}
	writeJSON(w, http.StatusOK, out)
}

var errUnknownJob = errors.New("server: unknown job id")

func (a *API) getJob(w http.ResponseWriter, r *http.Request) {
	info, ok := a.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, toJobJSON(info, true))
}

func (a *API) getResult(w http.ResponseWriter, r *http.Request) {
	info, ok := a.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob)
		return
	}
	switch info.State {
	case JobDone:
		if info.Result == nil {
			// Defensive: a done job always carries a result in this
			// process; never nil-deref if an invariant slips.
			writeError(w, http.StatusInternalServerError, errors.New("server: result unavailable"))
			return
		}
		writeJSON(w, http.StatusOK, toResultJSON(info.Result))
	case JobFailed:
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{
			"state": string(JobFailed), "error": info.Error,
		})
	default:
		writeJSON(w, http.StatusConflict, map[string]string{
			"state": string(info.State), "error": "result not ready",
		})
	}
}

// getTrace serves the span tree recorded for a terminal job: the raw
// JSON persisted on the job record (obs.SpanTree), so it resolves for
// recovered jobs across restarts too.
func (a *API) getTrace(w http.ResponseWriter, r *http.Request) {
	info, ok := a.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob)
		return
	}
	if !info.Finished() {
		writeJSON(w, http.StatusConflict, map[string]string{
			"state": string(info.State), "error": "trace not ready",
		})
		return
	}
	if len(info.Trace) == 0 {
		writeError(w, http.StatusNotFound, errors.New("server: no trace recorded for job"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(info.Trace)
}

// metricsContentType is the Prometheus text exposition content type.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// getMetrics serves the engine registry (which the scheduler's
// instruments also live in) in Prometheus text exposition format. 404
// when the engine was built with DisableMetrics.
func (a *API) getMetrics(w http.ResponseWriter, _ *http.Request) {
	reg := a.engine.Metrics()
	if reg == nil {
		writeError(w, http.StatusNotFound, errors.New("server: metrics disabled"))
		return
	}
	w.Header().Set("Content-Type", metricsContentType)
	_, _ = reg.WriteTo(w)
}

// cameraJSON is the wire form of one registered camera.
type cameraJSON struct {
	Name       string   `json:"name"`
	Width      float64  `json:"width"`
	Height     float64  `json:"height"`
	FPS        float64  `json:"fps"`
	Start      string   `json:"start"`
	Frames     int64    `json:"frames"`
	Epsilon    float64  `json:"epsilon"`
	RhoSeconds float64  `json:"rho_seconds"`
	K          int      `json:"k"`
	Masks      []string `json:"masks,omitempty"`
	Schemes    []string `json:"schemes,omitempty"`
}

func (a *API) listCameras(w http.ResponseWriter, _ *http.Request) {
	infos := a.engine.Cameras()
	out := make([]cameraJSON, len(infos))
	for i, ci := range infos {
		out[i] = cameraJSON{
			Name:       ci.Name,
			Width:      ci.W,
			Height:     ci.H,
			FPS:        float64(ci.FPS),
			Start:      ci.Start.Format(time.RFC3339),
			Frames:     ci.Frames,
			Epsilon:    ci.Epsilon,
			RhoSeconds: ci.Policy.Rho.Seconds(),
			K:          ci.Policy.K,
			Masks:      ci.Masks,
			Schemes:    ci.Schemes,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) getBudget(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	frame := int64(0)
	if q := r.URL.Query().Get("frame"); q != "" {
		f, err := strconv.ParseInt(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		frame = f
	}
	remaining, err := a.engine.Remaining(name, frame)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"camera": name, "frame": frame, "remaining": remaining,
	})
}

func (a *API) listExecutables(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, a.engine.Registry().Names())
}

// auditJSON is the wire form of one audit-log entry.
type auditJSON struct {
	At           time.Time `json:"at"`
	Cameras      []string  `json:"cameras"`
	Releases     int       `json:"releases"`
	EpsilonSpent float64   `json:"epsilon_spent"`
	Denied       bool      `json:"denied,omitempty"`
	Reason       string    `json:"reason,omitempty"`
}

func (a *API) getAudit(w http.ResponseWriter, _ *http.Request) {
	log := a.engine.AuditLog()
	out := make([]auditJSON, len(log))
	for i, e := range log {
		out[i] = auditJSON{
			At:           e.At,
			Cameras:      e.Cameras,
			Releases:     e.Releases,
			EpsilonSpent: e.EpsilonSpent,
			Denied:       e.Denied,
			Reason:       e.Reason,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// stateJSON is the wire form of the engine's durable-store status.
type stateJSON struct {
	Durable              bool   `json:"durable"`
	Dir                  string `json:"dir,omitempty"`
	Generation           int64  `json:"generation,omitempty"`
	WALBytes             int64  `json:"wal_bytes,omitempty"`
	RecordsSinceSnapshot int64  `json:"records_since_snapshot,omitempty"`
	Snapshots            int64  `json:"snapshots,omitempty"`
	LastSnapshot         string `json:"last_snapshot,omitempty"`
	LastSnapshotError    string `json:"last_snapshot_error,omitempty"`
	Cameras              int    `json:"cameras,omitempty"`
	Jobs                 int    `json:"jobs,omitempty"`
	AuditEntries         int    `json:"audit_entries,omitempty"`
}

func (a *API) getState(w http.ResponseWriter, _ *http.Request) {
	si := a.engine.StateInfo()
	out := stateJSON{
		Durable:              si.Durable,
		Dir:                  si.Dir,
		Generation:           si.Generation,
		WALBytes:             si.WALBytes,
		RecordsSinceSnapshot: si.RecordsSinceSnapshot,
		Snapshots:            si.Snapshots,
		LastSnapshotError:    si.LastSnapshotError,
		Cameras:              si.Cameras,
		Jobs:                 si.Jobs,
		AuditEntries:         si.AuditEntries,
	}
	if !si.LastSnapshot.IsZero() {
		out.LastSnapshot = si.LastSnapshot.Format(time.RFC3339Nano)
	}
	writeJSON(w, http.StatusOK, out)
}

// statsCameraJSON is the wire form of one camera's budget summary in
// the stats endpoint.
type statsCameraJSON struct {
	Name    string  `json:"name"`
	Epsilon float64 `json:"epsilon"`
	// Remaining is the worst-case remaining per-frame ε over every
	// charged frame (epsilon when untouched).
	Remaining float64 `json:"remaining"`
}

func (a *API) getStats(w http.ResponseWriter, _ *http.Request) {
	cs := a.engine.CacheStats()
	fs := a.engine.FlightStats()
	ps := a.engine.PartialStats()
	budgets := a.engine.CameraBudgets()
	cams := make([]statsCameraJSON, len(budgets))
	for i, cb := range budgets {
		cams[i] = statsCameraJSON{Name: cb.Name, Epsilon: cb.Epsilon, Remaining: cb.Remaining}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"scheduler": a.sched.Stats(),
		"cameras":   cams,
		"singleflight": map[string]any{
			"leaders":   fs.Leaders,
			"followers": fs.Followers,
			"handoffs":  fs.Handoffs,
			"timeouts":  fs.Timeouts,
			"waiting":   fs.Waiting,
		},
		"chunk_cache": map[string]any{
			"hits":           cs.Hits,
			"misses":         cs.Misses,
			"hit_rate":       cs.HitRate(),
			"puts":           cs.Puts,
			"evictions":      cs.Evictions,
			"entries":        cs.Entries,
			"bytes":          cs.Bytes,
			"max_bytes":      cs.MaxBytes,
			"disk_hits":      cs.DiskHits,
			"disk_misses":    cs.DiskMisses,
			"disk_puts":      cs.DiskPuts,
			"promotions":     cs.Promotions,
			"disk_bytes":     cs.DiskBytes,
			"disk_max_bytes": cs.DiskMaxBytes,
			"disk_segments":  cs.DiskSegments,
			"disk_evictions": cs.DiskEvictions,
		},
		"partial_agg": map[string]any{
			"plans":         ps.Plans,
			"declined":      ps.Declined,
			"folds":         ps.Folds,
			"merges":        ps.Merges,
			"cached_chunks": ps.CachedChunks,
			"state_hits":    ps.StateHits,
			"state_misses":  ps.StateMisses,
			"state_puts":    ps.StatePuts,
		},
	})
}
