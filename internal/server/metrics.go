package server

import (
	"time"

	"privid/internal/obs"
)

// schedMetrics holds the scheduler's hot-path instruments. They live in
// the engine's registry so one scrape covers both layers; every field
// no-ops when nil (engine built with core.Options.DisableMetrics).
type schedMetrics struct {
	// stageSeconds reuses the engine's per-stage latency family for the
	// serving-layer stages (parse, queue_wait). Registration is
	// idempotent, so whichever layer registers first owns the family and
	// both observe into it.
	stageSeconds *obs.HistogramVec
	// submissions counts submissions accepted into the queue.
	submissions *obs.Counter
	// refusals counts refused submissions by reason (parse, busy,
	// queue_full, closed).
	refusals *obs.CounterVec
}

func newSchedMetrics(reg *obs.Registry) *schedMetrics {
	return &schedMetrics{
		stageSeconds: reg.HistogramVec("privid_query_stage_seconds",
			"Query latency by pipeline stage.", nil, "stage"),
		submissions: reg.Counter("privid_scheduler_submissions_total",
			"Query submissions accepted into the queue."),
		refusals: reg.CounterVec("privid_scheduler_refusals_total",
			"Query submissions refused, by reason (parse, busy, queue_full, closed).",
			"reason"),
	}
}

// stage observes one serving-layer stage duration.
func (m *schedMetrics) stage(name string, d time.Duration) {
	if m == nil {
		return
	}
	m.stageSeconds.With(name).Observe(d.Seconds())
}

// refused counts one refused submission.
func (m *schedMetrics) refused(reason string) {
	if m == nil {
		return
	}
	m.refusals.With(reason).Inc()
}

// registerCollectors installs the scheduler's scrape-time collectors:
// queue depth, running jobs, pool size, recovered-job and slow-query
// counts. Called once from NewScheduler before the workers start and
// never under s.mu, mirroring the engine's registration discipline (a
// scrape runs collectors under the registry's read lock and may take
// s.mu; registration must therefore never happen under s.mu).
func (s *Scheduler) registerCollectors(reg *obs.Registry) {
	reg.GaugeFunc("privid_scheduler_queue_depth",
		"Jobs waiting for a worker.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("privid_scheduler_workers",
		"Worker-pool size (max concurrent query executions).",
		func() float64 { return float64(s.opts.Workers) })
	reg.GaugeFunc("privid_scheduler_running",
		"Jobs currently executing on the worker pool.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, j := range s.jobs {
				if j.info.State == JobRunning {
					n++
				}
			}
			return float64(n)
		})
	reg.CollectFunc("privid_scheduler_recovered_jobs_total",
		"Terminal jobs adopted from the durable store at startup.",
		obs.TypeCounter, nil, func(emit obs.Emit) {
			s.mu.Lock()
			defer s.mu.Unlock()
			emit(nil, float64(s.recovered))
		})
	reg.CollectFunc("privid_slow_queries_total",
		"Slow-query log entries written.", obs.TypeCounter, nil,
		func(emit obs.Emit) { emit(nil, float64(s.slow.Entries())) })
}
