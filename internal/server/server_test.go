package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"privid/internal/core"
	"privid/internal/policy"
	"privid/internal/scene"
	"privid/internal/table"
	"privid/internal/video"
)

// newTestEngine registers one synthetic campus camera (10 minutes at
// 10 fps, stream anchored at 2021-03-15 6:00am) and a cheap headcount
// executable.
func newTestEngine(t *testing.T) *core.Engine {
	t.Helper()
	e := core.New(core.Options{Seed: 1})
	s := scene.Generate(scene.Campus(), 1, 10*time.Minute)
	if err := e.RegisterCamera(core.CameraConfig{
		Name:    "campus",
		Source:  &video.SceneSource{Camera: "campus", Scene: s},
		Policy:  policy.Policy{Rho: time.Minute, K: 2},
		Epsilon: 100,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Registry().Register("headcount", func(chunk *video.Chunk) []table.Row {
		n := 0
		for _, o := range chunk.Frame(chunk.Len() / 2).Objects {
			if o.EntityID >= 0 {
				n++
			}
		}
		return []table.Row{{table.N(float64(n))}}
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

const testQuery = `
SPLIT campus BEGIN 3-15-2021/6:00am END 3-15-2021/6:05am
  BY TIME 30sec STRIDE 0sec INTO c;
PROCESS c USING headcount TIMEOUT 5sec PRODUCING 1 ROWS
  WITH SCHEMA (n:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.01;`

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// pollJob polls the job endpoint until the job reaches a terminal
// state.
func pollJob(t *testing.T, base, id string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/queries/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		j := decode[jobJSON](t, resp)
		if j.State == JobDone || j.State == JobFailed {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobJSON{}
}

func TestHTTPSubmitPollResult(t *testing.T) {
	engine := newTestEngine(t)
	sched := NewScheduler(engine, SchedulerOptions{Workers: 2})
	defer sched.Close()
	ts := httptest.NewServer(NewAPI(engine, sched))
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/queries", submitRequest{Analyst: "alice", Query: testQuery})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	sub := decode[jobJSON](t, resp)
	if sub.ID == "" || sub.Analyst != "alice" {
		t.Fatalf("bad submit response %+v", sub)
	}

	job := pollJob(t, ts.URL, sub.ID)
	if job.State != JobDone {
		t.Fatalf("job failed: %s", job.Error)
	}
	if job.Result == nil || len(job.Result.Releases) != 1 {
		t.Fatalf("bad result %+v", job.Result)
	}
	if job.Result.EpsilonSpent <= 0 {
		t.Fatalf("no budget consumed: %+v", job.Result)
	}

	// The result endpoint returns the same releases.
	resp2, err := http.Get(ts.URL + "/v1/queries/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", resp2.StatusCode)
	}
	res := decode[resultJSON](t, resp2)
	if len(res.Releases) != 1 || res.Releases[0].Desc != job.Result.Releases[0].Desc {
		t.Fatalf("result mismatch: %+v vs %+v", res, job.Result)
	}
}

func TestHTTPConcurrentAnalysts(t *testing.T) {
	engine := newTestEngine(t)
	sched := NewScheduler(engine, SchedulerOptions{Workers: 4, PerAnalystInFlight: 8})
	defer sched.Close()
	ts := httptest.NewServer(NewAPI(engine, sched))
	defer ts.Close()

	const analysts = 4
	const perAnalyst = 3
	var wg sync.WaitGroup
	errs := make(chan error, analysts*perAnalyst)
	for a := 0; a < analysts; a++ {
		for q := 0; q < perAnalyst; q++ {
			wg.Add(1)
			go func(a int) {
				defer wg.Done()
				resp := postJSON(t, ts.URL+"/v1/queries",
					submitRequest{Analyst: fmt.Sprintf("analyst-%d", a), Query: testQuery})
				if resp.StatusCode != http.StatusAccepted {
					errs <- fmt.Errorf("submit status %d", resp.StatusCode)
					return
				}
				sub := decode[jobJSON](t, resp)
				job := pollJob(t, ts.URL, sub.ID)
				if job.State != JobDone {
					errs <- fmt.Errorf("job %s failed: %s", job.ID, job.Error)
				}
			}(a)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every submission shows up in the audit log with budget consumed.
	resp, err := http.Get(ts.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	audit := decode[[]auditJSON](t, resp)
	if len(audit) != analysts*perAnalyst {
		t.Fatalf("audit has %d entries, want %d", len(audit), analysts*perAnalyst)
	}

	// Identical repeated queries should have hit the chunk cache — the
	// partial-state tier when the aggregation pushes down, the table
	// tier otherwise.
	st := engine.CacheStats()
	if st.Hits == 0 && st.StateHits == 0 {
		t.Fatalf("expected chunk-cache hits across repeated queries, got %+v", st)
	}
}

func TestHTTPPerAnalystLimit(t *testing.T) {
	engine := newTestEngine(t)
	gate := make(chan struct{})
	if err := engine.Registry().Register("slow", func(chunk *video.Chunk) []table.Row {
		<-gate
		return []table.Row{{table.N(1)}}
	}); err != nil {
		t.Fatal(err)
	}
	slowQuery := strings.ReplaceAll(testQuery, "USING headcount", "USING slow")

	sched := NewScheduler(engine, SchedulerOptions{Workers: 1, PerAnalystInFlight: 2})
	ts := httptest.NewServer(NewAPI(engine, sched))
	defer ts.Close()

	// Two in-flight jobs fill bob's limit; the third is refused 429.
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/queries", submitRequest{Analyst: "bob", Query: slowQuery})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := postJSON(t, ts.URL+"/v1/queries", submitRequest{Analyst: "bob", Query: slowQuery})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	// Another analyst is not affected by bob's limit.
	resp = postJSON(t, ts.URL+"/v1/queries", submitRequest{Analyst: "carol", Query: testQuery})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("carol's submit status %d", resp.StatusCode)
	}
	resp.Body.Close()

	close(gate)
	sched.Close()
}

func TestHTTPBadRequests(t *testing.T) {
	engine := newTestEngine(t)
	sched := NewScheduler(engine, SchedulerOptions{Workers: 1})
	defer sched.Close()
	ts := httptest.NewServer(NewAPI(engine, sched))
	defer ts.Close()

	// Syntax errors are rejected synchronously.
	resp := postJSON(t, ts.URL+"/v1/queries", submitRequest{Analyst: "alice", Query: "SPLIT nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Missing analyst name.
	resp = postJSON(t, ts.URL+"/v1/queries", submitRequest{Query: testQuery})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing analyst status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown job.
	r, err := http.Get(ts.URL + "/v1/queries/q-999999")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", r.StatusCode)
	}
	r.Body.Close()

	// Unknown camera budget.
	r, err = http.Get(ts.URL + "/v1/cameras/nope/budget")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown camera status %d, want 404", r.StatusCode)
	}
	r.Body.Close()
}

func TestHTTPCamerasBudgetStats(t *testing.T) {
	engine := newTestEngine(t)
	sched := NewScheduler(engine, SchedulerOptions{Workers: 1})
	defer sched.Close()
	ts := httptest.NewServer(NewAPI(engine, sched))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/cameras")
	if err != nil {
		t.Fatal(err)
	}
	cams := decode[[]cameraJSON](t, resp)
	if len(cams) != 1 || cams[0].Name != "campus" || cams[0].Epsilon != 100 {
		t.Fatalf("cameras = %+v", cams)
	}

	// Budget starts full, drops after a query.
	resp, err = http.Get(ts.URL + "/v1/cameras/campus/budget?frame=100")
	if err != nil {
		t.Fatal(err)
	}
	before := decode[map[string]any](t, resp)
	if before["remaining"].(float64) != 100 {
		t.Fatalf("fresh budget = %v, want 100", before["remaining"])
	}

	id, err := sched.Submit("alice", testQuery)
	if err != nil {
		t.Fatal(err)
	}
	pollJob(t, ts.URL, id)

	resp, err = http.Get(ts.URL + "/v1/cameras/campus/budget?frame=100")
	if err != nil {
		t.Fatal(err)
	}
	after := decode[map[string]any](t, resp)
	if after["remaining"].(float64) >= 100 {
		t.Fatalf("budget not consumed: %v", after["remaining"])
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[map[string]any](t, resp)
	schedStats := stats["scheduler"].(map[string]any)
	if schedStats["Done"].(float64) < 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if _, ok := stats["chunk_cache"].(map[string]any)["max_bytes"]; !ok {
		t.Fatalf("stats missing chunk cache: %+v", stats)
	}
	pa, ok := stats["partial_agg"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing partial_agg: %+v", stats)
	}
	for _, k := range []string{"plans", "declined", "folds", "merges", "cached_chunks",
		"state_hits", "state_misses", "state_puts"} {
		if _, ok := pa[k]; !ok {
			t.Fatalf("partial_agg stats missing %q: %+v", k, pa)
		}
	}
	sf, ok := stats["singleflight"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing singleflight: %+v", stats)
	}
	for _, k := range []string{"leaders", "followers", "handoffs", "timeouts", "waiting"} {
		if _, ok := sf[k]; !ok {
			t.Fatalf("singleflight stats missing %q: %+v", k, sf)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/executables")
	if err != nil {
		t.Fatal(err)
	}
	execs := decode[[]string](t, resp)
	if len(execs) != 1 || execs[0] != "headcount" {
		t.Fatalf("executables = %v", execs)
	}
}

// Terminal jobs beyond MaxFinishedJobs are pruned oldest-first so a
// long-running server's job table stays bounded.
func TestSchedulerPrunesFinishedJobs(t *testing.T) {
	engine := newTestEngine(t)
	sched := NewScheduler(engine, SchedulerOptions{Workers: 1, PerAnalystInFlight: 100, MaxFinishedJobs: 3})
	defer sched.Close()

	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		id, err := sched.Submit("alice", testQuery)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Pruning removes done jobs from the table, so wait for the queue
	// to drain rather than for a done-count.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := sched.Stats()
		if st.Queued+st.Running == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(sched.Jobs("")); got != 3 {
		t.Fatalf("retained %d jobs, want 3", got)
	}
	// The newest three survive, the oldest three are gone.
	for _, id := range ids[:3] {
		if _, ok := sched.Job(id); ok {
			t.Fatalf("job %s should have been pruned", id)
		}
	}
	for _, id := range ids[3:] {
		info, ok := sched.Job(id)
		if !ok || info.State != JobDone {
			t.Fatalf("job %s missing or not done: %+v", id, info)
		}
	}
}

func TestSchedulerCloseDrains(t *testing.T) {
	engine := newTestEngine(t)
	sched := NewScheduler(engine, SchedulerOptions{Workers: 2})
	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		id, err := sched.Submit("alice", testQuery)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	sched.Close()
	for _, id := range ids {
		info, ok := sched.Job(id)
		if !ok || !info.Finished() {
			t.Fatalf("job %s not finished after Close: %+v", id, info)
		}
	}
	if _, err := sched.Submit("alice", testQuery); err != ErrClosed {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
}
