package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// testClock is a deterministic monotonic clock.
func testClock() func() time.Time {
	t := time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestTraceTreeShape(t *testing.T) {
	tr := NewTrace("query", testClock())
	root := tr.Root()
	split := root.Child("split")
	split.End()
	proc := root.Child("process")
	proc.Set("table", "t")
	var wg sync.WaitGroup
	for _, cam := range []string{"camA", "camB"} {
		wg.Add(1)
		go func(cam string) {
			defer wg.Done()
			sh := proc.Child("shard")
			sh.Set("camera", cam)
			sh.Add("cache_hits", 1)
			sh.Add("cache_hits", 2)
			sh.End()
		}(cam)
	}
	wg.Wait()
	proc.End()
	tr.Finish()

	tree := tr.Tree()
	if tree.Name != "query" || tree.DurationNS <= 0 {
		t.Fatalf("root: %+v", tree)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("children: got %d, want 2", len(tree.Children))
	}
	procTree := tree.Children[1]
	if len(procTree.Children) != 2 {
		t.Fatalf("shards: got %d, want 2", len(procTree.Children))
	}
	cams := map[string]bool{}
	for _, sh := range procTree.Children {
		if sh.Name != "shard" {
			t.Errorf("shard name %q", sh.Name)
		}
		cams[sh.Attrs["camera"].(string)] = true
		if hits := sh.Attrs["cache_hits"].(float64); hits != 3 {
			t.Errorf("cache_hits: got %g, want 3", hits)
		}
	}
	if !cams["camA"] || !cams["camB"] {
		t.Errorf("cameras: %v", cams)
	}

	// JSON round-trips into the same shape (the trace endpoint's and
	// job record's wire format).
	b, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back SpanTree
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "query" || len(back.Children) != 2 {
		t.Fatalf("round-trip: %+v", back)
	}

	stages := tree.StageDurations()
	if stages["split"] <= 0 || stages["shard"] <= 0 {
		t.Errorf("stage durations: %v", stages)
	}
}

func TestChildSpanning(t *testing.T) {
	tr := NewTrace("query", testClock())
	start := time.Date(2021, 3, 15, 5, 59, 0, 0, time.UTC)
	tr.Root().ChildSpanning("parse", start, 42*time.Millisecond)
	tr.Finish()
	tree := tr.Tree()
	if len(tree.Children) != 1 {
		t.Fatal("parse span missing")
	}
	p := tree.Children[0]
	if p.Name != "parse" || p.DurationNS != (42*time.Millisecond).Nanoseconds() || !p.Start.Equal(start) {
		t.Errorf("parse span: %+v", p)
	}
}

func TestSlowLogThresholdAndSync(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 100*time.Millisecond)
	l.Record(SlowEntry{JobID: "q-1", Duration: 50 * time.Millisecond})
	l.Record(SlowEntry{JobID: "q-2", Analyst: "alice", Duration: 150 * time.Millisecond,
		Stages: map[string]int64{"process": 120e6}})
	if l.Entries() != 1 {
		t.Fatalf("entries: got %d, want 1", l.Entries())
	}
	line := strings.TrimSpace(buf.String())
	if strings.Contains(line, "q-1") {
		t.Error("fast query logged")
	}
	var e SlowEntry
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("entry not JSON: %v (%q)", err, line)
	}
	if e.JobID != "q-2" || e.Analyst != "alice" || e.Stages["process"] != 120e6 {
		t.Errorf("entry: %+v", e)
	}
	if err := l.Sync(); err != nil {
		t.Errorf("sync: %v", err)
	}
	// Disabled configurations return nil.
	if NewSlowLog(nil, time.Second) != nil || NewSlowLog(&buf, 0) != nil {
		t.Error("disabled slowlog not nil")
	}
}
