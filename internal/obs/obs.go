// Package obs is Privid's dependency-free observability substrate: a
// metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms with Prometheus text exposition), a per-query span tracer,
// and a structured slow-query log.
//
// Design constraints, in order:
//
//   - Privacy: nothing in this package may carry a noised value, a raw
//     aggregate, or intermediate-table content. Instruments hold only
//     counts, durations, byte sizes and ε amounts that are already part
//     of the owner's audit log. The instrumentation call sites in
//     internal/core enforce this by construction — they observe stage
//     boundaries and cache outcomes, never release values.
//
//   - Hot-path cost: counters and histograms are single atomic
//     operations; every instrument method is safe on a nil receiver, so
//     an uninstrumented engine (core.Options.DisableMetrics) pays one
//     predictable nil check per call site and allocates nothing.
//
//   - No dependencies: stdlib only, so every layer (core, dp, store,
//     server) can import obs without cycles.
//
// Scrape-time state (queue depths, per-camera remaining ε, WAL sizes)
// is exported through collector callbacks (Registry.CollectFunc)
// evaluated at exposition time rather than instruments updated on the
// hot path. Collectors must be registered at construction time, never
// while holding a lock a collector itself takes, or a scrape could
// deadlock against registration.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType is the Prometheus family type of a metric.
type MetricType int

// Metric family types (the subset the registry supports).
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// DurationBuckets is the default latency histogram layout: roughly
// exponential from 10 µs to 10 s, bracketing everything from one atomic
// cache hit to a fleet-scale video query.
var DurationBuckets = []float64{
	0.00001, 0.000025, 0.0001, 0.00025, 0.001, 0.0025,
	0.01, 0.025, 0.1, 0.25, 1, 2.5, 10,
}

// --- instruments ---

// Counter is a monotonically increasing float64. All methods are safe
// on a nil receiver (no-ops), so disabled instrumentation needs no
// branching at call sites.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (v < 0 is ignored; counters never decrease).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a settable float64. All methods are safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Buckets are upper bounds
// (inclusive, per Prometheus `le` semantics) in ascending order; an
// implicit +Inf bucket catches the rest. Observe is lock-free: one
// binary search plus two atomic updates. All methods are safe on a nil
// receiver.
type Histogram struct {
	bounds []float64       // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    Counter         // reuses Counter's CAS float accumulation
	count  atomic.Uint64
}

// NewHistogram returns a histogram over the given upper bounds (sorted
// copies are taken; an explicit trailing +Inf is dropped). Used
// directly only in tests; production instruments come from a Registry.
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	for len(bs) > 0 && math.IsInf(bs[len(bs)-1], 1) {
		bs = bs[:len(bs)-1]
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le-inclusive)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// BucketCounts returns the non-cumulative per-bucket counts; the last
// entry is the +Inf bucket. Nil receivers return nil.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// --- vectors (labelled instruments) ---

// labelKey serializes label values into a map key. Label values never
// contain \x00 in this codebase (camera names, stage names), but escape
// anyway so distinct value tuples cannot collide.
func labelKey(vals []string) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteString(strconv.Quote(v))
		b.WriteByte(',')
	}
	return b.String()
}

// CounterVec is a family of Counters distinguished by label values.
// Safe on a nil receiver (With returns a nil *Counter, itself a no-op).
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (created on
// first use).
func (v *CounterVec) With(labelVals ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.child(labelVals, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a family of Gauges distinguished by label values.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.child(labelVals, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a family of Histograms distinguished by label values.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	if v == nil {
		return nil
	}
	h := v.fam.child(labelVals, func() any { return NewHistogram(v.fam.buckets) })
	return h.(*Histogram)
}

// --- registry ---

// Emit is the callback a collector uses to report one sample at scrape
// time: the label values (matching the family's label keys) and the
// sample value.
type Emit func(labelVals []string, value float64)

// family is one metric family: a name, type, label schema, and either
// a set of live instruments or a scrape-time collector.
type family struct {
	name      string
	help      string
	typ       MetricType
	labelKeys []string
	buckets   []float64 // histogram families only

	mu       sync.Mutex
	children map[string]*child
	order    []string // insertion order of children, for stable exposition

	collect func(Emit) // non-nil for collector families
}

type child struct {
	labelVals []string
	inst      any // *Counter, *Gauge or *Histogram
}

func (f *family) child(labelVals []string, mk func() any) any {
	if len(labelVals) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d",
			f.name, len(f.labelKeys), len(labelVals)))
	}
	key := labelKey(labelVals)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c.inst
	}
	c := &child{labelVals: append([]string(nil), labelVals...), inst: mk()}
	f.children[key] = c
	f.order = append(f.order, key)
	return c.inst
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. It is safe for concurrent use. The zero value is
// not usable; call NewRegistry. All registration methods are safe on a
// nil receiver and return nil instruments (which are themselves no-op),
// so a disabled deployment threads nil registries with no branching.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register returns the family for name, creating it on first use.
// Re-registering a name returns the existing family (so layers built at
// different times — engine, scheduler — can share one family, e.g. the
// per-stage latency histogram); the type must match.
func (r *Registry) register(name, help string, typ MetricType, labelKeys []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labelKeys) != len(labelKeys) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labelKeys: append([]string(nil), labelKeys...),
		buckets:   append([]float64(nil), buckets...),
		children:  map[string]*child{},
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or finds) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, help, TypeCounter, nil, nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec registers (or finds) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.register(name, help, TypeCounter, labelKeys, nil)}
}

// Gauge registers (or finds) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, TypeGauge, nil, nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec registers (or finds) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.register(name, help, TypeGauge, labelKeys, nil)}
}

// Histogram registers (or finds) an unlabelled histogram with the
// given bucket upper bounds (nil uses DurationBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DurationBuckets
	}
	f := r.register(name, help, TypeHistogram, nil, buckets)
	return f.child(nil, func() any { return NewHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec registers (or finds) a labelled histogram family with
// the given bucket upper bounds (nil uses DurationBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DurationBuckets
	}
	return &HistogramVec{fam: r.register(name, help, TypeHistogram, labelKeys, buckets)}
}

// CollectFunc registers a scrape-time collector: fn is invoked on every
// exposition and emits samples for the family (counter or gauge only).
// Use it for state that already lives behind its own lock — queue
// depths, cache counters, per-camera remaining ε — instead of mirroring
// that state into instruments on the hot path.
//
// fn runs while the registry holds its read lock, so it must not
// register metrics, and collectors must be registered only at
// construction time, never under a lock fn itself acquires.
func (r *Registry) CollectFunc(name, help string, typ MetricType, labelKeys []string, fn func(Emit)) {
	if r == nil {
		return
	}
	f := r.register(name, help, typ, labelKeys, nil)
	f.collect = fn
}

// GaugeFunc registers an unlabelled scrape-time gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.CollectFunc(name, help, TypeGauge, nil, func(emit Emit) { emit(nil, fn()) })
}

// --- exposition ---

// formatValue renders a sample value in Prometheus text format.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// writeLabels renders {k1="v1",k2="v2"}; extra appends one more pair
// (the histogram `le` label). Empty label sets render nothing.
func writeLabels(b *strings.Builder, keys, vals []string, extraKey, extraVal string) {
	if len(keys) == 0 && extraKey == "" {
		return
	}
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, `%s="%s"`, k, escapeLabel(vals[i]))
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, `%s="%s"`, extraKey, escapeLabel(extraVal))
	}
	b.WriteByte('}')
}

// WriteTo renders every family in Prometheus text exposition format
// (content type `text/plain; version=0.0.4`). Families render in
// registration order; children in creation order — stable output makes
// scrapes diffable in tests. Safe on a nil receiver (writes nothing).
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b strings.Builder
	for _, name := range r.order {
		f := r.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		if f.collect != nil {
			f.collect(func(labelVals []string, v float64) {
				b.WriteString(f.name)
				writeLabels(&b, f.labelKeys, labelVals, "", "")
				b.WriteByte(' ')
				b.WriteString(formatValue(v))
				b.WriteByte('\n')
			})
			continue
		}
		f.mu.Lock()
		children := make([]*child, 0, len(f.order))
		for _, key := range f.order {
			children = append(children, f.children[key])
		}
		f.mu.Unlock()
		for _, c := range children {
			switch inst := c.inst.(type) {
			case *Counter:
				b.WriteString(f.name)
				writeLabels(&b, f.labelKeys, c.labelVals, "", "")
				fmt.Fprintf(&b, " %s\n", formatValue(inst.Value()))
			case *Gauge:
				b.WriteString(f.name)
				writeLabels(&b, f.labelKeys, c.labelVals, "", "")
				fmt.Fprintf(&b, " %s\n", formatValue(inst.Value()))
			case *Histogram:
				cum := uint64(0)
				counts := inst.BucketCounts()
				for i, cnt := range counts {
					cum += cnt
					le := "+Inf"
					if i < len(inst.bounds) {
						le = formatValue(inst.bounds[i])
					}
					b.WriteString(f.name)
					b.WriteString("_bucket")
					writeLabels(&b, f.labelKeys, c.labelVals, "le", le)
					fmt.Fprintf(&b, " %d\n", cum)
				}
				b.WriteString(f.name)
				b.WriteString("_sum")
				writeLabels(&b, f.labelKeys, c.labelVals, "", "")
				fmt.Fprintf(&b, " %s\n", formatValue(inst.Sum()))
				b.WriteString(f.name)
				b.WriteString("_count")
				writeLabels(&b, f.labelKeys, c.labelVals, "", "")
				fmt.Fprintf(&b, " %d\n", cum)
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
