package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CheckExposition validates a Prometheus text-format (version 0.0.4)
// exposition: comment/HELP/TYPE structure, metric-name and label
// syntax, parseable sample values, and that histogram series use only
// the _bucket/_sum/_count suffixes of a declared histogram family. It
// returns the number of distinct metric families seen.
//
// This is deliberately a small validator, not a full parser: CI uses it
// to assert that /v1/metrics stays scrapeable, and tests use the family
// count to assert coverage.
func CheckExposition(r io.Reader) (families int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typed := map[string]string{} // family name -> TYPE
	seen := map[string]bool{}
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return 0, fmt.Errorf("line %d: malformed comment %q", line, text)
			}
			if !validMetricName(fields[2]) {
				return 0, fmt.Errorf("line %d: invalid metric name %q", line, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return 0, fmt.Errorf("line %d: TYPE missing type", line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return 0, fmt.Errorf("line %d: unknown type %q", line, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name, rest, perr := splitName(text)
		if perr != nil {
			return 0, fmt.Errorf("line %d: %v", line, perr)
		}
		fam := name
		// Histogram series must belong to a declared histogram family.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typed[base] == "histogram" {
				fam = base
				break
			}
		}
		if _, ok := typed[fam]; !ok {
			return 0, fmt.Errorf("line %d: sample %q has no preceding TYPE", line, name)
		}
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return 0, fmt.Errorf("line %d: unterminated label set", line)
			}
			if err := checkLabels(rest[1:end]); err != nil {
				return 0, fmt.Errorf("line %d: %v", line, err)
			}
			rest = rest[end+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return 0, fmt.Errorf("line %d: want value [timestamp], got %q", line, rest)
		}
		if v := fields[0]; v != "+Inf" && v != "-Inf" && v != "NaN" {
			if _, perr := strconv.ParseFloat(v, 64); perr != nil {
				return 0, fmt.Errorf("line %d: bad sample value %q", line, v)
			}
		}
		seen[fam] = true
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return len(seen), nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// splitName splits a sample line at the end of its metric name.
func splitName(s string) (name, rest string, err error) {
	i := 0
	for i < len(s) && s[i] != '{' && s[i] != ' ' {
		i++
	}
	if i == 0 || !validMetricName(s[:i]) {
		return "", "", fmt.Errorf("invalid sample name in %q", s)
	}
	return s[:i], s[i:], nil
}

// checkLabels validates the interior of a {…} label set. Quoted values
// with escaped quotes are accepted; names must be valid label names.
func checkLabels(s string) error {
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq <= 0 {
			return fmt.Errorf("malformed label pair in %q", s)
		}
		name := s[:eq]
		if !validMetricName(name) || strings.Contains(name, ":") {
			return fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value after %q", name)
		}
		// Scan the quoted value, honoring backslash escapes.
		i := 1
		for i < len(s) {
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			return fmt.Errorf("unterminated label value for %q", name)
		}
		s = s[i+1:]
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		} else if len(s) > 0 {
			return fmt.Errorf("trailing garbage after label %q", name)
		}
	}
	return nil
}
