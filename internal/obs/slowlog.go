package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowEntry is one structured slow-query log record. Like every other
// observability artifact it carries identifiers, durations and ε
// amounts only — the query text is included (the analyst already chose
// to submit it and the audit log retains it), but never result values.
type SlowEntry struct {
	At       time.Time     `json:"at"`
	JobID    string        `json:"job_id"`
	Analyst  string        `json:"analyst"`
	Query    string        `json:"query"`
	State    string        `json:"state"` // done or failed
	Error    string        `json:"error,omitempty"`
	Duration time.Duration `json:"duration_ns"`
	// QueueWait is how long the job sat queued before a worker picked
	// it up — it separates "the query is slow" from "the pool is busy".
	QueueWait time.Duration `json:"queue_wait_ns"`
	// EpsilonSpent is the budget the query consumed (0 when denied).
	EpsilonSpent float64 `json:"epsilon_spent"`
	// Stages is the per-stage duration breakdown from the query's
	// trace, in nanoseconds keyed by stage name.
	Stages map[string]int64 `json:"stages_ns,omitempty"`
}

// SlowLog writes JSON-line slow-query entries to a writer once a job's
// execution exceeds a threshold. It is safe for concurrent use and all
// methods are safe on a nil receiver, so an unconfigured log costs one
// nil check.
type SlowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
	entries   uint64
}

// NewSlowLog returns a log writing entries for executions at or above
// threshold. A nil writer or non-positive threshold disables the log
// (returns nil).
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	if w == nil || threshold <= 0 {
		return nil
	}
	return &SlowLog{w: w, threshold: threshold}
}

// Threshold returns the configured threshold (0 on nil).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Entries returns how many entries have been written (0 on nil).
func (l *SlowLog) Entries() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.entries
}

// Record writes the entry if its Duration meets the threshold. Encode
// or write errors are swallowed: the slow-query log is diagnostic and
// must never fail a query that already succeeded.
func (l *SlowLog) Record(e SlowEntry) {
	if l == nil || e.Duration < l.threshold {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(b); err == nil {
		l.entries++
	}
}

// Sync flushes the underlying writer if it supports Sync (os.File) or
// Flush (bufio.Writer); called on graceful shutdown so the tail of the
// log survives exit.
func (l *SlowLog) Sync() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch w := l.w.(type) {
	case interface{ Sync() error }:
		return w.Sync()
	case interface{ Flush() error }:
		return w.Flush()
	}
	return nil
}
