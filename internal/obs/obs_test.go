package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the `le` semantics: a value equal
// to an upper bound lands in that bucket (Prometheus buckets are
// le-inclusive), a value just above it lands in the next, and values
// above every bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2.5, 10})
	for _, v := range []float64{0, 1, 1.0000001, 2.5, 9.999, 10, 10.001, 1e9} {
		h.Observe(v)
	}
	want := []uint64{
		2, // le=1: 0, 1
		2, // le=2.5: 1.0000001, 2.5
		2, // le=10: 9.999, 10
		2, // +Inf: 10.001, 1e9
	}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d: got %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 8 {
		t.Errorf("count: got %d, want 8", h.Count())
	}
	wantSum := 0.0 + 1 + 1.0000001 + 2.5 + 9.999 + 10 + 10.001 + 1e9
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("sum: got %g, want %g", h.Sum(), wantSum)
	}
}

// TestHistogramUnsortedAndInfBounds ensures constructor normalization:
// bounds are sorted and a trailing +Inf is dropped (it is implicit).
func TestHistogramUnsortedAndInfBounds(t *testing.T) {
	h := NewHistogram([]float64{10, math.Inf(1), 1})
	h.Observe(5)
	got := h.BucketCounts()
	if len(got) != 3 { // le=1, le=10, +Inf
		t.Fatalf("buckets: got %d, want 3", len(got))
	}
	if got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Errorf("counts: got %v, want [0 1 0]", got)
	}
}

// TestNilInstrumentsAreNoOps pins the disabled-observability contract:
// every instrument and registry method must be callable on nil.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(-1)
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.BucketCounts() != nil {
		t.Error("nil histogram recorded")
	}
	var cv *CounterVec
	cv.With("a").Inc()
	var gv *GaugeVec
	gv.With("a").Set(1)
	var hv *HistogramVec
	hv.With("a").Observe(1)
	var r *Registry
	r.Counter("x", "").Inc()
	r.GaugeFunc("y", "", func() float64 { return 1 })
	if n, err := r.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Errorf("nil registry wrote %d bytes, err %v", n, err)
	}
	var s *Span
	s.Child("c").End()
	s.Set("k", 1)
	s.Add("k", 1)
	s.End()
	var tr *Trace
	tr.Finish()
	if b, err := tr.JSON(); b != nil || err != nil {
		t.Errorf("nil trace JSON: %v, %v", b, err)
	}
	var sl *SlowLog
	sl.Record(SlowEntry{})
	if err := sl.Sync(); err != nil {
		t.Errorf("nil slowlog sync: %v", err)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// instrument updates, vec lookups and scrapes interleaved — and relies
// on -race to catch unsynchronized access. Counts are verified exactly.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	hv := r.HistogramVec("lat_seconds", "latency", []float64{0.1, 1}, "stage")
	r.GaugeFunc("depth", "queue depth", func() float64 { return 7 })

	const workers, perWorker = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stage := []string{"split", "process", "noise"}[w%3]
			for i := 0; i < perWorker; i++ {
				c.Inc()
				hv.With(stage).Observe(float64(i%3) / 2)
				if i%100 == 0 {
					var b strings.Builder
					if _, err := r.WriteTo(&b); err != nil {
						t.Errorf("scrape: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter: got %g, want %d", got, workers*perWorker)
	}
	total := uint64(0)
	for _, stage := range []string{"split", "process", "noise"} {
		total += hv.With(stage).Count()
	}
	if total != workers*perWorker {
		t.Errorf("histogram observations: got %d, want %d", total, workers*perWorker)
	}

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	fams, err := CheckExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, b.String())
	}
	if fams != 3 {
		t.Errorf("families: got %d, want 3", fams)
	}
}

// TestReRegistrationSharesFamily pins that two layers registering the
// same metric name get the same underlying instrument.
func TestReRegistrationSharesFamily(t *testing.T) {
	r := NewRegistry()
	a := r.CounterVec("stage_total", "", "stage")
	b := r.CounterVec("stage_total", "", "stage")
	a.With("parse").Add(2)
	b.With("parse").Inc()
	if got := a.With("parse").Value(); got != 3 {
		t.Errorf("shared family: got %g, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("schema mismatch did not panic")
		}
	}()
	r.Gauge("stage_total", "") // different type must panic
}

// TestExpositionFormat checks the rendered text against the validator
// and a few exact-format expectations (label escaping, +Inf bucket,
// cumulative counts).
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "a counter").Add(2)
	r.GaugeVec("g", "a gauge", "camera").With(`we"ird\cam`).Set(1.5)
	h := r.Histogram("h_seconds", "a histogram", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(99)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if _, err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE c_total counter",
		"c_total 2",
		`g{camera="we\"ird\\cam"} 1.5`,
		`h_seconds_bucket{le="0.5"} 1`,
		`h_seconds_bucket{le="1"} 2`,
		`h_seconds_bucket{le="+Inf"} 3`,
		"h_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestCheckExpositionRejects feeds malformed expositions to the
// validator.
func TestCheckExpositionRejects(t *testing.T) {
	bad := []string{
		"no_type_decl 1\n",
		"# TYPE m bogus\nm 1\n",
		"# TYPE m counter\nm{x=unquoted} 1\n",
		"# TYPE m counter\nm not-a-number\n",
		"# TYPE 0bad counter\n",
		"# TYPE m counter\nm{x=\"unterminated} 1\n",
	}
	for _, in := range bad {
		if _, err := CheckExposition(strings.NewReader(in)); err == nil {
			t.Errorf("accepted malformed exposition %q", in)
		}
	}
}
