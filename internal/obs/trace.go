package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Span is one timed segment of a query's lifecycle. Spans form a tree
// (per-shard PROCESS spans under their PROCESS span, stages under the
// root) and carry numeric/string attributes — counts, durations, ε
// amounts and identifiers only, never released values or row contents.
//
// Spans are safe for concurrent use (parallel shards annotate sibling
// spans) and every method is safe on a nil receiver, so untraced
// executions thread a nil span through the same call sites for free.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    map[string]any
	children []*Span
	clock    func() time.Time
}

func (s *Span) now() time.Time {
	if s.clock != nil {
		return s.clock()
	}
	return time.Now()
}

// Child starts a child span. Returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, clock: s.clock}
	c.start = c.now()
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ChildSpanning attaches an already-measured child span (e.g. the
// parse stage, timed before the trace existed).
func (s *Span) ChildSpanning(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: start, end: start.Add(d), clock: s.clock}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End marks the span finished. Idempotent; later calls keep the first
// end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = s.now()
	}
	s.mu.Unlock()
}

// Set stores an attribute. Values must be JSON-encodable scalars
// (string, float64, int, bool).
func (s *Span) Set(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// Add accumulates a numeric attribute (creating it at delta). Used by
// concurrent chunk workers to tally cache hits and sandbox time on
// their shard's span.
func (s *Span) Add(key string, delta float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	if cur, ok := s.attrs[key].(float64); ok {
		s.attrs[key] = cur + delta
	} else {
		s.attrs[key] = delta
	}
	s.mu.Unlock()
}

// Duration returns the span's length (zero until End; 0 on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// SpanTree is the serialized form of a span: the wire format of
// GET /v1/queries/{id}/trace and the shape persisted on terminal job
// records. Durations are nanoseconds.
type SpanTree struct {
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanTree     `json:"children,omitempty"`
}

// Tree snapshots the span and its descendants. Safe on a nil receiver
// (returns a zero tree).
func (s *Span) Tree() SpanTree {
	if s == nil {
		return SpanTree{}
	}
	s.mu.Lock()
	t := SpanTree{Name: s.name, Start: s.start}
	if !s.end.IsZero() {
		t.DurationNS = s.end.Sub(s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		t.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			t.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		t.Children = append(t.Children, c.Tree())
	}
	return t
}

// StageDurations flattens the tree into name → total duration, summing
// spans that share a name (the slow-query log's compact stage
// breakdown).
func (t SpanTree) StageDurations() map[string]time.Duration {
	out := map[string]time.Duration{}
	var walk func(n SpanTree)
	walk = func(n SpanTree) {
		out[n.Name] += time.Duration(n.DurationNS)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, c := range t.Children {
		walk(c)
	}
	return out
}

// Trace is the root of one query's span tree.
type Trace struct {
	root *Span
}

// NewTrace starts a trace whose root span is named name. clock
// overrides time.Now (tests); nil uses the real clock.
func NewTrace(name string, clock func() time.Time) *Trace {
	r := &Span{name: name, clock: clock}
	r.start = r.now()
	return &Trace{root: r}
}

// Root returns the root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span.
func (t *Trace) Finish() {
	if t != nil {
		t.root.End()
	}
}

// Tree snapshots the whole trace.
func (t *Trace) Tree() SpanTree {
	if t == nil {
		return SpanTree{}
	}
	return t.root.Tree()
}

// JSON renders the trace's span tree (nil on a nil trace).
func (t *Trace) JSON() ([]byte, error) {
	if t == nil {
		return nil, nil
	}
	return json.Marshal(t.Tree())
}
