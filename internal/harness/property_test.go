package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"privid/internal/core"
	"privid/internal/dp"
	"privid/internal/policy"
	"privid/internal/query"
	"privid/internal/store"
	"privid/internal/table"
	"privid/internal/video"
)

// propCameras are the two-camera deployment of the property test.
var propCameras = []string{"cam0", "cam1"}

// 60 minutes at ε=3 makes 500 small queries dense enough that both
// admissions and denials occur, so the invariant is checked on both
// paths.
const propMinutes = 60
const propEpsilon = 3.0

func buildPropEngine(t *testing.T, dir string) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Options{
		Seed:     1,
		StateDir: dir,
		// A small threshold exercises snapshot/compaction mid-
		// sequence: the invariant must hold across generation rolls.
		SnapshotEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cam := range propCameras {
		if err := e.RegisterCamera(core.CameraConfig{
			Name:    cam,
			Source:  &video.SceneSource{Camera: cam, Scene: testScene(propMinutes)},
			Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
			Epsilon: propEpsilon,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Registry().Register("one", func(*video.Chunk) []table.Row {
		return []table.Row{{table.N(1)}}
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

func propQuery(cam string, beginMin, endMin int, eps float64) string {
	return fmt.Sprintf(`
SPLIT %s BEGIN %s END %s BY TIME 30sec STRIDE 0sec INTO chunks;
PROCESS chunks USING one TIMEOUT 5sec PRODUCING 2 ROWS
  WITH SCHEMA (v:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING %g;`, cam, tsLiteral(beginMin), tsLiteral(endMin), eps)
}

// checkInvariant asserts, for every camera at sampled frames, that
//
//	Epsilon - sum(WAL charges over the frame) == Engine.Remaining
//
// exactly — the durable ledger and the live ledger agree bit-for-bit.
func checkInvariant(t *testing.T, e *core.Engine, dir string, when string) {
	t.Helper()
	st, err := store.ReadState(dir, 0)
	if err != nil {
		t.Fatalf("%s: read WAL state: %v", when, err)
	}
	totalFrames := int64(propMinutes) * 600
	for _, cam := range propCameras {
		for frame := int64(0); frame < totalFrames; frame += 997 {
			rem, err := e.Remaining(cam, frame)
			if err != nil {
				t.Fatal(err)
			}
			if want := propEpsilon - st.Spent(cam, frame); rem != want {
				t.Fatalf("%s: %s frame %d: engine remaining %v != epsilon - WAL charges %v",
					when, cam, frame, rem, want)
			}
		}
	}
}

// TestWALLedgerEquivalenceProperty runs 1000 randomized queries (500
// per mode: straight through, and with a process restart mid-
// sequence) and checks the WAL/ledger equivalence invariant
// throughout. Budget denials are expected once frames fill up — they
// must consume nothing, which the invariant catches.
func TestWALLedgerEquivalenceProperty(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 100
	}
	for _, restart := range []bool{false, true} {
		name := "straight"
		if restart {
			name = "restart-midway"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			e := buildPropEngine(t, dir)
			defer func() { e.Close() }()
			rng := rand.New(rand.NewSource(42))
			admitted, denied := 0, 0
			for i := 0; i < n; i++ {
				cam := propCameras[rng.Intn(len(propCameras))]
				begin := rng.Intn(propMinutes - 1)
				end := begin + 1 + rng.Intn(10)
				if end > propMinutes {
					end = propMinutes
				}
				eps := []float64{0.05, 0.1, 0.25, 0.5}[rng.Intn(4)]
				prog, err := query.Parse(propQuery(cam, begin, end, eps))
				if err != nil {
					t.Fatal(err)
				}
				_, err = e.Execute(prog)
				switch {
				case err == nil:
					admitted++
				case errors.As(err, new(*dp.ErrBudgetExhausted)):
					denied++
				default:
					t.Fatalf("query %d: %v", i, err)
				}
				if restart && i == n/2 {
					if err := e.Close(); err != nil {
						t.Fatal(err)
					}
					e = buildPropEngine(t, dir)
					checkInvariant(t, e, dir, fmt.Sprintf("after restart at %d", i))
				}
				if i%100 == 99 {
					checkInvariant(t, e, dir, fmt.Sprintf("after query %d", i))
				}
			}
			checkInvariant(t, e, dir, "at end")
			if admitted == 0 || denied == 0 {
				t.Fatalf("workload not exercising both paths: admitted=%d denied=%d", admitted, denied)
			}
			t.Logf("admitted=%d denied=%d", admitted, denied)
		})
	}
}
