package harness_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"privid/internal/harness"
	"privid/internal/obs"
	"privid/internal/server"
)

// findSpans collects every span named name, depth-first.
func findSpans(t obs.SpanTree, name string) []obs.SpanTree {
	var out []obs.SpanTree
	if t.Name == name {
		out = append(out, t)
	}
	for _, c := range t.Children {
		out = append(out, findSpans(c, name)...)
	}
	return out
}

func spanNum(s obs.SpanTree, key string) float64 {
	switch v := s.Attrs[key].(type) {
	case float64:
		return v
	case nil:
		return 0
	default:
		return -1
	}
}

// TestE2ETraceMultiCamera pins the trace endpoint contract end to end:
// a completed cross-camera query serves a span tree with one shard span
// per camera under PROCESS, a serving-layer parse span, and cache
// hit/miss tallies that agree with the engine's cache counters.
func TestE2ETraceMultiCamera(t *testing.T) {
	t.Parallel() // stacks carry isolated obs registries — no cross-test bleed
	h := harness.Start(t, harness.Config{Cameras: 3, Epsilon: 10})

	// A pending (unknown) job's trace is a 404; a bad ID too.
	resp, err := http.Get(h.Srv.URL + "/v1/queries/q-999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace status %d, want 404", resp.StatusCode)
	}

	job := h.SubmitWait("alice", fleetCountQuery(0.5))
	if job.State != "done" {
		t.Fatalf("job = %+v", job)
	}
	tree := h.Trace(job.ID)
	if tree.Name != "query" || tree.DurationNS <= 0 {
		t.Fatalf("root span = %+v", tree)
	}
	if tree.Attrs["job_id"] != job.ID || tree.Attrs["analyst"] != "alice" {
		t.Errorf("root attrs = %+v", tree.Attrs)
	}
	for _, stage := range []string{"parse", "split", "process", "aggregate", "admit", "wal_commit", "noise"} {
		if n := len(findSpans(tree, stage)); n != 1 {
			t.Errorf("stage %q: %d spans, want 1", stage, n)
		}
	}
	shards := findSpans(tree, "shard")
	if len(shards) != 3 {
		t.Fatalf("shard spans = %d, want 3 (one per camera)", len(shards))
	}
	var misses float64
	cams := map[string]bool{}
	for _, sh := range shards {
		cam, _ := sh.Attrs["camera"].(string)
		cams[cam] = true
		misses += spanNum(sh, "cache_misses")
		if spanNum(sh, "cache_hits") != 0 {
			t.Errorf("cold shard recorded hits: %+v", sh.Attrs)
		}
	}
	for i := 0; i < 3; i++ {
		if !cams[harness.CameraName(i)] {
			t.Errorf("no shard span for %s", harness.CameraName(i))
		}
	}
	if got := float64(h.Engine.CacheStats().Misses); misses != got {
		t.Errorf("trace misses = %v, engine counted %v", misses, got)
	}

	// Warm rerun: the shard spans must report hits matching the cache's
	// delta.
	preHits := h.Engine.CacheStats().Hits
	job2 := h.SubmitWait("alice", fleetCountQuery(0.5))
	if job2.State != "done" {
		t.Fatalf("warm job = %+v", job2)
	}
	var hits float64
	for _, sh := range findSpans(h.Trace(job2.ID), "shard") {
		hits += spanNum(sh, "cache_hits")
	}
	if got := float64(h.Engine.CacheStats().Hits - preHits); hits != got {
		t.Errorf("warm trace hits = %v, engine delta %v", hits, got)
	}
}

// TestE2ETraceSurvivesRestart pins that traces are persisted with
// terminal jobs: after a restart against the same state dir, the trace
// endpoint still serves the span tree.
func TestE2ETraceSurvivesRestart(t *testing.T) {
	t.Parallel() // stacks carry isolated obs registries — no cross-test bleed
	h := harness.Start(t, harness.Config{StateDir: t.TempDir()})
	job := h.SubmitWait("alice", harness.CountQuery(0, 2, 0.5))
	if job.State != "done" {
		t.Fatalf("job = %+v", job)
	}
	want := h.Trace(job.ID)

	h.Restart()
	sched, _ := h.Stats()
	if sched.Recovered == 0 {
		t.Error("restart recovered no jobs")
	}
	got := h.Trace(job.ID)
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if !bytes.Equal(wb, gb) {
		t.Errorf("trace changed across restart:\n before: %s\n after:  %s", wb, gb)
	}
	if len(findSpans(got, "shard")) == 0 {
		t.Errorf("recovered trace lost its shard spans: %+v", got)
	}
}

// TestE2EMetricsScrape pins the scrape contract: /v1/metrics serves
// valid Prometheus text covering engine and scheduler families, and the
// stats endpoint's per-camera budgets agree with the gauges.
func TestE2EMetricsScrape(t *testing.T) {
	t.Parallel() // stacks carry isolated obs registries — no cross-test bleed
	h := harness.Start(t, harness.Config{Cameras: 2, Epsilon: 10, StateDir: t.TempDir()})
	if job := h.SubmitWait("alice", harness.CountQuery(0, 2, 0.5)); job.State != "done" {
		t.Fatalf("job = %+v", job)
	}

	out := h.Metrics()
	if _, err := obs.CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, want := range []string{
		`privid_queries_total{outcome="ok"} 1`,
		`privid_scheduler_submissions_total 1`,
		`privid_scheduler_queue_depth 0`,
		`privid_camera_epsilon_remaining{camera="cam"} 9.5`,
		`privid_camera_epsilon_remaining{camera="cam2"} 10`,
		`privid_query_stage_seconds_bucket{stage="parse",le="+Inf"} 1`,
		`privid_query_stage_seconds_bucket{stage="queue_wait",le="+Inf"} 1`,
		"# TYPE privid_wal_append_seconds histogram",
		"privid_wal_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	_, cams := h.Stats()
	if len(cams) != 2 {
		t.Fatalf("stats cameras = %+v, want 2", cams)
	}
	if cams[0].Name != "cam" || cams[0].Remaining != 9.5 || cams[0].Epsilon != 10 {
		t.Errorf("stats cameras[0] = %+v", cams[0])
	}
	if cams[1].Name != "cam2" || cams[1].Remaining != 10 {
		t.Errorf("stats cameras[1] = %+v", cams[1])
	}

	// A refused submission (parse error) shows up in the refusal
	// counter.
	if _, status, _ := h.TrySubmit("alice", "SPLIT nope"); status != http.StatusBadRequest {
		t.Fatalf("garbage submit status %d", status)
	}
	if out := h.Metrics(); !strings.Contains(out, `privid_scheduler_refusals_total{reason="parse"} 1`) {
		t.Error("parse refusal not counted")
	}
}

// TestE2ESlowQueryLog pins the slow-query log contract: with a
// threshold of 1ns every terminal job is logged as one JSON line
// carrying durations, queue wait, ε spent and a per-stage breakdown —
// and the log is flushed by Close. Also covers the post-shutdown
// scrape regression: the registry must stay scrapeable after the stack
// stops.
func TestE2ESlowQueryLog(t *testing.T) {
	t.Parallel() // stacks carry isolated obs registries — no cross-test bleed
	var buf bytes.Buffer
	h := harness.Start(t, harness.Config{
		Scheduler: server.SchedulerOptions{
			SlowQueryLog:       &buf,
			SlowQueryThreshold: time.Nanosecond,
		},
	})
	if job := h.SubmitWait("alice", harness.CountQuery(0, 2, 0.5)); job.State != "done" {
		t.Fatalf("job = %+v", job)
	}
	if out := h.Metrics(); !strings.Contains(out, "privid_slow_queries_total 1") {
		t.Error("slow-query counter not exported")
	}
	sched, _ := h.Stats()
	if sched.SlowQueries != 1 {
		t.Errorf("stats slow queries = %d, want 1", sched.SlowQueries)
	}

	h.Stop() // syncs the slow log, flushes the engine's final snapshot

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow log has %d lines, want 1: %q", len(lines), buf.String())
	}
	var e obs.SlowEntry
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("slow entry not JSON: %v (%s)", err, lines[0])
	}
	if e.JobID == "" || e.Analyst != "alice" || e.State != "done" {
		t.Errorf("slow entry = %+v", e)
	}
	if e.Duration <= 0 || e.QueueWait < 0 {
		t.Errorf("slow entry durations = %v / %v", e.Duration, e.QueueWait)
	}
	if e.EpsilonSpent != 0.5 {
		t.Errorf("slow entry ε = %v, want 0.5", e.EpsilonSpent)
	}
	for _, stage := range []string{"parse", "process", "admit", "noise"} {
		if e.Stages[stage] < 0 {
			t.Errorf("stage %q breakdown negative: %v", stage, e.Stages)
		}
		if _, ok := e.Stages[stage]; !ok {
			t.Errorf("stage %q missing from breakdown: %v", stage, e.Stages)
		}
	}

	// Post-shutdown scrape regression: collectors must tolerate the
	// closed stack (idle scheduler, closed WAL) and render cleanly.
	var after strings.Builder
	if _, err := h.Engine.Metrics().WriteTo(&after); err != nil {
		t.Fatalf("post-shutdown scrape: %v", err)
	}
	if _, err := obs.CheckExposition(strings.NewReader(after.String())); err != nil {
		t.Fatalf("post-shutdown exposition invalid: %v", err)
	}
	if !strings.Contains(after.String(), `privid_queries_total{outcome="ok"} 1`) {
		t.Error("post-shutdown scrape lost counters")
	}
}
