package harness

import (
	"strings"
	"testing"
)

// TestE2EDiskCacheSurvivesRestart exercises the tier-2 chunk cache end
// to end: a query populates the disk store, the whole stack restarts
// (new engine process state, same cache directory), and the repeated
// query is answered entirely from disk — zero sandbox executions.
// The RAM tier is disabled so a hit can only have come from disk.
func TestE2EDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	h := Start(t, Config{ChunkCacheBytes: -1, DiskCacheDir: dir})

	// 2 minutes at 30 s chunks = 4 chunks, all sandbox misses.
	if job := h.SubmitWait("alice", CountQuery(0, 2, 0)); job.State != "done" {
		t.Fatalf("populate query failed: %s", job.Error)
	}
	cs := h.Engine.CacheStats()
	if cs.DiskPuts != 4 || cs.DiskHits != 0 {
		t.Fatalf("populate stats = %+v, want 4 disk puts, 0 hits", cs)
	}

	h.Restart()

	if got := h.Engine.CacheStats(); got.DiskPuts != 0 || got.DiskHits != 0 {
		t.Fatalf("restarted engine starts with stale counters: %+v", got)
	}
	if job := h.SubmitWait("alice", CountQuery(0, 2, 0)); job.State != "done" {
		t.Fatalf("post-restart query failed: %s", job.Error)
	}
	// COUNT pushes down, so the repeat is served from the disk tier's
	// partial-state entries — the persisted per-chunk aggregate states
	// survive the restart just like the persisted tables do.
	cs = h.Engine.CacheStats()
	if cs.DiskStateHits != 4 || cs.DiskStateMisses != 0 || cs.DiskMisses != 0 {
		t.Fatalf("post-restart stats = %+v, want 4 disk state hits, 0 misses", cs)
	}
	// Ground truth that no executable ran: the sandbox counters of the
	// restarted engine are still zero.
	out := h.Metrics()
	if !strings.Contains(out, `privid_sandbox_runs_total{result="clean"} 0`) {
		t.Fatalf("sandbox ran after restart despite a warm disk cache:\n%s",
			grepLines(out, "privid_sandbox_runs_total"))
	}
	// Tier-2 gauges are exported when the disk tier is configured, and
	// the state hits show up in the pushdown counters.
	if !strings.Contains(out, "privid_chunk_cache_disk_segments 1") {
		t.Fatalf("disk-tier metrics missing:\n%s", grepLines(out, "privid_chunk_cache"))
	}
	if !strings.Contains(out, "privid_partial_agg_state_hits_total 4") {
		t.Fatalf("partial-state metrics missing:\n%s", grepLines(out, "privid_partial_agg"))
	}
}

// TestE2ETieredPromotionOverHTTP runs with both tiers enabled: the
// first post-restart query promotes disk entries into RAM, the second
// is served from RAM without touching disk again.
func TestE2ETieredPromotionOverHTTP(t *testing.T) {
	dir := t.TempDir()
	h := Start(t, Config{DiskCacheDir: dir})

	if job := h.SubmitWait("alice", CountQuery(0, 2, 0)); job.State != "done" {
		t.Fatalf("populate query failed: %s", job.Error)
	}
	h.Restart()
	if job := h.SubmitWait("alice", CountQuery(0, 2, 0)); job.State != "done" {
		t.Fatalf("promoting query failed: %s", job.Error)
	}
	// The pushed-down COUNT is served from the disk tier's partial
	// states, which promote into RAM exactly like tables.
	cs := h.Engine.CacheStats()
	if cs.DiskStateHits != 4 || cs.Promotions != 4 {
		t.Fatalf("stats after promotion = %+v, want 4 disk state hits promoted", cs)
	}
	if job := h.SubmitWait("alice", CountQuery(0, 2, 0)); job.State != "done" {
		t.Fatalf("RAM-hit query failed: %s", job.Error)
	}
	after := h.Engine.CacheStats()
	if after.DiskStateHits != 4 {
		t.Fatalf("disk state hits grew to %d; promoted entries must be served from RAM", after.DiskStateHits)
	}
	if after.StateHits <= cs.StateHits {
		t.Fatalf("no RAM state hits recorded: %+v", after)
	}
}

// grepLines returns the lines of s containing substr (test failure
// context).
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
