package harness

import (
	"net/http"
	"strings"
	"testing"
)

// TestSubmitPollResult is the basic end-to-end path: submit over HTTP,
// poll to completion, read the noised result.
func TestSubmitPollResult(t *testing.T) {
	h := Start(t, Config{})
	job := h.SubmitWait("alice", CountQuery(0, 2, 0))
	if job.State != "done" {
		t.Fatalf("job failed: %s", job.Error)
	}
	if job.Result == nil || len(job.Result.Releases) != 1 {
		t.Fatalf("result = %+v", job.Result)
	}
	r := job.Result.Releases[0]
	// 2 minutes at 30 s chunks = 4 chunks, one row each; COUNT(*) raw
	// is 4, noised around it. Sanity: the release names COUNT and paid
	// the default budget.
	if !strings.Contains(r.Desc, "COUNT") {
		t.Errorf("desc = %q", r.Desc)
	}
	if job.Result.EpsilonSpent != 1.0 {
		t.Errorf("spent = %v, want 1 (default)", job.Result.EpsilonSpent)
	}
	if r.NoiseScale <= 0 {
		t.Errorf("noise scale = %v", r.NoiseScale)
	}
	// The result endpoint serves the same outcome.
	var res Result
	h.get("/v1/queries/"+job.ID+"/result", http.StatusOK, &res)
	if len(res.Releases) != 1 || res.Releases[0].Value != r.Value {
		t.Errorf("result endpoint disagrees: %+v", res)
	}
}

// TestBudgetExhaustionOverHTTP drains a camera's budget with repeated
// queries and asserts the deny behavior end to end: failed job with a
// budget error, remaining-budget endpoint at zero for the window, and
// denials consuming nothing.
func TestBudgetExhaustionOverHTTP(t *testing.T) {
	h := Start(t, Config{Epsilon: 2.5})
	q := CountQuery(0, 2, 0) // consumes 1.0 per run
	for i := 0; i < 2; i++ {
		if job := h.SubmitWait("alice", q); job.State != "done" {
			t.Fatalf("query %d failed: %s", i, job.Error)
		}
	}
	if got := h.Budget(600); got != 0.5 {
		t.Errorf("remaining after 2 queries = %v, want 0.5", got)
	}
	job := h.SubmitWait("alice", q)
	if job.State != "failed" || !strings.Contains(job.Error, "budget exhausted") {
		t.Fatalf("third query: state=%s err=%q, want budget denial", job.State, job.Error)
	}
	// Denial consumed nothing: a cheaper query still fits.
	if got := h.Budget(600); got != 0.5 {
		t.Errorf("denial consumed budget: remaining = %v, want 0.5", got)
	}
	if job := h.SubmitWait("alice", CountQuery(0, 2, 0.5)); job.State != "done" {
		t.Fatalf("cheap query after denial failed: %s", job.Error)
	}
	if got := h.Budget(600); got != 0 {
		t.Errorf("remaining = %v, want 0", got)
	}
}

// TestAuditLogOverHTTP checks the owner's accountability record after
// a mixed success/denial workload.
func TestAuditLogOverHTTP(t *testing.T) {
	h := Start(t, Config{Epsilon: 1.5})
	if job := h.SubmitWait("alice", CountQuery(0, 2, 1.0)); job.State != "done" {
		t.Fatalf("first query failed: %s", job.Error)
	}
	if job := h.SubmitWait("bob", CountQuery(0, 2, 1.0)); job.State != "failed" {
		t.Fatal("second query should be denied")
	}
	log := h.Audit()
	if len(log) != 2 {
		t.Fatalf("%d audit entries, want 2", len(log))
	}
	ok, denied := log[0], log[1]
	if ok.Denied || ok.Releases != 1 || ok.EpsilonSpent != 1.0 {
		t.Errorf("success entry = %+v", ok)
	}
	if len(ok.Cameras) != 1 || ok.Cameras[0] != Camera {
		t.Errorf("success entry cameras = %v", ok.Cameras)
	}
	if !denied.Denied || denied.EpsilonSpent != 0 || !strings.Contains(denied.Reason, "budget exhausted") {
		t.Errorf("denial entry = %+v", denied)
	}
}

// TestRestartDurability is the acceptance test: spend part of a
// camera's budget, restart the server from the same StateDir, and the
// remaining budget must match exactly — while a fresh StateDir
// restores the full budget. Terminal jobs must also resolve after the
// restart.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	h := Start(t, Config{StateDir: dir})
	job := h.SubmitWait("alice", CountQuery(0, 2, 2.5))
	if job.State != "done" {
		t.Fatalf("query failed: %s", job.Error)
	}
	wantValue := job.Result.Releases[0].Value

	// Record remaining budget at probe frames before the restart.
	probes := []int64{0, 300, 600, 1199, 1200, 5000}
	before := map[int64]float64{}
	for _, f := range probes {
		before[f] = h.Budget(f)
	}
	if before[600] != 7.5 {
		t.Fatalf("pre-restart remaining = %v, want 7.5", before[600])
	}

	h.Restart()

	if !h.State().Durable {
		t.Fatal("restarted stack is not durable")
	}
	for _, f := range probes {
		if got := h.Budget(f); got != before[f] {
			t.Errorf("frame %d: remaining after restart = %v, want %v exactly", f, got, before[f])
		}
	}
	// The finished job survived the restart with its exact result.
	recovered, ok := h.Job(job.ID)
	if !ok {
		t.Fatal("job lost across restart")
	}
	if recovered.State != "done" || recovered.Result == nil {
		t.Fatalf("recovered job = %+v", recovered)
	}
	if got := recovered.Result.Releases[0].Value; got != wantValue {
		t.Errorf("recovered result value = %v, want %v", got, wantValue)
	}
	// Spending continues from the recovered ledger, not a fresh one.
	if job := h.SubmitWait("alice", CountQuery(0, 2, 8.0)); job.State != "failed" {
		t.Fatal("over-budget query admitted after restart — budget was refilled")
	}

	// A fresh StateDir is a fresh deployment: full budget.
	h2 := Start(t, Config{StateDir: t.TempDir()})
	if got := h2.Budget(600); got != 10 {
		t.Errorf("fresh state dir remaining = %v, want 10", got)
	}
}

// TestStateEndpoint sanity-checks /v1/state in both modes.
func TestStateEndpoint(t *testing.T) {
	h := Start(t, Config{})
	if st := h.State(); st.Durable {
		t.Errorf("in-memory stack reports durable: %+v", st)
	}
	hd := Start(t, Config{StateDir: t.TempDir()})
	hd.SubmitWait("alice", CountQuery(0, 1, 0.5))
	st := hd.State()
	if !st.Durable || st.Dir == "" {
		t.Errorf("state = %+v", st)
	}
	if st.WALBytes == 0 || st.Cameras != 1 {
		t.Errorf("state after charge = %+v", st)
	}
}
