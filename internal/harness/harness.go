// Package harness spins up a complete Privid serving stack — engine,
// scheduler, HTTP API — from one call, for end-to-end tests. It
// registers a deterministic synthetic camera and a trivial executable
// so tests exercise the real submit→poll→result path (admission, WAL
// durability, noise, audit) without caring about scene content.
//
//	h := harness.Start(t, harness.Config{})
//	job := h.SubmitWait("alice", harness.CountQuery(0, 2, 0))
//
// With Config.StateDir the stack is durable; Restart simulates a
// process restart against the same state directory.
package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"privid/internal/core"
	"privid/internal/geom"
	"privid/internal/obs"
	"privid/internal/policy"
	"privid/internal/sandbox"
	"privid/internal/scene"
	"privid/internal/server"
	"privid/internal/store"
	"privid/internal/table"
	"privid/internal/video"
)

// Camera is the test camera's name.
const Camera = "cam"

// TB is the slice of testing.TB the harness needs. testing.T and
// testing.B satisfy it; so does internal/sim's runtime reporter, which
// lets cmd/privid-sim drive a stack outside `go test`.
type TB interface {
	Helper()
	Cleanup(func())
	Logf(format string, args ...any)
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Config parameterizes the stack. The zero value is a fast in-memory
// deployment.
type Config struct {
	// StateDir enables the durable ledger ("" = in-memory).
	StateDir string
	// RepairState truncates a torn WAL on open (core.Options).
	RepairState bool
	// Store injects a store directly (fault tests); overrides
	// StateDir.
	Store store.Store
	// Epsilon is the camera's per-frame budget. 0 uses 10.
	Epsilon float64
	// DefaultQueryEpsilon is the engine's per-query default. 0 uses
	// the engine default (1).
	DefaultQueryEpsilon float64
	// Minutes is the camera stream length. 0 uses 10.
	Minutes int
	// SnapshotEvery is the WAL compaction threshold (0 = store
	// default, negative disables).
	SnapshotEvery int
	// Scheduler overrides scheduler options (zero value = defaults).
	Scheduler server.SchedulerOptions
	// Seed drives the noise sampler. 0 uses 1.
	Seed int64
	// Cameras is the number of registered test cameras (0 = 1). The
	// first is named Camera; extras are named CameraName(1), ... and
	// share the same scene shape, policy and Epsilon.
	Cameras int
	// ChunkCacheBytes configures the RAM chunk cache (0 = engine
	// default, negative disables the RAM tier).
	ChunkCacheBytes int64
	// DiskCacheDir enables the persistent tier-2 chunk cache ("" =
	// RAM-only). The directory outlives Restart, so memoized chunk
	// results survive a simulated process restart.
	DiskCacheDir string
	// DiskCacheBytes bounds the tier-2 cache (0 = engine default).
	// Tiny values induce cache thrash (chaos scenarios).
	DiskCacheBytes int64
	// Evaluation runs the engine in evaluation mode: every release
	// additionally reports its pre-noise Raw value (over HTTP too),
	// which the sim harness's ground-truth invariant depends on.
	Evaluation bool
	// Parallelism bounds concurrent sandbox executions engine-wide
	// (0 = engine default).
	Parallelism int
	// Metrics supplies a shared obs registry. nil (the default) gives
	// every boot its own fresh registry — stacks are isolated from
	// each other and from earlier incarnations, so parallel scenarios
	// can assert exact counter values. Set it to share one registry
	// across Restart (to watch counters accumulate over a stack's
	// lifetimes).
	Metrics *obs.Registry
	// WrapWALFile plumbs through to core.Options.WrapWALFile: the
	// chaos layer installs a storetest.FaultyFile here to tear WAL
	// commits under load. Applied on every boot (and WAL compaction).
	WrapWALFile func(store.File) store.File
	// CameraConfigs, when non-empty, replaces the default testScene
	// cameras entirely — the sim fleet registers its own sources,
	// policies and budgets. Cameras/Epsilon/Minutes are ignored.
	CameraConfigs []core.CameraConfig
	// Executables registers extra named ProcessFuncs alongside the
	// default "one" (whose name is reserved).
	Executables map[string]sandbox.ProcessFunc
	// WaitTimeout bounds Wait's polling (0 = 30s). Soak runs under
	// -race on loaded machines may need more.
	WaitTimeout time.Duration
	// BeforeBoot runs before every engine open — including the first —
	// with no stack running. The chaos layer corrupts disk-cache
	// segments here, between incarnations.
	BeforeBoot func()
}

func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = 10
	}
	if c.Minutes == 0 {
		c.Minutes = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Cameras == 0 {
		c.Cameras = 1
	}
	return c
}

// CameraName returns the i-th test camera's name; index 0 is Camera.
func CameraName(i int) string {
	if i == 0 {
		return Camera
	}
	return fmt.Sprintf("cam%d", i+1)
}

// H is a running stack. Engine, Sched and Srv are replaced by Restart.
type H struct {
	T      TB
	Cfg    Config
	Engine *core.Engine
	Sched  *server.Scheduler
	Srv    *httptest.Server

	stopped bool
	// reg is this incarnation's obs registry (Cfg.Metrics, or a fresh
	// one per boot when nil).
	reg *obs.Registry
}

// Registry returns the running stack's isolated obs registry.
func (h *H) Registry() *obs.Registry { return h.reg }

// streamStart anchors the test camera (matching the repo's test
// convention: the paper's 6:00 am capture window).
var streamStart = time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC)

// testScene builds a deterministic scene: one person per minute, each
// visible 20 s, walking across the frame at 10 fps.
func testScene(minutes int) *scene.Scene {
	s := &scene.Scene{
		Name: Camera, W: 1000, H: 500, FPS: 10,
		Start:  streamStart,
		Frames: int64(minutes) * 600,
	}
	for i := 0; i < minutes; i++ {
		enter := int64(i)*600 + 37
		exit := enter + 200
		s.Ents = append(s.Ents, &scene.Entity{
			ID: i, Class: scene.Person,
			Appearances: []scene.Appearance{{
				Enter: enter, Exit: exit,
				Traj: scene.NewPath(enter, exit, 20, 40, 1,
					scene.Waypoint{T: 0, P: geom.Point{X: 10, Y: 250}},
					scene.Waypoint{T: 1, P: geom.Point{X: 990, Y: 250}}),
			}},
		})
	}
	s.BuildIndex()
	return s
}

// one is the trivial executable: one row per chunk, value 1.
func one(*video.Chunk) []table.Row { return []table.Row{{table.N(1)}} }

// Start boots the stack and registers cleanup. Failures are fatal on
// t. The returned handle's helpers drive the stack over real HTTP.
func Start(t TB, cfg Config) *H {
	t.Helper()
	cfg = cfg.withDefaults()
	h := &H{T: t, Cfg: cfg}
	h.boot()
	t.Cleanup(h.Stop)
	return h
}

// boot builds engine, scheduler and HTTP server from h.Cfg.
func (h *H) boot() {
	h.T.Helper()
	if h.Cfg.BeforeBoot != nil {
		h.Cfg.BeforeBoot()
	}
	h.reg = h.Cfg.Metrics
	if h.reg == nil {
		// Isolated per-boot registry: parallel stacks (sim scenarios,
		// obs e2e tests) never see each other's counters.
		h.reg = obs.NewRegistry()
	}
	engine, err := core.Open(core.Options{
		Seed:                h.Cfg.Seed,
		DefaultQueryEpsilon: h.Cfg.DefaultQueryEpsilon,
		Evaluation:          h.Cfg.Evaluation,
		Parallelism:         h.Cfg.Parallelism,
		StateDir:            h.Cfg.StateDir,
		RepairState:         h.Cfg.RepairState,
		SnapshotEvery:       h.Cfg.SnapshotEvery,
		Store:               h.Cfg.Store,
		ChunkCacheBytes:     h.Cfg.ChunkCacheBytes,
		DiskCacheDir:        h.Cfg.DiskCacheDir,
		DiskCacheBytes:      h.Cfg.DiskCacheBytes,
		WrapWALFile:         h.Cfg.WrapWALFile,
		Metrics:             h.reg,
	})
	if err != nil {
		h.T.Fatalf("harness: open engine: %v", err)
	}
	cams := h.Cfg.CameraConfigs
	if len(cams) == 0 {
		for i := 0; i < h.Cfg.Cameras; i++ {
			name := CameraName(i)
			cams = append(cams, core.CameraConfig{
				Name:    name,
				Source:  &video.SceneSource{Camera: name, Scene: testScene(h.Cfg.Minutes)},
				Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
				Epsilon: h.Cfg.Epsilon,
			})
		}
	}
	for _, cc := range cams {
		if err := engine.RegisterCamera(cc); err != nil {
			h.T.Fatalf("harness: register camera %s: %v", cc.Name, err)
		}
	}
	if err := engine.Registry().Register("one", one); err != nil {
		h.T.Fatalf("harness: register executable: %v", err)
	}
	for name, fn := range h.Cfg.Executables {
		if err := engine.Registry().Register(name, fn); err != nil {
			h.T.Fatalf("harness: register executable %s: %v", name, err)
		}
	}
	h.Engine = engine
	h.Sched = server.NewScheduler(engine, h.Cfg.Scheduler)
	h.Srv = httptest.NewServer(server.NewAPI(engine, h.Sched))
	h.stopped = false
}

// Stop shuts the stack down gracefully: HTTP first, then the
// scheduler (draining jobs), then the engine (final snapshot).
// Idempotent.
func (h *H) Stop() {
	if h.stopped {
		return
	}
	h.stopped = true
	h.Srv.Close()
	h.Sched.Close()
	if err := h.Engine.Close(); err != nil {
		h.T.Errorf("harness: engine close: %v", err)
	}
}

// Restart simulates a process restart: graceful stop, then boot a
// fresh stack from the same Config (and thus the same StateDir).
func (h *H) Restart() {
	h.T.Helper()
	h.Stop()
	h.boot()
}

// Crash simulates an abrupt process death and restart: the HTTP
// frontend closes and the scheduler drains its in-flight jobs (whose
// WAL commits fail if the caller poisoned a chaos FaultyFile first),
// but the engine is abandoned WITHOUT Close — no final snapshot, no
// graceful WAL close, exactly like a killed process — and a fresh
// stack boots from the same state directory with repair forced (a
// torn tail must not block restart). In-memory stacks just restart.
func (h *H) Crash() {
	h.T.Helper()
	if !h.stopped {
		h.Srv.Close()
		h.Sched.Close()
		// The abandoned engine's group-commit goroutine and file
		// handles leak until process exit, as they would in a real
		// crash. The drained scheduler guarantees it never writes
		// again, so the reopened WAL owns the tail.
		h.stopped = true
	}
	if h.Cfg.StateDir != "" {
		h.Cfg.RepairState = true
	}
	h.boot()
}

// tsLiteral renders a minute offset from the stream start as a query
// timestamp literal (MM-DD-YYYY/H:MMam).
func tsLiteral(minOffset int) string {
	ts := streamStart.Add(time.Duration(minOffset) * time.Minute)
	hour := ts.Hour() % 12
	if hour == 0 {
		hour = 12
	}
	ampm := "am"
	if ts.Hour() >= 12 {
		ampm = "pm"
	}
	return fmt.Sprintf("%02d-%02d-%d/%d:%02d%s",
		int(ts.Month()), ts.Day(), ts.Year(), hour, ts.Minute(), ampm)
}

// CountQuery returns a COUNT(*) program over [beginMin, endMin)
// minutes of the test camera in 30 s chunks, consuming eps (0 = the
// engine's per-query default).
func CountQuery(beginMin, endMin int, eps float64) string {
	consuming := ""
	if eps > 0 {
		consuming = fmt.Sprintf(" CONSUMING %g", eps)
	}
	return fmt.Sprintf(`
SPLIT %s BEGIN %s END %s BY TIME 30sec STRIDE 0sec INTO chunks;
PROCESS chunks USING one TIMEOUT 5sec PRODUCING 2 ROWS
  WITH SCHEMA (v:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t%s;`, Camera, tsLiteral(beginMin), tsLiteral(endMin), consuming)
}

// --- HTTP client helpers (wire structs mirror internal/server) ---

// Release is one noised release as served over HTTP.
type Release struct {
	Desc        string  `json:"desc"`
	Value       float64 `json:"value"`
	Epsilon     float64 `json:"epsilon"`
	Sensitivity float64 `json:"sensitivity"`
	NoiseScale  float64 `json:"noise_scale"`
	// Raw is the pre-noise value, served only when the stack runs
	// with Config.Evaluation (the sim ground-truth invariant).
	Raw    float64 `json:"raw"`
	RawSet bool    `json:"raw_set"`
	// Begin/End are the release's wall-clock span; cameras are
	// charged over their queried span clipped to it.
	Begin time.Time `json:"begin"`
	End   time.Time `json:"end"`
}

// CameraBudget is one camera's budget impact as served over HTTP.
type CameraBudget struct {
	Camera       string  `json:"camera"`
	EpsilonSpent float64 `json:"epsilon_spent"`
	Remaining    float64 `json:"remaining"`
}

// Result is a finished query's outcome as served over HTTP.
type Result struct {
	Releases     []Release      `json:"releases"`
	EpsilonSpent float64        `json:"epsilon_spent"`
	Cameras      []CameraBudget `json:"cameras"`
}

// Job is a job snapshot as served over HTTP.
type Job struct {
	ID      string  `json:"id"`
	Analyst string  `json:"analyst"`
	State   string  `json:"state"`
	Error   string  `json:"error,omitempty"`
	Result  *Result `json:"result,omitempty"`
}

// AuditEntry is one audit-log entry as served over HTTP.
type AuditEntry struct {
	Cameras      []string `json:"cameras"`
	Releases     int      `json:"releases"`
	EpsilonSpent float64  `json:"epsilon_spent"`
	Denied       bool     `json:"denied,omitempty"`
	Reason       string   `json:"reason,omitempty"`
}

// StateInfo is the durable-store status as served over HTTP.
type StateInfo struct {
	Durable      bool   `json:"durable"`
	Dir          string `json:"dir,omitempty"`
	WALBytes     int64  `json:"wal_bytes,omitempty"`
	Snapshots    int64  `json:"snapshots,omitempty"`
	Cameras      int    `json:"cameras,omitempty"`
	Jobs         int    `json:"jobs,omitempty"`
	AuditEntries int    `json:"audit_entries,omitempty"`
}

// get decodes a GET endpoint into out, asserting the status code.
func (h *H) get(path string, wantStatus int, out any) {
	h.T.Helper()
	resp, err := http.Get(h.Srv.URL + path)
	if err != nil {
		h.T.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		h.T.Fatalf("GET %s: status %d, want %d (body: %s)", path, resp.StatusCode, wantStatus, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			h.T.Fatalf("GET %s: decode: %v (body: %s)", path, err, body)
		}
	}
}

// Submit posts a query for analyst and returns the job ID (fatal on
// refusal).
func (h *H) Submit(analyst, query string) string {
	h.T.Helper()
	id, status, errMsg := h.TrySubmit(analyst, query)
	if status != http.StatusAccepted {
		h.T.Fatalf("submit: status %d: %s", status, errMsg)
	}
	return id
}

// TrySubmit posts a query and returns (jobID, HTTP status, error
// message) without failing the test, for tests probing refusals.
func (h *H) TrySubmit(analyst, query string) (id string, status int, errMsg string) {
	h.T.Helper()
	body, _ := json.Marshal(map[string]string{"analyst": analyst, "query": query})
	resp, err := http.Post(h.Srv.URL+"/v1/queries", "application/json", bytes.NewReader(body))
	if err != nil {
		h.T.Fatalf("POST /v1/queries: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var decoded struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	_ = json.Unmarshal(raw, &decoded)
	return decoded.ID, resp.StatusCode, decoded.Error
}

// Wait polls a job until it reaches a terminal state (or times out).
func (h *H) Wait(id string) Job {
	h.T.Helper()
	timeout := h.Cfg.WaitTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		var j Job
		h.get("/v1/queries/"+id, http.StatusOK, &j)
		if j.State == "done" || j.State == "failed" {
			return j
		}
		if time.Now().After(deadline) {
			h.T.Fatalf("job %s stuck in state %s", id, j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// SubmitWait submits a query and waits for its terminal snapshot.
func (h *H) SubmitWait(analyst, query string) Job {
	h.T.Helper()
	return h.Wait(h.Submit(analyst, query))
}

// Job fetches one job snapshot, reporting whether it exists.
func (h *H) Job(id string) (Job, bool) {
	h.T.Helper()
	resp, err := http.Get(h.Srv.URL + "/v1/queries/" + id)
	if err != nil {
		h.T.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return Job{}, false
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		h.T.Fatalf("decode job: %v", err)
	}
	return j, true
}

// Budget returns the default camera's remaining budget at a frame,
// over HTTP.
func (h *H) Budget(frame int64) float64 {
	h.T.Helper()
	return h.BudgetFor(Camera, frame)
}

// BudgetFor returns one camera's remaining budget at a frame, over
// HTTP.
func (h *H) BudgetFor(camera string, frame int64) float64 {
	h.T.Helper()
	var out struct {
		Remaining float64 `json:"remaining"`
	}
	h.get(fmt.Sprintf("/v1/cameras/%s/budget?frame=%d", camera, frame), http.StatusOK, &out)
	return out.Remaining
}

// Audit fetches the owner's audit log over HTTP.
func (h *H) Audit() []AuditEntry {
	h.T.Helper()
	var out []AuditEntry
	h.get("/v1/audit", http.StatusOK, &out)
	return out
}

// State fetches the durable-store status over HTTP.
func (h *H) State() StateInfo {
	h.T.Helper()
	var out StateInfo
	h.get("/v1/state", http.StatusOK, &out)
	return out
}

// Metrics fetches the Prometheus text exposition over HTTP, asserting
// status and content type.
func (h *H) Metrics() string {
	h.T.Helper()
	resp, err := http.Get(h.Srv.URL + "/v1/metrics")
	if err != nil {
		h.T.Fatalf("GET /v1/metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		h.T.Fatalf("GET /v1/metrics: status %d (body: %s)", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		h.T.Fatalf("GET /v1/metrics: content type %q, want Prometheus text 0.0.4", ct)
	}
	return string(body)
}

// Trace fetches a terminal job's span tree over HTTP.
func (h *H) Trace(id string) obs.SpanTree {
	h.T.Helper()
	var out obs.SpanTree
	h.get("/v1/queries/"+id+"/trace", http.StatusOK, &out)
	return out
}

// SchedStats is the scheduler's load snapshot as served in /v1/stats.
type SchedStats struct {
	Workers     int
	Queued      int
	Running     int
	Done        int64
	Failed      int64
	Submitted   int64
	Recovered   int64
	SlowQueries int64
}

// StatsCamera is one camera's budget summary as served in /v1/stats.
type StatsCamera struct {
	Name      string  `json:"name"`
	Epsilon   float64 `json:"epsilon"`
	Remaining float64 `json:"remaining"`
}

// StatsRaw fetches the full stats payload as loosely-typed JSON. The
// sim invariant checker cross-checks every counter group against the
// engine's own snapshots, so it needs the wire form verbatim rather
// than a typed slice of it.
func (h *H) StatsRaw() map[string]any {
	h.T.Helper()
	out := map[string]any{}
	h.get("/v1/stats", http.StatusOK, &out)
	return out
}

// Stats fetches the stats endpoint: scheduler load and per-camera
// budget standing.
func (h *H) Stats() (SchedStats, []StatsCamera) {
	h.T.Helper()
	var out struct {
		Scheduler SchedStats    `json:"scheduler"`
		Cameras   []StatsCamera `json:"cameras"`
	}
	h.get("/v1/stats", http.StatusOK, &out)
	return out.Scheduler, out.Cameras
}
