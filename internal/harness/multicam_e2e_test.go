package harness_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"privid/internal/harness"
)

// fleetCountQuery returns a COUNT(*) over the first three test cameras
// in one cross-camera SPLIT.
func fleetCountQuery(eps float64) string {
	cams := []string{harness.CameraName(0), harness.CameraName(1), harness.CameraName(2)}
	return fmt.Sprintf(`
SPLIT %s BEGIN 03-15-2021/6:00am END 03-15-2021/6:05am
  BY TIME 30sec STRIDE 0sec INTO fleet;
PROCESS fleet USING one TIMEOUT 5sec PRODUCING 2 ROWS
  WITH SCHEMA (v:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING %g;`, strings.Join(cams, ", "), eps)
}

// A cross-camera query's HTTP result must carry one budget entry per
// touched camera with the post-charge remaining budget.
func TestE2EMultiCameraBudgetsInResult(t *testing.T) {
	h := harness.Start(t, harness.Config{Cameras: 3, Epsilon: 10})
	job := h.SubmitWait("alice", fleetCountQuery(0.5))
	if job.State != "done" {
		t.Fatalf("job = %+v", job)
	}
	if len(job.Result.Cameras) != 3 {
		t.Fatalf("result cameras = %+v, want 3 entries", job.Result.Cameras)
	}
	for i, cb := range job.Result.Cameras {
		if want := harness.CameraName(i); cb.Camera != want {
			t.Errorf("cameras[%d] = %q, want %q", i, cb.Camera, want)
		}
		if math.Abs(cb.EpsilonSpent-0.5) > 1e-12 {
			t.Errorf("%s spent = %v, want 0.5", cb.Camera, cb.EpsilonSpent)
		}
		if math.Abs(cb.Remaining-9.5) > 1e-9 {
			t.Errorf("%s remaining = %v, want 9.5", cb.Camera, cb.Remaining)
		}
		// The result's remaining must agree with the budget endpoint.
		if got := h.BudgetFor(cb.Camera, 100); math.Abs(got-cb.Remaining) > 1e-9 {
			t.Errorf("%s budget endpoint = %v, result says %v", cb.Camera, got, cb.Remaining)
		}
	}
}

// Exhausting one camera must deny the fleet query as a whole over
// HTTP, with every camera's budget intact.
func TestE2EMultiCameraAtomicDenial(t *testing.T) {
	h := harness.Start(t, harness.Config{Cameras: 3, Epsilon: 1})
	// Drain camera 3 alone almost to zero.
	drain := fmt.Sprintf(`
SPLIT %s BEGIN 03-15-2021/6:00am END 03-15-2021/6:05am
  BY TIME 30sec STRIDE 0sec INTO c;
PROCESS c USING one TIMEOUT 5sec PRODUCING 2 ROWS
  WITH SCHEMA (v:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.9;`, harness.CameraName(2))
	if job := h.SubmitWait("alice", drain); job.State != "done" {
		t.Fatalf("drain job = %+v", job)
	}

	before := []float64{h.BudgetFor(harness.CameraName(0), 100), h.BudgetFor(harness.CameraName(1), 100)}
	job := h.SubmitWait("alice", fleetCountQuery(0.5))
	if job.State != "failed" {
		t.Fatalf("fleet query state = %q, want failed (atomic denial)", job.State)
	}
	if !strings.Contains(job.Error, "budget exhausted") || !strings.Contains(job.Error, harness.CameraName(2)) {
		t.Errorf("denial error = %q, want budget exhaustion naming %s", job.Error, harness.CameraName(2))
	}
	for i, cam := range []string{harness.CameraName(0), harness.CameraName(1)} {
		if got := h.BudgetFor(cam, 100); got != before[i] {
			t.Errorf("%s budget changed across denial: %v -> %v", cam, before[i], got)
		}
	}

	// A smaller fleet query over the two healthy cameras still admits.
	small := strings.Replace(fleetCountQuery(0.5),
		", "+harness.CameraName(2), "", 1)
	if job := h.SubmitWait("alice", small); job.State != "done" {
		t.Fatalf("healthy-pair query = %+v", job)
	}
}

// The denied fleet query must surface in the audit log as one denied
// entry naming all touched cameras.
func TestE2EMultiCameraDenialAudited(t *testing.T) {
	h := harness.Start(t, harness.Config{Cameras: 2, Epsilon: 0.1})
	big := fmt.Sprintf(`
SPLIT %s, %s BEGIN 03-15-2021/6:00am END 03-15-2021/6:05am
  BY TIME 30sec STRIDE 0sec INTO fleet;
PROCESS fleet USING one TIMEOUT 5sec PRODUCING 2 ROWS
  WITH SCHEMA (v:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.5;`, harness.CameraName(0), harness.CameraName(1))
	if job := h.SubmitWait("alice", big); job.State != "failed" {
		t.Fatalf("job = %+v, want failed", job)
	}
	audit := h.Audit()
	if len(audit) != 1 || !audit[0].Denied {
		t.Fatalf("audit = %+v, want one denied entry", audit)
	}
	if len(audit[0].Cameras) != 2 {
		t.Errorf("audit cameras = %v, want both", audit[0].Cameras)
	}
	if audit[0].EpsilonSpent != 0 {
		t.Errorf("denied entry spent %v, want 0", audit[0].EpsilonSpent)
	}
}
