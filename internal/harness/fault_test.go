package harness

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"privid/internal/store"
)

// flakyStore wraps a store and fails Commit on demand.
type flakyStore struct {
	inner store.Store
	fail  atomic.Bool
}

var errDiskGone = errors.New("disk gone")

func (f *flakyStore) Commit(recs ...store.Record) error {
	if f.fail.Load() {
		return errDiskGone
	}
	return f.inner.Commit(recs...)
}

func (f *flakyStore) Close() error { return f.inner.Close() }

// TestWALFailureWithholdsResult is the acceptance fault-injection
// test: when the WAL commit fails, the analyst receives an error and
// no noised result, and the reserved budget is returned exactly — a
// charge is never released un-persisted.
func TestWALFailureWithholdsResult(t *testing.T) {
	fs := &flakyStore{inner: store.NullStore{}}
	h := Start(t, Config{Store: fs})

	if job := h.SubmitWait("alice", CountQuery(0, 2, 1.0)); job.State != "done" {
		t.Fatalf("healthy query failed: %s", job.Error)
	}
	before := h.Budget(600)
	if before != 9 {
		t.Fatalf("remaining = %v, want 9", before)
	}

	fs.fail.Store(true)
	job := h.SubmitWait("alice", CountQuery(0, 2, 1.0))
	if job.State != "failed" {
		t.Fatal("query with failing WAL was released")
	}
	if !strings.Contains(job.Error, "charge not persisted") || !strings.Contains(job.Error, "disk gone") {
		t.Errorf("error = %q, want charge-not-persisted", job.Error)
	}
	if job.Result != nil {
		t.Error("failed persistence still produced a result")
	}
	// The result endpoint has nothing to serve either.
	if rec, ok := h.Job(job.ID); !ok || rec.Result != nil {
		t.Errorf("job endpoint leaked a result: %+v", rec)
	}
	// The reservation was returned exactly: budget is untouched and
	// fully usable once the store heals.
	if got := h.Budget(600); got != before {
		t.Errorf("failed commit moved budget: remaining = %v, want %v", got, before)
	}

	fs.fail.Store(false)
	if job := h.SubmitWait("alice", CountQuery(0, 2, 9.0)); job.State != "done" {
		t.Fatalf("full-remaining query after heal failed: %s", job.Error)
	}
	if got := h.Budget(600); got != 0 {
		t.Errorf("remaining = %v, want 0", got)
	}
}

// TestWALFailureAudited: the denial still lands in the in-memory audit
// log so the owner can see the store failing.
func TestWALFailureAudited(t *testing.T) {
	fs := &flakyStore{inner: store.NullStore{}}
	fs.fail.Store(true)
	h := Start(t, Config{Store: fs})
	if job := h.SubmitWait("alice", CountQuery(0, 1, 0.5)); job.State != "failed" {
		t.Fatal("query released despite failing store")
	}
	log := h.Audit()
	if len(log) != 1 || !log[0].Denied || !strings.Contains(log[0].Reason, "charge not persisted") {
		t.Fatalf("audit = %+v", log)
	}
}
