package video

import (
	"testing"
	"time"

	"privid/internal/geom"
	"privid/internal/scene"
	"privid/internal/vtime"
)

// testScene builds a tiny scene with two entities at known times and
// positions.
func testScene(t *testing.T) *scene.Scene {
	t.Helper()
	s := &scene.Scene{
		Name: "t", W: 100, H: 100, FPS: 10,
		Start: time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC), Frames: 1000,
	}
	mk := func(id int, enter, exit int64, x, y float64) *scene.Entity {
		return &scene.Entity{
			ID: id, Class: scene.Person,
			Appearances: []scene.Appearance{{
				Enter: enter, Exit: exit,
				Traj: scene.NewPath(enter, exit, 10, 10, 1,
					scene.Waypoint{T: 0, P: geom.Point{X: x, Y: y}},
					scene.Waypoint{T: 1, P: geom.Point{X: x, Y: y}}),
			}},
		}
	}
	s.Ents = []*scene.Entity{
		mk(0, 100, 200, 25, 25),
		mk(1, 150, 400, 75, 75),
	}
	s.BuildIndex()
	return s
}

func TestSceneSource(t *testing.T) {
	s := testScene(t)
	src := &SceneSource{Camera: "camA", Scene: s}
	info := src.Info()
	if info.Camera != "camA" || info.Frames != 1000 || info.FPS != 10 {
		t.Fatalf("bad info: %+v", info)
	}
	if got := len(src.Frame(50).Objects); got != 0 {
		t.Errorf("frame 50 has %d objects, want 0", got)
	}
	if got := len(src.Frame(160).Objects); got != 2 {
		t.Errorf("frame 160 has %d objects, want 2", got)
	}
}

type rectOccluder struct{ r geom.Rect }

func (o rectOccluder) Visible(box geom.Rect) bool {
	return 1-box.CoverFraction(o.r) >= 0.4
}

func TestMaskedSource(t *testing.T) {
	s := testScene(t)
	src := &SceneSource{Camera: "camA", Scene: s}
	// Occlude the top-left quadrant: entity 0 (at 25,25) disappears.
	m := Masked(src, rectOccluder{geom.Rect{X0: 0, Y0: 0, X1: 50, Y1: 50}})
	objs := m.Frame(160).Objects
	if len(objs) != 1 || objs[0].EntityID != 1 {
		t.Fatalf("masked frame: %+v", objs)
	}
	// A nil occluder is a pass-through.
	if got := Masked(src, nil); got != src {
		t.Errorf("Masked(nil) should return the source")
	}
}

func TestCroppedSource(t *testing.T) {
	s := testScene(t)
	src := &SceneSource{Camera: "camA", Scene: s}
	c := Cropped(src, geom.Rect{X0: 50, Y0: 50, X1: 100, Y1: 100})
	objs := c.Frame(160).Objects
	if len(objs) != 1 || objs[0].EntityID != 1 {
		t.Fatalf("cropped frame: %+v", objs)
	}
}

// staticSource serves one pre-built Objects slice for every frame, so
// tests and benchmarks can observe exactly what the decorators do with
// it (SceneSource materializes a fresh slice per At call, which would
// mask decorator copies and allocations).
type staticSource struct {
	info Info
	objs []scene.Observation
}

func (s *staticSource) Info() Info          { return s.info }
func (s *staticSource) Frame(i int64) Frame { return Frame{Index: i, Objects: s.objs} }

// TestDecoratorPassthroughSharesSlice is the regression test for the
// per-frame decorator allocation: when nothing is filtered, the
// decorator must return the source's Objects slice itself, not a copy.
func TestDecoratorPassthroughSharesSlice(t *testing.T) {
	src := &staticSource{
		info: Info{Camera: "camA", W: 100, H: 100, FPS: 10, Frames: 1000},
		objs: []scene.Observation{
			{EntityID: 0, Box: geom.Rect{X0: 20, Y0: 20, X1: 30, Y1: 30}},
			{EntityID: 1, Box: geom.Rect{X0: 70, Y0: 70, X1: 80, Y1: 80}},
		},
	}
	base := src.objs

	// A mask that hides nothing and a crop covering the full frame both
	// keep every object, so both must pass the slice through untouched.
	m := Masked(src, rectOccluder{geom.Rect{X0: -10, Y0: -10, X1: -5, Y1: -5}})
	if got := m.Frame(160).Objects; &got[0] != &base[0] || len(got) != len(base) {
		t.Errorf("masked passthrough copied the Objects slice")
	}
	c := Cropped(src, geom.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100})
	if got := c.Frame(160).Objects; &got[0] != &base[0] || len(got) != len(base) {
		t.Errorf("cropped passthrough copied the Objects slice")
	}

	// Stacked decorators that filter nothing still share the slice.
	mc := Cropped(m, geom.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100})
	if got := mc.Frame(160).Objects; &got[0] != &base[0] {
		t.Errorf("stacked passthrough copied the Objects slice")
	}

	// And a decorator that does filter must copy, never aliasing the
	// source slice (it is shared with other consumers).
	half := Cropped(src, geom.Rect{X0: 50, Y0: 50, X1: 100, Y1: 100})
	got := half.Frame(160).Objects
	if len(got) != 1 || got[0].EntityID != 1 {
		t.Fatalf("half crop: %+v", got)
	}
	if &got[0] == &base[0] || &got[0] == &base[1] {
		t.Errorf("filtered result aliases the source slice")
	}
	if len(base) != 2 {
		t.Errorf("filtering mutated the source slice")
	}
}

func TestFilterObjects(t *testing.T) {
	objs := []scene.Observation{{EntityID: 0}, {EntityID: 1}, {EntityID: 2}, {EntityID: 3}}

	// Everything kept: same slice back.
	got := filterObjects(objs, func(*scene.Observation) bool { return true })
	if &got[0] != &objs[0] || len(got) != 4 {
		t.Errorf("keep-all should return the input slice")
	}

	// Drop first, drop middle, drop last, drop everything.
	cases := []struct {
		keep func(*scene.Observation) bool
		want []int
	}{
		{func(o *scene.Observation) bool { return o.EntityID != 0 }, []int{1, 2, 3}},
		{func(o *scene.Observation) bool { return o.EntityID != 2 }, []int{0, 1, 3}},
		{func(o *scene.Observation) bool { return o.EntityID != 3 }, []int{0, 1, 2}},
		{func(*scene.Observation) bool { return false }, nil},
	}
	for i, tc := range cases {
		got := filterObjects(objs, tc.keep)
		if len(got) != len(tc.want) {
			t.Fatalf("case %d: got %v, want ids %v", i, got, tc.want)
		}
		for j, id := range tc.want {
			if got[j].EntityID != id {
				t.Fatalf("case %d: got %v, want ids %v", i, got, tc.want)
			}
		}
		if len(got) > 0 && &got[0] == &objs[0] {
			t.Fatalf("case %d: filtered result must not alias the input", i)
		}
	}

	// Empty and nil inputs pass through.
	if got := filterObjects(nil, func(*scene.Observation) bool { return false }); got != nil {
		t.Errorf("nil input: got %v", got)
	}
}

// benchSource returns a static 8-object frame: four objects on the
// left half of a 100×100 view, four on the right.
func benchSource() *staticSource {
	src := &staticSource{info: Info{Camera: "camA", W: 100, H: 100, FPS: 10, Frames: 1000}}
	for i := 0; i < 8; i++ {
		x := 20.0
		if i%2 == 0 {
			x = 70.0
		}
		y := 10.0 * float64(i+1)
		src.objs = append(src.objs, scene.Observation{
			EntityID: i, Class: scene.Person,
			Box: geom.Rect{X0: x, Y0: y, X1: x + 10, Y1: y + 8},
		})
	}
	return src
}

// BenchmarkMasked_Passthrough is the alloc-counting regression
// benchmark: a decorator stack that filters nothing must not allocate
// per frame (enforced at 0 allocs/op by the CI bench contract).
func BenchmarkMasked_Passthrough(b *testing.B) {
	src := benchSource()
	// Mask far outside the frame and a full-frame crop: nothing is ever
	// filtered, which is the common case for real deployments.
	m := Cropped(Masked(src, rectOccluder{geom.Rect{X0: -10, Y0: -10, X1: -5, Y1: -5}}),
		geom.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100})
	b.ReportAllocs()
	b.ResetTimer()
	var kept int
	for i := 0; i < b.N; i++ {
		kept += len(m.Frame(int64(i)).Objects)
	}
	sinkInt = kept
}

// BenchmarkMasked_Filtering measures the one-allocation path where the
// mask actually drops objects per frame.
func BenchmarkMasked_Filtering(b *testing.B) {
	src := benchSource()
	// Occlude the left half: the four objects parked at x=20 disappear.
	m := Masked(src, rectOccluder{geom.Rect{X0: 0, Y0: 0, X1: 50, Y1: 100}})
	b.ReportAllocs()
	b.ResetTimer()
	var kept int
	for i := 0; i < b.N; i++ {
		kept += len(m.Frame(int64(i)).Objects)
	}
	sinkInt = kept
}

var sinkInt int

func TestSplitChunking(t *testing.T) {
	s := testScene(t)
	src := &SceneSource{Camera: "camA", Scene: s}
	sp := Split{Source: src, Interval: vtime.NewInterval(0, 1000), ChunkFrames: 100, StrideFrames: 0}
	if got := sp.NumChunks(); got != 10 {
		t.Fatalf("NumChunks=%d, want 10", got)
	}
	c0 := sp.ChunkAt(0)
	if c0.Interval != vtime.NewInterval(0, 100) || c0.Len() != 100 {
		t.Errorf("chunk 0 = %v", c0.Interval)
	}
	c9 := sp.ChunkAt(9)
	if c9.Interval != vtime.NewInterval(900, 1000) {
		t.Errorf("chunk 9 = %v", c9.Interval)
	}
	if c0.Camera != "camA" || c0.FPS != 10 {
		t.Errorf("chunk metadata wrong: %+v", c0)
	}
	// Chunk frame access is relative to the chunk.
	c1 := sp.ChunkAt(1)
	f := c1.Frame(60) // absolute frame 160
	if len(f.Objects) != 2 || f.Index != 160 {
		t.Errorf("chunk frame access wrong: idx=%d objs=%d", f.Index, len(f.Objects))
	}
	if got := c0.Seconds(); got != 10 {
		t.Errorf("chunk seconds=%v", got)
	}
}

func TestSplitWithStride(t *testing.T) {
	s := testScene(t)
	src := &SceneSource{Camera: "camA", Scene: s}
	// chunk=100, stride=100: chunks start every 200 frames.
	sp := Split{Source: src, Interval: vtime.NewInterval(0, 1000), ChunkFrames: 100, StrideFrames: 100}
	if got := sp.NumChunks(); got != 5 {
		t.Fatalf("NumChunks=%d, want 5", got)
	}
	if c := sp.ChunkAt(1); c.Interval != vtime.NewInterval(200, 300) {
		t.Errorf("chunk 1 = %v", c.Interval)
	}
	// Clipping: window not divisible by period.
	sp2 := Split{Source: src, Interval: vtime.NewInterval(0, 950), ChunkFrames: 100, StrideFrames: 0}
	if got := sp2.NumChunks(); got != 10 {
		t.Fatalf("NumChunks=%d, want 10", got)
	}
	if c := sp2.ChunkAt(9); c.Interval != vtime.NewInterval(900, 950) {
		t.Errorf("final clipped chunk = %v", c.Interval)
	}
}

type sparseSrc struct {
	*SceneSource
	active []vtime.Interval
}

func (s *sparseSrc) ActiveIntervals(iv vtime.Interval) []vtime.Interval {
	var out []vtime.Interval
	for _, a := range s.active {
		if x := a.Intersect(iv); !x.Empty() {
			out = append(out, x)
		}
	}
	return out
}

func TestActiveChunksSparse(t *testing.T) {
	s := testScene(t)
	base := &SceneSource{Camera: "camA", Scene: s}
	src := &sparseSrc{SceneSource: base, active: []vtime.Interval{{Start: 100, End: 400}}}
	sp := Split{Source: src, Interval: vtime.NewInterval(0, 1000), ChunkFrames: 100, StrideFrames: 0}
	got := sp.ActiveChunks()
	// Frames 100-399 → chunks 1, 2, 3.
	want := []int64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ActiveChunks=%v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ActiveChunks=%v, want %v", got, want)
		}
	}
	// A dense source processes everything.
	dense := Split{Source: base, Interval: vtime.NewInterval(0, 1000), ChunkFrames: 100}
	if got := dense.ActiveChunks(); len(got) != 10 {
		t.Errorf("dense ActiveChunks len=%d, want 10", len(got))
	}
}

func TestActiveChunksBoundary(t *testing.T) {
	s := testScene(t)
	base := &SceneSource{Camera: "camA", Scene: s}
	// Activity touching exactly the last frame of chunk 0.
	src := &sparseSrc{SceneSource: base, active: []vtime.Interval{{Start: 99, End: 100}}}
	sp := Split{Source: src, Interval: vtime.NewInterval(0, 1000), ChunkFrames: 100, StrideFrames: 0}
	got := sp.ActiveChunks()
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("boundary ActiveChunks=%v, want [0]", got)
	}
	// No activity at all.
	src2 := &sparseSrc{SceneSource: base}
	sp2 := Split{Source: src2, Interval: vtime.NewInterval(0, 1000), ChunkFrames: 100}
	if got := sp2.ActiveChunks(); len(got) != 0 {
		t.Fatalf("empty ActiveChunks=%v", got)
	}
}
