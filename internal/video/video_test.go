package video

import (
	"testing"
	"time"

	"privid/internal/geom"
	"privid/internal/scene"
	"privid/internal/vtime"
)

// testScene builds a tiny scene with two entities at known times and
// positions.
func testScene(t *testing.T) *scene.Scene {
	t.Helper()
	s := &scene.Scene{
		Name: "t", W: 100, H: 100, FPS: 10,
		Start: time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC), Frames: 1000,
	}
	mk := func(id int, enter, exit int64, x, y float64) *scene.Entity {
		return &scene.Entity{
			ID: id, Class: scene.Person,
			Appearances: []scene.Appearance{{
				Enter: enter, Exit: exit,
				Traj: scene.NewPath(enter, exit, 10, 10, 1,
					scene.Waypoint{T: 0, P: geom.Point{X: x, Y: y}},
					scene.Waypoint{T: 1, P: geom.Point{X: x, Y: y}}),
			}},
		}
	}
	s.Ents = []*scene.Entity{
		mk(0, 100, 200, 25, 25),
		mk(1, 150, 400, 75, 75),
	}
	s.BuildIndex()
	return s
}

func TestSceneSource(t *testing.T) {
	s := testScene(t)
	src := &SceneSource{Camera: "camA", Scene: s}
	info := src.Info()
	if info.Camera != "camA" || info.Frames != 1000 || info.FPS != 10 {
		t.Fatalf("bad info: %+v", info)
	}
	if got := len(src.Frame(50).Objects); got != 0 {
		t.Errorf("frame 50 has %d objects, want 0", got)
	}
	if got := len(src.Frame(160).Objects); got != 2 {
		t.Errorf("frame 160 has %d objects, want 2", got)
	}
}

type rectOccluder struct{ r geom.Rect }

func (o rectOccluder) Visible(box geom.Rect) bool {
	return 1-box.CoverFraction(o.r) >= 0.4
}

func TestMaskedSource(t *testing.T) {
	s := testScene(t)
	src := &SceneSource{Camera: "camA", Scene: s}
	// Occlude the top-left quadrant: entity 0 (at 25,25) disappears.
	m := Masked(src, rectOccluder{geom.Rect{X0: 0, Y0: 0, X1: 50, Y1: 50}})
	objs := m.Frame(160).Objects
	if len(objs) != 1 || objs[0].EntityID != 1 {
		t.Fatalf("masked frame: %+v", objs)
	}
	// A nil occluder is a pass-through.
	if got := Masked(src, nil); got != src {
		t.Errorf("Masked(nil) should return the source")
	}
}

func TestCroppedSource(t *testing.T) {
	s := testScene(t)
	src := &SceneSource{Camera: "camA", Scene: s}
	c := Cropped(src, geom.Rect{X0: 50, Y0: 50, X1: 100, Y1: 100})
	objs := c.Frame(160).Objects
	if len(objs) != 1 || objs[0].EntityID != 1 {
		t.Fatalf("cropped frame: %+v", objs)
	}
}

func TestSplitChunking(t *testing.T) {
	s := testScene(t)
	src := &SceneSource{Camera: "camA", Scene: s}
	sp := Split{Source: src, Interval: vtime.NewInterval(0, 1000), ChunkFrames: 100, StrideFrames: 0}
	if got := sp.NumChunks(); got != 10 {
		t.Fatalf("NumChunks=%d, want 10", got)
	}
	c0 := sp.ChunkAt(0)
	if c0.Interval != vtime.NewInterval(0, 100) || c0.Len() != 100 {
		t.Errorf("chunk 0 = %v", c0.Interval)
	}
	c9 := sp.ChunkAt(9)
	if c9.Interval != vtime.NewInterval(900, 1000) {
		t.Errorf("chunk 9 = %v", c9.Interval)
	}
	if c0.Camera != "camA" || c0.FPS != 10 {
		t.Errorf("chunk metadata wrong: %+v", c0)
	}
	// Chunk frame access is relative to the chunk.
	c1 := sp.ChunkAt(1)
	f := c1.Frame(60) // absolute frame 160
	if len(f.Objects) != 2 || f.Index != 160 {
		t.Errorf("chunk frame access wrong: idx=%d objs=%d", f.Index, len(f.Objects))
	}
	if got := c0.Seconds(); got != 10 {
		t.Errorf("chunk seconds=%v", got)
	}
}

func TestSplitWithStride(t *testing.T) {
	s := testScene(t)
	src := &SceneSource{Camera: "camA", Scene: s}
	// chunk=100, stride=100: chunks start every 200 frames.
	sp := Split{Source: src, Interval: vtime.NewInterval(0, 1000), ChunkFrames: 100, StrideFrames: 100}
	if got := sp.NumChunks(); got != 5 {
		t.Fatalf("NumChunks=%d, want 5", got)
	}
	if c := sp.ChunkAt(1); c.Interval != vtime.NewInterval(200, 300) {
		t.Errorf("chunk 1 = %v", c.Interval)
	}
	// Clipping: window not divisible by period.
	sp2 := Split{Source: src, Interval: vtime.NewInterval(0, 950), ChunkFrames: 100, StrideFrames: 0}
	if got := sp2.NumChunks(); got != 10 {
		t.Fatalf("NumChunks=%d, want 10", got)
	}
	if c := sp2.ChunkAt(9); c.Interval != vtime.NewInterval(900, 950) {
		t.Errorf("final clipped chunk = %v", c.Interval)
	}
}

type sparseSrc struct {
	*SceneSource
	active []vtime.Interval
}

func (s *sparseSrc) ActiveIntervals(iv vtime.Interval) []vtime.Interval {
	var out []vtime.Interval
	for _, a := range s.active {
		if x := a.Intersect(iv); !x.Empty() {
			out = append(out, x)
		}
	}
	return out
}

func TestActiveChunksSparse(t *testing.T) {
	s := testScene(t)
	base := &SceneSource{Camera: "camA", Scene: s}
	src := &sparseSrc{SceneSource: base, active: []vtime.Interval{{Start: 100, End: 400}}}
	sp := Split{Source: src, Interval: vtime.NewInterval(0, 1000), ChunkFrames: 100, StrideFrames: 0}
	got := sp.ActiveChunks()
	// Frames 100-399 → chunks 1, 2, 3.
	want := []int64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ActiveChunks=%v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ActiveChunks=%v, want %v", got, want)
		}
	}
	// A dense source processes everything.
	dense := Split{Source: base, Interval: vtime.NewInterval(0, 1000), ChunkFrames: 100}
	if got := dense.ActiveChunks(); len(got) != 10 {
		t.Errorf("dense ActiveChunks len=%d, want 10", len(got))
	}
}

func TestActiveChunksBoundary(t *testing.T) {
	s := testScene(t)
	base := &SceneSource{Camera: "camA", Scene: s}
	// Activity touching exactly the last frame of chunk 0.
	src := &sparseSrc{SceneSource: base, active: []vtime.Interval{{Start: 99, End: 100}}}
	sp := Split{Source: src, Interval: vtime.NewInterval(0, 1000), ChunkFrames: 100, StrideFrames: 0}
	got := sp.ActiveChunks()
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("boundary ActiveChunks=%v, want [0]", got)
	}
	// No activity at all.
	src2 := &sparseSrc{SceneSource: base}
	sp2 := Split{Source: src2, Interval: vtime.NewInterval(0, 1000), ChunkFrames: 100}
	if got := sp2.ActiveChunks(); len(got) != 0 {
		t.Fatalf("empty ActiveChunks=%v", got)
	}
}
