package video

import (
	"sort"
	"time"

	"privid/internal/geom"
	"privid/internal/scene"
	"privid/internal/vtime"
)

// FakeObject is one synthetic object's continuous visibility span in
// an IntervalSource: it exists on every frame of [Enter, Exit) with a
// fixed box, and nowhere else. Visibility is the whole behavioral
// surface Privid queries see, so a list of FakeObjects defines a
// stream whose every windowed aggregate is computable in closed form —
// the fake-source idiom the sim fleet's ground-truth invariant is
// built on (cf. the rdk fake-camera test doubles).
type FakeObject struct {
	ID          int
	Class       scene.Class
	Enter, Exit int64 // visible on frames [Enter, Exit)
	Box         geom.Rect
}

// IntervalSource is a deterministic Source backed by interval-visible
// objects. The zero box is fine for executables that only count.
//
// Frame materializes observations lazily (no per-frame storage), so a
// 1000-camera fleet costs memory proportional to its event list, not
// its frame count.
type IntervalSource struct {
	Camera string
	W, H   float64
	FPS    vtime.FrameRate
	Start  time.Time
	Frames int64
	// Objects must be sorted by Enter (Sort below); Frame binary
	// searches it.
	Objects []FakeObject

	// maxSpan caches the longest Exit-Enter, bounding the backward
	// scan in Frame.
	maxSpan int64
}

// Sort orders Objects by Enter and computes the scan bound. Call it
// once after assembling Objects (constructors in internal/sim do).
func (s *IntervalSource) Sort() {
	sort.Slice(s.Objects, func(i, j int) bool { return s.Objects[i].Enter < s.Objects[j].Enter })
	s.maxSpan = 0
	for _, o := range s.Objects {
		if span := o.Exit - o.Enter; span > s.maxSpan {
			s.maxSpan = span
		}
	}
}

// Info implements Source.
func (s *IntervalSource) Info() Info {
	return Info{Camera: s.Camera, W: s.W, H: s.H, FPS: s.FPS, Start: s.Start, Frames: s.Frames}
}

// Frame implements Source: all objects whose span covers i.
func (s *IntervalSource) Frame(i int64) Frame {
	// First object that could still cover i: Enter > i - maxSpan - 1.
	lo := sort.Search(len(s.Objects), func(k int) bool {
		return s.Objects[k].Enter > i-s.maxSpan-1
	})
	var obs []scene.Observation
	for k := lo; k < len(s.Objects) && s.Objects[k].Enter <= i; k++ {
		o := s.Objects[k]
		if i < o.Exit {
			obs = append(obs, scene.Observation{EntityID: o.ID, Class: o.Class, Box: o.Box})
		}
	}
	return Frame{Index: i, Objects: obs}
}

// SparseIntervalSource is an IntervalSource that additionally
// implements SparseSource, letting Split.ActiveChunks skip chunks in
// which nothing is ever visible. Use it only with executables whose
// output is empty on empty chunks — skipping must be invisible in
// query results (the cache-invisibility rule applies to sparse
// skipping too).
type SparseIntervalSource struct {
	IntervalSource
}

// ActiveIntervals implements SparseSource: the merged object spans
// clipped to iv.
func (s *SparseIntervalSource) ActiveIntervals(iv vtime.Interval) []vtime.Interval {
	var out []vtime.Interval
	// Objects are Enter-sorted, so merged spans build up in order.
	for _, o := range s.Objects {
		span := vtime.Interval{Start: o.Enter, End: o.Exit}.Intersect(iv)
		if span.Empty() {
			continue
		}
		if n := len(out); n > 0 && span.Start <= out[n-1].End {
			if span.End > out[n-1].End {
				out[n-1].End = span.End
			}
			continue
		}
		out = append(out, span)
	}
	return out
}
