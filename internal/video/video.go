// Package video provides Privid's view of a camera stream: a Source of
// frames (each frame is the set of ground-truth observations visible at
// that instant), masked and region-cropped source decorators, and the
// temporal chunking of the SPLIT statement (§6.2).
package video

import (
	"time"

	"privid/internal/geom"
	"privid/internal/scene"
	"privid/internal/vtime"
)

// Info describes a camera stream.
type Info struct {
	Camera string
	W, H   float64
	FPS    vtime.FrameRate
	Start  time.Time // wall-clock instant of frame 0
	Frames int64     // total stream length
}

// Clock returns the stream's wall-clock anchoring.
func (i Info) Clock() vtime.Clock { return vtime.Clock{Start: i.Start, Rate: i.FPS} }

// Bounds returns the stream's full frame interval.
func (i Info) Bounds() vtime.Interval { return vtime.NewInterval(0, i.Frames) }

// Frame is what the camera shows at one instant. Objects is owned by
// the Source that produced it and may be shared between frames handed
// to different consumers (decorators pass it through untouched when
// they filter nothing), so consumers must treat it as read-only.
type Frame struct {
	Index   int64
	Objects []scene.Observation
}

// Source is a readable camera stream. Implementations must be safe for
// concurrent Frame calls (the engine may process chunks in parallel).
type Source interface {
	Info() Info
	Frame(i int64) Frame
}

// SparseSource is an optional Source extension that reports where
// activity exists, letting the engine skip provably-empty chunks. This
// is purely a simulation-speed optimization: an empty chunk produces no
// rows in every workload we ship, so skipping it cannot change query
// output. Sources with always-visible elements (lights, trees) must
// report the full range.
type SparseSource interface {
	Source
	// ActiveIntervals returns sorted, disjoint frame intervals within
	// iv outside of which no observation is visible.
	ActiveIntervals(iv vtime.Interval) []vtime.Interval
}

// SceneSource adapts a synthetic scene to the Source interface.
type SceneSource struct {
	Camera string
	Scene  *scene.Scene
}

// Info implements Source.
func (s *SceneSource) Info() Info {
	return Info{
		Camera: s.Camera,
		W:      s.Scene.W,
		H:      s.Scene.H,
		FPS:    s.Scene.FPS,
		Start:  s.Scene.Start,
		Frames: s.Scene.Frames,
	}
}

// Frame implements Source.
func (s *SceneSource) Frame(i int64) Frame {
	return Frame{Index: i, Objects: s.Scene.At(i)}
}

// Occluder decides whether an object at a given box survives a mask.
// The mask package provides the implementation; the indirection keeps
// video free of mask's dependencies.
type Occluder interface {
	// Visible reports whether an object occupying box remains
	// detectable once masked pixels are blacked out.
	Visible(box geom.Rect) bool
}

// Masked returns a source that drops observations hidden by the
// occluder. Privid applies masks to video before the analyst's
// executable sees it (§7.1), so masking lives at the Source layer.
//
// The decorator filters lazily: when no observation is hidden — the
// overwhelmingly common case for typical masks — the underlying
// frame's Objects slice is returned untouched (zero copies, zero
// allocations through an arbitrarily deep decorator chain). A copy is
// made only when at least one observation must actually be dropped.
// Frame.Objects must therefore be treated as read-only by consumers;
// see Frame.
func Masked(src Source, occ Occluder) Source {
	if occ == nil {
		return src
	}
	return &maskedSource{src: src, occ: occ}
}

type maskedSource struct {
	src Source
	occ Occluder
}

func (m *maskedSource) Info() Info { return m.src.Info() }

func (m *maskedSource) Frame(i int64) Frame {
	f := m.src.Frame(i)
	f.Objects = filterObjects(f.Objects, func(o *scene.Observation) bool {
		return m.occ.Visible(o.Box)
	})
	return f
}

// filterObjects returns the observations satisfying keep. The input
// slice is returned untouched (shared, not copied) when every element
// survives; otherwise exactly one allocation of the surviving length
// is made. keep is called once per element.
func filterObjects(objs []scene.Observation, keep func(*scene.Observation) bool) []scene.Observation {
	// Scan for the first casualty; until one is found there is nothing
	// to copy.
	drop := -1
	for i := range objs {
		if !keep(&objs[i]) {
			drop = i
			break
		}
	}
	if drop < 0 {
		return objs
	}
	out := make([]scene.Observation, drop, len(objs)-1)
	copy(out, objs[:drop])
	for i := drop + 1; i < len(objs); i++ {
		if keep(&objs[i]) {
			out = append(out, objs[i])
		}
	}
	return out
}

func (m *maskedSource) ActiveIntervals(iv vtime.Interval) []vtime.Interval {
	if ss, ok := m.src.(SparseSource); ok {
		return ss.ActiveIntervals(iv)
	}
	return []vtime.Interval{iv}
}

// Cropped returns a source restricted to a spatial region: only
// observations whose box center lies inside the region remain. This
// implements the per-region view of spatial splitting (§7.2). Like
// Masked it filters lazily: frames in which nothing is cropped share
// the underlying Objects slice instead of copying it.
func Cropped(src Source, region geom.Rect) Source {
	return &croppedSource{src: src, region: region}
}

type croppedSource struct {
	src    Source
	region geom.Rect
}

func (c *croppedSource) Info() Info { return c.src.Info() }

func (c *croppedSource) Frame(i int64) Frame {
	f := c.src.Frame(i)
	f.Objects = filterObjects(f.Objects, func(o *scene.Observation) bool {
		return c.region.Contains(o.Box.Center())
	})
	return f
}

func (c *croppedSource) ActiveIntervals(iv vtime.Interval) []vtime.Interval {
	if ss, ok := c.src.(SparseSource); ok {
		return ss.ActiveIntervals(iv)
	}
	return []vtime.Interval{iv}
}

// Chunk is one temporal chunk handed to an instance of the analyst's
// processing executable. Frames are accessed lazily so large chunks
// need not be materialized.
type Chunk struct {
	Camera   string
	Ordinal  int64           // chunk index within the split
	Interval vtime.Interval  // frame range [Start, End)
	FPS      vtime.FrameRate // frame rate
	Start    time.Time       // wall-clock instant of the first frame
	Region   string          // region name when spatially split ("" otherwise)
	src      Source
}

// Len returns the number of frames in the chunk.
func (c *Chunk) Len() int64 { return c.Interval.Len() }

// Frame returns the k-th frame of the chunk (0-based).
func (c *Chunk) Frame(k int64) Frame {
	return c.src.Frame(c.Interval.Start + k)
}

// Seconds returns the chunk duration in seconds.
func (c *Chunk) Seconds() float64 { return c.FPS.Seconds(c.Len()) }

// Split is the chunking plan of a SPLIT statement: window [Interval)
// divided into chunks of ChunkFrames frames separated by StrideFrames
// frames (stride 0 means contiguous; negative strides overlap).
type Split struct {
	Source       Source
	Interval     vtime.Interval
	ChunkFrames  int64
	StrideFrames int64
	Region       string
}

// period returns the frame distance between consecutive chunk starts.
func (s Split) period() int64 {
	p := s.ChunkFrames + s.StrideFrames
	if p < 1 {
		p = 1
	}
	return p
}

// NumChunks returns the number of chunks in the plan.
func (s Split) NumChunks() int64 {
	if s.ChunkFrames <= 0 || s.Interval.Empty() {
		return 0
	}
	span := s.Interval.Len()
	p := s.period()
	// Chunks start at Interval.Start + i*p while the start is within
	// the window.
	return (span + p - 1) / p
}

// ChunkAt returns the i-th chunk of the plan. The final chunk is
// clipped to the window.
func (s Split) ChunkAt(i int64) *Chunk {
	start := s.Interval.Start + i*s.period()
	end := start + s.ChunkFrames
	if end > s.Interval.End {
		end = s.Interval.End
	}
	info := s.Source.Info()
	return &Chunk{
		Camera:   info.Camera,
		Ordinal:  i,
		Interval: vtime.NewInterval(start, end),
		FPS:      info.FPS,
		Start:    info.Clock().TimeOf(start),
		Region:   s.Region,
		src:      s.Source,
	}
}

// ActiveChunks returns the ordinals of chunks that can contain
// observations. When the source is sparse it skips empty chunks;
// otherwise it returns every ordinal.
func (s Split) ActiveChunks() []int64 {
	n := s.NumChunks()
	ss, ok := s.Source.(SparseSource)
	if !ok {
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(i)
		}
		return out
	}
	p := s.period()
	var out []int64
	last := int64(-1)
	for _, iv := range ss.ActiveIntervals(s.Interval) {
		iv = iv.Intersect(s.Interval)
		if iv.Empty() {
			continue
		}
		// Chunk i covers [Start+i*p, Start+i*p+ChunkFrames). It
		// overlaps iv iff i*p < iv.End-Start and i*p+ChunkFrames >
		// iv.Start-Start.
		lo := (iv.Start - s.Interval.Start - s.ChunkFrames + 1 + p - 1) / p // ceil
		if lo*p+s.ChunkFrames <= iv.Start-s.Interval.Start {
			lo++
		}
		if lo < 0 {
			lo = 0
		}
		hi := (iv.End - s.Interval.Start - 1) / p
		if hi >= n {
			hi = n - 1
		}
		for i := lo; i <= hi; i++ {
			if i > last {
				out = append(out, i)
				last = i
			}
		}
	}
	return out
}
