package video

import (
	"math/rand"
	"testing"
	"time"

	"privid/internal/scene"
	"privid/internal/vtime"
)

// randomFake builds a random interval source and a brute-force
// per-frame visibility oracle.
func randomFake(seed int64, frames int64, n int) (*SparseIntervalSource, [][]int) {
	rng := rand.New(rand.NewSource(seed))
	s := &SparseIntervalSource{IntervalSource: IntervalSource{
		Camera: "fake", W: 100, H: 100, FPS: 10,
		Start:  time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC),
		Frames: frames,
	}}
	visible := make([][]int, frames)
	for id := 0; id < n; id++ {
		enter := rng.Int63n(frames)
		exit := enter + 1 + rng.Int63n(40)
		if exit > frames {
			exit = frames
		}
		s.Objects = append(s.Objects, FakeObject{ID: id, Class: scene.Person, Enter: enter, Exit: exit})
		for f := enter; f < exit; f++ {
			visible[f] = append(visible[f], id)
		}
	}
	s.Sort()
	return s, visible
}

func TestIntervalSourceFrameMatchesOracle(t *testing.T) {
	const frames = 500
	s, visible := randomFake(7, frames, 60)
	for f := int64(0); f < frames; f++ {
		got := map[int]bool{}
		for _, o := range s.Frame(f).Objects {
			got[o.EntityID] = true
		}
		if len(got) != len(visible[f]) {
			t.Fatalf("frame %d: %d objects, want %d", f, len(got), len(visible[f]))
		}
		for _, id := range visible[f] {
			if !got[id] {
				t.Fatalf("frame %d: object %d missing", f, id)
			}
		}
	}
}

func TestSparseIntervalSourceActiveIntervals(t *testing.T) {
	const frames = 500
	s, visible := randomFake(11, frames, 20)
	ivs := s.ActiveIntervals(vtime.Interval{Start: 0, End: frames})
	// Disjoint, sorted, and exactly covering the frames with objects.
	covered := map[int64]bool{}
	last := int64(-1)
	for _, iv := range ivs {
		if iv.Start <= last {
			t.Fatalf("intervals not sorted/disjoint: %v", ivs)
		}
		last = iv.End
		for f := iv.Start; f < iv.End; f++ {
			covered[f] = true
		}
	}
	for f := int64(0); f < frames; f++ {
		if (len(visible[f]) > 0) != covered[f] {
			t.Fatalf("frame %d: visible=%v covered=%v", f, len(visible[f]) > 0, covered[f])
		}
	}
}

// TestSparseIntervalSourceSkipsEmptyChunks pins the contract the sim
// fleet depends on: with an object-dependent executable, skipping
// never-active chunks is invisible — ActiveChunks enumerates exactly
// the chunks overlapping some object span.
func TestSparseIntervalSourceSkipsEmptyChunks(t *testing.T) {
	s := &SparseIntervalSource{IntervalSource: IntervalSource{
		Camera: "fake", W: 100, H: 100, FPS: 10,
		Start:  time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC),
		Frames: 1000,
		Objects: []FakeObject{
			{ID: 0, Enter: 50, Exit: 70},
			{ID: 1, Enter: 420, Exit: 430},
		},
	}}
	s.Sort()
	split := Split{
		Source:      s,
		Interval:    vtime.Interval{Start: 0, End: 1000},
		ChunkFrames: 100,
	}
	ords := split.ActiveChunks()
	if len(ords) != 2 || ords[0] != 0 || ords[1] != 4 {
		t.Fatalf("active chunk ordinals = %v, want [0 4]", ords)
	}
}
