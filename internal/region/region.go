// Package region implements Privid's spatial-splitting optimization
// (§7.2): video-owner-defined schemes that divide the frame into
// regions, per-region chunk views, and the max-output analysis behind
// Table 2 (splitting shrinks the per-chunk output range an individual
// can influence, and therefore the noise).
package region

import (
	"fmt"

	"privid/internal/geom"
	"privid/internal/scene"
	"privid/internal/video"
	"privid/internal/vtime"
)

// Named is one region of a scheme, in absolute pixel coordinates.
type Named struct {
	Name string
	Rect geom.Rect
}

// Scheme is a spatial-splitting scheme registered by the video owner.
// Hard declares that individuals never cross region boundaries (e.g.
// opposite highway directions); soft schemes restrict queries to a
// chunk size of one frame so an individual can occupy at most one
// chunk at a time (§7.2).
type Scheme struct {
	Name    string
	Hard    bool
	Regions []Named
}

// FromSpec scales a profile's unit-coordinate region spec to a frame.
func FromSpec(spec scene.RegionSpec, w, h float64) Scheme {
	s := Scheme{Name: spec.Name, Hard: spec.Hard}
	for _, r := range spec.Regions {
		s.Regions = append(s.Regions, Named{
			Name: r.Name,
			Rect: geom.Rect{X0: r.Rect.X0 * w, Y0: r.Rect.Y0 * h, X1: r.Rect.X1 * w, Y1: r.Rect.Y1 * h},
		})
	}
	return s
}

// Validate checks the scheme is non-empty with uniquely named,
// non-empty regions.
func (s Scheme) Validate() error {
	if len(s.Regions) == 0 {
		return fmt.Errorf("region: scheme %q has no regions", s.Name)
	}
	seen := map[string]bool{}
	for _, r := range s.Regions {
		if r.Name == "" {
			return fmt.Errorf("region: unnamed region in scheme %q", s.Name)
		}
		if seen[r.Name] {
			return fmt.Errorf("region: duplicate region %q in scheme %q", r.Name, s.Name)
		}
		seen[r.Name] = true
		if r.Rect.Empty() {
			return fmt.Errorf("region: empty region %q in scheme %q", r.Name, s.Name)
		}
	}
	return nil
}

// Sources returns one cropped view of src per region, keyed by region
// name.
func (s Scheme) Sources(src video.Source) map[string]video.Source {
	out := make(map[string]video.Source, len(s.Regions))
	for _, r := range s.Regions {
		out[r.Name] = video.Cropped(src, r.Rect)
	}
	return out
}

// Analysis is the Table 2 measurement for one source and scheme.
type Analysis struct {
	// FrameMax is the maximum number of distinct private objects
	// visible in any single chunk across the whole frame.
	FrameMax int
	// RegionMax is the maximum number of distinct private objects
	// visible in any single chunk within any single region.
	RegionMax int
}

// Reduction returns FrameMax/RegionMax — the factor by which splitting
// lowers the required output range and thus the noise (Table 2).
func (a Analysis) Reduction() float64 {
	if a.RegionMax == 0 {
		return 0
	}
	return float64(a.FrameMax) / float64(a.RegionMax)
}

// Analyze measures, for each chunk of chunkFrames frames over iv, the
// number of distinct private objects visible (sampling every stride-th
// frame), both frame-wide and per region, and returns the maxima.
func Analyze(src video.Source, sch Scheme, iv vtime.Interval, chunkFrames, stride int64) Analysis {
	if stride < 1 {
		stride = 1
	}
	var out Analysis
	for start := iv.Start; start < iv.End; start += chunkFrames {
		end := start + chunkFrames
		if end > iv.End {
			end = iv.End
		}
		frameIDs := map[int]bool{}
		regionIDs := make([]map[int]bool, len(sch.Regions))
		for i := range regionIDs {
			regionIDs[i] = map[int]bool{}
		}
		for f := start; f < end; f += stride {
			for _, o := range src.Frame(f).Objects {
				if !o.Class.Private() {
					continue
				}
				frameIDs[o.EntityID] = true
				c := o.Box.Center()
				for i, r := range sch.Regions {
					if r.Rect.Contains(c) {
						regionIDs[i][o.EntityID] = true
					}
				}
			}
		}
		if len(frameIDs) > out.FrameMax {
			out.FrameMax = len(frameIDs)
		}
		for _, ids := range regionIDs {
			if len(ids) > out.RegionMax {
				out.RegionMax = len(ids)
			}
		}
	}
	return out
}
