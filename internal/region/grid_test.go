package region

import (
	"testing"
)

func testGrid() GridScheme {
	return GridScheme{
		Name: "g", Rows: 4, Cols: 8,
		FrameW: 800, FrameH: 400, // cells are 100x100
		MaxObjectW: 50, MaxObjectH: 50,
		MaxSpeedPxPerSec: 100,
	}
}

func TestGridValidate(t *testing.T) {
	if err := testGrid().Validate(); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
	bad := []GridScheme{
		{Name: "b", Rows: 0, Cols: 1, FrameW: 1, FrameH: 1, MaxObjectW: 1, MaxObjectH: 1},
		{Name: "b", Rows: 1, Cols: 1, FrameW: 0, FrameH: 1, MaxObjectW: 1, MaxObjectH: 1},
		{Name: "b", Rows: 1, Cols: 1, FrameW: 1, FrameH: 1, MaxObjectW: 0, MaxObjectH: 1},
		{Name: "b", Rows: 1, Cols: 1, FrameW: 1, FrameH: 1, MaxObjectW: 1, MaxObjectH: 1, MaxSpeedPxPerSec: -1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad grid %d accepted", i)
		}
	}
}

func TestGridCellsOccupied(t *testing.T) {
	g := testGrid()
	// A 50x50 object on a 100x100 grid can straddle one boundary per
	// axis: 2x2 cells.
	if got := g.CellsOccupied(); got != 4 {
		t.Errorf("CellsOccupied=%d, want 4", got)
	}
	// An object spanning a full cell can straddle two boundaries.
	g.MaxObjectW, g.MaxObjectH = 150, 150
	if got := g.CellsOccupied(); got != 9 {
		t.Errorf("big CellsOccupied=%d, want 9", got)
	}
	// Capped at the grid size.
	g.MaxObjectW, g.MaxObjectH = 10000, 10000
	if got := g.CellsOccupied(); got != g.Rows*g.Cols {
		t.Errorf("capped CellsOccupied=%d, want %d", got, g.Rows*g.Cols)
	}
}

func TestGridRegionsPerChunk(t *testing.T) {
	g := testGrid()
	// Stationary bound: zero-duration chunk -> just the occupied cells.
	static := g.RegionsPerChunk(0, 10)
	if static != g.CellsOccupied() {
		t.Errorf("static=%d, want %d", static, g.CellsOccupied())
	}
	// Longer chunks sweep more cells, monotonically.
	prev := 0
	for _, chunkFrames := range []int64{10, 50, 100, 200} {
		got := g.RegionsPerChunk(chunkFrames, 10)
		if got < prev {
			t.Errorf("RegionsPerChunk not monotone at %d frames: %d < %d", chunkFrames, got, prev)
		}
		prev = got
	}
	// A 10s chunk at 100 px/s crosses 10 cell-lengths: many more cells
	// than the static bound.
	if got := g.RegionsPerChunk(100, 10); got <= static {
		t.Errorf("moving bound %d should exceed static %d", got, static)
	}
	// Capped at the grid size.
	if got := g.RegionsPerChunk(1_000_000, 10); got != g.Rows*g.Cols {
		t.Errorf("capped=%d, want %d", got, g.Rows*g.Cols)
	}
}

func TestGridScheme(t *testing.T) {
	g := testGrid()
	s := g.Scheme()
	if err := s.Validate(); err != nil {
		t.Fatalf("materialized scheme invalid: %v", err)
	}
	if len(s.Regions) != 32 {
		t.Fatalf("%d regions, want 32", len(s.Regions))
	}
	// Regions tile the frame disjointly.
	var area float64
	for _, r := range s.Regions {
		area += r.Rect.Area()
	}
	if area != g.FrameW*g.FrameH {
		t.Errorf("regions cover %v, want %v", area, g.FrameW*g.FrameH)
	}
}
