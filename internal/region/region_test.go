package region

import (
	"testing"
	"time"

	"privid/internal/geom"
	"privid/internal/scene"
	"privid/internal/video"
)

func TestFromSpecScaling(t *testing.T) {
	spec := scene.RegionSpec{Name: "halves", Hard: true, Regions: []scene.NamedRect{
		{Name: "left", Rect: geom.Rect{X0: 0, Y0: 0, X1: 0.5, Y1: 1}},
		{Name: "right", Rect: geom.Rect{X0: 0.5, Y0: 0, X1: 1, Y1: 1}},
	}}
	s := FromSpec(spec, 1280, 720)
	if !s.Hard || len(s.Regions) != 2 {
		t.Fatalf("scheme: %+v", s)
	}
	if s.Regions[0].Rect != (geom.Rect{X0: 0, Y0: 0, X1: 640, Y1: 720}) {
		t.Errorf("left rect: %v", s.Regions[0].Rect)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("valid scheme rejected: %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Scheme{
		{Name: "empty"},
		{Name: "unnamed", Regions: []Named{{Rect: geom.Rect{X1: 1, Y1: 1}}}},
		{Name: "dup", Regions: []Named{
			{Name: "a", Rect: geom.Rect{X1: 1, Y1: 1}},
			{Name: "a", Rect: geom.Rect{X1: 1, Y1: 1}},
		}},
		{Name: "emptyrect", Regions: []Named{{Name: "a"}}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("scheme %q accepted", s.Name)
		}
	}
}

// laneScene builds a highway-like scene: nTop entities in the top half
// and nBottom in the bottom half, all visible concurrently.
func laneScene(nTop, nBottom int) *scene.Scene {
	s := &scene.Scene{Name: "lanes", W: 1000, H: 500, FPS: 10, Frames: 1000,
		Start: time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)}
	id := 0
	add := func(y float64) {
		s.Ents = append(s.Ents, &scene.Entity{
			ID: id, Class: scene.Car,
			Appearances: []scene.Appearance{{
				Enter: 0, Exit: 1000,
				Traj: scene.NewPath(0, 1000, 40, 20, 1,
					scene.Waypoint{T: 0, P: geom.Point{X: 100 + float64(id*30), Y: y}},
					scene.Waypoint{T: 1, P: geom.Point{X: 100 + float64(id*30), Y: y}}),
			}},
		})
		id++
	}
	for i := 0; i < nTop; i++ {
		add(120)
	}
	for i := 0; i < nBottom; i++ {
		add(380)
	}
	s.BuildIndex()
	return s
}

func TestAnalyzeReduction(t *testing.T) {
	// 6 cars in the top lane, 4 in the bottom: the frame max is 10,
	// the per-region max is 6 — Table 2's reduction is 10/6.
	s := laneScene(6, 4)
	src := &video.SceneSource{Camera: "c", Scene: s}
	sch := Scheme{Name: "dirs", Hard: true, Regions: []Named{
		{Name: "top", Rect: geom.Rect{X0: 0, Y0: 0, X1: 1000, Y1: 250}},
		{Name: "bottom", Rect: geom.Rect{X0: 0, Y0: 250, X1: 1000, Y1: 500}},
	}}
	a := Analyze(src, sch, s.Bounds(), 200, 10)
	if a.FrameMax != 10 {
		t.Errorf("FrameMax=%d, want 10", a.FrameMax)
	}
	if a.RegionMax != 6 {
		t.Errorf("RegionMax=%d, want 6", a.RegionMax)
	}
	if got := a.Reduction(); got < 1.66 || got > 1.67 {
		t.Errorf("Reduction=%v, want 10/6", got)
	}
}

func TestAnalyzeEmptyScene(t *testing.T) {
	s := laneScene(0, 0)
	src := &video.SceneSource{Camera: "c", Scene: s}
	sch := Scheme{Name: "one", Regions: []Named{{Name: "all", Rect: geom.Rect{X1: 1000, Y1: 500}}}}
	a := Analyze(src, sch, s.Bounds(), 100, 10)
	if a.FrameMax != 0 || a.RegionMax != 0 || a.Reduction() != 0 {
		t.Errorf("empty analysis: %+v", a)
	}
}

func TestSchemeSources(t *testing.T) {
	s := laneScene(2, 3)
	src := &video.SceneSource{Camera: "c", Scene: s}
	sch := Scheme{Name: "dirs", Hard: true, Regions: []Named{
		{Name: "top", Rect: geom.Rect{X0: 0, Y0: 0, X1: 1000, Y1: 250}},
		{Name: "bottom", Rect: geom.Rect{X0: 0, Y0: 250, X1: 1000, Y1: 500}},
	}}
	srcs := sch.Sources(src)
	if len(srcs) != 2 {
		t.Fatalf("%d sources", len(srcs))
	}
	if got := len(srcs["top"].Frame(500).Objects); got != 2 {
		t.Errorf("top objects=%d, want 2", got)
	}
	if got := len(srcs["bottom"].Frame(500).Objects); got != 3 {
		t.Errorf("bottom objects=%d, want 3", got)
	}
}
