package region

import (
	"fmt"
	"math"

	"privid/internal/geom"
	"privid/internal/vtime"
)

// GridScheme implements the paper's Grid Split extension (§7.2,
// "future work"): the frame is divided into a uniform grid and spatial
// splitting is allowed with any chunk size and no soft/hard boundary
// restriction. Instead of assuming individuals stay in one region, the
// owner declares two physical bounds — the maximum size of any private
// object and the maximum speed at which anything crosses the frame —
// from which Privid derives how many grid-cell regions a single
// individual can influence within one chunk. The per-event row bound
// ΔP is multiplied by that count.
type GridScheme struct {
	Name string
	// Rows and Cols define the grid.
	Rows, Cols int
	// FrameW and FrameH are the frame dimensions in pixels.
	FrameW, FrameH float64
	// MaxObjectW and MaxObjectH bound any private object's bounding
	// box (pixels).
	MaxObjectW, MaxObjectH float64
	// MaxSpeedPxPerSec bounds any object's on-screen speed.
	MaxSpeedPxPerSec float64
}

// Validate checks the physical bounds are usable.
func (g GridScheme) Validate() error {
	if g.Rows < 1 || g.Cols < 1 {
		return fmt.Errorf("region: grid %q needs at least 1x1 cells", g.Name)
	}
	if g.FrameW <= 0 || g.FrameH <= 0 {
		return fmt.Errorf("region: grid %q has empty frame", g.Name)
	}
	if g.MaxObjectW <= 0 || g.MaxObjectH <= 0 {
		return fmt.Errorf("region: grid %q needs positive max object size", g.Name)
	}
	if g.MaxSpeedPxPerSec < 0 {
		return fmt.Errorf("region: grid %q has negative max speed", g.Name)
	}
	return nil
}

// CellW returns the cell width in pixels.
func (g GridScheme) CellW() float64 { return g.FrameW / float64(g.Cols) }

// CellH returns the cell height in pixels.
func (g GridScheme) CellH() float64 { return g.FrameH / float64(g.Rows) }

// CellsOccupied returns the maximum number of grid cells a single
// object can overlap at one instant: an object of size w×h placed
// anywhere overlaps at most ceil(w/cw)+1 columns and ceil(h/ch)+1
// rows... more precisely floor(w/cw)+1 columns when not aligned, so we
// use the conservative ⌈w/cw⌉+1.
func (g GridScheme) CellsOccupied() int {
	cols := int(math.Ceil(g.MaxObjectW/g.CellW())) + 1
	rows := int(math.Ceil(g.MaxObjectH/g.CellH())) + 1
	if cols > g.Cols {
		cols = g.Cols
	}
	if rows > g.Rows {
		rows = g.Rows
	}
	return cols * rows
}

// RegionsPerChunk returns the maximum number of grid-cell regions a
// single individual can influence within one chunk of the given
// duration: the cells it occupies plus the cells a maximal-speed
// traversal sweeps through.
func (g GridScheme) RegionsPerChunk(chunkFrames int64, fps vtime.FrameRate) int {
	occupied := g.CellsOccupied()
	if fps <= 0 || chunkFrames <= 0 {
		return occupied
	}
	chunkSec := float64(chunkFrames) / float64(fps)
	travelPx := g.MaxSpeedPxPerSec * chunkSec
	// Worst case the travel is along the finer grid axis; each cell
	// length traveled can add one new column (or row) of occupied
	// cells.
	minCell := math.Min(g.CellW(), g.CellH())
	crossedLines := int(math.Ceil(travelPx / minCell))
	span := occupied + crossedLines*intMax(int(math.Ceil(g.MaxObjectW/g.CellW()))+1,
		int(math.Ceil(g.MaxObjectH/g.CellH()))+1)
	if total := g.Rows * g.Cols; span > total {
		span = total
	}
	return span
}

func intMax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Scheme materializes the grid as a named-region scheme (one region
// per cell, named "rRcC").
func (g GridScheme) Scheme() Scheme {
	s := Scheme{Name: g.Name}
	cw, ch := g.CellW(), g.CellH()
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			s.Regions = append(s.Regions, Named{
				Name: fmt.Sprintf("r%dc%d", r, c),
				Rect: geom.Rect{
					X0: float64(c) * cw, Y0: float64(r) * ch,
					X1: float64(c+1) * cw, Y1: float64(r+1) * ch,
				},
			})
		}
	}
	return s
}
