package query

import (
	"time"

	"privid/internal/table"
)

// Program is a parsed query: any number of SPLIT, MERGE, PROCESS and
// SELECT statements in order. Each SELECT is a separate set of data
// releases.
type Program struct {
	Splits    []*SplitStmt
	Merges    []*MergeStmt
	Processes []*ProcessStmt
	Selects   []*SelectStmt
}

// Dur is a chunk/stride duration, expressed either in frames or in
// wall-clock seconds (the grammar accepts both: "1frame", "5sec").
type Dur struct {
	Frames   int64
	Seconds  float64
	IsFrames bool
}

// SplitStmt selects a segment of one or more cameras' video and splits
// it temporally into a named set of chunks. With multiple cameras the
// chunk set is the union of each camera's chunks and every PROCESS row
// derived from it carries the trusted implicit "camera" column.
type SplitStmt struct {
	Pos     Pos
	Cameras []string
	Begin   time.Time
	End     time.Time
	Chunk   Dur
	Stride  Dur
	// Region optionally names a video-owner-defined spatial splitting
	// scheme (BY REGION, §7.2).
	Region string
	// Mask optionally names a video-owner-published mask (WITH MASK,
	// §7.1).
	Mask string
	Into string
}

// MergeStmt unions two or more previously defined chunk sets into a
// new named chunk set. The merged set behaves like a multi-camera
// SPLIT output: PROCESS rows carry the trusted "camera" provenance
// column and sensitivity composes per contributing camera.
type MergeStmt struct {
	Pos    Pos
	Inputs []string
	Into   string
}

// ColumnDef is one column of a PROCESS schema.
type ColumnDef struct {
	Name    string
	Type    table.DType
	Default table.Value
}

// ProcessStmt runs the analyst's executable over a chunk set and
// produces an intermediate table.
type ProcessStmt struct {
	Pos     Pos
	Input   string // chunk set id
	Using   string // executable name
	Timeout time.Duration
	MaxRows int
	Schema  []ColumnDef
	Into    string
}

// AggFun is an aggregation function (the set of Fig. 10).
type AggFun int

const (
	// AggCount counts rows (COUNT(col) or COUNT(*)).
	AggCount AggFun = iota
	// AggSum sums a numeric column.
	AggSum
	// AggAvg averages a numeric column.
	AggAvg
	// AggVar computes the variance of a numeric column.
	AggVar
	// AggArgmax returns the group key with the largest aggregate.
	AggArgmax
)

// String implements fmt.Stringer.
func (f AggFun) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggVar:
		return "VAR"
	case AggArgmax:
		return "ARGMAX"
	default:
		return "AGG?"
	}
}

// SelectStmt is an aggregation release: an outer aggregation over an
// inner relational expression, optionally grouped.
type SelectStmt struct {
	Pos Pos
	// KeyCols are non-aggregate output columns; they must match the
	// GROUP BY keys (e.g. "SELECT color, COUNT(plate) ... GROUP BY
	// color").
	KeyCols []string
	Agg     AggExpr
	From    RelExpr
	// GroupBy lists grouping columns of the outer aggregation.
	GroupBy []string
	// GroupKeys is the WITH KEYS list. Required for analyst-defined
	// group columns so key presence cannot leak data (§6.2).
	GroupKeys []table.Value
	// Consuming is the privacy budget ε requested for each release of
	// this SELECT (CONSUMING directive); 0 means the engine default.
	Consuming float64
}

// AggExpr is the outer aggregation call.
type AggExpr struct {
	Pos  Pos
	Fun  AggFun
	Arg  Expr // nil when Star
	Star bool // COUNT(*)
}

// RelExpr is a relational sub-expression producing rows.
type RelExpr interface {
	relExpr()
	Position() Pos
}

// TableRef names an intermediate table created by PROCESS.
type TableRef struct {
	Pos  Pos
	Name string
}

func (*TableRef) relExpr() {}

// Position returns the node's source position.
func (t *TableRef) Position() Pos { return t.Pos }

// SelectExpr is an inner SELECT: projection + optional WHERE and LIMIT.
type SelectExpr struct {
	Pos   Pos
	Items []SelectItem
	Star  bool // SELECT *
	From  RelExpr
	Where Expr // nil if absent
	Limit int  // 0 if absent
}

func (*SelectExpr) relExpr() {}

// Position returns the node's source position.
func (s *SelectExpr) Position() Pos { return s.Pos }

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// GroupExpr is an inner GROUP BY used as a deduplication operator
// (§6.2: "adding a GROUP BY plate as an intermediate operator"): it
// emits one row per distinct key tuple.
type GroupExpr struct {
	Pos      Pos
	From     RelExpr
	Keys     []string
	WithKeys []table.Value // optional explicit key list
}

func (*GroupExpr) relExpr() {}

// Position returns the node's source position.
func (g *GroupExpr) Position() Pos { return g.Pos }

// JoinExpr joins two relations on equality of the named columns.
// Outer=false is an equijoin (intersection on the key); Outer=true is
// a full outer join (union on the key).
type JoinExpr struct {
	Pos   Pos
	Left  RelExpr
	Right RelExpr
	On    []string
	Outer bool
}

func (*JoinExpr) relExpr() {}

// Position returns the node's source position.
func (j *JoinExpr) Position() Pos { return j.Pos }

// UnionExpr concatenates the rows of two relations with identical
// column sets (UNION ALL semantics; use a GroupExpr on top for
// set-union). Multi-camera aggregations (Q4–Q6) combine per-camera
// tables this way.
type UnionExpr struct {
	Pos   Pos
	Left  RelExpr
	Right RelExpr
}

func (*UnionExpr) relExpr() {}

// Position returns the node's source position.
func (u *UnionExpr) Position() Pos { return u.Pos }

// Expr is a scalar expression over row values.
type Expr interface {
	expr()
	Position() Pos
}

// ColRef references a column by name.
type ColRef struct {
	Pos  Pos
	Name string
}

func (*ColRef) expr() {}

// Position returns the node's source position.
func (c *ColRef) Position() Pos { return c.Pos }

// NumLit is a numeric literal.
type NumLit struct {
	Pos Pos
	V   float64
}

func (*NumLit) expr() {}

// Position returns the node's source position.
func (n *NumLit) Position() Pos { return n.Pos }

// StrLit is a string literal.
type StrLit struct {
	Pos Pos
	V   string
}

func (*StrLit) expr() {}

// Position returns the node's source position.
func (s *StrLit) Position() Pos { return s.Pos }

// BinExpr is a binary operation: arithmetic (+ - * /), comparison
// (= != < <= > >=), or boolean (AND OR).
type BinExpr struct {
	Pos  Pos
	Op   string
	L, R Expr
}

func (*BinExpr) expr() {}

// Position returns the node's source position.
func (b *BinExpr) Position() Pos { return b.Pos }

// CallExpr is a builtin function call: range(col, lo, hi) (truncating
// range constraint), hour(chunk), day(chunk), bin(chunk, seconds).
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

func (*CallExpr) expr() {}

// Position returns the node's source position.
func (c *CallExpr) Position() Pos { return c.Pos }
