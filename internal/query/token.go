package query

import "fmt"

// Kind classifies a token.
type Kind int

const (
	// EOF marks the end of input.
	EOF Kind = iota
	// IDENT is an identifier or keyword (keywords are matched
	// case-insensitively by the parser).
	IDENT
	// NUMBER is a numeric literal.
	NUMBER
	// STRING is a double-quoted string literal.
	STRING
	// DURATION is a number with a unit suffix, e.g. 5sec, 10min,
	// 1frame.
	DURATION
	// TIMESTAMP is a datetime literal, e.g. 12-01-2020/12:00am.
	TIMESTAMP
	// PUNCT is a punctuation token: ( ) [ ] , ; : = * etc.
	PUNCT
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case IDENT:
		return "identifier"
	case NUMBER:
		return "number"
	case STRING:
		return "string"
	case DURATION:
		return "duration"
	case TIMESTAMP:
		return "timestamp"
	case PUNCT:
		return "punctuation"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Pos is a 1-based line/column source position.
type Pos struct {
	Line, Col int
}

// String implements fmt.Stringer.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // raw text (strings are unquoted)
	Num  float64
	Pos  Pos
}

// String implements fmt.Stringer.
func (t Token) String() string {
	if t.Kind == EOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// Error is a parse or validation error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("query:%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
