package query

import (
	"strings"
	"time"

	"privid/internal/table"
)

// timestampLayouts are accepted BEGIN/END datetime formats.
var timestampLayouts = []string{
	"01-02-2006/3:04pm",
	"1-2-2006/3:04pm",
}

// Parse lexes and parses a query program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.atEOF() {
		switch {
		case p.peekKeyword("SPLIT"):
			st, err := p.parseSplit()
			if err != nil {
				return nil, err
			}
			prog.Splits = append(prog.Splits, st)
		case p.peekKeyword("MERGE"):
			st, err := p.parseMerge()
			if err != nil {
				return nil, err
			}
			prog.Merges = append(prog.Merges, st)
		case p.peekKeyword("PROCESS"):
			st, err := p.parseProcess()
			if err != nil {
				return nil, err
			}
			prog.Processes = append(prog.Processes, st)
		case p.peekKeyword("SELECT"):
			st, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			prog.Selects = append(prog.Selects, st)
		default:
			return nil, errf(p.peek().Pos, "expected SPLIT, MERGE, PROCESS or SELECT, got %s", p.peek())
		}
		if !p.acceptPunct(";") && !p.atEOF() {
			return nil, errf(p.peek().Pos, "expected ';' after statement, got %s", p.peek())
		}
	}
	if err := Validate(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) peek() Token { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.peek().Kind == EOF }
func (p *parser) next() Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == IDENT && strings.EqualFold(t.Text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errf(p.peek().Pos, "expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *parser) peekPunct(s string) bool {
	t := p.peek()
	return t.Kind == PUNCT && t.Text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.peekPunct(s) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return errf(p.peek().Pos, "expected %q, got %s", s, p.peek())
	}
	return nil
}

func (p *parser) expectIdent() (Token, error) {
	t := p.peek()
	if t.Kind != IDENT {
		return Token{}, errf(t.Pos, "expected identifier, got %s", t)
	}
	p.i++
	return t, nil
}

func (p *parser) expectNumber() (Token, error) {
	t := p.peek()
	if t.Kind != NUMBER {
		return Token{}, errf(t.Pos, "expected number, got %s", t)
	}
	p.i++
	return t, nil
}

func (p *parser) expectTimestamp() (time.Time, error) {
	t := p.peek()
	if t.Kind != TIMESTAMP {
		return time.Time{}, errf(t.Pos, "expected timestamp (MM-DD-YYYY/H:MMam), got %s", t)
	}
	p.i++
	for _, layout := range timestampLayouts {
		if ts, err := time.Parse(layout, t.Text); err == nil {
			return ts.UTC(), nil
		}
	}
	return time.Time{}, errf(t.Pos, "unparseable timestamp %q", t.Text)
}

func (p *parser) expectDur() (Dur, error) {
	t := p.peek()
	switch t.Kind {
	case DURATION:
		p.i++
		frames, isFrames, secs, err := parseDurationToken(t)
		if err != nil {
			return Dur{}, err
		}
		return Dur{Frames: frames, IsFrames: isFrames, Seconds: secs}, nil
	case NUMBER:
		// Bare numbers are seconds (the grammar's chunk_sec).
		p.i++
		return Dur{Seconds: t.Num}, nil
	default:
		return Dur{}, errf(t.Pos, "expected duration, got %s", t)
	}
}

// parseSplit parses:
//
//	SPLIT cam [, cam ...] BEGIN ts END ts BY TIME d STRIDE d
//	  [BY REGION scheme] [WITH MASK id] INTO name
func (p *parser) parseSplit() (*SplitStmt, error) {
	pos := p.peek().Pos
	if err := p.expectKeyword("SPLIT"); err != nil {
		return nil, err
	}
	st := &SplitStmt{Pos: pos}
	for {
		cam, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Cameras = append(st.Cameras, cam.Text)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("BEGIN"); err != nil {
		return nil, err
	}
	var err error
	if st.Begin, err = p.expectTimestamp(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	if st.End, err = p.expectTimestamp(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TIME"); err != nil {
		return nil, err
	}
	if st.Chunk, err = p.expectDur(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("STRIDE"); err != nil {
		return nil, err
	}
	// Strides may be negative (overlapping chunks).
	neg := p.acceptPunct("-")
	if st.Stride, err = p.expectDur(); err != nil {
		return nil, err
	}
	if neg {
		st.Stride.Frames = -st.Stride.Frames
		st.Stride.Seconds = -st.Stride.Seconds
	}
	for {
		switch {
		case p.acceptKeyword("BY"):
			if err := p.expectKeyword("REGION"); err != nil {
				return nil, err
			}
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Region = id.Text
		case p.acceptKeyword("WITH"):
			if err := p.expectKeyword("MASK"); err != nil {
				return nil, err
			}
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Mask = id.Text
		case p.acceptKeyword("INTO"):
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Into = id.Text
			return st, nil
		default:
			return nil, errf(p.peek().Pos, "expected BY REGION, WITH MASK or INTO, got %s", p.peek())
		}
	}
}

// parseMerge parses:
//
//	MERGE chunks_a, chunks_b [, ...] INTO name
func (p *parser) parseMerge() (*MergeStmt, error) {
	pos := p.peek().Pos
	if err := p.expectKeyword("MERGE"); err != nil {
		return nil, err
	}
	st := &MergeStmt{Pos: pos}
	for {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Inputs = append(st.Inputs, id.Text)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	into, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Into = into.Text
	return st, nil
}

// parseProcess parses:
//
//	PROCESS chunks USING exe TIMEOUT d PRODUCING n ROWS
//	  WITH SCHEMA (col:TYPE=default, ...) INTO name
func (p *parser) parseProcess() (*ProcessStmt, error) {
	pos := p.peek().Pos
	if err := p.expectKeyword("PROCESS"); err != nil {
		return nil, err
	}
	in, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &ProcessStmt{Pos: pos, Input: in.Text}
	if err := p.expectKeyword("USING"); err != nil {
		return nil, err
	}
	exe := p.next()
	if exe.Kind != IDENT && exe.Kind != STRING {
		return nil, errf(exe.Pos, "expected executable name, got %s", exe)
	}
	st.Using = exe.Text
	if err := p.expectKeyword("TIMEOUT"); err != nil {
		return nil, err
	}
	d, err := p.expectDur()
	if err != nil {
		return nil, err
	}
	if d.IsFrames {
		return nil, errf(pos, "TIMEOUT must be a wall-clock duration")
	}
	st.Timeout = time.Duration(d.Seconds * float64(time.Second))
	// Both PRODUCING and the paper's typo PRODUING are accepted.
	if !p.acceptKeyword("PRODUCING") && !p.acceptKeyword("PRODUING") {
		return nil, errf(p.peek().Pos, "expected PRODUCING, got %s", p.peek())
	}
	n, err := p.expectNumber()
	if err != nil {
		return nil, err
	}
	st.MaxRows = int(n.Num)
	p.acceptKeyword("ROWS") // optional noise word
	if err := p.expectKeyword("WITH"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SCHEMA"); err != nil {
		return nil, err
	}
	if st.Schema, err = p.parseSchema(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	into, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Into = into.Text
	return st, nil
}

// parseSchema parses (name:TYPE=default, ...).
func (p *parser) parseSchema() ([]ColumnDef, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		tt, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		var dt table.DType
		switch strings.ToUpper(tt.Text) {
		case "STRING":
			dt = table.DString
		case "NUMBER":
			dt = table.DNumber
		default:
			return nil, errf(tt.Pos, "unknown type %q (want STRING or NUMBER)", tt.Text)
		}
		col := ColumnDef{Name: name.Text, Type: dt}
		if p.acceptPunct("=") {
			neg := p.acceptPunct("-")
			v := p.next()
			switch v.Kind {
			case NUMBER:
				n := v.Num
				if neg {
					n = -n
				}
				col.Default = table.N(n)
			case STRING:
				if neg {
					return nil, errf(v.Pos, "cannot negate a string default")
				}
				col.Default = table.S(v.Text)
			default:
				return nil, errf(v.Pos, "expected default value, got %s", v)
			}
		} else if dt == table.DNumber {
			col.Default = table.N(0)
		} else {
			col.Default = table.S("")
		}
		cols = append(cols, col)
		if p.acceptPunct(",") {
			continue
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return cols, nil
	}
}

// aggFuns maps keyword to aggregation function.
var aggFuns = map[string]AggFun{
	"COUNT":  AggCount,
	"SUM":    AggSum,
	"AVG":    AggAvg,
	"VAR":    AggVar,
	"ARGMAX": AggArgmax,
}

// parseSelect parses a full select_stmt.
func (p *parser) parseSelect() (*SelectStmt, error) {
	pos := p.peek().Pos
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Pos: pos}
	// Output items: zero or more key columns, then exactly one
	// aggregation.
	for {
		t := p.peek()
		if t.Kind != IDENT {
			return nil, errf(t.Pos, "expected column or aggregation, got %s", t)
		}
		if fun, ok := aggFuns[strings.ToUpper(t.Text)]; ok {
			agg, err := p.parseAgg(fun)
			if err != nil {
				return nil, err
			}
			st.Agg = agg
			break
		}
		p.i++
		st.KeyCols = append(st.KeyCols, t.Text)
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseRel()
	if err != nil {
		return nil, err
	}
	st.From = from
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, id.Text)
			if !p.acceptPunct(",") {
				break
			}
		}
		if p.acceptKeyword("WITH") {
			if err := p.expectKeyword("KEYS"); err != nil {
				return nil, err
			}
			keys, err := p.parseKeyList()
			if err != nil {
				return nil, err
			}
			st.GroupKeys = keys
		}
	}
	if p.acceptKeyword("CONSUMING") {
		neg := p.acceptPunct("-")
		n, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		st.Consuming = n.Num
		if neg {
			st.Consuming = -st.Consuming
		}
	}
	return st, nil
}

// parseAgg parses FUN(arg) where arg is * or an expression.
func (p *parser) parseAgg(fun AggFun) (AggExpr, error) {
	t := p.next() // the aggregation keyword
	agg := AggExpr{Pos: t.Pos, Fun: fun}
	if err := p.expectPunct("("); err != nil {
		return agg, err
	}
	if p.acceptPunct("*") {
		agg.Star = true
	} else {
		e, err := p.parseExpr()
		if err != nil {
			return agg, err
		}
		agg.Arg = e
	}
	if err := p.expectPunct(")"); err != nil {
		return agg, err
	}
	return agg, nil
}

// parseKeyList parses ["A", "B", 3, ...].
func (p *parser) parseKeyList() ([]table.Value, error) {
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	var keys []table.Value
	if p.acceptPunct("]") {
		return keys, nil
	}
	for {
		t := p.next()
		switch t.Kind {
		case STRING:
			keys = append(keys, table.S(t.Text))
		case NUMBER:
			keys = append(keys, table.N(t.Num))
		default:
			return nil, errf(t.Pos, "expected key literal, got %s", t)
		}
		if p.acceptPunct(",") {
			continue
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		return keys, nil
	}
}

// parseRel parses an inner relational expression, handling postfix
// GROUP BY and JOIN combinators.
func (p *parser) parseRel() (RelExpr, error) {
	rel, err := p.parseRelPrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekKeyword("GROUP"):
			// Lookahead: an outer SELECT's GROUP BY also begins with
			// GROUP; only consume it here when parsing a
			// parenthesized inner relation. The ambiguity is resolved
			// by parseRelPrimary consuming GROUP BY only inside
			// parens; at top level the outer select owns it.
			return rel, nil
		case p.acceptKeyword("JOIN"):
			pos := p.toks[p.i-1].Pos
			right, err := p.parseRelPrimary()
			if err != nil {
				return nil, err
			}
			j := &JoinExpr{Pos: pos, Left: rel, Right: right}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			for {
				id, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				j.On = append(j.On, id.Text)
				if !p.acceptPunct(",") {
					break
				}
			}
			rel = j
		case p.acceptKeyword("UNION"):
			pos := p.toks[p.i-1].Pos
			right, err := p.parseRelPrimary()
			if err != nil {
				return nil, err
			}
			rel = &UnionExpr{Pos: pos, Left: rel, Right: right}
		case p.acceptKeyword("OUTER"):
			// OUTER JOIN variant.
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			pos := p.toks[p.i-1].Pos
			right, err := p.parseRelPrimary()
			if err != nil {
				return nil, err
			}
			j := &JoinExpr{Pos: pos, Left: rel, Right: right, Outer: true}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			for {
				id, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				j.On = append(j.On, id.Text)
				if !p.acceptPunct(",") {
					break
				}
			}
			rel = j
		default:
			return rel, nil
		}
	}
}

// parseRelPrimary parses a table reference or a parenthesized inner
// select / group-by.
func (p *parser) parseRelPrimary() (RelExpr, error) {
	t := p.peek()
	if t.Kind == IDENT && !p.peekKeyword("SELECT") {
		p.i++
		return &TableRef{Pos: t.Pos, Name: t.Text}, nil
	}
	if p.acceptPunct("(") {
		inner, err := p.parseInnerSelectBody()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	if p.peekKeyword("SELECT") {
		return p.parseInnerSelectBody()
	}
	return nil, errf(t.Pos, "expected table or (subquery), got %s", t)
}

// parseInnerSelectBody parses SELECT items FROM rel [WHERE e] [LIMIT n]
// [GROUP BY cols [WITH KEYS [...]]] (the GROUP BY here is the inner
// dedup operator).
func (p *parser) parseInnerSelectBody() (RelExpr, error) {
	pos := p.peek().Pos
	var rel RelExpr
	if p.acceptKeyword("SELECT") {
		se := &SelectExpr{Pos: pos}
		if p.acceptPunct("*") {
			se.Star = true
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item := SelectItem{Expr: e}
				if p.acceptKeyword("AS") {
					id, err := p.expectIdent()
					if err != nil {
						return nil, err
					}
					item.Alias = id.Text
				}
				se.Items = append(se.Items, item)
				if !p.acceptPunct(",") {
					break
				}
			}
		}
		if err := p.expectKeyword("FROM"); err != nil {
			return nil, err
		}
		from, err := p.parseRel()
		if err != nil {
			return nil, err
		}
		se.From = from
		if p.acceptKeyword("WHERE") {
			w, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			se.Where = w
		}
		if p.acceptKeyword("LIMIT") {
			n, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			se.Limit = int(n.Num)
		}
		rel = se
	} else {
		r, err := p.parseRel()
		if err != nil {
			return nil, err
		}
		rel = r
	}
	// Inner GROUP BY (dedup) attaches here.
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		g := &GroupExpr{Pos: pos, From: rel}
		for {
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			g.Keys = append(g.Keys, id.Text)
			if !p.acceptPunct(",") {
				break
			}
		}
		if p.acceptKeyword("WITH") {
			if err := p.expectKeyword("KEYS"); err != nil {
				return nil, err
			}
			keys, err := p.parseKeyList()
			if err != nil {
				return nil, err
			}
			g.WithKeys = keys
		}
		rel = g
	}
	return rel, nil
}

// Expression grammar (precedence climbing):
//
//	or:   and (OR and)*
//	and:  cmp (AND cmp)*
//	cmp:  add ((=|==|!=|<|<=|>|>=) add)?
//	add:  mul ((+|-) mul)*
//	mul:  unary ((*|/) unary)*
//	unary: -unary | primary
//	primary: literal | ident | ident(...) | (expr)
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("OR") {
		pos := p.next().Pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Pos: pos, Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("AND") {
		pos := p.next().Pos
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Pos: pos, Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"==", "=", "!=", "<=", ">=", "<", ">"} {
		if p.peekPunct(op) {
			pos := p.next().Pos
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			canonical := op
			if canonical == "==" {
				canonical = "="
			}
			return &BinExpr{Pos: pos, Op: canonical, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.peekPunct("+") || p.peekPunct("-") {
		t := p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Pos: t.Pos, Op: t.Text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peekPunct("*") || p.peekPunct("/") {
		t := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Pos: t.Pos, Op: t.Text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peekPunct("-") {
		t := p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Pos: t.Pos, Op: "-", L: &NumLit{Pos: t.Pos, V: 0}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case NUMBER:
		return &NumLit{Pos: t.Pos, V: t.Num}, nil
	case STRING:
		return &StrLit{Pos: t.Pos, V: t.Text}, nil
	case IDENT:
		if p.acceptPunct("(") {
			call := &CallExpr{Pos: t.Pos, Name: strings.ToLower(t.Text)}
			if !p.acceptPunct(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.acceptPunct(",") {
						continue
					}
					if err := p.expectPunct(")"); err != nil {
						return nil, err
					}
					break
				}
			}
			return call, nil
		}
		return &ColRef{Pos: t.Pos, Name: t.Text}, nil
	case PUNCT:
		if t.Text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, errf(t.Pos, "expected expression, got %s", t)
}
