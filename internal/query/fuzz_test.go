package query

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics feeds the parser randomized garbage —
// truncations and mutations of a valid program plus raw noise — and
// requires it to return an error or a program, never panic.
func TestParseNeverPanics(t *testing.T) {
	valid := `
SPLIT camA BEGIN 01-01-2021/12:00am END 01-02-2021/12:00am
  BY TIME 5sec STRIDE 0sec INTO c;
PROCESS c USING exe TIMEOUT 1sec PRODUCING 5 ROWS
  WITH SCHEMA (n:NUMBER=0, tag:STRING="") INTO t;
SELECT COUNT(*) FROM t;`
	rng := rand.New(rand.NewSource(123))
	tokens := []string{"SELECT", "FROM", "(", ")", "[", "]", ",", ";",
		"GROUP", "BY", "JOIN", "UNION", "range", "5sec", `"x"`, "12-01-2020/12:00am",
		"*", "=", "chunk", "WITH", "KEYS", "-", "0.5"}

	check := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
	}

	// Truncations of the valid program at every byte offset.
	for i := 0; i <= len(valid); i += 3 {
		check(valid[:i])
	}
	// Random single-character deletions and substitutions.
	for trial := 0; trial < 300; trial++ {
		b := []byte(valid)
		switch rng.Intn(3) {
		case 0:
			i := rng.Intn(len(b))
			b = append(b[:i], b[i+1:]...)
		case 1:
			b[rng.Intn(len(b))] = byte(rng.Intn(128))
		case 2:
			var sb strings.Builder
			for i := 0; i < 1+rng.Intn(30); i++ {
				sb.WriteString(tokens[rng.Intn(len(tokens))])
				sb.WriteString(" ")
			}
			b = []byte(sb.String())
		}
		check(string(b))
	}
}

// TestLexNeverPanics exercises the lexer with raw byte noise.
func TestLexNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		b := make([]byte, rng.Intn(64))
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("lexer panic on %q: %v", b, r)
				}
			}()
			_, _ = Lex(string(b))
		}()
	}
}

// FuzzParse is the native fuzz target behind TestParseNeverPanics:
// whatever bytes arrive over the wire as a query program, Parse must
// return a program or an error, never panic. CI runs it briefly on
// every push (-fuzz FuzzParse -fuzztime 10s).
func FuzzParse(f *testing.F) {
	f.Add(`
SPLIT camA BEGIN 01-01-2021/12:00am END 01-02-2021/12:00am
  BY TIME 5sec STRIDE 0sec INTO c;
PROCESS c USING exe TIMEOUT 1sec PRODUCING 5 ROWS
  WITH SCHEMA (n:NUMBER=0, tag:STRING="") INTO t;
SELECT COUNT(*) FROM t;`)
	f.Add("SELECT COUNT(*) FROM t;")
	f.Add("SPLIT BEGIN END")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Parse(src)
	})
}
