package query

import (
	"fmt"

	"privid/internal/table"
)

// Validate performs the static checks that do not require camera or
// table metadata: statement wiring (every PROCESS input and SELECT
// table must be defined), schema sanity, aggregation shape, and
// builtin-function arity. Checks that need runtime metadata (range
// constraints, trusted group keys) happen in the relational layer.
func Validate(p *Program) error {
	chunkSets := map[string]bool{}
	tables := map[string]bool{}
	// regionOf records each chunk set's BY REGION scheme name ("" when
	// unsplit) so MERGE can reject mixing spatially incompatible sets.
	regionOf := map[string]string{}

	for _, s := range p.Splits {
		if s.Into == "" {
			return errf(s.Pos, "SPLIT missing INTO")
		}
		if chunkSets[s.Into] {
			return errf(s.Pos, "duplicate chunk set %q", s.Into)
		}
		chunkSets[s.Into] = true
		regionOf[s.Into] = s.Region
		seenCam := map[string]bool{}
		for _, cam := range s.Cameras {
			if seenCam[cam] {
				return errf(s.Pos, "duplicate camera %q in SPLIT", cam)
			}
			seenCam[cam] = true
		}
		if !s.End.After(s.Begin) {
			return errf(s.Pos, "SPLIT END must be after BEGIN")
		}
		if s.Chunk.IsFrames {
			if s.Chunk.Frames <= 0 {
				return errf(s.Pos, "chunk duration must be positive")
			}
		} else if s.Chunk.Seconds <= 0 {
			return errf(s.Pos, "chunk duration must be positive")
		}
	}

	// MERGE statements resolve in order against chunk sets already
	// defined above (SPLIT outputs and earlier MERGE outputs).
	for _, m := range p.Merges {
		if len(m.Inputs) < 2 {
			return errf(m.Pos, "MERGE requires at least two chunk sets")
		}
		seenIn := map[string]bool{}
		var region string
		for i, in := range m.Inputs {
			if !chunkSets[in] {
				return errf(m.Pos, "MERGE input %q is not a defined chunk set", in)
			}
			if seenIn[in] {
				return errf(m.Pos, "duplicate chunk set %q in MERGE", in)
			}
			seenIn[in] = true
			if i == 0 {
				region = regionOf[in]
			} else if regionOf[in] != region {
				return errf(m.Pos, "MERGE of mismatched region schemes (%q uses %s, %q uses %s)",
					m.Inputs[0], schemeName(region), in, schemeName(regionOf[in]))
			}
		}
		if chunkSets[m.Into] {
			return errf(m.Pos, "duplicate chunk set %q", m.Into)
		}
		chunkSets[m.Into] = true
		regionOf[m.Into] = region
	}

	for _, st := range p.Processes {
		if !chunkSets[st.Input] {
			return errf(st.Pos, "PROCESS input %q is not a SPLIT output", st.Input)
		}
		if tables[st.Into] || chunkSets[st.Into] {
			return errf(st.Pos, "duplicate table %q", st.Into)
		}
		tables[st.Into] = true
		if st.MaxRows < 1 {
			return errf(st.Pos, "PRODUCING must declare at least 1 row (got %d)", st.MaxRows)
		}
		if st.Timeout <= 0 {
			return errf(st.Pos, "TIMEOUT must be positive")
		}
		if len(st.Schema) == 0 {
			return errf(st.Pos, "schema must declare at least one column")
		}
		seen := map[string]bool{}
		for _, c := range st.Schema {
			if c.Name == table.ChunkColumn || c.Name == table.RegionColumn || c.Name == table.CameraColumn {
				return errf(st.Pos, "column name %q is reserved", c.Name)
			}
			if seen[c.Name] {
				return errf(st.Pos, "duplicate column %q", c.Name)
			}
			seen[c.Name] = true
		}
	}

	if len(p.Selects) == 0 {
		return nil // a program may define tables for later selects
	}
	for _, st := range p.Selects {
		if err := validateSelect(st, tables); err != nil {
			return err
		}
	}
	return nil
}

func validateSelect(st *SelectStmt, tables map[string]bool) error {
	// Key columns must exactly mirror the GROUP BY list.
	if len(st.KeyCols) > 0 {
		if len(st.KeyCols) != len(st.GroupBy) {
			return errf(st.Pos, "output key columns %v must match GROUP BY %v", st.KeyCols, st.GroupBy)
		}
		for i := range st.KeyCols {
			if st.KeyCols[i] != st.GroupBy[i] {
				return errf(st.Pos, "output key column %q does not match GROUP BY column %q", st.KeyCols[i], st.GroupBy[i])
			}
		}
	}
	if st.Agg.Fun == AggArgmax && len(st.GroupBy) == 0 {
		return errf(st.Agg.Pos, "ARGMAX requires GROUP BY")
	}
	if st.Agg.Star && st.Agg.Fun != AggCount {
		return errf(st.Agg.Pos, "only COUNT may take *")
	}
	if !st.Agg.Star && st.Agg.Arg == nil {
		return errf(st.Agg.Pos, "aggregation requires an argument")
	}
	if st.Consuming < 0 {
		return errf(st.Pos, "CONSUMING must be non-negative")
	}
	if len(st.GroupKeys) > 0 && len(st.GroupBy) == 0 {
		return errf(st.Pos, "WITH KEYS requires GROUP BY")
	}
	if err := validateRel(st.From, tables); err != nil {
		return err
	}
	if st.Agg.Arg != nil {
		if err := validateExpr(st.Agg.Arg); err != nil {
			return err
		}
	}
	return nil
}

func validateRel(r RelExpr, tables map[string]bool) error {
	switch rel := r.(type) {
	case *TableRef:
		if !tables[rel.Name] {
			return errf(rel.Pos, "unknown table %q", rel.Name)
		}
		return nil
	case *SelectExpr:
		if !rel.Star && len(rel.Items) == 0 {
			return errf(rel.Pos, "inner SELECT must project at least one column")
		}
		for _, it := range rel.Items {
			if err := validateExpr(it.Expr); err != nil {
				return err
			}
		}
		if rel.Where != nil {
			if err := validateExpr(rel.Where); err != nil {
				return err
			}
		}
		if rel.Limit < 0 {
			return errf(rel.Pos, "LIMIT must be non-negative")
		}
		return validateRel(rel.From, tables)
	case *GroupExpr:
		if len(rel.Keys) == 0 {
			return errf(rel.Pos, "GROUP BY requires at least one column")
		}
		return validateRel(rel.From, tables)
	case *JoinExpr:
		if len(rel.On) == 0 {
			return errf(rel.Pos, "JOIN requires ON columns")
		}
		if err := validateRel(rel.Left, tables); err != nil {
			return err
		}
		return validateRel(rel.Right, tables)
	case *UnionExpr:
		if err := validateRel(rel.Left, tables); err != nil {
			return err
		}
		return validateRel(rel.Right, tables)
	default:
		return errf(r.Position(), "unknown relational expression")
	}
}

// schemeName renders a BY REGION scheme name for error messages.
func schemeName(s string) string {
	if s == "" {
		return "no region scheme"
	}
	return fmt.Sprintf("scheme %q", s)
}

// builtinArity maps supported builtin scalar functions to their arity.
var builtinArity = map[string]int{
	"range": 3, // range(col, lo, hi): truncate + declare range
	"hour":  1, // hour(chunk): hour-of-day bucket
	"day":   1, // day(chunk): day bucket
	"bin":   2, // bin(chunk, seconds): fixed-width time bucket
}

func validateExpr(e Expr) error {
	switch ex := e.(type) {
	case *ColRef, *NumLit, *StrLit:
		return nil
	case *BinExpr:
		switch ex.Op {
		case "+", "-", "*", "/", "=", "!=", "<", "<=", ">", ">=", "AND", "OR":
		default:
			return errf(ex.Pos, "unknown operator %q", ex.Op)
		}
		if err := validateExpr(ex.L); err != nil {
			return err
		}
		return validateExpr(ex.R)
	case *CallExpr:
		want, ok := builtinArity[ex.Name]
		if !ok {
			return errf(ex.Pos, "unknown function %q", ex.Name)
		}
		if len(ex.Args) != want {
			return errf(ex.Pos, "%s expects %d arguments, got %d", ex.Name, want, len(ex.Args))
		}
		for _, a := range ex.Args {
			if err := validateExpr(a); err != nil {
				return err
			}
		}
		// range's bounds must be numeric literals so the sensitivity
		// analysis can read them statically.
		if ex.Name == "range" {
			for i := 1; i <= 2; i++ {
				if _, ok := ex.Args[i].(*NumLit); !ok {
					return errf(ex.Args[i].Position(), "range bounds must be numeric literals")
				}
			}
		}
		return nil
	default:
		return errf(e.Position(), "unknown expression")
	}
}
