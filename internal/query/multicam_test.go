package query

import (
	"testing"
)

// Multi-camera syntax: parser shapes.

func TestParseMultiCameraSplit(t *testing.T) {
	prog, err := Parse(`
SPLIT camA, camB, camC BEGIN 03-15-2021/6:00am END 03-15-2021/7:00am
  BY TIME 30sec STRIDE 0sec INTO fleet;`)
	if err != nil {
		t.Fatal(err)
	}
	sp := prog.Splits[0]
	want := []string{"camA", "camB", "camC"}
	if len(sp.Cameras) != len(want) {
		t.Fatalf("cameras = %v, want %v", sp.Cameras, want)
	}
	for i, c := range want {
		if sp.Cameras[i] != c {
			t.Errorf("cameras[%d] = %q, want %q", i, sp.Cameras[i], c)
		}
	}
	if sp.Into != "fleet" {
		t.Errorf("into = %q", sp.Into)
	}
}

func TestParseMerge(t *testing.T) {
	prog, err := Parse(`
SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/7:00am
  BY TIME 30sec STRIDE 0sec INTO a;
SPLIT camB BEGIN 03-15-2021/6:00am END 03-15-2021/7:00am
  BY TIME 30sec STRIDE 0sec INTO b;
MERGE a, b INTO ab;
SPLIT camC BEGIN 03-15-2021/6:00am END 03-15-2021/7:00am
  BY TIME 30sec STRIDE 0sec INTO c;
MERGE ab, c INTO fleet;
PROCESS fleet USING exe TIMEOUT 5sec PRODUCING 1 ROWS
  WITH SCHEMA (n:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Merges) != 2 {
		t.Fatalf("merges = %d, want 2", len(prog.Merges))
	}
	m := prog.Merges[1]
	if len(m.Inputs) != 2 || m.Inputs[0] != "ab" || m.Inputs[1] != "c" || m.Into != "fleet" {
		t.Errorf("merge = %+v", m)
	}
}

// Error paths of the multi-camera syntax, with golden messages: these
// strings are analyst-facing API; changing them is a breaking change
// worth noticing in review.

func TestMultiCameraErrors(t *testing.T) {
	const validSplitA = `SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/7:00am BY TIME 30sec STRIDE 0sec INTO a;
`
	const validSplitB = `SPLIT camB BEGIN 03-15-2021/6:00am END 03-15-2021/7:00am BY TIME 30sec STRIDE 0sec INTO b;
`
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "duplicate camera in SPLIT",
			src: `SPLIT camA, camA BEGIN 03-15-2021/6:00am END 03-15-2021/7:00am
  BY TIME 30sec STRIDE 0sec INTO fleet;`,
			want: `query:1:1: duplicate camera "camA" in SPLIT`,
		},
		{
			name: "MERGE of a single chunk set",
			src:  validSplitA + `MERGE a INTO fleet;`,
			want: `query:2:1: MERGE requires at least two chunk sets`,
		},
		{
			name: "MERGE of an unknown chunk set",
			src:  validSplitA + `MERGE a, ghost INTO fleet;`,
			want: `query:2:1: MERGE input "ghost" is not a defined chunk set`,
		},
		{
			name: "MERGE repeats an input",
			src:  validSplitA + `MERGE a, a INTO fleet;`,
			want: `query:2:1: duplicate chunk set "a" in MERGE`,
		},
		{
			name: "MERGE of mismatched region schemes",
			src: validSplitA +
				`SPLIT camB BEGIN 03-15-2021/6:00am END 03-15-2021/7:00am BY TIME 1frame STRIDE 0sec BY REGION lanes INTO b;
MERGE a, b INTO fleet;`,
			want: `query:3:1: MERGE of mismatched region schemes ("a" uses no region scheme, "b" uses scheme "lanes")`,
		},
		{
			name: "MERGE of two different region schemes",
			src: `SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/7:00am BY TIME 1frame STRIDE 0sec BY REGION lanes INTO a;
SPLIT camB BEGIN 03-15-2021/6:00am END 03-15-2021/7:00am BY TIME 1frame STRIDE 0sec BY REGION zones INTO b;
MERGE a, b INTO fleet;`,
			want: `query:3:1: MERGE of mismatched region schemes ("a" uses scheme "lanes", "b" uses scheme "zones")`,
		},
		{
			name: "MERGE output shadows a chunk set",
			src:  validSplitA + validSplitB + `MERGE a, b INTO a;`,
			want: `query:3:1: duplicate chunk set "a"`,
		},
		{
			name: "MERGE without INTO",
			src:  validSplitA + validSplitB + `MERGE a, b;`,
			want: `query:3:11: expected INTO, got ";"`,
		},
		{
			name: "reserved camera column in PROCESS schema",
			src: validSplitA + `PROCESS a USING exe TIMEOUT 5sec PRODUCING 1 ROWS
  WITH SCHEMA (camera:STRING="") INTO t;`,
			want: `query:2:1: column name "camera" is reserved`,
		},
		{
			name: "statement keyword typo",
			src:  `SPLTI camA BEGIN 03-15-2021/6:00am END 03-15-2021/7:00am BY TIME 30sec STRIDE 0sec INTO a;`,
			want: `query:1:1: expected SPLIT, MERGE, PROCESS or SELECT, got "SPLTI"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse accepted %q", tc.src)
			}
			if err.Error() != tc.want {
				t.Errorf("error = %q\n      want %q", err.Error(), tc.want)
			}
		})
	}
}
