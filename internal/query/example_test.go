package query_test

import (
	"fmt"

	"privid/internal/query"
)

// ExampleParse parses a full split–process–aggregate program and walks
// its statements.
func ExampleParse() {
	prog, err := query.Parse(`
-- fleet-wide person count
SPLIT camA, camB BEGIN 03-15-2021/6:00am END 03-15-2021/6:00pm
  BY TIME 30sec STRIDE 0sec INTO fleet;
PROCESS fleet USING count_people TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.5;`)
	if err != nil {
		fmt.Println(err)
		return
	}
	sp := prog.Splits[0]
	fmt.Printf("SPLIT %v -> %s (chunk %gs, stride %gs)\n",
		sp.Cameras, sp.Into, sp.Chunk.Seconds, sp.Stride.Seconds)
	pr := prog.Processes[0]
	fmt.Printf("PROCESS %s USING %s -> %s (max %d rows/chunk)\n",
		pr.Input, pr.Using, pr.Into, pr.MaxRows)
	se := prog.Selects[0]
	fmt.Printf("SELECT %v(...) CONSUMING %g\n", se.Agg.Fun, se.Consuming)
	// Output:
	// SPLIT [camA camB] -> fleet (chunk 30s, stride 0s)
	// PROCESS fleet USING count_people -> t (max 20 rows/chunk)
	// SELECT COUNT(...) CONSUMING 0.5
}

// ExampleParse_merge unions two chunk sets; the merged set's PROCESS
// rows carry the trusted camera provenance column.
func ExampleParse_merge() {
	prog, err := query.Parse(`
SPLIT lobby BEGIN 03-15-2021/8:00am END 03-15-2021/10:00am
  BY TIME 30sec STRIDE 0sec INTO a;
SPLIT garage BEGIN 03-15-2021/6:00pm END 03-15-2021/11:00pm
  BY TIME 1min STRIDE 0sec INTO b;
MERGE a, b INTO doors;
PROCESS doors USING count_entrants TIMEOUT 5sec PRODUCING 5 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t;`)
	if err != nil {
		fmt.Println(err)
		return
	}
	m := prog.Merges[0]
	fmt.Printf("MERGE %v -> %s\n", m.Inputs, m.Into)
	// Output:
	// MERGE [a b] -> doors
}

// ExampleParse_errors shows the positioned errors static validation
// produces.
func ExampleParse_errors() {
	for _, src := range []string{
		`SELECT COUNT(*) FROM ghost;`,
		`SPLIT cam BEGIN 03-15-2021/6:00am END 03-15-2021/5:00am
  BY TIME 30sec STRIDE 0sec INTO c;`,
		`SPLIT cam, cam BEGIN 03-15-2021/6:00am END 03-15-2021/7:00am
  BY TIME 30sec STRIDE 0sec INTO c;`,
	} {
		_, err := query.Parse(src)
		fmt.Println(err)
	}
	// Output:
	// query:1:22: unknown table "ghost"
	// query:1:1: SPLIT END must be after BEGIN
	// query:1:1: duplicate camera "cam" in SPLIT
}
