package query

import (
	"strings"
	"testing"
	"time"

	"privid/internal/table"
)

// listing1 is the example query from the paper (Listing 1), with its
// stray paren typo fixed.
const listing1 = `
/* Select 1 month time window from camera, split video into chunks */
SPLIT camA
    BEGIN 12-01-2020/12:00am END 01-01-2021/12:00am
    BY TIME 5sec STRIDE 0sec
    INTO chunksA;

/* Process chunks using analyst's code, store outputs in tableA */
PROCESS chunksA USING model.py TIMEOUT 1sec
    PRODUCING 10 ROWS
    WITH SCHEMA (plate:STRING="", color:STRING="", speed:NUMBER=0)
    INTO tableA;

/* S1: average speed of all cars */
SELECT AVG(range(speed, 30, 60)) FROM tableA;

/* S2: count total unique cars of each color */
SELECT color, COUNT(plate) FROM
    (SELECT plate, color FROM tableA)
    GROUP BY color WITH KEYS ["RED", "WHITE", "SILVER"];
`

func TestParseListing1(t *testing.T) {
	prog, err := Parse(listing1)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Splits) != 1 || len(prog.Processes) != 1 || len(prog.Selects) != 2 {
		t.Fatalf("statement counts: %d/%d/%d", len(prog.Splits), len(prog.Processes), len(prog.Selects))
	}

	sp := prog.Splits[0]
	if len(sp.Cameras) != 1 || sp.Cameras[0] != "camA" || sp.Into != "chunksA" {
		t.Errorf("split: %+v", sp)
	}
	wantBegin := time.Date(2020, 12, 1, 0, 0, 0, 0, time.UTC)
	if !sp.Begin.Equal(wantBegin) {
		t.Errorf("begin=%v, want %v", sp.Begin, wantBegin)
	}
	wantEnd := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	if !sp.End.Equal(wantEnd) {
		t.Errorf("end=%v, want %v", sp.End, wantEnd)
	}
	if sp.Chunk.Seconds != 5 || sp.Chunk.IsFrames {
		t.Errorf("chunk=%+v", sp.Chunk)
	}
	if sp.Stride.Seconds != 0 {
		t.Errorf("stride=%+v", sp.Stride)
	}

	pr := prog.Processes[0]
	if pr.Input != "chunksA" || pr.Using != "model.py" || pr.Into != "tableA" {
		t.Errorf("process: %+v", pr)
	}
	if pr.Timeout != time.Second || pr.MaxRows != 10 {
		t.Errorf("timeout=%v maxrows=%d", pr.Timeout, pr.MaxRows)
	}
	if len(pr.Schema) != 3 {
		t.Fatalf("schema: %+v", pr.Schema)
	}
	if pr.Schema[0].Name != "plate" || pr.Schema[0].Type != table.DString {
		t.Errorf("schema[0]=%+v", pr.Schema[0])
	}
	if pr.Schema[2].Name != "speed" || pr.Schema[2].Type != table.DNumber || pr.Schema[2].Default.Num() != 0 {
		t.Errorf("schema[2]=%+v", pr.Schema[2])
	}

	s1 := prog.Selects[0]
	if s1.Agg.Fun != AggAvg {
		t.Errorf("S1 agg=%v", s1.Agg.Fun)
	}
	call, ok := s1.Agg.Arg.(*CallExpr)
	if !ok || call.Name != "range" || len(call.Args) != 3 {
		t.Fatalf("S1 arg=%#v", s1.Agg.Arg)
	}
	if lo := call.Args[1].(*NumLit).V; lo != 30 {
		t.Errorf("range lo=%v", lo)
	}

	s2 := prog.Selects[1]
	if s2.Agg.Fun != AggCount {
		t.Errorf("S2 agg=%v", s2.Agg.Fun)
	}
	if len(s2.KeyCols) != 1 || s2.KeyCols[0] != "color" {
		t.Errorf("S2 keycols=%v", s2.KeyCols)
	}
	if len(s2.GroupBy) != 1 || s2.GroupBy[0] != "color" {
		t.Errorf("S2 groupby=%v", s2.GroupBy)
	}
	if len(s2.GroupKeys) != 3 || s2.GroupKeys[0].Str() != "RED" {
		t.Errorf("S2 keys=%v", s2.GroupKeys)
	}
	inner, ok := s2.From.(*SelectExpr)
	if !ok || len(inner.Items) != 2 {
		t.Fatalf("S2 from=%#v", s2.From)
	}
}

func TestLexDurations(t *testing.T) {
	toks, err := Lex("5sec 10min 1frame 2hr 0.5sec 3days")
	if err != nil {
		t.Fatal(err)
	}
	wants := []struct {
		frames  int64
		isFrame bool
		secs    float64
	}{
		{0, false, 5}, {0, false, 600}, {1, true, 0}, {0, false, 7200}, {0, false, 0.5}, {0, false, 259200},
	}
	for i, w := range wants {
		if toks[i].Kind != DURATION {
			t.Fatalf("token %d kind=%v", i, toks[i].Kind)
		}
		frames, isF, secs, err := parseDurationToken(toks[i])
		if err != nil {
			t.Fatalf("token %d: %v", i, err)
		}
		if frames != w.frames || isF != w.isFrame || secs != w.secs {
			t.Errorf("token %d: got (%d,%v,%v), want %+v", i, frames, isF, secs, w)
		}
	}
}

func TestLexBadDurationUnit(t *testing.T) {
	toks, err := Lex("5parsecs")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := parseDurationToken(toks[0]); err == nil {
		t.Error("bad unit accepted")
	}
}

func TestLexTimestamps(t *testing.T) {
	toks, err := Lex("12-01-2020/12:00am 1-2-2021/3:45pm")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TIMESTAMP || toks[1].Kind != TIMESTAMP {
		t.Fatalf("kinds: %v %v", toks[0].Kind, toks[1].Kind)
	}
}

func TestLexStringsAndComments(t *testing.T) {
	toks, err := Lex(`/* c1 */ "hello \"x\"" -- trailing
42`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != STRING || toks[0].Text != `hello "x"` {
		t.Errorf("string token: %+v", toks[0])
	}
	if toks[1].Kind != NUMBER || toks[1].Num != 42 {
		t.Errorf("number token: %+v", toks[1])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "/* unterminated", "@"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

const prologue = `
SPLIT camA BEGIN 01-01-2021/12:00am END 01-02-2021/12:00am
  BY TIME 5sec STRIDE 0sec INTO chunksA;
PROCESS chunksA USING exe TIMEOUT 1sec PRODUCING 5 ROWS
  WITH SCHEMA (n:NUMBER=0, tag:STRING="") INTO tA;
SPLIT camB BEGIN 01-01-2021/12:00am END 01-02-2021/12:00am
  BY TIME 5sec STRIDE 0sec INTO chunksB;
PROCESS chunksB USING exe TIMEOUT 1sec PRODUCING 5 ROWS
  WITH SCHEMA (n:NUMBER=0, tag:STRING="") INTO tB;
`

func mustParse(t *testing.T, selects string) *Program {
	t.Helper()
	prog, err := Parse(prologue + selects)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return prog
}

func TestParseJoin(t *testing.T) {
	prog := mustParse(t, `SELECT COUNT(*) FROM tA JOIN tB ON tag;`)
	j, ok := prog.Selects[0].From.(*JoinExpr)
	if !ok || j.Outer || len(j.On) != 1 || j.On[0] != "tag" {
		t.Fatalf("join: %#v", prog.Selects[0].From)
	}
	prog2 := mustParse(t, `SELECT COUNT(*) FROM tA OUTER JOIN tB ON tag;`)
	j2 := prog2.Selects[0].From.(*JoinExpr)
	if !j2.Outer {
		t.Errorf("outer join not flagged")
	}
}

func TestParseUnion(t *testing.T) {
	prog := mustParse(t, `SELECT COUNT(*) FROM
 (SELECT tag FROM tA) UNION (SELECT tag FROM tB) UNION (SELECT tag FROM tA);`)
	u, ok := prog.Selects[0].From.(*UnionExpr)
	if !ok {
		t.Fatalf("from = %#v", prog.Selects[0].From)
	}
	// Left-associative: ((A UNION B) UNION A).
	if _, ok := u.Left.(*UnionExpr); !ok {
		t.Errorf("union not left-associative: %#v", u.Left)
	}
	if _, ok := u.Right.(*SelectExpr); !ok {
		t.Errorf("union right side: %#v", u.Right)
	}
}

func TestParseWhereLimit(t *testing.T) {
	prog := mustParse(t, `SELECT SUM(range(n, 0, 10)) FROM (SELECT n FROM tA WHERE n > 3 AND tag = "x" LIMIT 100);`)
	se := prog.Selects[0].From.(*SelectExpr)
	if se.Where == nil || se.Limit != 100 {
		t.Fatalf("where/limit: %#v", se)
	}
	w := se.Where.(*BinExpr)
	if w.Op != "AND" {
		t.Errorf("where op=%v", w.Op)
	}
}

func TestParseInnerGroupDedup(t *testing.T) {
	prog := mustParse(t, `SELECT COUNT(*) FROM (SELECT tag FROM tA GROUP BY tag);`)
	g, ok := prog.Selects[0].From.(*GroupExpr)
	if !ok || len(g.Keys) != 1 || g.Keys[0] != "tag" {
		t.Fatalf("group: %#v", prog.Selects[0].From)
	}
	if _, ok := g.From.(*SelectExpr); !ok {
		t.Errorf("group input: %#v", g.From)
	}
}

func TestParseConsuming(t *testing.T) {
	prog := mustParse(t, `SELECT COUNT(*) FROM tA CONSUMING 0.5;`)
	if prog.Selects[0].Consuming != 0.5 {
		t.Errorf("consuming=%v", prog.Selects[0].Consuming)
	}
}

func TestParseByRegionWithMask(t *testing.T) {
	src := `
SPLIT camA BEGIN 01-01-2021/12:00am END 01-02-2021/12:00am
  BY TIME 1frame STRIDE 0sec BY REGION directions WITH MASK m1 INTO c;
PROCESS c USING exe TIMEOUT 1sec PRODUCING 1 ROWS WITH SCHEMA (n:NUMBER=0) INTO t;
SELECT SUM(range(n,0,1)) FROM t;`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sp := prog.Splits[0]
	if sp.Region != "directions" || sp.Mask != "m1" {
		t.Errorf("split opts: %+v", sp)
	}
	if !sp.Chunk.IsFrames || sp.Chunk.Frames != 1 {
		t.Errorf("frame chunk: %+v", sp.Chunk)
	}
}

func TestParseNegativeStride(t *testing.T) {
	src := `
SPLIT camA BEGIN 01-01-2021/12:00am END 01-02-2021/12:00am
  BY TIME 5sec STRIDE -2sec INTO c;
PROCESS c USING exe TIMEOUT 1sec PRODUCING 1 ROWS WITH SCHEMA (n:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t;`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Splits[0].Stride.Seconds != -2 {
		t.Errorf("stride=%+v", prog.Splits[0].Stride)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown table", prologue + `SELECT COUNT(*) FROM nosuch;`, "unknown table"},
		{"keycol mismatch", prologue + `SELECT tag, COUNT(*) FROM tA GROUP BY n WITH KEYS [1];`, "does not match"},
		{"argmax needs group", prologue + `SELECT ARGMAX(n) FROM tA;`, "ARGMAX requires GROUP BY"},
		{"star only count", prologue + `SELECT SUM(*) FROM tA;`, "only COUNT"},
		{"bad range bounds", prologue + `SELECT SUM(range(n, n, 10)) FROM tA;`, "numeric literals"},
		{"unknown func", prologue + `SELECT SUM(sqrt(n)) FROM tA;`, "unknown function"},
		{"negative consuming", prologue + `SELECT COUNT(*) FROM tA CONSUMING -1;`, "non-negative"},
		{"keys without group", prologue + `SELECT COUNT(*) FROM tA WITH KEYS [1];`, ""},
		{"begin after end", `SPLIT c BEGIN 01-02-2021/12:00am END 01-01-2021/12:00am BY TIME 5sec STRIDE 0sec INTO x;`, "END must be after"},
		{"zero chunk", `SPLIT c BEGIN 01-01-2021/12:00am END 01-02-2021/12:00am BY TIME 0sec STRIDE 0sec INTO x;`, "positive"},
		{"reserved column", `SPLIT c BEGIN 01-01-2021/12:00am END 01-02-2021/12:00am BY TIME 5sec STRIDE 0sec INTO x;
PROCESS x USING e TIMEOUT 1sec PRODUCING 1 ROWS WITH SCHEMA (chunk:NUMBER=0) INTO t;`, "reserved"},
		{"zero rows", `SPLIT c BEGIN 01-01-2021/12:00am END 01-02-2021/12:00am BY TIME 5sec STRIDE 0sec INTO x;
PROCESS x USING e TIMEOUT 1sec PRODUCING 0 ROWS WITH SCHEMA (n:NUMBER=0) INTO t;`, "at least 1 row"},
		{"process unknown chunks", `PROCESS nope USING e TIMEOUT 1sec PRODUCING 1 ROWS WITH SCHEMA (n:NUMBER=0) INTO t;`, "not a SPLIT output"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("expected error")
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestParseSyntaxErrors(t *testing.T) {
	bad := []string{
		`SPLIT;`,
		`SELECT FROM tA;`,
		`SPLIT camA BEGIN notadate END 01-01-2021/12:00am BY TIME 5sec STRIDE 0sec INTO c;`,
		`FOO bar;`,
		prologue + `SELECT COUNT( FROM tA;`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	prog := mustParse(t, `SELECT SUM(range(n, 0, 100)) FROM (SELECT n + 2 * 3 AS n FROM tA);`)
	se := prog.Selects[0].From.(*SelectExpr)
	add, ok := se.Items[0].Expr.(*BinExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("top op: %#v", se.Items[0].Expr)
	}
	mul, ok := add.R.(*BinExpr)
	if !ok || mul.Op != "*" {
		t.Errorf("precedence wrong: %#v", add.R)
	}
	if se.Items[0].Alias != "n" {
		t.Errorf("alias=%q", se.Items[0].Alias)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	src := strings.ToLower(prologue) + `select count(*) from ta;`
	// Note: identifiers are case-sensitive, so lowercase the whole
	// program (tables become "ta" etc).
	if _, err := Parse(src); err != nil {
		t.Fatalf("lowercase program rejected: %v", err)
	}
}
