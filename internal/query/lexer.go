package query

import (
	"strconv"
	"strings"
	"unicode"
)

// Lex tokenizes a query program. Comments (/* ... */ and -- to end of
// line) are skipped.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var out []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == EOF {
			return out, nil
		}
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func (l *lexer) at() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.peek2() == '-':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.at()
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(start, "unterminated comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '.' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.at()
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isDigit(c):
		return l.lexNumberish(pos)
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		return Token{Kind: IDENT, Text: l.src[start:l.pos], Pos: pos}, nil
	case c == '"':
		return l.lexString(pos)
	default:
		// Multi-character operators first.
		for _, op := range []string{"<=", ">=", "!=", "=="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.advance()
				l.advance()
				return Token{Kind: PUNCT, Text: op, Pos: pos}, nil
			}
		}
		switch c {
		case '(', ')', '[', ']', ',', ';', ':', '=', '*', '+', '/', '<', '>', '-':
			l.advance()
			return Token{Kind: PUNCT, Text: string(c), Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected character %q", string(c))
	}
}

func (l *lexer) lexString(pos Pos) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.advance()
		switch c {
		case '"':
			return Token{Kind: STRING, Text: b.String(), Pos: pos}, nil
		case '\\':
			if l.pos >= len(l.src) {
				return Token{}, errf(pos, "unterminated string")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(e)
			}
		case '\n':
			return Token{}, errf(pos, "newline in string literal")
		default:
			b.WriteByte(c)
		}
	}
	return Token{}, errf(pos, "unterminated string")
}

// lexNumberish scans a number and then decides whether it is a plain
// number, a duration (unit suffix, e.g. 5sec), or a timestamp
// (12-01-2020/12:00am).
func (l *lexer) lexNumberish(pos Pos) (Token, error) {
	// Timestamp lookahead: DD-MM-YYYY/h:mm(am|pm).
	if ts, n := matchTimestamp(l.src[l.pos:]); n > 0 {
		for i := 0; i < n; i++ {
			l.advance()
		}
		return Token{Kind: TIMESTAMP, Text: ts, Pos: pos}, nil
	}
	start := l.pos
	for l.pos < len(l.src) && (isDigit(l.peek()) || l.peek() == '.') {
		l.advance()
	}
	numText := l.src[start:l.pos]
	num, err := strconv.ParseFloat(numText, 64)
	if err != nil {
		return Token{}, errf(pos, "bad number %q: %v", numText, err)
	}
	// Unit suffix directly attached -> duration token.
	if l.pos < len(l.src) && isIdentStart(l.peek()) {
		us := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		unit := l.src[us:l.pos]
		return Token{Kind: DURATION, Text: numText + unit, Num: num, Pos: pos}, nil
	}
	return Token{Kind: NUMBER, Text: numText, Num: num, Pos: pos}, nil
}

// matchTimestamp reports whether s begins with a timestamp literal of
// the form MM-DD-YYYY/H:MM(am|pm) and returns its text and length.
func matchTimestamp(s string) (string, int) {
	// Minimal length: 1-1-2006/1:00am would be unusual; the canonical
	// form is zero-padded, but accept 1- or 2-digit date components.
	i := 0
	scanDigits := func(lo, hi int) bool {
		n := 0
		for i < len(s) && isDigit(s[i]) && n < hi {
			i++
			n++
		}
		return n >= lo
	}
	expect := func(c byte) bool {
		if i < len(s) && s[i] == c {
			i++
			return true
		}
		return false
	}
	if !scanDigits(1, 2) || !expect('-') {
		return "", 0
	}
	if !scanDigits(1, 2) || !expect('-') {
		return "", 0
	}
	if !scanDigits(4, 4) || !expect('/') {
		return "", 0
	}
	if !scanDigits(1, 2) || !expect(':') {
		return "", 0
	}
	if !scanDigits(2, 2) {
		return "", 0
	}
	if i+2 > len(s) {
		return "", 0
	}
	suffix := strings.ToLower(s[i : i+2])
	if suffix != "am" && suffix != "pm" {
		return "", 0
	}
	i += 2
	return s[:i], i
}

// parseDurationToken converts a DURATION token into either a frame
// count or a wall-clock duration.
func parseDurationToken(t Token) (frames int64, isFrames bool, seconds float64, err error) {
	text := t.Text
	j := 0
	for j < len(text) && (isDigit(text[j]) || text[j] == '.') {
		j++
	}
	unit := strings.ToLower(text[j:])
	switch unit {
	case "frame", "frames", "f":
		return int64(t.Num), true, 0, nil
	case "sec", "secs", "second", "seconds", "s":
		return 0, false, t.Num, nil
	case "min", "mins", "minute", "minutes", "m":
		return 0, false, t.Num * 60, nil
	case "hr", "hrs", "hour", "hours", "h":
		return 0, false, t.Num * 3600, nil
	case "day", "days", "d":
		return 0, false, t.Num * 86400, nil
	default:
		return 0, false, 0, errf(t.Pos, "unknown duration unit %q", unit)
	}
}
