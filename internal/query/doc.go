// Package query implements Privid's query language (Fig. 9, Appendix
// D): a lexer, recursive-descent parser, AST, and static validation
// for programs made of SPLIT, MERGE, PROCESS and SELECT statements.
//
// # Language reference
//
// The grammar follows the paper's Fig. 9 and Appendix D, extended with
// UNION (the paper expresses unions as outer joins; an explicit
// combinator makes multi-camera tagging queries readable) and with
// cross-camera chunk sets: SPLIT accepts a camera list and MERGE
// unions previously defined chunk sets. docs/QUERY_LANGUAGE.md is the
// full reference manual with worked examples; the grammar here is the
// authoritative summary and matches what parser.go accepts.
//
//	program       := (split_stmt | merge_stmt | process_stmt | select_stmt) ";" ...
//
//	split_stmt    := SPLIT camera_id ["," camera_id]...
//	                   BEGIN timestamp END timestamp
//	                   BY TIME duration STRIDE [-]duration
//	                   [BY REGION scheme_id]
//	                   [WITH MASK mask_id]
//	                   INTO chunk_set_id
//
//	merge_stmt    := MERGE chunk_set_id "," chunk_set_id ["," chunk_set_id]...
//	                   INTO chunk_set_id
//
//	process_stmt  := PROCESS chunk_set_id USING executable
//	                   TIMEOUT duration
//	                   PRODUCING n [ROWS]
//	                   WITH SCHEMA "(" col ":" (STRING|NUMBER) ["=" default] , ... ")"
//	                   INTO table_id
//
//	select_stmt   := SELECT [key_col ","]... agg "(" (expr | "*") ")"
//	                   FROM rel
//	                   [GROUP BY col [WITH KEYS "[" literal, ... "]"]]
//	                   [CONSUMING epsilon]
//
//	rel           := table_id
//	               | "(" inner ")"
//	               | rel JOIN rel ON col, ...        -- equijoin (intersection)
//	               | rel OUTER JOIN rel ON col, ...  -- full outer join (union on keys)
//	               | rel UNION rel                   -- concatenation (UNION ALL)
//
//	inner         := SELECT expr [AS name], ... FROM rel
//	                   [WHERE expr] [LIMIT n]
//	                   [GROUP BY col, ... [WITH KEYS [...]]]   -- dedup operator
//
//	agg           := COUNT | SUM | AVG | VAR | ARGMAX
//
//	expr          := col | number | "string"
//	               | "-" expr                -- unary minus
//	               | expr (+|-|*|/) expr
//	               | expr (=|==|!=|<|<=|>|>=) expr   -- == is accepted as =
//	               | expr (AND|OR) expr
//	               | range(col, lo, hi)      -- truncate + declare range
//	               | hour(chunk)             -- hour of day, 0-23
//	               | day(chunk)              -- day bucket
//	               | bin(chunk, seconds)     -- fixed-width time bucket
//
//	duration      := <number><unit>   unit ∈ f|frame(s), s(ec), m(in), h(r), d(ay)
//	               | <number>         -- a bare number is wall-clock seconds
//	timestamp     := MM-DD-YYYY/H:MM(am|pm)   -- 1- or 2-digit month/day/hour
//
// Notes on accepted spellings: keywords are case-insensitive; the
// paper's "PRODUING" typo is accepted as PRODUCING; ROWS after the
// PRODUCING count is an optional noise word; comments are -- to end of
// line and /* ... */.
//
// The outer SELECT's GROUP BY parses a comma-separated column list,
// but execution currently supports exactly one outer grouping column
// (multi-column grouping is rejected when the SELECT runs). The inner
// dedup GROUP BY accepts any number of columns.
//
// Privacy-relevant restrictions (enforced at parse or execution time):
//
//   - The outer SELECT must be a single aggregation (plus echoed group
//     keys). Each aggregation (or each GROUP BY key) is a separate
//     data release with its own noise and budget.
//   - SUM/AVG/VAR need a range constraint on their argument: wrap the
//     column in range(col, lo, hi) or derive it arithmetically from
//     ranged columns. Division destroys range constraints.
//   - AVG/VAR additionally need a bounded relation size: LIMIT,
//     GROUP BY ... WITH KEYS, or the table's own chunk-count bound.
//   - GROUP BY over an analyst-defined column requires WITH KEYS —
//     otherwise the mere presence of a rare key leaks (§6.2). The
//     implicit chunk column (and hour/day/bin of it) is created by
//     Privid, so its buckets are enumerable and trusted: every bucket
//     in the window is released, including empty ones. The implicit
//     camera column of a multi-camera chunk set is likewise trusted,
//     but its keys must still be listed with WITH KEYS (they are the
//     camera names, which the analyst already knows).
//   - JOIN inputs must be GROUP BY'd on the join keys, and the join's
//     sensitivity is the SUM of the inputs' (the untrusted-table
//     "priming" argument of §6.3).
//   - ARGMAX requires GROUP BY with enumerable keys and releases only
//     the winning key, via noisy-max.
//   - Column names chunk, region and camera are reserved for the
//     implicit trusted columns; a PROCESS schema may not redeclare
//     them.
//   - A SPLIT camera list may not repeat a camera; MERGE inputs must
//     be distinct, already-defined chunk sets with identical BY REGION
//     schemes (merging a region-split set with an unsplit one, or two
//     different schemes, is rejected).
//
// Multi-camera composition (SPLIT with a camera list, or MERGE): the
// resulting chunk set is the union of the per-camera chunk sets.
// Sensitivity composes per camera exactly like UNION in Fig. 10 — ΔP
// of the union is the sum of the per-camera ΔP — except that
// aggregations grouped by the trusted camera column release one value
// per camera and each release's sensitivity is only that camera's ΔP,
// and each camera's privacy ledger is charged only over its own
// queried window. Budget admission across the touched cameras is
// atomic: if any one camera's ledger denies, no camera is charged.
package query
