// Package query implements Privid's query language (Fig. 9, Appendix
// D): a lexer, recursive-descent parser, AST, and static validation
// for programs made of SPLIT, PROCESS and SELECT statements.
//
// # Language reference
//
// The grammar follows the paper's Fig. 9 and Appendix D, extended with
// UNION (the paper expresses unions as outer joins; an explicit
// combinator makes multi-camera tagging queries readable).
//
//	program       := (split_stmt | process_stmt | select_stmt) ";" ...
//
//	split_stmt    := SPLIT camera_id
//	                   BEGIN timestamp END timestamp
//	                   BY TIME duration STRIDE [-]duration
//	                   [BY REGION scheme_id]
//	                   [WITH MASK mask_id]
//	                   INTO chunk_set_id
//
//	process_stmt  := PROCESS chunk_set_id USING executable
//	                   TIMEOUT duration
//	                   PRODUCING n [ROWS]
//	                   WITH SCHEMA "(" col ":" (STRING|NUMBER) ["=" default] , ... ")"
//	                   INTO table_id
//
//	select_stmt   := SELECT [key_col ","]... agg "(" (expr | "*") ")"
//	                   FROM rel
//	                   [GROUP BY col [WITH KEYS "[" literal, ... "]"]]
//	                   [CONSUMING epsilon]
//
//	rel           := table_id
//	               | "(" inner ")"
//	               | rel JOIN rel ON col, ...        -- equijoin (intersection)
//	               | rel OUTER JOIN rel ON col, ...  -- full outer join (union on keys)
//	               | rel UNION rel                   -- concatenation (UNION ALL)
//
//	inner         := SELECT expr [AS name], ... FROM rel
//	                   [WHERE expr] [LIMIT n]
//	                   [GROUP BY col, ... [WITH KEYS [...]]]   -- dedup operator
//
//	agg           := COUNT | SUM | AVG | VAR | ARGMAX
//
//	expr          := col | number | "string"
//	               | expr (+|-|*|/) expr
//	               | expr (=|!=|<|<=|>|>=) expr
//	               | expr (AND|OR) expr
//	               | range(col, lo, hi)      -- truncate + declare range
//	               | hour(chunk)             -- hour of day, 0-23
//	               | day(chunk)              -- day bucket
//	               | bin(chunk, seconds)     -- fixed-width time bucket
//
//	duration      := <number><unit>   unit ∈ frame(s), s(ec), m(in), h(r), d(ay)
//	timestamp     := MM-DD-YYYY/H:MM(am|pm)
//
// Privacy-relevant restrictions (enforced at parse or execution time):
//
//   - The outer SELECT must be a single aggregation (plus echoed group
//     keys). Each aggregation (or each GROUP BY key) is a separate
//     data release with its own noise and budget.
//   - SUM/AVG/VAR need a range constraint on their argument: wrap the
//     column in range(col, lo, hi) or derive it arithmetically from
//     ranged columns. Division destroys range constraints.
//   - AVG/VAR additionally need a bounded relation size: LIMIT,
//     GROUP BY ... WITH KEYS, or the table's own chunk-count bound.
//   - GROUP BY over an analyst-defined column requires WITH KEYS —
//     otherwise the mere presence of a rare key leaks (§6.2). The
//     implicit chunk column (and hour/day/bin of it) is created by
//     Privid, so its buckets are enumerable and trusted: every bucket
//     in the window is released, including empty ones.
//   - JOIN inputs must be GROUP BY'd on the join keys, and the join's
//     sensitivity is the SUM of the inputs' (the untrusted-table
//     "priming" argument of §6.3).
//   - ARGMAX requires GROUP BY with enumerable keys and releases only
//     the winning key, via noisy-max.
package query
