package dp

import (
	"errors"
	"math"
	"testing"

	"privid/internal/vtime"
)

func charge(start, end int64, eps float64) []Charge {
	return []Charge{{Interval: vtime.NewInterval(start, end), Eps: eps}}
}

// ReserveAll must be all-or-nothing: a denial on the last ledger
// releases every reservation already held, restoring each ledger
// exactly.
func TestReserveAllAtomicDenial(t *testing.T) {
	a := NewLedger("camA", 1.0)
	b := NewLedger("camB", 1.0)
	c := NewLedger("camC", 0.1)

	_, err := ReserveAll([]Demand{
		{Ledger: a, Charges: charge(0, 100, 0.5)},
		{Ledger: b, Charges: charge(0, 100, 0.5)},
		{Ledger: c, Charges: charge(0, 100, 0.5)},
	})
	var exhausted *ErrBudgetExhausted
	if !errors.As(err, &exhausted) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if exhausted.Camera != "camC" {
		t.Errorf("denying camera = %q, want camC", exhausted.Camera)
	}
	for _, l := range []*Ledger{a, b, c} {
		if got := l.Remaining(50); got != l.Epsilon() {
			t.Errorf("%v remaining = %v, want full %v (nothing held)", l.camera, got, l.Epsilon())
		}
	}
	// The failed attempt must not block a later admissible one.
	m, err := ReserveAll([]Demand{
		{Ledger: a, Charges: charge(0, 100, 0.5)},
		{Ledger: b, Charges: charge(0, 100, 0.5)},
	})
	if err != nil {
		t.Fatalf("second reserve: %v", err)
	}
	m.Finalize()
	if got := a.Remaining(50); got != 0.5 {
		t.Errorf("camA remaining after finalize = %v, want 0.5", got)
	}
}

// Reservations held by a MultiReserve must block competing admissions
// until released, and Release must restore bit-for-bit.
func TestReserveAllHoldAndRelease(t *testing.T) {
	a := NewLedger("camA", 1.0)
	m, err := ReserveAll([]Demand{{Ledger: a, Charges: charge(0, 100, 0.8)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReserveAll([]Demand{{Ledger: a, Charges: charge(0, 100, 0.8)}}); err == nil {
		t.Fatal("competing reserve admitted past a held reservation")
	}
	m.Release()
	if got := a.Remaining(50); got != 1.0 {
		t.Errorf("remaining after release = %v, want exactly 1.0", got)
	}
	m.Release() // idempotent
	if _, err := ReserveAll([]Demand{{Ledger: a, Charges: charge(0, 100, 0.8)}}); err != nil {
		t.Fatalf("reserve after release: %v", err)
	}
}

// RemainingOver reports the minimum headroom over an interval,
// counting spent budget and outstanding reservations.
func TestRemainingOver(t *testing.T) {
	l := NewLedger("camA", 1.0)
	l.Spend(charge(0, 100, 0.3))
	l.Spend(charge(50, 150, 0.2)) // frames [50,100): 0.5 spent

	if got := l.RemainingOver(vtime.NewInterval(0, 100)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("RemainingOver([0,100)) = %v, want 0.5", got)
	}
	if got := l.RemainingOver(vtime.NewInterval(100, 200)); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("RemainingOver([100,200)) = %v, want 0.8", got)
	}
	if got := l.RemainingOver(vtime.NewInterval(200, 300)); got != 1.0 {
		t.Errorf("RemainingOver(untouched) = %v, want 1.0", got)
	}
	// A held reservation counts as spent.
	id, err := l.Reserve(charge(200, 300, 0.4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.RemainingOver(vtime.NewInterval(200, 300)); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("RemainingOver with reservation = %v, want 0.6", got)
	}
	l.Release(id)
	if got := l.RemainingOver(vtime.NewInterval(200, 300)); got != 1.0 {
		t.Errorf("RemainingOver after release = %v, want 1.0", got)
	}
	// Empty interval reports full headroom.
	if got := l.RemainingOver(vtime.NewInterval(10, 10)); got != 1.0 {
		t.Errorf("RemainingOver(empty) = %v, want 1.0", got)
	}
}

// MinRemaining reports the worst-case headroom over everything the
// ledger has ever charged or reserved — the operator dashboard number.
func TestMinRemaining(t *testing.T) {
	l := NewLedger("camA", 1.0)
	if got := l.MinRemaining(); got != 1.0 {
		t.Errorf("fresh ledger MinRemaining = %v, want 1.0", got)
	}
	l.Spend(charge(0, 100, 0.3))
	l.Spend(charge(50, 150, 0.2)) // worst frames: [50,100) at 0.5 spent
	if got := l.MinRemaining(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MinRemaining = %v, want 0.5", got)
	}
	// A reservation beyond the spent bounds extends the watched window
	// and counts as spent.
	id, err := l.Reserve(charge(500, 600, 0.7), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.MinRemaining(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("MinRemaining with reservation = %v, want 0.3", got)
	}
	l.Release(id)
	if got := l.MinRemaining(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MinRemaining after release = %v, want 0.5", got)
	}
}
