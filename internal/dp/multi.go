package dp

import (
	"math"

	"privid/internal/intervalmap"
	"privid/internal/vtime"
)

// Demand is one camera's share of a cross-camera admission: the
// charges a query places on that camera's ledger, with the camera's
// own ρ margin (frame rates differ per camera, so ρ in frames does
// too).
type Demand struct {
	Ledger    *Ledger
	Charges   []Charge
	RhoFrames int64
}

// MultiReserve holds one reservation per ledger of a cross-camera
// admission. It is the two-phase-commit handle for Algorithm 1
// generalized to N cameras: ReserveAll admits on every ledger or none,
// the caller persists the charges durably, then Finalize moves every
// reservation into its spent ledger (or Release drops them all,
// restoring each ledger bit-for-bit).
//
// Like Ledger itself, MultiReserve is not safe for concurrent use; the
// engine serializes admission.
type MultiReserve struct {
	held []heldReservation
}

type heldReservation struct {
	ledger *Ledger
	id     int64
}

// ReserveAll performs all-or-nothing admission across every demand's
// ledger: each ledger is admission-checked (against spent budget plus
// outstanding reservations) and holds its charges as a reservation. If
// any ledger denies, every reservation already held is released —
// leaving all ledgers exactly as found — and the denial error
// (typically *ErrBudgetExhausted naming the denying camera and frame)
// is returned with a nil handle. One camera denying therefore charges
// no camera anything.
func ReserveAll(demands []Demand) (*MultiReserve, error) {
	m := &MultiReserve{held: make([]heldReservation, 0, len(demands))}
	for _, d := range demands {
		id, err := d.Ledger.Reserve(d.Charges, d.RhoFrames)
		if err != nil {
			m.Release()
			return nil, err
		}
		m.held = append(m.held, heldReservation{ledger: d.Ledger, id: id})
	}
	return m, nil
}

// Finalize moves every held reservation into its spent ledger. Call
// only after the charges are durably persisted. Safe to call once.
func (m *MultiReserve) Finalize() {
	for _, h := range m.held {
		h.ledger.Finalize(h.id)
	}
	m.held = nil
}

// Release drops every held reservation without spending, restoring
// each ledger exactly (no floating-point residue). Safe to call on a
// partially built or already finalized handle.
func (m *MultiReserve) Release() {
	for _, h := range m.held {
		h.ledger.Release(h.id)
	}
	m.held = nil
}

// MinRemaining returns the worst-case unspent budget over every frame
// the ledger has ever charged or reserved — the single number an
// operator dashboard should watch per camera. A ledger with no charges
// reports the full per-frame budget.
func (l *Ledger) MinRemaining() float64 {
	has := l.spent.Breakpoints() > 0
	lo, hi := l.spent.Bounds()
	for _, res := range l.reserved {
		for _, c := range res.charges {
			if c.Interval.Empty() {
				continue
			}
			if !has || c.Interval.Start < lo {
				lo = c.Interval.Start
			}
			if !has || c.Interval.End > hi {
				hi = c.Interval.End
			}
			has = true
		}
	}
	if !has {
		return l.epsilon
	}
	// hi+1 so the last breakpoint frame itself is covered; the extra
	// frame beyond any charge carries zero spend and cannot lower the
	// maximum.
	return l.RemainingOver(vtime.NewInterval(lo, hi+1))
}

// RemainingOver returns the minimum unspent budget across every frame
// of an interval, counting outstanding reservations as spent — the
// number a per-camera budget report should show for a query's charged
// window.
func (l *Ledger) RemainingOver(iv vtime.Interval) float64 {
	if iv.Empty() {
		return l.epsilon
	}
	worst := l.spent.Max(iv.Start, iv.End)
	// Reservations overlay the spent map; fold them in per segment so
	// the result is the maximum of the sum, not the sum of maxima.
	if len(l.reserved) > 0 {
		pend := &intervalmap.Map{}
		for _, res := range l.reserved {
			for _, c := range res.charges {
				pend.AddRange(c.Interval.Start, c.Interval.End, c.Eps)
			}
		}
		worst = math.Inf(-1)
		pend.Segments(iv.Start, iv.End, func(s, e int64, pv float64) {
			if v := l.spent.Max(s, e) + pv; v > worst {
				worst = v
			}
		})
	}
	return l.epsilon - worst
}
