package dp

import "math"

// The paper's footnote 5: "All of our concepts and results could be
// trivially extended to (ε, δ)-DP without any additional insights."
// This file provides that extension: the analytic Gaussian mechanism
// calibration, so a deployment preferring (ε, δ)-DP (e.g. for tighter
// composition across very many releases) can swap the noise
// distribution without touching the sensitivity machinery — Δ(Q) from
// the Fig. 10 calculus is exactly the L1/L∞ sensitivity both
// mechanisms consume for scalar releases.

// Gaussian returns one sample from N(0, sigma²).
func (n *Noise) Gaussian(sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	return n.rng.NormFloat64() * sigma
}

// GaussianSigma returns the classic Gaussian-mechanism calibration
// σ = Δ·sqrt(2·ln(1.25/δ))/ε for a release of the given sensitivity
// under (ε, δ)-DP. It requires ε ∈ (0, 1) and δ ∈ (0, 1) — the regime
// the classic bound covers.
func GaussianSigma(sensitivity, epsilon, delta float64) float64 {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	if sensitivity <= 0 {
		return 0
	}
	return sensitivity * math.Sqrt(2*math.Log(1.25/delta)) / epsilon
}

// AdvancedComposition returns the (ε', δ') guarantee for k-fold
// adaptive composition of an (ε, δ)-DP mechanism, per the advanced
// composition theorem with slack δ″:
//
//	ε' = ε·sqrt(2k·ln(1/δ″)) + k·ε·(e^ε − 1),  δ' = k·δ + δ″.
//
// The per-frame budget ledger uses plain sequential composition (as
// the paper does); this helper quantifies how much tighter a deployment
// could account standing queries that release thousands of values.
func AdvancedComposition(eps, delta float64, k int, slack float64) (epsPrime, deltaPrime float64) {
	if k <= 0 {
		return 0, 0
	}
	kf := float64(k)
	epsPrime = eps*math.Sqrt(2*kf*math.Log(1/slack)) + kf*eps*(math.Exp(eps)-1)
	deltaPrime = kf*delta + slack
	return epsPrime, deltaPrime
}
