// Package dp implements Privid's differential-privacy core: the
// Laplace mechanism used to noise every data release, the per-frame
// privacy-budget ledger of Algorithm 1 (§6.4), and the
// privacy-degradation analysis of Appendix C.
package dp

import (
	"fmt"
	"math"
	"math/rand"

	"privid/internal/intervalmap"
	"privid/internal/vtime"
)

// Noise samples Laplace noise. It is deterministic given its seed so
// experiments are reproducible; a deployment would swap in a
// cryptographically secure source (Appendix B's PRNG requirement).
type Noise struct {
	rng *rand.Rand
}

// NewNoise returns a sampler seeded deterministically.
func NewNoise(seed int64) *Noise {
	return &Noise{rng: rand.New(rand.NewSource(seed))}
}

// Laplace returns one sample from Laplace(0, scale) via inverse-CDF
// sampling. scale <= 0 returns 0 (a zero-sensitivity release needs no
// noise).
func (n *Noise) Laplace(scale float64) float64 {
	if scale <= 0 {
		return 0
	}
	u := n.rng.Float64() - 0.5
	if u == 0 {
		return 0
	}
	return -scale * sign(u) * math.Log(1-2*math.Abs(u))
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// LaplaceScale returns the noise scale b = Δ/ε for a release of the
// given sensitivity and budget.
func LaplaceScale(sensitivity, epsilon float64) float64 {
	if epsilon <= 0 {
		return math.Inf(1)
	}
	return sensitivity / epsilon
}

// ErrBudgetExhausted is returned when a query asks for more budget
// than some frame in its (ρ-expanded) interval has left. The query is
// denied without consuming anything.
type ErrBudgetExhausted struct {
	Camera    string
	Frame     int64
	Remaining float64
	Requested float64
}

// Error implements the error interface.
func (e *ErrBudgetExhausted) Error() string {
	return fmt.Sprintf("dp: budget exhausted on camera %s at frame %d (remaining %.4g, requested %.4g)",
		e.Camera, e.Frame, e.Remaining, e.Requested)
}

// CommitHook durably persists admitted charges before they are spent.
// Admit invokes it between the admission check and the spend: an error
// aborts the admission, so nothing is spent and no result backed by
// these charges may be released to the analyst. This is the
// charge-before-release ordering that makes the privacy guarantee
// survive process crashes (a persisted charge without a released
// result only wastes budget; a released result without a persisted
// charge would refund it on restart).
type CommitHook func(camera string, charges []Charge) error

// Ledger tracks the privacy budget spent on every frame of one camera.
// Privid assigns a separate budget of ε to each frame (§6.4); the
// ledger stores the spent amount as a piecewise-constant function so
// memory scales with the number of queries, not frames.
//
// Ledgers are not safe for concurrent use; the engine serializes
// access. For callers that must persist charges outside their lock
// (group commit), the Reserve/Finalize/Release triple splits admission
// from the durable commit.
type Ledger struct {
	camera  string
	epsilon float64 // per-frame budget εC
	spent   intervalmap.Map
	hook    CommitHook

	// reserved holds admitted-but-not-yet-committed charges. They
	// count against admission and Remaining exactly like spent budget,
	// but live as charge lists so releasing a reservation restores the
	// ledger bit-for-bit (no floating-point cancellation residue).
	reserved []reservation
	resSeq   int64
}

type reservation struct {
	id      int64
	charges []Charge
}

// NewLedger returns a fresh ledger with per-frame budget eps.
func NewLedger(camera string, eps float64) *Ledger {
	return &Ledger{camera: camera, epsilon: eps}
}

// Epsilon returns the per-frame budget εC.
func (l *Ledger) Epsilon() float64 { return l.epsilon }

// SetCommitHook installs the durable-persistence hook Admit invokes
// between the admission check and the spend.
func (l *Ledger) SetCommitHook(h CommitHook) { l.hook = h }

// Remaining returns the unspent budget at one frame, counting
// outstanding reservations as spent.
func (l *Ledger) Remaining(frame int64) float64 {
	r := l.epsilon - l.spent.Get(frame)
	for _, res := range l.reserved {
		for _, c := range res.charges {
			if c.Interval.Contains(frame) {
				r -= c.Eps
			}
		}
	}
	return r
}

// Charge is one release's demand on the ledger: eps over the frame
// interval the release depends on.
type Charge struct {
	Interval vtime.Interval
	Eps      float64
}

// Admit implements Algorithm 1 lines 1–5 for a set of charges
// atomically: every charge must find at least its ε remaining on every
// frame of its interval expanded by ρ on both sides; only then is each
// charge's ε subtracted from its unexpanded interval. The ρ margin
// ensures a single event segment (duration ≤ ρ) cannot straddle two
// temporally disjoint queries and be paid for twice (Appendix E.2).
//
// Overlapping charges within one call are summed for the admission
// check, so a query cannot evade the limit by splitting its demand.
//
// When a commit hook is installed, the charges are durably persisted
// (hook) after the check and before the spend; a hook error aborts the
// admission with nothing spent, and the caller must not release any
// result backed by these charges.
func (l *Ledger) Admit(charges []Charge, rhoFrames int64) error {
	if err := l.Check(charges, rhoFrames); err != nil {
		return err
	}
	if l.hook != nil {
		if err := l.hook(l.camera, charges); err != nil {
			return fmt.Errorf("dp: charge not persisted, nothing spent or released: %w", err)
		}
	}
	l.Spend(charges)
	return nil
}

// Reserve admission-checks charges — against spent budget plus every
// outstanding reservation — and on success holds them as a
// reservation, returning its handle. The caller persists the charges
// durably, then calls Finalize (moving the reservation into spent) or
// Release (dropping it, e.g. when persistence failed). Splitting
// admission from the durable commit lets an engine persist outside its
// admission lock so concurrent queries' commits can group into shared
// fsyncs.
func (l *Ledger) Reserve(charges []Charge, rhoFrames int64) (int64, error) {
	if err := l.Check(charges, rhoFrames); err != nil {
		return 0, err
	}
	l.resSeq++
	l.reserved = append(l.reserved, reservation{
		id:      l.resSeq,
		charges: append([]Charge(nil), charges...),
	})
	return l.resSeq, nil
}

// Finalize moves a reservation into the spent ledger. Call only after
// the charges are durably persisted. Unknown handles are no-ops.
func (l *Ledger) Finalize(id int64) {
	for i, res := range l.reserved {
		if res.id == id {
			l.Spend(res.charges)
			l.reserved = append(l.reserved[:i], l.reserved[i+1:]...)
			return
		}
	}
}

// Release drops a reservation without spending: the budget becomes
// available again, exactly (the reservation is removed wholesale, so
// no floating-point residue is left behind). Unknown handles are
// no-ops.
func (l *Ledger) Release(id int64) {
	for i, res := range l.reserved {
		if res.id == id {
			l.reserved = append(l.reserved[:i], l.reserved[i+1:]...)
			return
		}
	}
}

// RestoreSpent adds a recovered spent-budget segment during crash
// recovery: eps is the absolute spent value over [start, end) as
// persisted in a snapshot or rebuilt from WAL charges. Restoring
// non-overlapping segments into a fresh ledger reproduces the
// pre-crash spent function exactly.
func (l *Ledger) RestoreSpent(start, end int64, eps float64) {
	l.spent.AddRange(start, end, eps)
}

// Check performs the admission test of Admit without committing.
// Queries spanning multiple cameras Check every ledger first, then
// Spend on all of them, so denial on one camera consumes nothing
// anywhere.
func (l *Ledger) Check(charges []Charge, rhoFrames int64) error {
	// Build the total demanded budget per frame (expanded intervals).
	var demand intervalmap.Map
	for _, c := range charges {
		if c.Eps < 0 {
			return fmt.Errorf("dp: negative charge %v", c.Eps)
		}
		iv := c.Interval.Expand(rhoFrames)
		demand.AddRange(iv.Start, iv.End, c.Eps)
	}
	// Outstanding reservations count as spent: an admitted-but-not-
	// yet-committed charge must block a competing query just like a
	// committed one. They are folded into a small overlay map — sized
	// by the in-flight charges, independent of the ledger's lifetime
	// history — rather than cloning the whole spent map on the
	// admission hot path.
	var pend *intervalmap.Map
	if len(l.reserved) > 0 {
		pend = &intervalmap.Map{}
		for _, res := range l.reserved {
			for _, c := range res.charges {
				pend.AddRange(c.Interval.Start, c.Interval.End, c.Eps)
			}
		}
	}
	// spentMax returns the maximum of spent+reserved over [s, e) and a
	// real frame attaining it (so denials report a concrete frame).
	spentMax := func(s, e int64) (float64, int64) {
		best := math.Inf(-1)
		frame := s
		scan := func(ss, se int64, pv float64) {
			sp := l.spent.Max(ss, se)
			if sp+pv > best {
				best = sp + pv
				frame = ss
				l.spent.Segments(ss, se, func(fs, _ int64, v float64) {
					if v == sp {
						frame = fs
					}
				})
			}
		}
		if pend == nil {
			scan(s, e, 0)
		} else {
			pend.Segments(s, e, scan)
		}
		return best, frame
	}
	// Check: spent + reserved + demand <= epsilon everywhere.
	var worstFrame int64
	worst := math.Inf(-1)
	ok := true
	demand.Segments(minStart(charges, rhoFrames), maxEnd(charges, rhoFrames), func(s, e int64, d float64) {
		if d == 0 {
			return
		}
		// Within [s,e) the demand is constant; the binding constraint
		// is the max already-spent value there.
		sp, frame := spentMax(s, e)
		if sp+d > l.epsilon+1e-12 {
			ok = false
			if sp+d > worst {
				worst = sp + d
				worstFrame = frame
			}
		}
	})
	if !ok {
		pendAt := 0.0
		if pend != nil {
			pendAt = pend.Get(worstFrame)
		}
		return &ErrBudgetExhausted{
			Camera:    l.camera,
			Frame:     worstFrame,
			Remaining: l.epsilon - l.spent.Get(worstFrame) - pendAt,
			Requested: demand.Get(worstFrame),
		}
	}
	return nil
}

// Spend subtracts each charge over its unexpanded interval. Callers
// must have passed Check with the same charges first.
func (l *Ledger) Spend(charges []Charge) {
	for _, c := range charges {
		l.spent.AddRange(c.Interval.Start, c.Interval.End, c.Eps)
	}
}

func minStart(charges []Charge, rho int64) int64 {
	m := int64(math.MaxInt64)
	for _, c := range charges {
		if s := c.Interval.Start - rho; s < m {
			m = s
		}
	}
	return m
}

func maxEnd(charges []Charge, rho int64) int64 {
	m := int64(math.MinInt64)
	for _, c := range charges {
		if e := c.Interval.End + rho; e > m {
			m = e
		}
	}
	return m
}

// DetectionProbability evaluates Eq. C.3: the maximum probability an
// adversary with false-positive tolerance alpha correctly detects a
// protected event, given the effective ε. This is the curve of Fig. 8.
func DetectionProbability(eps, alpha float64) float64 {
	if eps < 0 || alpha < 0 {
		return 0
	}
	a := math.Exp(eps) * alpha
	b := 1 - math.Exp(-eps)*(1-alpha)
	p := math.Min(a, b)
	return math.Min(p, 1)
}

// EffectiveEpsilon returns the privacy level actually afforded to an
// event that exceeds the (ρ, K) policy bound (§5.3, Appendix C): an
// event with K' segments of duration ρ' each is protected with
//
//	ε' = ε · (K'/K) · (max_chunks(ρ') / max_chunks(ρ))
//
// where max_chunks is Eq. 6.1 at the query's chunk size. ε' grows —
// privacy degrades gracefully — as the event exceeds the bound.
func EffectiveEpsilon(eps float64, policyRhoFrames int64, policyK int, actualRhoFrames int64, actualK int, chunkFrames int64) float64 {
	if chunkFrames <= 0 || policyK <= 0 {
		return math.Inf(1)
	}
	mc := func(rho int64) float64 {
		ceil := rho / chunkFrames
		if rho%chunkFrames != 0 {
			ceil++
		}
		return float64(1 + ceil)
	}
	return eps * (float64(actualK) / float64(policyK)) * (mc(actualRhoFrames) / mc(policyRhoFrames))
}
