// Package dp implements Privid's differential-privacy core: the
// Laplace mechanism used to noise every data release, the per-frame
// privacy-budget ledger of Algorithm 1 (§6.4), and the
// privacy-degradation analysis of Appendix C.
package dp

import (
	"fmt"
	"math"
	"math/rand"

	"privid/internal/intervalmap"
	"privid/internal/vtime"
)

// Noise samples Laplace noise. It is deterministic given its seed so
// experiments are reproducible; a deployment would swap in a
// cryptographically secure source (Appendix B's PRNG requirement).
type Noise struct {
	rng *rand.Rand
}

// NewNoise returns a sampler seeded deterministically.
func NewNoise(seed int64) *Noise {
	return &Noise{rng: rand.New(rand.NewSource(seed))}
}

// Laplace returns one sample from Laplace(0, scale) via inverse-CDF
// sampling. scale <= 0 returns 0 (a zero-sensitivity release needs no
// noise).
func (n *Noise) Laplace(scale float64) float64 {
	if scale <= 0 {
		return 0
	}
	u := n.rng.Float64() - 0.5
	if u == 0 {
		return 0
	}
	return -scale * sign(u) * math.Log(1-2*math.Abs(u))
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// LaplaceScale returns the noise scale b = Δ/ε for a release of the
// given sensitivity and budget.
func LaplaceScale(sensitivity, epsilon float64) float64 {
	if epsilon <= 0 {
		return math.Inf(1)
	}
	return sensitivity / epsilon
}

// ErrBudgetExhausted is returned when a query asks for more budget
// than some frame in its (ρ-expanded) interval has left. The query is
// denied without consuming anything.
type ErrBudgetExhausted struct {
	Camera    string
	Frame     int64
	Remaining float64
	Requested float64
}

// Error implements the error interface.
func (e *ErrBudgetExhausted) Error() string {
	return fmt.Sprintf("dp: budget exhausted on camera %s at frame %d (remaining %.4g, requested %.4g)",
		e.Camera, e.Frame, e.Remaining, e.Requested)
}

// Ledger tracks the privacy budget spent on every frame of one camera.
// Privid assigns a separate budget of ε to each frame (§6.4); the
// ledger stores the spent amount as a piecewise-constant function so
// memory scales with the number of queries, not frames.
type Ledger struct {
	camera  string
	epsilon float64 // per-frame budget εC
	spent   intervalmap.Map
}

// NewLedger returns a fresh ledger with per-frame budget eps.
func NewLedger(camera string, eps float64) *Ledger {
	return &Ledger{camera: camera, epsilon: eps}
}

// Epsilon returns the per-frame budget εC.
func (l *Ledger) Epsilon() float64 { return l.epsilon }

// Remaining returns the unspent budget at one frame.
func (l *Ledger) Remaining(frame int64) float64 {
	return l.epsilon - l.spent.Get(frame)
}

// Charge is one release's demand on the ledger: eps over the frame
// interval the release depends on.
type Charge struct {
	Interval vtime.Interval
	Eps      float64
}

// Admit implements Algorithm 1 lines 1–5 for a set of charges
// atomically: every charge must find at least its ε remaining on every
// frame of its interval expanded by ρ on both sides; only then is each
// charge's ε subtracted from its unexpanded interval. The ρ margin
// ensures a single event segment (duration ≤ ρ) cannot straddle two
// temporally disjoint queries and be paid for twice (Appendix E.2).
//
// Overlapping charges within one call are summed for the admission
// check, so a query cannot evade the limit by splitting its demand.
func (l *Ledger) Admit(charges []Charge, rhoFrames int64) error {
	if err := l.Check(charges, rhoFrames); err != nil {
		return err
	}
	l.Spend(charges)
	return nil
}

// Check performs the admission test of Admit without committing.
// Queries spanning multiple cameras Check every ledger first, then
// Spend on all of them, so denial on one camera consumes nothing
// anywhere.
func (l *Ledger) Check(charges []Charge, rhoFrames int64) error {
	// Build the total demanded budget per frame (expanded intervals).
	var demand intervalmap.Map
	for _, c := range charges {
		if c.Eps < 0 {
			return fmt.Errorf("dp: negative charge %v", c.Eps)
		}
		iv := c.Interval.Expand(rhoFrames)
		demand.AddRange(iv.Start, iv.End, c.Eps)
	}
	// Check: spent + demand <= epsilon everywhere.
	var worstFrame int64
	worst := math.Inf(-1)
	ok := true
	demand.Segments(minStart(charges, rhoFrames), maxEnd(charges, rhoFrames), func(s, e int64, d float64) {
		if d == 0 {
			return
		}
		// Within [s,e) the demand is constant; the binding constraint
		// is the max already-spent value there. Locate the exact
		// subsegment attaining it so denials report a real frame.
		sp := l.spent.Max(s, e)
		if sp+d > l.epsilon+1e-12 {
			ok = false
			if sp+d > worst {
				worst = sp + d
				worstFrame = s
				l.spent.Segments(s, e, func(ss, _ int64, v float64) {
					if v == sp {
						worstFrame = ss
					}
				})
			}
		}
	})
	if !ok {
		return &ErrBudgetExhausted{
			Camera:    l.camera,
			Frame:     worstFrame,
			Remaining: l.epsilon - l.spent.Get(worstFrame),
			Requested: demand.Get(worstFrame),
		}
	}
	return nil
}

// Spend subtracts each charge over its unexpanded interval. Callers
// must have passed Check with the same charges first.
func (l *Ledger) Spend(charges []Charge) {
	for _, c := range charges {
		l.spent.AddRange(c.Interval.Start, c.Interval.End, c.Eps)
	}
}

func minStart(charges []Charge, rho int64) int64 {
	m := int64(math.MaxInt64)
	for _, c := range charges {
		if s := c.Interval.Start - rho; s < m {
			m = s
		}
	}
	return m
}

func maxEnd(charges []Charge, rho int64) int64 {
	m := int64(math.MinInt64)
	for _, c := range charges {
		if e := c.Interval.End + rho; e > m {
			m = e
		}
	}
	return m
}

// DetectionProbability evaluates Eq. C.3: the maximum probability an
// adversary with false-positive tolerance alpha correctly detects a
// protected event, given the effective ε. This is the curve of Fig. 8.
func DetectionProbability(eps, alpha float64) float64 {
	if eps < 0 || alpha < 0 {
		return 0
	}
	a := math.Exp(eps) * alpha
	b := 1 - math.Exp(-eps)*(1-alpha)
	p := math.Min(a, b)
	return math.Min(p, 1)
}

// EffectiveEpsilon returns the privacy level actually afforded to an
// event that exceeds the (ρ, K) policy bound (§5.3, Appendix C): an
// event with K' segments of duration ρ' each is protected with
//
//	ε' = ε · (K'/K) · (max_chunks(ρ') / max_chunks(ρ))
//
// where max_chunks is Eq. 6.1 at the query's chunk size. ε' grows —
// privacy degrades gracefully — as the event exceeds the bound.
func EffectiveEpsilon(eps float64, policyRhoFrames int64, policyK int, actualRhoFrames int64, actualK int, chunkFrames int64) float64 {
	if chunkFrames <= 0 || policyK <= 0 {
		return math.Inf(1)
	}
	mc := func(rho int64) float64 {
		ceil := rho / chunkFrames
		if rho%chunkFrames != 0 {
			ceil++
		}
		return float64(1 + ceil)
	}
	return eps * (float64(actualK) / float64(policyK)) * (mc(actualRhoFrames) / mc(policyRhoFrames))
}
