package dp

import (
	"errors"
	"testing"

	"privid/internal/vtime"
)

// TestCommitHookOrdering: the hook fires between check and spend, and
// a hook error aborts the admission with nothing spent — the
// charge-before-release contract.
func TestCommitHookOrdering(t *testing.T) {
	led := NewLedger("camA", 10)
	var hooked [][]Charge
	led.SetCommitHook(func(camera string, charges []Charge) error {
		if camera != "camA" {
			t.Errorf("hook camera = %q", camera)
		}
		hooked = append(hooked, charges)
		return nil
	})
	ch := []Charge{{Interval: vtime.NewInterval(0, 100), Eps: 3}}
	if err := led.Admit(ch, 0); err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(hooked))
	}
	if got := led.Remaining(50); got != 7 {
		t.Errorf("remaining = %v, want 7", got)
	}

	// A failing hook blocks the spend entirely.
	failErr := errors.New("disk on fire")
	led.SetCommitHook(func(string, []Charge) error { return failErr })
	err := led.Admit(ch, 0)
	if !errors.Is(err, failErr) {
		t.Fatalf("admit with failing hook: %v", err)
	}
	if got := led.Remaining(50); got != 7 {
		t.Errorf("failed hook spent budget: remaining = %v, want 7", got)
	}
	if len(hooked) != 1 {
		t.Errorf("failed admission recorded a hook charge")
	}

	// The hook does not fire on an admission denial.
	led.SetCommitHook(func(string, []Charge) error {
		t.Error("hook fired for a denied admission")
		return nil
	})
	big := []Charge{{Interval: vtime.NewInterval(0, 100), Eps: 100}}
	var ex *ErrBudgetExhausted
	if err := led.Admit(big, 0); !errors.As(err, &ex) {
		t.Fatalf("want budget denial, got %v", err)
	}
}

// TestReserveFinalizeRelease: reservations block competing admissions
// and Remaining like spent budget; Release restores the ledger exactly
// and Finalize converts the reservation into spend.
func TestReserveFinalizeRelease(t *testing.T) {
	led := NewLedger("camA", 10)
	ch := []Charge{{Interval: vtime.NewInterval(0, 100), Eps: 6}}
	id, err := led.Reserve(ch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := led.Remaining(50); got != 4 {
		t.Errorf("remaining with reservation = %v, want 4", got)
	}
	// A competing query demanding more than the unreserved budget is
	// denied even though nothing is spent yet.
	if _, err := led.Reserve([]Charge{{Interval: vtime.NewInterval(50, 60), Eps: 5}}, 0); err == nil {
		t.Fatal("reservation did not block competing admission")
	}
	// Release restores the ledger exactly.
	led.Release(id)
	if got := led.Remaining(50); got != 10 {
		t.Errorf("remaining after release = %v, want 10 exactly", got)
	}
	// Reserve + Finalize equals Admit.
	id, err = led.Reserve(ch, 0)
	if err != nil {
		t.Fatal(err)
	}
	led.Finalize(id)
	if got := led.Remaining(50); got != 4 {
		t.Errorf("remaining after finalize = %v, want 4", got)
	}
	// Finalize/Release of unknown handles are no-ops.
	led.Finalize(999)
	led.Release(id) // already finalized
	if got := led.Remaining(50); got != 4 {
		t.Errorf("unknown-handle ops changed the ledger: %v", got)
	}
}

// TestReserveRhoMargin: the admission margin applies to reservations
// exactly as to Admit.
func TestReserveRhoMargin(t *testing.T) {
	led := NewLedger("camA", 1)
	id, err := led.Reserve([]Charge{{Interval: vtime.NewInterval(0, 100), Eps: 1}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	led.Finalize(id)
	// A disjoint-but-within-rho interval must be denied: the expanded
	// intervals overlap.
	if _, err := led.Reserve([]Charge{{Interval: vtime.NewInterval(105, 120), Eps: 1}}, 10); err == nil {
		t.Fatal("rho margin ignored for reservations")
	}
	// Beyond the margin it fits.
	if _, err := led.Reserve([]Charge{{Interval: vtime.NewInterval(121, 140), Eps: 1}}, 10); err != nil {
		t.Fatalf("disjoint interval denied: %v", err)
	}
}

// TestRestoreSpent reproduces a recovered ledger bit-for-bit: restoring
// the segments of a spent function into a fresh ledger yields the same
// Remaining everywhere.
func TestRestoreSpent(t *testing.T) {
	orig := NewLedger("camA", 10)
	charges := [][]Charge{
		{{Interval: vtime.NewInterval(0, 100), Eps: 0.3}},
		{{Interval: vtime.NewInterval(50, 150), Eps: 0.7}},
		{{Interval: vtime.NewInterval(120, 130), Eps: 1.1}},
	}
	for _, ch := range charges {
		if err := orig.Admit(ch, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Restore from the piecewise segments (what a snapshot persists).
	restored := NewLedger("camA", 10)
	type seg struct {
		s, e int64
		v    float64
	}
	var segs []seg
	prev := 0.0
	var start int64
	for f := int64(0); f <= 150; f++ {
		v := 10 - orig.Remaining(f)
		if v != prev {
			if prev != 0 {
				segs = append(segs, seg{start, f, prev})
			}
			start, prev = f, v
		}
	}
	for _, sg := range segs {
		restored.RestoreSpent(sg.s, sg.e, sg.v)
	}
	for f := int64(0); f < 150; f += 7 {
		if got, want := restored.Remaining(f), orig.Remaining(f); got != want {
			t.Fatalf("frame %d: restored remaining %v != original %v", f, got, want)
		}
	}
}
