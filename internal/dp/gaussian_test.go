package dp

import (
	"math"
	"testing"
)

func TestGaussianMoments(t *testing.T) {
	n := NewNoise(5)
	const sigma = 2.5
	const samples = 200000
	var sum, sumSq float64
	for i := 0; i < samples; i++ {
		x := n.Gaussian(sigma)
		sum += x
		sumSq += x * x
	}
	mean := sum / samples
	variance := sumSq/samples - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean=%v, want ~0", mean)
	}
	if math.Abs(variance-sigma*sigma) > 0.1 {
		t.Errorf("var=%v, want %v", variance, sigma*sigma)
	}
	if NewNoise(1).Gaussian(0) != 0 {
		t.Errorf("zero sigma must yield zero noise")
	}
}

func TestGaussianSigma(t *testing.T) {
	// sigma = Δ·sqrt(2 ln(1.25/δ))/ε.
	got := GaussianSigma(10, 0.5, 1e-5)
	want := 10 * math.Sqrt(2*math.Log(1.25/1e-5)) / 0.5
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("sigma=%v, want %v", got, want)
	}
	// Zero sensitivity needs no noise.
	if GaussianSigma(0, 0.5, 1e-5) != 0 {
		t.Errorf("zero-sensitivity sigma should be 0")
	}
	// Outside the classic regime the calibration refuses (inf).
	for _, bad := range [][2]float64{{0, 1e-5}, {1, 1e-5}, {0.5, 0}, {0.5, 1}} {
		if !math.IsInf(GaussianSigma(1, bad[0], bad[1]), 1) {
			t.Errorf("GaussianSigma(eps=%v, delta=%v) should be +inf", bad[0], bad[1])
		}
	}
	// Sigma shrinks with epsilon, grows as delta shrinks.
	if GaussianSigma(1, 0.9, 1e-5) >= GaussianSigma(1, 0.1, 1e-5) {
		t.Errorf("sigma not decreasing in epsilon")
	}
	if GaussianSigma(1, 0.5, 1e-3) >= GaussianSigma(1, 0.5, 1e-9) {
		t.Errorf("sigma not increasing as delta shrinks")
	}
}

func TestAdvancedComposition(t *testing.T) {
	// For many small-eps releases, advanced composition beats
	// sequential composition (k·ε).
	const eps = 0.01
	const k = 1000
	epsPrime, deltaPrime := AdvancedComposition(eps, 0, k, 1e-6)
	if epsPrime >= eps*k {
		t.Errorf("advanced composition %v not tighter than sequential %v", epsPrime, eps*k)
	}
	if deltaPrime != 1e-6 {
		t.Errorf("deltaPrime=%v", deltaPrime)
	}
	// Monotone in k.
	e1, _ := AdvancedComposition(eps, 0, 10, 1e-6)
	e2, _ := AdvancedComposition(eps, 0, 100, 1e-6)
	if e2 <= e1 {
		t.Errorf("composition not monotone in k")
	}
	if e, d := AdvancedComposition(eps, 1e-9, 0, 1e-6); e != 0 || d != 0 {
		t.Errorf("k=0 composition should be free")
	}
}
