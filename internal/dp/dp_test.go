package dp

import (
	"errors"
	"math"
	"testing"

	"privid/internal/vtime"
)

func TestLaplaceMoments(t *testing.T) {
	n := NewNoise(42)
	const scale = 3.0
	const samples = 200000
	var sum, sumAbs float64
	for i := 0; i < samples; i++ {
		x := n.Laplace(scale)
		sum += x
		sumAbs += math.Abs(x)
	}
	mean := sum / samples
	meanAbs := sumAbs / samples
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean=%v, want ~0", mean)
	}
	// E|X| = scale for Laplace.
	if math.Abs(meanAbs-scale) > 0.05 {
		t.Errorf("E|X|=%v, want %v", meanAbs, scale)
	}
}

func TestLaplaceDeterministic(t *testing.T) {
	a, b := NewNoise(7), NewNoise(7)
	for i := 0; i < 100; i++ {
		if a.Laplace(1) != b.Laplace(1) {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
	if NewNoise(1).Laplace(0) != 0 {
		t.Errorf("zero scale must give zero noise")
	}
}

func TestLaplaceScale(t *testing.T) {
	if got := LaplaceScale(70, 1); got != 70 {
		t.Errorf("scale=%v", got)
	}
	if got := LaplaceScale(70, 0.5); got != 140 {
		t.Errorf("scale=%v", got)
	}
	if got := LaplaceScale(70, 0); !math.IsInf(got, 1) {
		t.Errorf("zero epsilon scale=%v, want +inf", got)
	}
}

func TestLedgerBasicAdmit(t *testing.T) {
	l := NewLedger("camA", 1.0)
	iv := vtime.NewInterval(1000, 2000)
	if err := l.Admit([]Charge{{Interval: iv, Eps: 0.4}}, 100); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if got := l.Remaining(1500); got != 0.6 {
		t.Errorf("remaining=%v, want 0.6", got)
	}
	// The margin is NOT charged.
	if got := l.Remaining(950); got != 1.0 {
		t.Errorf("margin remaining=%v, want 1.0", got)
	}
	if err := l.Admit([]Charge{{Interval: iv, Eps: 0.4}}, 100); err != nil {
		t.Fatalf("second admit: %v", err)
	}
	// Third 0.4 exceeds 1.0.
	err := l.Admit([]Charge{{Interval: iv, Eps: 0.4}}, 100)
	var ex *ErrBudgetExhausted
	if !errors.As(err, &ex) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	if ex.Camera != "camA" {
		t.Errorf("error camera=%q", ex.Camera)
	}
	// Denied queries must not consume anything.
	if got := l.Remaining(1500); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("after denial remaining=%v, want 0.2", got)
	}
}

func TestLedgerRhoMargin(t *testing.T) {
	// Two queries on adjacent intervals: the rho margin must make the
	// second query check frames of the first query's interval.
	l := NewLedger("camA", 1.0)
	if err := l.Admit([]Charge{{Interval: vtime.NewInterval(0, 1000), Eps: 0.8}}, 100); err != nil {
		t.Fatal(err)
	}
	// [1000, 2000) is disjoint, but its expansion [900, 2100) overlaps
	// the charged [0, 1000) where only 0.2 remains.
	if err := l.Admit([]Charge{{Interval: vtime.NewInterval(1000, 2000), Eps: 0.5}}, 100); err == nil {
		t.Fatalf("margin check failed to deny")
	}
	// Far enough away (expansion clears the first interval) it passes.
	if err := l.Admit([]Charge{{Interval: vtime.NewInterval(1100, 2000), Eps: 0.5}}, 100); err != nil {
		t.Fatalf("disjoint-with-margin admit: %v", err)
	}
}

func TestLedgerOverlappingChargesSummed(t *testing.T) {
	// A single query whose releases overlap must count their sum in
	// the admission check.
	l := NewLedger("camA", 1.0)
	iv := vtime.NewInterval(0, 1000)
	err := l.Admit([]Charge{
		{Interval: iv, Eps: 0.6},
		{Interval: iv, Eps: 0.6},
	}, 10)
	if err == nil {
		t.Fatalf("overlapping charges admitted beyond budget")
	}
	// Disjoint per-bucket charges of a standing query are fine.
	err = l.Admit([]Charge{
		{Interval: vtime.NewInterval(0, 500), Eps: 0.6},
		{Interval: vtime.NewInterval(1500, 2000), Eps: 0.6},
	}, 10)
	if err != nil {
		t.Fatalf("disjoint charges denied: %v", err)
	}
	// But adjacent buckets within rho of each other interact: the
	// margin overlap must deny a follow-up that would exceed budget.
	if err := l.Admit([]Charge{{Interval: vtime.NewInterval(500, 600), Eps: 0.6}}, 10); err == nil {
		t.Fatalf("charge within margin of a 0.6-spent region admitted")
	}
}

func TestLedgerManyQueriesMemory(t *testing.T) {
	l := NewLedger("camA", 100)
	for i := int64(0); i < 1000; i++ {
		if err := l.Admit([]Charge{{Interval: vtime.NewInterval(i*100, i*100+100), Eps: 0.05}}, 10); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if got := l.Remaining(50); got != 99.95 {
		t.Errorf("remaining=%v", got)
	}
}

func TestDetectionProbability(t *testing.T) {
	// At eps=0 the adversary can do no better than alpha.
	if got := DetectionProbability(0, 0.01); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("P(eps=0)=%v, want alpha", got)
	}
	// Monotone in eps.
	prev := 0.0
	for _, eps := range []float64{0.1, 0.5, 1, 2, 4, 8} {
		p := DetectionProbability(eps, 0.01)
		if p < prev {
			t.Errorf("P not monotone at eps=%v: %v < %v", eps, p, prev)
		}
		prev = p
	}
	// Saturates at 1.
	if got := DetectionProbability(100, 0.2); got != 1 {
		t.Errorf("P(eps=100)=%v, want 1", got)
	}
	// Bounded by both branches of Eq. C.3.
	for _, eps := range []float64{0.5, 1, 2} {
		for _, alpha := range []float64{0.001, 0.01, 0.1, 0.2} {
			p := DetectionProbability(eps, alpha)
			if p > math.Exp(eps)*alpha+1e-12 {
				t.Errorf("P exceeds e^eps*alpha at (%v,%v)", eps, alpha)
			}
			if p > 1-math.Exp(-eps)*(1-alpha)+1e-12 {
				t.Errorf("P exceeds second bound at (%v,%v)", eps, alpha)
			}
		}
	}
}

func TestEffectiveEpsilon(t *testing.T) {
	// Policy rho=300 frames, K=2, chunk=50 frames:
	// max_chunks(300) = 1+6 = 7.
	base := EffectiveEpsilon(1.0, 300, 2, 300, 2, 50)
	if math.Abs(base-1.0) > 1e-12 {
		t.Errorf("at-bound eps=%v, want 1", base)
	}
	// Doubling K doubles eps (the (rho, 2K) -> 2eps relation of §5.3).
	if got := EffectiveEpsilon(1.0, 300, 2, 300, 4, 50); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("2K eps=%v, want 2", got)
	}
	// Halving K halves eps (stronger privacy).
	if got := EffectiveEpsilon(1.0, 300, 2, 300, 1, 50); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("K/2 eps=%v, want 0.5", got)
	}
	// Longer rho weakens privacy monotonically.
	prev := 0.0
	for _, rho := range []int64{100, 300, 600, 1200} {
		e := EffectiveEpsilon(1.0, 300, 2, rho, 2, 50)
		if e < prev {
			t.Errorf("eps not monotone in rho")
		}
		prev = e
	}
}
