package policy

import (
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	if err := (Policy{Rho: 30 * time.Second, K: 2}).Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	if err := (Policy{Rho: -time.Second, K: 2}).Validate(); err == nil {
		t.Errorf("negative rho accepted")
	}
	if err := (Policy{Rho: time.Second, K: 0}).Validate(); err == nil {
		t.Errorf("K=0 accepted")
	}
}

func TestRhoFrames(t *testing.T) {
	p := Policy{Rho: 30 * time.Second, K: 1}
	if got := p.RhoFrames(10); got != 300 {
		t.Errorf("RhoFrames=%d, want 300", got)
	}
	// Rounds up.
	p2 := Policy{Rho: 1500 * time.Millisecond, K: 1}
	if got := p2.RhoFrames(1); got != 2 {
		t.Errorf("RhoFrames(1.5s@1fps)=%d, want 2 (ceil)", got)
	}
	if got := (Policy{Rho: 0, K: 1}).RhoFrames(30); got != 0 {
		t.Errorf("RhoFrames(0)=%d", got)
	}
}

func TestMaxChunks(t *testing.T) {
	// Eq 6.1: max_chunks = 1 + ceil(rho/c).
	cases := []struct {
		rhoSec   int
		chunkSec int
		fps      int
		want     int64
	}{
		{30, 5, 10, 7},  // 1 + ceil(30/5) = 7
		{30, 7, 10, 6},  // rho=300f, c=70f -> 1+ceil(300/70)=1+5=6
		{0, 5, 10, 0},   // zero-rho events are visible in no chunk at all
		{5, 5, 10, 2},   // exactly one chunk length -> 2
		{5, 600, 10, 2}, // chunk far larger than rho -> 2
	}
	for _, c := range cases {
		p := Policy{Rho: time.Duration(c.rhoSec) * time.Second, K: 1}
		chunkFrames := int64(c.chunkSec * c.fps)
		if got := p.MaxChunks(10, chunkFrames); got != c.want {
			t.Errorf("MaxChunks(rho=%ds, c=%ds)=%d, want %d", c.rhoSec, c.chunkSec, got, c.want)
		}
	}
	if got := (Policy{Rho: time.Second, K: 1}).MaxChunks(10, 0); got != 0 {
		t.Errorf("MaxChunks with zero chunk=%d", got)
	}
}
