// Package policy defines the (ρ, K) privacy policy of §5: the class of
// events a camera owner protects. An event is (ρ, K)-bounded if it is
// fully contained in at most K video segments of duration at most ρ
// each; (ρ, K, ε)-event-duration privacy protects every such event
// with ε-differential privacy.
package policy

import (
	"fmt"
	"time"

	"privid/internal/vtime"
)

// Policy is a (ρ, K) bound chosen by the video owner.
type Policy struct {
	// Rho is the maximum duration of any single segment of a protected
	// event.
	Rho time.Duration
	// K is the maximum number of segments of a protected event.
	K int
}

// Validate reports whether the policy is well-formed.
func (p Policy) Validate() error {
	if p.Rho < 0 {
		return fmt.Errorf("policy: negative rho %v", p.Rho)
	}
	if p.K < 1 {
		return fmt.Errorf("policy: K must be >= 1, got %d", p.K)
	}
	return nil
}

// RhoFrames returns ρ in frames at the given rate, rounded up
// (the conservative direction for privacy).
func (p Policy) RhoFrames(fps vtime.FrameRate) int64 {
	return fps.FramesCeil(p.Rho)
}

// MaxChunks returns the maximum number of chunks of duration
// chunkFrames that a single event segment of duration ρ can span
// (Eq. 6.1): 1 + ceil(ρ/c). The worst case is a segment first visible
// in the last frame of a chunk.
func (p Policy) MaxChunks(fps vtime.FrameRate, chunkFrames int64) int64 {
	return p.MaxChunksStrided(fps, chunkFrames, 0)
}

// MaxChunksStrided generalizes Eq. 6.1 to strided splits: consecutive
// chunk starts are period = c + stride frames apart, so a segment of
// duration ρ overlaps at most 1 + ceil(ρ/period) chunks. Stride 0
// recovers the paper's formula; positive strides (sampled chunks)
// yield fewer reachable chunks, negative strides (overlapping chunks)
// more.
func (p Policy) MaxChunksStrided(fps vtime.FrameRate, chunkFrames, strideFrames int64) int64 {
	if chunkFrames <= 0 {
		return 0
	}
	rho := p.RhoFrames(fps)
	if rho == 0 {
		// A (0, K)-bounded event is visible for zero duration — zero
		// frames — so it can affect no chunk at all. This is the
		// paper's Case 4: masking everything but the traffic light
		// yields ρ=0 and therefore zero noise (100% accuracy).
		return 0
	}
	period := chunkFrames + strideFrames
	if period < 1 {
		period = 1
	}
	ceil := rho / period
	if rho%period != 0 {
		ceil++
	}
	return 1 + ceil
}

// String implements fmt.Stringer.
func (p Policy) String() string {
	return fmt.Sprintf("(rho=%v, K=%d)", p.Rho, p.K)
}
