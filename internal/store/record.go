package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// walMagic heads every WAL file; a file without it is not a Privid WAL.
const walMagic = "PRIVIDWAL1\n"

// maxRecordBytes caps one record's payload. Nothing legitimate (a
// charge, an audit entry, a job with a bounded query and result)
// approaches this; a larger length prefix means corruption.
const maxRecordBytes = 8 << 20

// frameHeaderLen is the per-record framing overhead: a uint32 payload
// length followed by a uint32 CRC32 (IEEE) of the payload, both
// little-endian.
const frameHeaderLen = 8

// CorruptError reports a torn or corrupt WAL. Offset is the byte
// length of the valid prefix: every record before it decoded cleanly,
// and Repair truncates the file to exactly this offset.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

// Error implements the error interface.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt WAL %s at offset %d: %s (run repair to truncate to the last valid record)",
		e.Path, e.Offset, e.Reason)
}

// appendFrame encodes rec and appends its framed bytes to buf.
func appendFrame(buf []byte, rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("store: record payload %d bytes exceeds limit %d", len(payload), maxRecordBytes)
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	return append(append(buf, hdr[:]...), payload...), nil
}

// encodeRecords frames a batch of records into one contiguous buffer
// (one Commit's append unit).
func encodeRecords(recs []Record) ([]byte, error) {
	var buf []byte
	for _, rec := range recs {
		var err error
		buf, err = appendFrame(buf, rec)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeAll decodes a WAL image (magic header plus framed records). It
// returns the records of the valid prefix and that prefix's byte
// length. A torn or corrupt tail is reported as a *CorruptError whose
// Offset equals the returned length; the records decoded before the
// corruption are still returned. DecodeAll never panics, whatever the
// input (see FuzzWALDecode).
func DecodeAll(data []byte) ([]Record, int64, error) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return nil, 0, &CorruptError{Offset: 0, Reason: "missing WAL magic header"}
	}
	off := int64(len(walMagic))
	var recs []Record
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < frameHeaderLen {
			return recs, off, &CorruptError{Offset: off, Reason: "torn frame header"}
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxRecordBytes {
			return recs, off, &CorruptError{Offset: off, Reason: fmt.Sprintf("record length %d exceeds limit", n)}
		}
		if int64(len(rest)) < frameHeaderLen+int64(n) {
			return recs, off, &CorruptError{Offset: off, Reason: "torn record body"}
		}
		payload := rest[frameHeaderLen : frameHeaderLen+int64(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, &CorruptError{Offset: off, Reason: "checksum mismatch"}
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, off, &CorruptError{Offset: off, Reason: "undecodable payload: " + err.Error()}
		}
		if countSet(rec) != 1 {
			return recs, off, &CorruptError{Offset: off, Reason: "record must set exactly one field"}
		}
		recs = append(recs, rec)
		off += frameHeaderLen + int64(n)
	}
	return recs, off, nil
}

func countSet(rec Record) int {
	n := 0
	if rec.Charge != nil {
		n++
	}
	if rec.Audit != nil {
		n++
	}
	if rec.Job != nil {
		n++
	}
	return n
}
