package store

import "privid/internal/obs"

// Metrics holds the WAL's hot-path instruments. The engine registers
// them in its metrics registry and passes them in via Options; every
// field is optional (a nil instrument no-ops), so the zero Metrics
// disables instrumentation entirely.
//
// Scrape-time state — log size, generation, records since snapshot,
// snapshot counts — is not here: it is already exposed by Info() and
// exported through registry collectors, so the hot path never mirrors
// it.
type Metrics struct {
	// AppendSeconds observes one durable append: frame write + fsync.
	AppendSeconds *obs.Histogram
	// FsyncSeconds observes just the fsync portion of an append — the
	// part group commit amortizes across batched records.
	FsyncSeconds *obs.Histogram
	// CommitRecords observes how many records shared one durable append
	// (1 without group commit; the batch size with it).
	CommitRecords *obs.Histogram
}
