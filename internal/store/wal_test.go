package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func charge(cam string, s, e int64, eps float64) Record {
	return Record{Charge: &ChargeRecord{Camera: cam, Start: s, End: e, Eps: eps, Query: "q"}}
}

func TestCommitRecoverClose(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(charge("camA", 0, 100, 0.5), charge("camA", 50, 150, 0.25)); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(Record{Audit: &AuditRecord{At: time.Now(), Cameras: []string{"camA"}, Releases: 2, EpsilonSpent: 0.75}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(Record{Job: &JobRecord{ID: "q-000001", Analyst: "alice", State: "done"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := ReadState(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Spent("camA", 75); got != 0.75 {
		t.Errorf("spent at 75 = %v, want 0.75", got)
	}
	if got := st.Spent("camA", 10); got != 0.5 {
		t.Errorf("spent at 10 = %v, want 0.5", got)
	}
	if got := st.Spent("camA", 149); got != 0.25 {
		t.Errorf("spent at 149 = %v, want 0.25", got)
	}
	if got := st.Spent("camA", 150); got != 0 {
		t.Errorf("spent at 150 = %v, want 0", got)
	}
	if len(st.Audit()) != 1 || st.Audit()[0].Releases != 2 {
		t.Errorf("audit = %+v", st.Audit())
	}
	if jobs := st.Jobs(); len(jobs) != 1 || jobs[0].ID != "q-000001" {
		t.Errorf("jobs = %+v", jobs)
	}
}

// TestReplayWithoutClose simulates a crash: the WAL is abandoned
// without Close (no final snapshot), so recovery must replay raw
// records.
func TestReplayWithoutClose(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Commit(charge("camA", int64(i*10), int64(i*10+20), 0.1)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no Close. The data is already fsynced per commit.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.SpentSegments("camA"); len(got) == 0 {
		t.Fatal("no segments recovered")
	}
	st, _ := ReadState(dir, 0)
	// Frames 10..89 are covered by two overlapping charges.
	if got := st.Spent("camA", 15); got != 0.2 {
		t.Errorf("spent at 15 = %v, want 0.2", got)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Commit(charge("camA", 0, 1000, 0.01)); err != nil {
			t.Fatal(err)
		}
	}
	info := w.Info()
	if info.Snapshots == 0 {
		t.Fatal("no automatic snapshots taken")
	}
	if info.Gen == 0 {
		t.Fatal("generation never advanced")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Exactly one live generation file remains.
	matches, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(matches) != 1 {
		t.Fatalf("stale generations left: %v", matches)
	}
	st, err := ReadState(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := st.Spent("camA", 500)
	want := 0.0
	for i := 0; i < 100; i++ {
		want += 0.01
	}
	if got != want {
		t.Errorf("compacted spent = %v, want %v (exact)", got, want)
	}
}

func TestTornTailRefusesThenRepairs(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Commit(charge("camA", 0, 100, 0.1)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash mid-write: append a torn record (frame header promising
	// more bytes than exist) directly to the file.
	path := filepath.Join(dir, walName(0))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 0xAB, 0xCD}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, err = Open(dir, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("open on torn WAL: got %v, want CorruptError", err)
	}
	if ce.Path != path {
		t.Errorf("corrupt path = %q, want %q", ce.Path, path)
	}

	dropped, err := Repair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 6 {
		t.Errorf("dropped %d bytes, want 6", dropped)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after repair: %v", err)
	}
	defer w2.Close()
	st, _ := ReadState(dir, 0)
	if got, want := st.Spent("camA", 50), 0.5; got != want {
		t.Errorf("spent after repair = %v, want %v", got, want)
	}
	// Repair on a clean log is a no-op.
	if dropped, err := Repair(dir); err != nil || dropped != 0 {
		t.Errorf("repair on clean log: dropped=%d err=%v", dropped, err)
	}
}

func TestCorruptedRecordDetected(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(charge("camA", 0, 100, 0.1)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Close snapshots and rolls the generation; corrupt the *snapshot*
	// path instead: flip a byte inside the new generation after one
	// more commit without Close.
	w, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(charge("camA", 0, 100, 0.1)); err != nil {
		t.Fatal(err)
	}
	gen := w.Info().Gen
	path := filepath.Join(dir, walName(gen))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // corrupt the last record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open accepted a corrupted record")
	}
	if _, err := Repair(dir); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after repair: %v", err)
	}
	w2.Close()
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*per)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cam := fmt.Sprintf("cam%02d", g)
			for i := 0; i < per; i++ {
				errs <- w.Commit(charge(cam, int64(i), int64(i+10), 0.01))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := ReadState(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st.Cameras()); got != goroutines {
		t.Fatalf("%d cameras recovered, want %d", got, goroutines)
	}
	if st.Spent("cam00", 5) == 0 {
		t.Error("cam00 lost its charges")
	}
}

func TestCommitAfterCloseFails(t *testing.T) {
	for _, group := range []bool{false, true} {
		dir := t.TempDir()
		w, err := Open(dir, Options{GroupCommit: group})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(charge("camA", 0, 1, 0.1)); !errors.Is(err, ErrClosed) {
			t.Errorf("group=%v: commit after close: %v, want ErrClosed", group, err)
		}
		if err := w.Close(); err != nil {
			t.Errorf("group=%v: second close: %v", group, err)
		}
	}
}

func TestEmptyCommitIsNoop(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestRetentionBounds: job and audit retention is bounded so snapshots
// stay O(retention); spent budget is never dropped.
func TestRetentionBounds(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{MaxJobs: 5, MaxAudit: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Commit(
			charge("camA", int64(i), int64(i+1), 0.1),
			Record{Audit: &AuditRecord{Releases: i}},
			Record{Job: &JobRecord{ID: fmt.Sprintf("q-%06d", i), State: "done"}},
		); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := ReadState(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if jobs := st.Jobs(); len(jobs) != 5 || jobs[4].ID != "q-000019" {
		t.Errorf("jobs = %d (last %s), want 5 ending at q-000019", len(jobs), jobs[len(jobs)-1].ID)
	}
	if audit := st.Audit(); len(audit) > 10000 {
		t.Errorf("audit unbounded: %d", len(audit))
	}
	// Every charge survives regardless of retention bounds.
	for i := int64(0); i < 20; i++ {
		if st.Spent("camA", i) != 0.1 {
			t.Fatalf("charge at %d dropped", i)
		}
	}
	// The live WAL applied its own bound too.
	w2, err := Open(dir, Options{MaxJobs: 5, MaxAudit: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := len(w2.Jobs()); got != 5 {
		t.Errorf("recovered jobs = %d, want 5", got)
	}
	if got := len(w2.AuditEntries()); got != 7 {
		t.Errorf("recovered audit = %d, want 7", got)
	}
}
