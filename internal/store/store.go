// Package store is Privid's durability layer: a write-ahead log with
// periodic snapshot/compaction that persists the privacy ledger's
// charges, the owner's audit log, and terminal scheduler jobs, so a
// server restart cannot refill any camera's privacy budget.
//
// The contract that makes the privacy guarantee survive crashes is
// charge-before-release: a charge record is appended to the WAL and
// fsynced *before* the corresponding noised result is handed to the
// analyst. A crash can therefore lose a result the analyst never saw
// (the charge is still on disk — charged-at-least-once), but can never
// lose a charge behind a result the analyst did see. Recovery replays
// the last snapshot plus the WAL tail, so the recovered remaining
// budget of every frame is never larger than what the pre-crash
// process would have reported.
//
// Layout of a state directory:
//
//	snapshot.json   last snapshot (atomic rename); names the WAL
//	                generation it precedes
//	wal-<gen>.log   active write-ahead log: magic header, then
//	                length+CRC32-framed JSON records
//
// Snapshotting rolls the WAL to a new generation file first, then
// renames the snapshot into place, then deletes the old generation, so
// a crash anywhere in between recovers exactly one consistent view.
package store

import (
	"encoding/json"
	"sort"
	"time"

	"privid/internal/intervalmap"
)

// ChargeRecord is one durable ledger charge: the camera, the frame
// interval, the ε debited over it, and a hash of the query that caused
// it (for forensics). It is fsynced before the noised result is
// released.
type ChargeRecord struct {
	Camera string  `json:"cam"`
	Start  int64   `json:"s"`
	End    int64   `json:"e"`
	Eps    float64 `json:"eps"`
	Query  string  `json:"q,omitempty"`
}

// AuditRecord mirrors one entry of the owner's audit log.
type AuditRecord struct {
	At           time.Time `json:"at"`
	Cameras      []string  `json:"cams,omitempty"`
	Releases     int       `json:"rel,omitempty"`
	EpsilonSpent float64   `json:"eps,omitempty"`
	Denied       bool      `json:"denied,omitempty"`
	Reason       string    `json:"reason,omitempty"`
}

// JobRecord is one terminal (done/failed) scheduler job, persisted so
// an analyst polling after a server restart still gets their result.
// Result is the JSON encoding of the engine's result (opaque to the
// store).
type JobRecord struct {
	ID          string          `json:"id"`
	Analyst     string          `json:"analyst"`
	Query       string          `json:"query"`
	State       string          `json:"state"` // "done" or "failed"
	Error       string          `json:"error,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   time.Time       `json:"started_at"`
	FinishedAt  time.Time       `json:"finished_at"`
	Result      json.RawMessage `json:"result,omitempty"`
	// Trace is the JSON span tree of the job's execution (obs.SpanTree;
	// opaque to the store), persisted so GET /v1/queries/{id}/trace
	// resolves for terminal jobs across server restarts.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// Record is one WAL entry. Exactly one field is non-nil.
type Record struct {
	Charge *ChargeRecord `json:"c,omitempty"`
	Audit  *AuditRecord  `json:"a,omitempty"`
	Job    *JobRecord    `json:"j,omitempty"`
}

// Store persists engine state. Implementations are safe for concurrent
// use.
type Store interface {
	// Commit durably appends records as one unit, returning only once
	// they are persisted (for the WAL store: after fsync). An error
	// means the records may not have been persisted and nothing may be
	// released to an analyst on their strength.
	Commit(recs ...Record) error
	// Close flushes and closes the store.
	Close() error
}

// NullStore is the no-durability store: commits succeed instantly and
// vanish with the process. It preserves the engine's pre-durability
// in-memory behavior for library use and tests without a state dir.
type NullStore struct{}

// Commit implements Store as a no-op.
func (NullStore) Commit(...Record) error { return nil }

// Close implements Store as a no-op.
func (NullStore) Close() error { return nil }

// Segment is one piece of a camera's piecewise-constant spent-budget
// function, as persisted in snapshots: eps is the absolute spent value
// over [Start, End).
type Segment struct {
	Start int64   `json:"s"`
	End   int64   `json:"e"`
	Eps   float64 `json:"eps"`
}

// State is the aggregate durable state: per-camera spent budget, the
// audit log, and retained terminal jobs. It is what a snapshot holds
// and what recovery rebuilds from snapshot + WAL replay.
type State struct {
	spent   map[string]*intervalmap.Map
	audit   []AuditRecord
	jobs    []JobRecord
	charges int64 // charge records applied since the last snapshot base
}

// NewState returns an empty state.
func NewState() *State {
	return &State{spent: map[string]*intervalmap.Map{}}
}

// apply folds one record into the state. maxJobs and maxAudit bound
// the retained terminal jobs and audit entries (oldest dropped); <= 0
// keeps all. Spent budget is never bounded — it IS the guarantee.
func (s *State) apply(rec Record, maxJobs, maxAudit int) {
	switch {
	case rec.Charge != nil:
		c := rec.Charge
		m := s.spent[c.Camera]
		if m == nil {
			m = &intervalmap.Map{}
			s.spent[c.Camera] = m
		}
		m.AddRange(c.Start, c.End, c.Eps)
		s.charges++
	case rec.Audit != nil:
		s.audit = append(s.audit, *rec.Audit)
		if maxAudit > 0 && len(s.audit) > maxAudit {
			s.audit = append(s.audit[:0], s.audit[len(s.audit)-maxAudit:]...)
		}
	case rec.Job != nil:
		s.jobs = append(s.jobs, *rec.Job)
		if maxJobs > 0 && len(s.jobs) > maxJobs {
			s.jobs = append(s.jobs[:0], s.jobs[len(s.jobs)-maxJobs:]...)
		}
	}
}

// Cameras lists the cameras with recovered spent budget, sorted.
func (s *State) Cameras() []string {
	out := make([]string, 0, len(s.spent))
	for name := range s.spent {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SpentSegments returns the camera's spent-budget function as
// non-overlapping segments with absolute values (empty when the camera
// has no recorded charges). Adding each segment into a fresh ledger
// reproduces the function exactly.
func (s *State) SpentSegments(camera string) []Segment {
	m := s.spent[camera]
	if m == nil {
		return nil
	}
	return segmentsOf(m)
}

// Spent returns the spent value at one frame of one camera.
func (s *State) Spent(camera string, frame int64) float64 {
	m := s.spent[camera]
	if m == nil {
		return 0
	}
	return m.Get(frame)
}

// Audit returns the recovered audit entries in commit order.
func (s *State) Audit() []AuditRecord { return append([]AuditRecord(nil), s.audit...) }

// Jobs returns the retained terminal jobs in commit order.
func (s *State) Jobs() []JobRecord { return append([]JobRecord(nil), s.jobs...) }

// Charges returns the number of charge records folded into the state
// since its snapshot base.
func (s *State) Charges() int64 { return s.charges }

// segmentsOf exports a map's non-zero maximal segments. Spent-budget
// maps are zero outside the union of charged intervals, so the
// piecewise function is fully described by bounded segments.
func segmentsOf(m *intervalmap.Map) []Segment {
	if m.Breakpoints() == 0 {
		return nil
	}
	var out []Segment
	lo, hi := m.Bounds()
	m.Segments(lo, hi, func(s, e int64, v float64) {
		if v != 0 {
			out = append(out, Segment{Start: s, End: e, Eps: v})
		}
	})
	return out
}
