package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"
)

// ErrClosed is returned by Commit on a closed WAL.
var ErrClosed = errors.New("store: WAL closed")

// File is the WAL's storage handle — the subset of *os.File the log
// needs. Tests substitute faulty implementations (partial writes,
// failing fsyncs) to simulate crashes mid-commit.
type File interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// Options configure a WAL store.
type Options struct {
	// GroupCommit batches concurrent Commit calls into shared fsyncs:
	// a dedicated committer goroutine drains all pending batches,
	// appends them with one write and one fsync, and wakes every
	// waiter. Latency per commit is unchanged (one fsync away) but
	// throughput under N concurrent committers approaches N commits
	// per fsync. Off, every Commit pays its own fsync.
	GroupCommit bool
	// SnapshotEvery compacts the log automatically after this many
	// records since the last snapshot: the aggregate state is written
	// to snapshot.json and the WAL rolls to a new generation. 0 uses
	// 4096; negative disables automatic snapshots (Close still takes a
	// final one).
	SnapshotEvery int
	// MaxJobs bounds terminal job records retained in state and
	// snapshots (oldest dropped). 0 uses 1000.
	MaxJobs int
	// MaxAudit bounds audit entries retained in state and snapshots
	// (oldest dropped), so snapshots and recovery stay O(retention),
	// not O(lifetime queries). Spent budget is never bounded. 0 uses
	// 10000.
	MaxAudit int
	// WrapFile wraps the WAL file handle after open (fault injection
	// in tests). Nil uses the file directly.
	WrapFile func(File) File
	// Metrics holds optional append/fsync/batch instruments (see
	// Metrics); the zero value disables instrumentation.
	Metrics Metrics
}

func (o Options) withDefaults() Options {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 4096
	}
	if o.MaxJobs == 0 {
		o.MaxJobs = 1000
	}
	if o.MaxAudit == 0 {
		o.MaxAudit = 10000
	}
	return o
}

// snapshotFile is the on-disk snapshot format.
type snapshotFile struct {
	Version int                  `json:"version"`
	Gen     int64                `json:"gen"` // WAL generation the snapshot precedes
	TakenAt time.Time            `json:"taken_at"`
	Spent   map[string][]Segment `json:"spent"`
	Audit   []AuditRecord        `json:"audit,omitempty"`
	Jobs    []JobRecord          `json:"jobs,omitempty"`
}

const snapshotName = "snapshot.json"

func walName(gen int64) string { return fmt.Sprintf("wal-%08d.log", gen) }

// commitReq is one Commit call waiting for the group committer.
type commitReq struct {
	buf  []byte
	recs []Record
	done chan error
}

// WAL is the durable store: an append-only, CRC-framed, fsynced log
// with periodic snapshot/compaction. It implements Store and is safe
// for concurrent use.
type WAL struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        File
	gen      int64
	size     int64 // bytes of valid log (header + acked records)
	state    *State
	closing  bool
	fileOpen bool
	poisoned error // set after an unrecoverable I/O failure

	recsSinceSnap int64
	snapshots     int64
	lastSnapshot  time.Time
	lastSnapErr   error

	// Group commit plumbing.
	reqCh    chan *commitReq
	inflight sync.WaitGroup // Commit calls between admission and send
	loopDone sync.WaitGroup
}

// Open opens (creating if needed) the durable store in dir and
// recovers its state: the last snapshot, if any, plus a replay of the
// active WAL generation. A torn or corrupt log refuses to open with a
// *CorruptError (wrapped); Repair truncates it to the last valid
// record.
func Open(dir string, opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	state, gen, size, replayed, err := loadState(dir, opts.MaxJobs, opts.MaxAudit)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, walName(gen))
	if size == 0 {
		// No log yet for this generation: create it with the header.
		if err := writeFileSync(path, []byte(walMagic)); err != nil {
			return nil, err
		}
		if err := syncDir(dir); err != nil {
			return nil, err
		}
		size = int64(len(walMagic))
	}
	// Stale generations (from a crash mid-snapshot) are dead weight:
	// either superseded (older) or never referenced (newer).
	if stale, _ := filepath.Glob(filepath.Join(dir, "wal-*.log")); stale != nil {
		for _, p := range stale {
			if p != path {
				os.Remove(p)
			}
		}
	}
	osf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var f File = osf
	if opts.WrapFile != nil {
		f = opts.WrapFile(f)
	}
	w := &WAL{
		dir: dir, opts: opts,
		f: f, gen: gen, size: size,
		state: state, fileOpen: true,
		// Replayed records — of every type, not just charges — count
		// against the next auto-snapshot so a crash-loop cannot grow
		// the log without bound.
		recsSinceSnap: replayed,
	}
	if opts.GroupCommit {
		w.reqCh = make(chan *commitReq, 256)
		w.loopDone.Add(1)
		go w.commitLoop()
	}
	return w, nil
}

// loadState loads dir's durable state: snapshot (if present) plus a
// full replay of the active WAL generation. It returns the state, the
// active generation, the WAL's byte size (0 when the file does not
// exist yet), and the number of records replayed from the WAL.
func loadState(dir string, maxJobs, maxAudit int) (*State, int64, int64, int64, error) {
	state := NewState()
	var gen int64
	snapPath := filepath.Join(dir, snapshotName)
	if b, err := os.ReadFile(snapPath); err == nil {
		var sf snapshotFile
		if err := json.Unmarshal(b, &sf); err != nil {
			return nil, 0, 0, 0, fmt.Errorf("store: corrupt snapshot %s: %w", snapPath, err)
		}
		gen = sf.Gen
		for cam, segs := range sf.Spent {
			for _, seg := range segs {
				state.apply(Record{Charge: &ChargeRecord{
					Camera: cam, Start: seg.Start, End: seg.End, Eps: seg.Eps,
				}}, maxJobs, maxAudit)
			}
		}
		state.charges = 0 // snapshot segments are the base, not new records
		state.audit = append(state.audit, sf.Audit...)
		state.jobs = append(state.jobs, sf.Jobs...)
	} else if !os.IsNotExist(err) {
		return nil, 0, 0, 0, fmt.Errorf("store: %w", err)
	}

	path := filepath.Join(dir, walName(gen))
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return state, gen, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("store: %w", err)
	}
	recs, off, derr := DecodeAll(data)
	if derr != nil {
		var ce *CorruptError
		if errors.As(derr, &ce) {
			ce.Path = path
		}
		return nil, 0, 0, 0, derr
	}
	for _, rec := range recs {
		state.apply(rec, maxJobs, maxAudit)
	}
	return state, gen, off, int64(len(recs)), nil
}

// ReadState loads the durable state of dir (snapshot + WAL replay)
// without opening it for writing — for inspection and tests. maxJobs
// as in Options; 0 uses the default.
func ReadState(dir string, maxJobs int) (*State, error) {
	if maxJobs == 0 {
		maxJobs = 1000
	}
	state, _, _, _, err := loadState(dir, maxJobs, 10000)
	return state, err
}

// Repair truncates dir's active WAL to its last valid record,
// discarding a torn or corrupt tail, and returns the number of bytes
// dropped. A WAL that decodes cleanly is left untouched.
func Repair(dir string) (dropped int64, err error) {
	gen := int64(0)
	if b, rerr := os.ReadFile(filepath.Join(dir, snapshotName)); rerr == nil {
		var sf snapshotFile
		if jerr := json.Unmarshal(b, &sf); jerr == nil {
			gen = sf.Gen
		}
	}
	path := filepath.Join(dir, walName(gen))
	data, rerr := os.ReadFile(path)
	if os.IsNotExist(rerr) {
		return 0, nil
	}
	if rerr != nil {
		return 0, fmt.Errorf("store: %w", rerr)
	}
	_, off, derr := DecodeAll(data)
	if derr == nil {
		return 0, nil
	}
	if off < int64(len(walMagic)) {
		// Even the header is bad: reset to an empty log.
		if err := writeFileSync(path, []byte(walMagic)); err != nil {
			return 0, err
		}
		return int64(len(data)) - int64(len(walMagic)), nil
	}
	if err := os.Truncate(path, off); err != nil {
		return 0, fmt.Errorf("store: repair truncate: %w", err)
	}
	if f, ferr := os.OpenFile(path, os.O_WRONLY, 0); ferr == nil {
		f.Sync()
		f.Close()
	}
	return int64(len(data)) - off, nil
}

// Commit implements Store: it durably appends records as one unit and
// returns once they are fsynced. With GroupCommit, concurrent commits
// share write+fsync batches.
func (w *WAL) Commit(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	buf, err := encodeRecords(recs)
	if err != nil {
		return err
	}
	if w.reqCh == nil {
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.closing {
			return ErrClosed
		}
		return w.appendLocked(buf, recs)
	}
	w.mu.Lock()
	if w.closing {
		w.mu.Unlock()
		return ErrClosed
	}
	w.inflight.Add(1)
	w.mu.Unlock()
	req := &commitReq{buf: buf, recs: recs, done: make(chan error, 1)}
	w.reqCh <- req
	w.inflight.Done()
	return <-req.done
}

// maxGroupBatch bounds records merged into one group-commit write so a
// burst cannot build an unboundedly large buffer.
const maxGroupBatch = 512

// maxBatchYields bounds how many scheduler yields the committer spends
// waiting for follower commits before fsyncing a batch.
const maxBatchYields = 4

// commitLoop is the group committer: it drains every pending commit,
// appends them with one write and one fsync, and wakes all waiters.
func (w *WAL) commitLoop() {
	defer w.loopDone.Done()
	for req := range w.reqCh {
		batch := []*commitReq{req}
		buf := req.buf
		n := len(req.recs)
		// Collect followers. Concurrent committers woken by the
		// previous batch's ack need a few scheduler quanta to
		// re-enqueue, so an empty channel doesn't end the batch
		// immediately: yield a bounded number of times first. The
		// yields cost ~a microsecond against the fsync's hundreds,
		// and turn lockstep submitters into full batches.
		yields := 0
	drain:
		for n < maxGroupBatch {
			select {
			case more, ok := <-w.reqCh:
				if !ok {
					break drain
				}
				batch = append(batch, more)
				buf = append(buf, more.buf...)
				n += len(more.recs)
				yields = 0
			default:
				if yields >= maxBatchYields {
					break drain
				}
				yields++
				runtime.Gosched()
			}
		}
		var recs []Record
		if len(batch) == 1 {
			recs = req.recs
		} else {
			recs = make([]Record, 0, n)
			for _, b := range batch {
				recs = append(recs, b.recs...)
			}
		}
		w.mu.Lock()
		err := w.appendLocked(buf, recs)
		w.mu.Unlock()
		for _, b := range batch {
			b.done <- err
		}
	}
}

// appendLocked writes one framed buffer, fsyncs it, and folds the
// records into the mirror state. On a failed or short write it rolls
// the file back to the last acked offset so later commits cannot
// interleave with a torn record. Caller holds w.mu.
func (w *WAL) appendLocked(buf []byte, recs []Record) error {
	if !w.fileOpen {
		return ErrClosed
	}
	if w.poisoned != nil {
		return w.poisoned
	}
	start := time.Now()
	n, err := w.f.Write(buf)
	if err != nil || n < len(buf) {
		if terr := w.f.Truncate(w.size); terr != nil {
			w.poisoned = fmt.Errorf("store: WAL unusable after torn append (truncate failed: %v)", terr)
		}
		if err == nil {
			err = io.ErrShortWrite
		}
		return fmt.Errorf("store: wal append: %w", err)
	}
	syncStart := time.Now()
	if err := w.f.Sync(); err != nil {
		// After a failed fsync the kernel may have dropped the dirty
		// pages without writing them; the log's on-disk tail is
		// unknowable. Refuse further commits — recovery on the next
		// open resolves what actually made it to disk.
		w.poisoned = fmt.Errorf("store: wal fsync failed, store disabled: %w", err)
		return w.poisoned
	}
	now := time.Now()
	w.opts.Metrics.FsyncSeconds.Observe(now.Sub(syncStart).Seconds())
	w.opts.Metrics.AppendSeconds.Observe(now.Sub(start).Seconds())
	w.opts.Metrics.CommitRecords.Observe(float64(len(recs)))
	w.size += int64(len(buf))
	for _, rec := range recs {
		w.state.apply(rec, w.opts.MaxJobs, w.opts.MaxAudit)
	}
	w.recsSinceSnap += int64(len(recs))
	if w.opts.SnapshotEvery > 0 && w.recsSinceSnap >= int64(w.opts.SnapshotEvery) {
		// The commit is already durable; a failed compaction must not
		// fail it. Remember the error for Info and retry next time.
		w.lastSnapErr = w.snapshotLocked()
	}
	return nil
}

// Snapshot writes the aggregate state to snapshot.json and rolls the
// WAL to a fresh generation (compaction): per-camera spent budget
// collapses to its piecewise segments no matter how many charges
// produced it.
func (w *WAL) Snapshot() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.fileOpen {
		return ErrClosed
	}
	return w.snapshotLocked()
}

// snapshotLocked implements Snapshot. Caller holds w.mu. Ordering, for
// crash safety: (1) create the next generation's empty WAL, (2) fsync
// the snapshot naming that generation into place, (3) switch handles
// and delete the old generation. A crash after (1) recovers from the
// old snapshot + old WAL (the stray file is removed on open); a crash
// after (2) recovers from the new snapshot + empty new WAL.
func (w *WAL) snapshotLocked() error {
	newGen := w.gen + 1
	newPath := filepath.Join(w.dir, walName(newGen))
	if err := writeFileSync(newPath, []byte(walMagic)); err != nil {
		return err
	}
	sf := snapshotFile{
		Version: 1,
		Gen:     newGen,
		TakenAt: time.Now(),
		Spent:   map[string][]Segment{},
		Audit:   w.state.audit,
		Jobs:    w.state.jobs,
	}
	for cam, m := range w.state.spent {
		if segs := segmentsOf(m); len(segs) > 0 {
			sf.Spent[cam] = segs
		}
	}
	b, err := json.Marshal(sf)
	if err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	tmp := filepath.Join(w.dir, snapshotName+".tmp")
	if err := writeFileSync(tmp, b); err != nil {
		os.Remove(newPath)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, snapshotName)); err != nil {
		os.Remove(tmp)
		os.Remove(newPath)
		return fmt.Errorf("store: %w", err)
	}
	// Past the rename there is no going back: recovery may already
	// resolve to the new generation, so any failure to finish the
	// switch must poison the store — acking further commits into the
	// old generation would silently lose them on the next open.
	if err := syncDir(w.dir); err != nil {
		w.poisoned = fmt.Errorf("store: WAL disabled, snapshot switch incomplete: %w", err)
		return w.poisoned
	}
	// The snapshot is durable: switch to the new generation.
	oldPath := filepath.Join(w.dir, walName(w.gen))
	w.f.Close()
	osf, err := os.OpenFile(newPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		w.fileOpen = false
		return fmt.Errorf("store: reopen after snapshot: %w", err)
	}
	var f File = osf
	if w.opts.WrapFile != nil {
		f = w.opts.WrapFile(f)
	}
	w.f = f
	w.gen = newGen
	w.size = int64(len(walMagic))
	w.state.charges = 0
	w.recsSinceSnap = 0
	w.poisoned = nil
	os.Remove(oldPath)
	w.snapshots++
	w.lastSnapshot = sf.TakenAt
	w.lastSnapErr = nil
	return nil
}

// Close drains in-flight commits, takes a final snapshot (graceful-
// shutdown compaction, so the next open recovers instantly), and
// closes the log. Commits submitted after Close starts fail with
// ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closing {
		w.mu.Unlock()
		w.loopDone.Wait()
		return nil
	}
	w.closing = true
	w.mu.Unlock()
	if w.reqCh != nil {
		w.inflight.Wait() // every admitted Commit has sent its request
		close(w.reqCh)
		w.loopDone.Wait() // committer drained and acked everything
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if w.fileOpen && w.poisoned == nil {
		err = w.snapshotLocked()
	}
	if w.fileOpen {
		if cerr := w.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		w.fileOpen = false
	}
	return err
}

// Info is a point-in-time description of the store, for the server's
// state-inspection endpoint.
type Info struct {
	Dir                  string
	Gen                  int64
	WALBytes             int64
	RecordsSinceSnapshot int64
	Snapshots            int64
	LastSnapshot         time.Time
	LastSnapshotError    string
	Cameras              int
	Jobs                 int
	AuditEntries         int
}

// Info returns a snapshot of the store's status.
func (w *WAL) Info() Info {
	w.mu.Lock()
	defer w.mu.Unlock()
	info := Info{
		Dir:                  w.dir,
		Gen:                  w.gen,
		WALBytes:             w.size,
		RecordsSinceSnapshot: w.recsSinceSnap,
		Snapshots:            w.snapshots,
		LastSnapshot:         w.lastSnapshot,
		Cameras:              len(w.state.spent),
		Jobs:                 len(w.state.jobs),
		AuditEntries:         len(w.state.audit),
	}
	if w.lastSnapErr != nil {
		info.LastSnapshotError = w.lastSnapErr.Error()
	}
	return info
}

// SpentSegments returns a camera's recovered/accumulated spent-budget
// segments (see State.SpentSegments).
func (w *WAL) SpentSegments(camera string) []Segment {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state.SpentSegments(camera)
}

// Cameras lists cameras with recorded charges.
func (w *WAL) Cameras() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state.Cameras()
}

// AuditEntries returns the recovered-and-since-committed audit log.
func (w *WAL) AuditEntries() []AuditRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state.Audit()
}

// Jobs returns the retained terminal job records.
func (w *WAL) Jobs() []JobRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state.Jobs()
}

// writeFileSync writes path atomically enough for our needs: full
// write then fsync. Callers needing atomic replacement write to a tmp
// name and rename.
func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creations within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
