package store

import (
	"errors"
	"fmt"
	"testing"
)

// faultyFile wraps the WAL's file handle and fails on command,
// simulating a crash mid-commit: short writes (torn records), write
// errors, failing fsyncs, and a failing rollback truncate (so the torn
// bytes stay on disk, as after a power loss).
type faultyFile struct {
	File
	// failWriteAfter injects a write error after passing this many
	// bytes of the next write through (-1 = writes succeed).
	failWriteAfter int
	// failSync makes Sync return an error (the bytes of prior writes
	// may or may not be durable — here they are, which recovery must
	// tolerate).
	failSync bool
	// failTruncate makes the post-error rollback fail, leaving the
	// torn record on disk.
	failTruncate bool
}

var errInjected = errors.New("injected I/O failure")

func (f *faultyFile) Write(p []byte) (int, error) {
	if f.failWriteAfter < 0 {
		return f.File.Write(p)
	}
	n := f.failWriteAfter
	if n > len(p) {
		n = len(p)
	}
	if n > 0 {
		if _, err := f.File.Write(p[:n]); err != nil {
			return 0, err
		}
		f.File.Sync() // make the torn prefix durable, like a power cut mid-page
	}
	return n, errInjected
}

func (f *faultyFile) Sync() error {
	if f.failSync {
		return errInjected
	}
	return f.File.Sync()
}

func (f *faultyFile) Truncate(size int64) error {
	if f.failTruncate {
		return errInjected
	}
	return f.File.Truncate(size)
}

// TestCrashRecoveryMatrix is the satellite crash matrix: commit some
// charges, inject an I/O failure mid-commit, "crash" (abandon the WAL
// without Close), restart from the same directory (repairing if the
// tail is torn), and assert the charge-at-least-once invariant — the
// recovered remaining budget of every frame never *exceeds* what the
// pre-crash process acknowledged, i.e. recovered spent >= acked spent.
func TestCrashRecoveryMatrix(t *testing.T) {
	const eps = 10.0
	cases := []struct {
		name  string
		fault func(*faultyFile)
	}{
		{"write-fails-immediately", func(f *faultyFile) { f.failWriteAfter = 0 }},
		{"write-torn-midrecord", func(f *faultyFile) { f.failWriteAfter = 13; f.failTruncate = true }},
		{"write-torn-rollback-ok", func(f *faultyFile) { f.failWriteAfter = 13 }},
		{"fsync-fails-bytes-durable", func(f *faultyFile) { f.failSync = true }},
	}
	for _, group := range []bool{false, true} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("group=%v/%s", group, tc.name), func(t *testing.T) {
				dir := t.TempDir()
				var ff *faultyFile
				w, err := Open(dir, Options{
					GroupCommit: group,
					WrapFile: func(f File) File {
						ff = &faultyFile{File: f, failWriteAfter: -1}
						return ff
					},
				})
				if err != nil {
					t.Fatal(err)
				}

				// Acked spent: only charges whose Commit returned nil.
				acked := map[int64]float64{}
				commit := func(s, e int64, c float64) bool {
					if err := w.Commit(charge("camA", s, e, c)); err != nil {
						return false
					}
					for fr := s; fr < e; fr++ {
						acked[fr] += c
					}
					return true
				}
				for i := int64(0); i < 5; i++ {
					if !commit(i*10, i*10+20, 0.5) {
						t.Fatal("healthy commit failed")
					}
				}
				tc.fault(ff)
				if commit(0, 100, 1.0) {
					t.Fatal("faulty commit unexpectedly acked")
				}

				// Crash: abandon w. Restart, repairing a torn tail if
				// the store refuses to open.
				w2, err := Open(dir, Options{})
				if err != nil {
					var ce *CorruptError
					if !errors.As(err, &ce) {
						t.Fatalf("reopen: %v", err)
					}
					if _, err := Repair(dir); err != nil {
						t.Fatalf("repair: %v", err)
					}
					if w2, err = Open(dir, Options{}); err != nil {
						t.Fatalf("reopen after repair: %v", err)
					}
				}
				defer w2.Close()
				st, err := ReadState(dir, 0)
				if err != nil {
					t.Fatal(err)
				}
				for fr := int64(0); fr < 120; fr++ {
					recovered := st.Spent("camA", fr)
					if recovered < acked[fr] {
						t.Fatalf("frame %d: recovered spent %v < acked %v — restart refilled budget (remaining %v > %v)",
							fr, recovered, acked[fr], eps-recovered, eps-acked[fr])
					}
				}
				// The store self-heals (rolled back) or poisoned
				// itself; either way the restarted store must accept
				// new commits.
				if err := w2.Commit(charge("camA", 0, 1, 0.1)); err != nil {
					t.Fatalf("post-recovery commit: %v", err)
				}
			})
		}
	}
}

// TestFaultyCommitThenHealedCommit: after a rolled-back torn write the
// same WAL (no restart) must keep working, and the failed commit's
// bytes must not corrupt later records.
func TestFaultyCommitThenHealedCommit(t *testing.T) {
	dir := t.TempDir()
	var ff *faultyFile
	w, err := Open(dir, Options{
		WrapFile: func(f File) File {
			ff = &faultyFile{File: f, failWriteAfter: -1}
			return ff
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(charge("camA", 0, 10, 0.5)); err != nil {
		t.Fatal(err)
	}
	ff.failWriteAfter = 7 // torn write, rollback succeeds
	if err := w.Commit(charge("camA", 0, 10, 1.0)); err == nil {
		t.Fatal("faulty commit acked")
	}
	ff.failWriteAfter = -1
	if err := w.Commit(charge("camA", 0, 10, 0.25)); err != nil {
		t.Fatalf("healed commit: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := ReadState(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Spent("camA", 5); got != 0.75 {
		t.Errorf("spent = %v, want 0.75 (0.5 + 0.25, failed 1.0 rolled back)", got)
	}
}
