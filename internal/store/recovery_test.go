package store_test

import (
	"errors"
	"fmt"
	"testing"

	"privid/internal/store"
	"privid/internal/store/storetest"
)

// The faulty-File injector itself lives in storetest so the sim chaos
// layer can reuse it; these tests exercise it against the real WAL.

func chargeRec(cam string, s, e int64, eps float64) store.Record {
	return store.Record{Charge: &store.ChargeRecord{Camera: cam, Start: s, End: e, Eps: eps, Query: "q"}}
}

// TestCrashRecoveryMatrix is the satellite crash matrix: commit some
// charges, inject an I/O failure mid-commit, "crash" (abandon the WAL
// without Close), restart from the same directory (repairing if the
// tail is torn), and assert the charge-at-least-once invariant — the
// recovered remaining budget of every frame never *exceeds* what the
// pre-crash process acknowledged, i.e. recovered spent >= acked spent.
func TestCrashRecoveryMatrix(t *testing.T) {
	const eps = 10.0
	cases := []struct {
		name  string
		fault func(*storetest.FaultyFile)
	}{
		{"write-fails-immediately", func(f *storetest.FaultyFile) { f.TearNextWrite(0) }},
		{"write-torn-midrecord", func(f *storetest.FaultyFile) {
			f.Mu.Lock()
			f.FailWriteAfter = 13
			f.FailTruncate = true
			f.Mu.Unlock()
		}},
		{"write-torn-rollback-ok", func(f *storetest.FaultyFile) { f.TearNextWrite(13) }},
		{"fsync-fails-bytes-durable", func(f *storetest.FaultyFile) {
			f.Mu.Lock()
			f.FailSync = true
			f.Mu.Unlock()
		}},
	}
	for _, group := range []bool{false, true} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("group=%v/%s", group, tc.name), func(t *testing.T) {
				dir := t.TempDir()
				var ff *storetest.FaultyFile
				w, err := store.Open(dir, store.Options{
					GroupCommit: group,
					WrapFile: func(f store.File) store.File {
						ff = storetest.Wrap(f)
						return ff
					},
				})
				if err != nil {
					t.Fatal(err)
				}

				// Acked spent: only charges whose Commit returned nil.
				acked := map[int64]float64{}
				commit := func(s, e int64, c float64) bool {
					if err := w.Commit(chargeRec("camA", s, e, c)); err != nil {
						return false
					}
					for fr := s; fr < e; fr++ {
						acked[fr] += c
					}
					return true
				}
				for i := int64(0); i < 5; i++ {
					if !commit(i*10, i*10+20, 0.5) {
						t.Fatal("healthy commit failed")
					}
				}
				tc.fault(ff)
				if commit(0, 100, 1.0) {
					t.Fatal("faulty commit unexpectedly acked")
				}

				// Crash: abandon w. Restart, repairing a torn tail if
				// the store refuses to open.
				w2, err := store.Open(dir, store.Options{})
				if err != nil {
					var ce *store.CorruptError
					if !errors.As(err, &ce) {
						t.Fatalf("reopen: %v", err)
					}
					if _, err := store.Repair(dir); err != nil {
						t.Fatalf("repair: %v", err)
					}
					if w2, err = store.Open(dir, store.Options{}); err != nil {
						t.Fatalf("reopen after repair: %v", err)
					}
				}
				defer w2.Close()
				st, err := store.ReadState(dir, 0)
				if err != nil {
					t.Fatal(err)
				}
				for fr := int64(0); fr < 120; fr++ {
					recovered := st.Spent("camA", fr)
					if recovered < acked[fr] {
						t.Fatalf("frame %d: recovered spent %v < acked %v — restart refilled budget (remaining %v > %v)",
							fr, recovered, acked[fr], eps-recovered, eps-acked[fr])
					}
				}
				// The store self-heals (rolled back) or poisoned
				// itself; either way the restarted store must accept
				// new commits.
				if err := w2.Commit(chargeRec("camA", 0, 1, 0.1)); err != nil {
					t.Fatalf("post-recovery commit: %v", err)
				}
			})
		}
	}
}

// TestFaultyCommitThenHealedCommit: after a rolled-back torn write the
// same WAL (no restart) must keep working, and the failed commit's
// bytes must not corrupt later records.
func TestFaultyCommitThenHealedCommit(t *testing.T) {
	dir := t.TempDir()
	var ff *storetest.FaultyFile
	w, err := store.Open(dir, store.Options{
		WrapFile: func(f store.File) store.File {
			ff = storetest.Wrap(f)
			return ff
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(chargeRec("camA", 0, 10, 0.5)); err != nil {
		t.Fatal(err)
	}
	ff.TearNextWrite(7) // torn write, rollback succeeds
	if err := w.Commit(chargeRec("camA", 0, 10, 1.0)); err == nil {
		t.Fatal("faulty commit acked")
	}
	ff.Heal()
	if err := w.Commit(chargeRec("camA", 0, 10, 0.25)); err != nil {
		t.Fatalf("healed commit: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := store.ReadState(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Spent("camA", 5); got != 0.75 {
		t.Errorf("spent = %v, want 0.75 (0.5 + 0.25, failed 1.0 rolled back)", got)
	}
}
