// Package storetest exports the WAL fault injector used by the
// crash-recovery matrix, so other packages (internal/sim's chaos
// layer, future distributed-store tests) can tear writes, fail fsyncs
// and break rollbacks without duplicating it.
//
// Install a FaultyFile through store.Options.WrapFile (or
// core.Options.WrapWALFile, which plumbs through to it):
//
//	var ff *storetest.FaultyFile
//	w, _ := store.Open(dir, store.Options{
//		WrapFile: func(f store.File) store.File {
//			ff = storetest.Wrap(f)
//			return ff
//		},
//	})
//	ff.TearNextWrite(13) // next commit tears after 13 bytes
//
// The injector is safe for concurrent use: the engine's group-commit
// goroutine writes from its own goroutine while a chaos controller
// flips fault modes.
package storetest

import (
	"errors"
	"sync"

	"privid/internal/store"
)

// ErrInjected is the error every injected fault returns, so tests can
// distinguish injected failures from real I/O errors.
var ErrInjected = errors.New("injected I/O failure")

// FaultyFile wraps a WAL file handle and fails on command, simulating
// a crash mid-commit: short writes (torn records), write errors,
// failing fsyncs, and a failing rollback truncate (so the torn bytes
// stay on disk, as after a power loss).
//
// The zero fault state passes everything through. Mutate the fault
// mode with the setter methods (concurrency-safe) or — for
// single-goroutine tests — the exported fields guarded by Mu.
type FaultyFile struct {
	store.File

	// Mu guards the fault-mode fields below.
	Mu sync.Mutex
	// FailWriteAfter injects a write error after passing this many
	// bytes of the next write through (-1 = writes succeed). The torn
	// prefix is fsynced, like a power cut mid-page.
	FailWriteAfter int
	// FailSync makes Sync return an error (the bytes of prior writes
	// may or may not be durable — here they are, which recovery must
	// tolerate).
	FailSync bool
	// FailTruncate makes the post-error rollback fail, leaving the
	// torn record on disk.
	FailTruncate bool
}

// Wrap returns a healthy FaultyFile around f.
func Wrap(f store.File) *FaultyFile {
	return &FaultyFile{File: f, FailWriteAfter: -1}
}

// TearNextWrite makes the next write tear after n bytes (the torn
// prefix is made durable) and return ErrInjected.
func (f *FaultyFile) TearNextWrite(n int) {
	f.Mu.Lock()
	f.FailWriteAfter = n
	f.Mu.Unlock()
}

// FailAll simulates a dying disk: every write tears at zero bytes,
// every fsync fails, and rollbacks fail too. Used by chaos crashes to
// guarantee no further commit can be acked before the process is
// abandoned.
func (f *FaultyFile) FailAll() {
	f.Mu.Lock()
	f.FailWriteAfter = 0
	f.FailSync = true
	f.FailTruncate = true
	f.Mu.Unlock()
}

// Heal restores pass-through behavior.
func (f *FaultyFile) Heal() {
	f.Mu.Lock()
	f.FailWriteAfter = -1
	f.FailSync = false
	f.FailTruncate = false
	f.Mu.Unlock()
}

func (f *FaultyFile) Write(p []byte) (int, error) {
	f.Mu.Lock()
	after := f.FailWriteAfter
	f.Mu.Unlock()
	if after < 0 {
		return f.File.Write(p)
	}
	n := after
	if n > len(p) {
		n = len(p)
	}
	if n > 0 {
		if _, err := f.File.Write(p[:n]); err != nil {
			return 0, err
		}
		f.File.Sync() // make the torn prefix durable, like a power cut mid-page
	}
	return n, ErrInjected
}

func (f *FaultyFile) Sync() error {
	f.Mu.Lock()
	fail := f.FailSync
	f.Mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.File.Sync()
}

func (f *FaultyFile) Truncate(size int64) error {
	f.Mu.Lock()
	fail := f.FailTruncate
	f.Mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.File.Truncate(size)
}
