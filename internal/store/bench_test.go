package store_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"privid/internal/dp"
	"privid/internal/store"
	"privid/internal/vtime"
)

// The LedgerCommit benchmarks measure the cost of durability on the
// admission hot path: 16 concurrent submitters (the scheduler's
// worker-pool scale), each owning one camera's ledger with a commit
// hook into a shared store, admitting one charge per iteration.
//
//	Null       — store.NullStore: the pre-durability in-memory cost.
//	WAL        — WAL with one fsync per charge (naive durability).
//	WALGrouped — WAL with group commit: concurrent charges batch into
//	             shared fsyncs, amortizing the sync across submitters.

const benchSubmitters = 16

func benchLedgerCommit(b *testing.B, mk func(b *testing.B) store.Store) {
	st := mk(b)
	defer st.Close()
	var iter int64
	var wg sync.WaitGroup
	b.ResetTimer()
	for s := 0; s < benchSubmitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			led := dp.NewLedger("cam", 1e18) // never exhausts
			led.SetCommitHook(func(camera string, charges []dp.Charge) error {
				recs := make([]store.Record, len(charges))
				for i, c := range charges {
					recs[i] = store.Record{Charge: &store.ChargeRecord{
						Camera: camera,
						Start:  c.Interval.Start,
						End:    c.Interval.End,
						Eps:    c.Eps,
						Query:  "bench",
					}}
				}
				return st.Commit(recs...)
			})
			charges := []dp.Charge{{Interval: vtime.NewInterval(0, 100), Eps: 1e-9}}
			for atomic.AddInt64(&iter, 1) <= int64(b.N) {
				if err := led.Admit(charges, 0); err != nil {
					b.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
}

func BenchmarkLedgerCommit_Null(b *testing.B) {
	benchLedgerCommit(b, func(b *testing.B) store.Store { return store.NullStore{} })
}

func BenchmarkLedgerCommit_WAL(b *testing.B) {
	benchLedgerCommit(b, func(b *testing.B) store.Store {
		w, err := store.Open(b.TempDir(), store.Options{SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		return w
	})
}

func BenchmarkLedgerCommit_WALGrouped(b *testing.B) {
	benchLedgerCommit(b, func(b *testing.B) store.Store {
		w, err := store.Open(b.TempDir(), store.Options{GroupCommit: true, SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		return w
	})
}
