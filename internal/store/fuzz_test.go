package store

import (
	"bytes"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the WAL decoder. Whatever a
// half-written disk hands us, DecodeAll must never panic, must report
// a valid-prefix offset within bounds, and the prefix it blesses must
// itself decode cleanly (Repair truncates to exactly that offset).
func FuzzWALDecode(f *testing.F) {
	// Seed corpus: a well-formed log, truncations of it, and noise.
	valid, err := encodeRecords([]Record{
		{Charge: &ChargeRecord{Camera: "camA", Start: 0, End: 100, Eps: 0.5, Query: "q"}},
		{Audit: &AuditRecord{Cameras: []string{"camA"}, Releases: 1, EpsilonSpent: 0.5}},
		{Job: &JobRecord{ID: "q-000001", Analyst: "a", State: "done"}},
	})
	if err != nil {
		f.Fatal(err)
	}
	full := append([]byte(walMagic), valid...)
	f.Add(full)
	f.Add(full[:len(full)-3])
	f.Add(full[:len(walMagic)])
	f.Add([]byte(walMagic))
	f.Add([]byte{})
	f.Add([]byte("not a wal at all"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, off, err := DecodeAll(data)
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("valid-prefix offset %d out of bounds [0,%d]", off, len(data))
		}
		if err == nil && off != int64(len(data)) {
			t.Fatalf("clean decode stopped early: off=%d len=%d", off, len(data))
		}
		if err != nil && off >= int64(len(walMagic)) {
			// The blessed prefix must decode cleanly with the same
			// records — this is what Repair leaves behind.
			recs2, off2, err2 := DecodeAll(data[:off])
			if err2 != nil {
				t.Fatalf("blessed prefix does not re-decode: %v", err2)
			}
			if off2 != off || len(recs2) != len(recs) {
				t.Fatalf("prefix re-decode mismatch: off %d vs %d, recs %d vs %d",
					off2, off, len(recs2), len(recs))
			}
		}
	})
}
