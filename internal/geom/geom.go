// Package geom provides the planar geometry used by the video, CV and
// masking substrates: points, axis-aligned rectangles, IoU, and the
// fixed pixel grids (10×10 px boxes, Appendix F) that masks and
// persistence heatmaps are defined over.
package geom

import (
	"fmt"
	"math"
)

// Point is a position in frame coordinates (pixels, origin top-left).
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Rect is an axis-aligned rectangle [X0,X1)×[Y0,Y1) in frame
// coordinates. A rectangle with X1<=X0 or Y1<=Y0 is empty.
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// RectAround returns the w×h rectangle centered at c.
func RectAround(c Point, w, h float64) Rect {
	return Rect{c.X - w/2, c.Y - h/2, c.X + w/2, c.Y + h/2}
}

// Empty reports whether the rectangle has no area.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// W returns the width (0 if empty).
func (r Rect) W() float64 {
	if r.X1 <= r.X0 {
		return 0
	}
	return r.X1 - r.X0
}

// H returns the height (0 if empty).
func (r Rect) H() float64 {
	if r.Y1 <= r.Y0 {
		return 0
	}
	return r.Y1 - r.Y0
}

// Area returns the area of the rectangle (0 if empty).
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the centroid of the rectangle.
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Contains reports whether p lies inside the rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

// Intersect returns the overlap of two rectangles (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{
		X0: math.Max(r.X0, o.X0),
		Y0: math.Max(r.Y0, o.Y0),
		X1: math.Min(r.X1, o.X1),
		Y1: math.Min(r.Y1, o.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle covering both.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Rect{
		X0: math.Min(r.X0, o.X0),
		Y0: math.Min(r.Y0, o.Y0),
		X1: math.Max(r.X1, o.X1),
		Y1: math.Max(r.Y1, o.Y1),
	}
}

// IoU returns the intersection-over-union of two rectangles, the
// association metric used by the SORT-style tracker.
func (r Rect) IoU(o Rect) float64 {
	inter := r.Intersect(o).Area()
	if inter <= 0 {
		return 0
	}
	union := r.Area() + o.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// CoverFraction returns the fraction of r's area covered by o
// (0 when r is empty). Masking uses this to decide whether an object
// remains visible once mask pixels are blacked out.
func (r Rect) CoverFraction(o Rect) float64 {
	a := r.Area()
	if a <= 0 {
		return 0
	}
	return r.Intersect(o).Area() / a
}

// Translate returns r shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.X0 + d.X, r.Y0 + d.Y, r.X1 + d.X, r.Y1 + d.Y}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("(%.1f,%.1f)-(%.1f,%.1f)", r.X0, r.Y0, r.X1, r.Y1)
}

// Cell identifies one box of a Grid by column and row.
type Cell struct {
	Col, Row int
}

// Grid divides a W×H pixel frame into fixed-size boxes (Appendix F uses
// 10×10 px boxes). Cells on the right/bottom edge may be smaller when
// the frame size is not a multiple of the box size.
type Grid struct {
	FrameW, FrameH float64 // frame dimensions in pixels
	BoxW, BoxH     float64 // box dimensions in pixels
}

// NewGrid returns a grid of boxW×boxH boxes over a frameW×frameH frame.
func NewGrid(frameW, frameH, boxW, boxH float64) Grid {
	return Grid{FrameW: frameW, FrameH: frameH, BoxW: boxW, BoxH: boxH}
}

// Cols returns the number of columns in the grid.
func (g Grid) Cols() int {
	if g.BoxW <= 0 {
		return 0
	}
	return int(math.Ceil(g.FrameW / g.BoxW))
}

// Rows returns the number of rows in the grid.
func (g Grid) Rows() int {
	if g.BoxH <= 0 {
		return 0
	}
	return int(math.Ceil(g.FrameH / g.BoxH))
}

// NumCells returns the total number of cells.
func (g Grid) NumCells() int { return g.Cols() * g.Rows() }

// Index returns the linear index of c (row-major), or -1 if out of range.
func (g Grid) Index(c Cell) int {
	cols, rows := g.Cols(), g.Rows()
	if c.Col < 0 || c.Col >= cols || c.Row < 0 || c.Row >= rows {
		return -1
	}
	return c.Row*cols + c.Col
}

// CellAt returns the cell of linear index i.
func (g Grid) CellAt(i int) Cell {
	cols := g.Cols()
	if cols == 0 {
		return Cell{}
	}
	return Cell{Col: i % cols, Row: i / cols}
}

// CellRect returns the pixel rectangle of cell c, clipped to the frame.
func (g Grid) CellRect(c Cell) Rect {
	r := Rect{
		X0: float64(c.Col) * g.BoxW,
		Y0: float64(c.Row) * g.BoxH,
		X1: float64(c.Col+1) * g.BoxW,
		Y1: float64(c.Row+1) * g.BoxH,
	}
	return r.Intersect(Rect{0, 0, g.FrameW, g.FrameH})
}

// CellsFor returns the cells intersected by r (clipped to the frame).
func (g Grid) CellsFor(r Rect) []Cell {
	r = r.Intersect(Rect{0, 0, g.FrameW, g.FrameH})
	if r.Empty() || g.BoxW <= 0 || g.BoxH <= 0 {
		return nil
	}
	c0 := int(r.X0 / g.BoxW)
	r0 := int(r.Y0 / g.BoxH)
	c1 := int(math.Ceil(r.X1/g.BoxW)) - 1
	r1 := int(math.Ceil(r.Y1/g.BoxH)) - 1
	c1 = minInt(c1, g.Cols()-1)
	r1 = minInt(r1, g.Rows()-1)
	var cells []Cell
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			cells = append(cells, Cell{Col: col, Row: row})
		}
	}
	return cells
}

// CellOf returns the cell containing point p, or ok=false if p is
// outside the frame.
func (g Grid) CellOf(p Point) (Cell, bool) {
	if p.X < 0 || p.Y < 0 || p.X >= g.FrameW || p.Y >= g.FrameH || g.BoxW <= 0 || g.BoxH <= 0 {
		return Cell{}, false
	}
	return Cell{Col: int(p.X / g.BoxW), Row: int(p.Y / g.BoxH)}, true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
