package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{4, 6}
	if got := p.Add(q); got != (Point{5, 8}) {
		t.Errorf("Add=%v", got)
	}
	if got := q.Sub(p); got != (Point{3, 4}) {
		t.Errorf("Sub=%v", got)
	}
	if got := p.Dist(q); got != 5 {
		t.Errorf("Dist=%v", got)
	}
	if got := p.Lerp(q, 0.5); got != (Point{2.5, 4}) {
		t.Errorf("Lerp=%v", got)
	}
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0)=%v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale=%v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 10, 20}
	if r.W() != 10 || r.H() != 20 || r.Area() != 200 {
		t.Fatalf("dims wrong: %v", r)
	}
	if r.Center() != (Point{5, 10}) {
		t.Errorf("Center=%v", r.Center())
	}
	if !r.Contains(Point{0, 0}) || r.Contains(Point{10, 0}) {
		t.Errorf("Contains is not half-open")
	}
	if !(Rect{5, 5, 5, 10}).Empty() {
		t.Errorf("zero-width rect should be empty")
	}
	ra := RectAround(Point{5, 5}, 4, 6)
	if ra != (Rect{3, 2, 7, 8}) {
		t.Errorf("RectAround=%v", ra)
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	if got := a.Intersect(b); got != (Rect{5, 5, 10, 10}) {
		t.Errorf("Intersect=%v", got)
	}
	if got := a.Intersect(Rect{20, 20, 30, 30}); !got.Empty() {
		t.Errorf("disjoint Intersect=%v", got)
	}
	if got := a.Union(b); got != (Rect{0, 0, 15, 15}) {
		t.Errorf("Union=%v", got)
	}
}

func TestIoU(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if got := a.IoU(a); got != 1 {
		t.Errorf("self IoU=%v", got)
	}
	b := Rect{5, 0, 15, 10}
	// inter=50, union=150
	if got := a.IoU(b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("IoU=%v, want 1/3", got)
	}
	if got := a.IoU(Rect{20, 20, 30, 30}); got != 0 {
		t.Errorf("disjoint IoU=%v", got)
	}
}

func TestCoverFraction(t *testing.T) {
	obj := Rect{0, 0, 10, 10}
	mask := Rect{0, 0, 10, 5}
	if got := obj.CoverFraction(mask); got != 0.5 {
		t.Errorf("CoverFraction=%v", got)
	}
	if got := (Rect{}).CoverFraction(mask); got != 0 {
		t.Errorf("empty CoverFraction=%v", got)
	}
}

func TestGridShape(t *testing.T) {
	g := NewGrid(100, 50, 10, 10)
	if g.Cols() != 10 || g.Rows() != 5 || g.NumCells() != 50 {
		t.Fatalf("grid shape: %d x %d", g.Cols(), g.Rows())
	}
	// Non-divisible frame gets a partial edge cell.
	g2 := NewGrid(105, 52, 10, 10)
	if g2.Cols() != 11 || g2.Rows() != 6 {
		t.Fatalf("partial grid shape: %d x %d", g2.Cols(), g2.Rows())
	}
	edge := g2.CellRect(Cell{Col: 10, Row: 5})
	if edge.W() != 5 || edge.H() != 2 {
		t.Errorf("edge cell = %v", edge)
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := NewGrid(100, 50, 10, 10)
	for i := 0; i < g.NumCells(); i++ {
		c := g.CellAt(i)
		if got := g.Index(c); got != i {
			t.Fatalf("index round trip %d -> %v -> %d", i, c, got)
		}
	}
	if g.Index(Cell{Col: -1}) != -1 || g.Index(Cell{Col: 10, Row: 0}) != -1 {
		t.Errorf("out-of-range index should be -1")
	}
}

func TestCellsFor(t *testing.T) {
	g := NewGrid(100, 100, 10, 10)
	cells := g.CellsFor(Rect{5, 5, 25, 15})
	// Spans cols 0..2, rows 0..1 = 6 cells.
	if len(cells) != 6 {
		t.Fatalf("CellsFor returned %d cells: %v", len(cells), cells)
	}
	if cells := g.CellsFor(Rect{-50, -50, -10, -10}); cells != nil {
		t.Errorf("out-of-frame rect gave cells %v", cells)
	}
	// A rect exactly on a cell boundary touches only one cell.
	one := g.CellsFor(Rect{10, 10, 20, 20})
	if len(one) != 1 || one[0] != (Cell{1, 1}) {
		t.Errorf("aligned rect cells=%v", one)
	}
}

func TestCellOf(t *testing.T) {
	g := NewGrid(100, 100, 10, 10)
	c, ok := g.CellOf(Point{55, 99})
	if !ok || c != (Cell{5, 9}) {
		t.Errorf("CellOf=%v,%v", c, ok)
	}
	if _, ok := g.CellOf(Point{100, 0}); ok {
		t.Errorf("edge point should be outside")
	}
}

func TestIoUProperties(t *testing.T) {
	// IoU is symmetric and within [0,1].
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := Rect{float64(ax), float64(ay), float64(ax) + float64(aw), float64(ay) + float64(ah)}
		b := Rect{float64(bx), float64(by), float64(bx) + float64(bw), float64(by) + float64(bh)}
		x, y := a.IoU(b), b.IoU(a)
		return x == y && x >= 0 && x <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Intersection area never exceeds either operand's area.
	g := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := Rect{float64(ax), float64(ay), float64(ax) + float64(aw), float64(ay) + float64(ah)}
		b := Rect{float64(bx), float64(by), float64(bx) + float64(bw), float64(by) + float64(bh)}
		ia := a.Intersect(b).Area()
		return ia <= a.Area()+1e-9 && ia <= b.Area()+1e-9
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}
