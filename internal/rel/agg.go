package rel

import (
	"fmt"
	"math"
	"sort"
	"time"

	"privid/internal/query"
	"privid/internal/table"
)

// Score is one candidate of an ARGMAX release: a group key and its raw
// (pre-noise) score.
type Score struct {
	Key table.Value
	Raw float64
}

// Release is one data release produced by a SELECT: a single
// aggregate value (or, for ARGMAX, a set of scores from which the
// noisy-max key is chosen) together with the sensitivity the Laplace
// mechanism must cover, the time window it depends on, and the cameras
// it draws budget from.
type Release struct {
	// Desc is a human-readable description, e.g. `COUNT(plate)[color=RED]`.
	Desc string
	// Key is the group key when the SELECT used GROUP BY.
	Key    table.Value
	HasKey bool
	// Fun is the aggregation function.
	Fun query.AggFun
	// Raw is the pre-noise aggregate (unused for ARGMAX).
	Raw float64
	// Scores holds the per-key raw scores for ARGMAX.
	Scores []Score
	// Sensitivity is Δ(Q): the maximum the release can change with the
	// presence/absence of any (ρ, K)-bounded event.
	Sensitivity float64
	// Begin/End bound the wall-clock span of video the release depends
	// on (a single bucket for trusted time grouping, else the full
	// window).
	Begin, End time.Time
	// Cameras lists the cameras whose budgets the release consumes.
	Cameras []string
	// CamWindows bounds, per camera, the span of that camera's video
	// the release depends on — the interval its ledger is charged
	// over. It is each camera's own queried window clipped to
	// Begin/End; cameras whose window misses the release entirely are
	// absent (and not charged). Keys equal Cameras.
	CamWindows map[string][2]time.Time
	// Epsilon is the budget this release will consume; the engine
	// fills it from CONSUMING or its default.
	Epsilon float64
}

// ExecuteSelect runs one SELECT statement over the environment and
// returns its data releases with sensitivities attached.
func ExecuteSelect(st *query.SelectStmt, env Env) ([]Release, error) {
	tbl, cons, err := execRel(st.From, env)
	if err != nil {
		return nil, err
	}
	begin, end := cons.Window()
	spans := cameraSpans(cons)

	base := Release{Fun: st.Agg.Fun, Begin: begin, End: end}

	// The aggregate argument is evaluated columnar, once, shared across
	// every group — and lazily, so a statement whose groups are all
	// empty never evaluates it (matching the row-at-a-time evaluator).
	var argv vec
	argvDone := false
	evalArg := func() (vec, error) {
		var err error
		if !argvDone {
			argvDone = true
			argv, err = evalVec(st.Agg.Arg, tbl)
			if err != nil {
				return vec{}, err
			}
		}
		return argv, nil
	}

	if len(st.GroupBy) == 0 {
		if st.Agg.Fun == query.AggArgmax {
			return nil, fmt.Errorf("rel: ARGMAX requires GROUP BY")
		}
		raw, sens, err := aggregateSel(st.Agg, tbl, nil, true, evalArg, cons)
		if err != nil {
			return nil, err
		}
		r := base
		r.Desc = aggDesc(st.Agg, "")
		r.Raw = raw
		r.Sensitivity = sens
		return []Release{withWindows(r, spans, nil)}, nil
	}

	if len(st.GroupBy) != 1 {
		return nil, fmt.Errorf("rel: outer GROUP BY supports a single column (got %v)", st.GroupBy)
	}
	col := st.GroupBy[0]
	ci := tbl.Schema.Index(col)
	if ci < 0 {
		return nil, fmt.Errorf("rel: GROUP BY unknown column %q", col)
	}

	// Determine the release keys: explicit WITH KEYS, or every bucket
	// of a trusted time column. Analyst-defined columns without
	// explicit keys are rejected — otherwise the mere presence of a
	// rare key leaks information (§6.2).
	var keys []table.Value
	var windows [][2]time.Time
	switch {
	case len(st.GroupKeys) > 0:
		keys = st.GroupKeys
		for range keys {
			windows = append(windows, [2]time.Time{begin, end})
		}
	case cons.Trusted[col]:
		spec, ok := cons.Buckets[col]
		if !ok {
			return nil, fmt.Errorf("rel: cannot enumerate buckets of trusted column %q; use hour()/day()/bin()", col)
		}
		keys, windows = enumerateBuckets(spec, begin, end)
	default:
		return nil, fmt.Errorf("rel: GROUP BY %q requires WITH KEYS (analyst-defined keys leak data)", col)
	}

	// Partition rows across the requested keys by hashed cell key (a
	// row matching several identical requested keys lands in each),
	// scanning the column once instead of building per-row key strings.
	slots := make(map[uint64][]int, len(keys))
	for si, k := range keys {
		h := k.KeyHash()
		slots[h] = append(slots[h], si)
	}
	groupSel := make([][]int, len(keys))
	for i := 0; i < tbl.Len(); i++ {
		h := tbl.HashCell(table.HashSeed, i, ci)
		for _, si := range slots[h] {
			if tbl.At(i, ci).KeyEqual(keys[si]) {
				groupSel[si] = append(groupSel[si], i)
			}
		}
	}

	if st.Agg.Fun == query.AggArgmax {
		r := base
		r.Desc = aggDesc(st.Agg, col)
		// Fig. 10: ARGMAX sensitivity is max_k Δ(σ_a=k(R)). When the
		// group column provably partitions the relation by source
		// branch (a trusted per-table literal, or the implicit camera
		// column), each key's influence is its own branch's Δ, not the
		// union's sum.
		r.Sensitivity = cons.Delta
		if kd, ok := cons.KeyDeltas[col]; ok {
			maxD, covered := 0.0, true
			for _, k := range keys {
				d, ok := kd[k.Str()]
				if !ok {
					covered = false
					break
				}
				if d > maxD {
					maxD = d
				}
			}
			if covered {
				r.Sensitivity = maxD
			}
		}
		for si, k := range keys {
			r.Scores = append(r.Scores, Score{Key: k, Raw: float64(len(groupSel[si]))})
		}
		return []Release{withWindows(r, spans, nil)}, nil
	}

	kd, hasKD := cons.KeyDeltas[col]
	kc, hasKC := cons.KeyCams[col]
	var out []Release
	for i, k := range keys {
		// A trusted partition column (per-table literal tags, or the
		// implicit camera column) confines each key's rows to its own
		// branch: the release's sensitivity is that branch's ΔP and
		// only that branch's cameras are charged. Keys outside the
		// partition can never hold rows, so their releases carry zero
		// sensitivity and charge nothing.
		consK := cons
		if hasKD {
			consK.Delta = kd[k.Str()]
		}
		raw, sens, err := aggregateSel(st.Agg, tbl, groupSel[i], false, evalArg, consK)
		if err != nil {
			return nil, err
		}
		r := base
		r.Desc = aggDesc(st.Agg, "") + "[" + col + "=" + k.Str() + "]"
		r.Key = k
		r.HasKey = true
		r.Raw = raw
		r.Sensitivity = sens
		r.Begin, r.End = windows[i][0], windows[i][1]
		var only []string
		if hasKC {
			only = kc[k.Str()]
			if only == nil {
				only = []string{}
			}
		}
		out = append(out, withWindows(r, spans, only))
	}
	// Release order is part of the engine's determinism contract: the
	// seeded noise stream is consumed in release order, so it must not
	// depend on how chunks happened to concatenate. Sort by group key,
	// exactly as the streaming-merge Finalize does.
	sortReleases(out)
	return out, nil
}

// cameraSpans returns each camera's full queried wall-clock span (the
// min Begin / max End over its contributing tables).
func cameraSpans(cons Constraints) map[string][2]time.Time {
	out := map[string][2]time.Time{}
	for _, m := range cons.Metas {
		sp, ok := out[m.Camera]
		if !ok {
			out[m.Camera] = [2]time.Time{m.Begin, m.End}
			continue
		}
		if m.Begin.Before(sp[0]) {
			sp[0] = m.Begin
		}
		if m.End.After(sp[1]) {
			sp[1] = m.End
		}
		out[m.Camera] = sp
	}
	return out
}

// withWindows attaches per-camera charge windows to a release: each
// camera's span clipped to the release's own window, restricted to the
// `only` set when non-nil. Cameras left with an empty window are
// dropped — the release provably does not depend on their video.
func withWindows(r Release, spans map[string][2]time.Time, only []string) Release {
	var allow map[string]bool
	if only != nil {
		allow = make(map[string]bool, len(only))
		for _, c := range only {
			allow[c] = true
		}
	}
	r.CamWindows = map[string][2]time.Time{}
	r.Cameras = nil
	for cam, sp := range spans {
		if allow != nil && !allow[cam] {
			continue
		}
		b, e := sp[0], sp[1]
		if r.Begin.After(b) {
			b = r.Begin
		}
		if r.End.Before(e) {
			e = r.End
		}
		if !e.After(b) {
			continue
		}
		r.CamWindows[cam] = [2]time.Time{b, e}
		r.Cameras = append(r.Cameras, cam)
	}
	sort.Strings(r.Cameras)
	return r
}

// aggregateSel computes one aggregate and its sensitivity over the
// rows selected by sel (or the whole table when all is true),
// accumulating straight off the argument's column vector. evalArg
// memoizes the columnar evaluation of the argument across groups and
// is only invoked when the row set is non-empty, preserving the
// row-at-a-time evaluator's behavior of never evaluating expressions
// over zero rows.
func aggregateSel(agg query.AggExpr, tbl *table.Table, sel []int, all bool, evalArg func() (vec, error), cons Constraints) (raw, sens float64, err error) {
	count := len(sel)
	if all {
		count = tbl.Len()
	}
	if agg.Fun == query.AggCount {
		return float64(count), cons.Delta, nil
	}
	// The remaining functions need a numeric argument with a declared
	// range (Fig. 10's constraint column).
	rg, ok := exprRange(agg.Arg, cons.Ranges)
	if !ok {
		return 0, 0, fmt.Errorf("rel: %s requires a range constraint on its argument (use range(col, lo, hi))", agg.Fun)
	}
	width := rg.Width()
	var av vec
	if count > 0 {
		av, err = evalArg()
		if err != nil {
			return 0, 0, err
		}
	}
	// Defensive truncation: the declared range is a privacy constraint,
	// so it is enforced regardless of what the untrusted rows contain.
	clamped := func(i int) float64 {
		x := av.numAt(i)
		if x < rg.Lo {
			x = rg.Lo
		}
		if x > rg.Hi {
			x = rg.Hi
		}
		return x
	}
	at := func(k int) float64 {
		if all {
			return clamped(k)
		}
		return clamped(sel[k])
	}
	switch agg.Fun {
	case query.AggSum:
		var s float64
		for k := 0; k < count; k++ {
			s += at(k)
		}
		return s, cons.Delta * width, nil
	case query.AggAvg:
		if math.IsInf(cons.Size, 1) {
			return 0, 0, fmt.Errorf("rel: AVG requires a bounded relation size (use LIMIT or GROUP BY ... WITH KEYS)")
		}
		var s float64
		for k := 0; k < count; k++ {
			s += at(k)
		}
		mean := 0.0
		if count > 0 {
			mean = s / float64(count)
		}
		return mean, cons.Delta * width / math.Max(cons.Size, 1), nil
	case query.AggVar:
		if math.IsInf(cons.Size, 1) {
			return 0, 0, fmt.Errorf("rel: VAR requires a bounded relation size")
		}
		if count == 0 {
			return 0, square(cons.Delta*width) / math.Max(cons.Size, 1), nil
		}
		var s float64
		for k := 0; k < count; k++ {
			s += at(k)
		}
		mean := s / float64(count)
		var ss float64
		for k := 0; k < count; k++ {
			d := at(k) - mean
			ss += d * d
		}
		return ss / float64(count), square(cons.Delta*width) / math.Max(cons.Size, 1), nil
	default:
		return 0, 0, fmt.Errorf("rel: unsupported aggregation %v", agg.Fun)
	}
}

func square(x float64) float64 { return x * x }

// enumerateBuckets lists every bucket of a trusted time column within
// the window, with each bucket's own wall-clock span (used for
// fine-grained budget accounting of standing queries).
func enumerateBuckets(spec BucketSpec, begin, end time.Time) ([]table.Value, [][2]time.Time) {
	var keys []table.Value
	var windows [][2]time.Time
	if spec.HourOfDay {
		// Hours of day present in the window; for windows >= 24 h all
		// 24 are present. Each hour-of-day release depends on every
		// matching hour of the window, so its span is the whole
		// window (conservative).
		hours := map[int]bool{}
		for t := begin; t.Before(end); t = t.Add(time.Hour) {
			hours[t.Hour()] = true
		}
		var hs []int
		for h := range hours {
			hs = append(hs, h)
		}
		sort.Ints(hs)
		for _, h := range hs {
			keys = append(keys, table.N(float64(h)))
			windows = append(windows, [2]time.Time{begin, end})
		}
		return keys, windows
	}
	w := spec.WidthSec
	if w <= 0 {
		return nil, nil
	}
	step := time.Duration(w * float64(time.Second))
	// Buckets are aligned to the epoch, matching bin()'s floor.
	first := math.Floor(float64(begin.Unix())/w) * w
	for t := first; t < float64(end.Unix()); t += w {
		keys = append(keys, table.N(t))
		bs := time.Unix(int64(t), 0).UTC()
		be := bs.Add(step)
		if bs.Before(begin) {
			bs = begin
		}
		if be.After(end) {
			be = end
		}
		windows = append(windows, [2]time.Time{bs, be})
	}
	return keys, windows
}

func camerasOf(cons Constraints) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range cons.Metas {
		if !seen[m.Camera] {
			seen[m.Camera] = true
			out = append(out, m.Camera)
		}
	}
	sort.Strings(out)
	return out
}

// aggDesc renders a short description of the aggregation.
func aggDesc(agg query.AggExpr, argmaxCol string) string {
	if agg.Fun == query.AggArgmax {
		return "ARGMAX(" + argmaxCol + ")"
	}
	if agg.Star {
		return agg.Fun.String() + "(*)"
	}
	return agg.Fun.String() + "(" + exprString(agg.Arg) + ")"
}

// exprString renders an expression for diagnostics.
func exprString(e query.Expr) string {
	switch ex := e.(type) {
	case *query.ColRef:
		return ex.Name
	case *query.NumLit:
		return table.N(ex.V).Str()
	case *query.StrLit:
		return fmt.Sprintf("%q", ex.V)
	case *query.BinExpr:
		return exprString(ex.L) + ex.Op + exprString(ex.R)
	case *query.CallExpr:
		s := ex.Name + "("
		for i, a := range ex.Args {
			if i > 0 {
				s += ","
			}
			s += exprString(a)
		}
		return s + ")"
	default:
		return "?"
	}
}
