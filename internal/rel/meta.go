// Package rel executes the aggregation stage of a Privid query: the
// SQL-like SELECT over untrusted intermediate tables. Each relational
// operator simultaneously produces rows and propagates the privacy
// constraints of Fig. 10 — ΔP (the maximum rows a (ρ, K)-bounded event
// can influence), per-column range constraints C̃r, and the size
// constraint C̃s — so that the engine can bound the sensitivity of the
// final aggregate without ever trusting table contents.
package rel

import (
	"math"
	"time"

	"privid/internal/policy"
	"privid/internal/table"
	"privid/internal/vtime"
)

// TableMeta is the *trusted* metadata of one intermediate table: every
// field is fixed by the query text and the camera registration, never
// by the analyst's executable output.
type TableMeta struct {
	Name         string
	Camera       string
	MaxRows      int             // PRODUCING max rows per chunk
	ChunkFrames  int64           // chunk duration in frames
	StrideFrames int64           // stride between chunks in frames
	FPS          vtime.FrameRate // camera frame rate
	NumChunks    int64           // chunks in the queried window
	Begin, End   time.Time       // wall-clock window
	Policy       policy.Policy   // effective (ρ, K) (mask-adjusted)
	// Regions is the number of spatial regions when the SPLIT used BY
	// REGION (0 otherwise). Each chunk then yields up to
	// MaxRows*Regions rows, but an individual occupies one region at a
	// time, so ΔP is unchanged (§7.2).
	Regions int
	// RegionsPerEvent is the maximum number of region-chunks a single
	// individual can influence within one temporal chunk. It is 1 for
	// plain and hard/soft boundary splits; the Grid Split extension
	// (§7.2 future work) derives a larger value from the owner's
	// object-size and speed bounds.
	RegionsPerEvent int
}

// Delta returns ΔP(t) for this table per Eq. 6.2:
// max_rows · K · max_chunks(ρ), with max_chunks generalized to the
// split's stride and multiplied by the per-event region count under
// Grid Split.
func (m TableMeta) Delta() float64 {
	perEvent := m.RegionsPerEvent
	if perEvent < 1 {
		perEvent = 1
	}
	return float64(m.MaxRows) * float64(m.Policy.K) *
		float64(m.Policy.MaxChunksStrided(m.FPS, m.ChunkFrames, m.StrideFrames)) *
		float64(perEvent)
}

// Size returns C̃s(t): the maximum number of rows the table can hold,
// which is fixed by the chunking plan and max_rows.
func (m TableMeta) Size() float64 {
	regions := m.Regions
	if regions < 1 {
		regions = 1
	}
	return float64(m.NumChunks) * float64(m.MaxRows) * float64(regions)
}

// Instance pairs a materialized table with its trusted metadata: one
// TableMeta per contributing camera shard. Single-camera tables have
// exactly one; multi-camera tables (SPLIT with a camera list, or
// MERGE) have one per shard, and their rows carry the trusted implicit
// camera column attributing each row to its shard.
type Instance struct {
	Metas []TableMeta
	Data  *table.Table
}

// NewInstance builds an instance over one or more shard metas.
func NewInstance(data *table.Table, metas ...TableMeta) *Instance {
	return &Instance{Metas: metas, Data: data}
}

// Env resolves table names for a SELECT.
type Env map[string]*Instance

// Range is a closed numeric interval [Lo, Hi].
type Range struct {
	Lo, Hi float64
}

// Width returns the conservative per-row contribution bound: the
// maximum of |Lo|, |Hi| and Hi−Lo, so that both changing a row's value
// within the range and adding/removing the row entirely are covered.
func (r Range) Width() float64 {
	w := r.Hi - r.Lo
	if a := math.Abs(r.Lo); a > w {
		w = a
	}
	if a := math.Abs(r.Hi); a > w {
		w = a
	}
	return w
}

// BucketSpec describes a trusted, enumerable time-bucket column
// derived from the implicit chunk column (hour(chunk), day(chunk),
// bin(chunk, w)). Knowing the bucket function lets the engine release
// a value for *every* bucket in the window, including empty ones, so
// bucket presence cannot leak information.
type BucketSpec struct {
	// WidthSec is the bucket width in seconds (0 for HourOfDay).
	WidthSec float64
	// HourOfDay buckets by hour-of-day (0–23) rather than absolute
	// time.
	HourOfDay bool
}

// Constraints is the sensitivity state propagated through relational
// operators (the ΔP / C̃r / C̃s columns of Fig. 10, plus column trust
// and bucket provenance).
type Constraints struct {
	// Delta is ΔP: the maximum number of rows any (ρ, K)-bounded event
	// can influence in the relation.
	Delta float64
	// Size is C̃s: an upper bound on the relation's row count
	// (math.Inf(1) when unbound).
	Size float64
	// Ranges maps column names to their range constraints (absent =
	// unbound, Fig. 10's ∅).
	Ranges map[string]Range
	// Trusted marks columns whose values cannot be influenced by the
	// analyst's executable: the implicit chunk/region columns,
	// literals, and stateless derivations thereof.
	Trusted map[string]bool
	// Buckets records bucket provenance for trusted chunk-derived
	// columns.
	Buckets map[string]BucketSpec
	// Metas lists the tables contributing to the relation, for budget
	// accounting and bucket enumeration.
	Metas []TableMeta
	// DedupKeys is non-nil when the relation is known to contain at
	// most one row per value of these columns (the output of a GROUP
	// BY dedup). JOINs require both inputs to be deduped on the join
	// keys (Fig. 10).
	DedupKeys []string
	// LiteralCols maps column names to their constant value when every
	// row of the relation carries the same trusted literal in that
	// column (a projected string literal, e.g. a camera tag).
	LiteralCols map[string]string
	// KeyDeltas, when set for a column, partitions the relation: rows
	// with each recorded value come from branches whose combined ΔP is
	// the mapped value. This implements Fig. 10's per-key ARGMAX
	// sensitivity max_k Δ(σ_a=k(R)) across a UNION of tagged tables,
	// and per-release sensitivity for SELECTs grouped by the trusted
	// camera column of a multi-camera table.
	KeyDeltas map[string]map[string]float64
	// KeyCams mirrors KeyDeltas with camera attribution: rows carrying
	// each recorded value can only have come from the listed cameras,
	// so a release keyed on that value charges only those cameras'
	// budgets.
	KeyCams map[string]map[string][]string
}

func (c Constraints) clone() Constraints {
	out := c
	out.Ranges = make(map[string]Range, len(c.Ranges))
	for k, v := range c.Ranges {
		out.Ranges[k] = v
	}
	out.Trusted = make(map[string]bool, len(c.Trusted))
	for k, v := range c.Trusted {
		out.Trusted[k] = v
	}
	out.Buckets = make(map[string]BucketSpec, len(c.Buckets))
	for k, v := range c.Buckets {
		out.Buckets[k] = v
	}
	out.Metas = append([]TableMeta(nil), c.Metas...)
	out.DedupKeys = append([]string(nil), c.DedupKeys...)
	out.LiteralCols = make(map[string]string, len(c.LiteralCols))
	for k, v := range c.LiteralCols {
		out.LiteralCols[k] = v
	}
	out.KeyDeltas = make(map[string]map[string]float64, len(c.KeyDeltas))
	for k, m := range c.KeyDeltas {
		inner := make(map[string]float64, len(m))
		for kk, vv := range m {
			inner[kk] = vv
		}
		out.KeyDeltas[k] = inner
	}
	out.KeyCams = make(map[string]map[string][]string, len(c.KeyCams))
	for k, m := range c.KeyCams {
		inner := make(map[string][]string, len(m))
		for kk, vv := range m {
			inner[kk] = append([]string(nil), vv...)
		}
		out.KeyCams[k] = inner
	}
	return out
}

// Window returns the earliest begin and latest end over the
// contributing tables.
func (c Constraints) Window() (time.Time, time.Time) {
	var begin, end time.Time
	for i, m := range c.Metas {
		if i == 0 || m.Begin.Before(begin) {
			begin = m.Begin
		}
		if i == 0 || m.End.After(end) {
			end = m.End
		}
	}
	return begin, end
}
