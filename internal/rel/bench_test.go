package rel

// Benchmarks backing the aggregation acceptance criteria: the columnar
// aggregation path must allocate at least 2x less than the preserved
// row-major oracle on a 1M-row/10-group aggregation, the streaming
// fold+merge path must allocate at least 5x fewer bytes per op than
// materializing the same aggregation, and ingest-time numeric coercion
// must beat per-call Num() re-parsing.

import (
	"fmt"
	"strconv"
	"testing"

	"privid/internal/query"
	"privid/internal/table"
)

// benchRows sizes the StringNum coercion benchmarks.
const benchRows = 100_000

// aggBenchRows and aggBenchChunkRows size the aggregation benchmarks:
// one million rows over ten groups, streamed in 10k-row chunks (about
// what a busy camera's 30-second chunk produces).
const (
	aggBenchRows      = 1_000_000
	aggBenchChunkRows = 10_000
)

// aggBenchColors are the ten group keys of the aggregation workload.
var aggBenchColors = []string{
	"RED", "WHITE", "SILVER", "BLACK", "BLUE",
	"GREEN", "GRAY", "YELLOW", "ORANGE", "BROWN",
}

func benchEnv(b *testing.B) Env {
	b.Helper()
	meta := testMeta("tableA", "camA")
	base := float64(meta.Begin.Unix())
	tbl := table.New(carSchema())
	for i := 0; i < aggBenchRows; i++ {
		tbl.Append(table.Row{
			table.S("P" + strconv.Itoa(i%997)),
			table.S(aggBenchColors[i%len(aggBenchColors)]),
			table.N(float64(i%120) / 2),
			table.N(base + float64(i%100)*5),
		})
	}
	return Env{"tableA": &Instance{Metas: []TableMeta{meta}, Data: tbl}}
}

func benchStmt() *query.SelectStmt {
	keys := make([]table.Value, len(aggBenchColors))
	for i, c := range aggBenchColors {
		keys[i] = table.S(c)
	}
	return &query.SelectStmt{
		Agg: query.AggExpr{Fun: query.AggSum, Arg: &query.CallExpr{
			Name: "range",
			Args: []query.Expr{
				&query.ColRef{Name: "speed"},
				&query.NumLit{V: 0},
				&query.NumLit{V: 60},
			},
		}},
		From:      &query.TableRef{Name: "tableA"},
		GroupBy:   []string{"color"},
		GroupKeys: keys,
	}
}

// BenchmarkAggregate_RowMajor runs the grouped aggregation through the
// historical row-at-a-time implementation (oracle_test.go).
func BenchmarkAggregate_RowMajor(b *testing.B) {
	env := benchEnv(b)
	st := benchStmt()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rels, err := oracleExecuteSelect(st, env)
		if err != nil || len(rels) != len(aggBenchColors) {
			b.Fatalf("rels=%d err=%v", len(rels), err)
		}
	}
}

// BenchmarkAggregate_Columnar runs the same aggregation through the
// production columnar path over the fully materialized table.
func BenchmarkAggregate_Columnar(b *testing.B) {
	env := benchEnv(b)
	st := benchStmt()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rels, err := ExecuteSelect(st, env)
		if err != nil || len(rels) != len(aggBenchColors) {
			b.Fatalf("rels=%d err=%v", len(rels), err)
		}
	}
}

// BenchmarkAggregate_Streaming runs the same aggregation through the
// pushdown path: each pre-split chunk is folded into a mergeable
// partial state, states are merged, and the merge finalizes into
// releases. The chunk tables are built outside the timer — they stand
// in for the per-chunk sandbox outputs the engine already holds — so
// the measured bytes/op is the footprint of aggregation itself:
// O(groups x cameras) state instead of the materialized table's
// O(rows) vectors. The CI contract (BENCH_9.json) holds this at >=5x
// fewer bytes/op than BenchmarkAggregate_Columnar.
func BenchmarkAggregate_Streaming(b *testing.B) {
	env := benchEnv(b)
	inst := env["tableA"]
	st := benchStmt()
	plan := PlanPartial(st, "tableA", inst.Data.Schema, inst.Metas)
	if plan == nil {
		b.Fatal("grouped SUM with range constraint must be eligible for pushdown")
	}
	var chunks []*table.Table
	for i := 0; i < inst.Data.Len(); i += aggBenchChunkRows {
		end := i + aggBenchChunkRows
		if end > inst.Data.Len() {
			end = inst.Data.Len()
		}
		c := table.New(inst.Data.Schema)
		for r := i; r < end; r++ {
			c.Append(inst.Data.Row(r))
		}
		chunks = append(chunks, c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged := plan.NewState()
		for _, c := range chunks {
			s, err := plan.Partial(c, "camA")
			if err != nil {
				b.Fatal(err)
			}
			plan.Merge(merged, s)
		}
		if rels := plan.Finalize(merged); len(rels) != len(aggBenchColors) {
			b.Fatalf("rels=%d", len(rels))
		}
	}
}

// BenchmarkStringNum_Reparse measures summing numeric-looking strings
// via Value.Num(), which parses the string on every call (the
// historical cost when an untyped sandbox column feeds an aggregate).
func BenchmarkStringNum_Reparse(b *testing.B) {
	vals := make([]table.Value, benchRows)
	for i := range vals {
		vals[i] = table.S(fmt.Sprintf("%d.%02d", i%300, i%97))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s float64
		for _, v := range vals {
			s += v.Num()
		}
		if s == 0 {
			b.Fatal("unexpected zero sum")
		}
	}
}

// BenchmarkStringNum_IngestView sums the same strings via the
// parse-once numeric view computed at ingest by the columnar table.
func BenchmarkStringNum_IngestView(b *testing.B) {
	s := table.MustSchema(table.Column{Name: "v", Type: table.DString, Default: table.S("")})
	tbl := table.New(s)
	for i := 0; i < benchRows; i++ {
		tbl.Append(table.Row{table.S(fmt.Sprintf("%d.%02d", i%300, i%97))})
	}
	nums := tbl.Nums(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, v := range nums {
			sum += v
		}
		if sum == 0 {
			b.Fatal("unexpected zero sum")
		}
	}
}
