package rel

// Benchmarks backing the columnar-execution acceptance criteria: the
// columnar aggregation path must allocate at least 2x less than the
// preserved row-major oracle on a 100k-row grouped aggregation, and
// ingest-time numeric coercion must beat per-call Num() re-parsing.

import (
	"fmt"
	"strconv"
	"testing"

	"privid/internal/query"
	"privid/internal/table"
)

const benchRows = 100_000

func benchEnv(b *testing.B) Env {
	b.Helper()
	meta := testMeta("tableA", "camA")
	base := float64(meta.Begin.Unix())
	colors := []string{"RED", "WHITE", "SILVER", "BLACK"}
	tbl := table.New(carSchema())
	for i := 0; i < benchRows; i++ {
		tbl.Append(table.Row{
			table.S("P" + strconv.Itoa(i%997)),
			table.S(colors[i%len(colors)]),
			table.N(float64(i%120) / 2),
			table.N(base + float64(i%100)*5),
		})
	}
	return Env{"tableA": &Instance{Metas: []TableMeta{meta}, Data: tbl}}
}

func benchStmt() *query.SelectStmt {
	return &query.SelectStmt{
		Agg: query.AggExpr{Fun: query.AggSum, Arg: &query.CallExpr{
			Name: "range",
			Args: []query.Expr{
				&query.ColRef{Name: "speed"},
				&query.NumLit{V: 0},
				&query.NumLit{V: 60},
			},
		}},
		From:    &query.TableRef{Name: "tableA"},
		GroupBy: []string{"color"},
		GroupKeys: []table.Value{
			table.S("RED"), table.S("WHITE"), table.S("SILVER"), table.S("BLACK"),
		},
	}
}

// BenchmarkAggregate_RowMajor runs the grouped aggregation through the
// historical row-at-a-time implementation (oracle_test.go).
func BenchmarkAggregate_RowMajor(b *testing.B) {
	env := benchEnv(b)
	st := benchStmt()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rels, err := oracleExecuteSelect(st, env)
		if err != nil || len(rels) != 4 {
			b.Fatalf("rels=%d err=%v", len(rels), err)
		}
	}
}

// BenchmarkAggregate_Columnar runs the same aggregation through the
// production columnar path.
func BenchmarkAggregate_Columnar(b *testing.B) {
	env := benchEnv(b)
	st := benchStmt()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rels, err := ExecuteSelect(st, env)
		if err != nil || len(rels) != 4 {
			b.Fatalf("rels=%d err=%v", len(rels), err)
		}
	}
}

// BenchmarkStringNum_Reparse measures summing numeric-looking strings
// via Value.Num(), which parses the string on every call (the
// historical cost when an untyped sandbox column feeds an aggregate).
func BenchmarkStringNum_Reparse(b *testing.B) {
	vals := make([]table.Value, benchRows)
	for i := range vals {
		vals[i] = table.S(fmt.Sprintf("%d.%02d", i%300, i%97))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s float64
		for _, v := range vals {
			s += v.Num()
		}
		if s == 0 {
			b.Fatal("unexpected zero sum")
		}
	}
}

// BenchmarkStringNum_IngestView sums the same strings via the
// parse-once numeric view computed at ingest by the columnar table.
func BenchmarkStringNum_IngestView(b *testing.B) {
	s := table.MustSchema(table.Column{Name: "v", Type: table.DString, Default: table.S("")})
	tbl := table.New(s)
	for i := 0; i < benchRows; i++ {
		tbl.Append(table.Row{table.S(fmt.Sprintf("%d.%02d", i%300, i%97))})
	}
	nums := tbl.Nums(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, v := range nums {
			sum += v
		}
		if sum == 0 {
			b.Fatal("unexpected zero sum")
		}
	}
}
