package rel

import (
	"math"
	"testing"

	"privid/internal/query"
	"privid/internal/table"
)

func evalOn(t *testing.T, exprSrc string, schema table.Schema, row table.Row) table.Value {
	t.Helper()
	// Parse the expression by wrapping it in a projection.
	src := `
SPLIT c BEGIN 01-01-2021/12:00am END 01-02-2021/12:00am BY TIME 5sec STRIDE 0sec INTO cs;
PROCESS cs USING e TIMEOUT 1sec PRODUCING 1 ROWS WITH SCHEMA (n:NUMBER=0, s:STRING="") INTO t;
SELECT COUNT(*) FROM (SELECT ` + exprSrc + ` AS v FROM t);`
	prog, err := query.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", exprSrc, err)
	}
	se := prog.Selects[0].From.(*query.SelectExpr)
	v, err := evalExpr(se.Items[0].Expr, schema, row)
	if err != nil {
		t.Fatalf("eval %q: %v", exprSrc, err)
	}
	return v
}

func TestExprEvaluation(t *testing.T) {
	schema := table.MustSchema(
		table.Column{Name: "n", Type: table.DNumber},
		table.Column{Name: "s", Type: table.DString},
	)
	row := table.Row{table.N(6), table.S("abc")}
	cases := []struct {
		expr string
		want float64
	}{
		{"n + 2", 8},
		{"n - 10", -4},
		{"n * n", 36},
		{"n / 2", 3},
		{"n / 0", 0}, // untrusted data: division by zero yields 0
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"-n", -6},
		{"n > 5", 1},
		{"n > 7", 0},
		{"n >= 6", 1},
		{"n < 6", 0},
		{"n <= 6", 1},
		{"n = 6", 1},
		{"n != 6", 0},
		{"n > 5 AND n < 7", 1},
		{"n > 7 OR n = 6", 1},
		{"n > 7 AND n = 6", 0},
		{"range(n, 0, 5)", 5},    // truncated above
		{"range(n, 10, 20)", 10}, // truncated below
		{"range(n, 0, 10)", 6},
		{"bin(n, 4)", 4},
		{"hour(n)", 0}, // 6 seconds into the epoch is hour 0
	}
	for _, c := range cases {
		if got := evalOn(t, c.expr, schema, row).Num(); got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestExprStringComparison(t *testing.T) {
	schema := table.MustSchema(
		table.Column{Name: "n", Type: table.DNumber},
		table.Column{Name: "s", Type: table.DString},
	)
	row := table.Row{table.N(1), table.S("abc")}
	if got := evalOn(t, `s = "abc"`, schema, row).Num(); got != 1 {
		t.Errorf("string equality failed")
	}
	if got := evalOn(t, `s != "xyz"`, schema, row).Num(); got != 1 {
		t.Errorf("string inequality failed")
	}
}

func TestExprRangePropagation(t *testing.T) {
	ranges := map[string]Range{"a": {0, 10}, "b": {-5, 5}}
	mk := func(src string) query.Expr {
		prog, err := query.Parse(`
SPLIT c BEGIN 01-01-2021/12:00am END 01-02-2021/12:00am BY TIME 5sec STRIDE 0sec INTO cs;
PROCESS cs USING e TIMEOUT 1sec PRODUCING 1 ROWS WITH SCHEMA (a:NUMBER=0, b:NUMBER=0) INTO t;
SELECT COUNT(*) FROM (SELECT ` + src + ` AS v FROM t);`)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return prog.Selects[0].From.(*query.SelectExpr).Items[0].Expr
	}
	cases := []struct {
		expr   string
		lo, hi float64
		ok     bool
	}{
		{"a + b", -5, 15, true},
		{"a - b", -5, 15, true},
		{"a * b", -50, 50, true},
		{"a / b", 0, 0, false}, // division unbinds
		{"a + 100", 100, 110, true},
		{"a > b", 0, 1, true},
		{"range(a, 2, 3) * 2", 4, 6, true},
		{"hour(a)", 0, 23, true},
	}
	for _, c := range cases {
		rg, ok := exprRange(mk(c.expr), ranges)
		if ok != c.ok {
			t.Errorf("%s: ok=%v, want %v", c.expr, ok, c.ok)
			continue
		}
		if ok && (math.Abs(rg.Lo-c.lo) > 1e-9 || math.Abs(rg.Hi-c.hi) > 1e-9) {
			t.Errorf("%s: range [%v,%v], want [%v,%v]", c.expr, rg.Lo, rg.Hi, c.lo, c.hi)
		}
	}
}

func TestRangeWidth(t *testing.T) {
	cases := []struct {
		r    Range
		want float64
	}{
		{Range{0, 10}, 10},
		{Range{30, 60}, 60},   // |hi| dominates: a row appearing contributes up to 60
		{Range{-20, 5}, 25},   // width dominates
		{Range{-50, -40}, 50}, // |lo| dominates
		{Range{5, 5}, 5},
	}
	for _, c := range cases {
		if got := c.r.Width(); got != c.want {
			t.Errorf("Width(%v)=%v, want %v", c.r, got, c.want)
		}
	}
}
