package rel

// This file preserves the pre-columnar, row-at-a-time implementation of
// the relational operators verbatim as a reference oracle. The
// differential property test (differential_test.go) executes every
// operator through both this oracle and the production columnar path
// over randomized tables and asserts identical rows, constraints and
// releases. The row-major aggregation benchmark also runs against it.

import (
	"fmt"
	"math"
	"time"

	"privid/internal/query"
	"privid/internal/table"
)

// oracleTable is the historical row-major table representation.
type oracleTable struct {
	Schema table.Schema
	Rows   []table.Row
}

func newOracleTable(s table.Schema) *oracleTable { return &oracleTable{Schema: s} }

// evalExpr evaluates a scalar expression against one row. Booleans are
// represented as NUMBER 1/0. (Historical evaluator; production is the
// columnar evalVec.)
func evalExpr(e query.Expr, schema table.Schema, row table.Row) (table.Value, error) {
	switch ex := e.(type) {
	case *query.ColRef:
		i := schema.Index(ex.Name)
		if i < 0 {
			return table.Value{}, fmt.Errorf("unknown column %q", ex.Name)
		}
		return row[i], nil
	case *query.NumLit:
		return table.N(ex.V), nil
	case *query.StrLit:
		return table.S(ex.V), nil
	case *query.BinExpr:
		return evalBin(ex, schema, row)
	case *query.CallExpr:
		return evalCall(ex, schema, row)
	default:
		return table.Value{}, fmt.Errorf("unsupported expression %T", e)
	}
}

func evalBin(ex *query.BinExpr, schema table.Schema, row table.Row) (table.Value, error) {
	l, err := evalExpr(ex.L, schema, row)
	if err != nil {
		return table.Value{}, err
	}
	r, err := evalExpr(ex.R, schema, row)
	if err != nil {
		return table.Value{}, err
	}
	b := func(v bool) table.Value {
		if v {
			return table.N(1)
		}
		return table.N(0)
	}
	switch ex.Op {
	case "+":
		return table.N(l.Num() + r.Num()), nil
	case "-":
		return table.N(l.Num() - r.Num()), nil
	case "*":
		return table.N(l.Num() * r.Num()), nil
	case "/":
		d := r.Num()
		if d == 0 {
			return table.N(0), nil
		}
		return table.N(l.Num() / d), nil
	case "=":
		if l.Type() == table.DString || r.Type() == table.DString {
			return b(l.Str() == r.Str()), nil
		}
		return b(l.Num() == r.Num()), nil
	case "!=":
		if l.Type() == table.DString || r.Type() == table.DString {
			return b(l.Str() != r.Str()), nil
		}
		return b(l.Num() != r.Num()), nil
	case "<":
		return b(l.Num() < r.Num()), nil
	case "<=":
		return b(l.Num() <= r.Num()), nil
	case ">":
		return b(l.Num() > r.Num()), nil
	case ">=":
		return b(l.Num() >= r.Num()), nil
	case "AND":
		return b(l.Num() != 0 && r.Num() != 0), nil
	case "OR":
		return b(l.Num() != 0 || r.Num() != 0), nil
	default:
		return table.Value{}, fmt.Errorf("unknown operator %q", ex.Op)
	}
}

func evalCall(ex *query.CallExpr, schema table.Schema, row table.Row) (table.Value, error) {
	switch ex.Name {
	case "range":
		v, err := evalExpr(ex.Args[0], schema, row)
		if err != nil {
			return table.Value{}, err
		}
		lo := ex.Args[1].(*query.NumLit).V
		hi := ex.Args[2].(*query.NumLit).V
		x := v.Num()
		if x < lo {
			x = lo
		}
		if x > hi {
			x = hi
		}
		return table.N(x), nil
	case "hour":
		v, err := evalExpr(ex.Args[0], schema, row)
		if err != nil {
			return table.Value{}, err
		}
		sec := int64(v.Num())
		return table.N(float64((sec / 3600) % 24)), nil
	case "day":
		v, err := evalExpr(ex.Args[0], schema, row)
		if err != nil {
			return table.Value{}, err
		}
		sec := int64(v.Num())
		return table.N(float64(sec / 86400)), nil
	case "bin":
		v, err := evalExpr(ex.Args[0], schema, row)
		if err != nil {
			return table.Value{}, err
		}
		w := ex.Args[1].(*query.NumLit).V
		if w <= 0 {
			return table.Value{}, fmt.Errorf("bin width must be positive")
		}
		return table.N(math.Floor(v.Num()/w) * w), nil
	default:
		return table.Value{}, fmt.Errorf("unknown function %q", ex.Name)
	}
}

func oracleExecRel(r query.RelExpr, env Env) (*oracleTable, Constraints, error) {
	switch rel := r.(type) {
	case *query.TableRef:
		t, cons, err := execTableRef(rel, env)
		if err != nil {
			return nil, Constraints{}, err
		}
		return &oracleTable{Schema: t.Schema, Rows: t.Rows()}, cons, nil
	case *query.SelectExpr:
		return oracleExecSelect(rel, env)
	case *query.GroupExpr:
		return oracleExecGroup(rel, env)
	case *query.JoinExpr:
		return oracleExecJoin(rel, env)
	case *query.UnionExpr:
		return oracleExecUnion(rel, env)
	default:
		return nil, Constraints{}, fmt.Errorf("rel: unsupported expression %T", r)
	}
}

func oracleExecSelect(rel *query.SelectExpr, env Env) (*oracleTable, Constraints, error) {
	in, cons, err := oracleExecRel(rel.From, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	rows := in.Rows
	if rel.Where != nil {
		var kept []table.Row
		for _, row := range rows {
			v, err := evalExpr(rel.Where, in.Schema, row)
			if err != nil {
				return nil, Constraints{}, err
			}
			if v.Num() != 0 {
				kept = append(kept, row)
			}
		}
		rows = kept
	}
	if rel.Limit > 0 && len(rows) > rel.Limit {
		rows = rows[:rel.Limit]
	}
	out := cons.clone()
	if rel.Limit > 0 {
		out.Size = math.Min(out.Size, float64(rel.Limit))
	}
	if rel.Star {
		t := newOracleTable(in.Schema)
		t.Rows = rows
		return t, out, nil
	}
	var cols []table.Column
	names := make([]string, len(rel.Items))
	for i, it := range rel.Items {
		name := it.Alias
		if name == "" {
			name = exprName(it.Expr, i)
		}
		names[i] = name
		cols = append(cols, table.Column{Name: name, Type: exprType(it.Expr, in.Schema)})
	}
	newRanges := map[string]Range{}
	newTrusted := map[string]bool{}
	newBuckets := map[string]BucketSpec{}
	for i, it := range rel.Items {
		if rg, ok := exprRange(it.Expr, cons.Ranges); ok {
			newRanges[names[i]] = rg
		}
		if exprTrusted(it.Expr, cons.Trusted) {
			newTrusted[names[i]] = true
		}
		if b, ok := exprBucket(it.Expr, cons.Buckets); ok {
			newBuckets[names[i]] = b
		}
	}
	newLiterals := map[string]string{}
	newKeyDeltas := map[string]map[string]float64{}
	newKeyCams := map[string]map[string][]string{}
	for i, it := range rel.Items {
		switch ex := it.Expr.(type) {
		case *query.StrLit:
			newLiterals[names[i]] = ex.V
		case *query.ColRef:
			if v, ok := cons.LiteralCols[ex.Name]; ok {
				newLiterals[names[i]] = v
			}
			if kd, ok := cons.KeyDeltas[ex.Name]; ok {
				newKeyDeltas[names[i]] = kd
			}
			if kc, ok := cons.KeyCams[ex.Name]; ok {
				newKeyCams[names[i]] = kc
			}
		}
	}
	out.Ranges = newRanges
	out.Trusted = newTrusted
	out.Buckets = newBuckets
	out.LiteralCols = newLiterals
	out.KeyDeltas = newKeyDeltas
	out.KeyCams = newKeyCams
	out.DedupKeys = nil

	t := &oracleTable{Schema: table.Schema{Cols: cols}}
	for _, row := range rows {
		nr := make(table.Row, len(rel.Items))
		for i, it := range rel.Items {
			v, err := evalExpr(it.Expr, in.Schema, row)
			if err != nil {
				return nil, Constraints{}, err
			}
			nr[i] = v.Coerce(cols[i].Type)
		}
		t.Rows = append(t.Rows, nr)
	}
	return t, out, nil
}

func oracleExecGroup(rel *query.GroupExpr, env Env) (*oracleTable, Constraints, error) {
	in, cons, err := oracleExecRel(rel.From, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	idx := make([]int, len(rel.Keys))
	for i, k := range rel.Keys {
		idx[i] = in.Schema.Index(k)
		if idx[i] < 0 {
			return nil, Constraints{}, fmt.Errorf("rel: GROUP BY unknown column %q", k)
		}
	}
	var allow map[string]bool
	if len(rel.WithKeys) > 0 {
		if len(rel.Keys) != 1 {
			return nil, Constraints{}, fmt.Errorf("rel: WITH KEYS requires a single group column")
		}
		allow = make(map[string]bool, len(rel.WithKeys))
		for _, k := range rel.WithKeys {
			allow[k.Key()] = true
		}
	}
	seen := map[string]bool{}
	out := newOracleTable(in.Schema)
	for _, row := range in.Rows {
		key := ""
		for _, j := range idx {
			key += row[j].Key() + "\x00"
		}
		if allow != nil && !allow[row[idx[0]].Key()] {
			continue
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out.Rows = append(out.Rows, row)
	}
	oc := cons.clone()
	if len(rel.WithKeys) > 0 {
		oc.Size = math.Min(oc.Size, float64(len(rel.WithKeys)))
	}
	oc.DedupKeys = append([]string(nil), rel.Keys...)
	return out, oc, nil
}

func oracleExecJoin(rel *query.JoinExpr, env Env) (*oracleTable, Constraints, error) {
	lt, lc, err := oracleExecRel(rel.Left, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	rt, rc, err := oracleExecRel(rel.Right, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	if !keysMatch(lc.DedupKeys, rel.On) || !keysMatch(rc.DedupKeys, rel.On) {
		return nil, Constraints{}, fmt.Errorf("rel: JOIN inputs must be GROUP BY'd on the join key(s) %v", rel.On)
	}
	lIdx := make([]int, len(rel.On))
	rIdx := make([]int, len(rel.On))
	for i, k := range rel.On {
		lIdx[i] = lt.Schema.Index(k)
		rIdx[i] = rt.Schema.Index(k)
		if lIdx[i] < 0 || rIdx[i] < 0 {
			return nil, Constraints{}, fmt.Errorf("rel: JOIN column %q missing", k)
		}
	}
	onSet := make(map[string]bool, len(rel.On))
	for _, k := range rel.On {
		onSet[k] = true
	}
	var cols []table.Column
	for i, k := range rel.On {
		cols = append(cols, table.Column{Name: k, Type: lt.Schema.Cols[lIdx[i]].Type})
	}
	type pick struct {
		side int
		col  int
	}
	var picks []pick
	used := map[string]bool{}
	for _, k := range rel.On {
		used[k] = true
	}
	for i, c := range lt.Schema.Cols {
		if onSet[c.Name] {
			continue
		}
		name := c.Name
		for used[name] {
			name += "_l"
		}
		used[name] = true
		cols = append(cols, table.Column{Name: name, Type: c.Type})
		picks = append(picks, pick{0, i})
	}
	for i, c := range rt.Schema.Cols {
		if onSet[c.Name] {
			continue
		}
		name := c.Name
		for used[name] {
			name += "_r"
		}
		used[name] = true
		cols = append(cols, table.Column{Name: name, Type: c.Type})
		picks = append(picks, pick{1, i})
	}
	schema := table.Schema{Cols: cols}

	keyOf := func(row table.Row, idx []int) string {
		k := ""
		for _, j := range idx {
			k += row[j].Key() + "\x00"
		}
		return k
	}
	lByKey := map[string]table.Row{}
	var order []string
	for _, row := range lt.Rows {
		k := keyOf(row, lIdx)
		if _, ok := lByKey[k]; !ok {
			lByKey[k] = row
			order = append(order, k)
		}
	}
	rByKey := map[string]table.Row{}
	for _, row := range rt.Rows {
		k := keyOf(row, rIdx)
		if _, ok := rByKey[k]; !ok {
			rByKey[k] = row
		}
	}
	emit := func(out *oracleTable, l, r table.Row) {
		row := make(table.Row, 0, len(cols))
		src := l
		idx := lIdx
		if src == nil {
			src = r
			idx = rIdx
		}
		for i := range rel.On {
			row = append(row, src[idx[i]])
		}
		for pi, p := range picks {
			switch {
			case p.side == 0 && l != nil:
				row = append(row, l[p.col])
			case p.side == 1 && r != nil:
				row = append(row, r[p.col])
			default:
				if cols[len(rel.On)+pi].Type == table.DNumber {
					row = append(row, table.N(0))
				} else {
					row = append(row, table.S(""))
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}

	out := newOracleTable(schema)
	if rel.Outer {
		for _, k := range order {
			emit(out, lByKey[k], rByKey[k])
		}
		var rOrder []string
		seen := map[string]bool{}
		for _, row := range rt.Rows {
			k := keyOf(row, rIdx)
			if !seen[k] {
				seen[k] = true
				rOrder = append(rOrder, k)
			}
		}
		for _, k := range rOrder {
			if _, ok := lByKey[k]; !ok {
				emit(out, nil, rByKey[k])
			}
		}
	} else {
		for _, k := range order {
			if r, ok := rByKey[k]; ok {
				emit(out, lByKey[k], r)
			}
		}
	}

	oc := Constraints{
		Delta:   lc.Delta + rc.Delta,
		Ranges:  map[string]Range{},
		Trusted: map[string]bool{},
		Buckets: map[string]BucketSpec{},
		Metas:   append(append([]TableMeta(nil), lc.Metas...), rc.Metas...),
	}
	if rel.Outer {
		oc.Size = lc.Size + rc.Size
	} else {
		oc.Size = math.Min(lc.Size, rc.Size)
	}
	for _, k := range rel.On {
		lr, lok := lc.Ranges[k]
		rr, rok := rc.Ranges[k]
		if lok && rok {
			oc.Ranges[k] = Range{math.Min(lr.Lo, rr.Lo), math.Max(lr.Hi, rr.Hi)}
		}
		oc.Trusted[k] = lc.Trusted[k] && rc.Trusted[k]
		lb, lbok := lc.Buckets[k]
		if rb, rbok := rc.Buckets[k]; lbok && rbok && lb == rb {
			oc.Buckets[k] = lb
		}
	}
	ci := len(rel.On)
	for _, p := range picks {
		name := cols[ci].Name
		src := lc
		origin := lt.Schema.Cols[p.col].Name
		if p.side == 1 {
			src = rc
			origin = rt.Schema.Cols[p.col].Name
		}
		if rg, ok := src.Ranges[origin]; ok {
			if rel.Outer {
				rg = Range{math.Min(rg.Lo, 0), math.Max(rg.Hi, 0)}
			}
			oc.Ranges[name] = rg
		}
		if src.Trusted[origin] && !rel.Outer {
			oc.Trusted[name] = true
		}
		ci++
	}
	oc.DedupKeys = append([]string(nil), rel.On...)
	return out, oc, nil
}

func oracleExecUnion(rel *query.UnionExpr, env Env) (*oracleTable, Constraints, error) {
	lt, lc, err := oracleExecRel(rel.Left, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	rt, rc, err := oracleExecRel(rel.Right, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	remap := make([]int, len(lt.Schema.Cols))
	for i, c := range lt.Schema.Cols {
		j := rt.Schema.Index(c.Name)
		if j < 0 {
			return nil, Constraints{}, fmt.Errorf("rel: UNION column %q missing on right side", c.Name)
		}
		remap[i] = j
	}
	if len(rt.Schema.Cols) != len(lt.Schema.Cols) {
		return nil, Constraints{}, fmt.Errorf("rel: UNION column counts differ (%d vs %d)", len(lt.Schema.Cols), len(rt.Schema.Cols))
	}
	out := newOracleTable(lt.Schema)
	out.Rows = append(out.Rows, lt.Rows...)
	for _, row := range rt.Rows {
		nr := make(table.Row, len(remap))
		for i, j := range remap {
			nr[i] = row[j].Coerce(lt.Schema.Cols[i].Type)
		}
		out.Rows = append(out.Rows, nr)
	}
	oc := Constraints{
		Delta:   lc.Delta + rc.Delta,
		Size:    lc.Size + rc.Size,
		Ranges:  map[string]Range{},
		Trusted: map[string]bool{},
		Buckets: map[string]BucketSpec{},
		Metas:   append(append([]TableMeta(nil), lc.Metas...), rc.Metas...),
	}
	oc.LiteralCols = map[string]string{}
	oc.KeyDeltas = map[string]map[string]float64{}
	oc.KeyCams = map[string]map[string][]string{}
	for _, c := range lt.Schema.Cols {
		lr, lok := lc.Ranges[c.Name]
		rr, rok := rc.Ranges[c.Name]
		if lok && rok {
			oc.Ranges[c.Name] = Range{math.Min(lr.Lo, rr.Lo), math.Max(lr.Hi, rr.Hi)}
		}
		oc.Trusted[c.Name] = lc.Trusted[c.Name] && rc.Trusted[c.Name]
		if lb, ok := lc.Buckets[c.Name]; ok {
			if rb, ok2 := rc.Buckets[c.Name]; ok2 && lb == rb {
				oc.Buckets[c.Name] = lb
			}
		}
		ld, lok2 := branchDeltas(lc, c.Name)
		rd, rok2 := branchDeltas(rc, c.Name)
		if lok2 && rok2 {
			merged := make(map[string]float64, len(ld)+len(rd))
			for k, v := range ld {
				merged[k] = v
			}
			for k, v := range rd {
				merged[k] += v
			}
			oc.KeyDeltas[c.Name] = merged
			lcm, rcm := branchCams(lc, c.Name), branchCams(rc, c.Name)
			cams := make(map[string][]string, len(lcm)+len(rcm))
			for k, v := range lcm {
				cams[k] = mergeCams(cams[k], v)
			}
			for k, v := range rcm {
				cams[k] = mergeCams(cams[k], v)
			}
			oc.KeyCams[c.Name] = cams
		}
		if lv, ok := lc.LiteralCols[c.Name]; ok {
			if rv, ok2 := rc.LiteralCols[c.Name]; ok2 && rv == lv {
				oc.LiteralCols[c.Name] = lv
			}
		}
	}
	return out, oc, nil
}

// oracleAggregate computes one aggregate and its sensitivity over a row
// set (the historical implementation, with per-call Num() coercion).
func oracleAggregate(agg query.AggExpr, schema table.Schema, rows []table.Row, cons Constraints) (raw, sens float64, err error) {
	if agg.Fun == query.AggCount {
		return float64(len(rows)), cons.Delta, nil
	}
	rg, ok := exprRange(agg.Arg, cons.Ranges)
	if !ok {
		return 0, 0, fmt.Errorf("rel: %s requires a range constraint on its argument (use range(col, lo, hi))", agg.Fun)
	}
	width := rg.Width()
	var vals []float64
	for _, row := range rows {
		v, err := evalExpr(agg.Arg, schema, row)
		if err != nil {
			return 0, 0, err
		}
		x := v.Num()
		if x < rg.Lo {
			x = rg.Lo
		}
		if x > rg.Hi {
			x = rg.Hi
		}
		vals = append(vals, x)
	}
	switch agg.Fun {
	case query.AggSum:
		var s float64
		for _, v := range vals {
			s += v
		}
		return s, cons.Delta * width, nil
	case query.AggAvg:
		if math.IsInf(cons.Size, 1) {
			return 0, 0, fmt.Errorf("rel: AVG requires a bounded relation size (use LIMIT or GROUP BY ... WITH KEYS)")
		}
		var s float64
		for _, v := range vals {
			s += v
		}
		mean := 0.0
		if len(vals) > 0 {
			mean = s / float64(len(vals))
		}
		return mean, cons.Delta * width / math.Max(cons.Size, 1), nil
	case query.AggVar:
		if math.IsInf(cons.Size, 1) {
			return 0, 0, fmt.Errorf("rel: VAR requires a bounded relation size")
		}
		if len(vals) == 0 {
			return 0, square(cons.Delta*width) / math.Max(cons.Size, 1), nil
		}
		var s float64
		for _, v := range vals {
			s += v
		}
		mean := s / float64(len(vals))
		var ss float64
		for _, v := range vals {
			d := v - mean
			ss += d * d
		}
		return ss / float64(len(vals)), square(cons.Delta*width) / math.Max(cons.Size, 1), nil
	default:
		return 0, 0, fmt.Errorf("rel: unsupported aggregation %v", agg.Fun)
	}
}

// oracleExecuteSelect runs one SELECT through the historical row-major
// pipeline.
func oracleExecuteSelect(st *query.SelectStmt, env Env) ([]Release, error) {
	tbl, cons, err := oracleExecRel(st.From, env)
	if err != nil {
		return nil, err
	}
	begin, end := cons.Window()
	spans := cameraSpans(cons)

	base := Release{Fun: st.Agg.Fun, Begin: begin, End: end}

	if len(st.GroupBy) == 0 {
		if st.Agg.Fun == query.AggArgmax {
			return nil, fmt.Errorf("rel: ARGMAX requires GROUP BY")
		}
		raw, sens, err := oracleAggregate(st.Agg, tbl.Schema, tbl.Rows, cons)
		if err != nil {
			return nil, err
		}
		r := base
		r.Desc = aggDesc(st.Agg, "")
		r.Raw = raw
		r.Sensitivity = sens
		return []Release{withWindows(r, spans, nil)}, nil
	}

	if len(st.GroupBy) != 1 {
		return nil, fmt.Errorf("rel: outer GROUP BY supports a single column (got %v)", st.GroupBy)
	}
	col := st.GroupBy[0]
	ci := tbl.Schema.Index(col)
	if ci < 0 {
		return nil, fmt.Errorf("rel: GROUP BY unknown column %q", col)
	}

	var keys []table.Value
	var windows [][2]time.Time
	switch {
	case len(st.GroupKeys) > 0:
		keys = st.GroupKeys
		for range keys {
			windows = append(windows, [2]time.Time{begin, end})
		}
	case cons.Trusted[col]:
		spec, ok := cons.Buckets[col]
		if !ok {
			return nil, fmt.Errorf("rel: cannot enumerate buckets of trusted column %q; use hour()/day()/bin()", col)
		}
		keys, windows = enumerateBuckets(spec, begin, end)
	default:
		return nil, fmt.Errorf("rel: GROUP BY %q requires WITH KEYS (analyst-defined keys leak data)", col)
	}

	byKey := map[string][]table.Row{}
	for _, row := range tbl.Rows {
		byKey[row[ci].Key()] = append(byKey[row[ci].Key()], row)
	}

	if st.Agg.Fun == query.AggArgmax {
		r := base
		r.Desc = aggDesc(st.Agg, col)
		r.Sensitivity = cons.Delta
		if kd, ok := cons.KeyDeltas[col]; ok {
			maxD, covered := 0.0, true
			for _, k := range keys {
				d, ok := kd[k.Str()]
				if !ok {
					covered = false
					break
				}
				if d > maxD {
					maxD = d
				}
			}
			if covered {
				r.Sensitivity = maxD
			}
		}
		for _, k := range keys {
			r.Scores = append(r.Scores, Score{Key: k, Raw: float64(len(byKey[k.Key()]))})
		}
		return []Release{withWindows(r, spans, nil)}, nil
	}

	kd, hasKD := cons.KeyDeltas[col]
	kc, hasKC := cons.KeyCams[col]
	var out []Release
	for i, k := range keys {
		consK := cons
		if hasKD {
			consK.Delta = kd[k.Str()]
		}
		raw, sens, err := oracleAggregate(st.Agg, tbl.Schema, byKey[k.Key()], consK)
		if err != nil {
			return nil, err
		}
		r := base
		r.Desc = aggDesc(st.Agg, "") + "[" + col + "=" + k.Str() + "]"
		r.Key = k
		r.HasKey = true
		r.Raw = raw
		r.Sensitivity = sens
		r.Begin, r.End = windows[i][0], windows[i][1]
		var only []string
		if hasKC {
			only = kc[k.Str()]
			if only == nil {
				only = []string{}
			}
		}
		out = append(out, withWindows(r, spans, only))
	}
	// Keep the oracle's release order aligned with the production paths
	// (both sort keyed releases by group key).
	sortReleases(out)
	return out, nil
}
