package rel

import (
	"math/rand"
	"testing"

	"privid/internal/table"
)

// TestSensitivityDataIndependence pins the property the whole threat
// model rests on: the computed sensitivity of a query must depend only
// on trusted metadata (chunking, max_rows, policy, the query text) —
// NEVER on table contents, which the analyst's executable controls.
// We run the same queries over many randomized table fillings and
// require bit-identical sensitivities.
func TestSensitivityDataIndependence(t *testing.T) {
	queries := []string{
		`SELECT COUNT(*) FROM tableA;`,
		`SELECT AVG(range(speed, 30, 60)) FROM tableA;`,
		`SELECT SUM(range(speed, 0, 100)) FROM (SELECT speed FROM tableA WHERE speed > 10);`,
		`SELECT color, COUNT(plate) FROM (SELECT plate, color FROM tableA GROUP BY plate)
		   GROUP BY color WITH KEYS ["RED", "WHITE"];`,
		`SELECT VAR(range(speed, 0, 80)) FROM (SELECT speed FROM tableA LIMIT 50);`,
	}
	meta := testMeta("tableA", "camA")
	base := float64(meta.Begin.Unix())

	fill := func(seed int64, rows int) *table.Table {
		rng := rand.New(rand.NewSource(seed))
		tbl := table.New(carSchema())
		colors := []string{"RED", "WHITE", "SILVER", "BLACK", "zzz", ""}
		for i := 0; i < rows; i++ {
			tbl.Append(table.Row{
				table.S(randPlate(rng)),
				table.S(colors[rng.Intn(len(colors))]),
				table.N(rng.Float64()*500 - 100), // wildly out-of-range values
				table.N(base + float64(rng.Intn(500))),
			})
		}
		return tbl
	}

	for qi, q := range queries {
		st := parseSelect(t, q)
		var want []float64
		for seed := int64(0); seed < 8; seed++ {
			env := Env{"tableA": &Instance{Metas: []TableMeta{meta}, Data: fill(seed, int(seed)*37%200)}}
			rels, err := ExecuteSelect(st, env)
			if err != nil {
				t.Fatalf("query %d seed %d: %v", qi, seed, err)
			}
			sens := make([]float64, len(rels))
			for i, r := range rels {
				sens[i] = r.Sensitivity
			}
			if want == nil {
				want = sens
				continue
			}
			if len(sens) != len(want) {
				t.Fatalf("query %d seed %d: release count changed with data: %d vs %d",
					qi, seed, len(sens), len(want))
			}
			for i := range sens {
				if sens[i] != want[i] {
					t.Fatalf("query %d seed %d release %d: sensitivity %v != %v — sensitivity leaked data dependence",
						qi, seed, i, sens[i], want[i])
				}
			}
		}
	}
}

func randPlate(rng *rand.Rand) string {
	const letters = "ABCDEFGH"
	b := make([]byte, 3)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

// TestReleaseCountDataIndependence: the *number* of releases (and
// their keys) must also be data-independent — that is why WITH KEYS
// exists and why bucket enumeration covers empty buckets.
func TestReleaseCountDataIndependence(t *testing.T) {
	st := parseSelect(t, `SELECT COUNT(*) FROM (SELECT bin(chunk, 100) AS b FROM tableA) GROUP BY b;`)
	meta := testMeta("tableA", "camA")
	base := float64(meta.Begin.Unix())

	// Empty table vs table with rows in only one bucket: same release
	// keys either way.
	empty := Env{"tableA": &Instance{Metas: []TableMeta{meta}, Data: table.New(carSchema())}}
	one := table.New(carSchema())
	one.Append(table.Row{table.S("AAA"), table.S("RED"), table.N(42), table.N(base + 250)})
	withRow := Env{"tableA": &Instance{Metas: []TableMeta{meta}, Data: one}}

	re, err := ExecuteSelect(st, empty)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := ExecuteSelect(st, withRow)
	if err != nil {
		t.Fatal(err)
	}
	if len(re) != len(rw) {
		t.Fatalf("release counts differ with data: %d vs %d", len(re), len(rw))
	}
	for i := range re {
		if !re[i].Key.Equal(rw[i].Key) {
			t.Errorf("release %d keys differ: %v vs %v", i, re[i].Key, rw[i].Key)
		}
	}
}
