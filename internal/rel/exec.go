package rel

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"privid/internal/query"
	"privid/internal/table"
)

// execRel evaluates a relational expression, returning its rows and
// the propagated privacy constraints. Operators work directly on the
// tables' columnar backing: selections produce index vectors, group and
// join keys are hashed (with exact-equality collision checks) instead
// of concatenated into strings, and output columns are preallocated
// from the input cardinality.
func execRel(r query.RelExpr, env Env) (*table.Table, Constraints, error) {
	switch rel := r.(type) {
	case *query.TableRef:
		return execTableRef(rel, env)
	case *query.SelectExpr:
		return execSelect(rel, env)
	case *query.GroupExpr:
		return execGroup(rel, env)
	case *query.JoinExpr:
		return execJoin(rel, env)
	case *query.UnionExpr:
		return execUnion(rel, env)
	default:
		return nil, Constraints{}, fmt.Errorf("rel: unsupported expression %T", r)
	}
}

func execTableRef(rel *query.TableRef, env Env) (*table.Table, Constraints, error) {
	inst, ok := env[rel.Name]
	if !ok {
		return nil, Constraints{}, fmt.Errorf("rel: unknown table %q", rel.Name)
	}
	if len(inst.Metas) == 0 {
		return nil, Constraints{}, fmt.Errorf("rel: table %q has no shard metadata", rel.Name)
	}
	// Fig. 10's UNION rule composes the per-camera shards: ΔP and C̃s
	// of the whole table are the sums over shards.
	cons := Constraints{
		Ranges:  map[string]Range{},
		Trusted: map[string]bool{table.ChunkColumn: true},
		Buckets: map[string]BucketSpec{},
		Metas:   append([]TableMeta(nil), inst.Metas...),
	}
	for _, m := range inst.Metas {
		cons.Delta += m.Delta()
		cons.Size += m.Size()
	}
	// The chunk column's bucket width is trusted only when every shard
	// chunks at the same wall-clock width (a frame-count chunk spec on
	// cameras with different FPS produces mismatched widths).
	chunkW := inst.Metas[0].FPS.Seconds(inst.Metas[0].ChunkFrames)
	uniform := true
	for _, m := range inst.Metas[1:] {
		if m.FPS.Seconds(m.ChunkFrames) != chunkW {
			uniform = false
			break
		}
	}
	if uniform {
		cons.Buckets[table.ChunkColumn] = BucketSpec{WidthSec: chunkW}
	}
	if inst.Data.Schema.Has(table.RegionColumn) {
		cons.Trusted[table.RegionColumn] = true
	}
	if inst.Data.Schema.Has(table.CameraColumn) {
		// Engine-stamped provenance: rows with camera=c can only come
		// from c's shards, so the column partitions the table with
		// per-key ΔP equal to each camera's own shard delta.
		cons.Trusted[table.CameraColumn] = true
		kd := map[string]float64{}
		kc := map[string][]string{}
		for _, m := range inst.Metas {
			kd[m.Camera] += m.Delta()
			kc[m.Camera] = []string{m.Camera}
		}
		cons.KeyDeltas = map[string]map[string]float64{table.CameraColumn: kd}
		cons.KeyCams = map[string]map[string][]string{table.CameraColumn: kc}
		if len(kd) == 1 {
			cons.LiteralCols = map[string]string{table.CameraColumn: inst.Metas[0].Camera}
		}
	}
	return inst.Data, cons, nil
}

func execSelect(rel *query.SelectExpr, env Env) (*table.Table, Constraints, error) {
	in, cons, err := execRel(rel.From, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	n := in.Len()
	// WHERE filters on the input schema, producing a selection vector.
	all := true // identity selection: every row kept, in order
	var sel []int
	if rel.Where != nil && n > 0 {
		cond, err := evalVec(rel.Where, in)
		if err != nil {
			return nil, Constraints{}, err
		}
		sel = selTrue(cond)
		all = false
	}
	kept := n
	if !all {
		kept = len(sel)
	}
	// LIMIT caps the row count and, importantly, binds C̃s (Fig. 10's
	// σ_limit rule).
	if rel.Limit > 0 && kept > rel.Limit {
		if all {
			sel = make([]int, rel.Limit)
			for i := range sel {
				sel[i] = i
			}
			all = false
		} else {
			sel = sel[:rel.Limit]
		}
		kept = rel.Limit
	}
	out := cons.clone()
	if rel.Limit > 0 {
		out.Size = math.Min(out.Size, float64(rel.Limit))
	}
	if rel.Star {
		if all {
			return in, out, nil
		}
		return in.Gather(sel), out, nil
	}
	// Projection: evaluate each item, deriving the new constraint
	// maps (Fig. 10's Π rules).
	var cols []table.Column
	names := make([]string, len(rel.Items))
	for i, it := range rel.Items {
		name := it.Alias
		if name == "" {
			name = exprName(it.Expr, i)
		}
		names[i] = name
		cols = append(cols, table.Column{Name: name, Type: exprType(it.Expr, in.Schema)})
	}
	newRanges := map[string]Range{}
	newTrusted := map[string]bool{}
	newBuckets := map[string]BucketSpec{}
	for i, it := range rel.Items {
		if rg, ok := exprRange(it.Expr, cons.Ranges); ok {
			newRanges[names[i]] = rg
		}
		if exprTrusted(it.Expr, cons.Trusted) {
			newTrusted[names[i]] = true
		}
		if b, ok := exprBucket(it.Expr, cons.Buckets); ok {
			newBuckets[names[i]] = b
		}
	}
	newLiterals := map[string]string{}
	newKeyDeltas := map[string]map[string]float64{}
	newKeyCams := map[string]map[string][]string{}
	for i, it := range rel.Items {
		switch ex := it.Expr.(type) {
		case *query.StrLit:
			newLiterals[names[i]] = ex.V
		case *query.ColRef:
			if v, ok := cons.LiteralCols[ex.Name]; ok {
				newLiterals[names[i]] = v
			}
			if kd, ok := cons.KeyDeltas[ex.Name]; ok {
				newKeyDeltas[names[i]] = kd
			}
			if kc, ok := cons.KeyCams[ex.Name]; ok {
				newKeyCams[names[i]] = kc
			}
		}
	}
	out.Ranges = newRanges
	out.Trusted = newTrusted
	out.Buckets = newBuckets
	out.LiteralCols = newLiterals
	out.KeyDeltas = newKeyDeltas
	out.KeyCams = newKeyCams
	out.DedupKeys = nil

	if kept == 0 {
		// No rows survive; item expressions are never evaluated (the
		// row-at-a-time evaluator had the same property).
		return table.New(table.Schema{Cols: cols}), out, nil
	}
	b := table.NewBuilder(table.Schema{Cols: cols}, kept)
	for i, it := range rel.Items {
		v, err := evalVec(it.Expr, in)
		if err != nil {
			return nil, Constraints{}, err
		}
		if all {
			setCol(b, i, v)
		} else {
			setCol(b, i, gatherVec(v, sel))
		}
	}
	return b.Build(), out, nil
}

// hashRowKey chains the key hash of row i over the idx columns.
func hashRowKey(t *table.Table, idx []int, i int) uint64 {
	h := table.HashSeed
	for _, j := range idx {
		h = t.HashCell(h, i, j)
	}
	return h
}

// rowKeysEqual reports grouping-key equality of two rows (possibly of
// different tables) over parallel key-column lists.
func rowKeysEqual(a *table.Table, ai int, aIdx []int, b *table.Table, bi int, bIdx []int) bool {
	for k := range aIdx {
		if !table.CellKeyEqual(a, ai, aIdx[k], b, bi, bIdx[k]) {
			return false
		}
	}
	return true
}

func execGroup(rel *query.GroupExpr, env Env) (*table.Table, Constraints, error) {
	in, cons, err := execRel(rel.From, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	idx := make([]int, len(rel.Keys))
	for i, k := range rel.Keys {
		idx[i] = in.Schema.Index(k)
		if idx[i] < 0 {
			return nil, Constraints{}, fmt.Errorf("rel: GROUP BY unknown column %q", k)
		}
	}
	var allow map[uint64][]table.Value
	if len(rel.WithKeys) > 0 {
		if len(rel.Keys) != 1 {
			return nil, Constraints{}, fmt.Errorf("rel: WITH KEYS requires a single group column")
		}
		allow = make(map[uint64][]table.Value, len(rel.WithKeys))
		for _, k := range rel.WithKeys {
			allow[k.KeyHash()] = append(allow[k.KeyHash()], k)
		}
	}
	// Deduplicate: one representative row (the first) per key tuple.
	n := in.Len()
	seen := make(map[uint64][]int)
	sel := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if allow != nil {
			ok := false
			for _, v := range allow[in.HashCell(table.HashSeed, i, idx[0])] {
				if in.At(i, idx[0]).KeyEqual(v) {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
		}
		h := hashRowKey(in, idx, i)
		dup := false
		for _, p := range seen[h] {
			if rowKeysEqual(in, i, idx, in, p, idx) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h] = append(seen[h], i)
		sel = append(sel, i)
	}
	out := in.Gather(sel)
	oc := cons.clone()
	switch {
	case len(rel.WithKeys) > 0:
		oc.Size = math.Min(oc.Size, float64(len(rel.WithKeys)))
	default:
		// Dedup can only shrink the relation; without explicit keys
		// the bound carries over unchanged.
	}
	oc.DedupKeys = append([]string(nil), rel.Keys...)
	return out, oc, nil
}

func keysMatch(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, k := range a {
		set[k] = true
	}
	for _, k := range b {
		if !set[k] {
			return false
		}
	}
	return true
}

// firstPerKey returns, for each distinct key tuple in row order, the
// index of its first row, plus the hash map for key lookups.
func firstPerKey(t *table.Table, idx []int) (order []int, byHash map[uint64][]int) {
	byHash = make(map[uint64][]int)
	for i := 0; i < t.Len(); i++ {
		h := hashRowKey(t, idx, i)
		dup := false
		for _, p := range byHash[h] {
			if rowKeysEqual(t, i, idx, t, p, idx) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		byHash[h] = append(byHash[h], i)
		order = append(order, i)
	}
	return order, byHash
}

// lookupKey finds the recorded row of `in` (via byHash over inIdx)
// whose key equals row i of probe (over probeIdx), or -1.
func lookupKey(byHash map[uint64][]int, in *table.Table, inIdx []int, probe *table.Table, probeIdx []int, i int) int {
	h := hashRowKey(probe, probeIdx, i)
	for _, p := range byHash[h] {
		if rowKeysEqual(probe, i, probeIdx, in, p, inIdx) {
			return p
		}
	}
	return -1
}

func execJoin(rel *query.JoinExpr, env Env) (*table.Table, Constraints, error) {
	lt, lc, err := execRel(rel.Left, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	rt, rc, err := execRel(rel.Right, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	// Fig. 10 restricts joins to inputs grouped on the join key(s):
	// otherwise a single event's rows multiply through the join and
	// the sensitivity bound no longer holds.
	if !keysMatch(lc.DedupKeys, rel.On) || !keysMatch(rc.DedupKeys, rel.On) {
		return nil, Constraints{}, fmt.Errorf("rel: JOIN inputs must be GROUP BY'd on the join key(s) %v", rel.On)
	}
	lIdx := make([]int, len(rel.On))
	rIdx := make([]int, len(rel.On))
	for i, k := range rel.On {
		lIdx[i] = lt.Schema.Index(k)
		rIdx[i] = rt.Schema.Index(k)
		if lIdx[i] < 0 || rIdx[i] < 0 {
			return nil, Constraints{}, fmt.Errorf("rel: JOIN column %q missing", k)
		}
	}
	onSet := make(map[string]bool, len(rel.On))
	for _, k := range rel.On {
		onSet[k] = true
	}
	// Output schema: key columns, then left non-keys, then right
	// non-keys (suffixed on clashes).
	var cols []table.Column
	for i, k := range rel.On {
		cols = append(cols, table.Column{Name: k, Type: lt.Schema.Cols[lIdx[i]].Type})
	}
	type pick struct {
		side int // 0 = left, 1 = right
		col  int
	}
	var picks []pick
	used := map[string]bool{}
	for _, k := range rel.On {
		used[k] = true
	}
	for i, c := range lt.Schema.Cols {
		if onSet[c.Name] {
			continue
		}
		name := c.Name
		for used[name] {
			name += "_l"
		}
		used[name] = true
		cols = append(cols, table.Column{Name: name, Type: c.Type})
		picks = append(picks, pick{0, i})
	}
	for i, c := range rt.Schema.Cols {
		if onSet[c.Name] {
			continue
		}
		name := c.Name
		for used[name] {
			name += "_r"
		}
		used[name] = true
		cols = append(cols, table.Column{Name: name, Type: c.Type})
		picks = append(picks, pick{1, i})
	}
	schema := table.Schema{Cols: cols}

	// First row per key on each side (inputs are deduped, but stay
	// defensive), then match by hashed key.
	lOrder, lByHash := firstPerKey(lt, lIdx)
	rOrder, rByHash := firstPerKey(rt, rIdx)

	var lsel, rsel []int // row per output row; -1 = missing side
	if rel.Outer {
		lsel = make([]int, 0, len(lOrder)+len(rOrder))
		rsel = make([]int, 0, len(lOrder)+len(rOrder))
		for _, li := range lOrder {
			lsel = append(lsel, li)
			rsel = append(rsel, lookupKey(rByHash, rt, rIdx, lt, lIdx, li))
		}
		// Keys only on the right.
		for _, ri := range rOrder {
			if lookupKey(lByHash, lt, lIdx, rt, rIdx, ri) < 0 {
				lsel = append(lsel, -1)
				rsel = append(rsel, ri)
			}
		}
	} else {
		lsel = make([]int, 0, len(lOrder))
		rsel = make([]int, 0, len(lOrder))
		for _, li := range lOrder {
			if ri := lookupKey(rByHash, rt, rIdx, lt, lIdx, li); ri >= 0 {
				lsel = append(lsel, li)
				rsel = append(rsel, ri)
			}
		}
	}

	nout := len(lsel)
	b := table.NewBuilder(schema, nout)
	// Key columns: the left cell, or the right cell for right-only keys.
	for k := range rel.On {
		lk, rk := lIdx[k], rIdx[k]
		fillJoinCol(b, k, cols[k].Type, nout, func(i int) (*table.Table, int, int) {
			if lsel[i] >= 0 {
				return lt, lk, lsel[i]
			}
			return rt, rk, rsel[i]
		})
	}
	// Picked columns: own side's cell, or the type default when the
	// outer join's other side is missing.
	for pi, p := range picks {
		jout := len(rel.On) + pi
		side, col := p.side, p.col
		fillJoinCol(b, jout, cols[jout].Type, nout, func(i int) (*table.Table, int, int) {
			if side == 0 {
				if lsel[i] >= 0 {
					return lt, col, lsel[i]
				}
			} else if rsel[i] >= 0 {
				return rt, col, rsel[i]
			}
			return nil, 0, 0
		})
	}
	out := b.Build()

	// Constraints: the additive JOIN rule (§6.3 "primed table"
	// argument): a value need only appear in either input to appear in
	// the intersection, so ΔP adds.
	oc := Constraints{
		Delta:   lc.Delta + rc.Delta,
		Ranges:  map[string]Range{},
		Trusted: map[string]bool{},
		Buckets: map[string]BucketSpec{},
		Metas:   append(append([]TableMeta(nil), lc.Metas...), rc.Metas...),
	}
	if rel.Outer {
		oc.Size = lc.Size + rc.Size
	} else {
		oc.Size = math.Min(lc.Size, rc.Size)
	}
	for i, k := range rel.On {
		lr, lok := lc.Ranges[k]
		rr, rok := rc.Ranges[k]
		if lok && rok {
			oc.Ranges[k] = Range{math.Min(lr.Lo, rr.Lo), math.Max(lr.Hi, rr.Hi)}
		}
		oc.Trusted[k] = lc.Trusted[k] && rc.Trusted[k]
		lb, lbok := lc.Buckets[k]
		if rb, rbok := rc.Buckets[k]; lbok && rbok && lb == rb {
			oc.Buckets[k] = lb
		}
		_ = i
	}
	ci := len(rel.On)
	for _, p := range picks {
		name := cols[ci].Name
		src := lc
		origin := lt.Schema.Cols[p.col].Name
		if p.side == 1 {
			src = rc
			origin = rt.Schema.Cols[p.col].Name
		}
		if rg, ok := src.Ranges[origin]; ok {
			if rel.Outer {
				// A missing side contributes the 0 default.
				rg = Range{math.Min(rg.Lo, 0), math.Max(rg.Hi, 0)}
			}
			oc.Ranges[name] = rg
		}
		if src.Trusted[origin] && !rel.Outer {
			oc.Trusted[name] = true
		}
		ci++
	}
	oc.DedupKeys = append([]string(nil), rel.On...)
	return out, oc, nil
}

// fillJoinCol writes one join output column. src yields the source
// cell of each output row ((nil, 0, 0) for the missing side of an
// outer join, which takes the type default: 0 / ""). A source cell of
// the other type coerces — via the parse-once view into a NUMBER
// column, via formatting into a STRING column.
func fillJoinCol(b *table.Builder, jout int, typ table.DType, nout int, src func(i int) (*table.Table, int, int)) {
	if typ == table.DNumber {
		out := make([]float64, nout)
		for i := 0; i < nout; i++ {
			if t, c, r := src(i); t != nil {
				out[i] = t.Nums(c)[r]
			}
		}
		b.SetNums(jout, out)
		return
	}
	strs := make([]string, nout)
	nums := make([]float64, nout)
	valid := make([]bool, nout)
	for i := 0; i < nout; i++ {
		t, c, r := src(i)
		switch {
		case t == nil:
			// "" default: zero values, unparseable.
		case t.Schema.Cols[c].Type == table.DString:
			strs[i] = t.Strs(c)[r]
			nums[i] = t.Nums(c)[r]
			valid[i] = t.Valid(c)[r]
		default:
			f := t.Nums(c)[r]
			strs[i] = strconv.FormatFloat(f, 'g', -1, 64)
			nums[i] = f
			valid[i] = true
		}
	}
	b.SetStrsView(jout, strs, nums, valid)
}

func execUnion(rel *query.UnionExpr, env Env) (*table.Table, Constraints, error) {
	lt, lc, err := execRel(rel.Left, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	rt, rc, err := execRel(rel.Right, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	// Column sets must match by name; the right side is re-ordered to
	// the left schema.
	remap := make([]int, len(lt.Schema.Cols))
	for i, c := range lt.Schema.Cols {
		j := rt.Schema.Index(c.Name)
		if j < 0 {
			return nil, Constraints{}, fmt.Errorf("rel: UNION column %q missing on right side", c.Name)
		}
		remap[i] = j
	}
	if len(rt.Schema.Cols) != len(lt.Schema.Cols) {
		return nil, Constraints{}, fmt.Errorf("rel: UNION column counts differ (%d vs %d)", len(lt.Schema.Cols), len(rt.Schema.Cols))
	}
	nl, nr := lt.Len(), rt.Len()
	b := table.NewBuilder(lt.Schema, nl+nr)
	for i, c := range lt.Schema.Cols {
		j := remap[i]
		if c.Type == table.DNumber {
			out := make([]float64, nl+nr)
			copy(out, lt.Nums(i))
			// The right column's numeric view IS its NUMBER coercion,
			// whatever its declared type.
			copy(out[nl:], rt.Nums(j))
			b.SetNums(i, out)
			continue
		}
		strs := make([]string, nl+nr)
		nums := make([]float64, nl+nr)
		valid := make([]bool, nl+nr)
		copy(strs, lt.Strs(i))
		copy(nums, lt.Nums(i))
		copy(valid, lt.Valid(i))
		if rt.Schema.Cols[j].Type == table.DString {
			copy(strs[nl:], rt.Strs(j))
			copy(nums[nl:], rt.Nums(j))
			copy(valid[nl:], rt.Valid(j))
		} else {
			rn := rt.Nums(j)
			for k, f := range rn {
				strs[nl+k] = strconv.FormatFloat(f, 'g', -1, 64)
				nums[nl+k] = f
				valid[nl+k] = true
			}
		}
		b.SetStrsView(i, strs, nums, valid)
	}
	out := b.Build()
	oc := Constraints{
		Delta:   lc.Delta + rc.Delta,
		Size:    lc.Size + rc.Size,
		Ranges:  map[string]Range{},
		Trusted: map[string]bool{},
		Buckets: map[string]BucketSpec{},
		Metas:   append(append([]TableMeta(nil), lc.Metas...), rc.Metas...),
	}
	oc.LiteralCols = map[string]string{}
	oc.KeyDeltas = map[string]map[string]float64{}
	oc.KeyCams = map[string]map[string][]string{}
	for _, c := range lt.Schema.Cols {
		lr, lok := lc.Ranges[c.Name]
		rr, rok := rc.Ranges[c.Name]
		if lok && rok {
			oc.Ranges[c.Name] = Range{math.Min(lr.Lo, rr.Lo), math.Max(lr.Hi, rr.Hi)}
		}
		oc.Trusted[c.Name] = lc.Trusted[c.Name] && rc.Trusted[c.Name]
		if lb, ok := lc.Buckets[c.Name]; ok {
			if rb, ok2 := rc.Buckets[c.Name]; ok2 && lb == rb {
				oc.Buckets[c.Name] = lb
			}
		}
		// A column that is a (possibly different) trusted literal on
		// each side partitions the union: rows with each value can
		// only come from the branch(es) that carry it, so each key's
		// event influence is that branch's Δ — Fig. 10's per-key
		// ARGMAX sensitivity.
		ld, lok2 := branchDeltas(lc, c.Name)
		rd, rok2 := branchDeltas(rc, c.Name)
		if lok2 && rok2 {
			merged := make(map[string]float64, len(ld)+len(rd))
			for k, v := range ld {
				merged[k] = v
			}
			for k, v := range rd {
				merged[k] += v
			}
			oc.KeyDeltas[c.Name] = merged
			lcm, rcm := branchCams(lc, c.Name), branchCams(rc, c.Name)
			cams := make(map[string][]string, len(lcm)+len(rcm))
			for k, v := range lcm {
				cams[k] = mergeCams(cams[k], v)
			}
			for k, v := range rcm {
				cams[k] = mergeCams(cams[k], v)
			}
			oc.KeyCams[c.Name] = cams
		}
		if lv, ok := lc.LiteralCols[c.Name]; ok {
			if rv, ok2 := rc.LiteralCols[c.Name]; ok2 && rv == lv {
				oc.LiteralCols[c.Name] = lv
			}
		}
	}
	return out, oc, nil
}

// branchDeltas returns the per-key ΔP partition of a relation on one
// column: an existing KeyDeltas entry, or a single-key map when the
// column is a trusted constant for the whole relation.
func branchDeltas(c Constraints, col string) (map[string]float64, bool) {
	if kd, ok := c.KeyDeltas[col]; ok && len(kd) > 0 {
		return kd, true
	}
	if v, ok := c.LiteralCols[col]; ok {
		return map[string]float64{v: c.Delta}, true
	}
	return nil, false
}

// branchCams returns the per-key camera attribution of a relation on
// one column, mirroring branchDeltas: an existing KeyCams entry, or —
// for a trusted whole-relation constant — the full camera set of the
// branch under that key.
func branchCams(c Constraints, col string) map[string][]string {
	if kc, ok := c.KeyCams[col]; ok && len(kc) > 0 {
		return kc
	}
	if v, ok := c.LiteralCols[col]; ok {
		return map[string][]string{v: camerasOf(c)}
	}
	return nil
}

// mergeCams unions two sorted camera lists.
func mergeCams(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, lst := range [2][]string{a, b} {
		for _, c := range lst {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Strings(out)
	return out
}
