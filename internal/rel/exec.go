package rel

import (
	"fmt"
	"math"
	"sort"

	"privid/internal/query"
	"privid/internal/table"
)

// execRel evaluates a relational expression, returning its rows and
// the propagated privacy constraints.
func execRel(r query.RelExpr, env Env) (*table.Table, Constraints, error) {
	switch rel := r.(type) {
	case *query.TableRef:
		return execTableRef(rel, env)
	case *query.SelectExpr:
		return execSelect(rel, env)
	case *query.GroupExpr:
		return execGroup(rel, env)
	case *query.JoinExpr:
		return execJoin(rel, env)
	case *query.UnionExpr:
		return execUnion(rel, env)
	default:
		return nil, Constraints{}, fmt.Errorf("rel: unsupported expression %T", r)
	}
}

func execTableRef(rel *query.TableRef, env Env) (*table.Table, Constraints, error) {
	inst, ok := env[rel.Name]
	if !ok {
		return nil, Constraints{}, fmt.Errorf("rel: unknown table %q", rel.Name)
	}
	if len(inst.Metas) == 0 {
		return nil, Constraints{}, fmt.Errorf("rel: table %q has no shard metadata", rel.Name)
	}
	// Fig. 10's UNION rule composes the per-camera shards: ΔP and C̃s
	// of the whole table are the sums over shards.
	cons := Constraints{
		Ranges:  map[string]Range{},
		Trusted: map[string]bool{table.ChunkColumn: true},
		Buckets: map[string]BucketSpec{},
		Metas:   append([]TableMeta(nil), inst.Metas...),
	}
	for _, m := range inst.Metas {
		cons.Delta += m.Delta()
		cons.Size += m.Size()
	}
	// The chunk column's bucket width is trusted only when every shard
	// chunks at the same wall-clock width (a frame-count chunk spec on
	// cameras with different FPS produces mismatched widths).
	chunkW := inst.Metas[0].FPS.Seconds(inst.Metas[0].ChunkFrames)
	uniform := true
	for _, m := range inst.Metas[1:] {
		if m.FPS.Seconds(m.ChunkFrames) != chunkW {
			uniform = false
			break
		}
	}
	if uniform {
		cons.Buckets[table.ChunkColumn] = BucketSpec{WidthSec: chunkW}
	}
	if inst.Data.Schema.Has(table.RegionColumn) {
		cons.Trusted[table.RegionColumn] = true
	}
	if inst.Data.Schema.Has(table.CameraColumn) {
		// Engine-stamped provenance: rows with camera=c can only come
		// from c's shards, so the column partitions the table with
		// per-key ΔP equal to each camera's own shard delta.
		cons.Trusted[table.CameraColumn] = true
		kd := map[string]float64{}
		kc := map[string][]string{}
		for _, m := range inst.Metas {
			kd[m.Camera] += m.Delta()
			kc[m.Camera] = []string{m.Camera}
		}
		cons.KeyDeltas = map[string]map[string]float64{table.CameraColumn: kd}
		cons.KeyCams = map[string]map[string][]string{table.CameraColumn: kc}
		if len(kd) == 1 {
			cons.LiteralCols = map[string]string{table.CameraColumn: inst.Metas[0].Camera}
		}
	}
	return inst.Data, cons, nil
}

func execSelect(rel *query.SelectExpr, env Env) (*table.Table, Constraints, error) {
	in, cons, err := execRel(rel.From, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	rows := in.Rows
	// WHERE filters on the input schema.
	if rel.Where != nil {
		var kept []table.Row
		for _, row := range rows {
			v, err := evalExpr(rel.Where, in.Schema, row)
			if err != nil {
				return nil, Constraints{}, err
			}
			if v.Num() != 0 {
				kept = append(kept, row)
			}
		}
		rows = kept
	}
	// LIMIT caps the row count and, importantly, binds C̃s (Fig. 10's
	// σ_limit rule).
	if rel.Limit > 0 && len(rows) > rel.Limit {
		rows = rows[:rel.Limit]
	}
	out := cons.clone()
	if rel.Limit > 0 {
		out.Size = math.Min(out.Size, float64(rel.Limit))
	}
	if rel.Star {
		t := table.New(in.Schema)
		t.Rows = rows
		return t, out, nil
	}
	// Projection: evaluate each item, deriving the new constraint
	// maps (Fig. 10's Π rules).
	var cols []table.Column
	names := make([]string, len(rel.Items))
	for i, it := range rel.Items {
		name := it.Alias
		if name == "" {
			name = exprName(it.Expr, i)
		}
		names[i] = name
		cols = append(cols, table.Column{Name: name, Type: exprType(it.Expr, in.Schema)})
	}
	newRanges := map[string]Range{}
	newTrusted := map[string]bool{}
	newBuckets := map[string]BucketSpec{}
	for i, it := range rel.Items {
		if rg, ok := exprRange(it.Expr, cons.Ranges); ok {
			newRanges[names[i]] = rg
		}
		if exprTrusted(it.Expr, cons.Trusted) {
			newTrusted[names[i]] = true
		}
		if b, ok := exprBucket(it.Expr, cons.Buckets); ok {
			newBuckets[names[i]] = b
		}
	}
	newLiterals := map[string]string{}
	newKeyDeltas := map[string]map[string]float64{}
	newKeyCams := map[string]map[string][]string{}
	for i, it := range rel.Items {
		switch ex := it.Expr.(type) {
		case *query.StrLit:
			newLiterals[names[i]] = ex.V
		case *query.ColRef:
			if v, ok := cons.LiteralCols[ex.Name]; ok {
				newLiterals[names[i]] = v
			}
			if kd, ok := cons.KeyDeltas[ex.Name]; ok {
				newKeyDeltas[names[i]] = kd
			}
			if kc, ok := cons.KeyCams[ex.Name]; ok {
				newKeyCams[names[i]] = kc
			}
		}
	}
	out.Ranges = newRanges
	out.Trusted = newTrusted
	out.Buckets = newBuckets
	out.LiteralCols = newLiterals
	out.KeyDeltas = newKeyDeltas
	out.KeyCams = newKeyCams
	out.DedupKeys = nil

	t := &table.Table{Schema: table.Schema{Cols: cols}}
	for _, row := range rows {
		nr := make(table.Row, len(rel.Items))
		for i, it := range rel.Items {
			v, err := evalExpr(it.Expr, in.Schema, row)
			if err != nil {
				return nil, Constraints{}, err
			}
			nr[i] = v.Coerce(cols[i].Type)
		}
		t.Rows = append(t.Rows, nr)
	}
	return t, out, nil
}

func execGroup(rel *query.GroupExpr, env Env) (*table.Table, Constraints, error) {
	in, cons, err := execRel(rel.From, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	idx := make([]int, len(rel.Keys))
	for i, k := range rel.Keys {
		idx[i] = in.Schema.Index(k)
		if idx[i] < 0 {
			return nil, Constraints{}, fmt.Errorf("rel: GROUP BY unknown column %q", k)
		}
	}
	var allow map[string]bool
	if len(rel.WithKeys) > 0 {
		if len(rel.Keys) != 1 {
			return nil, Constraints{}, fmt.Errorf("rel: WITH KEYS requires a single group column")
		}
		allow = make(map[string]bool, len(rel.WithKeys))
		for _, k := range rel.WithKeys {
			allow[k.Key()] = true
		}
	}
	// Deduplicate: one representative row (the first) per key tuple.
	seen := map[string]bool{}
	out := table.New(in.Schema)
	for _, row := range in.Rows {
		key := ""
		for _, j := range idx {
			key += row[j].Key() + "\x00"
		}
		if allow != nil && !allow[row[idx[0]].Key()] {
			continue
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out.Rows = append(out.Rows, row)
	}
	oc := cons.clone()
	switch {
	case len(rel.WithKeys) > 0:
		oc.Size = math.Min(oc.Size, float64(len(rel.WithKeys)))
	default:
		// Dedup can only shrink the relation; without explicit keys
		// the bound carries over unchanged.
	}
	oc.DedupKeys = append([]string(nil), rel.Keys...)
	return out, oc, nil
}

func keysMatch(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, k := range a {
		set[k] = true
	}
	for _, k := range b {
		if !set[k] {
			return false
		}
	}
	return true
}

func execJoin(rel *query.JoinExpr, env Env) (*table.Table, Constraints, error) {
	lt, lc, err := execRel(rel.Left, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	rt, rc, err := execRel(rel.Right, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	// Fig. 10 restricts joins to inputs grouped on the join key(s):
	// otherwise a single event's rows multiply through the join and
	// the sensitivity bound no longer holds.
	if !keysMatch(lc.DedupKeys, rel.On) || !keysMatch(rc.DedupKeys, rel.On) {
		return nil, Constraints{}, fmt.Errorf("rel: JOIN inputs must be GROUP BY'd on the join key(s) %v", rel.On)
	}
	lIdx := make([]int, len(rel.On))
	rIdx := make([]int, len(rel.On))
	for i, k := range rel.On {
		lIdx[i] = lt.Schema.Index(k)
		rIdx[i] = rt.Schema.Index(k)
		if lIdx[i] < 0 || rIdx[i] < 0 {
			return nil, Constraints{}, fmt.Errorf("rel: JOIN column %q missing", k)
		}
	}
	onSet := make(map[string]bool, len(rel.On))
	for _, k := range rel.On {
		onSet[k] = true
	}
	// Output schema: key columns, then left non-keys, then right
	// non-keys (suffixed on clashes).
	var cols []table.Column
	for i, k := range rel.On {
		cols = append(cols, table.Column{Name: k, Type: lt.Schema.Cols[lIdx[i]].Type})
	}
	type pick struct {
		side int // 0 = left, 1 = right
		col  int
	}
	var picks []pick
	used := map[string]bool{}
	for _, k := range rel.On {
		used[k] = true
	}
	for i, c := range lt.Schema.Cols {
		if onSet[c.Name] {
			continue
		}
		name := c.Name
		for used[name] {
			name += "_l"
		}
		used[name] = true
		cols = append(cols, table.Column{Name: name, Type: c.Type})
		picks = append(picks, pick{0, i})
	}
	for i, c := range rt.Schema.Cols {
		if onSet[c.Name] {
			continue
		}
		name := c.Name
		for used[name] {
			name += "_r"
		}
		used[name] = true
		cols = append(cols, table.Column{Name: name, Type: c.Type})
		picks = append(picks, pick{1, i})
	}
	schema := table.Schema{Cols: cols}

	keyOf := func(row table.Row, idx []int) string {
		k := ""
		for _, j := range idx {
			k += row[j].Key() + "\x00"
		}
		return k
	}
	lByKey := map[string]table.Row{}
	var order []string
	for _, row := range lt.Rows {
		k := keyOf(row, lIdx)
		if _, ok := lByKey[k]; !ok {
			lByKey[k] = row
			order = append(order, k)
		}
	}
	rByKey := map[string]table.Row{}
	for _, row := range rt.Rows {
		k := keyOf(row, rIdx)
		if _, ok := rByKey[k]; !ok {
			rByKey[k] = row
		}
	}
	emit := func(out *table.Table, l, r table.Row) {
		row := make(table.Row, 0, len(cols))
		src := l
		idx := lIdx
		if src == nil {
			src = r
			idx = rIdx
		}
		for i := range rel.On {
			row = append(row, src[idx[i]])
		}
		for pi, p := range picks {
			switch {
			case p.side == 0 && l != nil:
				row = append(row, l[p.col])
			case p.side == 1 && r != nil:
				row = append(row, r[p.col])
			default:
				// Missing side of an outer join: type default.
				if cols[len(rel.On)+pi].Type == table.DNumber {
					row = append(row, table.N(0))
				} else {
					row = append(row, table.S(""))
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}

	out := table.New(schema)
	if rel.Outer {
		for _, k := range order {
			emit(out, lByKey[k], rByKey[k]) // rByKey[k] may be nil
		}
		// Keys only on the right.
		var rOrder []string
		seen := map[string]bool{}
		for _, row := range rt.Rows {
			k := keyOf(row, rIdx)
			if !seen[k] {
				seen[k] = true
				rOrder = append(rOrder, k)
			}
		}
		for _, k := range rOrder {
			if _, ok := lByKey[k]; !ok {
				emit(out, nil, rByKey[k])
			}
		}
	} else {
		for _, k := range order {
			if r, ok := rByKey[k]; ok {
				emit(out, lByKey[k], r)
			}
		}
	}

	// Constraints: the additive JOIN rule (§6.3 "primed table"
	// argument): a value need only appear in either input to appear in
	// the intersection, so ΔP adds.
	oc := Constraints{
		Delta:   lc.Delta + rc.Delta,
		Ranges:  map[string]Range{},
		Trusted: map[string]bool{},
		Buckets: map[string]BucketSpec{},
		Metas:   append(append([]TableMeta(nil), lc.Metas...), rc.Metas...),
	}
	if rel.Outer {
		oc.Size = lc.Size + rc.Size
	} else {
		oc.Size = math.Min(lc.Size, rc.Size)
	}
	for i, k := range rel.On {
		lr, lok := lc.Ranges[k]
		rr, rok := rc.Ranges[k]
		if lok && rok {
			oc.Ranges[k] = Range{math.Min(lr.Lo, rr.Lo), math.Max(lr.Hi, rr.Hi)}
		}
		oc.Trusted[k] = lc.Trusted[k] && rc.Trusted[k]
		lb, lbok := lc.Buckets[k]
		if rb, rbok := rc.Buckets[k]; lbok && rbok && lb == rb {
			oc.Buckets[k] = lb
		}
		_ = i
	}
	ci := len(rel.On)
	for _, p := range picks {
		name := cols[ci].Name
		src := lc
		origin := lt.Schema.Cols[p.col].Name
		if p.side == 1 {
			src = rc
			origin = rt.Schema.Cols[p.col].Name
		}
		if rg, ok := src.Ranges[origin]; ok {
			if rel.Outer {
				// A missing side contributes the 0 default.
				rg = Range{math.Min(rg.Lo, 0), math.Max(rg.Hi, 0)}
			}
			oc.Ranges[name] = rg
		}
		if src.Trusted[origin] && !rel.Outer {
			oc.Trusted[name] = true
		}
		ci++
	}
	oc.DedupKeys = append([]string(nil), rel.On...)
	return out, oc, nil
}

func execUnion(rel *query.UnionExpr, env Env) (*table.Table, Constraints, error) {
	lt, lc, err := execRel(rel.Left, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	rt, rc, err := execRel(rel.Right, env)
	if err != nil {
		return nil, Constraints{}, err
	}
	// Column sets must match by name; the right side is re-ordered to
	// the left schema.
	remap := make([]int, len(lt.Schema.Cols))
	for i, c := range lt.Schema.Cols {
		j := rt.Schema.Index(c.Name)
		if j < 0 {
			return nil, Constraints{}, fmt.Errorf("rel: UNION column %q missing on right side", c.Name)
		}
		remap[i] = j
	}
	if len(rt.Schema.Cols) != len(lt.Schema.Cols) {
		return nil, Constraints{}, fmt.Errorf("rel: UNION column counts differ (%d vs %d)", len(lt.Schema.Cols), len(rt.Schema.Cols))
	}
	out := table.New(lt.Schema)
	out.Rows = append(out.Rows, lt.Rows...)
	for _, row := range rt.Rows {
		nr := make(table.Row, len(remap))
		for i, j := range remap {
			nr[i] = row[j].Coerce(lt.Schema.Cols[i].Type)
		}
		out.Rows = append(out.Rows, nr)
	}
	oc := Constraints{
		Delta:   lc.Delta + rc.Delta,
		Size:    lc.Size + rc.Size,
		Ranges:  map[string]Range{},
		Trusted: map[string]bool{},
		Buckets: map[string]BucketSpec{},
		Metas:   append(append([]TableMeta(nil), lc.Metas...), rc.Metas...),
	}
	oc.LiteralCols = map[string]string{}
	oc.KeyDeltas = map[string]map[string]float64{}
	oc.KeyCams = map[string]map[string][]string{}
	for _, c := range lt.Schema.Cols {
		lr, lok := lc.Ranges[c.Name]
		rr, rok := rc.Ranges[c.Name]
		if lok && rok {
			oc.Ranges[c.Name] = Range{math.Min(lr.Lo, rr.Lo), math.Max(lr.Hi, rr.Hi)}
		}
		oc.Trusted[c.Name] = lc.Trusted[c.Name] && rc.Trusted[c.Name]
		if lb, ok := lc.Buckets[c.Name]; ok {
			if rb, ok2 := rc.Buckets[c.Name]; ok2 && lb == rb {
				oc.Buckets[c.Name] = lb
			}
		}
		// A column that is a (possibly different) trusted literal on
		// each side partitions the union: rows with each value can
		// only come from the branch(es) that carry it, so each key's
		// event influence is that branch's Δ — Fig. 10's per-key
		// ARGMAX sensitivity.
		ld, lok2 := branchDeltas(lc, c.Name)
		rd, rok2 := branchDeltas(rc, c.Name)
		if lok2 && rok2 {
			merged := make(map[string]float64, len(ld)+len(rd))
			for k, v := range ld {
				merged[k] = v
			}
			for k, v := range rd {
				merged[k] += v
			}
			oc.KeyDeltas[c.Name] = merged
			lcm, rcm := branchCams(lc, c.Name), branchCams(rc, c.Name)
			cams := make(map[string][]string, len(lcm)+len(rcm))
			for k, v := range lcm {
				cams[k] = mergeCams(cams[k], v)
			}
			for k, v := range rcm {
				cams[k] = mergeCams(cams[k], v)
			}
			oc.KeyCams[c.Name] = cams
		}
		if lv, ok := lc.LiteralCols[c.Name]; ok {
			if rv, ok2 := rc.LiteralCols[c.Name]; ok2 && rv == lv {
				oc.LiteralCols[c.Name] = lv
			}
		}
	}
	return out, oc, nil
}

// branchDeltas returns the per-key ΔP partition of a relation on one
// column: an existing KeyDeltas entry, or a single-key map when the
// column is a trusted constant for the whole relation.
func branchDeltas(c Constraints, col string) (map[string]float64, bool) {
	if kd, ok := c.KeyDeltas[col]; ok && len(kd) > 0 {
		return kd, true
	}
	if v, ok := c.LiteralCols[col]; ok {
		return map[string]float64{v: c.Delta}, true
	}
	return nil, false
}

// branchCams returns the per-key camera attribution of a relation on
// one column, mirroring branchDeltas: an existing KeyCams entry, or —
// for a trusted whole-relation constant — the full camera set of the
// branch under that key.
func branchCams(c Constraints, col string) map[string][]string {
	if kc, ok := c.KeyCams[col]; ok && len(kc) > 0 {
		return kc
	}
	if v, ok := c.LiteralCols[col]; ok {
		return map[string][]string{v: camerasOf(c)}
	}
	return nil
}

// mergeCams unions two sorted camera lists.
func mergeCams(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, lst := range [2][]string{a, b} {
		for _, c := range lst {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Strings(out)
	return out
}
