package rel

// Randomized differential testing of the columnar execution path
// against the preserved row-major oracle (oracle_test.go). For every
// generated environment and relational expression, both paths must
// produce identical rows (in order), identical constraint derivations
// and identical errors; for full SELECTs, identical releases.

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"privid/internal/query"
	"privid/internal/table"
)

var diffStrings = []string{"RED", "WHITE", "SILVER", "42", "3.5", " 7 ", "junk", "", "-0"}

func diffNum(rng *rand.Rand) float64 {
	switch rng.Intn(10) {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1)
	case 2:
		return math.Inf(-1)
	case 3:
		return math.Copysign(0, -1)
	case 4:
		return 0
	default:
		return math.Round(rng.Float64()*2000-1000) / 4
	}
}

// diffEnv builds two instances with an identical schema (so UNION and
// JOIN are always well-typed) and randomized contents, including
// numeric-looking strings and special floats.
func diffEnv(rng *rand.Rand) Env {
	schema := table.MustSchema(
		table.Column{Name: "plate", Type: table.DString, Default: table.S("")},
		table.Column{Name: "color", Type: table.DString, Default: table.S("")},
		table.Column{Name: "speed", Type: table.DNumber, Default: table.N(0)},
	).WithImplicit(false)
	env := Env{}
	for i, name := range []string{"tA", "tB"} {
		meta := testMeta(name, fmt.Sprintf("cam%d", i))
		base := float64(meta.Begin.Unix())
		tbl := table.New(schema)
		n := rng.Intn(41)
		for r := 0; r < n; r++ {
			tbl.Append(table.Row{
				table.S(diffStrings[rng.Intn(len(diffStrings))]),
				table.S(diffStrings[rng.Intn(len(diffStrings))]),
				table.N(diffNum(rng)),
				table.N(base + float64(rng.Intn(100))*5),
			})
		}
		env[name] = &Instance{Metas: []TableMeta{meta}, Data: tbl}
	}
	return env
}

// baseCols is the column set of every generated TableRef (data columns
// plus the implicit chunk column).
func baseCols() []table.Column {
	return []table.Column{
		{Name: "plate", Type: table.DString},
		{Name: "color", Type: table.DString},
		{Name: "speed", Type: table.DNumber},
		{Name: table.ChunkColumn, Type: table.DNumber},
	}
}

func diffExpr(rng *rand.Rand, cols []table.Column, depth int) query.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			return &query.NumLit{V: diffNum(rng)}
		case 1:
			return &query.StrLit{V: diffStrings[rng.Intn(len(diffStrings))]}
		default:
			return &query.ColRef{Name: cols[rng.Intn(len(cols))].Name}
		}
	}
	if rng.Intn(4) == 0 {
		arg := diffExpr(rng, cols, depth-1)
		switch rng.Intn(4) {
		case 0:
			lo := diffNum(rng)
			return &query.CallExpr{Name: "range", Args: []query.Expr{arg, &query.NumLit{V: lo}, &query.NumLit{V: lo + rng.Float64()*100}}}
		case 1:
			return &query.CallExpr{Name: "hour", Args: []query.Expr{arg}}
		case 2:
			return &query.CallExpr{Name: "day", Args: []query.Expr{arg}}
		default:
			w := rng.Float64()*100 - 10 // occasionally non-positive: error parity
			return &query.CallExpr{Name: "bin", Args: []query.Expr{arg, &query.NumLit{V: w}}}
		}
	}
	ops := []string{"+", "-", "*", "/", "=", "!=", "<", "<=", ">", ">=", "AND", "OR"}
	return &query.BinExpr{
		Op: ops[rng.Intn(len(ops))],
		L:  diffExpr(rng, cols, depth-1),
		R:  diffExpr(rng, cols, depth-1),
	}
}

func diffKey(rng *rand.Rand, typ table.DType) table.Value {
	if typ == table.DString && rng.Intn(4) != 0 {
		return table.S(diffStrings[rng.Intn(len(diffStrings))])
	}
	return table.N(diffNum(rng))
}

// diffRel generates a random relational expression and returns it with
// its (statically known) output column set.
func diffRel(rng *rand.Rand, depth int) (query.RelExpr, []table.Column) {
	if depth <= 0 {
		name := "tA"
		if rng.Intn(2) == 0 {
			name = "tB"
		}
		return &query.TableRef{Name: name}, baseCols()
	}
	switch rng.Intn(5) {
	case 0: // SELECT
		from, cols := diffRel(rng, depth-1)
		sel := &query.SelectExpr{From: from}
		if rng.Intn(2) == 0 {
			sel.Where = diffExpr(rng, cols, 2)
		}
		if rng.Intn(3) == 0 {
			sel.Limit = rng.Intn(10) + 1
		}
		if rng.Intn(2) == 0 {
			sel.Star = true
			return sel, cols
		}
		n := rng.Intn(3) + 1
		out := make([]table.Column, n)
		for i := 0; i < n; i++ {
			e := diffExpr(rng, cols, 2)
			alias := fmt.Sprintf("c%d", i)
			sel.Items = append(sel.Items, query.SelectItem{Expr: e, Alias: alias})
			out[i] = table.Column{Name: alias, Type: exprType(e, table.Schema{Cols: cols})}
		}
		return sel, out
	case 1: // GROUP BY
		from, cols := diffRel(rng, depth-1)
		nk := 1
		if rng.Intn(4) == 0 {
			nk = 2
		}
		g := &query.GroupExpr{From: from}
		perm := rng.Perm(len(cols))
		for i := 0; i < nk && i < len(cols); i++ {
			g.Keys = append(g.Keys, cols[perm[i]].Name)
		}
		if rng.Intn(2) == 0 {
			// WITH KEYS (errors out for nk>1 — parity checked).
			kt := cols[perm[0]].Type
			for i := 0; i < rng.Intn(4)+1; i++ {
				g.WithKeys = append(g.WithKeys, diffKey(rng, kt))
			}
		}
		return g, cols
	case 2: // JOIN over grouped base tables (same schema both sides)
		on := []string{"plate"}
		if rng.Intn(3) == 0 {
			on = []string{"plate", "color"}
		}
		l := &query.GroupExpr{From: &query.TableRef{Name: "tA"}, Keys: on}
		r := &query.GroupExpr{From: &query.TableRef{Name: "tB"}, Keys: on}
		j := &query.JoinExpr{Left: l, Right: r, On: on, Outer: rng.Intn(2) == 0}
		onSet := map[string]bool{}
		for _, k := range on {
			onSet[k] = true
		}
		var cols []table.Column
		for _, k := range on {
			cols = append(cols, table.Column{Name: k, Type: table.DString})
		}
		for _, c := range baseCols() {
			if !onSet[c.Name] {
				cols = append(cols, c)
			}
		}
		for _, c := range baseCols() {
			if !onSet[c.Name] {
				cols = append(cols, table.Column{Name: c.Name + "_r", Type: c.Type})
			}
		}
		return j, cols
	case 3: // UNION of schema-preserving subtrees
		l, cols := diffSchemaPreserving(rng, depth-1)
		r, _ := diffSchemaPreserving(rng, depth-1)
		return &query.UnionExpr{Left: l, Right: r}, cols
	default:
		return diffRel(rng, depth-1)
	}
}

// diffSchemaPreserving generates a subtree whose output columns are
// exactly baseCols (TableRef, SELECT *, GROUP BY) so UNION inputs line
// up.
func diffSchemaPreserving(rng *rand.Rand, depth int) (query.RelExpr, []table.Column) {
	name := "tA"
	if rng.Intn(2) == 0 {
		name = "tB"
	}
	var rel query.RelExpr = &query.TableRef{Name: name}
	cols := baseCols()
	for d := 0; d < depth; d++ {
		switch rng.Intn(3) {
		case 0:
			sel := &query.SelectExpr{From: rel, Star: true}
			if rng.Intn(2) == 0 {
				sel.Where = diffExpr(rng, cols, 2)
			}
			rel = sel
		case 1:
			rel = &query.GroupExpr{From: rel, Keys: []string{cols[rng.Intn(len(cols))].Name}}
		}
	}
	return rel, cols
}

func sameValue(a, b table.Value) bool {
	if a.Type() != b.Type() {
		return false
	}
	return a.KeyEqual(b)
}

// consEqual compares constraints with nil and empty maps/slices
// identified and NaN range bounds treated as equal (reflect.DeepEqual
// would report NaN != NaN).
func consEqual(a, b Constraints) bool {
	a, b = normCons(a), normCons(b)
	if !eqFloat(a.Delta, b.Delta) || !eqFloat(a.Size, b.Size) {
		return false
	}
	if len(a.Ranges) != len(b.Ranges) {
		return false
	}
	for k, ar := range a.Ranges {
		br, ok := b.Ranges[k]
		if !ok || !eqFloat(ar.Lo, br.Lo) || !eqFloat(ar.Hi, br.Hi) {
			return false
		}
	}
	a.Ranges, b.Ranges = nil, nil
	return reflect.DeepEqual(a, b)
}

// normCons fills nil maps/slices so the two paths' zero values align.
func normCons(c Constraints) Constraints {
	if c.Ranges == nil {
		c.Ranges = map[string]Range{}
	}
	if c.Trusted == nil {
		c.Trusted = map[string]bool{}
	}
	if c.Buckets == nil {
		c.Buckets = map[string]BucketSpec{}
	}
	if c.LiteralCols == nil {
		c.LiteralCols = map[string]string{}
	}
	if c.KeyDeltas == nil {
		c.KeyDeltas = map[string]map[string]float64{}
	}
	if c.KeyCams == nil {
		c.KeyCams = map[string]map[string][]string{}
	}
	if c.DedupKeys == nil {
		c.DedupKeys = []string{}
	}
	if c.Metas == nil {
		c.Metas = []TableMeta{}
	}
	return c
}

func compareTables(t *testing.T, seed int64, got *table.Table, want *oracleTable) {
	t.Helper()
	if len(got.Schema.Cols) != len(want.Schema.Cols) {
		t.Fatalf("seed %d: schema width %d vs %d", seed, len(got.Schema.Cols), len(want.Schema.Cols))
	}
	for i := range got.Schema.Cols {
		g, w := got.Schema.Cols[i], want.Schema.Cols[i]
		if g.Name != w.Name || g.Type != w.Type {
			t.Fatalf("seed %d: col %d: %v/%v vs %v/%v", seed, i, g.Name, g.Type, w.Name, w.Type)
		}
	}
	if got.Len() != len(want.Rows) {
		t.Fatalf("seed %d: %d rows vs %d", seed, got.Len(), len(want.Rows))
	}
	for i := 0; i < got.Len(); i++ {
		for j := range got.Schema.Cols {
			if !sameValue(got.At(i, j), want.Rows[i][j]) {
				t.Fatalf("seed %d: cell (%d,%d): %s vs %s", seed, i, j, got.At(i, j).Key(), want.Rows[i][j].Key())
			}
		}
	}
}

func TestDifferentialRelOperators(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		env := diffEnv(rng)
		rel, _ := diffRel(rng, rng.Intn(4)+1)

		gt, gc, gerr := execRel(rel, env)
		wt, wc, werr := oracleExecRel(rel, env)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("seed %d: error mismatch: columnar=%v oracle=%v", seed, gerr, werr)
		}
		if gerr != nil {
			if gerr.Error() != werr.Error() {
				t.Fatalf("seed %d: error text: %q vs %q", seed, gerr, werr)
			}
			continue
		}
		compareTables(t, seed, gt, wt)
		if !consEqual(gc, wc) {
			t.Fatalf("seed %d: constraints diverge:\ncolumnar: %+v\noracle:   %+v", seed, gc, wc)
		}
	}
}

func eqFloat(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

func diffSelectStmt(rng *rand.Rand, from query.RelExpr, cols []table.Column) *query.SelectStmt {
	st := &query.SelectStmt{From: from}
	numeric := []query.Expr{
		&query.CallExpr{Name: "range", Args: []query.Expr{
			&query.ColRef{Name: "speed"}, &query.NumLit{V: 0}, &query.NumLit{V: 60},
		}},
		&query.ColRef{Name: "speed"}, // no range constraint: error parity
	}
	switch rng.Intn(5) {
	case 0:
		st.Agg = query.AggExpr{Fun: query.AggCount, Star: true}
	case 1:
		st.Agg = query.AggExpr{Fun: query.AggSum, Arg: numeric[rng.Intn(2)]}
	case 2:
		st.Agg = query.AggExpr{Fun: query.AggAvg, Arg: numeric[rng.Intn(2)]}
	case 3:
		st.Agg = query.AggExpr{Fun: query.AggVar, Arg: numeric[rng.Intn(2)]}
	default:
		st.Agg = query.AggExpr{Fun: query.AggArgmax, Arg: &query.ColRef{Name: "plate"}}
	}
	if st.Agg.Fun == query.AggArgmax || rng.Intn(2) == 0 {
		st.GroupBy = []string{"color"}
		n := rng.Intn(3) + 1
		for i := 0; i < n; i++ {
			st.GroupKeys = append(st.GroupKeys, diffKey(rng, table.DString))
		}
		if n > 1 && rng.Intn(3) == 0 {
			st.GroupKeys[n-1] = st.GroupKeys[0] // duplicate requested key
		}
	}
	return st
}

func TestDifferentialExecuteSelect(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		env := diffEnv(rng)
		// Keep the relation schema-preserving so speed/color/plate exist
		// for the aggregate.
		from, cols := diffSchemaPreserving(rng, rng.Intn(3))
		st := diffSelectStmt(rng, from, cols)

		got, gerr := ExecuteSelect(st, env)
		want, werr := oracleExecuteSelect(st, env)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("seed %d: error mismatch: columnar=%v oracle=%v", seed, gerr, werr)
		}
		if gerr != nil {
			if gerr.Error() != werr.Error() {
				t.Fatalf("seed %d: error text: %q vs %q", seed, gerr, werr)
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d releases vs %d", seed, len(got), len(want))
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.Desc != w.Desc || g.Fun != w.Fun || g.HasKey != w.HasKey {
				t.Fatalf("seed %d: release %d header: %+v vs %+v", seed, i, g, w)
			}
			if g.HasKey && !sameValue(g.Key, w.Key) {
				t.Fatalf("seed %d: release %d key: %s vs %s", seed, i, g.Key.Key(), w.Key.Key())
			}
			if !eqFloat(g.Raw, w.Raw) || !eqFloat(g.Sensitivity, w.Sensitivity) {
				t.Fatalf("seed %d: release %d raw/sens: (%v,%v) vs (%v,%v)", seed, i, g.Raw, g.Sensitivity, w.Raw, w.Sensitivity)
			}
			if !g.Begin.Equal(w.Begin) || !g.End.Equal(w.End) {
				t.Fatalf("seed %d: release %d window: %v-%v vs %v-%v", seed, i, g.Begin, g.End, w.Begin, w.End)
			}
			if !reflect.DeepEqual(g.Cameras, w.Cameras) {
				t.Fatalf("seed %d: release %d cameras: %v vs %v", seed, i, g.Cameras, w.Cameras)
			}
			if len(g.Scores) != len(w.Scores) {
				t.Fatalf("seed %d: release %d scores: %d vs %d", seed, i, len(g.Scores), len(w.Scores))
			}
			for s := range g.Scores {
				if !sameValue(g.Scores[s].Key, w.Scores[s].Key) || !eqFloat(g.Scores[s].Raw, w.Scores[s].Raw) {
					t.Fatalf("seed %d: release %d score %d diverges", seed, i, s)
				}
			}
		}
	}
}
