package rel

import (
	"math"
	"strings"
	"testing"
	"time"

	"privid/internal/policy"
	"privid/internal/query"
	"privid/internal/table"
)

// testMeta returns metadata for a table of 100 chunks of 5 s at 10 fps
// with max_rows 10 and policy (rho=30s, K=1):
// Delta = 10 * 1 * (1 + ceil(30/5)) = 70; Size = 1000.
func testMeta(name, camera string) TableMeta {
	begin := time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC)
	return TableMeta{
		Name: name, Camera: camera,
		MaxRows: 10, ChunkFrames: 50, FPS: 10, NumChunks: 100,
		Begin: begin, End: begin.Add(500 * time.Second),
		Policy: policy.Policy{Rho: 30 * time.Second, K: 1},
	}
}

func carSchema() table.Schema {
	s := table.MustSchema(
		table.Column{Name: "plate", Type: table.DString, Default: table.S("")},
		table.Column{Name: "color", Type: table.DString, Default: table.S("")},
		table.Column{Name: "speed", Type: table.DNumber, Default: table.N(0)},
	)
	return s.WithImplicit(false)
}

func carEnv(t *testing.T) Env {
	t.Helper()
	meta := testMeta("tableA", "camA")
	base := float64(meta.Begin.Unix())
	tbl := table.New(carSchema())
	// (plate, color, speed, chunk-start offset seconds)
	add := func(plate, color string, speed, off float64) {
		tbl.Append(table.Row{table.S(plate), table.S(color), table.N(speed), table.N(base + off)})
	}
	add("AAA", "RED", 42, 100)
	add("AAA", "RED", 45, 105) // same car, next chunk
	add("BBB", "WHITE", 55, 100)
	add("CCC", "RED", 38, 110)
	add("DDD", "SILVER", 61, 120)
	return Env{"tableA": &Instance{Metas: []TableMeta{meta}, Data: tbl}}
}

func parseSelect(t *testing.T, sel string) *query.SelectStmt {
	t.Helper()
	src := `
SPLIT camA BEGIN 01-01-2021/12:00am END 01-02-2021/12:00am BY TIME 5sec STRIDE 0sec INTO chunksA;
PROCESS chunksA USING exe TIMEOUT 1sec PRODUCING 10 ROWS
 WITH SCHEMA (plate:STRING="", color:STRING="", speed:NUMBER=0) INTO tableA;
SPLIT camB BEGIN 01-01-2021/12:00am END 01-02-2021/12:00am BY TIME 5sec STRIDE 0sec INTO chunksB;
PROCESS chunksB USING exe TIMEOUT 1sec PRODUCING 10 ROWS
 WITH SCHEMA (plate:STRING="", color:STRING="", speed:NUMBER=0) INTO tableB;
` + sel
	prog, err := query.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog.Selects[0]
}

func TestCountAll(t *testing.T) {
	st := parseSelect(t, `SELECT COUNT(*) FROM tableA;`)
	rels, err := ExecuteSelect(st, carEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 {
		t.Fatalf("%d releases", len(rels))
	}
	r := rels[0]
	if r.Raw != 5 {
		t.Errorf("raw=%v, want 5", r.Raw)
	}
	// Delta = 10 rows * K=1 * (1+ceil(30/5)=7) = 70.
	if r.Sensitivity != 70 {
		t.Errorf("sensitivity=%v, want 70", r.Sensitivity)
	}
	if len(r.Cameras) != 1 || r.Cameras[0] != "camA" {
		t.Errorf("cameras=%v", r.Cameras)
	}
}

func TestAvgWithRange(t *testing.T) {
	st := parseSelect(t, `SELECT AVG(range(speed, 30, 60)) FROM tableA;`)
	rels, err := ExecuteSelect(st, carEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	r := rels[0]
	// Speeds truncated to [30,60]: 42,45,55,38,60 -> mean 48.
	if r.Raw != 48 {
		t.Errorf("raw=%v, want 48", r.Raw)
	}
	// Sensitivity = Delta * width / Size = 70*60/1000 = 4.2
	// (width = max(|30|,|60|,30) = 60).
	if math.Abs(r.Sensitivity-4.2) > 1e-9 {
		t.Errorf("sensitivity=%v, want 4.2", r.Sensitivity)
	}
}

func TestSumRequiresRange(t *testing.T) {
	st := parseSelect(t, `SELECT SUM(speed) FROM tableA;`)
	if _, err := ExecuteSelect(st, carEnv(t)); err == nil || !strings.Contains(err.Error(), "range constraint") {
		t.Fatalf("want range-constraint error, got %v", err)
	}
}

func TestGroupByWithKeys(t *testing.T) {
	st := parseSelect(t, `SELECT color, COUNT(plate) FROM
 (SELECT plate, color FROM tableA GROUP BY plate)
 GROUP BY color WITH KEYS ["RED", "WHITE", "SILVER"];`)
	rels, err := ExecuteSelect(st, carEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 3 {
		t.Fatalf("%d releases, want 3 (one per key)", len(rels))
	}
	want := map[string]float64{"RED": 2, "WHITE": 1, "SILVER": 1} // AAA deduped
	for _, r := range rels {
		if !r.HasKey {
			t.Fatalf("release without key: %+v", r)
		}
		if r.Raw != want[r.Key.Str()] {
			t.Errorf("count[%s]=%v, want %v", r.Key.Str(), r.Raw, want[r.Key.Str()])
		}
		if r.Sensitivity != 70 {
			t.Errorf("per-key sensitivity=%v, want 70", r.Sensitivity)
		}
	}
}

func TestGroupByUntrustedNeedsKeys(t *testing.T) {
	st := parseSelect(t, `SELECT COUNT(*) FROM tableA GROUP BY color;`)
	if _, err := ExecuteSelect(st, carEnv(t)); err == nil || !strings.Contains(err.Error(), "WITH KEYS") {
		t.Fatalf("want WITH-KEYS error, got %v", err)
	}
}

func TestGroupByTrustedBuckets(t *testing.T) {
	// Group by 100-second bins of the trusted chunk column. All
	// buckets in the window must appear, even empty ones.
	st := parseSelect(t, `SELECT COUNT(*) FROM (SELECT bin(chunk, 100) AS b FROM tableA) GROUP BY b;`)
	rels, err := ExecuteSelect(st, carEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	// Window is 500 s starting at unix(2021-03-15 06:00)=1615788000,
	// which is divisible by 100 -> exactly 5 buckets.
	if len(rels) != 5 {
		t.Fatalf("%d releases, want 5 buckets", len(rels))
	}
	var total float64
	empty := 0
	for _, r := range rels {
		total += r.Raw
		if r.Raw == 0 {
			empty++
		}
		if !r.End.After(r.Begin) {
			t.Errorf("bucket window empty: %v-%v", r.Begin, r.End)
		}
		if span := r.End.Sub(r.Begin); span > 100*time.Second {
			t.Errorf("bucket span %v > 100s", span)
		}
	}
	if total != 5 {
		t.Errorf("bucket counts sum to %v, want 5", total)
	}
	if empty == 0 {
		t.Errorf("expected at least one empty bucket to be released")
	}
}

func TestGroupByHourOfDay(t *testing.T) {
	st := parseSelect(t, `SELECT COUNT(*) FROM (SELECT hour(chunk) AS hr FROM tableA) GROUP BY hr;`)
	rels, err := ExecuteSelect(st, carEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	// The 500 s window covers a single hour of day (6am).
	if len(rels) != 1 {
		t.Fatalf("%d releases, want 1", len(rels))
	}
	if rels[0].Raw != 5 {
		t.Errorf("raw=%v, want 5", rels[0].Raw)
	}
}

func TestWhereAndLimit(t *testing.T) {
	st := parseSelect(t, `SELECT COUNT(*) FROM (SELECT plate FROM tableA WHERE speed > 50);`)
	rels, err := ExecuteSelect(st, carEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if rels[0].Raw != 2 { // 55, 61
		t.Errorf("filtered count=%v, want 2", rels[0].Raw)
	}
	// LIMIT binds the size constraint, enabling AVG without keys.
	st2 := parseSelect(t, `SELECT AVG(range(speed,0,100)) FROM (SELECT speed FROM tableA LIMIT 3);`)
	rels2, err := ExecuteSelect(st2, carEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	// Sensitivity = 70 * 100 / 3.
	if math.Abs(rels2[0].Sensitivity-70*100.0/3) > 1e-9 {
		t.Errorf("limit sensitivity=%v", rels2[0].Sensitivity)
	}
}

// twoCamEnv builds tableA (camA) and tableB (camB) sharing plates.
func twoCamEnv(t *testing.T) Env {
	env := carEnv(t)
	meta := testMeta("tableB", "camB")
	base := float64(meta.Begin.Unix())
	tblB := table.New(carSchema())
	add := func(plate, color string, speed, off float64) {
		tblB.Append(table.Row{table.S(plate), table.S(color), table.N(speed), table.N(base + off)})
	}
	add("AAA", "RED", 40, 200)
	add("EEE", "BLUE", 52, 200)
	env["tableB"] = &Instance{Metas: []TableMeta{meta}, Data: tblB}
	return env
}

func TestJoinIntersection(t *testing.T) {
	st := parseSelect(t, `SELECT COUNT(*) FROM
 (SELECT plate FROM tableA GROUP BY plate) JOIN (SELECT plate FROM tableB GROUP BY plate) ON plate;`)
	rels, err := ExecuteSelect(st, twoCamEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	r := rels[0]
	if r.Raw != 1 { // only AAA appears in both
		t.Errorf("intersection=%v, want 1", r.Raw)
	}
	// The additive JOIN rule: Delta = 70 + 70, NOT min(70, 70). This
	// is the paper's "primed table" adversarial argument (Lemma E.1).
	if r.Sensitivity != 140 {
		t.Errorf("join sensitivity=%v, want 140 (additive)", r.Sensitivity)
	}
	if len(r.Cameras) != 2 {
		t.Errorf("cameras=%v", r.Cameras)
	}
}

func TestJoinRequiresDedup(t *testing.T) {
	st := parseSelect(t, `SELECT COUNT(*) FROM tableA JOIN tableB ON plate;`)
	if _, err := ExecuteSelect(st, twoCamEnv(t)); err == nil || !strings.Contains(err.Error(), "GROUP BY") {
		t.Fatalf("ungrouped join accepted: %v", err)
	}
}

// TestJoinPrimedTable verifies the adversarial scenario from §6.3
// concretely: an analyst primes tableA with a plate that only truly
// appears at camB. A single event at camB (its rows in tableB) then
// shows up in the intersection even though it never influenced tableA
// — so the data change in ONE table changed the join output, and the
// additive bound is what covers the total.
func TestJoinPrimedTable(t *testing.T) {
	env := twoCamEnv(t)
	// Prime tableA with plate ZZZ (never seen by camA).
	env["tableA"].Data.Append(table.Row{table.S("ZZZ"), table.S("RED"), table.N(0), table.N(float64(env["tableA"].Metas[0].Begin.Unix()) + 100)})
	st := parseSelect(t, `SELECT COUNT(*) FROM
 (SELECT plate FROM tableA GROUP BY plate) JOIN (SELECT plate FROM tableB GROUP BY plate) ON plate;`)
	before, err := ExecuteSelect(st, env)
	if err != nil {
		t.Fatal(err)
	}
	// Now the event "ZZZ visible at camB" happens: rows appear ONLY in
	// tableB.
	env["tableB"].Data.Append(table.Row{table.S("ZZZ"), table.S("RED"), table.N(33), table.N(float64(env["tableB"].Metas[0].Begin.Unix()) + 210)})
	after, err := ExecuteSelect(st, env)
	if err != nil {
		t.Fatal(err)
	}
	if after[0].Raw != before[0].Raw+1 {
		t.Fatalf("priming did not influence intersection: %v -> %v", before[0].Raw, after[0].Raw)
	}
	// The change (1 row) must be within the per-table Delta of tableB,
	// and a fortiori within the additive join sensitivity.
	if diff := after[0].Raw - before[0].Raw; diff > after[0].Sensitivity {
		t.Errorf("change %v exceeds sensitivity %v", diff, after[0].Sensitivity)
	}
}

func TestOuterJoinUnion(t *testing.T) {
	st := parseSelect(t, `SELECT COUNT(*) FROM
 (SELECT plate FROM tableA GROUP BY plate) OUTER JOIN (SELECT plate FROM tableB GROUP BY plate) ON plate;`)
	rels, err := ExecuteSelect(st, twoCamEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	// Distinct plates: AAA BBB CCC DDD (A) + EEE (B) = 5.
	if rels[0].Raw != 5 {
		t.Errorf("union size=%v, want 5", rels[0].Raw)
	}
	if rels[0].Sensitivity != 140 {
		t.Errorf("outer join sensitivity=%v, want 140", rels[0].Sensitivity)
	}
}

func TestUnionAll(t *testing.T) {
	st := parseSelect(t, `SELECT COUNT(*) FROM
 (SELECT plate FROM tableA) UNION (SELECT plate FROM tableB);`)
	rels, err := ExecuteSelect(st, twoCamEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if rels[0].Raw != 7 { // 5 + 2 rows
		t.Errorf("union-all count=%v, want 7", rels[0].Raw)
	}
	if rels[0].Sensitivity != 140 {
		t.Errorf("union sensitivity=%v, want 140", rels[0].Sensitivity)
	}
}

func TestArgmax(t *testing.T) {
	st := parseSelect(t, `SELECT ARGMAX(color) FROM tableA GROUP BY color WITH KEYS ["RED","WHITE","SILVER"];`)
	rels, err := ExecuteSelect(st, carEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 {
		t.Fatalf("%d releases, want 1 (argmax is a single release)", len(rels))
	}
	r := rels[0]
	if len(r.Scores) != 3 {
		t.Fatalf("scores=%v", r.Scores)
	}
	byKey := map[string]float64{}
	for _, s := range r.Scores {
		byKey[s.Key.Str()] = s.Raw
	}
	if byKey["RED"] != 3 || byKey["WHITE"] != 1 || byKey["SILVER"] != 1 {
		t.Errorf("scores=%v", byKey)
	}
	if r.Sensitivity != 70 {
		t.Errorf("argmax sensitivity=%v, want 70", r.Sensitivity)
	}
}

func TestVariance(t *testing.T) {
	st := parseSelect(t, `SELECT VAR(range(speed, 30, 60)) FROM tableA;`)
	rels, err := ExecuteSelect(st, carEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	// Values 42,45,55,38,60: mean 48, var = (36+9+49+100+144)/5 = 67.6.
	if math.Abs(rels[0].Raw-67.6) > 1e-9 {
		t.Errorf("var=%v, want 67.6", rels[0].Raw)
	}
	// Sensitivity = (Delta*width)^2 / Size = (70*60)^2/1000.
	want := 70.0 * 60 * 70 * 60 / 1000
	if math.Abs(rels[0].Sensitivity-want) > 1e-9 {
		t.Errorf("var sensitivity=%v, want %v", rels[0].Sensitivity, want)
	}
}

func TestProjectionArithmeticRange(t *testing.T) {
	// Projected arithmetic over range()-constrained columns keeps a
	// bound, so SUM over it works.
	st := parseSelect(t, `SELECT SUM(v) FROM (SELECT range(speed,0,100) + 10 AS v FROM tableA);`)
	rels, err := ExecuteSelect(st, carEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	// Sum of speeds+10: 42+45+55+38+61 + 50 = 291... speeds within
	// [0,100] unchanged: 241 + 50 = 291.
	if rels[0].Raw != 291 {
		t.Errorf("raw=%v, want 291", rels[0].Raw)
	}
	// width of [10,110] = max(110, 100) = 110; sensitivity 70*110.
	if rels[0].Sensitivity != 7700 {
		t.Errorf("sensitivity=%v, want 7700", rels[0].Sensitivity)
	}
}

func TestDivisionUnbindsRange(t *testing.T) {
	st := parseSelect(t, `SELECT SUM(v) FROM (SELECT range(speed,0,100) / speed AS v FROM tableA);`)
	if _, err := ExecuteSelect(st, carEnv(t)); err == nil {
		t.Fatalf("division should unbind the range and fail SUM")
	}
}

func TestRegionColumnTrusted(t *testing.T) {
	// A table with the implicit region column allows grouping by
	// region... via WITH KEYS (regions are public names).
	schema := table.MustSchema(
		table.Column{Name: "n", Type: table.DNumber, Default: table.N(0)},
	).WithImplicit(true)
	m := testMeta("tableR", "camA")
	m.Regions = 2
	tbl := table.New(schema)
	tbl.Append(table.Row{table.N(1), table.N(float64(m.Begin.Unix())), table.S("east")})
	tbl.Append(table.Row{table.N(2), table.N(float64(m.Begin.Unix())), table.S("west")})
	env := Env{"tableA": &Instance{Metas: []TableMeta{m}, Data: tbl}}
	st := parseSelect(t, `SELECT region, COUNT(*) FROM tableA GROUP BY region WITH KEYS ["east","west"];`)
	rels, err := ExecuteSelect(st, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 {
		t.Fatalf("%d releases", len(rels))
	}
}

func TestConstraintsWindow(t *testing.T) {
	env := twoCamEnv(t)
	m := env["tableB"].Metas[0]
	m.Begin = m.Begin.Add(-time.Hour)
	env["tableB"].Metas[0] = m
	st := parseSelect(t, `SELECT COUNT(*) FROM
 (SELECT plate FROM tableA) UNION (SELECT plate FROM tableB);`)
	rels, err := ExecuteSelect(st, env)
	if err != nil {
		t.Fatal(err)
	}
	if !rels[0].Begin.Equal(m.Begin) {
		t.Errorf("release begin=%v, want %v", rels[0].Begin, m.Begin)
	}
}
