package rel

import (
	"fmt"
	"math"

	"privid/internal/query"
	"privid/internal/table"
)

// The scalar evaluator is columnar (see vec.go); the historical
// row-at-a-time evaluator lives on in oracle_test.go as the reference
// implementation for the differential property test. This file keeps
// the static expression analyses shared by both.

// exprName returns the output column name for a projected expression
// without an alias: bare column references keep their name; everything
// else gets a positional name.
func exprName(e query.Expr, pos int) string {
	switch ex := e.(type) {
	case *query.ColRef:
		return ex.Name
	case *query.CallExpr:
		if len(ex.Args) > 0 {
			if c, ok := ex.Args[0].(*query.ColRef); ok {
				return ex.Name + "_" + c.Name
			}
		}
		return fmt.Sprintf("col%d", pos)
	default:
		return fmt.Sprintf("col%d", pos)
	}
}

// exprType infers the output type of an expression.
func exprType(e query.Expr, schema table.Schema) table.DType {
	switch ex := e.(type) {
	case *query.ColRef:
		if i := schema.Index(ex.Name); i >= 0 {
			return schema.Cols[i].Type
		}
		return table.DString
	case *query.StrLit:
		return table.DString
	default:
		return table.DNumber
	}
}

// exprRange computes the static range constraint of an expression
// given the input column ranges (Fig. 10's projection rules). ok=false
// means unbound (∅).
func exprRange(e query.Expr, ranges map[string]Range) (Range, bool) {
	switch ex := e.(type) {
	case *query.ColRef:
		r, ok := ranges[ex.Name]
		return r, ok
	case *query.NumLit:
		return Range{ex.V, ex.V}, true
	case *query.StrLit:
		return Range{}, false
	case *query.CallExpr:
		switch ex.Name {
		case "range":
			lo := ex.Args[1].(*query.NumLit).V
			hi := ex.Args[2].(*query.NumLit).V
			return Range{lo, hi}, true
		case "hour":
			return Range{0, 23}, true
		default:
			return Range{}, false
		}
	case *query.BinExpr:
		l, lok := exprRange(ex.L, ranges)
		r, rok := exprRange(ex.R, ranges)
		switch ex.Op {
		case "+":
			if lok && rok {
				return Range{l.Lo + r.Lo, l.Hi + r.Hi}, true
			}
		case "-":
			if lok && rok {
				return Range{l.Lo - r.Hi, l.Hi - r.Lo}, true
			}
		case "*":
			if lok && rok {
				cands := []float64{l.Lo * r.Lo, l.Lo * r.Hi, l.Hi * r.Lo, l.Hi * r.Hi}
				lo, hi := cands[0], cands[0]
				for _, c := range cands[1:] {
					lo = math.Min(lo, c)
					hi = math.Max(hi, c)
				}
				return Range{lo, hi}, true
			}
		case "=", "!=", "<", "<=", ">", ">=", "AND", "OR":
			return Range{0, 1}, true
		}
		return Range{}, false
	default:
		return Range{}, false
	}
}

// exprTrusted reports whether an expression's value is independent of
// analyst-controlled data: literals, trusted columns, and stateless
// functions over them.
func exprTrusted(e query.Expr, trusted map[string]bool) bool {
	switch ex := e.(type) {
	case *query.ColRef:
		return trusted[ex.Name]
	case *query.NumLit, *query.StrLit:
		return true
	case *query.BinExpr:
		return exprTrusted(ex.L, trusted) && exprTrusted(ex.R, trusted)
	case *query.CallExpr:
		for _, a := range ex.Args {
			if !exprTrusted(a, trusted) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// exprBucket detects the bucket provenance of an expression: hour(c),
// day(c) or bin(c, w) applied to a column that itself carries a bucket
// spec (the chunk column starts with width = chunk seconds).
func exprBucket(e query.Expr, buckets map[string]BucketSpec) (BucketSpec, bool) {
	switch ex := e.(type) {
	case *query.ColRef:
		b, ok := buckets[ex.Name]
		return b, ok
	case *query.CallExpr:
		if len(ex.Args) == 0 {
			return BucketSpec{}, false
		}
		if _, ok := exprBucket(ex.Args[0], buckets); !ok {
			return BucketSpec{}, false
		}
		switch ex.Name {
		case "hour":
			return BucketSpec{HourOfDay: true}, true
		case "day":
			return BucketSpec{WidthSec: 86400}, true
		case "bin":
			return BucketSpec{WidthSec: ex.Args[1].(*query.NumLit).V}, true
		}
		return BucketSpec{}, false
	default:
		return BucketSpec{}, false
	}
}
