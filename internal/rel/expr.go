package rel

import (
	"fmt"
	"math"

	"privid/internal/query"
	"privid/internal/table"
)

// evalExpr evaluates a scalar expression against one row. Booleans are
// represented as NUMBER 1/0.
func evalExpr(e query.Expr, schema table.Schema, row table.Row) (table.Value, error) {
	switch ex := e.(type) {
	case *query.ColRef:
		i := schema.Index(ex.Name)
		if i < 0 {
			return table.Value{}, fmt.Errorf("unknown column %q", ex.Name)
		}
		return row[i], nil
	case *query.NumLit:
		return table.N(ex.V), nil
	case *query.StrLit:
		return table.S(ex.V), nil
	case *query.BinExpr:
		return evalBin(ex, schema, row)
	case *query.CallExpr:
		return evalCall(ex, schema, row)
	default:
		return table.Value{}, fmt.Errorf("unsupported expression %T", e)
	}
}

func evalBin(ex *query.BinExpr, schema table.Schema, row table.Row) (table.Value, error) {
	l, err := evalExpr(ex.L, schema, row)
	if err != nil {
		return table.Value{}, err
	}
	r, err := evalExpr(ex.R, schema, row)
	if err != nil {
		return table.Value{}, err
	}
	b := func(v bool) table.Value {
		if v {
			return table.N(1)
		}
		return table.N(0)
	}
	switch ex.Op {
	case "+":
		return table.N(l.Num() + r.Num()), nil
	case "-":
		return table.N(l.Num() - r.Num()), nil
	case "*":
		return table.N(l.Num() * r.Num()), nil
	case "/":
		d := r.Num()
		if d == 0 {
			return table.N(0), nil // untrusted data: divide-by-zero yields 0, never a crash
		}
		return table.N(l.Num() / d), nil
	case "=":
		if l.Type() == table.DString || r.Type() == table.DString {
			return b(l.Str() == r.Str()), nil
		}
		return b(l.Num() == r.Num()), nil
	case "!=":
		if l.Type() == table.DString || r.Type() == table.DString {
			return b(l.Str() != r.Str()), nil
		}
		return b(l.Num() != r.Num()), nil
	case "<":
		return b(l.Num() < r.Num()), nil
	case "<=":
		return b(l.Num() <= r.Num()), nil
	case ">":
		return b(l.Num() > r.Num()), nil
	case ">=":
		return b(l.Num() >= r.Num()), nil
	case "AND":
		return b(l.Num() != 0 && r.Num() != 0), nil
	case "OR":
		return b(l.Num() != 0 || r.Num() != 0), nil
	default:
		return table.Value{}, fmt.Errorf("unknown operator %q", ex.Op)
	}
}

func evalCall(ex *query.CallExpr, schema table.Schema, row table.Row) (table.Value, error) {
	switch ex.Name {
	case "range":
		v, err := evalExpr(ex.Args[0], schema, row)
		if err != nil {
			return table.Value{}, err
		}
		lo := ex.Args[1].(*query.NumLit).V
		hi := ex.Args[2].(*query.NumLit).V
		x := v.Num()
		// range() truncates values to the declared interval (§6.2).
		if x < lo {
			x = lo
		}
		if x > hi {
			x = hi
		}
		return table.N(x), nil
	case "hour":
		v, err := evalExpr(ex.Args[0], schema, row)
		if err != nil {
			return table.Value{}, err
		}
		sec := int64(v.Num())
		return table.N(float64((sec / 3600) % 24)), nil
	case "day":
		v, err := evalExpr(ex.Args[0], schema, row)
		if err != nil {
			return table.Value{}, err
		}
		sec := int64(v.Num())
		return table.N(float64(sec / 86400)), nil
	case "bin":
		v, err := evalExpr(ex.Args[0], schema, row)
		if err != nil {
			return table.Value{}, err
		}
		w := ex.Args[1].(*query.NumLit).V
		if w <= 0 {
			return table.Value{}, fmt.Errorf("bin width must be positive")
		}
		return table.N(math.Floor(v.Num()/w) * w), nil
	default:
		return table.Value{}, fmt.Errorf("unknown function %q", ex.Name)
	}
}

// exprName returns the output column name for a projected expression
// without an alias: bare column references keep their name; everything
// else gets a positional name.
func exprName(e query.Expr, pos int) string {
	switch ex := e.(type) {
	case *query.ColRef:
		return ex.Name
	case *query.CallExpr:
		if len(ex.Args) > 0 {
			if c, ok := ex.Args[0].(*query.ColRef); ok {
				return ex.Name + "_" + c.Name
			}
		}
		return fmt.Sprintf("col%d", pos)
	default:
		return fmt.Sprintf("col%d", pos)
	}
}

// exprType infers the output type of an expression.
func exprType(e query.Expr, schema table.Schema) table.DType {
	switch ex := e.(type) {
	case *query.ColRef:
		if i := schema.Index(ex.Name); i >= 0 {
			return schema.Cols[i].Type
		}
		return table.DString
	case *query.StrLit:
		return table.DString
	default:
		return table.DNumber
	}
}

// exprRange computes the static range constraint of an expression
// given the input column ranges (Fig. 10's projection rules). ok=false
// means unbound (∅).
func exprRange(e query.Expr, ranges map[string]Range) (Range, bool) {
	switch ex := e.(type) {
	case *query.ColRef:
		r, ok := ranges[ex.Name]
		return r, ok
	case *query.NumLit:
		return Range{ex.V, ex.V}, true
	case *query.StrLit:
		return Range{}, false
	case *query.CallExpr:
		switch ex.Name {
		case "range":
			lo := ex.Args[1].(*query.NumLit).V
			hi := ex.Args[2].(*query.NumLit).V
			return Range{lo, hi}, true
		case "hour":
			return Range{0, 23}, true
		default:
			return Range{}, false
		}
	case *query.BinExpr:
		l, lok := exprRange(ex.L, ranges)
		r, rok := exprRange(ex.R, ranges)
		switch ex.Op {
		case "+":
			if lok && rok {
				return Range{l.Lo + r.Lo, l.Hi + r.Hi}, true
			}
		case "-":
			if lok && rok {
				return Range{l.Lo - r.Hi, l.Hi - r.Lo}, true
			}
		case "*":
			if lok && rok {
				cands := []float64{l.Lo * r.Lo, l.Lo * r.Hi, l.Hi * r.Lo, l.Hi * r.Hi}
				lo, hi := cands[0], cands[0]
				for _, c := range cands[1:] {
					lo = math.Min(lo, c)
					hi = math.Max(hi, c)
				}
				return Range{lo, hi}, true
			}
		case "=", "!=", "<", "<=", ">", ">=", "AND", "OR":
			return Range{0, 1}, true
		}
		return Range{}, false
	default:
		return Range{}, false
	}
}

// exprTrusted reports whether an expression's value is independent of
// analyst-controlled data: literals, trusted columns, and stateless
// functions over them.
func exprTrusted(e query.Expr, trusted map[string]bool) bool {
	switch ex := e.(type) {
	case *query.ColRef:
		return trusted[ex.Name]
	case *query.NumLit, *query.StrLit:
		return true
	case *query.BinExpr:
		return exprTrusted(ex.L, trusted) && exprTrusted(ex.R, trusted)
	case *query.CallExpr:
		for _, a := range ex.Args {
			if !exprTrusted(a, trusted) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// exprBucket detects the bucket provenance of an expression: hour(c),
// day(c) or bin(c, w) applied to a column that itself carries a bucket
// spec (the chunk column starts with width = chunk seconds).
func exprBucket(e query.Expr, buckets map[string]BucketSpec) (BucketSpec, bool) {
	switch ex := e.(type) {
	case *query.ColRef:
		b, ok := buckets[ex.Name]
		return b, ok
	case *query.CallExpr:
		if len(ex.Args) == 0 {
			return BucketSpec{}, false
		}
		if _, ok := exprBucket(ex.Args[0], buckets); !ok {
			return BucketSpec{}, false
		}
		switch ex.Name {
		case "hour":
			return BucketSpec{HourOfDay: true}, true
		case "day":
			return BucketSpec{WidthSec: 86400}, true
		case "bin":
			return BucketSpec{WidthSec: ex.Args[1].(*query.NumLit).V}, true
		}
		return BucketSpec{}, false
	default:
		return BucketSpec{}, false
	}
}
