package rel

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"privid/internal/query"
	"privid/internal/table"
)

// Partial-aggregation pushdown. A SELECT whose relational chain is a
// stack of projections/filters over a single PROCESS table and whose
// outer aggregation is COUNT, SUM or ARGMAX (grouped COUNT) can be
// evaluated one chunk at a time: each chunk's rows fold into a small
// mergeable state (per-group counts and clamped sums plus per-camera
// row tallies), states merge associatively, and Finalize reconstructs
// the exact releases ExecuteSelect would have produced — sensitivities
// included, because Fig. 10's constraint propagation is data-independent
// (ΔP, C̃r, buckets and the per-camera KeyDeltas partition all derive
// from trusted metadata and the query text, never from row contents).
//
// Eligibility is decided statically. The plan accepts a statement only
// when no expression it would ever evaluate can error (checkExpr mirrors
// the evaluator's failure branches), so the fold path needs no error
// parity bookkeeping: any statement that could fail — or whose
// aggregate is not exactly mergeable (AVG, VAR) — declines and takes
// the full materialization path.

// PartialState is the mergeable aggregate of some subset of chunks:
// fixed parallel arrays indexed by plan key slot (a single slot for
// ungrouped aggregates), plus row tallies for observability and
// per-camera accounting.
type PartialState struct {
	// Counts holds the per-slot row counts (the aggregate itself for
	// COUNT and ARGMAX scores).
	Counts []int64
	// Sums holds the per-slot range-clamped sums; nil unless the plan
	// aggregates SUM.
	Sums []float64
	// Rows and Chunks tally the folded input.
	Rows, Chunks int64
	// CamRows tallies rows per contributing camera, so per-camera
	// accounting composes from merged states.
	CamRows map[string]int64
}

// PartialPlan is the static aggregation plan of one eligible SELECT:
// everything Finalize needs, precomputed from trusted metadata so that
// folding a chunk touches only its rows.
type PartialPlan struct {
	agg  query.AggExpr
	from query.RelExpr

	tableName string
	metas     []TableMeta
	// bare is true when the FROM chain is the table reference itself,
	// letting Fold skip relational evaluation entirely.
	bare bool

	cons   Constraints
	begin  time.Time
	end    time.Time
	spans  map[string][2]time.Time
	schema table.Schema // output schema of the FROM chain

	grouped bool
	col     string // GROUP BY column
	ci      int    // its index in schema
	keys    []table.Value
	windows [][2]time.Time
	slots   map[uint64][]int

	needSum bool
	rg      Range
	width   float64
	// argCol is the direct column index of the aggregate argument when
	// it is a bare column reference or a range() call over one (the
	// single clamp by rg reproduces evalVec + aggregateSel exactly);
	// -1 when the general expression evaluator is needed.
	argCol int

	argmaxSens float64
	kd         map[string]float64
	hasKD      bool
	kc         map[string][]string
	hasKC      bool

	id string
}

// ReferencedTables lists the distinct table names a relational
// expression reads, in first-reference order.
func ReferencedTables(r query.RelExpr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(query.RelExpr)
	walk = func(r query.RelExpr) {
		switch rel := r.(type) {
		case *query.TableRef:
			if !seen[rel.Name] {
				seen[rel.Name] = true
				out = append(out, rel.Name)
			}
		case *query.SelectExpr:
			walk(rel.From)
		case *query.GroupExpr:
			walk(rel.From)
		case *query.JoinExpr:
			walk(rel.Left)
			walk(rel.Right)
		case *query.UnionExpr:
			walk(rel.Left)
			walk(rel.Right)
		}
	}
	walk(r)
	return out
}

// checkExpr statically verifies that evaluating e over any table with
// the given schema cannot fail: it mirrors every error and panic branch
// of evalVec/binVec/callVec (unknown column, unknown operator, unknown
// function, non-literal range/bin bounds, non-positive bin width,
// unsupported node). A nil error means evaluation is total.
func checkExpr(e query.Expr, schema table.Schema) error {
	switch ex := e.(type) {
	case *query.ColRef:
		if schema.Index(ex.Name) < 0 {
			return fmt.Errorf("unknown column %q", ex.Name)
		}
		return nil
	case *query.NumLit, *query.StrLit:
		return nil
	case *query.BinExpr:
		if err := checkExpr(ex.L, schema); err != nil {
			return err
		}
		if err := checkExpr(ex.R, schema); err != nil {
			return err
		}
		switch ex.Op {
		case "+", "-", "*", "/", "=", "!=", "<", "<=", ">", ">=", "AND", "OR":
			return nil
		}
		return fmt.Errorf("unknown operator %q", ex.Op)
	case *query.CallExpr:
		switch ex.Name {
		case "range":
			if len(ex.Args) != 3 {
				return fmt.Errorf("range() wants 3 args")
			}
			if err := checkExpr(ex.Args[0], schema); err != nil {
				return err
			}
			if _, ok := ex.Args[1].(*query.NumLit); !ok {
				return fmt.Errorf("range() bound is not a literal")
			}
			if _, ok := ex.Args[2].(*query.NumLit); !ok {
				return fmt.Errorf("range() bound is not a literal")
			}
			return nil
		case "hour", "day":
			if len(ex.Args) != 1 {
				return fmt.Errorf("%s() wants 1 arg", ex.Name)
			}
			return checkExpr(ex.Args[0], schema)
		case "bin":
			if len(ex.Args) != 2 {
				return fmt.Errorf("bin() wants 2 args")
			}
			if err := checkExpr(ex.Args[0], schema); err != nil {
				return err
			}
			w, ok := ex.Args[1].(*query.NumLit)
			if !ok {
				return fmt.Errorf("bin() width is not a literal")
			}
			if w.V <= 0 {
				return fmt.Errorf("bin width must be positive")
			}
			return nil
		}
		return fmt.Errorf("unknown function %q", ex.Name)
	default:
		return fmt.Errorf("unsupported expression %T", e)
	}
}

// PlanPartial decides whether st can be evaluated by per-chunk folding
// over the named table (whose full execution schema and trusted shard
// metadata are given) and, if so, returns the plan. A nil result means
// the statement must take the full materialization path — because it
// touches other tables, uses an operator that is not distributive over
// chunks (LIMIT, inner GROUP BY, JOIN, UNION), aggregates with AVG/VAR
// (not exactly mergeable), or could raise an evaluation error that the
// fold path would not reproduce.
func PlanPartial(st *query.SelectStmt, name string, full table.Schema, metas []TableMeta) *PartialPlan {
	if len(metas) == 0 {
		return nil
	}
	// Unwrap the FROM chain: projections/filters over the single table.
	var wrappers []*query.SelectExpr // outermost first
	cur := st.From
unwrap:
	for {
		switch f := cur.(type) {
		case *query.SelectExpr:
			if f.Limit > 0 {
				return nil // LIMIT truncates at full-table row order
			}
			wrappers = append(wrappers, f)
			cur = f.From
		case *query.TableRef:
			if f.Name != name {
				return nil
			}
			break unwrap
		default:
			return nil
		}
	}
	// Static totality check of every expression the chain evaluates,
	// tracking the evolving schema innermost-out.
	schema := full
	for i := len(wrappers) - 1; i >= 0; i-- {
		w := wrappers[i]
		if w.Where != nil {
			if checkExpr(w.Where, schema) != nil {
				return nil
			}
		}
		if w.Star {
			continue
		}
		cols := make([]table.Column, 0, len(w.Items))
		for j, it := range w.Items {
			if checkExpr(it.Expr, schema) != nil {
				return nil
			}
			cname := it.Alias
			if cname == "" {
				cname = exprName(it.Expr, j)
			}
			cols = append(cols, table.Column{Name: cname, Type: exprType(it.Expr, schema)})
		}
		schema = table.Schema{Cols: cols}
	}

	// Constraint propagation is data-independent: run the chain once
	// over a zero-row table to obtain the output constraints.
	env0 := Env{name: {Metas: metas, Data: table.New(full)}}
	empty, cons, err := execRel(st.From, env0)
	if err != nil {
		return nil
	}

	p := &PartialPlan{
		agg:       st.Agg,
		from:      st.From,
		tableName: name,
		metas:     metas,
		bare:      len(wrappers) == 0,
		cons:      cons,
		spans:     cameraSpans(cons),
		schema:    empty.Schema,
		argCol:    -1,
	}
	p.begin, p.end = cons.Window()

	switch st.Agg.Fun {
	case query.AggCount, query.AggSum, query.AggArgmax:
	default:
		return nil // AVG/VAR need count-coupled division; not exactly mergeable
	}
	p.grouped = len(st.GroupBy) > 0
	if st.Agg.Fun == query.AggArgmax && !p.grouped {
		return nil
	}
	if p.grouped && len(st.GroupBy) != 1 {
		return nil
	}

	if st.Agg.Fun == query.AggSum {
		p.needSum = true
		rg, ok := exprRange(st.Agg.Arg, cons.Ranges)
		if !ok {
			return nil
		}
		if checkExpr(st.Agg.Arg, p.schema) != nil {
			return nil
		}
		p.rg = rg
		p.width = rg.Width()
		switch arg := st.Agg.Arg.(type) {
		case *query.ColRef:
			p.argCol = p.schema.Index(arg.Name)
		case *query.CallExpr:
			if arg.Name == "range" {
				if c, ok := arg.Args[0].(*query.ColRef); ok {
					p.argCol = p.schema.Index(c.Name)
				}
			}
		}
	}

	if p.grouped {
		p.col = st.GroupBy[0]
		p.ci = p.schema.Index(p.col)
		if p.ci < 0 {
			return nil
		}
		switch {
		case len(st.GroupKeys) > 0:
			p.keys = st.GroupKeys
			for range p.keys {
				p.windows = append(p.windows, [2]time.Time{p.begin, p.end})
			}
		case cons.Trusted[p.col]:
			spec, ok := cons.Buckets[p.col]
			if !ok {
				return nil
			}
			p.keys, p.windows = enumerateBuckets(spec, p.begin, p.end)
		default:
			return nil
		}
		p.slots = make(map[uint64][]int, len(p.keys))
		for si, k := range p.keys {
			h := k.KeyHash()
			p.slots[h] = append(p.slots[h], si)
		}
		if st.Agg.Fun == query.AggArgmax {
			p.argmaxSens = cons.Delta
			if kd, ok := cons.KeyDeltas[p.col]; ok {
				maxD, covered := 0.0, true
				for _, k := range p.keys {
					d, ok := kd[k.Str()]
					if !ok {
						covered = false
						break
					}
					if d > maxD {
						maxD = d
					}
				}
				if covered {
					p.argmaxSens = maxD
				}
			}
		}
		p.kd, p.hasKD = cons.KeyDeltas[p.col]
		p.kc, p.hasKC = cons.KeyCams[p.col]
	}

	p.id = p.renderID(st, full)
	return p
}

// renderID derives the plan's identity string: every static input the
// folded state depends on — the table's stamped schema, the relational
// chain, the aggregate, the group keys (slot layout) and the clamp
// range. Combined with a chunk's content identity it keys the
// partial-state cache tier.
func (p *PartialPlan) renderID(st *query.SelectStmt, full table.Schema) string {
	var b strings.Builder
	b.WriteString("pps1|")
	for _, c := range full.Cols {
		fmt.Fprintf(&b, "%q:%d:%q;", c.Name, c.Type, c.Default.Key())
	}
	b.WriteString("|")
	renderRel(&b, st.From)
	fmt.Fprintf(&b, "|agg:%d,star:%t,arg:", st.Agg.Fun, st.Agg.Star)
	renderExpr(&b, st.Agg.Arg)
	fmt.Fprintf(&b, "|gb:%q|keys:", p.col)
	for _, k := range p.keys {
		fmt.Fprintf(&b, "%q;", k.Key())
	}
	if p.needSum {
		fmt.Fprintf(&b, "|rg:%x,%x", math.Float64bits(p.rg.Lo), math.Float64bits(p.rg.Hi))
	}
	return b.String()
}

// renderRel writes a canonical form of the (already validated) chain:
// SelectExprs over one TableRef.
func renderRel(b *strings.Builder, r query.RelExpr) {
	switch rel := r.(type) {
	case *query.TableRef:
		fmt.Fprintf(b, "T(%q)", rel.Name)
	case *query.SelectExpr:
		b.WriteString("S(")
		if rel.Star {
			b.WriteString("*")
		}
		for i, it := range rel.Items {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(b, "%q=", it.Alias)
			renderExpr(b, it.Expr)
		}
		b.WriteString(";w=")
		renderExpr(b, rel.Where)
		b.WriteString(";f=")
		renderRel(b, rel.From)
		b.WriteString(")")
	}
}

// renderExpr writes a canonical, fully parenthesized form of an
// expression; floats render as exact bit patterns.
func renderExpr(b *strings.Builder, e query.Expr) {
	switch ex := e.(type) {
	case nil:
		b.WriteString("-")
	case *query.ColRef:
		fmt.Fprintf(b, "c(%q)", ex.Name)
	case *query.NumLit:
		fmt.Fprintf(b, "n(%x)", math.Float64bits(ex.V))
	case *query.StrLit:
		fmt.Fprintf(b, "s(%q)", ex.V)
	case *query.BinExpr:
		fmt.Fprintf(b, "b(%q,", ex.Op)
		renderExpr(b, ex.L)
		b.WriteString(",")
		renderExpr(b, ex.R)
		b.WriteString(")")
	case *query.CallExpr:
		fmt.Fprintf(b, "f(%q", ex.Name)
		for _, a := range ex.Args {
			b.WriteString(",")
			renderExpr(b, a)
		}
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "?(%T)", e)
	}
}

// ID returns the plan identity string (see renderID).
func (p *PartialPlan) ID() string { return p.id }

// Slots returns the number of key slots (1 for ungrouped aggregates).
func (p *PartialPlan) Slots() int {
	if p.grouped {
		return len(p.keys)
	}
	return 1
}

// NewState returns an empty state shaped for this plan.
func (p *PartialPlan) NewState() *PartialState {
	s := &PartialState{Counts: make([]int64, p.Slots())}
	if p.needSum {
		s.Sums = make([]float64, p.Slots())
	}
	return s
}

// Compatible reports whether a (possibly decoded) state matches this
// plan's shape.
func (p *PartialPlan) Compatible(s *PartialState) bool {
	if s == nil || len(s.Counts) != p.Slots() {
		return false
	}
	if p.needSum != (s.Sums != nil) || (s.Sums != nil && len(s.Sums) != p.Slots()) {
		return false
	}
	return true
}

// Partial folds one chunk's stamped table into a fresh state. The
// chunk table must carry the full execution schema the plan was built
// against; camera attributes the chunk's rows for per-camera tallies.
func (p *PartialPlan) Partial(chunk *table.Table, camera string) (*PartialState, error) {
	s := p.NewState()
	tbl := chunk
	if !p.bare {
		t, _, err := execRel(p.from, Env{p.tableName: {Metas: p.metas, Data: chunk}})
		if err != nil {
			return nil, err // unreachable for a validated plan; stay defensive
		}
		tbl = t
	}
	n := tbl.Len()
	s.Chunks = 1
	s.Rows = int64(n)
	if camera != "" && n > 0 {
		s.CamRows = map[string]int64{camera: int64(n)}
	}
	if n == 0 {
		return s, nil
	}

	var argAt func(i int) float64
	if p.needSum {
		lo, hi := p.rg.Lo, p.rg.Hi
		if p.argCol >= 0 {
			nums := tbl.Nums(p.argCol)
			argAt = func(i int) float64 {
				x := nums[i]
				if x < lo {
					x = lo
				}
				if x > hi {
					x = hi
				}
				return x
			}
		} else {
			av, err := evalVec(p.agg.Arg, tbl)
			if err != nil {
				return nil, err // unreachable: argument is statically total
			}
			argAt = func(i int) float64 {
				x := av.numAt(i)
				if x < lo {
					x = lo
				}
				if x > hi {
					x = hi
				}
				return x
			}
		}
	}

	if !p.grouped {
		s.Counts[0] = int64(n)
		if p.needSum {
			var sum float64
			for i := 0; i < n; i++ {
				sum += argAt(i)
			}
			s.Sums[0] = sum
		}
		return s, nil
	}

	ci := p.ci
	for i := 0; i < n; i++ {
		h := tbl.HashCell(table.HashSeed, i, ci)
		sis := p.slots[h]
		if len(sis) == 0 {
			continue
		}
		for _, si := range sis {
			if tbl.At(i, ci).KeyEqual(p.keys[si]) {
				s.Counts[si]++
				if p.needSum {
					s.Sums[si] += argAt(i)
				}
			}
		}
	}
	return s, nil
}

// Merge folds src into dst. Merging is commutative and associative on
// the values the differential harness exercises: counts are integers,
// and sums only combine range-clamped (finite or NaN) chunk subtotals.
func (p *PartialPlan) Merge(dst, src *PartialState) {
	for i, c := range src.Counts {
		dst.Counts[i] += c
	}
	for i, v := range src.Sums {
		dst.Sums[i] += v
	}
	dst.Rows += src.Rows
	dst.Chunks += src.Chunks
	if len(src.CamRows) > 0 {
		if dst.CamRows == nil {
			dst.CamRows = make(map[string]int64, len(src.CamRows))
		}
		for cam, r := range src.CamRows {
			dst.CamRows[cam] += r
		}
	}
}

// Finalize reconstructs the statement's releases from a merged state,
// byte-identical to what ExecuteSelect produces over the concatenated
// table: descriptions, sensitivities, per-bucket windows, per-camera
// charge windows and release order (sorted by group key).
func (p *PartialPlan) Finalize(s *PartialState) []Release {
	base := Release{Fun: p.agg.Fun, Begin: p.begin, End: p.end}

	if !p.grouped {
		r := base
		r.Desc = aggDesc(p.agg, "")
		switch p.agg.Fun {
		case query.AggCount:
			r.Raw = float64(s.Counts[0])
			r.Sensitivity = p.cons.Delta
		case query.AggSum:
			r.Raw = s.Sums[0]
			r.Sensitivity = p.cons.Delta * p.width
		}
		return []Release{withWindows(r, p.spans, nil)}
	}

	if p.agg.Fun == query.AggArgmax {
		r := base
		r.Desc = aggDesc(p.agg, p.col)
		r.Sensitivity = p.argmaxSens
		for si, k := range p.keys {
			r.Scores = append(r.Scores, Score{Key: k, Raw: float64(s.Counts[si])})
		}
		return []Release{withWindows(r, p.spans, nil)}
	}

	var out []Release
	for i, k := range p.keys {
		delta := p.cons.Delta
		if p.hasKD {
			delta = p.kd[k.Str()]
		}
		r := base
		r.Desc = aggDesc(p.agg, "") + "[" + p.col + "=" + k.Str() + "]"
		r.Key = k
		r.HasKey = true
		switch p.agg.Fun {
		case query.AggCount:
			r.Raw = float64(s.Counts[i])
			r.Sensitivity = delta
		case query.AggSum:
			r.Raw = s.Sums[i]
			r.Sensitivity = delta * p.width
		}
		r.Begin, r.End = p.windows[i][0], p.windows[i][1]
		var only []string
		if p.hasKC {
			only = p.kc[k.Str()]
			if only == nil {
				only = []string{}
			}
		}
		out = append(out, withWindows(r, p.spans, only))
	}
	sortReleases(out)
	return out
}

// sortReleases orders keyed releases by group key: numeric keys before
// string keys, numeric keys ascending (NaN first), string keys
// lexicographic. The sort is stable so duplicate keys keep their plan
// order. Both the streaming and materialized paths apply it, making
// release order — and therefore the seeded noise draw each release
// consumes — independent of chunk arrival order.
func sortReleases(rs []Release) {
	sort.SliceStable(rs, func(i, j int) bool {
		return releaseKeyLess(rs[i].Key, rs[j].Key)
	})
}

func releaseKeyLess(a, b table.Value) bool {
	an := a.Type() == table.DNumber
	bn := b.Type() == table.DNumber
	if an != bn {
		return an
	}
	if an {
		x, y := a.Num(), b.Num()
		switch {
		case x < y:
			return true
		case x > y:
			return false
		case math.IsNaN(x) && !math.IsNaN(y):
			return true
		default:
			return false
		}
	}
	return a.Str() < b.Str()
}
