package rel

// Tests of the partial-aggregation pushdown layer: a 300-seed extension
// of the differential harness that replays every eligible generated
// SELECT through chunked fold + shuffled merges against the row-major
// oracle, a merge-order invariance property test, codec round-trips,
// and the release-order determinism golden test.

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"privid/internal/query"
	"privid/internal/table"
)

// bitEq is exact float equality (±0 distinguished); NaNs compare equal
// regardless of payload.
func bitEq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// splitChunks cuts a table into randomly sized contiguous chunk tables,
// sometimes appending an empty chunk (a chunk whose sandbox emitted no
// rows).
func splitChunks(rng *rand.Rand, t *table.Table) []*table.Table {
	var out []*table.Table
	n := t.Len()
	for i := 0; i < n; {
		m := 1 + rng.Intn(5)
		if i+m > n {
			m = n - i
		}
		c := table.New(t.Schema)
		for r := i; r < i+m; r++ {
			c.Append(t.Row(r))
		}
		out = append(out, c)
		i += m
	}
	if rng.Intn(2) == 0 {
		out = append(out, table.New(t.Schema))
	}
	return out
}

// comparePartialReleases requires got to match want exactly: header,
// key, bit-exact raw value and sensitivity, windows, cameras, charge
// windows and scores, in order.
func comparePartialReleases(t *testing.T, seed int64, got, want []Release) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("seed %d: %d releases vs %d", seed, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Desc != w.Desc || g.Fun != w.Fun || g.HasKey != w.HasKey {
			t.Fatalf("seed %d: release %d header: %+v vs %+v", seed, i, g, w)
		}
		if g.HasKey && !sameValue(g.Key, w.Key) {
			t.Fatalf("seed %d: release %d key: %s vs %s", seed, i, g.Key.Key(), w.Key.Key())
		}
		if !bitEq(g.Raw, w.Raw) || !bitEq(g.Sensitivity, w.Sensitivity) {
			t.Fatalf("seed %d: release %d raw/sens: (%v,%v) vs (%v,%v)", seed, i, g.Raw, g.Sensitivity, w.Raw, w.Sensitivity)
		}
		if !g.Begin.Equal(w.Begin) || !g.End.Equal(w.End) {
			t.Fatalf("seed %d: release %d window: %v-%v vs %v-%v", seed, i, g.Begin, g.End, w.Begin, w.End)
		}
		if len(g.Cameras) != len(w.Cameras) {
			t.Fatalf("seed %d: release %d cameras: %v vs %v", seed, i, g.Cameras, w.Cameras)
		}
		for c := range g.Cameras {
			if g.Cameras[c] != w.Cameras[c] {
				t.Fatalf("seed %d: release %d cameras: %v vs %v", seed, i, g.Cameras, w.Cameras)
			}
		}
		if len(g.CamWindows) != len(w.CamWindows) {
			t.Fatalf("seed %d: release %d cam windows: %v vs %v", seed, i, g.CamWindows, w.CamWindows)
		}
		for cam, gw := range g.CamWindows {
			ww, ok := w.CamWindows[cam]
			if !ok || !gw[0].Equal(ww[0]) || !gw[1].Equal(ww[1]) {
				t.Fatalf("seed %d: release %d cam window %q: %v vs %v", seed, i, cam, gw, ww)
			}
		}
		if len(g.Scores) != len(w.Scores) {
			t.Fatalf("seed %d: release %d scores: %d vs %d", seed, i, len(g.Scores), len(w.Scores))
		}
		for s := range g.Scores {
			if !sameValue(g.Scores[s].Key, w.Scores[s].Key) || !bitEq(g.Scores[s].Raw, w.Scores[s].Raw) {
				t.Fatalf("seed %d: release %d score %d diverges", seed, i, s)
			}
		}
	}
}

// TestDifferentialStreamingMerge extends the differential harness to
// the streaming-merge path: every generated SELECT the pushdown planner
// accepts is evaluated by folding random chunkings, round-tripping each
// chunk state through the binary codec, merging in shuffled orders, and
// finalizing — and must reproduce the row-major oracle's releases
// exactly.
func TestDifferentialStreamingMerge(t *testing.T) {
	accepted := 0
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		env := diffEnv(rng)
		from, cols := diffSchemaPreserving(rng, rng.Intn(3))
		st := diffSelectStmt(rng, from, cols)

		refs := ReferencedTables(st.From)
		if len(refs) != 1 {
			t.Fatalf("seed %d: generator produced %d table refs", seed, len(refs))
		}
		inst := env[refs[0]]
		plan := PlanPartial(st, refs[0], inst.Data.Schema, inst.Metas)
		if plan == nil {
			// Declined statements take the full materialization path,
			// whose parity the existing differential suites pin.
			continue
		}
		want, werr := oracleExecuteSelect(st, env)
		if werr != nil {
			t.Fatalf("seed %d: plan accepted a failing statement: %v", seed, werr)
		}
		accepted++

		for trial := 0; trial < 3; trial++ {
			chunks := splitChunks(rng, inst.Data)
			states := make([]*PartialState, len(chunks))
			for i, c := range chunks {
				s, err := plan.Partial(c, inst.Metas[0].Camera)
				if err != nil {
					t.Fatalf("seed %d: fold chunk %d: %v", seed, i, err)
				}
				dec, err := DecodePartialState(s.EncodeBinary())
				if err != nil {
					t.Fatalf("seed %d: codec round-trip chunk %d: %v", seed, i, err)
				}
				if !plan.Compatible(dec) {
					t.Fatalf("seed %d: decoded state incompatible with plan", seed)
				}
				states[i] = dec
			}
			merged := plan.NewState()
			for _, i := range rng.Perm(len(states)) {
				plan.Merge(merged, states[i])
			}
			comparePartialReleases(t, seed, plan.Finalize(merged), want)
		}
	}
	if accepted == 0 {
		t.Fatal("no generated statement was eligible for pushdown; generator or planner drifted")
	}
}

// TestPartialMergeOrderInvariance is the merge-order property test: one
// seeded table with special floats, many random chunkings, shuffled
// merge orders — every run must finalize to bit-identical releases and
// sensitivities, equal to the materialized path's.
func TestPartialMergeOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	meta := testMeta("tableA", "camA")
	base := float64(meta.Begin.Unix())
	colors := []string{"RED", "WHITE", "SILVER", "BLACK"}
	tbl := table.New(carSchema())
	for i := 0; i < 500; i++ {
		tbl.Append(table.Row{
			table.S("P" + strconv.Itoa(i%13)),
			table.S(colors[rng.Intn(len(colors))]),
			table.N(diffNum(rng)), // quarter-integers, NaN, ±Inf, ±0
			table.N(base + float64(rng.Intn(100))*5),
		})
	}
	env := Env{"tableA": &Instance{Metas: []TableMeta{meta}, Data: tbl}}
	st := benchStmt()
	plan := PlanPartial(st, "tableA", tbl.Schema, []TableMeta{meta})
	if plan == nil {
		t.Fatal("grouped SUM with range constraint must be eligible")
	}
	want, err := ExecuteSelect(st, env)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		chunks := splitChunks(rng, tbl)
		states := make([]*PartialState, len(chunks))
		for i, c := range chunks {
			s, err := plan.Partial(c, "camA")
			if err != nil {
				t.Fatalf("trial %d: fold: %v", trial, err)
			}
			states[i] = s
		}
		merged := plan.NewState()
		for _, i := range rng.Perm(len(states)) {
			plan.Merge(merged, states[i])
		}
		comparePartialReleases(t, int64(trial), plan.Finalize(merged), want)
	}
}

// TestReleaseOrderDeterminism is the satellite golden test: finalized
// GROUP BY releases sort by group key on both paths — independent of
// WITH KEYS order and of chunk arrival order — and numeric keys sort
// numerically, not lexicographically.
func TestReleaseOrderDeterminism(t *testing.T) {
	env := carEnv(t)
	st := parseSelect(t, `SELECT color, COUNT(*) FROM tableA GROUP BY color WITH KEYS ["WHITE","SILVER","RED"];`)
	rels, err := ExecuteSelect(st, env)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"RED", "SILVER", "WHITE"}
	if len(rels) != len(wantOrder) {
		t.Fatalf("%d releases", len(rels))
	}
	for i, r := range rels {
		if r.Key.Str() != wantOrder[i] {
			t.Fatalf("release %d key %q, want %q", i, r.Key.Str(), wantOrder[i])
		}
	}

	// Streaming path, chunks folded in both arrival orders.
	inst := env["tableA"]
	plan := PlanPartial(st, "tableA", inst.Data.Schema, inst.Metas)
	if plan == nil {
		t.Fatal("statement must be eligible for pushdown")
	}
	half := inst.Data.Len() / 2
	a, b := table.New(inst.Data.Schema), table.New(inst.Data.Schema)
	for i := 0; i < inst.Data.Len(); i++ {
		if i < half {
			a.Append(inst.Data.Row(i))
		} else {
			b.Append(inst.Data.Row(i))
		}
	}
	for _, order := range [][]*table.Table{{a, b}, {b, a}} {
		merged := plan.NewState()
		for _, c := range order {
			s, err := plan.Partial(c, "camA")
			if err != nil {
				t.Fatal(err)
			}
			plan.Merge(merged, s)
		}
		got := plan.Finalize(merged)
		comparePartialReleases(t, 0, got, rels)
	}

	// Numeric keys: 10 sorts after 2 (numeric order), despite "n:10" <
	// "n:2" lexicographically.
	st2 := &query.SelectStmt{
		Agg:       query.AggExpr{Fun: query.AggCount, Star: true},
		From:      &query.TableRef{Name: "tableA"},
		GroupBy:   []string{"speed"},
		GroupKeys: []table.Value{table.N(10), table.N(2), table.N(-1)},
	}
	rels2, err := ExecuteSelect(st2, env)
	if err != nil {
		t.Fatal(err)
	}
	wantNum := []float64{-1, 2, 10}
	for i, r := range rels2 {
		if r.Key.Num() != wantNum[i] {
			t.Fatalf("numeric release %d key %v, want %v", i, r.Key.Num(), wantNum[i])
		}
	}
}

// TestPartialStateCodec pins the codec: exact round-trips including
// special floats, and graceful rejection of truncated or corrupt input.
func TestPartialStateCodec(t *testing.T) {
	s := &PartialState{
		Counts:  []int64{3, 0, 41},
		Sums:    []float64{1.25, math.NaN(), math.Inf(-1)},
		Rows:    44,
		Chunks:  7,
		CamRows: map[string]int64{"camB": 14, "camA": 30},
	}
	enc := s.EncodeBinary()
	dec, err := DecodePartialState(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Counts) != 3 || dec.Counts[0] != 3 || dec.Counts[1] != 0 || dec.Counts[2] != 41 {
		t.Fatalf("counts %v", dec.Counts)
	}
	for i := range s.Sums {
		if !bitEq(dec.Sums[i], s.Sums[i]) {
			t.Fatalf("sum %d: %v vs %v", i, dec.Sums[i], s.Sums[i])
		}
	}
	if dec.Rows != 44 || dec.Chunks != 7 {
		t.Fatalf("tallies %d/%d", dec.Rows, dec.Chunks)
	}
	if len(dec.CamRows) != 2 || dec.CamRows["camA"] != 30 || dec.CamRows["camB"] != 14 {
		t.Fatalf("cam rows %v", dec.CamRows)
	}
	// Encoding is deterministic (sorted camera keys).
	if string(enc) != string(dec.EncodeBinary()) {
		t.Fatal("re-encoding diverged")
	}
	// A sum-less state round-trips with Sums == nil.
	dec2, err := DecodePartialState((&PartialState{Counts: []int64{1}}).EncodeBinary())
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Sums != nil || dec2.CamRows != nil {
		t.Fatalf("zero state grew fields: %+v", dec2)
	}
	// Every truncation must error, never panic.
	for i := 0; i < len(enc); i++ {
		if _, err := DecodePartialState(enc[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	if _, err := DecodePartialState(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := DecodePartialState(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// An absurd slot count must be rejected before allocating.
	huge := append([]byte(nil), enc[:5]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0x7f)
	if _, err := DecodePartialState(huge); err == nil {
		t.Fatal("oversized slot count accepted")
	}
}

// TestPlanPartialEligibility pins the accept/decline matrix: mergeable
// single-table aggregations push down, everything whose semantics or
// error behavior is not chunk-distributive declines.
func TestPlanPartialEligibility(t *testing.T) {
	env := carEnv(t)
	inst := env["tableA"]
	try := func(sel string) *PartialPlan {
		t.Helper()
		st := parseSelect(t, sel)
		return PlanPartial(st, "tableA", inst.Data.Schema, inst.Metas)
	}
	accepts := []string{
		`SELECT COUNT(*) FROM tableA;`,
		`SELECT SUM(range(speed, 0, 60)) FROM tableA;`,
		`SELECT color, COUNT(*) FROM tableA GROUP BY color WITH KEYS ["RED","WHITE"];`,
		`SELECT ARGMAX(color) FROM tableA GROUP BY color WITH KEYS ["RED","WHITE"];`,
		`SELECT COUNT(*) FROM (SELECT bin(chunk, 100) AS b FROM tableA) GROUP BY b;`,
		`SELECT COUNT(*) FROM (SELECT plate FROM tableA WHERE speed > 50);`,
	}
	for _, sel := range accepts {
		if try(sel) == nil {
			t.Errorf("declined eligible statement %s", sel)
		}
	}
	declines := []string{
		`SELECT AVG(range(speed, 0, 60)) FROM tableA;`,                                      // not exactly mergeable
		`SELECT VAR(range(speed, 0, 60)) FROM tableA;`,                                      // not exactly mergeable
		`SELECT SUM(speed) FROM tableA;`,                                                    // missing range constraint: must error on the full path
		`SELECT COUNT(*) FROM (SELECT plate FROM tableA LIMIT 3);`,                          // LIMIT is order-dependent
		`SELECT COUNT(*) FROM (SELECT plate FROM tableA GROUP BY plate);`,                   // cross-chunk dedup
		`SELECT COUNT(*) FROM tableA GROUP BY color;`,                                       // WITH KEYS required: must error
		`SELECT COUNT(*) FROM (SELECT nope FROM tableA);`,                                   // unknown column: must error
		`SELECT COUNT(*) FROM (SELECT plate FROM tableA) UNION (SELECT plate FROM tableA);`, // not a single chain
	}
	for _, sel := range declines {
		if try(sel) != nil {
			t.Errorf("accepted ineligible statement %s", sel)
		}
	}

	// Accepted plans agree with the materialized path when the whole
	// table folds as a single chunk.
	for _, sel := range accepts {
		st := parseSelect(t, sel)
		plan := PlanPartial(st, "tableA", inst.Data.Schema, inst.Metas)
		s, err := plan.Partial(inst.Data, "camA")
		if err != nil {
			t.Fatalf("%s: fold: %v", sel, err)
		}
		want, err := ExecuteSelect(st, env)
		if err != nil {
			t.Fatalf("%s: execute: %v", sel, err)
		}
		comparePartialReleases(t, 0, plan.Finalize(s), want)
	}
}
