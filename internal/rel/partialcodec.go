package rel

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Binary partial-state codec (version 1), the cache/wire form of a
// PartialState — the unit the chunk cache's partial-state tier stores
// and the shape a future distributed shard would ship instead of a full
// table. Layout, little-endian:
//
//	4B magic "PPS1"
//	u8  flags (bit 0: sums present)
//	u32 nslots
//	per slot: i64 count
//	if sums: per slot, 8B IEEE-754 float
//	i64 rows | i64 chunks
//	u16 ncams
//	per camera (sorted by name): u16 len(name) | name | i64 rows
//
// Encoding is deterministic (camera keys sorted) and decoding never
// panics: every length is validated against the remaining input, so the
// disk tier can feed it torn or corrupted payloads.

var partialMagic = [4]byte{'P', 'P', 'S', '1'}

// EncodeBinary serializes the state.
func (s *PartialState) EncodeBinary() []byte {
	n := len(s.Counts)
	size := 4 + 1 + 4 + 8*n + 16 + 2
	if s.Sums != nil {
		size += 8 * n
	}
	for cam := range s.CamRows {
		size += 2 + len(cam) + 8
	}
	b := make([]byte, 0, size)
	b = append(b, partialMagic[:]...)
	var flags byte
	if s.Sums != nil {
		flags |= 1
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	for _, c := range s.Counts {
		b = binary.LittleEndian.AppendUint64(b, uint64(c))
	}
	if s.Sums != nil {
		for _, v := range s.Sums {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Rows))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Chunks))
	cams := make([]string, 0, len(s.CamRows))
	for cam := range s.CamRows {
		cams = append(cams, cam)
	}
	sort.Strings(cams)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(cams)))
	for _, cam := range cams {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(cam)))
		b = append(b, cam...)
		b = binary.LittleEndian.AppendUint64(b, uint64(s.CamRows[cam]))
	}
	return b
}

type stateDecoder struct {
	b   []byte
	off int
}

func (d *stateDecoder) remaining() int { return len(d.b) - d.off }

func (d *stateDecoder) u8() (byte, error) {
	if d.remaining() < 1 {
		return 0, fmt.Errorf("rel: truncated partial state")
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *stateDecoder) u16() (uint16, error) {
	if d.remaining() < 2 {
		return 0, fmt.Errorf("rel: truncated partial state")
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v, nil
}

func (d *stateDecoder) u32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, fmt.Errorf("rel: truncated partial state")
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *stateDecoder) u64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, fmt.Errorf("rel: truncated partial state")
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *stateDecoder) str(n int) (string, error) {
	if n < 0 || d.remaining() < n {
		return "", fmt.Errorf("rel: truncated partial state")
	}
	v := string(d.b[d.off : d.off+n])
	d.off += n
	return v, nil
}

// DecodePartialState deserializes a state encoded by EncodeBinary. It
// never panics on malformed input and bounds every allocation by the
// input length.
func DecodePartialState(raw []byte) (*PartialState, error) {
	d := &stateDecoder{b: raw}
	magic, err := d.str(4)
	if err != nil {
		return nil, err
	}
	if magic != string(partialMagic[:]) {
		return nil, fmt.Errorf("rel: bad partial-state magic %q", magic)
	}
	flags, err := d.u8()
	if err != nil {
		return nil, err
	}
	if flags&^1 != 0 {
		return nil, fmt.Errorf("rel: unknown partial-state flags %#x", flags)
	}
	nslots, err := d.u32()
	if err != nil {
		return nil, err
	}
	perSlot := 8
	if flags&1 != 0 {
		perSlot = 16
	}
	if int(nslots) > d.remaining()/perSlot {
		return nil, fmt.Errorf("rel: slot count %d exceeds payload", nslots)
	}
	s := &PartialState{Counts: make([]int64, nslots)}
	for i := range s.Counts {
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		s.Counts[i] = int64(v)
	}
	if flags&1 != 0 {
		s.Sums = make([]float64, nslots)
		for i := range s.Sums {
			v, err := d.u64()
			if err != nil {
				return nil, err
			}
			s.Sums[i] = math.Float64frombits(v)
		}
	}
	rows, err := d.u64()
	if err != nil {
		return nil, err
	}
	chunks, err := d.u64()
	if err != nil {
		return nil, err
	}
	s.Rows, s.Chunks = int64(rows), int64(chunks)
	ncams, err := d.u16()
	if err != nil {
		return nil, err
	}
	if ncams > 0 {
		s.CamRows = make(map[string]int64, ncams)
	}
	for i := 0; i < int(ncams); i++ {
		nameLen, err := d.u16()
		if err != nil {
			return nil, err
		}
		name, err := d.str(int(nameLen))
		if err != nil {
			return nil, err
		}
		r, err := d.u64()
		if err != nil {
			return nil, err
		}
		s.CamRows[name] = int64(r)
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("rel: %d trailing bytes in partial state", d.remaining())
	}
	return s, nil
}
