package rel

import (
	"fmt"
	"math"
	"strconv"

	"privid/internal/query"
	"privid/internal/table"
)

// vec is the columnar result of a scalar expression over a table: one
// value per row, stored as a shared column slice, a freshly computed
// slice, or a constant. STRING vecs only arise from column references
// and string literals (every operator and function yields NUMBER), so a
// non-const string vec always carries the table's parse-once numeric
// view alongside.
type vec struct {
	typ     table.DType
	n       int
	isConst bool
	nums    []float64 // typ==DNumber, len n
	strs    []string  // typ==DString, len n
	snums   []float64 // numeric view of strs
	svalid  []bool    // validity view of strs
	cnum    float64   // constant NUMBER (or numeric view of cstr)
	cstr    string    // constant STRING
}

// numsOf returns the length-n numeric view of a non-const vec.
func (v vec) numsOf() []float64 {
	if v.typ == table.DNumber {
		return v.nums
	}
	return v.snums
}

// numAt returns the numeric value of row i (the Value.Num coercion).
func (v vec) numAt(i int) float64 {
	if v.isConst {
		return v.cnum
	}
	return v.numsOf()[i]
}

// evalVec evaluates a scalar expression over every row of t. Booleans
// are NUMBER 1/0, matching the row-at-a-time evaluator it replaces.
func evalVec(e query.Expr, t *table.Table) (vec, error) {
	n := t.Len()
	switch ex := e.(type) {
	case *query.ColRef:
		j := t.Schema.Index(ex.Name)
		if j < 0 {
			return vec{}, fmt.Errorf("unknown column %q", ex.Name)
		}
		if t.Schema.Cols[j].Type == table.DNumber {
			return vec{typ: table.DNumber, n: n, nums: t.Nums(j)}, nil
		}
		return vec{typ: table.DString, n: n, strs: t.Strs(j), snums: t.Nums(j), svalid: t.Valid(j)}, nil
	case *query.NumLit:
		return vec{typ: table.DNumber, n: n, isConst: true, cnum: ex.V}, nil
	case *query.StrLit:
		return vec{typ: table.DString, n: n, isConst: true, cstr: ex.V, cnum: table.S(ex.V).Num()}, nil
	case *query.BinExpr:
		l, err := evalVec(ex.L, t)
		if err != nil {
			return vec{}, err
		}
		r, err := evalVec(ex.R, t)
		if err != nil {
			return vec{}, err
		}
		return binVec(ex.Op, l, r)
	case *query.CallExpr:
		return callVec(ex, t)
	default:
		return vec{}, fmt.Errorf("unsupported expression %T", e)
	}
}

func boolNum(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func binVec(op string, l, r vec) (vec, error) {
	switch op {
	case "+":
		return arith(l, r, func(a, b float64) float64 { return a + b }), nil
	case "-":
		return arith(l, r, func(a, b float64) float64 { return a - b }), nil
	case "*":
		return arith(l, r, func(a, b float64) float64 { return a * b }), nil
	case "/":
		return arith(l, r, func(a, b float64) float64 {
			if b == 0 {
				return 0 // untrusted data: divide-by-zero yields 0, never a crash
			}
			return a / b
		}), nil
	case "=":
		return eqVec(l, r, false), nil
	case "!=":
		return eqVec(l, r, true), nil
	case "<":
		return arith(l, r, func(a, b float64) float64 { return boolNum(a < b) }), nil
	case "<=":
		return arith(l, r, func(a, b float64) float64 { return boolNum(a <= b) }), nil
	case ">":
		return arith(l, r, func(a, b float64) float64 { return boolNum(a > b) }), nil
	case ">=":
		return arith(l, r, func(a, b float64) float64 { return boolNum(a >= b) }), nil
	case "AND":
		return arith(l, r, func(a, b float64) float64 { return boolNum(a != 0 && b != 0) }), nil
	case "OR":
		return arith(l, r, func(a, b float64) float64 { return boolNum(a != 0 || b != 0) }), nil
	default:
		return vec{}, fmt.Errorf("unknown operator %q", op)
	}
}

// arith applies a numeric binary function element-wise, folding
// constants and skipping per-row Value boxing entirely.
func arith(l, r vec, f func(a, b float64) float64) vec {
	n := l.n
	if l.isConst && r.isConst {
		return vec{typ: table.DNumber, n: n, isConst: true, cnum: f(l.cnum, r.cnum)}
	}
	out := make([]float64, n)
	switch {
	case l.isConst:
		rn := r.numsOf()
		for i := 0; i < n; i++ {
			out[i] = f(l.cnum, rn[i])
		}
	case r.isConst:
		ln := l.numsOf()
		for i := 0; i < n; i++ {
			out[i] = f(ln[i], r.cnum)
		}
	default:
		ln, rn := l.numsOf(), r.numsOf()
		for i := 0; i < n; i++ {
			out[i] = f(ln[i], rn[i])
		}
	}
	return vec{typ: table.DNumber, n: n, nums: out}
}

// strAt renders row i as a string (the Value.Str coercion).
func (v vec) strAt(i int) string {
	if v.typ == table.DString {
		if v.isConst {
			return v.cstr
		}
		return v.strs[i]
	}
	if v.isConst {
		return strconv.FormatFloat(v.cnum, 'g', -1, 64)
	}
	return strconv.FormatFloat(v.nums[i], 'g', -1, 64)
}

// eqVec implements = / != with the evaluator's mixed-type rule: if
// either side is a STRING, compare string renderings; otherwise compare
// numerically.
func eqVec(l, r vec, neq bool) vec {
	if l.typ != table.DString && r.typ != table.DString {
		return arith(l, r, func(a, b float64) float64 { return boolNum((a == b) != neq) })
	}
	n := l.n
	if l.isConst && r.isConst {
		return vec{typ: table.DNumber, n: n, isConst: true,
			cnum: boolNum((l.strAt(0) == r.strAt(0)) != neq)}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = boolNum((l.strAt(i) == r.strAt(i)) != neq)
	}
	return vec{typ: table.DNumber, n: n, nums: out}
}

// unary applies a numeric unary function element-wise.
func unary(v vec, f func(float64) float64) vec {
	if v.isConst {
		return vec{typ: table.DNumber, n: v.n, isConst: true, cnum: f(v.cnum)}
	}
	out := make([]float64, v.n)
	vn := v.numsOf()
	for i := range out {
		out[i] = f(vn[i])
	}
	return vec{typ: table.DNumber, n: v.n, nums: out}
}

func callVec(ex *query.CallExpr, t *table.Table) (vec, error) {
	switch ex.Name {
	case "range":
		v, err := evalVec(ex.Args[0], t)
		if err != nil {
			return vec{}, err
		}
		lo := ex.Args[1].(*query.NumLit).V
		hi := ex.Args[2].(*query.NumLit).V
		// range() truncates values to the declared interval (§6.2).
		return unary(v, func(x float64) float64 {
			if x < lo {
				return lo
			}
			if x > hi {
				return hi
			}
			return x
		}), nil
	case "hour":
		v, err := evalVec(ex.Args[0], t)
		if err != nil {
			return vec{}, err
		}
		return unary(v, func(x float64) float64 {
			return float64((int64(x) / 3600) % 24)
		}), nil
	case "day":
		v, err := evalVec(ex.Args[0], t)
		if err != nil {
			return vec{}, err
		}
		return unary(v, func(x float64) float64 {
			return float64(int64(x) / 86400)
		}), nil
	case "bin":
		v, err := evalVec(ex.Args[0], t)
		if err != nil {
			return vec{}, err
		}
		w := ex.Args[1].(*query.NumLit).V
		if w <= 0 {
			return vec{}, fmt.Errorf("bin width must be positive")
		}
		return unary(v, func(x float64) float64 {
			return math.Floor(x/w) * w
		}), nil
	default:
		return vec{}, fmt.Errorf("unknown function %q", ex.Name)
	}
}

// selTrue returns the selection vector of rows where cond is nonzero.
func selTrue(cond vec) []int {
	if cond.isConst {
		if cond.cnum == 0 {
			return []int{}
		}
		sel := make([]int, cond.n)
		for i := range sel {
			sel[i] = i
		}
		return sel
	}
	sel := make([]int, 0, cond.n)
	nums := cond.numsOf()
	for i, f := range nums {
		if f != 0 {
			sel = append(sel, i)
		}
	}
	return sel
}

// gatherVec selects rows of v by sel, in sel order. A nil sel is the
// identity.
func gatherVec(v vec, sel []int) vec {
	if sel == nil {
		return v
	}
	n := len(sel)
	if v.isConst {
		out := v
		out.n = n
		return out
	}
	if v.typ == table.DNumber {
		out := make([]float64, n)
		for k, i := range sel {
			out[k] = v.nums[i]
		}
		return vec{typ: table.DNumber, n: n, nums: out}
	}
	strs := make([]string, n)
	nums := make([]float64, n)
	valid := make([]bool, n)
	for k, i := range sel {
		strs[k] = v.strs[i]
		nums[k] = v.snums[i]
		valid[k] = v.svalid[i]
	}
	return vec{typ: table.DString, n: n, strs: strs, snums: nums, svalid: valid}
}

// setCol installs a vec as builder column j. The vec's type always
// matches the declared column type (exprType and evalVec agree by
// construction).
func setCol(b *table.Builder, j int, v vec) {
	if v.typ == table.DNumber {
		if v.isConst {
			b.SetConstNum(j, v.cnum)
			return
		}
		b.SetNums(j, v.nums)
		return
	}
	if v.isConst {
		b.SetConstStr(j, v.cstr)
		return
	}
	b.SetStrsView(j, v.strs, v.snums, v.svalid)
}
