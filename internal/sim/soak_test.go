package sim

import (
	"flag"
	"fmt"
	"os"
	"testing"
)

// Reproduction flags: any failure report names a seed and chaos mode;
//
//	go test ./internal/sim -run TestSoak -seed=123 -chaos
//
// re-runs exactly that scenario (same fleet, same plan, same chaos
// schedule, same ground truths).
var (
	seedFlag  = flag.Int64("seed", 0, "run TestSoak for this single seed only")
	chaosFlag = flag.Bool("chaos", false, "with -seed: enable the chaos layer")
)

// soakScenario builds the canonical soak scenario for a seed. Short
// mode: a dozens-of-cameras fleet sized so the full 2×20-seed matrix
// stays CI-cheap. Long mode (PRIVID_SIM_LONG=1, nightly): a
// 1000-camera fleet under full chaos.
func soakScenario(t *testing.T, seed int64, chaos, long bool) Scenario {
	sc := Scenario{
		Fleet:        FleetConfig{Cameras: 24, Seed: seed, Minutes: 3},
		Workload:     WorkloadConfig{Analysts: 5, OpsPerAnalyst: 4, StandingQueries: 2},
		StateDir:     t.TempDir(),
		DiskCacheDir: t.TempDir(),
	}
	if long {
		sc.Fleet.Cameras = 1000
		sc.Fleet.Minutes = 5
		sc.Workload = WorkloadConfig{Analysts: 10, OpsPerAnalyst: 10, StandingQueries: 4}
	}
	if chaos {
		sc.Chaos = ChaosConfig{
			Restarts:    1,
			Crashes:     1,
			TornWAL:     true,
			HungExec:    true,
			CacheThrash: true,
		}
		if long {
			sc.Chaos.Restarts = 2
			sc.Chaos.Crashes = 2
		}
	}
	return sc
}

func runSoak(t *testing.T, seed int64, chaos, long bool) {
	rep := Run(t, soakScenario(t, seed, chaos, long))
	t.Logf("seed %d chaos=%v: %d cams, %d events, ops %d (done %d failed %d denied %d lost %d), "+
		"standing releases %d, restarts %d crashes %d, violations %d",
		rep.Seed, chaos, rep.Cameras, rep.Events, rep.Ops, rep.Done, rep.Failed,
		rep.Denied, rep.Lost, rep.StandingReleases, rep.Restarts, rep.Crashes,
		len(rep.Violations))
	if rep.Done == 0 {
		t.Errorf("seed %d: no ops completed", rep.Seed)
	}
	if !chaos && rep.Denied == 0 && rep.Cameras > 1 {
		t.Errorf("seed %d: exhaustion probe never bounced", rep.Seed)
	}
}

// TestSoak is the invariant-checked seed matrix. Every subtest runs a
// full mixed workload against a real stack and asserts all four
// invariant classes; chaos variants add restarts, crashes, torn WAL
// writes, cache thrash and hung executables on top.
func TestSoak(t *testing.T) {
	long := os.Getenv("PRIVID_SIM_LONG") != ""
	if *seedFlag != 0 {
		runSoak(t, *seedFlag, *chaosFlag, long)
		return
	}
	seeds := 20
	if long {
		seeds = 2 // 1000-camera fleets; nightly budget
	}
	for s := 1; s <= seeds; s++ {
		for _, chaos := range []bool{false, true} {
			if long && !chaos {
				continue // long mode is the chaos soak
			}
			seed, chaos := int64(s), chaos
			t.Run(fmt.Sprintf("seed=%d/chaos=%v", seed, chaos), func(t *testing.T) {
				t.Parallel()
				runSoak(t, seed, chaos, long)
			})
		}
	}
}
