package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// WorkloadConfig parameterizes the mixed-workload plan.
type WorkloadConfig struct {
	// Analysts is the number of concurrent ground-truth analysts.
	Analysts int
	// OpsPerAnalyst is each analyst's one-shot query count.
	OpsPerAnalyst int
	// StandingQueries is the number of standing minute-bucket queries
	// (each driven concurrently by two goroutines, on camera index =
	// query index).
	StandingQueries int
	// AdvancesPerStanding is how many Advance steps each standing
	// query takes before the final flush advance.
	AdvancesPerStanding int
	// ChunkSec is the SPLIT chunk size. 0 uses 30.
	ChunkSec int
	// Seed derives the plan. 0 uses the fleet seed.
	Seed int64
}

func (c WorkloadConfig) withDefaults(fleetSeed int64) WorkloadConfig {
	if c.Analysts == 0 {
		c.Analysts = 4
	}
	if c.OpsPerAnalyst == 0 {
		c.OpsPerAnalyst = 5
	}
	if c.AdvancesPerStanding == 0 {
		c.AdvancesPerStanding = 3
	}
	if c.ChunkSec == 0 {
		c.ChunkSec = 30
	}
	if c.Seed == 0 {
		c.Seed = fleetSeed
	}
	return c
}

type opKind int

const (
	opCount opKind = iota // single-camera COUNT(*), ground-truth-checked
	opMulti               // multi-camera SPLIT/merge COUNT(*), ground-truth-checked
	opHang                // hanging-executable query (chaos), charges only
	opDrain               // budget-exhaustion probe on the drain camera
)

func (k opKind) String() string {
	return [...]string{"count", "multi", "hang", "drain"}[k]
}

// op is one planned one-shot query.
type op struct {
	Kind     opKind
	Analyst  string
	Cams     []int // fleet camera indices
	BeginMin int
	EndMin   int
	Eps      float64
	// WantDenied marks exhaustion probes that must bounce.
	WantDenied bool
}

// standingPlan is one planned standing query: minute buckets over the
// full stream on one dedicated camera, advanced at AdvanceAt times by
// two goroutines racing the same schedule.
type standingPlan struct {
	Cam       int
	Eps       float64
	BinSec    int
	AdvanceAt []time.Time // includes the final flush past stream end
}

// plan is the full deterministic workload: per-analyst op lists, the
// drain sequence, background fire-and-forget load (chaos only), and
// standing schedules. Same fleet+config ⇒ identical plan.
type plan struct {
	Analysts [][]op
	Drain    []op // executed serially by one analyst
	Bg       []op // submitted without waiting (chaos only)
	Standing []standingPlan
	ChunkSec int
	MaxRows  int
	TotalOps int // Analysts ops + Drain ops (chaos thresholds key off this)
}

// newPlan derives the workload plan from the fleet. Ground-truth
// analysts draw from cameras [0, N-2]; camera N-1 is reserved for the
// exhaustion probes so their denials are deterministic.
func newPlan(f *Fleet, cfg WorkloadConfig, chaos ChaosConfig) *plan {
	cfg = cfg.withDefaults(f.Cfg.Seed)
	rng := rand.New(rand.NewSource(mix64(cfg.Seed ^ 0x5157)))
	p := &plan{ChunkSec: cfg.ChunkSec, MaxRows: f.MaxRowsPerChunk(cfg.ChunkSec)}
	minutes := f.Cfg.Minutes
	nCams := len(f.Cams)
	gtCams := nCams - 1 // ground-truth pool; last camera drains
	if gtCams < 1 {
		gtCams = nCams
	}

	// Per-camera planned spend stays under half the budget so no
	// ground-truth op can be denied (admission headroom includes the
	// rho margin; 0.5ε leaves plenty).
	planned := make([]float64, nCams)
	budget := f.Cfg.Epsilon * 0.5
	pickCam := func(eps float64) int {
		for try := 0; try < 8; try++ {
			c := rng.Intn(gtCams)
			if planned[c]+eps <= budget {
				planned[c] += eps
				return c
			}
		}
		return -1
	}
	window := func() (int, int) {
		b := rng.Intn(minutes)
		maxSpan := minutes - b
		if maxSpan > 3 {
			maxSpan = 3
		}
		return b, b + 1 + rng.Intn(maxSpan)
	}

	for a := 0; a < cfg.Analysts; a++ {
		name := fmt.Sprintf("analyst%d", a)
		var ops []op
		for i := 0; i < cfg.OpsPerAnalyst; i++ {
			eps := 0.02 + rng.Float64()*0.08
			b, e := window()
			o := op{Kind: opCount, Analyst: name, BeginMin: b, EndMin: e, Eps: eps}
			switch {
			case chaos.HungExec && (a+i)%7 == 3:
				o.Kind = opHang
			case rng.Float64() < 0.35 && gtCams >= 3:
				o.Kind = opMulti
			}
			n := 1
			if o.Kind == opMulti {
				n = 2 + rng.Intn(2)
			}
			for len(o.Cams) < n {
				c := pickCam(eps)
				if c < 0 {
					break
				}
				dup := false
				for _, prev := range o.Cams {
					if prev == c {
						dup = true
					}
				}
				if !dup {
					o.Cams = append(o.Cams, c)
				}
			}
			if len(o.Cams) == 0 {
				continue // fleet too loaded; drop deterministically
			}
			ops = append(ops, o)
		}
		p.Analysts = append(p.Analysts, ops)
		p.TotalOps += len(ops)
	}

	// Exhaustion probes: charge 60%, bounce 60%, then 30% fits again —
	// denial and repair in one serial sequence.
	if nCams > 1 {
		drainCam := nCams - 1
		e := f.Cfg.Epsilon
		mk := func(eps float64, denied bool) op {
			return op{Kind: opDrain, Analyst: "drainer", Cams: []int{drainCam},
				BeginMin: 0, EndMin: min(2, minutes), Eps: eps, WantDenied: denied}
		}
		p.Drain = []op{mk(0.6*e, false), mk(0.6*e, true), mk(0.3*e, false)}
		p.TotalOps += len(p.Drain)
	}

	// Background fire-and-forget load so crashes interrupt jobs that
	// are genuinely in flight.
	if chaos.enabled() {
		n := p.TotalOps / 3
		for i := 0; i < n; i++ {
			eps := 0.01 + rng.Float64()*0.03
			b, e := window()
			c := pickCam(eps)
			if c < 0 {
				continue
			}
			p.Bg = append(p.Bg, op{Kind: opCount, Analyst: "background",
				Cams: []int{c}, BeginMin: b, EndMin: e, Eps: eps})
		}
	}

	streamEnd := f.Start.Add(time.Duration(minutes) * time.Minute)
	for s := 0; s < cfg.StandingQueries && s < gtCams; s++ {
		sp := standingPlan{Cam: s, Eps: 0.4, BinSec: 60}
		step := time.Duration(minutes) * time.Minute / time.Duration(cfg.AdvancesPerStanding)
		for j := 1; j <= cfg.AdvancesPerStanding; j++ {
			sp.AdvanceAt = append(sp.AdvanceAt, f.Start.Add(time.Duration(j)*step))
		}
		// Final flush: everything has elapsed.
		sp.AdvanceAt = append(sp.AdvanceAt, streamEnd.Add(2*time.Minute))
		p.Standing = append(p.Standing, sp)
	}
	return p
}

// tsLiteral renders a minute offset from the stream start as a query
// timestamp literal (MM-DD-YYYY/H:MMam).
func tsLiteral(minOffset int) string {
	ts := streamStart.Add(time.Duration(minOffset) * time.Minute)
	hour := ts.Hour() % 12
	if hour == 0 {
		hour = 12
	}
	ampm := "am"
	if ts.Hour() >= 12 {
		ampm = "pm"
	}
	return fmt.Sprintf("%02d-%02d-%d/%d:%02d%s",
		int(ts.Month()), ts.Day(), ts.Year(), hour, ts.Minute(), ampm)
}

// queryText renders the op as a Privid program against the fleet.
func (o op) queryText(f *Fleet, chunkSec, maxRows int) string {
	cams := make([]string, len(o.Cams))
	for i, c := range o.Cams {
		cams[i] = f.Cams[c].Name
	}
	exec := "simobj"
	timeout := "5sec"
	if o.Kind == opHang {
		exec = "simhang"
		timeout = "1sec"
	}
	return fmt.Sprintf(`
SPLIT %s BEGIN %s END %s BY TIME %dsec STRIDE 0sec INTO chunks;
PROCESS chunks USING %s TIMEOUT %s PRODUCING %d ROWS
  WITH SCHEMA (id:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING %g;`,
		strings.Join(cams, ", "), tsLiteral(o.BeginMin), tsLiteral(o.EndMin),
		chunkSec, exec, timeout, maxRows, o.Eps)
}

// standingText renders the standing query program: COUNT(*) per
// minute bucket over the full stream.
func (sp standingPlan) standingText(f *Fleet, chunkSec, maxRows int) string {
	return fmt.Sprintf(`
SPLIT %s BEGIN %s END %s BY TIME %dsec STRIDE 0sec INTO chunks;
PROCESS chunks USING simobj TIMEOUT 5sec PRODUCING %d ROWS
  WITH SCHEMA (id:NUMBER=0) INTO t;
SELECT COUNT(*) FROM (SELECT bin(chunk, %d) AS m FROM t) GROUP BY m CONSUMING %g;`,
		f.Cams[sp.Cam].Name, tsLiteral(0), tsLiteral(f.Cfg.Minutes),
		chunkSec, maxRows, sp.BinSec, sp.Eps)
}

// expectedGroundTruth is the closed-form COUNT(*) the op's single
// release must report as its Raw value.
func (o op) expectedGroundTruth(f *Fleet, chunkSec int) float64 {
	total := 0.0
	for _, c := range o.Cams {
		total += f.ObjChunks(c, o.BeginMin, o.EndMin, chunkSec)
	}
	return total
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
