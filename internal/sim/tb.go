package sim

import (
	"fmt"
	"sync"
)

// FatalError is what RuntimeTB.Fatalf panics with, so a non-test
// driver (cmd/privid-sim) can recover it, run cleanups and exit
// non-zero instead of crashing with a stack trace.
type FatalError struct{ Msg string }

func (e FatalError) Error() string { return e.Msg }

// RuntimeTB satisfies harness.TB outside `go test`: cmd/privid-sim
// drives the same scenario code a test would, logging through Log and
// collecting failures instead of aborting on the first Errorf.
type RuntimeTB struct {
	// Log receives every Logf/Errorf/Fatalf line; nil discards.
	Log func(format string, args ...any)

	mu       sync.Mutex
	cleanups []func()
	failed   bool
}

func (t *RuntimeTB) Helper() {}

func (t *RuntimeTB) Cleanup(fn func()) {
	t.mu.Lock()
	t.cleanups = append(t.cleanups, fn)
	t.mu.Unlock()
}

func (t *RuntimeTB) Logf(format string, args ...any) {
	if t.Log != nil {
		t.Log(format, args...)
	}
}

func (t *RuntimeTB) Errorf(format string, args ...any) {
	t.mu.Lock()
	t.failed = true
	t.mu.Unlock()
	t.Logf("ERROR: "+format, args...)
}

func (t *RuntimeTB) Fatalf(format string, args ...any) {
	t.mu.Lock()
	t.failed = true
	t.mu.Unlock()
	t.Logf("FATAL: "+format, args...)
	panic(FatalError{Msg: fmt.Sprintf(format, args...)})
}

// Failed reports whether any Errorf/Fatalf fired.
func (t *RuntimeTB) Failed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed
}

// RunCleanups runs registered cleanups in LIFO order (like testing.T).
func (t *RuntimeTB) RunCleanups() {
	t.mu.Lock()
	fns := t.cleanups
	t.cleanups = nil
	t.mu.Unlock()
	for i := len(fns) - 1; i >= 0; i-- {
		fns[i]()
	}
}
