package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ChaosConfig toggles the fault layers. The zero value is a clean run
// (strict-equality invariants); any enabled layer relaxes the ledger
// check to the at-least-once inequality.
type ChaosConfig struct {
	// Restarts is the number of graceful mid-load engine restarts
	// (close + reopen against the same state dir).
	Restarts int
	// Crashes is the number of kill-style crashes: the WAL file is
	// poisoned (every write tears at zero bytes), the engine is
	// abandoned without Close, and the next boot repairs the torn
	// tail.
	Crashes int
	// TornWAL tears one WAL commit mid-run (healed shortly after),
	// exercising rollback-and-continue without a restart.
	TornWAL bool
	// HungExec swaps a deterministic subset of planned ops onto a
	// hanging executable that sleeps past its TIMEOUT.
	HungExec bool
	// CacheThrash shrinks both chunk-cache tiers to a few KB and
	// corrupts the newest disk segment before every reboot, so the
	// scan-and-truncate recovery path runs under load.
	CacheThrash bool
}

func (c ChaosConfig) enabled() bool {
	return c.Restarts > 0 || c.Crashes > 0 || c.TornWAL || c.HungExec || c.CacheThrash
}

type chaosKind int

const (
	ckRestart chaosKind = iota
	ckCrash
	ckTear
	ckHeal
	ckHangOn
	ckHangOff
)

func (k chaosKind) String() string {
	return [...]string{"restart", "crash", "tear", "heal", "hang-on", "hang-off"}[k]
}

// chaosEvent fires when the op counter crosses AtOps. Thresholds are
// pure functions of the plan size, so the chaos schedule is as
// seed-deterministic as everything else (which op is in flight when an
// event fires still depends on goroutine interleaving — chaos is
// structurally, not temporally, deterministic).
type chaosEvent struct {
	AtOps int64
	Kind  chaosKind
}

// chaosSchedule spreads the configured faults across the run.
func chaosSchedule(p *plan, c ChaosConfig) []chaosEvent {
	total := int64(p.TotalOps)
	if total == 0 {
		return nil
	}
	var evs []chaosEvent
	n := c.Restarts + c.Crashes
	for k := 0; k < n; k++ {
		at := total * int64(k+1) / int64(n+1)
		if at < 1 {
			at = 1
		}
		kind := ckRestart
		if k%2 == 1 || c.Restarts == 0 {
			kind = ckCrash
		}
		if c.Crashes == 0 {
			kind = ckRestart
		}
		evs = append(evs, chaosEvent{AtOps: at, Kind: kind})
	}
	if c.TornWAL {
		at := total / 5
		if at < 1 {
			at = 1
		}
		heal := at + total/10 + 1
		evs = append(evs, chaosEvent{AtOps: at, Kind: ckTear},
			chaosEvent{AtOps: heal, Kind: ckHeal})
	}
	if c.HungExec {
		on := total / 6
		if on < 1 {
			on = 1
		}
		evs = append(evs, chaosEvent{AtOps: on, Kind: ckHangOn},
			chaosEvent{AtOps: on + total/3 + 1, Kind: ckHangOff})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].AtOps < evs[j].AtOps })
	return evs
}

// corruptNewestSegment flips one byte in the middle of the newest
// disk-cache segment, so the next OpenDisk must scan, keep the valid
// prefix and truncate the tail. No-op when the cache is empty.
func corruptNewestSegment(dir string) error {
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.pvc"))
	if err != nil || len(names) == 0 {
		return err
	}
	sort.Strings(names)
	path := names[len(names)-1]
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() == 0 {
		return err
	}
	off := st.Size() / 2
	buf := []byte{0}
	if _, err := f.ReadAt(buf, off); err != nil {
		return err
	}
	buf[0] ^= 0xA5
	if _, err := f.WriteAt(buf, off); err != nil {
		return fmt.Errorf("sim: corrupt %s: %w", path, err)
	}
	return nil
}
