package sim

import (
	"reflect"
	"testing"

	"privid/internal/video"
	"privid/internal/vtime"
)

func testFleetCfg(seed int64) FleetConfig {
	return FleetConfig{Cameras: 6, Seed: seed, Minutes: 4}
}

func TestFleetDeterminism(t *testing.T) {
	a := NewFleet(testFleetCfg(42))
	b := NewFleet(testFleetCfg(42))
	if len(a.Cams) != len(b.Cams) {
		t.Fatalf("camera counts differ: %d vs %d", len(a.Cams), len(b.Cams))
	}
	for i := range a.Cams {
		if !reflect.DeepEqual(a.Cams[i].Events, b.Cams[i].Events) {
			t.Fatalf("camera %d events differ across identical seeds", i)
		}
	}
	c := NewFleet(testFleetCfg(43))
	same := true
	for i := range a.Cams {
		if !reflect.DeepEqual(a.Cams[i].Events, c.Cams[i].Events) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 generated identical fleets")
	}
}

func TestPlanDeterminism(t *testing.T) {
	f := NewFleet(testFleetCfg(7))
	chaos := ChaosConfig{Restarts: 1, Crashes: 1, TornWAL: true, HungExec: true}
	a := newPlan(f, WorkloadConfig{}, chaos)
	b := newPlan(f, WorkloadConfig{}, chaos)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different plans")
	}
	if !reflect.DeepEqual(chaosSchedule(a, chaos), chaosSchedule(b, chaos)) {
		t.Fatal("identical plans produced different chaos schedules")
	}
	for _, ev := range chaosSchedule(a, chaos) {
		if ev.AtOps < 1 || ev.AtOps >= int64(a.TotalOps) {
			t.Fatalf("chaos event %v at %d outside (0,%d)", ev.Kind, ev.AtOps, a.TotalOps)
		}
	}
}

// bruteChunks recomputes ObjChunks the slow way: run the real
// executable over the real sparse source's chunks and count rows.
func bruteChunks(t *testing.T, f *Fleet, ci, beginMin, endMin, chunkSec int) float64 {
	t.Helper()
	cam := f.Cams[ci]
	fps := int64(f.Cfg.FPS)
	beginF := int64(beginMin) * 60 * fps
	endF := int64(endMin) * 60 * fps
	if endF > f.Frames {
		endF = f.Frames
	}
	split := video.Split{
		Source:      cam.Source,
		Interval:    vtime.Interval{Start: beginF, End: endF},
		ChunkFrames: int64(chunkSec) * fps,
	}
	exec := ObjExecutable()
	total := 0.0
	for i := int64(0); i < split.NumChunks(); i++ {
		total += float64(len(exec(split.ChunkAt(i))))
	}
	return total
}

func TestOracleMatchesExecutable(t *testing.T) {
	f := NewFleet(FleetConfig{Cameras: 4, Seed: 99, Minutes: 5})
	for ci := range f.Cams {
		for _, w := range [][3]int{{0, 5, 30}, {1, 3, 30}, {2, 5, 60}, {0, 1, 30}, {4, 5, 30}} {
			got := f.ObjChunks(ci, w[0], w[1], w[2])
			want := bruteChunks(t, f, ci, w[0], w[1], w[2])
			if got != want {
				t.Errorf("cam %d window [%d,%d)m chunk %ds: oracle %v, executable %v",
					ci, w[0], w[1], w[2], got, want)
			}
		}
	}
}

func TestOracleBucketsSumToTotal(t *testing.T) {
	f := NewFleet(FleetConfig{Cameras: 3, Seed: 5, Minutes: 6})
	for ci := range f.Cams {
		buckets := f.ObjChunksByBucket(ci, 0, 6, 30, 60)
		// The key set is data-independent: every minute of the window,
		// empty or not (mirroring the engine's bucket enumeration).
		if len(buckets) != 6 {
			t.Errorf("cam %d: %d buckets, want 6", ci, len(buckets))
		}
		sum := 0.0
		for b, v := range buckets {
			if b%60 != 0 {
				t.Errorf("cam %d: bucket %d not aligned to 60s", ci, b)
			}
			sum += v
		}
		if total := f.ObjChunks(ci, 0, 6, 30); sum != total {
			t.Errorf("cam %d: bucket sum %v != total %v", ci, sum, total)
		}
	}
}

func TestMaxRowsPerChunkBounds(t *testing.T) {
	f := NewFleet(FleetConfig{Cameras: 5, Seed: 11, Minutes: 4})
	maxRows := f.MaxRowsPerChunk(30)
	if maxRows < 1 {
		t.Fatalf("MaxRowsPerChunk = %d", maxRows)
	}
	exec := ObjExecutable()
	for _, cam := range f.Cams {
		split := video.Split{
			Source:      cam.Source,
			Interval:    vtime.Interval{Start: 0, End: f.Frames},
			ChunkFrames: int64(30 * f.Cfg.FPS),
		}
		for i := int64(0); i < split.NumChunks(); i++ {
			if n := len(exec(split.ChunkAt(i))); n > maxRows {
				t.Fatalf("cam %s chunk %d: %d rows > declared max %d", cam.Name, i, n, maxRows)
			}
		}
	}
}

// TestScenarioSmoke runs one small clean scenario end to end so the
// plain `go test ./...` sweep exercises the full sim path; the seed
// matrix lives in TestSoak.
func TestScenarioSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke skipped in -short (TestSoak covers the matrix)")
	}
	rep := Run(t, Scenario{
		Fleet:    FleetConfig{Cameras: 6, Seed: 1, Minutes: 3},
		Workload: WorkloadConfig{Analysts: 3, OpsPerAnalyst: 3, StandingQueries: 1},
		StateDir: t.TempDir(),
	})
	if rep.Done == 0 {
		t.Fatalf("no ops completed: %+v", rep)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
}
