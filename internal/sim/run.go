package sim

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"privid/internal/core"
	"privid/internal/harness"
	"privid/internal/policy"
	"privid/internal/query"
	"privid/internal/sandbox"
	"privid/internal/server"
	"privid/internal/store"
	"privid/internal/store/storetest"
	"privid/internal/table"
	"privid/internal/video"
)

// Scenario is one complete simulator run: a fleet, a workload and a
// chaos schedule, all derived from Fleet.Seed.
type Scenario struct {
	Fleet    FleetConfig
	Workload WorkloadConfig
	Chaos    ChaosConfig
	// StateDir holds the WAL (required — restart and shutdown
	// invariants read it back).
	StateDir string
	// DiskCacheDir enables the tier-2 chunk cache (required when
	// Chaos.CacheThrash).
	DiskCacheDir string
}

// opOutcome records one planned op's fate for the invariant checker.
type opOutcome struct {
	Op    op
	JobID string
	// State: done | failed | lost | refused.
	State string
	Err   string
	Job   harness.Job // terminal snapshot when State is done/failed
	// SubmitLossy / FinalLossy bracket the op's lifetime in
	// durability-loss epochs (crashes, plus restarts whose incarnation
	// had a torn WAL — terminal records written under the tear never
	// reached disk). A lost job is legal only if they differ: clean
	// restarts must lose nothing.
	SubmitLossy, FinalLossy int
	Bg                      bool
}

// standingRec is one standing-query release observation.
type standingRec struct {
	Desc   string
	KeyStr string
	Bucket int64 // bin(chunk, binSec) bucket start, unix seconds
	Raw    float64
	RawSet bool
	Value  float64
	Eps    float64
	Scale  float64
	Begin  time.Time
	End    time.Time
}

type standingRunner struct {
	idx  int
	plan standingPlan
	text string

	mu    sync.Mutex
	sq    *core.StandingQuery
	count map[string]int // releaseKey → observations (exactly-once check)
	recs  []standingRec
	errs  []string
}

// Report summarizes a run. Violations double as t.Errorf output; the
// seed reproduces them.
type Report struct {
	Seed             int64
	Cameras          int
	Events           int
	Ops              int
	Done             int
	Failed           int
	Denied           int
	Lost             int
	Refused          int
	BgSubmitted      int
	StandingReleases int
	Restarts         int
	Crashes          int
	TornCommits      int
	Violations       []string
}

type runner struct {
	t   harness.TB
	sc  Scenario
	f   *Fleet
	p   *plan
	rep *Report

	// mu is the stack lock: every op holds RLock across its HTTP
	// calls; chaos restarts take the write lock, so the stack never
	// changes under a request.
	mu      sync.RWMutex
	h       *harness.H
	crashes int
	// lossy counts durability-loss epochs: every crash, plus every
	// restart of an incarnation whose WAL was torn at some point (torn
	// tracks that). Job loss is tolerated only across a lossy epoch.
	lossy int
	torn  bool

	ffMu sync.Mutex
	ff   *storetest.FaultyFile

	hangMu sync.Mutex
	hang   bool

	chaosMu sync.Mutex
	events  []chaosEvent
	opsDone int64

	standing []*standingRunner

	recMu sync.Mutex
	recs  []*opOutcome

	repMu sync.Mutex
}

// Run executes the scenario against a real stack and checks the four
// invariant classes. Violations are reported on t AND returned in the
// report, so a runtime TB (privid-sim) can render them without dying
// on the first one.
func Run(t harness.TB, sc Scenario) *Report {
	f := NewFleet(sc.Fleet)
	p := newPlan(f, sc.Workload, sc.Chaos)
	r := &runner{
		t: t, sc: sc, f: f, p: p,
		events: chaosSchedule(p, sc.Chaos),
		rep:    &Report{Seed: f.Cfg.Seed, Cameras: len(f.Cams), Ops: p.TotalOps},
	}
	for _, cam := range f.Cams {
		r.rep.Events += len(cam.Events)
	}

	cfg := harness.Config{
		StateDir:   sc.StateDir,
		Seed:       f.Cfg.Seed,
		Evaluation: true,
		Scheduler:  server.SchedulerOptions{PerAnalystInFlight: 8},
		Executables: map[string]sandbox.ProcessFunc{
			"simobj":  ObjExecutable(),
			"simhang": r.hangExecutable(),
		},
		WaitTimeout: 90 * time.Second,
		WrapWALFile: func(fl store.File) store.File {
			ff := storetest.Wrap(fl)
			r.ffMu.Lock()
			r.ff = ff
			r.ffMu.Unlock()
			return ff
		},
	}
	for _, cam := range f.Cams {
		cfg.CameraConfigs = append(cfg.CameraConfigs, core.CameraConfig{
			Name:    cam.Name,
			Source:  cam.Source,
			Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
			Epsilon: f.Cfg.Epsilon,
		})
	}
	if sc.DiskCacheDir != "" {
		cfg.DiskCacheDir = sc.DiskCacheDir
	}
	if sc.Chaos.CacheThrash {
		cfg.ChunkCacheBytes = 32 << 10
		cfg.DiskCacheBytes = 128 << 10
		if cfg.DiskCacheDir != "" {
			dir := cfg.DiskCacheDir
			cfg.BeforeBoot = func() { _ = corruptNewestSegment(dir) }
		}
	}

	r.h = harness.Start(t, cfg)
	for i, sp := range p.Standing {
		r.standing = append(r.standing, &standingRunner{
			idx: i, plan: sp,
			text:  sp.standingText(f, p.ChunkSec, p.MaxRows),
			count: map[string]int{},
		})
	}
	r.mu.Lock()
	r.rebuildStanding(make([][]string, len(r.standing)))
	r.mu.Unlock()

	var wg sync.WaitGroup
	for _, ops := range p.Analysts {
		ops := ops
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, o := range ops {
				r.runOp(o)
			}
		}()
	}
	wg.Add(1)
	go func() { // exhaustion probes are a strict serial sequence
		defer wg.Done()
		for _, o := range p.Drain {
			r.runOp(o)
		}
	}()
	var bgRecs []*opOutcome
	var bgMu sync.Mutex
	wg.Add(1)
	go func() { // fire-and-forget background load (chaos only)
		defer wg.Done()
		for _, o := range p.Bg {
			if rec := r.submit(o, true); rec != nil {
				bgMu.Lock()
				bgRecs = append(bgRecs, rec)
				bgMu.Unlock()
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	for _, sr := range r.standing {
		sr := sr
		for g := 0; g < 2; g++ { // two goroutines race the same schedule
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, at := range sr.plan.AdvanceAt {
					r.advance(sr, at)
				}
			}()
		}
	}
	wg.Wait()

	// Every planned chaos event has fired (thresholds < TotalOps and
	// the op counter reached TotalOps), so the stack is in its final,
	// healthy incarnation. Flush: one clean advance past stream end
	// makes the completeness half of the standing invariant checkable.
	flushAt := r.f.Start.Add(time.Duration(r.f.Cfg.Minutes)*time.Minute + 3*time.Minute)
	for _, sr := range r.standing {
		r.advance(sr, flushAt)
	}
	// Collect the background jobs (their charges count toward acked).
	for _, rec := range bgRecs {
		r.await(rec)
		r.record(rec)
	}

	checkInvariants(r)
	return r.rep
}

// violatef records an invariant violation on the report and on t.
func (r *runner) violatef(format string, args ...any) {
	r.repMu.Lock()
	r.rep.Violations = append(r.rep.Violations, fmt.Sprintf(format, args...))
	r.repMu.Unlock()
	r.t.Errorf("sim: seed %d: "+format, append([]any{r.rep.Seed}, args...)...)
}

// hangExecutable returns rows like the empty executable, but sleeps
// past its query TIMEOUT while the chaos hang flag is up. It is a
// separate executable name so its unclean (timed-out, default-row)
// chunks can never enter the cache under simobj's keys.
func (r *runner) hangExecutable() sandbox.ProcessFunc {
	return func(c *video.Chunk) []table.Row {
		r.hangMu.Lock()
		hung := r.hang
		r.hangMu.Unlock()
		if hung {
			time.Sleep(1500 * time.Millisecond)
		}
		return nil
	}
}

func (r *runner) setHang(v bool) {
	r.hangMu.Lock()
	r.hang = v
	r.hangMu.Unlock()
}

// submit issues the op under the stack read-lock. A nil return means
// the scheduler refused it (recorded).
func (r *runner) submit(o op, bg bool) *opOutcome {
	rec := &opOutcome{Op: o, Bg: bg}
	q := o.queryText(r.f, r.p.ChunkSec, r.p.MaxRows)
	r.mu.RLock()
	h := r.h
	rec.SubmitLossy = r.lossy
	id, status, errMsg := h.TrySubmit(o.Analyst, q)
	r.mu.RUnlock()
	if status != http.StatusAccepted {
		rec.State = "refused"
		rec.Err = errMsg
		return rec
	}
	rec.JobID = id
	return rec
}

// await polls rec's job to a terminal state (or declares it lost).
func (r *runner) await(rec *opOutcome) {
	if rec.State == "refused" {
		return
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		r.mu.RLock()
		h := r.h
		lossy := r.lossy
		j, ok := h.Job(rec.JobID)
		r.mu.RUnlock()
		rec.FinalLossy = lossy
		switch {
		case !ok:
			// Unknown job: legal only when a durability-loss epoch
			// (crash, or restart over a torn WAL) separated submit from
			// this poll — terminal records persist best-effort after
			// becoming poll-visible.
			rec.State = "lost"
			return
		case j.State == "done" || j.State == "failed":
			rec.State = j.State
			rec.Err = j.Error
			rec.Job = j
			return
		}
		if time.Now().After(deadline) {
			rec.State = "failed"
			rec.Err = "sim: poll deadline exceeded"
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
}

// runOp drives one planned op to completion and ticks the chaos clock.
func (r *runner) runOp(o op) {
	rec := r.submit(o, false)
	r.await(rec)
	r.record(rec)
	r.tickChaos()
}

func (r *runner) record(rec *opOutcome) {
	r.recMu.Lock()
	r.recs = append(r.recs, rec)
	r.recMu.Unlock()
	r.repMu.Lock()
	switch rec.State {
	case "done":
		r.rep.Done++
	case "failed":
		if strings.Contains(rec.Err, "budget exhausted") {
			r.rep.Denied++
		} else {
			r.rep.Failed++
		}
	case "lost":
		r.rep.Lost++
	case "refused":
		r.rep.Refused++
	}
	if rec.Bg {
		r.rep.BgSubmitted++
	}
	r.repMu.Unlock()
}

// tickChaos advances the op counter and fires every chaos event whose
// threshold it crossed. Events are serialized under chaosMu so two
// analysts can't restart the stack concurrently.
func (r *runner) tickChaos() {
	r.chaosMu.Lock()
	defer r.chaosMu.Unlock()
	r.opsDone++
	for len(r.events) > 0 && r.events[0].AtOps <= r.opsDone {
		ev := r.events[0]
		r.events = r.events[1:]
		r.fire(ev)
	}
}

// fire executes one chaos event. Restart/crash take the stack write
// lock: in-flight requests finish first, and every op after sees the
// new incarnation.
func (r *runner) fire(ev chaosEvent) {
	switch ev.Kind {
	case ckHangOn:
		r.setHang(true)
	case ckHangOff:
		r.setHang(false)
	case ckTear:
		r.ffMu.Lock()
		if r.ff != nil {
			r.ff.TearNextWrite(13)
		}
		r.ffMu.Unlock()
		r.mu.Lock()
		r.torn = true // records committed from here on may not survive
		r.mu.Unlock()
		r.repMu.Lock()
		r.rep.TornCommits++
		r.repMu.Unlock()
	case ckHeal:
		r.ffMu.Lock()
		if r.ff != nil {
			r.ff.Heal()
		}
		r.ffMu.Unlock()
	case ckRestart:
		r.mu.Lock()
		keys := r.snapshotStanding()
		if r.torn {
			// Commits failed at some point this incarnation: jobs that
			// finished then were served live but never persisted, so
			// this (otherwise graceful) restart may drop them.
			r.lossy++
			r.torn = false
		}
		r.h.Restart()
		r.rebuildStanding(keys)
		r.mu.Unlock()
		r.repMu.Lock()
		r.rep.Restarts++
		r.repMu.Unlock()
	case ckCrash:
		r.mu.Lock()
		keys := r.snapshotStanding()
		r.ffMu.Lock()
		if r.ff != nil {
			r.ff.FailAll()
		}
		r.ffMu.Unlock()
		r.crashes++
		r.lossy++
		r.torn = false
		r.h.Crash()
		r.rebuildStanding(keys)
		r.mu.Unlock()
		r.repMu.Lock()
		r.rep.Crashes++
		r.repMu.Unlock()
	}
}

// snapshotStanding captures each standing query's released-key set
// (caller holds the stack write lock, so no Advance is in flight).
func (r *runner) snapshotStanding() [][]string {
	keys := make([][]string, len(r.standing))
	for i, sr := range r.standing {
		sr.mu.Lock()
		if sr.sq != nil {
			keys[i] = sr.sq.ReleasedKeys()
		}
		sr.mu.Unlock()
	}
	return keys
}

// rebuildStanding re-creates every standing query against the current
// engine incarnation and restores its released set — the sim-side half
// of standing-query crash recovery. Caller holds the stack write lock.
func (r *runner) rebuildStanding(keys [][]string) {
	for i, sr := range r.standing {
		prog, err := query.Parse(sr.text)
		if err != nil {
			r.t.Fatalf("sim: parse standing query %d: %v", i, err)
		}
		sq, err := r.h.Engine.Standing(prog)
		if err != nil {
			r.t.Fatalf("sim: rebuild standing query %d: %v", i, err)
		}
		if len(keys[i]) > 0 {
			sq.RestoreReleased(keys[i]...)
		}
		sr.mu.Lock()
		sr.sq = sq
		sr.mu.Unlock()
	}
}

// advance steps one standing query to `at` and records every fresh
// release. Two goroutines race the same schedule: the engine must
// release each bucket to exactly one of them.
func (r *runner) advance(sr *standingRunner, at time.Time) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sr.mu.Lock()
	sq := sr.sq
	sr.mu.Unlock()
	res, err := sq.Advance(at)
	if err != nil {
		sr.mu.Lock()
		sr.errs = append(sr.errs, err.Error())
		sr.mu.Unlock()
		return
	}
	if len(res.Releases) == 0 {
		return
	}
	sr.mu.Lock()
	for _, rel := range res.Releases {
		key := rel.Desc + "\x00" + rel.Key.Key()
		sr.count[key]++
		sr.recs = append(sr.recs, standingRec{
			Desc:   rel.Desc,
			KeyStr: rel.Key.Key(),
			Bucket: int64(rel.Key.Num()),
			Raw:    rel.Raw,
			RawSet: rel.RawSet,
			Value:  rel.Value,
			Eps:    rel.Epsilon,
			Scale:  rel.NoiseScale,
			Begin:  rel.Begin,
			End:    rel.End,
		})
	}
	sr.mu.Unlock()
	r.repMu.Lock()
	r.rep.StandingReleases += len(res.Releases)
	r.repMu.Unlock()
}
