// Package sim is the deterministic fleet simulator and chaos/soak
// harness (ROADMAP item 5). It generates a synthetic camera fleet
// whose every windowed aggregate is computable in closed form, drives
// a real engine+scheduler+HTTP stack (internal/harness) with a mixed
// concurrent workload — one-shot, multi-camera, standing and
// denial/repair flows — optionally under chaos (mid-load restarts,
// kill-style crashes with torn WAL tails, cache thrash, disk-cache
// corruption, hung executables), and then checks four invariant
// classes for every seed:
//
//  1. Ledger identity: per-frame remaining budget equals ε − acked
//     charges on clean runs, and never exceeds ε − acked under chaos
//     (charge-at-least-once), both in the live engine and in the WAL
//     read back after shutdown.
//  2. Ground truth: every release's pre-noise Raw value equals the
//     fleet's closed-form answer exactly, and the noised value lies
//     within 50 Laplace scales of it.
//  3. Stats self-consistency: /v1/stats agrees with the engine's own
//     counters at quiescence, and the counters satisfy their
//     structural identities.
//  4. Jobs: no terminal job changes its result across restarts, none
//     is lost except across a crash, and no standing-query bucket is
//     ever double-released.
//
// Everything derives from one seed: same seed, same fleet, same
// workload plan, same chaos schedule, same ground truths.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"privid/internal/sandbox"
	"privid/internal/scene"
	"privid/internal/table"
	"privid/internal/video"
	"privid/internal/vtime"
)

// streamStart anchors every sim camera (the repo's test convention:
// the paper's 6:00 am capture window).
var streamStart = scene.DefaultStart

// FleetConfig parameterizes the synthetic fleet.
type FleetConfig struct {
	// Cameras is the fleet size (1000+ in soak mode, dozens under
	// -short).
	Cameras int
	// Seed derives every camera's event process.
	Seed int64
	// Minutes is each camera's stream length.
	Minutes int
	// FPS is the synthetic frame rate (low: visibility, not pixels,
	// is the behavioral surface). 0 uses 2.
	FPS int
	// Epsilon is each camera's per-frame privacy budget. 0 uses 10.
	Epsilon float64
	// MaxConcurrent bounds simultaneously-visible objects per camera
	// (arrivals beyond it are dropped deterministically), which in
	// turn bounds rows-per-chunk. 0 uses 8.
	MaxConcurrent int
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.FPS == 0 {
		c.FPS = 2
	}
	if c.Epsilon == 0 {
		c.Epsilon = 10
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 8
	}
	return c
}

// FleetCamera is one synthetic camera: its interval-event list and the
// sparse fake source serving it.
type FleetCamera struct {
	Name   string
	Source *video.SparseIntervalSource
	// Events is the ground-truth event list (same backing slice as
	// Source.Objects, Enter-sorted).
	Events []video.FakeObject
	// RatePerMin is the camera's base arrival rate (diagnostics).
	RatePerMin float64
}

// Fleet is a generated camera fleet plus its ground-truth oracle.
type Fleet struct {
	Cfg    FleetConfig
	Start  time.Time
	Frames int64 // per camera
	Cams   []*FleetCamera
}

// mix64 is SplitMix64's finalizer — decorrelates per-camera seeds so
// camera i of seed s shares nothing with camera i of seed s+1.
func mix64(x int64) int64 {
	z := uint64(x) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// poisson draws k ~ Poisson(lambda) (Knuth's product method; fine for
// the small rates simulated here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 { // guard against pathological lambda
			return k
		}
	}
}

// CamName returns the i-th fleet camera's name.
func CamName(i int) string { return fmt.Sprintf("cam%03d", i) }

// NewFleet deterministically generates the fleet: per camera a seeded
// event process — Poisson arrivals modulated by a diurnal rate curve,
// lognormal dwell times, a concurrency cap — materialized as an
// explicit Enter/Exit event list. The event list IS the ground truth:
// every windowed aggregate below is a closed-form function of it.
func NewFleet(cfg FleetConfig) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{
		Cfg:    cfg,
		Start:  streamStart,
		Frames: int64(cfg.Minutes) * 60 * int64(cfg.FPS),
	}
	fpm := int64(60 * cfg.FPS) // frames per minute
	for i := 0; i < cfg.Cameras; i++ {
		rng := rand.New(rand.NewSource(mix64(cfg.Seed ^ mix64(int64(i)))))
		cam := &FleetCamera{
			Name:       CamName(i),
			RatePerMin: 0.8 + rng.Float64()*2.2,
		}
		// Diurnal curve: a phase-shifted cosine bump, per camera.
		phase := rng.Float64() * 24
		var diurnal [24]float64
		for h := range diurnal {
			diurnal[h] = 0.3 + 0.7*(0.5+0.5*math.Cos(2*math.Pi*(float64(h)-phase)/24))
		}
		// Dwell distribution: lognormal seconds, per-camera median.
		mu := math.Log(5 + rng.Float64()*12)
		const sigma = 0.5

		// occupancy[f] = objects visible on frame f (concurrency cap).
		occupancy := make([]int, f.Frames)
		id := 0
		for m := 0; m < cfg.Minutes; m++ {
			hour := (streamStart.Hour() + m/60) % 24
			lambda := cam.RatePerMin * diurnal[hour]
			arrivals := poisson(rng, lambda)
			for a := 0; a < arrivals; a++ {
				enter := int64(m)*fpm + rng.Int63n(fpm)
				durSec := math.Exp(rng.NormFloat64()*sigma + mu)
				if durSec < 2 {
					durSec = 2
				}
				if durSec > 45 {
					durSec = 45
				}
				exit := enter + int64(durSec*float64(cfg.FPS))
				if exit > f.Frames {
					exit = f.Frames
				}
				if exit <= enter {
					continue
				}
				// Concurrency cap: drop arrivals that would exceed it
				// anywhere in their span (deterministic: the rng draws
				// above are consumed either way).
				ok := true
				for fr := enter; fr < exit; fr++ {
					if occupancy[fr]+1 > cfg.MaxConcurrent {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				for fr := enter; fr < exit; fr++ {
					occupancy[fr]++
				}
				cam.Events = append(cam.Events, video.FakeObject{
					ID:    id,
					Class: scene.Person,
					Enter: enter,
					Exit:  exit,
				})
				id++
			}
		}
		src := &video.SparseIntervalSource{IntervalSource: video.IntervalSource{
			Camera: cam.Name,
			W:      1000, H: 500,
			FPS:     vtime.FrameRate(cfg.FPS),
			Start:   streamStart,
			Frames:  f.Frames,
			Objects: cam.Events,
		}}
		src.Sort()
		cam.Source = src
		cam.Events = src.Objects // Enter-sorted view
		f.Cams = append(f.Cams, cam)
	}
	return f
}

// --- ground-truth oracle -------------------------------------------

// chunkGrid maps a [beginMin, endMin) minute window onto the chunk
// grid: begin frame, chunk length in frames, and chunk count.
func (f *Fleet) chunkGrid(beginMin, endMin, chunkSec int) (beginF, chunkF, n int64) {
	fps := int64(f.Cfg.FPS)
	beginF = int64(beginMin) * 60 * fps
	endF := int64(endMin) * 60 * fps
	if endF > f.Frames {
		endF = f.Frames
	}
	chunkF = int64(chunkSec) * fps
	span := endF - beginF
	if span <= 0 || chunkF <= 0 {
		return beginF, chunkF, 0
	}
	return beginF, chunkF, (span + chunkF - 1) / chunkF
}

// ObjChunks is the closed-form ground truth for COUNT(*) over the
// simobj table: the number of (object, chunk) incidences — each event
// contributes one row to every chunk its [Enter, Exit) span overlaps —
// for camera index ci over [beginMin, endMin) in chunkSec chunks.
func (f *Fleet) ObjChunks(ci int, beginMin, endMin, chunkSec int) float64 {
	beginF, chunkF, n := f.chunkGrid(beginMin, endMin, chunkSec)
	if n == 0 {
		return 0
	}
	total := int64(0)
	for _, ev := range f.Cams[ci].Events {
		s, e := ev.Enter, ev.Exit
		if s < beginF {
			s = beginF
		}
		if limit := beginF + n*chunkF; e > limit {
			e = limit
		}
		if e <= s {
			continue
		}
		first := (s - beginF) / chunkF
		last := (e - 1 - beginF) / chunkF
		total += last - first + 1
	}
	return float64(total)
}

// ObjChunksByBucket buckets ObjChunks by bin(chunk, binSec): chunk
// rows land in the bucket of their chunk's start instant (floored to
// binSec in unix seconds, exactly like the bin() builtin on the
// trusted chunk column). The key set mirrors the engine's
// enumerateBuckets: every epoch-aligned bucket overlapping the window
// is present — zero-valued when no chunk row lands in it — because the
// release set is data-independent by design (§6.2: which buckets exist
// must not leak what the camera saw).
func (f *Fleet) ObjChunksByBucket(ci int, beginMin, endMin, chunkSec, binSec int) map[int64]float64 {
	out := map[int64]float64{}
	beginUnix := f.Start.Unix() + int64(beginMin)*60
	endUnix := f.Start.Unix() + int64(endMin)*60
	for b := (beginUnix / int64(binSec)) * int64(binSec); b < endUnix; b += int64(binSec) {
		out[b] = 0
	}
	beginF, chunkF, n := f.chunkGrid(beginMin, endMin, chunkSec)
	if n == 0 {
		return out
	}
	fps := int64(f.Cfg.FPS)
	for _, ev := range f.Cams[ci].Events {
		s, e := ev.Enter, ev.Exit
		if s < beginF {
			s = beginF
		}
		if limit := beginF + n*chunkF; e > limit {
			e = limit
		}
		if e <= s {
			continue
		}
		first := (s - beginF) / chunkF
		last := (e - 1 - beginF) / chunkF
		for c := first; c <= last; c++ {
			chunkStartUnix := f.Start.Unix() + (beginF+c*chunkF)/fps
			bucket := (chunkStartUnix / int64(binSec)) * int64(binSec)
			out[bucket]++
		}
	}
	return out
}

// MaxRowsPerChunk returns the largest number of distinct objects any
// aligned chunkSec chunk holds across the fleet — the PRODUCING cap
// every sim query uses, so row truncation can never bend a ground
// truth. Windows in sim queries are minute-aligned, so chunk
// boundaries always land on the absolute chunkSec grid.
func (f *Fleet) MaxRowsPerChunk(chunkSec int) int {
	chunkF := int64(chunkSec * f.Cfg.FPS)
	max := 1
	for _, cam := range f.Cams {
		counts := map[int64]int{}
		for _, ev := range cam.Events {
			first := ev.Enter / chunkF
			last := (ev.Exit - 1) / chunkF
			for c := first; c <= last; c++ {
				counts[c]++
				if counts[c] > max {
					max = counts[c]
				}
			}
		}
	}
	return max
}

// ObjExecutable is the fleet's ground-truth-checkable analyst
// executable: one row per distinct object visible in the chunk (its
// ID as the value). It reads frames through the real Source path, so
// masking, chunking and caching are all exercised; its output is
// empty on empty chunks, which keeps sparse-skip invisible.
func ObjExecutable() sandbox.ProcessFunc {
	return func(c *video.Chunk) []table.Row {
		var rows []table.Row
		seen := map[int]bool{}
		for k := int64(0); k < c.Len(); k++ {
			for _, o := range c.Frame(k).Objects {
				if !seen[o.EntityID] {
					seen[o.EntityID] = true
					rows = append(rows, table.Row{table.N(float64(o.EntityID))})
				}
			}
		}
		return rows
	}
}
