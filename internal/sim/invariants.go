package sim

import (
	"math"
	"sort"
	"strings"
	"time"

	"privid/internal/store"
	"privid/internal/vtime"
)

// noiseSigmas bounds |noised − raw| in units of the Laplace scale b:
// P(|X| > 50b) = e^-50 ≈ 2e-22, so a trip is a bug, not bad luck.
const noiseSigmas = 50

const epsTol = 1e-6

// acked accumulates the per-frame budget the driver KNOWS was spent:
// every release an analyst actually received, charged over its served
// [Begin, End) span — an independent reconstruction of the engine's
// charge construction (camera spans clipped to the release span; in
// sim geometry the clip is a no-op because every query window lies
// inside every stream).
type acked struct {
	f     *Fleet
	clock vtime.Clock
	// diff[cam] is a difference array over frames; prefix-summing
	// yields ε spent at each frame.
	diff map[int][]float64
}

func newAcked(f *Fleet) *acked {
	return &acked{
		f:     f,
		clock: vtime.Clock{Start: f.Start, Rate: vtime.FrameRate(f.Cfg.FPS)},
		diff:  map[int][]float64{},
	}
}

func (a *acked) add(cam int, begin, end time.Time, eps float64) {
	s, e := a.clock.FrameAt(begin), a.clock.FrameAt(end)
	if s < 0 {
		s = 0
	}
	if e > a.f.Frames {
		e = a.f.Frames
	}
	if e <= s {
		return
	}
	d := a.diff[cam]
	if d == nil {
		d = make([]float64, a.f.Frames+1)
		a.diff[cam] = d
	}
	d[s] += eps
	d[e] -= eps
}

// spent resolves the difference arrays into per-frame spent curves.
func (a *acked) spent() map[int][]float64 {
	out := map[int][]float64{}
	for cam, d := range a.diff {
		cur := make([]float64, a.f.Frames)
		run := 0.0
		for i := int64(0); i < a.f.Frames; i++ {
			run += d[i]
			cur[i] = run
		}
		out[cam] = cur
	}
	return out
}

// sampleFrames picks the frames worth checking on one camera: every
// point where the acked curve changes (window boundaries), midpoints
// between changes, and the stream edges.
func sampleFrames(curve []float64, frames int64) []int64 {
	set := map[int64]bool{0: true, frames - 1: true, frames / 2: true}
	if curve != nil {
		prev := 0.0
		last := int64(0)
		for i := int64(0); i < frames; i++ {
			if curve[i] != prev {
				set[i] = true
				if i > 0 {
					set[i-1] = true
				}
				set[(last+i)/2] = true
				prev = curve[i]
				last = i
			}
		}
	}
	out := make([]int64, 0, len(set))
	for f := range set {
		if f >= 0 && f < frames {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkInvariants runs the four post-run invariant classes. The stack
// is quiescent (every goroutine joined) and in its final incarnation.
func checkInvariants(r *runner) {
	h := r.h
	f := r.f
	eps := f.Cfg.Epsilon
	hadCrash := r.rep.Crashes > 0
	chaos := r.sc.Chaos.enabled()
	r.mu.RLock()
	totalLossy := r.lossy
	r.mu.RUnlock()

	ack := newAcked(f)

	// ---- class 4: jobs — outcomes, loss only across crashes, -------
	// terminal results immutable, and build the acked ledger as we go.
	r.recMu.Lock()
	recs := append([]*opOutcome(nil), r.recs...)
	r.recMu.Unlock()
	for _, rec := range recs {
		switch rec.State {
		case "refused":
			// Background load is fire-and-forget from one analyst name;
			// tripping the per-analyst in-flight limit is the admission
			// layer working, not a violation. Planned ops are paced (one
			// in flight per analyst) and must always be admitted.
			if !rec.Bg {
				r.violatef("op %s/%s refused: %s", rec.Op.Analyst, rec.Op.Kind, rec.Err)
			}
		case "lost":
			if rec.FinalLossy == rec.SubmitLossy {
				r.violatef("job %s lost without a durability fault (op %s/%s)",
					rec.JobID, rec.Op.Analyst, rec.Op.Kind)
			}
		case "done":
			if rec.Job.Result == nil {
				r.violatef("job %s done without result", rec.JobID)
				continue
			}
			for _, rel := range rec.Job.Result.Releases {
				for _, cam := range rec.Op.Cams {
					ack.add(cam, rel.Begin, rel.End, rel.Epsilon)
				}
			}
		}
	}

	// Terminal results must be immutable across the restarts that
	// already happened: re-poll each recorded job and demand a
	// bit-identical answer (or a 404, legal only when a durability-
	// loss epoch — crash, or restart over a torn WAL — postdates the
	// submit).
	for _, rec := range recs {
		if rec.State != "done" && rec.State != "failed" {
			continue
		}
		j2, ok := h.Job(rec.JobID)
		if !ok {
			if rec.SubmitLossy == totalLossy {
				r.violatef("terminal job %s vanished without a durability fault", rec.JobID)
			}
			continue
		}
		if j2.State != rec.State {
			r.violatef("job %s changed state %s -> %s", rec.JobID, rec.State, j2.State)
			continue
		}
		if rec.State != "done" {
			continue
		}
		a, b := rec.Job.Result.Releases, j2.Result.Releases
		if len(a) != len(b) {
			r.violatef("job %s release count changed %d -> %d", rec.JobID, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i].Value != b[i].Value || a[i].Raw != b[i].Raw ||
				a[i].Epsilon != b[i].Epsilon || a[i].Desc != b[i].Desc {
				r.violatef("job %s release %d mutated across restart: %+v -> %+v",
					rec.JobID, i, a[i], b[i])
			}
		}
	}

	// ---- class 2: ground truth + noise envelope --------------------
	for _, rec := range recs {
		o := rec.Op
		if o.Kind == opDrain && (chaos || hadCrash) {
			continue // a WAL fault inside the probe sequence voids its script
		}
		switch o.Kind {
		case opCount, opMulti, opDrain:
			if o.WantDenied {
				if rec.State != "failed" || !containsBudgetExhausted(rec.Err) {
					r.violatef("probe expected denial, got %s (%s)", rec.State, rec.Err)
				}
				continue
			}
			if rec.State == "lost" {
				continue
			}
			if rec.State != "done" {
				if !chaos {
					r.violatef("op %s/%s failed on a clean run: %s", o.Analyst, o.Kind, rec.Err)
				}
				continue
			}
			rels := rec.Job.Result.Releases
			if len(rels) != 1 {
				r.violatef("op %s/%s: %d releases, want 1", o.Analyst, o.Kind, len(rels))
				continue
			}
			rel := rels[0]
			want := o.expectedGroundTruth(f, r.p.ChunkSec)
			if !rel.RawSet {
				r.violatef("op %s/%s: release missing raw value", o.Analyst, o.Kind)
			} else if rel.Raw != want {
				r.violatef("op %s/%s cams %v [%d,%d)m: raw %v != ground truth %v",
					o.Analyst, o.Kind, o.Cams, o.BeginMin, o.EndMin, rel.Raw, want)
			}
			if math.Abs(rel.Value-rel.Raw) > noiseSigmas*rel.NoiseScale {
				r.violatef("op %s/%s: |noised %v - raw %v| > %d scales (b=%v)",
					o.Analyst, o.Kind, rel.Value, rel.Raw, noiseSigmas, rel.NoiseScale)
			}
			if rel.Epsilon != o.Eps {
				r.violatef("op %s/%s: released eps %v != consuming %v",
					o.Analyst, o.Kind, rel.Epsilon, o.Eps)
			}
			if rel.Sensitivity > 0 && math.Abs(rel.NoiseScale-rel.Sensitivity/rel.Epsilon) > 1e-9*rel.NoiseScale {
				r.violatef("op %s/%s: noise scale %v != sensitivity %v / eps %v",
					o.Analyst, o.Kind, rel.NoiseScale, rel.Sensitivity, rel.Epsilon)
			}
		}
	}

	// ---- class 4b + 2b: standing queries — every elapsed non-empty -
	// bucket released exactly once, with exact per-bucket ground truth.
	for _, sr := range r.standing {
		sp := sr.plan
		expected := f.ObjChunksByBucket(sp.Cam, 0, f.Cfg.Minutes, r.p.ChunkSec, sp.BinSec)
		sr.mu.Lock()
		for key, n := range sr.count {
			if n != 1 {
				r.violatef("standing %d: bucket %q released %d times", sr.idx, key, n)
			}
		}
		seen := map[int64]bool{}
		for _, rec := range sr.recs {
			// The charge is real whatever else is wrong with the
			// release, so the ledger reconstruction always counts it.
			ack.add(sp.Cam, rec.Begin, rec.End, rec.Eps)
			seen[rec.Bucket] = true
			want, ok := expected[rec.Bucket]
			if !ok {
				r.violatef("standing %d: released bucket %d outside the window", sr.idx, rec.Bucket)
				continue
			}
			if !rec.RawSet || rec.Raw != want {
				r.violatef("standing %d bucket %d: raw %v != ground truth %v",
					sr.idx, rec.Bucket, rec.Raw, want)
			}
			if math.Abs(rec.Value-rec.Raw) > noiseSigmas*rec.Scale {
				r.violatef("standing %d bucket %d: |noised %v - raw %v| > %d scales",
					sr.idx, rec.Bucket, rec.Value, rec.Raw, noiseSigmas)
			}
			// Each bucket release consumes the full CONSUMING ε over
			// its own bucket span (buckets partition the window, so
			// per-frame cost stays ε_consuming).
			if rec.Eps != sp.Eps {
				r.violatef("standing %d bucket %d: eps %v != consuming %v",
					sr.idx, rec.Bucket, rec.Eps, sp.Eps)
			}
		}
		for bucket := range expected {
			if !seen[bucket] {
				r.violatef("standing %d: bucket %d (truth %v) never released",
					sr.idx, bucket, expected[bucket])
			}
		}
		if !chaos && len(sr.errs) > 0 {
			r.violatef("standing %d: %d advance errors on a clean run: %v",
				sr.idx, len(sr.errs), sr.errs[0])
		}
		sr.mu.Unlock()
	}

	// ---- class 1: ledger identity, live engine ---------------------
	// Clean runs (no crash): remaining == ε − acked at every sampled
	// frame. Crash runs: remaining ≤ ε − acked (the engine may have
	// durably charged work whose ack the crash swallowed — spending
	// at-least-once is the safe direction), and never below the fully
	// drained floor.
	spent := ack.spent()
	liveRem := map[int]map[int64]float64{}
	camIdxs := checkedCameras(f, spent)
	for _, cam := range camIdxs {
		curve := spent[cam]
		samples := sampleFrames(curve, f.Frames)
		liveRem[cam] = map[int64]float64{}
		for _, fr := range samples {
			rem, err := h.Engine.Remaining(f.Cams[cam].Name, fr)
			if err != nil {
				r.violatef("remaining(%s,%d): %v", f.Cams[cam].Name, fr, err)
				continue
			}
			liveRem[cam][fr] = rem
			ac := 0.0
			if curve != nil {
				ac = curve[fr]
			}
			if hadCrash {
				if rem > eps-ac+epsTol {
					r.violatef("cam %s frame %d: remaining %v > eps %v - acked %v (charges lost)",
						f.Cams[cam].Name, fr, rem, eps, ac)
				}
				if rem < -epsTol {
					r.violatef("cam %s frame %d: remaining %v < 0", f.Cams[cam].Name, fr, rem)
				}
			} else if math.Abs(rem-(eps-ac)) > epsTol {
				r.violatef("cam %s frame %d: remaining %v != eps %v - acked %v",
					f.Cams[cam].Name, fr, rem, eps, ac)
			}
		}
	}

	// ---- class 3: stats self-consistency ---------------------------
	checkStats(r, spent)

	// ---- class 1b: the WAL read back after shutdown agrees ---------
	// with both the live engine (exactly) and the acked ledger
	// (exactly clean, at-least-once after crashes).
	h.Stop()
	st, err := store.ReadState(r.sc.StateDir, 0)
	if err != nil {
		r.violatef("read state after stop: %v", err)
		return
	}
	for _, cam := range camIdxs {
		name := f.Cams[cam].Name
		curve := spent[cam]
		for fr, rem := range liveRem[cam] {
			wal := st.Spent(name, fr)
			if math.Abs((eps-rem)-wal) > epsTol {
				r.violatef("cam %s frame %d: WAL spent %v != eps - live remaining %v",
					name, fr, wal, eps-rem)
			}
			ac := 0.0
			if curve != nil {
				ac = curve[fr]
			}
			if wal < ac-epsTol {
				r.violatef("cam %s frame %d: WAL spent %v < acked %v (charge lost)",
					name, fr, wal, ac)
			}
			if !hadCrash && math.Abs(wal-ac) > epsTol {
				r.violatef("cam %s frame %d: WAL spent %v != acked %v on a crash-free run",
					name, fr, wal, ac)
			}
		}
	}
}

// checkedCameras picks which cameras get per-frame ledger checks:
// every camera with acked activity, plus (bounded) a sample of idle
// ones — a 1000-camera fleet shouldn't cost 1000×samples HTTP-less
// engine calls for cameras provably untouched.
func checkedCameras(f *Fleet, spent map[int][]float64) []int {
	idxs := make([]int, 0, len(spent)+8)
	for cam := range spent {
		idxs = append(idxs, cam)
	}
	sort.Ints(idxs)
	stride := len(f.Cams)/16 + 1
	for cam := 0; cam < len(f.Cams); cam += stride {
		if _, ok := spent[cam]; !ok {
			idxs = append(idxs, cam)
		}
	}
	return idxs
}

// checkStats cross-checks /v1/stats against the engine's own counter
// snapshots (legal only at quiescence) plus the counters' structural
// identities, and ties the per-camera worst-case remaining to the
// acked ledger.
func checkStats(r *runner, spent map[int][]float64) {
	h := r.h
	f := r.f
	raw := h.StatsRaw()
	cs := h.Engine.CacheStats()
	fs := h.Engine.FlightStats()
	ps := h.Engine.PartialStats()

	group := func(name string) map[string]any {
		g, _ := raw[name].(map[string]any)
		if g == nil {
			r.violatef("stats: missing %q group", name)
			return map[string]any{}
		}
		return g
	}
	num := func(g map[string]any, key string) float64 {
		v, ok := g[key].(float64)
		if !ok {
			r.violatef("stats: missing numeric field %q", key)
		}
		return v
	}
	wants := []struct {
		group string
		key   string
		want  float64
	}{
		{"singleflight", "leaders", float64(fs.Leaders)},
		{"singleflight", "followers", float64(fs.Followers)},
		{"singleflight", "handoffs", float64(fs.Handoffs)},
		{"singleflight", "timeouts", float64(fs.Timeouts)},
		{"singleflight", "waiting", float64(fs.Waiting)},
		{"chunk_cache", "hits", float64(cs.Hits)},
		{"chunk_cache", "misses", float64(cs.Misses)},
		{"chunk_cache", "puts", float64(cs.Puts)},
		{"chunk_cache", "evictions", float64(cs.Evictions)},
		{"chunk_cache", "entries", float64(cs.Entries)},
		{"chunk_cache", "bytes", float64(cs.Bytes)},
		{"chunk_cache", "max_bytes", float64(cs.MaxBytes)},
		{"chunk_cache", "disk_hits", float64(cs.DiskHits)},
		{"chunk_cache", "disk_misses", float64(cs.DiskMisses)},
		{"chunk_cache", "disk_puts", float64(cs.DiskPuts)},
		{"chunk_cache", "promotions", float64(cs.Promotions)},
		{"chunk_cache", "disk_bytes", float64(cs.DiskBytes)},
		{"chunk_cache", "disk_segments", float64(cs.DiskSegments)},
		{"chunk_cache", "disk_evictions", float64(cs.DiskEvictions)},
		{"partial_agg", "plans", float64(ps.Plans)},
		{"partial_agg", "declined", float64(ps.Declined)},
		{"partial_agg", "folds", float64(ps.Folds)},
		{"partial_agg", "merges", float64(ps.Merges)},
		{"partial_agg", "state_hits", float64(ps.StateHits)},
		{"partial_agg", "state_misses", float64(ps.StateMisses)},
		{"partial_agg", "state_puts", float64(ps.StatePuts)},
	}
	groups := map[string]map[string]any{}
	for _, w := range wants {
		g, ok := groups[w.group]
		if !ok {
			g = group(w.group)
			groups[w.group] = g
		}
		if got := num(g, w.key); got != w.want {
			r.violatef("stats: %s.%s = %v, engine says %v", w.group, w.key, got, w.want)
		}
	}

	// Structural identities.
	cc := groups["chunk_cache"]
	if hr := num(cc, "hit_rate"); hr < 0 || hr > 1 {
		r.violatef("stats: hit_rate %v outside [0,1]", hr)
	}
	if cs.MaxBytes > 0 && cs.Bytes > cs.MaxBytes {
		r.violatef("stats: cache bytes %d > max %d", cs.Bytes, cs.MaxBytes)
	}
	if cs.Puts > cs.Misses {
		r.violatef("stats: cache puts %d > misses %d", cs.Puts, cs.Misses)
	}
	if fs.Waiting != 0 {
		r.violatef("stats: %d singleflight waiters at quiescence", fs.Waiting)
	}
	// SchedStats serializes without json tags, so the wire keys are
	// the Go field names.
	sched := group("scheduler")
	if q := num(sched, "Queued"); q != 0 {
		r.violatef("stats: %v queued jobs at quiescence", q)
	}
	if ru := num(sched, "Running"); ru != 0 {
		r.violatef("stats: %v running jobs at quiescence", ru)
	}

	// Per-camera worst-case remaining: the wire value must match the
	// engine's budget report bit-for-bit, and relate to the acked
	// ledger like the per-frame check does.
	budgets := h.Engine.CameraBudgets()
	byName := map[string]float64{}
	for _, b := range budgets {
		byName[b.Name] = b.Remaining
	}
	camsRaw, _ := raw["cameras"].([]any)
	if len(camsRaw) != len(budgets) {
		r.violatef("stats: %d cameras on the wire, engine has %d", len(camsRaw), len(budgets))
	}
	for _, cr := range camsRaw {
		m, _ := cr.(map[string]any)
		if m == nil {
			continue
		}
		name, _ := m["name"].(string)
		rem, _ := m["remaining"].(float64)
		if want, ok := byName[name]; !ok || rem != want {
			r.violatef("stats: camera %s remaining %v, engine says %v", name, rem, want)
		}
	}
	hadCrash := r.rep.Crashes > 0
	for cam, curve := range spent {
		maxAcked := 0.0
		for _, v := range curve {
			if v > maxAcked {
				maxAcked = v
			}
		}
		rem, ok := byName[f.Cams[cam].Name]
		if !ok {
			r.violatef("stats: camera %s missing from budgets", f.Cams[cam].Name)
			continue
		}
		floor := f.Cfg.Epsilon - maxAcked
		if hadCrash {
			if rem > floor+epsTol {
				r.violatef("cam %s: worst-case remaining %v > eps - max acked %v",
					f.Cams[cam].Name, rem, floor)
			}
		} else if math.Abs(rem-floor) > epsTol {
			r.violatef("cam %s: worst-case remaining %v != eps - max acked %v",
				f.Cams[cam].Name, rem, floor)
		}
	}
}

func containsBudgetExhausted(s string) bool {
	return strings.Contains(s, "budget exhausted")
}
