// Package taxi is the Porto Taxi substrate: a deterministic simulator
// of the dataset the paper uses for its multi-camera case study
// (Case 2, Q4–Q6): 442 taxis running in a city observed by 105 virtual
// cameras over 1.5 years, reduced — exactly as the paper's processing
// of [36] does — to the set of timestamps each taxi is visible to each
// camera.
//
// Visits are generated lazily per day with per-(seed, taxi, day)
// determinism, so a year of fleet data streams in bounded memory.
package taxi

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"privid/internal/scene"
	"privid/internal/video"
	"privid/internal/vtime"
)

// Config parameterizes the fleet.
type Config struct {
	Taxis   int
	Cameras int
	Days    int
	Seed    int64
	Start   time.Time
	// FPS of the virtual cameras; visibility timestamps are
	// second-granular, so 1 fps is the natural rate.
	FPS vtime.FrameRate
}

// DefaultConfig mirrors the paper's dataset dimensions. Days defaults
// to 365 (the queries' |W| = 365 days) rather than the full 545-day
// capture.
func DefaultConfig() Config {
	return Config{
		Taxis:   442,
		Cameras: 105,
		Days:    365,
		Seed:    1,
		Start:   time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC),
		FPS:     1,
	}
}

// Visit is one taxi passing one camera: visible for frames
// [Start, End) (at 1 fps, frame == second since fleet start).
type Visit struct {
	Taxi   int
	Camera int
	Start  int64
	End    int64
}

// Fleet generates and caches per-day visits.
type Fleet struct {
	Cfg Config

	mu    sync.Mutex
	cache map[int]map[int][]Visit // day -> camera -> visits (sorted by Start)

	profiles []driverProfile
}

type driverProfile struct {
	shiftStartSec float64 // seconds after midnight
	shiftLenSec   float64
	tripsPerDay   float64
	favored       [3]int // cameras this driver passes most
}

// NewFleet builds a fleet simulator.
func NewFleet(cfg Config) *Fleet {
	f := &Fleet{Cfg: cfg, cache: map[int]map[int][]Visit{}}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f.profiles = make([]driverProfile, cfg.Taxis)
	for t := range f.profiles {
		start := 5*3600 + rng.Float64()*14*3600 // shifts start 5am-7pm
		f.profiles[t] = driverProfile{
			shiftStartSec: start,
			shiftLenSec:   (5 + rng.Float64()*5) * 3600, // 5-10 h shifts
			tripsPerDay:   6 + rng.Float64()*10,
			favored: [3]int{
				rng.Intn(cfg.Cameras),
				rng.Intn(cfg.Cameras),
				rng.Intn(cfg.Cameras),
			},
		}
	}
	return f
}

// CameraName returns the paper-style name of camera i ("porto<i>").
func CameraName(i int) string { return fmt.Sprintf("porto%d", i) }

// BaseVisibilitySec returns camera i's characteristic visibility
// duration. Across cameras the values span the paper's [15, 525] s
// range (Table 3's ρ column).
func (f *Fleet) BaseVisibilitySec(camera int) float64 {
	if f.Cfg.Cameras <= 1 {
		return 15
	}
	return 15 + 510*float64(camera)/float64(f.Cfg.Cameras-1)
}

// cameraWeight shapes the city's traffic: camera 20 is the busiest
// junction by a clear margin (Q6's ground-truth argmax is porto20),
// and cameras 10 and 27 — the pair Case 2's union/intersection queries
// target — are busy secondary hubs so taxi overlap between them is
// common (the paper measures ~131 shared taxis/day).
func (f *Fleet) cameraWeight(camera int) float64 {
	bump := func(center int, height, width float64) float64 {
		d := float64(camera - center)
		return height * math.Exp(-d*d/width)
	}
	return 1 + bump(20, 8, 3) + bump(10, 3.5, 2) + bump(27, 3.5, 2)
}

// Day returns (generating if needed) all visits of one day, grouped by
// camera and sorted by start time.
func (f *Fleet) Day(day int) map[int][]Visit {
	f.mu.Lock()
	defer f.mu.Unlock()
	if v, ok := f.cache[day]; ok {
		return v
	}
	out := f.generateDay(day)
	f.cache[day] = out
	return out
}

func (f *Fleet) generateDay(day int) map[int][]Visit {
	out := map[int][]Visit{}
	// Cumulative camera weights for weighted sampling.
	weights := make([]float64, f.Cfg.Cameras)
	total := 0.0
	for c := range weights {
		total += f.cameraWeight(c)
		weights[c] = total
	}
	dayBase := int64(day) * 86400
	for t := 0; t < f.Cfg.Taxis; t++ {
		rng := rand.New(rand.NewSource(f.Cfg.Seed ^ int64(t)*1_000_003 ^ int64(day)*7_777_777))
		p := f.profiles[t]
		// ~1 day off per week.
		if rng.Float64() < 1.0/7 {
			continue
		}
		// Each trip passes 1-3 cameras.
		nTrips := int(p.tripsPerDay * (0.7 + 0.6*rng.Float64()))
		for trip := 0; trip < nTrips; trip++ {
			at := p.shiftStartSec + rng.Float64()*p.shiftLenSec
			nCams := 1 + rng.Intn(3)
			for k := 0; k < nCams; k++ {
				var cam int
				if rng.Float64() < 0.3 {
					cam = p.favored[rng.Intn(3)]
				} else {
					x := rng.Float64() * total
					cam = sort.SearchFloat64s(weights, x)
					if cam >= f.Cfg.Cameras {
						cam = f.Cfg.Cameras - 1
					}
				}
				dur := f.BaseVisibilitySec(cam) * math.Exp(0.3*rng.NormFloat64())
				if dur < 15 {
					dur = 15
				}
				if dur > 525 {
					dur = 525
				}
				start := dayBase + int64(at) + int64(k)*600
				end := start + int64(dur)
				limit := dayBase + 86400
				if end > limit {
					end = limit
				}
				if start >= end {
					continue
				}
				out[cam] = append(out[cam], Visit{Taxi: t, Camera: cam, Start: start, End: end})
			}
		}
	}
	for c := range out {
		vs := out[c]
		sort.Slice(vs, func(i, j int) bool { return vs[i].Start < vs[j].Start })
	}
	return out
}

// TotalFrames returns the fleet's stream length in frames.
func (f *Fleet) TotalFrames() int64 {
	return int64(f.Cfg.Days) * 86400 * int64(f.Cfg.FPS)
}

// Source returns the virtual camera stream for one camera. It
// implements video.SparseSource so year-long queries skip empty
// chunks.
func (f *Fleet) Source(camera int) video.Source {
	return &camSource{fleet: f, camera: camera}
}

type camSource struct {
	fleet  *Fleet
	camera int
}

// Info implements video.Source.
func (s *camSource) Info() video.Info {
	return video.Info{
		Camera: CameraName(s.camera),
		W:      1280, H: 720,
		FPS:    s.fleet.Cfg.FPS,
		Start:  s.fleet.Cfg.Start,
		Frames: s.fleet.TotalFrames(),
	}
}

// Frame implements video.Source: one observation per taxi currently
// visible.
func (s *camSource) Frame(i int64) video.Frame {
	sec := i / int64(s.fleet.Cfg.FPS)
	day := int(sec / 86400)
	frame := video.Frame{Index: i}
	if day < 0 || day >= s.fleet.Cfg.Days {
		return frame
	}
	visits := s.fleet.Day(day)[s.camera]
	// Visits are sorted by Start and last at most 525 s, so only those
	// starting within (sec-525, sec] can cover sec.
	lo := sort.Search(len(visits), func(j int) bool { return visits[j].Start > sec-526 })
	for j := lo; j < len(visits) && visits[j].Start <= sec; j++ {
		v := visits[j]
		if sec < v.End {
			frame.Objects = append(frame.Objects, scene.Observation{
				EntityID: v.Taxi,
				Class:    scene.Car,
				Plate:    fmt.Sprintf("TAXI%04d", v.Taxi),
			})
		}
	}
	return frame
}

// ActiveIntervals implements video.SparseSource.
func (s *camSource) ActiveIntervals(iv vtime.Interval) []vtime.Interval {
	fps := int64(s.fleet.Cfg.FPS)
	var out []vtime.Interval
	d0 := int(iv.Start / fps / 86400)
	d1 := int((iv.End - 1) / fps / 86400)
	if d0 < 0 {
		d0 = 0
	}
	if d1 >= s.fleet.Cfg.Days {
		d1 = s.fleet.Cfg.Days - 1
	}
	for day := d0; day <= d1; day++ {
		for _, v := range s.fleet.Day(day)[s.camera] {
			x := vtime.NewInterval(v.Start*fps, v.End*fps).Intersect(iv)
			if x.Empty() {
				continue
			}
			// Merge with the previous interval when overlapping or
			// adjacent (visits are sorted by start within a day).
			if n := len(out); n > 0 && x.Start <= out[n-1].End {
				if x.End > out[n-1].End {
					out[n-1].End = x.End
				}
				continue
			}
			out = append(out, x)
		}
	}
	return out
}
