package taxi

import (
	"testing"

	"privid/internal/vtime"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Taxis = 50
	cfg.Cameras = 30
	cfg.Days = 10
	return cfg
}

func TestDayDeterminism(t *testing.T) {
	a := NewFleet(smallConfig())
	b := NewFleet(smallConfig())
	da, db := a.Day(3), b.Day(3)
	if len(da) != len(db) {
		t.Fatalf("camera maps differ: %d vs %d", len(da), len(db))
	}
	for cam, va := range da {
		vb := db[cam]
		if len(va) != len(vb) {
			t.Fatalf("camera %d visit counts differ", cam)
		}
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("camera %d visit %d differs: %+v vs %+v", cam, i, va[i], vb[i])
			}
		}
	}
}

func TestVisitInvariants(t *testing.T) {
	f := NewFleet(smallConfig())
	for day := 0; day < 5; day++ {
		for cam, visits := range f.Day(day) {
			prev := int64(-1)
			for _, v := range visits {
				if v.Camera != cam {
					t.Fatalf("visit camera mismatch: %+v at %d", v, cam)
				}
				if v.Start < prev {
					t.Fatalf("visits not sorted on camera %d", cam)
				}
				prev = v.Start
				dur := v.End - v.Start
				if dur < 1 || dur > 525 {
					t.Errorf("visit duration %ds out of [1, 525]", dur)
				}
				dayStart := int64(day) * 86400
				if v.Start < dayStart || v.End > dayStart+86400 {
					t.Errorf("visit outside its day: %+v", v)
				}
				if v.Taxi < 0 || v.Taxi >= f.Cfg.Taxis {
					t.Errorf("bad taxi id %d", v.Taxi)
				}
			}
		}
	}
}

func TestVisibilityRange(t *testing.T) {
	f := NewFleet(DefaultConfig())
	lo := f.BaseVisibilitySec(0)
	hi := f.BaseVisibilitySec(f.Cfg.Cameras - 1)
	if lo != 15 || hi != 525 {
		t.Errorf("visibility range [%v, %v], want [15, 525]", lo, hi)
	}
}

func TestCamera20Busiest(t *testing.T) {
	f := NewFleet(smallConfig())
	counts := make([]int, f.Cfg.Cameras)
	for day := 0; day < 10; day++ {
		for cam, visits := range f.Day(day) {
			counts[cam] += len(visits)
		}
	}
	best := 0
	for c, n := range counts {
		if n > counts[best] {
			best = c
		}
	}
	if best < 18 || best > 22 {
		t.Errorf("busiest camera %d, want ~20", best)
	}
}

func TestSourceFrames(t *testing.T) {
	f := NewFleet(smallConfig())
	src := f.Source(20)
	info := src.Info()
	if info.Camera != "porto20" || info.FPS != 1 {
		t.Fatalf("info: %+v", info)
	}
	if info.Frames != int64(f.Cfg.Days)*86400 {
		t.Errorf("frames=%d", info.Frames)
	}
	// Frame contents must match the visit list.
	visits := f.Day(0)[20]
	if len(visits) == 0 {
		t.Skip("no visits at camera 20 on day 0 for this seed")
	}
	v := visits[0]
	fr := src.Frame(v.Start)
	found := false
	for _, o := range fr.Objects {
		if o.EntityID == v.Taxi {
			found = true
			if o.Plate == "" {
				t.Errorf("taxi observation has no plate")
			}
		}
	}
	if !found {
		t.Errorf("taxi %d not visible at its visit start", v.Taxi)
	}
	// One second before the visit it is absent (visits are merged and
	// sorted, so only check when no other visit covers that frame).
	before := src.Frame(v.Start - 1)
	for _, o := range before.Objects {
		if o.EntityID == v.Taxi {
			covered := false
			for _, w := range visits {
				if w.Taxi == v.Taxi && w.Start <= v.Start-1 && v.Start-1 < w.End {
					covered = true
				}
			}
			if !covered {
				t.Errorf("taxi visible outside its visits")
			}
		}
	}
}

func TestActiveIntervalsCoverVisits(t *testing.T) {
	f := NewFleet(smallConfig())
	src := f.Source(10).(interface {
		ActiveIntervals(vtime.Interval) []vtime.Interval
	})
	iv := vtime.NewInterval(0, 2*86400)
	actives := src.ActiveIntervals(iv)
	// Sorted and disjoint.
	for i := 1; i < len(actives); i++ {
		if actives[i].Start < actives[i-1].End {
			t.Fatalf("active intervals overlap: %v, %v", actives[i-1], actives[i])
		}
	}
	inActive := func(fr int64) bool {
		for _, a := range actives {
			if a.Contains(fr) {
				return true
			}
		}
		return false
	}
	for day := 0; day < 2; day++ {
		for _, v := range f.Day(day)[10] {
			if !inActive(v.Start) || !inActive(v.End-1) {
				t.Fatalf("visit %+v not covered by active intervals", v)
			}
		}
	}
}

func TestWorkloadScale(t *testing.T) {
	// The default config should produce a plausible daily workload:
	// hundreds of visits across the city per day.
	f := NewFleet(DefaultConfig())
	day := f.Day(100)
	total := 0
	for _, vs := range day {
		total += len(vs)
	}
	// 442 taxis * ~10 trips * ~2 cameras ~ 9k visits.
	if total < 2000 || total > 40000 {
		t.Errorf("daily visits=%d, want thousands", total)
	}
}
