package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"privid/internal/geom"
	"privid/internal/policy"
	"privid/internal/query"
	"privid/internal/scene"
	"privid/internal/table"
	"privid/internal/video"
)

// TestSensitivityBoundsNeighboringVideos is the system's core
// soundness property (Theorem 6.1): for ANY (ρ, K)-bounded event, the
// raw (pre-noise) query output on a video with the event and on the
// neighboring video without it differ by at most the sensitivity the
// engine computed. We verify it empirically across randomized events,
// chunk sizes and aggregations, with an adversarially cooperative
// "analyst" whose processing dumps as much about the event as it can.
func TestSensitivityBoundsNeighboringVideos(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	queries := []struct {
		name string
		sel  string
	}{
		{"count", `SELECT COUNT(*) FROM t;`},
		{"sum", `SELECT SUM(range(n, 0, 7)) FROM t;`},
		{"grouped", `SELECT tag, COUNT(*) FROM t GROUP BY tag WITH KEYS ["x", "y"];`},
	}
	for trial := 0; trial < 25; trial++ {
		// Random policy and chunking.
		rhoSec := 1 + rng.Intn(60)
		k := 1 + rng.Intn(3)
		chunkSec := []int{5, 10, 30}[rng.Intn(3)]
		pol := policy.Policy{Rho: time.Duration(rhoSec) * time.Second, K: k}

		// A background scene plus one (ρ, K)-bounded event: K segments
		// of duration <= ρ each.
		mkScene := func(withEvent bool) *scene.Scene {
			s := &scene.Scene{Name: "n", W: 500, H: 500, FPS: 10,
				Start:  time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC),
				Frames: 12000} // 20 minutes
			erng := rand.New(rand.NewSource(int64(trial)))
			// Background: a handful of long-lived benign entities.
			for i := 0; i < 5; i++ {
				enter := int64(erng.Intn(2000))
				exit := enter + int64(3000+erng.Intn(4000))
				if exit > s.Frames {
					exit = s.Frames
				}
				s.Ents = append(s.Ents, &scene.Entity{
					ID: i, Class: scene.Person,
					Appearances: []scene.Appearance{{
						Enter: enter, Exit: exit,
						Traj: scene.NewPath(enter, exit, 20, 20, 1,
							scene.Waypoint{T: 0, P: geom.Point{X: 50 + float64(i*80), Y: 250}}),
					}},
				})
			}
			if withEvent {
				e := &scene.Entity{ID: 1000, Class: scene.Person}
				pos := int64(erng.Intn(3000))
				for seg := 0; seg < k; seg++ {
					durF := int64(1 + erng.Intn(rhoSec*10))
					enter := pos
					exit := enter + durF
					if exit > s.Frames {
						break
					}
					e.Appearances = append(e.Appearances, scene.Appearance{
						Enter: enter, Exit: exit,
						Traj: scene.NewPath(enter, exit, 20, 20, 1,
							scene.Waypoint{T: 0, P: geom.Point{X: 250, Y: 100}}),
					})
					pos = exit + int64(erng.Intn(2000)) + 1
				}
				if len(e.Appearances) > 0 {
					s.Ents = append(s.Ents, e)
				}
			}
			s.BuildIndex()
			return s
		}

		// The adversarial analyst: if the event's entity is visible
		// ANYWHERE in the chunk, fill every output row with maximal
		// values; otherwise report benign data.
		adversary := func(chunk *video.Chunk) []table.Row {
			sawEvent := false
			for f := int64(0); f < chunk.Len(); f++ {
				for _, o := range chunk.Frame(f).Objects {
					if o.EntityID == 1000 {
						sawEvent = true
					}
				}
			}
			var rows []table.Row
			for i := 0; i < 3; i++ {
				if sawEvent {
					rows = append(rows, table.Row{table.N(7), table.S("x")})
				} else {
					rows = append(rows, table.Row{table.N(1), table.S("y")})
				}
			}
			return rows
		}

		for _, q := range queries {
			src := fmt.Sprintf(`
SPLIT cam BEGIN 3-15-2021/6:00am END 3-15-2021/6:20am
  BY TIME %dsec STRIDE 0sec INTO c;
PROCESS c USING adv TIMEOUT 5sec PRODUCING 3 ROWS
  WITH SCHEMA (n:NUMBER=0, tag:STRING="") INTO t;
%s`, chunkSec, q.sel)
			prog, err := query.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			run := func(withEvent bool) []ReleaseResult {
				e := New(Options{Seed: 1, Evaluation: true})
				if err := e.RegisterCamera(CameraConfig{
					Name:    "cam",
					Source:  &video.SceneSource{Camera: "cam", Scene: mkScene(withEvent)},
					Policy:  pol,
					Epsilon: 1e9,
				}); err != nil {
					t.Fatal(err)
				}
				if err := e.Registry().Register("adv", adversary); err != nil {
					t.Fatal(err)
				}
				res, err := e.Execute(prog)
				if err != nil {
					t.Fatal(err)
				}
				return res.Releases
			}
			with := run(true)
			without := run(false)
			if len(with) != len(without) {
				t.Fatalf("release counts differ")
			}
			for i := range with {
				diff := math.Abs(with[i].Raw - without[i].Raw)
				if diff > with[i].Sensitivity+1e-9 {
					t.Errorf("trial %d %s (rho=%ds K=%d c=%ds) release %q: |Δoutput|=%v exceeds sensitivity %v",
						trial, q.name, rhoSec, k, chunkSec, with[i].Desc, diff, with[i].Sensitivity)
				}
			}
		}
	}
}

// TestProcessFailureInjection verifies the Appendix-B failure
// semantics end to end: executables that panic, time out, or
// over-produce still yield a well-formed table (default rows,
// truncation) and a successful query.
func TestProcessFailureInjection(t *testing.T) {
	s := countScene(10)
	cases := []struct {
		name string
		fn   func(chunk *video.Chunk) []table.Row
		// expectPerChunk is the rows each chunk contributes.
		expectPerChunk float64
	}{
		{
			name:           "panics",
			fn:             func(*video.Chunk) []table.Row { panic("boom") },
			expectPerChunk: 1, // the default row
		},
		{
			name: "overproduces",
			fn: func(*video.Chunk) []table.Row {
				rows := make([]table.Row, 1000)
				for i := range rows {
					rows[i] = table.Row{table.N(1)}
				}
				return rows
			},
			expectPerChunk: 20, // truncated to max_rows
		},
		{
			name: "wrong schema",
			fn: func(*video.Chunk) []table.Row {
				return []table.Row{{table.S("not-a-number"), table.S("extra"), table.N(9)}}
			},
			expectPerChunk: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New(Options{Seed: 1, Evaluation: true})
			if err := e.RegisterCamera(CameraConfig{
				Name:    "camA",
				Source:  &video.SceneSource{Camera: "camA", Scene: s},
				Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
				Epsilon: 100,
			}); err != nil {
				t.Fatal(err)
			}
			if err := e.Registry().Register("counter", tc.fn); err != nil {
				t.Fatal(err)
			}
			prog, err := query.Parse(countQuery)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Execute(prog)
			if err != nil {
				t.Fatal(err)
			}
			// 1 hour of 30s chunks = 120 chunks.
			want := tc.expectPerChunk * 120
			if res.Releases[0].Raw != want {
				t.Errorf("raw=%v, want %v", res.Releases[0].Raw, want)
			}
		})
	}
}

// TestTimeoutFailureInjection runs separately because it relies on
// wall-clock timeouts.
func TestTimeoutFailureInjection(t *testing.T) {
	s := countScene(3)
	e := New(Options{Seed: 1, Evaluation: true})
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: s},
		Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
		Epsilon: 100,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Registry().Register("slow", func(*video.Chunk) []table.Row {
		time.Sleep(50 * time.Millisecond)
		return []table.Row{{table.N(1)}, {table.N(1)}}
	}); err != nil {
		t.Fatal(err)
	}
	src := strings.Replace(countQuery, "USING counter TIMEOUT 5sec", "USING slow TIMEOUT 0.01sec", 1)
	src = strings.Replace(src, "END 03-15-2021/7:00am", "END 03-15-2021/6:05am", 1)
	prog, err := query.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Every chunk times out -> exactly one default row each: 10 chunks
	// of 30s in 5 minutes.
	if res.Releases[0].Raw != 10 {
		t.Errorf("raw=%v, want 10 default rows", res.Releases[0].Raw)
	}
}
