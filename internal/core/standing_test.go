package core

import (
	"sync"
	"testing"
	"time"

	"privid/internal/policy"
	"privid/internal/query"
	"privid/internal/video"
)

const standingQuery = `
SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/10:00am
  BY TIME 30sec STRIDE 0sec INTO chunks;
PROCESS chunks USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM (SELECT bin(chunk, 3600) AS hr FROM t) GROUP BY hr;`

func TestStandingQueryIncrementalReleases(t *testing.T) {
	s := countScene(200)
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 10)
	prog, err := query.Parse(standingQuery)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := e.Standing(prog)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC)

	// Nothing has elapsed yet.
	res, err := sq.Advance(start.Add(30 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 0 {
		t.Fatalf("early advance released %d values", len(res.Releases))
	}

	// The first hour completes.
	res, err = sq.Advance(start.Add(61 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 1 {
		t.Fatalf("after 1h: %d releases, want 1", len(res.Releases))
	}
	if res.Releases[0].Raw != 60 { // one entrant per minute
		t.Errorf("hour-0 raw=%v, want 60", res.Releases[0].Raw)
	}

	// Re-advancing to the same point releases nothing new (and
	// consumes nothing).
	res, err = sq.Advance(start.Add(61 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 0 || res.EpsilonSpent != 0 {
		t.Fatalf("idempotent advance released %d values, spent %v", len(res.Releases), res.EpsilonSpent)
	}

	// Jumping to the end releases the remaining three hours at once.
	res, err = sq.Advance(start.Add(5 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 3 {
		t.Fatalf("final advance: %d releases, want 3", len(res.Releases))
	}
	if sq.Released() != 4 {
		t.Errorf("Released()=%d, want 4", sq.Released())
	}
}

func TestStandingQueryBudgetChargedOnce(t *testing.T) {
	s := countScene(200)
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 10)
	prog, err := query.Parse(standingQuery)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := e.Standing(prog)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC)
	for i := 1; i <= 8; i++ {
		if _, err := sq.Advance(start.Add(time.Duration(i) * 30 * time.Minute)); err != nil {
			t.Fatalf("advance %d: %v", i, err)
		}
	}
	// Each frame of hour 0 was charged exactly once, by its own
	// release (0.25 of the default 1.0 split across 4 buckets).
	rem, err := e.Remaining("camA", 10000) // frame within hour 0
	if err != nil {
		t.Fatal(err)
	}
	if rem != 10-0.25 {
		t.Errorf("remaining=%v, want 9.75 (single charge)", rem)
	}
}

// TestStandingQueryConcurrentAdvance is the regression test for the
// Advance race: unsynchronized concurrent Advance calls raced on the
// released map and newly slice, and could both see the same elapsed
// bucket as unreleased — emitting and charging it twice. Run under
// -race; the exactly-once assertions below catch the double-release
// even without the race detector.
func TestStandingQueryConcurrentAdvance(t *testing.T) {
	s := countScene(200)
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 10)
	prog, err := query.Parse(standingQuery)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := e.Standing(prog)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC)

	// 8 goroutines advance to the same instant: all four hourly
	// buckets have elapsed, and across every result each bucket must
	// appear exactly once.
	const workers = 8
	results := make([]*Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := sq.Advance(start.Add(5 * time.Hour))
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			results[w] = res
		}(w)
	}
	wg.Wait()

	total, eps := 0, 0.0
	for _, res := range results {
		if res == nil {
			continue
		}
		total += len(res.Releases)
		eps += res.EpsilonSpent
	}
	if total != 4 {
		t.Errorf("concurrent advances released %d buckets in total, want 4 (exactly once)", total)
	}
	if sq.Released() != 4 {
		t.Errorf("Released()=%d, want 4", sq.Released())
	}
	// Budget side of exactly-once: hour 0's frames carry a single 0.25
	// charge (the default ε=1 split across 4 buckets), not one per
	// racing worker.
	rem, err := e.Remaining("camA", 10000)
	if err != nil {
		t.Fatal(err)
	}
	if rem != 10-0.25 {
		t.Errorf("remaining=%v, want 9.75 (single charge)", rem)
	}
}

func TestStandingQueryDenialRetry(t *testing.T) {
	s := countScene(200)
	// Budget allows the per-bucket charge (0.25) but we drain hour 2
	// (8-9am) first with a one-off query. The standing query's hour-0
	// bucket is then fine, but the hour-1 bucket's rho margin reaches
	// into the drained hour and is denied — verify the denial did not
	// mark hour 1 as released.
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 1)
	drain := `
SPLIT camA BEGIN 03-15-2021/8:00am END 03-15-2021/9:00am
  BY TIME 30sec STRIDE 0sec INTO chunks;
PROCESS chunks USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.9;`
	progDrain, err := query.Parse(drain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(progDrain); err != nil {
		t.Fatal(err)
	}
	prog, err := query.Parse(standingQuery)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := e.Standing(prog)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC)
	// Hour 0 fits (0.25 <= 1.0 budget)...
	res, err := sq.Advance(start.Add(61 * time.Minute))
	if err != nil {
		t.Fatalf("hour-0 advance: %v", err)
	}
	if len(res.Releases) != 1 {
		t.Fatalf("hour-0 releases=%d", len(res.Releases))
	}
	// ...hour 1 is denied (0.9 + 0.25 > 1.0), atomically.
	if _, err := sq.Advance(start.Add(2*time.Hour + time.Minute)); err == nil {
		t.Fatalf("hour-1 advance should be denied")
	}
	// The denial must not have marked hour 1 released.
	if sq.Released() != 1 {
		t.Errorf("Released()=%d after denial, want 1", sq.Released())
	}
}

// TestStandingQueryRestartChaos is the crash-recovery half of the
// standing-query contract: releases and charges stay exactly-once even
// when the engine restarts between windows while concurrent Advance
// calls race. Incarnation 1 races 8 workers to the hour-0 boundary,
// the engine is closed and reopened over the same WAL, the released
// set is restored (the serving layer's responsibility — see
// internal/sim for the full-stack version), and incarnation 2 races 8
// workers to the end. Every hourly bucket must be released exactly
// once across both incarnations and every frame charged exactly once.
func TestStandingQueryRestartChaos(t *testing.T) {
	dir := t.TempDir()
	s := countScene(200)
	open := func() *Engine {
		t.Helper()
		e, err := Open(Options{Seed: 1, Evaluation: true, StateDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterCamera(CameraConfig{
			Name:    "camA",
			Source:  &video.SceneSource{Camera: "camA", Scene: s},
			Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
			Epsilon: 10,
		}); err != nil {
			t.Fatal(err)
		}
		if err := e.Registry().Register("counter", countNewEntrants); err != nil {
			t.Fatal(err)
		}
		return e
	}
	prog, err := query.Parse(standingQuery)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC)

	race := func(sq *StandingQuery, at time.Time) map[string]int {
		t.Helper()
		const workers = 8
		var mu sync.Mutex
		seen := map[string]int{}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := sq.Advance(at)
				if err != nil {
					t.Errorf("advance to %v: %v", at, err)
					return
				}
				mu.Lock()
				for _, rel := range res.Releases {
					seen[rel.Key.Key()]++
				}
				mu.Unlock()
			}()
		}
		wg.Wait()
		return seen
	}

	e1 := open()
	sq1, err := e1.Standing(prog)
	if err != nil {
		t.Fatal(err)
	}
	first := race(sq1, start.Add(61*time.Minute))
	if len(first) != 1 {
		t.Fatalf("incarnation 1 released %d buckets, want 1 (hour 0)", len(first))
	}
	keys := sq1.ReleasedKeys()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := open()
	defer e2.Close()
	sq2, err := e2.Standing(prog)
	if err != nil {
		t.Fatal(err)
	}
	sq2.RestoreReleased(keys...)
	second := race(sq2, start.Add(5*time.Hour))

	// Exactly-once across incarnations: 4 distinct buckets, none
	// released twice, none re-released after the restart.
	all := map[string]int{}
	for k, n := range first {
		all[k] += n
	}
	for k, n := range second {
		all[k] += n
	}
	if len(all) != 4 {
		t.Errorf("released %d distinct buckets across restart, want 4", len(all))
	}
	for k, n := range all {
		if n != 1 {
			t.Errorf("bucket %q released %d times across restart, want 1", k, n)
		}
	}

	// Exactly-once charges: the recovered hour-0 charge survived the
	// restart and was not duplicated; hours 1-3 carry exactly one
	// post-restart charge each (0.25 = default ε 1.0 over 4 buckets).
	for hour := int64(0); hour < 4; hour++ {
		rem, err := e2.Remaining("camA", hour*36000+10000)
		if err != nil {
			t.Fatal(err)
		}
		if rem != 10-0.25 {
			t.Errorf("hour %d: remaining=%v, want 9.75 (single charge across restart)", hour, rem)
		}
	}
}
