package core

import (
	"sync"
	"testing"
	"time"

	"privid/internal/policy"
	"privid/internal/query"
)

const standingQuery = `
SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/10:00am
  BY TIME 30sec STRIDE 0sec INTO chunks;
PROCESS chunks USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM (SELECT bin(chunk, 3600) AS hr FROM t) GROUP BY hr;`

func TestStandingQueryIncrementalReleases(t *testing.T) {
	s := countScene(200)
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 10)
	prog, err := query.Parse(standingQuery)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := e.Standing(prog)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC)

	// Nothing has elapsed yet.
	res, err := sq.Advance(start.Add(30 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 0 {
		t.Fatalf("early advance released %d values", len(res.Releases))
	}

	// The first hour completes.
	res, err = sq.Advance(start.Add(61 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 1 {
		t.Fatalf("after 1h: %d releases, want 1", len(res.Releases))
	}
	if res.Releases[0].Raw != 60 { // one entrant per minute
		t.Errorf("hour-0 raw=%v, want 60", res.Releases[0].Raw)
	}

	// Re-advancing to the same point releases nothing new (and
	// consumes nothing).
	res, err = sq.Advance(start.Add(61 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 0 || res.EpsilonSpent != 0 {
		t.Fatalf("idempotent advance released %d values, spent %v", len(res.Releases), res.EpsilonSpent)
	}

	// Jumping to the end releases the remaining three hours at once.
	res, err = sq.Advance(start.Add(5 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 3 {
		t.Fatalf("final advance: %d releases, want 3", len(res.Releases))
	}
	if sq.Released() != 4 {
		t.Errorf("Released()=%d, want 4", sq.Released())
	}
}

func TestStandingQueryBudgetChargedOnce(t *testing.T) {
	s := countScene(200)
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 10)
	prog, err := query.Parse(standingQuery)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := e.Standing(prog)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC)
	for i := 1; i <= 8; i++ {
		if _, err := sq.Advance(start.Add(time.Duration(i) * 30 * time.Minute)); err != nil {
			t.Fatalf("advance %d: %v", i, err)
		}
	}
	// Each frame of hour 0 was charged exactly once, by its own
	// release (0.25 of the default 1.0 split across 4 buckets).
	rem, err := e.Remaining("camA", 10000) // frame within hour 0
	if err != nil {
		t.Fatal(err)
	}
	if rem != 10-0.25 {
		t.Errorf("remaining=%v, want 9.75 (single charge)", rem)
	}
}

// TestStandingQueryConcurrentAdvance is the regression test for the
// Advance race: unsynchronized concurrent Advance calls raced on the
// released map and newly slice, and could both see the same elapsed
// bucket as unreleased — emitting and charging it twice. Run under
// -race; the exactly-once assertions below catch the double-release
// even without the race detector.
func TestStandingQueryConcurrentAdvance(t *testing.T) {
	s := countScene(200)
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 10)
	prog, err := query.Parse(standingQuery)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := e.Standing(prog)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC)

	// 8 goroutines advance to the same instant: all four hourly
	// buckets have elapsed, and across every result each bucket must
	// appear exactly once.
	const workers = 8
	results := make([]*Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := sq.Advance(start.Add(5 * time.Hour))
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			results[w] = res
		}(w)
	}
	wg.Wait()

	total, eps := 0, 0.0
	for _, res := range results {
		if res == nil {
			continue
		}
		total += len(res.Releases)
		eps += res.EpsilonSpent
	}
	if total != 4 {
		t.Errorf("concurrent advances released %d buckets in total, want 4 (exactly once)", total)
	}
	if sq.Released() != 4 {
		t.Errorf("Released()=%d, want 4", sq.Released())
	}
	// Budget side of exactly-once: hour 0's frames carry a single 0.25
	// charge (the default ε=1 split across 4 buckets), not one per
	// racing worker.
	rem, err := e.Remaining("camA", 10000)
	if err != nil {
		t.Fatal(err)
	}
	if rem != 10-0.25 {
		t.Errorf("remaining=%v, want 9.75 (single charge)", rem)
	}
}

func TestStandingQueryDenialRetry(t *testing.T) {
	s := countScene(200)
	// Budget allows the per-bucket charge (0.25) but we drain hour 2
	// (8-9am) first with a one-off query. The standing query's hour-0
	// bucket is then fine, but the hour-1 bucket's rho margin reaches
	// into the drained hour and is denied — verify the denial did not
	// mark hour 1 as released.
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 1)
	drain := `
SPLIT camA BEGIN 03-15-2021/8:00am END 03-15-2021/9:00am
  BY TIME 30sec STRIDE 0sec INTO chunks;
PROCESS chunks USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.9;`
	progDrain, err := query.Parse(drain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(progDrain); err != nil {
		t.Fatal(err)
	}
	prog, err := query.Parse(standingQuery)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := e.Standing(prog)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC)
	// Hour 0 fits (0.25 <= 1.0 budget)...
	res, err := sq.Advance(start.Add(61 * time.Minute))
	if err != nil {
		t.Fatalf("hour-0 advance: %v", err)
	}
	if len(res.Releases) != 1 {
		t.Fatalf("hour-0 releases=%d", len(res.Releases))
	}
	// ...hour 1 is denied (0.9 + 0.25 > 1.0), atomically.
	if _, err := sq.Advance(start.Add(2*time.Hour + time.Minute)); err == nil {
		t.Fatalf("hour-1 advance should be denied")
	}
	// The denial must not have marked hour 1 released.
	if sq.Released() != 1 {
		t.Errorf("Released()=%d after denial, want 1", sq.Released())
	}
}
