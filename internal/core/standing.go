package core

import (
	"fmt"
	"sync"
	"time"

	"privid/internal/query"
	"privid/internal/rel"
)

// StandingQuery is a long-running query over live video (Appendix D:
// SPLIT windows "may be in the past or future... any values that
// depend upon future timestamps will be released as soon as possible
// after all of the timestamps needed have elapsed").
//
// Each Advance releases — and pays budget for — exactly the data
// releases whose time span has fully elapsed and that have not been
// released before, so a standing hourly count over a year consumes
// each hour's budget once, as that hour's video arrives.
//
// Concurrency: StandingQuery is safe for concurrent use. Advance calls
// are serialized by an internal mutex — two Advance calls racing at
// the same `now` must not both see a bucket as unreleased, charge its
// budget twice, and emit it twice. Serialization is the correctness
// contract, not an implementation detail: exactly-once release is only
// defined with respect to a total order of Advance calls.
type StandingQuery struct {
	engine *Engine
	prog   *query.Program

	// mu serializes Advance end to end. The filter callback passed to
	// execute reads released and appends to the call's newly slice;
	// two concurrent Advances race on both — a data race on the map,
	// and even with a per-access map lock both would see an elapsed
	// bucket as unreleased before either marks it, releasing and
	// charging it twice. Only whole-call serialization makes
	// exactly-once hold.
	mu       sync.Mutex
	released map[string]bool
}

// Standing prepares a standing query. The program must use trusted
// time-bucket grouping (bin/hour/day of chunk) or explicit keys so its
// release set is data-independent; any program Execute accepts works.
func (e *Engine) Standing(prog *query.Program) (*StandingQuery, error) {
	if prog == nil || len(prog.Selects) == 0 {
		return nil, fmt.Errorf("core: standing query needs at least one SELECT")
	}
	return &StandingQuery{
		engine:   e,
		prog:     prog,
		released: map[string]bool{},
	}, nil
}

// releaseKey identifies one release across Advance calls.
func releaseKey(r rel.Release) string {
	return r.Desc + "\x00" + r.Key.Key()
}

// Advance processes video up to `now` and returns the newly completed
// releases. Releases whose span extends past `now` stay pending; each
// release is returned (and charged) exactly once across the query's
// lifetime — including when Advance is called concurrently. Calling
// Advance with non-increasing times is allowed — nothing new is
// released.
func (sq *StandingQuery) Advance(now time.Time) (*Result, error) {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	var newly []string
	res, err := sq.engine.execute(sq.prog, "", func(r rel.Release) bool {
		if r.End.After(now) {
			return false // bucket still accumulating
		}
		k := releaseKey(r)
		if sq.released[k] {
			return false
		}
		newly = append(newly, k)
		return true
	}, nil)
	if err != nil {
		return nil, err
	}
	// Mark only after a fully successful (admitted) execution, so a
	// denied Advance can be retried later without losing releases.
	for _, k := range newly {
		sq.released[k] = true
	}
	return res, nil
}

// Released returns how many releases the standing query has emitted so
// far.
func (sq *StandingQuery) Released() int {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	return len(sq.released)
}

// ReleasedKeys snapshots the identities of every release emitted so
// far, for persisting across an engine restart. Feed the snapshot to
// RestoreReleased on the standing query rebuilt against the reopened
// engine; without it the new query would re-release (and re-charge)
// every elapsed bucket. Order is unspecified.
func (sq *StandingQuery) ReleasedKeys() []string {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	keys := make([]string, 0, len(sq.released))
	for k := range sq.released {
		keys = append(keys, k)
	}
	return keys
}

// RestoreReleased marks keys (from a prior ReleasedKeys snapshot) as
// already released, so Advance skips — and never re-charges — them.
// The budget itself survives restarts through the WAL; this restores
// the release-set half of exactly-once.
func (sq *StandingQuery) RestoreReleased(keys ...string) {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	for _, k := range keys {
		sq.released[k] = true
	}
}
