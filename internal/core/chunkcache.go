package core

import (
	"fmt"
	"strings"
	"time"

	"privid/internal/table"
	"privid/internal/vtime"
)

// chunkKeyPrefix builds the cache-key prefix shared by every chunk of
// one (SPLIT, PROCESS) pair over one region source. Together with the
// per-chunk suffix it captures everything the sandbox's output may
// legitimately depend on:
//
//   - the frames the executable sees: camera, mask, region scheme and
//     region name, and (via the suffix) the absolute frame interval;
//   - the executable itself and its contract limits: TIMEOUT, max
//     rows, and the declared schema (types and default values shape
//     conformed rows).
//
// Chunk and stride lengths are included conservatively even though the
// absolute frame interval already pins the content, so distinct
// chunking grids never share entries. The one chunk field deliberately
// excluded is Ordinal: it is positional metadata whose numbering
// shifts between overlapping SPLIT windows covering identical frames,
// and a conforming ProcessFunc (a pure function of the chunk's frames,
// Appendix B) cannot encode it in its rows. Keying on content rather
// than position is what lets overlapping windows reuse each other's
// work.
func chunkKeyPrefix(camera, maskID, schemeName, region, using string,
	timeout time.Duration, maxRows int, schema table.Schema,
	chunkF, strideF int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%q|%q|%q|%q|%q|%d|%d|%d|%d|",
		camera, maskID, schemeName, region, using,
		timeout, maxRows, chunkF, strideF)
	for _, c := range schema.Cols {
		fmt.Fprintf(&b, "%q:%d:%q;", c.Name, c.Type, c.Default.Key())
	}
	return b.String()
}

// chunkKeySuffix identifies one chunk within a prefix by its absolute
// frame interval.
func chunkKeySuffix(iv vtime.Interval) string {
	return fmt.Sprintf("|%d-%d", iv.Start, iv.End)
}

// stateKey keys one partial aggregate state in the chunk cache: the
// aggregation plan's versioned identity (rel.PartialPlan.ID) composed
// with the chunk's full content-identity key. Two queries share a state
// entry exactly when the same chunk content would feed the same fold —
// same executable/contract (the chunk key) and same canonical
// aggregation chain (the plan ID). Plan IDs start with their codec
// version tag ("pps1|…") while table keys start with a quoted camera
// name, so the two kinds can never collide in the shared store.
func stateKey(planID, chunkKey string) string {
	return planID + chunkKey
}
