// Package core is the Privid engine: it registers cameras with their
// privacy policies, budgets, mask policy maps and region schemes, and
// executes analyst queries end to end per Algorithm 1 — budget
// admission with the ρ margin, temporal (and optional spatial)
// splitting, sandboxed processing into untrusted intermediate tables,
// SQL aggregation with the Fig. 10 sensitivity calculus, and Laplace
// noise on every data release.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"privid/internal/cache"
	"privid/internal/dp"
	"privid/internal/mask"
	"privid/internal/obs"
	"privid/internal/policy"
	"privid/internal/region"
	"privid/internal/sandbox"
	"privid/internal/store"
	"privid/internal/video"
	"privid/internal/vtime"
)

// CameraConfig registers one camera with the engine. All fields except
// Schemes and Policies are required.
type CameraConfig struct {
	Name   string
	Source video.Source
	// Policy is the camera's default (no-mask) privacy policy (ρ, K).
	Policy policy.Policy
	// Epsilon is the per-frame privacy budget εC (§6.4).
	Epsilon float64
	// Policies optionally maps published mask IDs to (mask, policy)
	// pairs (§7.1, Appendix F.2). Queries choose a mask with
	// WITH MASK <id>.
	Policies *mask.PolicyMap
	// Schemes optionally lists spatial-splitting schemes (§7.2).
	// Queries choose one with BY REGION <name>.
	Schemes map[string]region.Scheme
	// GridSchemes optionally lists Grid Split schemes (§7.2's
	// extension): uniform grids usable with any chunk size, whose
	// sensitivity impact is derived from the owner's object-size and
	// speed bounds. Names share the BY REGION namespace with Schemes.
	GridSchemes map[string]region.GridScheme
}

// Options configure an Engine.
type Options struct {
	// Seed drives the Laplace sampler (deterministic for experiments;
	// a deployment would use a cryptographically secure source).
	Seed int64
	// DefaultQueryEpsilon is the total budget a SELECT consumes when
	// it carries no CONSUMING directive; it is divided evenly across
	// the SELECT's releases. The paper's evaluation uses ε = 1 per
	// query.
	DefaultQueryEpsilon float64
	// Evaluation additionally reports each release's raw (pre-noise)
	// value. It exists only for accuracy studies against a non-private
	// baseline and must be off in any real deployment.
	Evaluation bool
	// Parallelism bounds concurrent sandbox chunk executions
	// engine-wide — across all queries executing at once, not per
	// query — so a serving layer running many workers cannot
	// oversubscribe the CPU and push executables past their wall-clock
	// TIMEOUT. 0 (the default) uses runtime.GOMAXPROCS(0); set 1
	// explicitly to force serial processing.
	Parallelism int
	// PerCameraParallelism bounds concurrent sandbox executions within
	// one camera shard of a multi-camera chunk set, so one camera's
	// chunks cannot monopolize the pool while sibling shards starve
	// (real deployments are also limited per camera by stream decode
	// capacity). 0 (the default) uses Parallelism; values above
	// Parallelism are clamped to it. Single-camera chunk sets always
	// use the full Parallelism.
	PerCameraParallelism int
	// SerialShards disables the sharded fan-out: the camera shards of
	// a multi-camera chunk set are processed one after another, each
	// still using PerCameraParallelism for its own chunks. It exists
	// as the benchmark baseline (BenchmarkMultiCamera_Serial) and as a
	// debugging escape hatch; leave it false in deployments.
	SerialShards bool
	// DefaultProcessTimeout is the effective per-chunk TIMEOUT applied
	// when a PROCESS statement carries none. The parser rejects
	// TIMEOUT <= 0, so this only matters for programmatically built
	// query.Programs — but for those, a zero timeout would let a hung
	// ProcessFunc block its sandbox goroutine forever and permanently
	// leak a Parallelism slot (the grace backstop scales off the
	// timeout, so it could never arm). <= 0 (the default) uses
	// defaultProcessTimeout. The statement's own TIMEOUT, when
	// positive, always wins.
	DefaultProcessTimeout time.Duration
	// ChunkCacheBytes bounds the in-memory cache of per-chunk PROCESS
	// results (approximate bytes). 0 (the default) uses
	// DefaultChunkCacheBytes; a negative value disables caching
	// entirely. The cache memoizes sandbox output only — see
	// internal/cache for why a hit can never change budget admission,
	// ε accounting, or noise.
	ChunkCacheBytes int64
	// DiskCacheDir enables the tier-2 chunk cache: an append-only,
	// CRC-framed segment store under this directory that persists
	// memoized PROCESS results across restarts. Lookups fall through
	// RAM to disk, and disk hits are promoted back into RAM. Empty
	// (the default) keeps the cache RAM-only. Combining a negative
	// ChunkCacheBytes with a DiskCacheDir yields a disk-only cache.
	DiskCacheDir string
	// DiskCacheBytes bounds the tier-2 store (approximate bytes;
	// whole oldest segments are deleted to respect it). 0 uses
	// DefaultDiskCacheBytes. Ignored when DiskCacheDir is empty.
	DiskCacheBytes int64
	// DisablePartialPushdown turns off aggregation pushdown: every
	// PROCESS materializes its full intermediate table and every SELECT
	// aggregates row-major, as before partial states existed. It exists
	// as a benchmark baseline and a debugging escape hatch; leave it
	// false in deployments. Pushdown never changes results — the
	// streaming-merge path is differentially tested against the
	// materialized path — only peak memory and warm-query latency.
	DisablePartialPushdown bool
	// StateDir enables the durable privacy ledger: every admitted
	// charge is written to a write-ahead log under this directory and
	// fsynced before the noised result is released, and Open recovers
	// per-camera spent budgets, the audit log and terminal job records
	// from it, so a process restart cannot refill any camera's budget.
	// Empty (the default) keeps the pre-durability in-memory behavior.
	// See DESIGN.md §"Durability & the privacy ledger".
	StateDir string
	// RepairState truncates a torn or corrupt WAL tail to the last
	// valid record when opening StateDir instead of refusing to start
	// (the -repair server flag).
	RepairState bool
	// SnapshotEvery compacts the WAL (snapshot + new generation) after
	// this many records. 0 uses the store default (4096); negative
	// disables automatic compaction.
	SnapshotEvery int
	// WrapWALFile, when non-nil, wraps the WAL's file handle on open
	// (and again after each compaction). It plumbs through to
	// store.Options.WrapFile and exists for fault injection — the
	// chaos harness installs a storetest.FaultyFile here to tear
	// commits under a live engine. Only meaningful with StateDir.
	WrapWALFile func(store.File) store.File
	// Store overrides the durable store entirely (fault-injection
	// tests). Takes precedence over StateDir; no recovery is
	// performed.
	Store store.Store
	// Metrics supplies the metrics registry the engine instruments
	// itself into — share one registry between the engine and a serving
	// layer so scheduler and engine families render in one exposition.
	// Nil creates a fresh registry unless DisableMetrics is set.
	Metrics *obs.Registry
	// DisableMetrics turns off all metrics instrumentation (nil
	// registry: every instrument call becomes a nil-receiver no-op).
	// Exists for overhead baselines (BenchmarkObsOverhead) and
	// minimal-footprint library use; leave it false in deployments.
	DisableMetrics bool
	// Now overrides the audit-log clock (tests only; nil = time.Now).
	Now func() time.Time
}

// DefaultChunkCacheBytes is the chunk-result cache bound used when
// Options.ChunkCacheBytes is 0.
const DefaultChunkCacheBytes = 64 << 20

// DefaultDiskCacheBytes is the tier-2 disk cache bound used when
// Options.DiskCacheDir is set and Options.DiskCacheBytes is 0.
const DefaultDiskCacheBytes = 256 << 20

// defaultProcessTimeout is the effective chunk timeout used when both
// the PROCESS statement and Options.DefaultProcessTimeout leave it
// unset. Generous — it exists to bound hung executables, not to police
// slow ones.
const defaultProcessTimeout = 30 * time.Second

// Engine is a Privid deployment: a set of cameras and a registry of
// analyst executables. Engines are safe for concurrent query
// execution; budget admission is serialized.
type Engine struct {
	opts       Options
	registry   *sandbox.Registry
	chunkCache cache.Cache // nil when caching is disabled
	// flight coalesces concurrent cache misses on the same chunk key
	// onto one sandbox execution. nil exactly when chunkCache is nil:
	// flights are keyed by the cache's content-identity chunk key, so
	// without a cache there is nothing sound to coalesce on.
	flight *cache.Flight
	// procSem bounds concurrent sandbox executions engine-wide (size
	// Options.Parallelism). Cache hits bypass it.
	procSem chan struct{}
	// store persists charges, audit entries and terminal jobs; always
	// non-nil (store.NullStore when durability is off). wal is the
	// concrete WAL when StateDir is set (recovery and snapshots).
	store store.Store
	wal   *store.WAL
	// metrics is the exposition registry (nil with DisableMetrics); met
	// holds the hot-path instruments (always non-nil, fields no-op when
	// metrics are disabled).
	metrics *obs.Registry
	met     *engineMetrics

	// Partial-aggregation pushdown tallies (atomic: the streaming shard
	// workers bump them concurrently). See PartialAggStats.
	ppPlans, ppDeclined, ppFolds, ppMerges, ppCachedChunks atomic.Uint64

	mu      sync.Mutex
	cameras map[string]*camera
	noise   *dp.Noise
	audit   []AuditEntry
}

type camera struct {
	cfg    CameraConfig
	ledger *dp.Ledger
}

// New returns an engine with no cameras. It panics if Options demand
// durable state that cannot be opened — only possible with StateDir
// set; use Open to handle recovery errors (torn WAL, bad directory)
// gracefully.
func New(opts Options) *Engine {
	e, err := Open(opts)
	if err != nil {
		panic(fmt.Sprintf("core: New: %v (use core.Open to handle state-recovery errors)", err))
	}
	return e
}

// Open returns an engine with no cameras, opening and recovering the
// durable state layer when Options.StateDir is set: per-camera spent
// budgets replay from the last snapshot plus the WAL, the audit log is
// restored, and terminal job records become available to the serving
// layer (RecoveredJobs). A torn or corrupt WAL refuses to open unless
// RepairState truncates it to the last valid record.
func Open(opts Options) (*Engine, error) {
	if opts.DefaultQueryEpsilon <= 0 {
		opts.DefaultQueryEpsilon = 1.0
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	if opts.PerCameraParallelism < 1 || opts.PerCameraParallelism > opts.Parallelism {
		opts.PerCameraParallelism = opts.Parallelism
	}
	if opts.ChunkCacheBytes == 0 {
		opts.ChunkCacheBytes = DefaultChunkCacheBytes
	}
	if opts.DiskCacheDir != "" && opts.DiskCacheBytes == 0 {
		opts.DiskCacheBytes = DefaultDiskCacheBytes
	}
	if opts.DefaultProcessTimeout <= 0 {
		opts.DefaultProcessTimeout = defaultProcessTimeout
	}
	// Assemble the chunk cache tiers. The interface field stays a true
	// nil when no tier is configured (never a typed nil), so the
	// hot-path nil checks in runShard remain valid.
	var mem *cache.LRU
	if opts.ChunkCacheBytes > 0 {
		mem = cache.New(opts.ChunkCacheBytes)
	}
	var diskTier *cache.Disk
	if opts.DiskCacheDir != "" {
		d, err := cache.OpenDisk(opts.DiskCacheDir, opts.DiskCacheBytes)
		if err != nil {
			return nil, fmt.Errorf("core: open disk cache: %w", err)
		}
		diskTier = d
	}
	var cc cache.Cache
	switch {
	case mem != nil && diskTier != nil:
		cc = cache.NewTiered(mem, diskTier)
	case mem != nil:
		cc = mem
	case diskTier != nil:
		cc = cache.NewTiered(nil, diskTier)
	}
	reg := opts.Metrics
	if opts.DisableMetrics {
		reg = nil
	} else if reg == nil {
		reg = obs.NewRegistry()
	}
	st := store.Store(store.NullStore{})
	var wal *store.WAL
	switch {
	case opts.Store != nil:
		st = opts.Store
	case opts.StateDir != "":
		if opts.RepairState {
			if _, err := store.Repair(opts.StateDir); err != nil {
				return nil, fmt.Errorf("core: repair state dir: %w", err)
			}
		}
		w, err := store.Open(opts.StateDir, store.Options{
			GroupCommit:   true,
			SnapshotEvery: opts.SnapshotEvery,
			WrapFile:      opts.WrapWALFile,
			Metrics:       storeMetrics(reg),
		})
		if err != nil {
			return nil, fmt.Errorf("core: open state dir: %w", err)
		}
		wal = w
		st = w
	}
	e := &Engine{
		opts:       opts,
		registry:   sandbox.NewRegistry(),
		chunkCache: cc,
		flight:     newFlightFor(cc),
		procSem:    make(chan struct{}, opts.Parallelism),
		store:      st,
		wal:        wal,
		metrics:    reg,
		met:        newEngineMetrics(reg),
		cameras:    map[string]*camera{},
		noise:      dp.NewNoise(opts.Seed),
	}
	if wal != nil {
		// Restore the owner's audit log so accountability spans
		// restarts.
		for _, ar := range wal.AuditEntries() {
			e.audit = append(e.audit, AuditEntry{
				At:           ar.At,
				Cameras:      ar.Cameras,
				Releases:     ar.Releases,
				EpsilonSpent: ar.EpsilonSpent,
				Denied:       ar.Denied,
				Reason:       ar.Reason,
			})
		}
	}
	if reg != nil {
		e.registerCollectors(reg)
	}
	return e, nil
}

// Close takes a final snapshot of the durable state (when enabled) and
// closes the store, then writes a final metrics exposition to
// StateDir/metrics.prom (best-effort) so the last scrape interval's
// counters survive shutdown. The engine must be idle: callers drain
// their scheduler first. The metrics registry stays scrapeable after
// Close — every collector reads state that remains valid on a closed
// engine.
func (e *Engine) Close() error {
	err := e.store.Close()
	if e.chunkCache != nil {
		// Sync and unmap the disk cache tier (no-op for RAM-only).
		if cerr := e.chunkCache.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if e.metrics != nil && e.opts.StateDir != "" {
		// Best-effort: the snapshot is diagnostic and never fails Close.
		if f, ferr := os.Create(filepath.Join(e.opts.StateDir, "metrics.prom")); ferr == nil {
			_, _ = e.metrics.WriteTo(f)
			_ = f.Close()
		}
	}
	return err
}

// Metrics returns the engine's metrics registry (nil when Options
// disabled metrics). Serving layers register their own families in it
// and expose it at /v1/metrics.
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// StateStore returns the engine's durable store — store.NullStore when
// durability is off — for co-located serving layers (the scheduler
// persists terminal jobs through it so polls resolve across restarts).
func (e *Engine) StateStore() store.Store { return e.store }

// RecoveredJobs returns the terminal job records recovered from the
// state dir (nil without one).
func (e *Engine) RecoveredJobs() []store.JobRecord {
	if e.wal == nil {
		return nil
	}
	return e.wal.Jobs()
}

// StateInfo describes the engine's durable state layer, for the
// serving layer's inspection endpoint.
type StateInfo struct {
	// Durable reports whether commits outlive the process.
	Durable bool
	// Dir is the state directory ("" for NullStore or injected
	// stores).
	Dir string
	// Generation is the active WAL generation (advances on every
	// compaction).
	Generation int64
	// WALBytes is the active log generation's size.
	WALBytes int64
	// RecordsSinceSnapshot counts WAL records the next compaction will
	// fold into the snapshot.
	RecordsSinceSnapshot int64
	// Snapshots counts compactions taken by this process.
	Snapshots int64
	// LastSnapshot is the newest compaction's timestamp (zero when
	// none yet).
	LastSnapshot time.Time
	// LastSnapshotError is the most recent automatic-compaction
	// failure ("" when healthy); the commit that triggered it still
	// succeeded.
	LastSnapshotError string
	// Cameras counts cameras with persisted charges.
	Cameras int
	// Jobs and AuditEntries count retained durable records.
	Jobs         int
	AuditEntries int
}

// StateInfo returns a snapshot of the durable state layer's status.
func (e *Engine) StateInfo() StateInfo {
	if e.wal == nil {
		_, isNull := e.store.(store.NullStore)
		return StateInfo{Durable: !isNull}
	}
	wi := e.wal.Info()
	return StateInfo{
		Durable:              true,
		Dir:                  wi.Dir,
		Generation:           wi.Gen,
		WALBytes:             wi.WALBytes,
		RecordsSinceSnapshot: wi.RecordsSinceSnapshot,
		Snapshots:            wi.Snapshots,
		LastSnapshot:         wi.LastSnapshot,
		LastSnapshotError:    wi.LastSnapshotError,
		Cameras:              wi.Cameras,
		Jobs:                 wi.Jobs,
		AuditEntries:         wi.AuditEntries,
	}
}

// newFlightFor returns a Flight when chunk caching is on, nil
// otherwise.
func newFlightFor(cc cache.Cache) *cache.Flight {
	if cc == nil {
		return nil
	}
	return cache.NewFlight()
}

// CacheStats returns a snapshot of the chunk-result cache counters
// (zero-valued when caching is disabled).
func (e *Engine) CacheStats() cache.Stats {
	if e.chunkCache == nil {
		return cache.Stats{}
	}
	return e.chunkCache.Stats()
}

// FlightStats returns a snapshot of the chunk singleflight counters
// (zero-valued when caching — and with it coalescing — is disabled).
func (e *Engine) FlightStats() cache.FlightStats {
	if e.flight == nil {
		return cache.FlightStats{}
	}
	return e.flight.Stats()
}

// PartialAggStats is a snapshot of the aggregation-pushdown counters:
// how often PROCESS tables streamed into mergeable partial states
// instead of materializing rows, and how much per-chunk work the
// partial-state cache tier absorbed.
type PartialAggStats struct {
	// Plans counts pushdown plans built (one per eligible SELECT per
	// PROCESS execution).
	Plans uint64
	// Declined counts PROCESS executions that had pushdown candidates
	// but fell back to full materialization because at least one
	// consuming SELECT was not mergeable.
	Declined uint64
	// Folds counts per-chunk fold operations (chunk table → partial
	// state).
	Folds uint64
	// Merges counts partial-state merge operations.
	Merges uint64
	// CachedChunks counts chunks whose every plan's state came from the
	// partial-state cache — no sandbox execution, no fold.
	CachedChunks uint64
	// StateHits/StateMisses/StatePuts are the partial-state cache
	// tier's counters (per plan × chunk lookups, from the chunk cache).
	StateHits, StateMisses, StatePuts uint64
}

// PartialStats returns a snapshot of the aggregation-pushdown counters.
func (e *Engine) PartialStats() PartialAggStats {
	s := PartialAggStats{
		Plans:        e.ppPlans.Load(),
		Declined:     e.ppDeclined.Load(),
		Folds:        e.ppFolds.Load(),
		Merges:       e.ppMerges.Load(),
		CachedChunks: e.ppCachedChunks.Load(),
	}
	if e.chunkCache != nil {
		cs := e.chunkCache.Stats()
		s.StateHits, s.StateMisses, s.StatePuts = cs.StateHits, cs.StateMisses, cs.StatePuts
	}
	return s
}

// CameraInfo is the owner-visible description of one registered camera,
// for deployment listings (the serving layer's camera endpoint).
type CameraInfo struct {
	Name    string
	W, H    float64
	FPS     vtime.FrameRate
	Start   time.Time
	Frames  int64
	Epsilon float64
	Policy  policy.Policy
	// Masks lists the published mask IDs analysts may name in WITH MASK.
	Masks []string
	// Schemes lists the spatial-splitting scheme names (region and grid
	// schemes share the BY REGION namespace).
	Schemes []string
}

// Cameras describes every registered camera, sorted by name.
func (e *Engine) Cameras() []CameraInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]CameraInfo, 0, len(e.cameras))
	for _, cam := range e.cameras {
		info := cam.cfg.Source.Info()
		ci := CameraInfo{
			Name:    cam.cfg.Name,
			W:       info.W,
			H:       info.H,
			FPS:     info.FPS,
			Start:   info.Start,
			Frames:  info.Frames,
			Epsilon: cam.cfg.Epsilon,
			Policy:  cam.cfg.Policy,
		}
		if cam.cfg.Policies != nil {
			for _, entry := range cam.cfg.Policies.Entries {
				ci.Masks = append(ci.Masks, entry.ID)
			}
		}
		for name := range cam.cfg.Schemes {
			ci.Schemes = append(ci.Schemes, name)
		}
		for name := range cam.cfg.GridSchemes {
			ci.Schemes = append(ci.Schemes, name)
		}
		sort.Strings(ci.Schemes)
		out = append(out, ci)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CameraBudgetStatus summarizes one camera's lifetime privacy budget
// for deployment dashboards (the serving layer's stats endpoint and the
// per-camera metrics gauges report the same numbers). Unlike
// CameraBudget it describes the camera's standing state, not one
// query's charge.
type CameraBudgetStatus struct {
	Name    string
	Epsilon float64
	// Remaining is the worst-case remaining per-frame budget over every
	// frame any query has charged or reserved (Epsilon when untouched).
	Remaining float64
}

// CameraBudgets reports each camera's configured ε and worst-case
// remaining budget, sorted by name.
func (e *Engine) CameraBudgets() []CameraBudgetStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]CameraBudgetStatus, 0, len(e.cameras))
	for _, cam := range e.cameras {
		out = append(out, CameraBudgetStatus{
			Name:      cam.cfg.Name,
			Epsilon:   cam.cfg.Epsilon,
			Remaining: cam.ledger.MinRemaining(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Registry returns the executable registry analysts register their
// processing code in.
func (e *Engine) Registry() *sandbox.Registry { return e.registry }

// RegisterCamera adds a camera. The name must be unique and the policy
// and budget valid.
func (e *Engine) RegisterCamera(cfg CameraConfig) error {
	if cfg.Name == "" {
		return fmt.Errorf("core: camera name required")
	}
	if cfg.Source == nil {
		return fmt.Errorf("core: camera %q has no source", cfg.Name)
	}
	if err := cfg.Policy.Validate(); err != nil {
		return fmt.Errorf("core: camera %q: %w", cfg.Name, err)
	}
	if cfg.Epsilon <= 0 {
		return fmt.Errorf("core: camera %q: epsilon must be positive", cfg.Name)
	}
	for name, sch := range cfg.Schemes {
		if err := sch.Validate(); err != nil {
			return fmt.Errorf("core: camera %q scheme %q: %w", cfg.Name, name, err)
		}
	}
	for name, g := range cfg.GridSchemes {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("core: camera %q grid scheme %q: %w", cfg.Name, name, err)
		}
		if _, dup := cfg.Schemes[name]; dup {
			return fmt.Errorf("core: camera %q: scheme %q defined both as region and grid scheme", cfg.Name, name)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.cameras[cfg.Name]; ok {
		return fmt.Errorf("core: camera %q already registered", cfg.Name)
	}
	led := dp.NewLedger(cfg.Name, cfg.Epsilon)
	if e.wal != nil {
		// Crash recovery: replay the camera's persisted spent budget
		// into the fresh ledger, so a restart cannot refill ε that was
		// already charged. Segments carry absolute values over
		// disjoint intervals, so this reproduces the pre-crash spent
		// function exactly.
		for _, seg := range e.wal.SpentSegments(cfg.Name) {
			led.RestoreSpent(seg.Start, seg.End, seg.Eps)
		}
	}
	e.cameras[cfg.Name] = &camera{cfg: cfg, ledger: led}
	return nil
}

// Remaining returns the remaining per-frame budget of a camera at a
// frame (for owner-side monitoring and tests).
func (e *Engine) Remaining(cameraName string, frame int64) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cam, ok := e.cameras[cameraName]
	if !ok {
		return 0, fmt.Errorf("core: unknown camera %q", cameraName)
	}
	return cam.ledger.Remaining(frame), nil
}

// lookupCamera returns a registered camera.
func (e *Engine) lookupCamera(name string) (*camera, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cam, ok := e.cameras[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown camera %q", name)
	}
	return cam, nil
}
