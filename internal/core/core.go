// Package core is the Privid engine: it registers cameras with their
// privacy policies, budgets, mask policy maps and region schemes, and
// executes analyst queries end to end per Algorithm 1 — budget
// admission with the ρ margin, temporal (and optional spatial)
// splitting, sandboxed processing into untrusted intermediate tables,
// SQL aggregation with the Fig. 10 sensitivity calculus, and Laplace
// noise on every data release.
package core

import (
	"fmt"
	"sync"
	"time"

	"privid/internal/dp"
	"privid/internal/mask"
	"privid/internal/policy"
	"privid/internal/region"
	"privid/internal/sandbox"
	"privid/internal/video"
)

// CameraConfig registers one camera with the engine. All fields except
// Schemes and Policies are required.
type CameraConfig struct {
	Name   string
	Source video.Source
	// Policy is the camera's default (no-mask) privacy policy (ρ, K).
	Policy policy.Policy
	// Epsilon is the per-frame privacy budget εC (§6.4).
	Epsilon float64
	// Policies optionally maps published mask IDs to (mask, policy)
	// pairs (§7.1, Appendix F.2). Queries choose a mask with
	// WITH MASK <id>.
	Policies *mask.PolicyMap
	// Schemes optionally lists spatial-splitting schemes (§7.2).
	// Queries choose one with BY REGION <name>.
	Schemes map[string]region.Scheme
	// GridSchemes optionally lists Grid Split schemes (§7.2's
	// extension): uniform grids usable with any chunk size, whose
	// sensitivity impact is derived from the owner's object-size and
	// speed bounds. Names share the BY REGION namespace with Schemes.
	GridSchemes map[string]region.GridScheme
}

// Options configure an Engine.
type Options struct {
	// Seed drives the Laplace sampler (deterministic for experiments;
	// a deployment would use a cryptographically secure source).
	Seed int64
	// DefaultQueryEpsilon is the total budget a SELECT consumes when
	// it carries no CONSUMING directive; it is divided evenly across
	// the SELECT's releases. The paper's evaluation uses ε = 1 per
	// query.
	DefaultQueryEpsilon float64
	// Evaluation additionally reports each release's raw (pre-noise)
	// value. It exists only for accuracy studies against a non-private
	// baseline and must be off in any real deployment.
	Evaluation bool
	// Parallelism bounds concurrent chunk processing (0 = serial).
	Parallelism int
	// Now overrides the audit-log clock (tests only; nil = time.Now).
	Now func() time.Time
}

// Engine is a Privid deployment: a set of cameras and a registry of
// analyst executables. Engines are safe for concurrent query
// execution; budget admission is serialized.
type Engine struct {
	opts     Options
	registry *sandbox.Registry

	mu      sync.Mutex
	cameras map[string]*camera
	noise   *dp.Noise
	audit   []AuditEntry
}

type camera struct {
	cfg    CameraConfig
	ledger *dp.Ledger
}

// New returns an engine with no cameras.
func New(opts Options) *Engine {
	if opts.DefaultQueryEpsilon <= 0 {
		opts.DefaultQueryEpsilon = 1.0
	}
	return &Engine{
		opts:     opts,
		registry: sandbox.NewRegistry(),
		cameras:  map[string]*camera{},
		noise:    dp.NewNoise(opts.Seed),
	}
}

// Registry returns the executable registry analysts register their
// processing code in.
func (e *Engine) Registry() *sandbox.Registry { return e.registry }

// RegisterCamera adds a camera. The name must be unique and the policy
// and budget valid.
func (e *Engine) RegisterCamera(cfg CameraConfig) error {
	if cfg.Name == "" {
		return fmt.Errorf("core: camera name required")
	}
	if cfg.Source == nil {
		return fmt.Errorf("core: camera %q has no source", cfg.Name)
	}
	if err := cfg.Policy.Validate(); err != nil {
		return fmt.Errorf("core: camera %q: %w", cfg.Name, err)
	}
	if cfg.Epsilon <= 0 {
		return fmt.Errorf("core: camera %q: epsilon must be positive", cfg.Name)
	}
	for name, sch := range cfg.Schemes {
		if err := sch.Validate(); err != nil {
			return fmt.Errorf("core: camera %q scheme %q: %w", cfg.Name, name, err)
		}
	}
	for name, g := range cfg.GridSchemes {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("core: camera %q grid scheme %q: %w", cfg.Name, name, err)
		}
		if _, dup := cfg.Schemes[name]; dup {
			return fmt.Errorf("core: camera %q: scheme %q defined both as region and grid scheme", cfg.Name, name)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.cameras[cfg.Name]; ok {
		return fmt.Errorf("core: camera %q already registered", cfg.Name)
	}
	e.cameras[cfg.Name] = &camera{
		cfg:    cfg,
		ledger: dp.NewLedger(cfg.Name, cfg.Epsilon),
	}
	return nil
}

// Remaining returns the remaining per-frame budget of a camera at a
// frame (for owner-side monitoring and tests).
func (e *Engine) Remaining(cameraName string, frame int64) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cam, ok := e.cameras[cameraName]
	if !ok {
		return 0, fmt.Errorf("core: unknown camera %q", cameraName)
	}
	return cam.ledger.Remaining(frame), nil
}

// lookupCamera returns a registered camera.
func (e *Engine) lookupCamera(name string) (*camera, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cam, ok := e.cameras[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown camera %q", name)
	}
	return cam, nil
}
