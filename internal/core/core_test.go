package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"privid/internal/dp"
	"privid/internal/geom"
	"privid/internal/mask"
	"privid/internal/policy"
	"privid/internal/query"
	"privid/internal/region"
	"privid/internal/scene"
	"privid/internal/table"
	"privid/internal/video"
)

// countScene builds a deterministic scene: `n` people, each visible
// exactly 20 s (200 frames at 10 fps), entering one per minute.
func countScene(n int) *scene.Scene {
	frames := int64(n+5) * 600
	if frames < 150000 { // at least ~4 h so multi-hour windows fit
		frames = 150000
	}
	s := &scene.Scene{
		Name: "count", W: 1000, H: 500, FPS: 10,
		Start:  time.Date(2021, 3, 15, 6, 0, 0, 0, time.UTC),
		Frames: frames,
	}
	for i := 0; i < n; i++ {
		// Offset entries off chunk boundaries: an object already
		// visible in a chunk's first frame is by design not counted
		// as a new entrant in that chunk.
		enter := int64(i)*600 + 37
		exit := enter + 200
		s.Ents = append(s.Ents, &scene.Entity{
			ID: i, Class: scene.Person,
			Appearances: []scene.Appearance{{
				Enter: enter, Exit: exit,
				Traj: scene.NewPath(enter, exit, 20, 40, 1,
					scene.Waypoint{T: 0, P: geom.Point{X: 10, Y: 250}},
					scene.Waypoint{T: 1, P: geom.Point{X: 990, Y: 250}}),
			}},
		})
	}
	s.BuildIndex()
	return s
}

// countNewEntrants is the §6.2 pattern for counting people without
// unique IDs: emit one row only for objects that enter during the
// chunk (visible in a later frame but not the first).
func countNewEntrants(chunk *video.Chunk) []table.Row {
	seen := map[int]bool{}
	for _, o := range chunk.Frame(0).Objects {
		if o.Class.Private() {
			seen[o.EntityID] = true
		}
	}
	var rows []table.Row
	counted := map[int]bool{}
	for f := int64(1); f < chunk.Len(); f++ {
		for _, o := range chunk.Frame(f).Objects {
			if !o.Class.Private() || seen[o.EntityID] || counted[o.EntityID] {
				continue
			}
			counted[o.EntityID] = true
			rows = append(rows, table.Row{table.N(1)})
		}
	}
	return rows
}

func newTestEngine(t *testing.T, s *scene.Scene, pol policy.Policy, eps float64) *Engine {
	t.Helper()
	e := New(Options{Seed: 1, Evaluation: true})
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: s},
		Policy:  pol,
		Epsilon: eps,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Registry().Register("counter", countNewEntrants); err != nil {
		t.Fatal(err)
	}
	return e
}

const countQuery = `
SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/7:00am
  BY TIME 30sec STRIDE 0sec INTO chunks;
PROCESS chunks USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t;`

func TestEndToEndCount(t *testing.T) {
	s := countScene(50)
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 10)
	prog, err := query.Parse(countQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 1 {
		t.Fatalf("%d releases", len(res.Releases))
	}
	r := res.Releases[0]
	if !r.RawSet {
		t.Fatalf("evaluation mode must expose raw")
	}
	// 50 people enter within the hour, each counted once. A person
	// visible at a chunk boundary is skipped by the entrant rule of
	// the first chunk it is already visible in, so raw == 50 exactly.
	if r.Raw != 50 {
		t.Errorf("raw=%v, want 50", r.Raw)
	}
	// Sensitivity: max_rows=20, K=1, max_chunks(25s@30s chunks)=2 -> 40.
	if r.Sensitivity != 40 {
		t.Errorf("sensitivity=%v, want 40", r.Sensitivity)
	}
	// Default budget: 1.0 for the single release.
	if r.Epsilon != 1.0 {
		t.Errorf("epsilon=%v, want 1", r.Epsilon)
	}
	if res.EpsilonSpent != 1.0 {
		t.Errorf("spent=%v", res.EpsilonSpent)
	}
	// Noise was actually applied (astronomically unlikely to be 0).
	if r.Value == r.Raw {
		t.Errorf("no noise added")
	}
}

func TestBudgetDepletionDenies(t *testing.T) {
	s := countScene(10)
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 2.5)
	prog, err := query.Parse(countQuery)
	if err != nil {
		t.Fatal(err)
	}
	// Each run consumes 1.0 of the 2.5 per-frame budget.
	for i := 0; i < 2; i++ {
		if _, err := e.Execute(prog); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	_, err = e.Execute(prog)
	var ex *dp.ErrBudgetExhausted
	if !errors.As(err, &ex) {
		t.Fatalf("third query should be denied, got %v", err)
	}
	// Denial consumed nothing: a cheaper query still fits.
	cheap := strings.Replace(countQuery, "SELECT COUNT(*) FROM t;", "SELECT COUNT(*) FROM t CONSUMING 0.5;", 1)
	prog2, err := query.Parse(cheap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(prog2); err != nil {
		t.Fatalf("cheap query after denial: %v", err)
	}
}

func TestDisjointWindowsSeparateBudgets(t *testing.T) {
	s := countScene(200) // long scene
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 1)
	q := func(beginH, endH int) string {
		return fmt.Sprintf(`
SPLIT camA BEGIN 03-15-2021/%d:00am END 03-15-2021/%d:00am
  BY TIME 30sec STRIDE 0sec INTO chunks;
PROCESS chunks USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t;`, beginH, endH)
	}
	// Hour 6-7 consumes its full budget...
	prog1, err := query.Parse(q(6, 7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(prog1); err != nil {
		t.Fatal(err)
	}
	// ...but hour 8-9 has an untouched budget.
	prog2, err := query.Parse(q(8, 9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(prog2); err != nil {
		t.Fatalf("disjoint window denied: %v", err)
	}
	// Re-querying hour 6-7 is denied.
	if _, err := e.Execute(prog1); err == nil {
		t.Fatalf("re-query of depleted window should be denied")
	}
}

func TestGroupByHourStandingQuery(t *testing.T) {
	s := countScene(100)
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 10)
	src := `
SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/10:00am
  BY TIME 30sec STRIDE 0sec INTO chunks;
PROCESS chunks USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM (SELECT bin(chunk, 3600) AS hr FROM t) GROUP BY hr;`
	prog, err := query.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 4 {
		t.Fatalf("%d releases, want 4 hourly buckets", len(res.Releases))
	}
	var total float64
	for _, r := range res.Releases {
		total += r.Raw
		// Budget split evenly across releases.
		if math.Abs(r.Epsilon-0.25) > 1e-12 {
			t.Errorf("release epsilon=%v, want 0.25", r.Epsilon)
		}
	}
	// One person per minute, 60/hour, 100 total: hours 1 at 60,
	// remaining 40 in hour 2.
	if total != 100 {
		t.Errorf("bucket totals sum to %v, want 100", total)
	}
}

func TestMaskedQueryUsesMaskPolicy(t *testing.T) {
	s := countScene(20)
	grid := geom.NewGrid(s.W, s.H, 10, 10)
	// Mask the right half of the frame: people remain countable on
	// the left, and the published policy for this mask has a smaller rho.
	m := mask.FromRects(grid, geom.Rect{X0: 500, Y0: 0, X1: 1000, Y1: 500})
	pm := &mask.PolicyMap{Camera: "camA", Entries: []mask.PolicyEntry{
		{ID: "halfmask", Mask: m, Policy: policy.Policy{Rho: 12 * time.Second, K: 1}},
	}}
	e := New(Options{Seed: 1, Evaluation: true})
	if err := e.RegisterCamera(CameraConfig{
		Name:     "camA",
		Source:   &video.SceneSource{Camera: "camA", Scene: s},
		Policy:   policy.Policy{Rho: 25 * time.Second, K: 1},
		Epsilon:  10,
		Policies: pm,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Registry().Register("counter", countNewEntrants); err != nil {
		t.Fatal(err)
	}
	src := `
SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/7:00am
  BY TIME 30sec STRIDE 0sec WITH MASK halfmask INTO chunks;
PROCESS chunks USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t;`
	prog, err := query.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Releases[0]
	// Sensitivity with mask policy: max_chunks(12s@30s)=2 -> 20*1*2=40;
	// with the default 25s policy it would be identical here, so use
	// sensitivity scale via NoiseScale: same; instead verify people
	// are still counted (mask does not hide the left half).
	if r.Raw == 0 {
		t.Errorf("masked query counted nothing")
	}
	if r.Raw != 20 {
		t.Errorf("raw=%v, want 20 (entrants enter on the unmasked left)", r.Raw)
	}
}

func TestUnknownMaskAndScheme(t *testing.T) {
	s := countScene(5)
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 10)
	bad1 := strings.Replace(countQuery, "STRIDE 0sec INTO", "STRIDE 0sec WITH MASK nope INTO", 1)
	prog, err := query.Parse(bad1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(prog); err == nil || !strings.Contains(err.Error(), "mask") {
		t.Errorf("unknown mask: %v", err)
	}
	bad2 := strings.Replace(countQuery, "STRIDE 0sec INTO", "STRIDE 0sec BY REGION nope INTO", 1)
	prog2, err := query.Parse(bad2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(prog2); err == nil || !strings.Contains(err.Error(), "scheme") {
		t.Errorf("unknown scheme: %v", err)
	}
}

func TestRegionSplitHardBoundaries(t *testing.T) {
	s := countScene(30)
	sch := region.Scheme{Name: "halves", Hard: true, Regions: []region.Named{
		{Name: "top", Rect: geom.Rect{X0: 0, Y0: 0, X1: 1000, Y1: 250}},
		{Name: "bottom", Rect: geom.Rect{X0: 0, Y0: 250, X1: 1000, Y1: 500}},
	}}
	e := New(Options{Seed: 1, Evaluation: true})
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: s},
		Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
		Epsilon: 10,
		Schemes: map[string]region.Scheme{"halves": sch},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Registry().Register("counter", countNewEntrants); err != nil {
		t.Fatal(err)
	}
	src := `
SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/7:00am
  BY TIME 30sec STRIDE 0sec BY REGION halves INTO chunks;
PROCESS chunks USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT region, COUNT(*) FROM t GROUP BY region WITH KEYS ["top", "bottom"];`
	prog, err := query.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 2 {
		t.Fatalf("%d releases", len(res.Releases))
	}
	// All 30 people walk at y=250, i.e. in "bottom" (y in [250,500)).
	byKey := map[string]float64{}
	for _, r := range res.Releases {
		byKey[r.Key.Str()] = r.Raw
	}
	if byKey["bottom"] != 30 || byKey["top"] != 0 {
		t.Errorf("region counts=%v", byKey)
	}
}

func TestSoftRegionRequiresFrameChunks(t *testing.T) {
	s := countScene(5)
	sch := region.Scheme{Name: "softy", Hard: false, Regions: []region.Named{
		{Name: "all", Rect: geom.Rect{X0: 0, Y0: 0, X1: 1000, Y1: 500}},
	}}
	e := New(Options{Seed: 1})
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: s},
		Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
		Epsilon: 10,
		Schemes: map[string]region.Scheme{"softy": sch},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Registry().Register("counter", countNewEntrants); err != nil {
		t.Fatal(err)
	}
	src := strings.Replace(countQuery, "STRIDE 0sec INTO", "STRIDE 0sec BY REGION softy INTO", 1)
	prog, err := query.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(prog); err == nil || !strings.Contains(err.Error(), "1frame") {
		t.Errorf("soft-boundary chunk check: %v", err)
	}
}

func TestUnregisteredExecutable(t *testing.T) {
	s := countScene(5)
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 10)
	src := strings.Replace(countQuery, "USING counter", "USING missing", 1)
	prog, err := query.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(prog); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Errorf("missing executable: %v", err)
	}
}

func TestRegisterCameraValidation(t *testing.T) {
	e := New(Options{})
	s := countScene(1)
	src := &video.SceneSource{Camera: "c", Scene: s}
	cases := []CameraConfig{
		{Name: "", Source: src, Policy: policy.Policy{Rho: time.Second, K: 1}, Epsilon: 1},
		{Name: "a", Source: nil, Policy: policy.Policy{Rho: time.Second, K: 1}, Epsilon: 1},
		{Name: "a", Source: src, Policy: policy.Policy{Rho: -time.Second, K: 1}, Epsilon: 1},
		{Name: "a", Source: src, Policy: policy.Policy{Rho: time.Second, K: 0}, Epsilon: 1},
		{Name: "a", Source: src, Policy: policy.Policy{Rho: time.Second, K: 1}, Epsilon: 0},
	}
	for i, cfg := range cases {
		if err := e.RegisterCamera(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
	good := CameraConfig{Name: "a", Source: src, Policy: policy.Policy{Rho: time.Second, K: 1}, Epsilon: 1}
	if err := e.RegisterCamera(good); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterCamera(good); err == nil {
		t.Errorf("duplicate camera accepted")
	}
}

func TestParallelismDeterminism(t *testing.T) {
	s := countScene(40)
	run := func(par int) float64 {
		e := New(Options{Seed: 1, Evaluation: true, Parallelism: par})
		if err := e.RegisterCamera(CameraConfig{
			Name: "camA", Source: &video.SceneSource{Camera: "camA", Scene: s},
			Policy: policy.Policy{Rho: 25 * time.Second, K: 1}, Epsilon: 10,
		}); err != nil {
			t.Fatal(err)
		}
		if err := e.Registry().Register("counter", countNewEntrants); err != nil {
			t.Fatal(err)
		}
		prog, err := query.Parse(countQuery)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Execute(prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.Releases[0].Raw
	}
	if a, b := run(1), run(8); a != b {
		t.Errorf("parallel execution changed the raw result: %v vs %v", a, b)
	}
}

func TestNoiseAccuracyScalesWithEpsilon(t *testing.T) {
	// With a larger per-release epsilon the noise scale must shrink.
	s := countScene(20)
	run := func(consuming string) float64 {
		e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 100)
		q := strings.Replace(countQuery, "SELECT COUNT(*) FROM t;", "SELECT COUNT(*) FROM t"+consuming+";", 1)
		prog, err := query.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Execute(prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.Releases[0].NoiseScale
	}
	if lo, hi := run(" CONSUMING 4"), run(" CONSUMING 0.5"); lo >= hi {
		t.Errorf("noise scale did not shrink with epsilon: %v vs %v", lo, hi)
	}
}
