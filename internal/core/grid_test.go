package core

import (
	"strings"
	"testing"
	"time"

	"privid/internal/geom"
	"privid/internal/policy"
	"privid/internal/query"
	"privid/internal/region"
	"privid/internal/video"
)

func gridEngine(t *testing.T) *Engine {
	t.Helper()
	s := countScene(20)
	e := New(Options{Seed: 1, Evaluation: true})
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: s},
		Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
		Epsilon: 100,
		GridSchemes: map[string]region.GridScheme{
			"grid4": {
				Name: "grid4", Rows: 2, Cols: 2,
				FrameW: 1000, FrameH: 500,
				MaxObjectW: 40, MaxObjectH: 40,
				// Walkers cross 980 px in 20 s -> 49 px/s.
				MaxSpeedPxPerSec: 60,
			},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Registry().Register("counter", countNewEntrants); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestGridSplitExecution: the §7.2 Grid Split extension allows BY
// REGION with arbitrary chunk sizes, at the cost of a sensitivity
// multiplier derived from the owner's object-size and speed bounds.
func TestGridSplitExecution(t *testing.T) {
	e := gridEngine(t)
	src := strings.Replace(countQuery, "STRIDE 0sec INTO", "STRIDE 0sec BY REGION grid4 INTO", 1)
	prog, err := query.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Releases[0]
	// Each walker crosses the vertical cell boundary at x=500, so the
	// per-region entrant logic counts it once in the left cell (true
	// entry) and once in the right cell (boundary crossing): 40 rows
	// for 20 people. This is the semantic cost of Grid Split the
	// paper's future-work paragraph anticipates — analysts must
	// account for boundary crossings, and the sensitivity multiplier
	// below is what keeps the privacy guarantee intact regardless.
	if r.Raw != 40 {
		t.Errorf("raw=%v, want 40 (20 entries + 20 cell crossings)", r.Raw)
	}
	// Sensitivity must carry the grid multiplier: base Delta is
	// 20 rows * K=1 * max_chunks(25s@30s)=2 -> 40; the grid factor for
	// a 30s chunk at 60 px/s over 500-px cells is > 1.
	base := 40.0
	if r.Sensitivity <= base {
		t.Errorf("grid sensitivity %v should exceed base %v", r.Sensitivity, base)
	}
}

// TestGridSplitChunkSizeScaling: larger chunks sweep more grid cells,
// so the sensitivity multiplier grows with chunk size — the tradeoff
// the paper's future-work paragraph predicts.
func TestGridSplitChunkSizeScaling(t *testing.T) {
	sens := func(chunk string) float64 {
		e := gridEngine(t)
		src := strings.Replace(countQuery, "BY TIME 30sec", "BY TIME "+chunk, 1)
		src = strings.Replace(src, "STRIDE 0sec INTO", "STRIDE 0sec BY REGION grid4 INTO", 1)
		prog, err := query.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Execute(prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.Releases[0].Sensitivity
	}
	small, large := sens("10sec"), sens("120sec")
	// Per-chunk region reach grows with chunk duration on a grid fine
	// enough not to saturate (the 2x2 engine grid saturates at 4).
	fine := region.GridScheme{Name: "g", Rows: 5, Cols: 10, FrameW: 1000, FrameH: 500,
		MaxObjectW: 40, MaxObjectH: 40, MaxSpeedPxPerSec: 60}
	if fine.RegionsPerChunk(1200, 10) <= fine.RegionsPerChunk(100, 10) {
		t.Errorf("grid reach should grow with chunk duration")
	}
	if small <= 0 || large <= 0 {
		t.Fatalf("sensitivities: %v %v", small, large)
	}
}

func TestGridSchemeNameCollision(t *testing.T) {
	s := countScene(2)
	e := New(Options{Seed: 1})
	err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: s},
		Policy:  policy.Policy{Rho: time.Second, K: 1},
		Epsilon: 1,
		Schemes: map[string]region.Scheme{
			"x": {Name: "x", Regions: []region.Named{{Name: "all", Rect: geom.Rect{X1: 1000, Y1: 500}}}},
		},
		GridSchemes: map[string]region.GridScheme{
			"x": {Name: "x", Rows: 1, Cols: 1, FrameW: 1, FrameH: 1, MaxObjectW: 1, MaxObjectH: 1},
		},
	})
	if err == nil || !strings.Contains(err.Error(), "both") {
		t.Fatalf("name collision accepted: %v", err)
	}
}
