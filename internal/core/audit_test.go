package core

import (
	"strings"
	"testing"
	"time"

	"privid/internal/policy"
	"privid/internal/query"
	"privid/internal/video"
)

func TestAuditLog(t *testing.T) {
	s := countScene(10)
	fixed := time.Date(2026, 6, 13, 12, 0, 0, 0, time.UTC)
	e := New(Options{Seed: 1, Now: func() time.Time { return fixed }})
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: s},
		Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
		Epsilon: 1.5,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Registry().Register("counter", countNewEntrants); err != nil {
		t.Fatal(err)
	}
	prog, err := query.Parse(countQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(prog); err != nil {
		t.Fatal(err)
	}
	// Second query exceeds the 1.5 budget (each consumes 1.0).
	if _, err := e.Execute(prog); err == nil {
		t.Fatal("second query should be denied")
	}
	log := e.AuditLog()
	if len(log) != 2 {
		t.Fatalf("%d audit entries, want 2", len(log))
	}
	ok, denied := log[0], log[1]
	if ok.Denied || ok.Releases != 1 || ok.EpsilonSpent != 1 {
		t.Errorf("success entry: %+v", ok)
	}
	if !denied.Denied || denied.EpsilonSpent != 0 || denied.Reason == "" {
		t.Errorf("denial entry: %+v", denied)
	}
	if len(ok.Cameras) != 1 || ok.Cameras[0] != "camA" {
		t.Errorf("cameras: %v", ok.Cameras)
	}
	if !ok.At.Equal(fixed) {
		t.Errorf("timestamp: %v", ok.At)
	}
	// Log lines render both outcomes.
	if !strings.Contains(ok.String(), "ok: 1 releases") {
		t.Errorf("success line: %s", ok.String())
	}
	if !strings.Contains(denied.String(), "DENIED") {
		t.Errorf("denial line: %s", denied.String())
	}
	// The returned slice is a copy.
	log[0].Releases = 999
	if e.AuditLog()[0].Releases == 999 {
		t.Errorf("AuditLog leaked internal state")
	}
}
