package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"privid/internal/dp"
	"privid/internal/policy"
	"privid/internal/query"
	"privid/internal/scene"
	"privid/internal/table"
	"privid/internal/video"
)

const concurrentQuery = `
SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/6:30am
  BY TIME 30sec STRIDE 0sec INTO chunks;
PROCESS chunks USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.2;`

// Budget admission must stay atomic when many goroutines Execute the
// same program at once: with a per-frame budget of 1.0 and 0.2 per
// query, exactly 5 of 25 concurrent queries may be admitted, no matter
// how they interleave. Run under -race.
func TestConcurrentExecuteBudgetAtomicity(t *testing.T) {
	s := countScene(10)
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 1.0)
	prog, err := query.Parse(concurrentQuery)
	if err != nil {
		t.Fatal(err)
	}

	const n = 25
	var wg sync.WaitGroup
	outcomes := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, outcomes[i] = e.Execute(prog)
		}(i)
	}
	wg.Wait()

	admitted := 0
	for _, err := range outcomes {
		if err == nil {
			admitted++
			continue
		}
		var exhausted *dp.ErrBudgetExhausted
		if !errors.As(err, &exhausted) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if admitted != 5 {
		t.Fatalf("admitted %d of %d queries, want exactly 5 (1.0 / 0.2)", admitted, n)
	}

	// The ledger spent exactly what the admitted queries paid.
	rem, err := e.Remaining("camA", 100)
	if err != nil {
		t.Fatal(err)
	}
	if rem > 1e-9 {
		t.Fatalf("remaining=%v, want 0 after 5 admissions of 0.2", rem)
	}

	// Every attempt is in the audit log, denied or not.
	log := e.AuditLog()
	ok, denied := 0, 0
	for _, entry := range log {
		if entry.Denied {
			denied++
		} else {
			ok++
		}
	}
	if ok != 5 || denied != n-5 {
		t.Fatalf("audit: %d ok, %d denied; want 5 and %d", ok, denied, n-5)
	}
}

// runProcessTable materializes the intermediate table of the program's
// single SPLIT/PROCESS pair.
func runProcessTable(t *testing.T, e *Engine, prog *query.Program) string {
	t.Helper()
	plan, err := e.resolveSplit(prog.Splits[0])
	if err != nil {
		t.Fatal(err)
	}
	inst, _, err := e.runProcess(prog.Processes[0], plan, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return inst.Data.String()
}

// A warm cache must hand back byte-identical intermediate tables: the
// whole privacy analysis treats the table as a deterministic function
// of (video, executable, contract), and the cache may not perturb it.
func TestChunkCacheByteIdenticalTables(t *testing.T) {
	s := countScene(10)
	prog, err := query.Parse(concurrentQuery)
	if err != nil {
		t.Fatal(err)
	}
	pol := policy.Policy{Rho: 25 * time.Second, K: 1}

	cached := newTestEngine(t, s, pol, 1e6)
	cold := runProcessTable(t, cached, prog)
	if st := cached.CacheStats(); st.Hits != 0 || st.Misses == 0 {
		t.Fatalf("cold run stats = %+v", st)
	}
	warm := runProcessTable(t, cached, prog)
	if st := cached.CacheStats(); st.Hits == 0 {
		t.Fatalf("warm run produced no hits: %+v", st)
	}
	if cold != warm {
		t.Fatalf("warm table differs from cold:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}

	// And identical to an engine with caching disabled outright.
	uncachedEngine := New(Options{Seed: 1, Evaluation: true, ChunkCacheBytes: -1})
	seedEngine(t, uncachedEngine, s, pol, 1e6)
	uncached := runProcessTable(t, uncachedEngine, prog)
	if uncached != cold {
		t.Fatalf("cache-disabled table differs:\n%s\nvs\n%s", uncached, cold)
	}
	if st := uncachedEngine.CacheStats(); st.MaxBytes != 0 || st.Misses != 0 {
		t.Fatalf("disabled cache reported activity: %+v", st)
	}
}

// An overlapping SPLIT window on the same chunk grid must reuse the
// chunks it shares with an earlier window instead of re-processing
// them.
func TestChunkCacheOverlappingWindows(t *testing.T) {
	s := countScene(10)
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 1e6)
	first, err := query.Parse(concurrentQuery)
	if err != nil {
		t.Fatal(err)
	}
	runProcessTable(t, e, first)
	misses := e.CacheStats().Misses

	// Shifted by 10 minutes: half its 30-second chunks coincide with
	// chunks of the first window at the same absolute frames.
	shifted, err := query.Parse(`
SPLIT camA BEGIN 03-15-2021/6:10am END 03-15-2021/6:40am
  BY TIME 30sec STRIDE 0sec INTO chunks;
PROCESS chunks USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.2;`)
	if err != nil {
		t.Fatal(err)
	}
	runProcessTable(t, e, shifted)
	st := e.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("overlapping window produced no cache hits: %+v", st)
	}
	// Only the 10 minutes of new video should have missed.
	newMisses := st.Misses - misses
	if want := int64(10 * 2); int64(newMisses) != want {
		t.Fatalf("overlapping window missed %d chunks, want %d (the non-overlap)", newMisses, want)
	}
}

// Options.Parallelism bounds sandbox executions engine-wide: many
// queries executing concurrently must never have more than Parallelism
// chunks inside executables at once, or serving-layer load would push
// executables past their wall-clock TIMEOUT.
func TestParallelismBoundsEngineWide(t *testing.T) {
	s := countScene(10)
	e := New(Options{Seed: 1, Parallelism: 2, ChunkCacheBytes: -1})
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: s},
		Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
		Epsilon: 1e6,
	}); err != nil {
		t.Fatal(err)
	}
	var cur, max atomic.Int32
	if err := e.Registry().Register("counter", func(chunk *video.Chunk) []table.Row {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return countNewEntrants(chunk)
	}); err != nil {
		t.Fatal(err)
	}
	prog, err := query.Parse(concurrentQuery)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Execute(prog); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := max.Load(); got > 2 {
		t.Fatalf("observed %d concurrent sandbox executions, Parallelism is 2", got)
	}
}

// A timed-out executable must keep holding its Parallelism slot until
// it actually exits: releasing on RunChecked's return would let leaked
// executions accumulate past the engine-wide bound.
func TestTimedOutExecutableHoldsParallelismSlot(t *testing.T) {
	s := countScene(10)
	e := New(Options{Seed: 1, Parallelism: 1, ChunkCacheBytes: -1})
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: s},
		Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
		Epsilon: 1e6,
	}); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	var calls atomic.Int32
	if err := e.Registry().Register("counter", func(chunk *video.Chunk) []table.Row {
		if calls.Add(1) == 1 {
			<-gate // overrun TIMEOUT 1sec and keep running
		}
		return []table.Row{{table.N(1)}}
	}); err != nil {
		t.Fatal(err)
	}
	// Two chunks, processed serially at Parallelism 1.
	prog, err := query.Parse(`
SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/6:01am
  BY TIME 30sec STRIDE 0sec INTO chunks;
PROCESS chunks USING counter TIMEOUT 1sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.2;`)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := e.Execute(prog)
		done <- err
	}()
	// Well past the first chunk's timeout: the leaked execution still
	// holds the only slot, so the second chunk must not have started.
	time.Sleep(2 * time.Second)
	if got := calls.Load(); got != 1 {
		t.Fatalf("second chunk started while a timed-out execution held the slot (calls=%d)", got)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("calls=%d after drain, want 2", got)
	}
}

// A ProcessFunc that never returns must not wedge the engine: after
// the grace period its slot is forfeited and other chunks proceed.
func TestHungExecutableForfeitsSlotAfterGrace(t *testing.T) {
	s := countScene(10)
	e := New(Options{Seed: 1, Parallelism: 1, ChunkCacheBytes: -1})
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: s},
		Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
		Epsilon: 1e6,
	}); err != nil {
		t.Fatal(err)
	}
	hang := make(chan struct{}) // never closed during the query
	defer close(hang)           // unblock the leaked goroutine at test end
	var calls atomic.Int32
	if err := e.Registry().Register("counter", func(chunk *video.Chunk) []table.Row {
		if calls.Add(1) == 1 {
			<-hang
		}
		return []table.Row{{table.N(1)}}
	}); err != nil {
		t.Fatal(err)
	}
	prog, err := query.Parse(`
SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/6:01am
  BY TIME 30sec STRIDE 0sec INTO chunks;
PROCESS chunks USING counter TIMEOUT 0.2sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.2;`)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := e.Execute(prog)
		done <- err
	}()
	// Timeout 0.2s + grace 4×0.2s = the hung chunk forfeits its slot
	// around 1s; the whole query must complete well before 10s.
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine wedged behind a non-terminating executable")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("calls=%d, want 2 (second chunk after grace)", got)
	}
}

// A sandbox failure (timeout/panic → default row) depends on machine
// load, not on the chunk, so it must never be cached: the next query
// over the same chunk re-executes and gets the real rows.
func TestChunkCacheSkipsFailedRuns(t *testing.T) {
	s := countScene(10)
	e := New(Options{Seed: 1, Evaluation: true})
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: s},
		Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
		Epsilon: 1e6,
	}); err != nil {
		t.Fatal(err)
	}
	// Panics on every invocation of the first run, then behaves. (A
	// conforming ProcessFunc is stateless; this stands in for a
	// transient overload tripping the TIMEOUT.)
	var mu sync.Mutex
	failing := true
	if err := e.Registry().Register("counter", func(chunk *video.Chunk) []table.Row {
		mu.Lock()
		fail := failing
		mu.Unlock()
		if fail {
			panic("transient overload")
		}
		return countNewEntrants(chunk)
	}); err != nil {
		t.Fatal(err)
	}
	prog, err := query.Parse(concurrentQuery)
	if err != nil {
		t.Fatal(err)
	}

	failed := runProcessTable(t, e, prog)
	mu.Lock()
	failing = false
	mu.Unlock()
	recovered := runProcessTable(t, e, prog)

	if st := e.CacheStats(); st.Hits != 0 {
		t.Fatalf("failed runs were served from cache: %+v", st)
	}
	if failed == recovered {
		t.Fatal("second run still returned the failure-default table")
	}
	healthy := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 1e6)
	if want := runProcessTable(t, healthy, prog); recovered != want {
		t.Fatalf("post-recovery table wrong:\n%s\nwant:\n%s", recovered, want)
	}
}

// With the cache enabled, concurrent executions racing on the same
// chunks (run under -race) must all see the same pre-noise aggregate.
func TestConcurrentExecuteCacheConsistency(t *testing.T) {
	s := countScene(10)
	e := newTestEngine(t, s, policy.Policy{Rho: 25 * time.Second, K: 1}, 1e6)
	prog, err := query.Parse(concurrentQuery)
	if err != nil {
		t.Fatal(err)
	}

	const n = 16
	raws := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.Execute(prog)
			if err != nil {
				t.Error(err)
				return
			}
			raws[i] = res.Releases[0].Raw
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i := 1; i < n; i++ {
		if raws[i] != raws[0] {
			t.Fatalf("raw[%d]=%v differs from raw[0]=%v", i, raws[i], raws[0])
		}
	}
}

// Released values and ε accounting must be bit-identical between a
// cache-enabled engine (including warm repeats) and a cache-disabled
// one: the cache may only ever change how fast answers arrive.
func TestCacheInvisibleToReleasesAndAccounting(t *testing.T) {
	pol := policy.Policy{Rho: 25 * time.Second, K: 1}
	run := func(cacheBytes int64) (*Engine, []Result) {
		s := countScene(10)
		e := New(Options{Seed: 7, Evaluation: true, ChunkCacheBytes: cacheBytes})
		seedEngine(t, e, s, pol, 1e6)
		prog, err := query.Parse(concurrentQuery)
		if err != nil {
			t.Fatal(err)
		}
		var out []Result
		for i := 0; i < 3; i++ { // repeats 2 and 3 are warm when cached
			res, err := e.Execute(prog)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, *res)
		}
		return e, out
	}

	cachedEngine, cached := run(0)      // default-sized cache
	uncachedEngine, uncached := run(-1) // disabled

	if st := cachedEngine.CacheStats(); st.Hits == 0 && st.StateHits == 0 {
		t.Fatalf("cached engine never hit: %+v", st)
	}
	for i := range cached {
		c, u := cached[i], uncached[i]
		if c.EpsilonSpent != u.EpsilonSpent {
			t.Fatalf("run %d: spent %v (cached) vs %v (uncached)", i, c.EpsilonSpent, u.EpsilonSpent)
		}
		for j := range c.Releases {
			cr, ur := c.Releases[j], u.Releases[j]
			if cr.Raw != ur.Raw || cr.Value != ur.Value || cr.Epsilon != ur.Epsilon ||
				cr.Sensitivity != ur.Sensitivity || cr.NoiseScale != ur.NoiseScale {
				t.Fatalf("run %d release %d differs:\ncached:   %+v\nuncached: %+v", i, j, cr, ur)
			}
		}
	}
	remC, err := cachedEngine.Remaining("camA", 100)
	if err != nil {
		t.Fatal(err)
	}
	remU, err := uncachedEngine.Remaining("camA", 100)
	if err != nil {
		t.Fatal(err)
	}
	if remC != remU {
		t.Fatalf("remaining budget differs: %v vs %v", remC, remU)
	}
}

// seedEngine registers countScene's camera and executable on an
// engine built with custom Options (newTestEngine hardcodes its own).
func seedEngine(t *testing.T, e *Engine, s *scene.Scene, pol policy.Policy, eps float64) {
	t.Helper()
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: s},
		Policy:  pol,
		Epsilon: eps,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Registry().Register("counter", countNewEntrants); err != nil {
		t.Fatal(err)
	}
}

// TestHungExecutableWithoutTimeoutReleasesSlot is the regression test
// for the unarmed grace backstop: the slot-forfeit timer was only
// armed when the statement carried TIMEOUT > 0, so a programmatically
// built Program with no timeout whose executable hung would block
// RunChecked forever and leak its Parallelism slot permanently —
// with Parallelism=1, wedging every later query on the engine. The
// engine now substitutes Options.DefaultProcessTimeout, so the first
// query falls back to default rows and the slot is reclaimed after
// the grace period.
func TestHungExecutableWithoutTimeoutReleasesSlot(t *testing.T) {
	s := countScene(5)
	e := New(Options{
		Seed:        1,
		Parallelism: 1, // one slot: a leak would wedge the engine
		// Small default so the test completes quickly; the point is
		// that it applies at all when TIMEOUT is absent.
		DefaultProcessTimeout: 50 * time.Millisecond,
		ChunkCacheBytes:       -1, // exercise the raw execution path
	})
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: s},
		Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
		Epsilon: 10,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Registry().Register("counter", countNewEntrants); err != nil {
		t.Fatal(err)
	}
	// An executable that never returns (the test intentionally leaks
	// its goroutine — that bounded leak instead of a wedged engine is
	// exactly the behavior under test).
	if err := e.Registry().Register("hang", func(chunk *video.Chunk) []table.Row {
		select {}
	}); err != nil {
		t.Fatal(err)
	}

	const oneChunk = `
SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/6:01am
  BY TIME 60sec STRIDE 0sec INTO chunks;
PROCESS chunks USING hang TIMEOUT 5sec PRODUCING 2 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.2;`
	prog, err := query.Parse(oneChunk)
	if err != nil {
		t.Fatal(err)
	}
	// The parser rejects TIMEOUT <= 0, so reproduce the library-caller
	// scenario: a parsed program whose timeout is then cleared.
	prog.Processes[0].Timeout = 0

	done := make(chan error, 1)
	go func() {
		_, err := e.Execute(prog)
		done <- err
	}()
	select {
	case err := <-done:
		// The hung chunk must degrade to the sandbox's fallback rows,
		// not an error.
		if err != nil {
			t.Fatalf("query over hung executable failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query over hung TIMEOUT-less executable never returned (slot wedged)")
	}

	// The grace backstop (slotGraceMultiple × the default timeout)
	// must reclaim the hung execution's slot: a normal query on the
	// same single-slot engine completes.
	prog2, err := query.Parse(concurrentQuery)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_, err := e.Execute(prog2)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("follow-up query failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follow-up query never got the parallelism slot back")
	}
}
