package core

import (
	"fmt"
	"strings"
	"time"
)

// AuditEntry records one query execution attempt. The audit log is the
// video owner's accountability record: it shows exactly how much
// budget each analyst interaction consumed (or why it was denied)
// without revealing anything about the video content beyond what the
// releases themselves already did.
type AuditEntry struct {
	// At is when the engine finished handling the query.
	At time.Time
	// Cameras lists the cameras the query touched.
	Cameras []string
	// Releases is the number of data releases produced (0 on denial).
	Releases int
	// EpsilonSpent is the total budget consumed (0 on denial).
	EpsilonSpent float64
	// Denied reports whether admission failed.
	Denied bool
	// Reason holds the denial reason (empty on success).
	Reason string
}

// String renders the entry as a log line.
func (a AuditEntry) String() string {
	status := fmt.Sprintf("ok: %d releases, eps=%.4g", a.Releases, a.EpsilonSpent)
	if a.Denied {
		status = "DENIED: " + a.Reason
	}
	return fmt.Sprintf("%s cameras=[%s] %s",
		a.At.Format(time.RFC3339), strings.Join(a.Cameras, ","), status)
}

// AuditLog returns a copy of the engine's audit entries in execution
// order.
func (e *Engine) AuditLog() []AuditEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]AuditEntry(nil), e.audit...)
}

// recordAudit appends an entry, stamping At when the caller has not
// already (so the in-memory entry matches its durable WAL twin).
// Caller holds e.mu.
func (e *Engine) recordAudit(entry AuditEntry) {
	if entry.At.IsZero() {
		entry.At = e.clock()
	}
	e.audit = append(e.audit, entry)
}

// clock returns the current time; tests may override it via Options.
func (e *Engine) clock() time.Time {
	if e.opts.Now != nil {
		return e.opts.Now()
	}
	return time.Now()
}
