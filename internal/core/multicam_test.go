package core

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"privid/internal/dp"
	"privid/internal/policy"
	"privid/internal/query"
	"privid/internal/scene"
	"privid/internal/table"
	"privid/internal/video"
)

// newFleetEngine registers n copies of the count scene as cameras
// camA, camB, camC, ... with the counter executable.
func newFleetEngine(t *testing.T, opts Options, n int, eps float64) *Engine {
	t.Helper()
	e := New(opts)
	s := countScene(10)
	for i := 0; i < n; i++ {
		name := "cam" + string(rune('A'+i))
		if err := e.RegisterCamera(CameraConfig{
			Name:    name,
			Source:  &video.SceneSource{Camera: name, Scene: s},
			Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
			Epsilon: eps,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Registry().Register("counter", countNewEntrants); err != nil {
		t.Fatal(err)
	}
	return e
}

const fleetQuery = `
SPLIT camA, camB, camC BEGIN 03-15-2021/6:00am END 03-15-2021/6:30am
  BY TIME 30sec STRIDE 0sec INTO fleet;
PROCESS fleet USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.2;`

// A multi-camera PROCESS table must carry the trusted camera column,
// with each row attributed to its shard.
func TestMultiCameraProvenanceColumn(t *testing.T) {
	e := newFleetEngine(t, Options{Seed: 1}, 3, 10)
	prog, err := query.Parse(fleetQuery)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.resolveSplit(prog.Splits[0])
	if err != nil {
		t.Fatal(err)
	}
	inst, _, err := e.runProcess(prog.Processes[0], plan, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ci := inst.Data.Schema.Index(table.CameraColumn)
	if ci < 0 {
		t.Fatalf("multi-camera table lacks the %q column: %v", table.CameraColumn, inst.Data.Schema.Names())
	}
	counts := map[string]int{}
	for _, row := range inst.Data.Rows() {
		counts[row[ci].Str()]++
	}
	for _, cam := range []string{"camA", "camB", "camC"} {
		if counts[cam] == 0 {
			t.Errorf("no rows attributed to %s (got %v)", cam, counts)
		}
	}
	if len(inst.Metas) != 3 {
		t.Fatalf("shard metas = %d, want 3", len(inst.Metas))
	}
	// Single-camera tables must NOT grow the column (wire compat).
	single, err := query.Parse(strings.Replace(fleetQuery, "camA, camB, camC", "camA", 1))
	if err != nil {
		t.Fatal(err)
	}
	sPlan, err := e.resolveSplit(single.Splits[0])
	if err != nil {
		t.Fatal(err)
	}
	sInst, _, err := e.runProcess(single.Processes[0], sPlan, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sInst.Data.Schema.Has(table.CameraColumn) {
		t.Errorf("single-camera table grew a %q column", table.CameraColumn)
	}
}

// The sharded fan-out must materialize a byte-identical table to
// serial shard execution: the fan-out is a performance feature with no
// observable semantics.
func TestShardedMatchesSerialTables(t *testing.T) {
	progText := fleetQuery
	prog, err := query.Parse(progText)
	if err != nil {
		t.Fatal(err)
	}
	render := func(opts Options) string {
		e := newFleetEngine(t, opts, 3, 10)
		plan, err := e.resolveSplit(prog.Splits[0])
		if err != nil {
			t.Fatal(err)
		}
		inst, _, err := e.runProcess(prog.Processes[0], plan, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return inst.Data.String()
	}
	serial := render(Options{Seed: 1, SerialShards: true})
	sharded := render(Options{Seed: 1, Parallelism: 8, PerCameraParallelism: 2})
	if serial != sharded {
		t.Fatalf("sharded table differs from serial:\nserial:\n%s\nsharded:\n%s", serial, sharded)
	}
}

// MERGE of single-camera chunk sets must behave like the equivalent
// multi-camera SPLIT (same rows, same provenance).
func TestMergeMatchesMultiSplit(t *testing.T) {
	merged := `
SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/6:30am
  BY TIME 30sec STRIDE 0sec INTO a;
SPLIT camB BEGIN 03-15-2021/6:00am END 03-15-2021/6:30am
  BY TIME 30sec STRIDE 0sec INTO b;
MERGE a, b INTO fleet;
PROCESS fleet USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.2;`
	split := strings.Replace(strings.Replace(merged,
		"MERGE a, b INTO fleet;", "", 1),
		"SPLIT camA BEGIN", "SPLIT camA, camB BEGIN", 1)
	split = strings.Replace(split, "INTO a;", "INTO fleet;", 1)
	split = strings.Replace(split, `SPLIT camB BEGIN 03-15-2021/6:00am END 03-15-2021/6:30am
  BY TIME 30sec STRIDE 0sec INTO b;`, "", 1)

	run := func(src string) (*Result, *Engine) {
		e := newFleetEngine(t, Options{Seed: 1, Evaluation: true}, 2, 10)
		prog, err := query.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		res, err := e.Execute(prog)
		if err != nil {
			t.Fatal(err)
		}
		return res, e
	}
	rm, _ := run(merged)
	rs, _ := run(split)
	if len(rm.Releases) != 1 || len(rs.Releases) != 1 {
		t.Fatalf("release counts: %d vs %d", len(rm.Releases), len(rs.Releases))
	}
	if rm.Releases[0].Raw != rs.Releases[0].Raw {
		t.Errorf("raw counts differ: merge=%v split=%v", rm.Releases[0].Raw, rs.Releases[0].Raw)
	}
	if rm.Releases[0].Sensitivity != rs.Releases[0].Sensitivity {
		t.Errorf("sensitivities differ: merge=%v split=%v", rm.Releases[0].Sensitivity, rs.Releases[0].Sensitivity)
	}
	if len(rm.Cameras) != 2 || len(rs.Cameras) != 2 {
		t.Errorf("camera budget counts: merge=%d split=%d, want 2", len(rm.Cameras), len(rs.Cameras))
	}
}

// One camera denying must charge no camera anything, and the denial
// must name the denying camera.
func TestAtomicAdmissionAcrossCameras(t *testing.T) {
	e := newFleetEngine(t, Options{Seed: 1}, 2, 10)
	// camC gets almost no budget.
	s := countScene(10)
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camC",
		Source:  &video.SceneSource{Camera: "camC", Scene: s},
		Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
		Epsilon: 0.01,
	}); err != nil {
		t.Fatal(err)
	}
	prog, err := query.Parse(fleetQuery)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Execute(prog)
	var exhausted *dp.ErrBudgetExhausted
	if !errors.As(err, &exhausted) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if exhausted.Camera != "camC" {
		t.Errorf("denying camera = %q, want camC", exhausted.Camera)
	}
	for _, cam := range []string{"camA", "camB"} {
		rem, err := e.Remaining(cam, 100)
		if err != nil {
			t.Fatal(err)
		}
		if rem != 10 {
			t.Errorf("%s remaining = %v, want untouched 10", cam, rem)
		}
	}
	// One denied audit record naming every touched camera.
	log := e.AuditLog()
	if len(log) != 1 || !log[0].Denied {
		t.Fatalf("audit = %+v, want one denied entry", log)
	}
	if len(log[0].Cameras) != 3 {
		t.Errorf("audit cameras = %v, want all three", log[0].Cameras)
	}
}

// Result.Cameras must report each camera's charge and post-charge
// remaining budget.
func TestPerCameraBudgetReport(t *testing.T) {
	e := newFleetEngine(t, Options{Seed: 1}, 3, 10)
	prog, err := query.Parse(fleetQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cameras) != 3 {
		t.Fatalf("camera budgets = %+v, want 3 entries", res.Cameras)
	}
	for i, cb := range res.Cameras {
		want := "cam" + string(rune('A'+i))
		if cb.Camera != want {
			t.Errorf("cameras[%d] = %q, want %q (sorted)", i, cb.Camera, want)
		}
		if math.Abs(cb.EpsilonSpent-0.2) > 1e-12 {
			t.Errorf("%s spent = %v, want 0.2", cb.Camera, cb.EpsilonSpent)
		}
		if math.Abs(cb.Remaining-9.8) > 1e-9 {
			t.Errorf("%s remaining = %v, want 9.8", cb.Camera, cb.Remaining)
		}
	}
}

// Fleet-wide aggregates compose sensitivity additively across cameras
// (Fig. 10's UNION rule); GROUP BY camera releases carry only their
// own camera's delta and charge only their own camera's ledger.
func TestPerCameraSensitivityComposition(t *testing.T) {
	e := newFleetEngine(t, Options{Seed: 1, Evaluation: true}, 3, 10)
	prog, err := query.Parse(`
SPLIT camA, camB, camC BEGIN 03-15-2021/6:00am END 03-15-2021/6:30am
  BY TIME 30sec STRIDE 0sec INTO fleet;
PROCESS fleet USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.2;
SELECT camera, COUNT(*) FROM t
  GROUP BY camera WITH KEYS ["camA", "camB", "camC"] CONSUMING 0.2;`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 4 {
		t.Fatalf("releases = %d, want 4", len(res.Releases))
	}
	// Per-camera delta: 20 rows × K=1 × max_chunks(ρ=25 s, chunk=30 s)
	// = 20 × 2 = 40; the fleet-wide count's Δ is the 3-camera sum.
	perCam := 40.0
	if got := res.Releases[0].Sensitivity; got != 3*perCam {
		t.Errorf("fleet-wide Δ = %v, want %v", got, 3*perCam)
	}
	for _, r := range res.Releases[1:] {
		if r.Sensitivity != perCam {
			t.Errorf("%s Δ = %v, want per-camera %v", r.Desc, r.Sensitivity, perCam)
		}
	}
	// Budget: each camera pays the fleet-wide release (0.2) plus only
	// its own keyed release (0.2), never the siblings'.
	for _, cb := range res.Cameras {
		if math.Abs(cb.EpsilonSpent-0.4) > 1e-12 {
			t.Errorf("%s spent = %v, want 0.4", cb.Camera, cb.EpsilonSpent)
		}
	}
}

// Merging windows that touch different spans must charge each camera
// only over its own queried window.
func TestPerCameraChargeWindows(t *testing.T) {
	e := newFleetEngine(t, Options{Seed: 1}, 2, 10)
	prog, err := query.Parse(`
SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/6:10am
  BY TIME 30sec STRIDE 0sec INTO a;
SPLIT camB BEGIN 03-15-2021/6:10am END 03-15-2021/6:20am
  BY TIME 30sec STRIDE 0sec INTO b;
MERGE a, b INTO fleet;
PROCESS fleet USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.2;`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(prog); err != nil {
		t.Fatal(err)
	}
	// camA was queried over [6:00, 6:10) = frames [0, 6000); a frame
	// in camB's exclusive span must be untouched on camA.
	if rem, _ := e.Remaining("camA", 3000); math.Abs(rem-9.8) > 1e-9 {
		t.Errorf("camA in-window remaining = %v, want 9.8", rem)
	}
	if rem, _ := e.Remaining("camA", 9000); rem != 10 {
		t.Errorf("camA out-of-window remaining = %v, want untouched 10", rem)
	}
	if rem, _ := e.Remaining("camB", 9000); math.Abs(rem-9.8) > 1e-9 {
		t.Errorf("camB in-window remaining = %v, want 9.8", rem)
	}
	if rem, _ := e.Remaining("camB", 3000); rem != 10 {
		t.Errorf("camB out-of-window remaining = %v, want untouched 10", rem)
	}
}

// A chunk cached for one camera must not leak to a sibling camera
// observing different video (per-camera cache identity), while
// repeating the fleet query hits the cache for every shard.
func TestChunkCachePerCamera(t *testing.T) {
	e := New(Options{Seed: 1})
	sA, sB := countScene(3), countScene(7)
	for _, c := range []struct {
		name string
		s    *scene.Scene
	}{{"camA", sA}, {"camB", sB}} {
		if err := e.RegisterCamera(CameraConfig{
			Name:    c.name,
			Source:  &video.SceneSource{Camera: c.name, Scene: c.s},
			Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
			Epsilon: 1e6,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Registry().Register("counter", countNewEntrants); err != nil {
		t.Fatal(err)
	}
	prog, err := query.Parse(`
SPLIT camA, camB BEGIN 03-15-2021/6:00am END 03-15-2021/6:30am
  BY TIME 30sec STRIDE 0sec INTO fleet;
PROCESS fleet USING counter TIMEOUT 5sec PRODUCING 20 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t CONSUMING 0.001;`)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e.Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Hits != 0 || st.StateHits != 0 {
		t.Fatalf("cold run hit the cache: %+v", st)
	}
	r2, err := e.Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	// COUNT(*) pushes down, so the warm rerun is served entirely from
	// the partial-state tier: one state hit per (chunk, plan) across
	// both shards, never touching the table tier.
	st := e.CacheStats()
	if st.StateMisses != st.StatePuts || st.StateHits != st.StateMisses || st.StateHits == 0 {
		t.Errorf("warm rerun should hit every chunk state of both shards: %+v", st)
	}
	// 3 vs 7 entrants: the two cameras genuinely differ, so a key
	// collision between shards would corrupt the count.
	if len(r1.Releases) != 1 || r1.Releases[0].Epsilon != r2.Releases[0].Epsilon {
		t.Errorf("results differ structurally: %+v vs %+v", r1, r2)
	}
}
