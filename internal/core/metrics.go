package core

import (
	"errors"
	"sort"
	"time"

	"privid/internal/dp"
	"privid/internal/obs"
	"privid/internal/store"
)

// commitRecordBuckets is the bucket layout of the WAL batch-size
// histogram (records per durable append, powers of two up to the group
// committer's maxGroupBatch).
var commitRecordBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// engineMetrics holds the engine's hot-path instruments. All fields
// no-op when nil, so an engine built with DisableMetrics (or a nil
// registry) pays only nil checks. Privacy: every instrument here
// carries counts, durations or ε amounts already present in the audit
// log — never noised values, raw aggregates or row contents.
type engineMetrics struct {
	// querySeconds observes end-to-end execution latency per outcome
	// (ok, denied, error).
	querySeconds *obs.HistogramVec
	// stageSeconds observes per-stage latency (split, process,
	// aggregate, admit, wal_commit, noise). The serving layer reuses the
	// same family for its stages (parse, queue_wait).
	stageSeconds *obs.HistogramVec
	// queries counts executions by outcome.
	queries *obs.CounterVec
	// releases counts noised data releases handed to analysts.
	releases *obs.Counter
	// epsSpent accumulates ε charged per camera.
	epsSpent *obs.CounterVec
	// sandboxSeconds observes individual sandboxed chunk executions
	// (cache hits bypass it entirely).
	sandboxSeconds *obs.Histogram
	// sandboxRuns counts sandbox executions by result: "clean", or
	// "fallback" when the executable timed out or panicked and the
	// contract substituted default rows.
	sandboxRuns *obs.CounterVec

	// Hot-path children, resolved once here so the per-chunk and
	// per-stage paths skip the family's locked label lookup. The vecs
	// above stay for labels not known at construction (cameras) and as
	// the fallback for unexpected stage names.
	sandboxClean    *obs.Counter
	sandboxFallback *obs.Counter
	stages          map[string]*obs.Histogram
}

// engineStages is the fixed set of pipeline stages the engine times.
// The serving layer adds its own (parse, queue_wait) to the same
// family.
var engineStages = []string{"split", "process", "aggregate", "admit", "wal_commit", "noise"}

// newEngineMetrics registers the engine's instrument families in reg.
// A nil reg yields all-nil (no-op) instruments.
func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	m := &engineMetrics{
		querySeconds: reg.HistogramVec("privid_query_seconds",
			"End-to-end query execution latency by outcome.", nil, "outcome"),
		stageSeconds: reg.HistogramVec("privid_query_stage_seconds",
			"Query latency by pipeline stage.", nil, "stage"),
		queries: reg.CounterVec("privid_queries_total",
			"Query executions by outcome (ok, denied, error).", "outcome"),
		releases: reg.Counter("privid_releases_total",
			"Noised data releases returned to analysts."),
		epsSpent: reg.CounterVec("privid_epsilon_spent_total",
			"Privacy budget charged, per camera.", "camera"),
		sandboxSeconds: reg.Histogram("privid_sandbox_exec_seconds",
			"Sandboxed chunk execution latency (cache hits excluded).", nil),
		sandboxRuns: reg.CounterVec("privid_sandbox_runs_total",
			"Sandbox executions by result (clean, fallback).", "result"),
	}
	if reg != nil {
		m.sandboxClean = m.sandboxRuns.With("clean")
		m.sandboxFallback = m.sandboxRuns.With("fallback")
		m.stages = make(map[string]*obs.Histogram, len(engineStages))
		for _, s := range engineStages {
			m.stages[s] = m.stageSeconds.With(s)
		}
	}
	return m
}

// stage observes one pipeline stage's duration.
func (m *engineMetrics) stage(name string, d time.Duration) {
	if m == nil {
		return
	}
	if h, ok := m.stages[name]; ok {
		h.Observe(d.Seconds())
		return
	}
	m.stageSeconds.With(name).Observe(d.Seconds())
}

// sandbox observes one sandboxed chunk execution.
func (m *engineMetrics) sandbox(d time.Duration, clean bool) {
	if m == nil {
		return
	}
	m.sandboxSeconds.Observe(d.Seconds())
	if clean {
		m.sandboxClean.Inc()
	} else {
		m.sandboxFallback.Inc()
	}
}

// queryDone classifies one finished execution. Budget denials count as
// "denied"; everything else that failed is "error" (including a
// persistence failure, which withholds the result like a denial but is
// an operational fault, not a privacy decision).
func (m *engineMetrics) queryDone(res *Result, err error, d time.Duration) {
	if m == nil {
		return
	}
	outcome := "ok"
	var exhausted *dp.ErrBudgetExhausted
	switch {
	case err == nil:
	case errors.As(err, &exhausted):
		outcome = "denied"
	default:
		outcome = "error"
	}
	m.queries.With(outcome).Inc()
	m.querySeconds.With(outcome).Observe(d.Seconds())
	if res != nil {
		m.releases.Add(float64(len(res.Releases)))
		for _, cb := range res.Cameras {
			m.epsSpent.With(cb.Camera).Add(cb.EpsilonSpent)
		}
	}
}

// storeMetrics builds the WAL's instrument set against reg (all no-op
// when reg is nil).
func storeMetrics(reg *obs.Registry) store.Metrics {
	return store.Metrics{
		AppendSeconds: reg.Histogram("privid_wal_append_seconds",
			"Durable WAL append latency (write + fsync).", nil),
		FsyncSeconds: reg.Histogram("privid_wal_fsync_seconds",
			"WAL fsync latency.", nil),
		CommitRecords: reg.Histogram("privid_wal_commit_records",
			"Records per durable WAL append (group-commit batch size).",
			commitRecordBuckets),
	}
}

// registerCollectors installs the engine's scrape-time collectors:
// sandbox pool occupancy, chunk-cache counters, per-camera budget
// gauges, and WAL state. Called exactly once, at the end of Open —
// never later, and never under e.mu — so a scrape (which runs the
// collectors under the registry's read lock) can safely take e.mu
// without lock-order inversion against registration.
func (e *Engine) registerCollectors(reg *obs.Registry) {
	reg.GaugeFunc("privid_sandbox_inflight",
		"Sandbox executions currently holding a parallelism slot.",
		func() float64 { return float64(len(e.procSem)) })

	cacheStat := func(f func() float64) func(obs.Emit) {
		return func(emit obs.Emit) { emit(nil, f()) }
	}
	reg.CollectFunc("privid_chunk_cache_hits_total",
		"Chunk-result cache hits.", obs.TypeCounter, nil,
		cacheStat(func() float64 { return float64(e.CacheStats().Hits) }))
	reg.CollectFunc("privid_chunk_cache_misses_total",
		"Chunk-result cache misses.", obs.TypeCounter, nil,
		cacheStat(func() float64 { return float64(e.CacheStats().Misses) }))
	reg.CollectFunc("privid_chunk_cache_evictions_total",
		"Chunk-result cache evictions.", obs.TypeCounter, nil,
		cacheStat(func() float64 { return float64(e.CacheStats().Evictions) }))
	reg.CollectFunc("privid_chunk_cache_entries",
		"Chunk-result cache resident entries.", obs.TypeGauge, nil,
		cacheStat(func() float64 { return float64(e.CacheStats().Entries) }))
	reg.CollectFunc("privid_chunk_cache_puts_total",
		"Chunk-result cache write-through stores (disk→RAM promotions excluded).",
		obs.TypeCounter, nil,
		cacheStat(func() float64 { return float64(e.CacheStats().Puts) }))
	reg.CollectFunc("privid_chunk_cache_bytes",
		"Chunk-result cache resident bytes.", obs.TypeGauge, nil,
		cacheStat(func() float64 { return float64(e.CacheStats().Bytes) }))

	reg.CollectFunc("privid_partial_agg_plans_total",
		"Aggregation-pushdown plans built (one per mergeable SELECT per PROCESS execution).",
		obs.TypeCounter, nil,
		cacheStat(func() float64 { return float64(e.PartialStats().Plans) }))
	reg.CollectFunc("privid_partial_agg_declined_total",
		"PROCESS executions with pushdown candidates that fell back to full materialization.",
		obs.TypeCounter, nil,
		cacheStat(func() float64 { return float64(e.PartialStats().Declined) }))
	reg.CollectFunc("privid_partial_agg_folds_total",
		"Per-chunk folds of sandbox output into partial aggregate states.",
		obs.TypeCounter, nil,
		cacheStat(func() float64 { return float64(e.PartialStats().Folds) }))
	reg.CollectFunc("privid_partial_agg_merges_total",
		"Partial aggregate state merges.", obs.TypeCounter, nil,
		cacheStat(func() float64 { return float64(e.PartialStats().Merges) }))
	reg.CollectFunc("privid_partial_agg_chunks_cached_total",
		"Chunks answered entirely from the partial-state cache tier (no sandbox, no fold).",
		obs.TypeCounter, nil,
		cacheStat(func() float64 { return float64(e.PartialStats().CachedChunks) }))
	reg.CollectFunc("privid_partial_agg_state_hits_total",
		"Partial-state cache hits (per plan × chunk lookups).", obs.TypeCounter, nil,
		cacheStat(func() float64 { return float64(e.PartialStats().StateHits) }))
	reg.CollectFunc("privid_partial_agg_state_misses_total",
		"Partial-state cache misses.", obs.TypeCounter, nil,
		cacheStat(func() float64 { return float64(e.PartialStats().StateMisses) }))
	reg.CollectFunc("privid_partial_agg_state_puts_total",
		"Partial-state cache stores.", obs.TypeCounter, nil,
		cacheStat(func() float64 { return float64(e.PartialStats().StatePuts) }))

	if e.flight != nil {
		reg.CollectFunc("privid_chunk_singleflight_leaders_total",
			"Chunk executions performed under singleflight leadership (initial leaders plus promoted followers).",
			obs.TypeCounter, nil,
			cacheStat(func() float64 { return float64(e.flight.Stats().Leaders) }))
		reg.CollectFunc("privid_chunk_singleflight_followers_total",
			"Chunk executions avoided by sharing a concurrent leader's result.",
			obs.TypeCounter, nil,
			cacheStat(func() float64 { return float64(e.flight.Stats().Followers) }))
		reg.CollectFunc("privid_chunk_singleflight_handoffs_total",
			"Followers promoted to leader after their leader's execution failed.",
			obs.TypeCounter, nil,
			cacheStat(func() float64 { return float64(e.flight.Stats().Handoffs) }))
		reg.CollectFunc("privid_chunk_singleflight_timeouts_total",
			"Followers that waited out their leader and executed alone.",
			obs.TypeCounter, nil,
			cacheStat(func() float64 { return float64(e.flight.Stats().Timeouts) }))
		reg.CollectFunc("privid_chunk_singleflight_waiting",
			"Followers currently blocked on a leader.", obs.TypeGauge, nil,
			cacheStat(func() float64 { return float64(e.flight.Stats().Waiting) }))
	}

	if e.opts.DiskCacheDir != "" {
		reg.CollectFunc("privid_chunk_cache_disk_hits_total",
			"Chunk-result lookups served by the disk tier.", obs.TypeCounter, nil,
			cacheStat(func() float64 { return float64(e.CacheStats().DiskHits) }))
		reg.CollectFunc("privid_chunk_cache_disk_misses_total",
			"Chunk-result lookups that missed the disk tier.", obs.TypeCounter, nil,
			cacheStat(func() float64 { return float64(e.CacheStats().DiskMisses) }))
		reg.CollectFunc("privid_chunk_cache_promotions_total",
			"Disk-tier hits promoted back into the RAM tier.", obs.TypeCounter, nil,
			cacheStat(func() float64 { return float64(e.CacheStats().Promotions) }))
		reg.CollectFunc("privid_chunk_cache_disk_bytes",
			"Disk-tier resident bytes across segments.", obs.TypeGauge, nil,
			cacheStat(func() float64 { return float64(e.CacheStats().DiskBytes) }))
		reg.CollectFunc("privid_chunk_cache_disk_segments",
			"Disk-tier segment-file count.", obs.TypeGauge, nil,
			cacheStat(func() float64 { return float64(e.CacheStats().DiskSegments) }))
		reg.CollectFunc("privid_chunk_cache_disk_evictions_total",
			"Disk-tier segments deleted to respect the size bound.", obs.TypeCounter, nil,
			cacheStat(func() float64 { return float64(e.CacheStats().DiskEvictions) }))
	}

	// One collector enumerates the cameras per scrape rather than
	// registering a child per RegisterCamera call: registration under
	// e.mu must never touch the registry lock (see package obs).
	perCamera := func(value func(*camera) float64) func(obs.Emit) {
		return func(emit obs.Emit) {
			e.mu.Lock()
			defer e.mu.Unlock()
			names := make([]string, 0, len(e.cameras))
			for name := range e.cameras {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				emit([]string{name}, value(e.cameras[name]))
			}
		}
	}
	reg.CollectFunc("privid_camera_epsilon_budget",
		"Configured per-frame privacy budget, per camera.",
		obs.TypeGauge, []string{"camera"},
		perCamera(func(c *camera) float64 { return c.cfg.Epsilon }))
	reg.CollectFunc("privid_camera_epsilon_remaining",
		"Worst-case remaining per-frame budget over all charged frames, per camera.",
		obs.TypeGauge, []string{"camera"},
		perCamera(func(c *camera) float64 { return c.ledger.MinRemaining() }))

	if e.wal != nil {
		reg.GaugeFunc("privid_wal_bytes",
			"Active WAL generation size in bytes.",
			func() float64 { return float64(e.wal.Info().WALBytes) })
		reg.GaugeFunc("privid_wal_generation",
			"Active WAL generation (advances on compaction).",
			func() float64 { return float64(e.wal.Info().Gen) })
		reg.GaugeFunc("privid_wal_records_since_snapshot",
			"WAL records the next compaction will fold into the snapshot.",
			func() float64 { return float64(e.wal.Info().RecordsSinceSnapshot) })
		reg.CollectFunc("privid_wal_snapshots_total",
			"WAL compactions taken by this process.", obs.TypeCounter, nil,
			func(emit obs.Emit) { emit(nil, float64(e.wal.Info().Snapshots)) })
	}
}
