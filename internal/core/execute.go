package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"privid/internal/cache"
	"privid/internal/dp"
	"privid/internal/obs"
	"privid/internal/policy"
	"privid/internal/query"
	"privid/internal/rel"
	"privid/internal/sandbox"
	"privid/internal/store"
	"privid/internal/table"
	"privid/internal/video"
	"privid/internal/vtime"
)

// ReleaseResult is one noised data release returned to the analyst.
type ReleaseResult struct {
	// Desc describes the aggregation, e.g. "COUNT(plate)[color=RED]".
	Desc string
	// Key is the group key for GROUP BY releases.
	Key    table.Value
	HasKey bool
	// Value is the released (noisy) number. For ARGMAX releases the
	// released value is ArgmaxKey instead.
	Value float64
	// ArgmaxKey is the winning key of an ARGMAX release.
	ArgmaxKey table.Value
	// RawArgmaxKey is the pre-noise winner; populated only in
	// Evaluation mode.
	RawArgmaxKey table.Value
	IsArgmax     bool
	// NoiseScale is the Laplace scale b = Δ/ε applied.
	NoiseScale float64
	// Epsilon is the budget the release consumed.
	Epsilon float64
	// Sensitivity is Δ(Q).
	Sensitivity float64
	// Raw is the pre-noise value; populated only in Evaluation mode.
	Raw float64
	// RawSet marks that Raw is meaningful.
	RawSet bool
	// Begin and End are the wall-clock span the release covers — the
	// query window for whole-table aggregates, the bucket span for
	// time-bucketed GROUP BY releases. Each touched camera is charged
	// over its queried span clipped to [Begin, End); external ledger
	// accounting (internal/sim's invariant checker) rebuilds the
	// per-frame charges from them.
	Begin, End time.Time
}

// CameraBudget reports one camera's share of a query's privacy cost:
// how much the query charged that camera's ledger and the worst-case
// budget left afterwards over the charged frames. It lets a fleet
// analyst see, per camera, how close each ledger is to exhaustion
// without a separate budget endpoint round-trip.
type CameraBudget struct {
	// Camera is the camera name.
	Camera string
	// EpsilonSpent is the total ε this query charged the camera (a
	// release spanning several cameras charges its ε on each, so the
	// per-camera values can sum to more than Result.EpsilonSpent).
	EpsilonSpent float64
	// Remaining is the minimum unspent budget over every frame this
	// query charged, measured after the charge landed.
	Remaining float64
}

// Result is the outcome of executing a program.
type Result struct {
	Releases []ReleaseResult
	// EpsilonSpent is the total budget the program consumed (sum over
	// releases).
	EpsilonSpent float64
	// Cameras reports the per-camera budget impact, sorted by camera
	// name (empty when the program released nothing chargeable).
	Cameras []CameraBudget
}

// slotGraceMultiple scales a PROCESS statement's TIMEOUT into the
// grace period after which a timed-out executable that still has not
// exited forfeits its Parallelism slot. Long enough that an executable
// merely overrunning keeps the engine-wide bound exact; short enough
// that a truly hung executable cannot wedge the engine.
const slotGraceMultiple = 4

// flightWaitMultiple scales the effective TIMEOUT into the longest a
// singleflight follower waits for its leader before giving up and
// executing on its own. A clean leader returns within one timeout;
// each handoff after a failed leader costs up to another. Four covers
// a leader plus a few handoffs, after which waiting longer is worse
// than paying the duplicate execution.
const flightWaitMultiple = 4

// splitShard is one camera's slice of a resolved chunk set: the
// concrete chunking plan for that camera (one video.Split per region;
// a single entry with empty region name when unsplit).
type splitShard struct {
	cam        *camera
	pol        policy.Policy // effective (mask-adjusted) policy
	maskID     string        // WITH MASK id ("" when unmasked)
	schemeName string        // BY REGION scheme name ("" when unsplit)
	interval   vtime.Interval
	chunkF     int64
	strideF    int64
	splits     []video.Split // one per region
	regions    int           // 0 when not region-split
	// regionsPerEvent is the max region-chunks one individual can
	// influence per temporal chunk (>1 only under Grid Split).
	regionsPerEvent int
}

// splitPlan is a resolved SPLIT or MERGE statement: one shard per
// contributing camera. multi marks chunk sets whose PROCESS rows carry
// the trusted camera provenance column (multi-camera SPLIT and every
// MERGE output).
type splitPlan struct {
	shards []*splitShard
	multi  bool
}

// Execute runs a parsed program end to end and returns its noised
// releases. On budget exhaustion the query is denied as a whole and
// nothing is consumed on any camera.
func (e *Engine) Execute(prog *query.Program) (*Result, error) {
	return e.execute(prog, "", nil, nil)
}

// ExecuteTagged runs prog like Execute, tagging its WAL charge records
// with tag — typically a hash of the query source — so the durable
// ledger ties every ε debit to the query that caused it. An empty tag
// falls back to a fingerprint of the charge set.
func (e *Engine) ExecuteTagged(prog *query.Program, tag string) (*Result, error) {
	return e.execute(prog, tag, nil, nil)
}

// ExecuteTraced runs prog like ExecuteTagged and additionally records
// a span tree of the execution: one span per pipeline stage, one child
// span per camera shard of each PROCESS (with cache hit/miss counts
// and sandbox time), and admission/commit outcomes. The trace is
// returned even when execution fails, so denials and errors are
// diagnosable. Trace attributes carry only identifiers, counts,
// durations and ε amounts — never released values or row contents.
func (e *Engine) ExecuteTraced(prog *query.Program, tag string) (*Result, *obs.Trace, error) {
	tr := obs.NewTrace("query", nil)
	res, err := e.execute(prog, tag, nil, tr.Root())
	if err != nil {
		tr.Root().Set("error", err.Error())
	}
	tr.Finish()
	return res, tr, err
}

// execute optionally filters which releases are emitted (and paid
// for); a nil filter keeps everything. Standing queries use the filter
// to release only newly completed buckets (Appendix D's streaming
// semantics). sp, when non-nil, receives one child span per pipeline
// stage.
func (e *Engine) execute(prog *query.Program, tag string, keep func(rel.Release) bool, sp *obs.Span) (*Result, error) {
	start := time.Now()
	res, err := e.executeStages(prog, tag, keep, sp)
	e.met.queryDone(res, err, time.Since(start))
	return res, err
}

// executeStages is the pipeline body of execute; see Execute for
// semantics and the admission comment below for crash-safety ordering.
func (e *Engine) executeStages(prog *query.Program, tag string, keep func(rel.Release) bool, sp *obs.Span) (*Result, error) {
	stageStart := time.Now()
	splitSp := sp.Child("split")
	defer splitSp.End()
	plans := map[string]*splitPlan{}
	for _, st := range prog.Splits {
		p, err := e.resolveSplit(st)
		if err != nil {
			return nil, err
		}
		plans[st.Into] = p
	}
	// MERGE unions previously resolved chunk sets; validation already
	// guaranteed the inputs exist, are distinct, and share a region
	// scheme. The merged set always stamps camera provenance, even
	// when the inputs happen to cover a single camera: its sensitivity
	// composes per shard either way.
	for _, m := range prog.Merges {
		merged := &splitPlan{multi: true}
		for _, in := range m.Inputs {
			p, ok := plans[in]
			if !ok {
				return nil, fmt.Errorf("core: MERGE input %q is not a defined chunk set", in)
			}
			merged.shards = append(merged.shards, p.shards...)
		}
		plans[m.Into] = merged
	}
	splitSp.Set("chunk_sets", len(plans))
	splitSp.End()
	e.met.stage("split", time.Since(stageStart))

	// Partial-aggregation pushdown: group the SELECTs by the one PROCESS
	// table they reference. A table qualifies when every SELECT touching
	// it touches nothing else (a JOIN or UNION partner forces the full
	// materialized path for all tables involved); whether each candidate
	// SELECT is actually mergeable is decided in runProcess, once the
	// stamped schema and shard metadata exist.
	pushCands := map[string][]*query.SelectStmt{}
	if !e.opts.DisablePartialPushdown {
		excluded := map[string]bool{}
		for _, sel := range prog.Selects {
			refs := rel.ReferencedTables(sel.From)
			if len(refs) == 1 {
				pushCands[refs[0]] = append(pushCands[refs[0]], sel)
				continue
			}
			for _, r := range refs {
				excluded[r] = true
			}
		}
		for name := range excluded {
			delete(pushCands, name)
		}
	}

	stageStart = time.Now()
	env := rel.Env{}
	// pushedRels carries releases computed on the streaming-merge path,
	// keyed by statement; the SELECT stage below consumes them in place
	// of ExecuteSelect. A later PROCESS into the same table overwrites
	// both the env entry and its statements' releases, matching the
	// last-write-wins semantics the env always had.
	pushedRels := map[*query.SelectStmt][]rel.Release{}
	for _, st := range prog.Processes {
		procSp := sp.Child("process")
		procSp.Set("table", st.Into)
		inst, rels, err := e.runProcess(st, plans[st.Input], pushCands[st.Into], procSp)
		procSp.End()
		if err != nil {
			return nil, err
		}
		env[st.Into] = inst
		for sel, rs := range rels {
			pushedRels[sel] = rs
		}
	}
	e.met.stage("process", time.Since(stageStart))

	// Execute every SELECT to releases first, then admit the whole
	// program's budget atomically, then add noise.
	stageStart = time.Now()
	aggSp := sp.Child("aggregate")
	defer aggSp.End()
	type pending struct {
		rel rel.Release
	}
	var pendings []pending
	for _, st := range prog.Selects {
		rels, pushed := pushedRels[st]
		if !pushed {
			var err error
			rels, err = rel.ExecuteSelect(st, env)
			if err != nil {
				return nil, err
			}
		}
		epsDefault := e.opts.DefaultQueryEpsilon / float64(len(rels))
		for _, r := range rels {
			if st.Consuming > 0 {
				r.Epsilon = st.Consuming
			} else {
				r.Epsilon = epsDefault
			}
			if keep != nil && !keep(r) {
				continue
			}
			pendings = append(pendings, pending{rel: r})
		}
	}
	aggSp.Set("releases", len(pendings))
	aggSp.End()
	e.met.stage("aggregate", time.Since(stageStart))

	// Build per-camera charges. Each release charges every camera it
	// depends on, over that camera's own charge window (its queried
	// span clipped to the release's span) mapped through the camera's
	// own frame clock.
	charges := map[string][]dp.Charge{}
	for _, p := range pendings {
		for _, camName := range p.rel.Cameras {
			cam, err := e.lookupCamera(camName)
			if err != nil {
				return nil, err
			}
			w, ok := p.rel.CamWindows[camName]
			if !ok {
				w = [2]time.Time{p.rel.Begin, p.rel.End}
			}
			clock := cam.cfg.Source.Info().Clock()
			iv := vtime.NewInterval(clock.FrameAt(w[0]), clock.FrameAt(w[1]))
			charges[camName] = append(charges[camName], dp.Charge{Interval: iv, Eps: p.rel.Epsilon})
		}
	}
	camNames := make([]string, 0, len(charges))
	for camName := range charges {
		camNames = append(camNames, camName)
	}
	sort.Strings(camNames)

	// Admission (Algorithm 1 lines 1–5, atomic across cameras), in
	// three phases so the durable fsync happens outside the engine
	// lock and concurrent queries' charges share group commits:
	//
	//  1. Reserve: under the lock, dp.ReserveAll checks every touched
	//     camera's ledger and holds the charges as reservations (they
	//     block competing queries); if any single camera denies, every
	//     reservation is dropped and no camera is charged anything.
	//  2. Persist: outside the lock, append every charge plus the
	//     audit entry to the WAL and fsync. A failure releases the
	//     reservations exactly and denies the query — the analyst
	//     never sees a noised result whose charge is not on disk.
	//  3. Finalize: under the lock, move reservations into the spent
	//     ledgers, then noise and release.
	//
	// A crash between 2 and 3 leaves charges on disk for a result
	// nobody received: recovery over-charges (at-least-once), never
	// under-charges.
	stageStart = time.Now()
	admitSp := sp.Child("admit")
	defer admitSp.End()
	for _, camName := range camNames {
		var eps float64
		for _, c := range charges[camName] {
			eps += c.Eps
		}
		camSp := admitSp.Child("reserve")
		camSp.Set("camera", camName)
		camSp.Set("charges", len(charges[camName]))
		camSp.Set("epsilon", eps)
		camSp.End()
	}
	e.mu.Lock()
	demands := make([]dp.Demand, 0, len(camNames))
	for _, camName := range camNames {
		cam := e.cameras[camName]
		demands = append(demands, dp.Demand{
			Ledger:    cam.ledger,
			Charges:   charges[camName],
			RhoFrames: cam.cfg.Policy.RhoFrames(cam.cfg.Source.Info().FPS),
		})
	}
	resv, err := dp.ReserveAll(demands)
	if err != nil {
		denied := AuditEntry{At: e.clock(), Cameras: camNames, Denied: true, Reason: err.Error()}
		e.recordAudit(denied)
		e.mu.Unlock()
		e.persistDeniedAudit(denied)
		admitSp.Set("outcome", "denied")
		admitSp.Set("reason", err.Error())
		var exhausted *dp.ErrBudgetExhausted
		if errors.As(err, &exhausted) {
			admitSp.Set("denied_camera", exhausted.Camera)
		}
		return nil, err
	}
	// Stamp the audit time under the lock: Options.Now test clocks
	// need not be goroutine-safe, and every other clock() call site
	// holds e.mu.
	at := e.clock()
	e.mu.Unlock()
	admitSp.Set("outcome", "reserved")
	admitSp.End()
	e.met.stage("admit", time.Since(stageStart))

	if tag == "" {
		tag = chargeFingerprint(camNames, charges)
	}
	var totalEps float64
	for _, p := range pendings {
		totalEps += p.rel.Epsilon
	}
	recs := make([]store.Record, 0, len(pendings)+1)
	for _, camName := range camNames {
		for _, c := range charges[camName] {
			recs = append(recs, store.Record{Charge: &store.ChargeRecord{
				Camera: camName,
				Start:  c.Interval.Start,
				End:    c.Interval.End,
				Eps:    c.Eps,
				Query:  tag,
			}})
		}
	}
	recs = append(recs, store.Record{Audit: &store.AuditRecord{
		At:           at,
		Cameras:      camNames,
		Releases:     len(pendings),
		EpsilonSpent: totalEps,
	}})
	stageStart = time.Now()
	commitSp := sp.Child("wal_commit")
	commitSp.Set("records", len(recs))
	defer commitSp.End()
	if err := e.store.Commit(recs...); err != nil {
		e.mu.Lock()
		resv.Release()
		e.recordAudit(AuditEntry{
			Cameras: camNames, Denied: true,
			Reason: "charge not persisted: " + err.Error(),
		})
		e.mu.Unlock()
		commitSp.Set("outcome", "failed")
		return nil, fmt.Errorf("core: charge not persisted, result withheld: %w", err)
	}
	commitSp.End()
	e.met.stage("wal_commit", time.Since(stageStart))

	stageStart = time.Now()
	noiseSp := sp.Child("noise")
	defer noiseSp.End()
	e.mu.Lock()
	resv.Finalize()
	res := &Result{}
	for _, p := range pendings {
		res.Releases = append(res.Releases, e.noiseRelease(p.rel))
		res.EpsilonSpent += p.rel.Epsilon
	}
	for _, camName := range camNames {
		cam := e.cameras[camName]
		cb := CameraBudget{Camera: camName, Remaining: math.Inf(1)}
		for _, c := range charges[camName] {
			cb.EpsilonSpent += c.Eps
			if r := cam.ledger.RemainingOver(c.Interval); r < cb.Remaining {
				cb.Remaining = r
			}
		}
		res.Cameras = append(res.Cameras, cb)
	}
	e.recordAudit(AuditEntry{
		At:           at,
		Cameras:      camNames,
		Releases:     len(res.Releases),
		EpsilonSpent: res.EpsilonSpent,
	})
	e.mu.Unlock()
	noiseSp.Set("releases", len(res.Releases))
	noiseSp.Set("epsilon", res.EpsilonSpent)
	noiseSp.End()
	e.met.stage("noise", time.Since(stageStart))
	return res, nil
}

// persistDeniedAudit records a denial in the durable audit log,
// best-effort: the denial consumed no budget, so accountability —
// unlike charges — may tolerate a lost entry when the store itself is
// failing.
func (e *Engine) persistDeniedAudit(entry AuditEntry) {
	_ = e.store.Commit(store.Record{Audit: &store.AuditRecord{
		At:           entry.At,
		Cameras:      entry.Cameras,
		Denied:       true,
		Reason:       entry.Reason,
		EpsilonSpent: entry.EpsilonSpent,
	}})
}

// chargeFingerprint derives a stable tag for untagged executions from
// the charge set itself.
func chargeFingerprint(camNames []string, charges map[string][]dp.Charge) string {
	h := fnv.New64a()
	for _, camName := range camNames {
		fmt.Fprintf(h, "%s:", camName)
		for _, c := range charges[camName] {
			fmt.Fprintf(h, "[%d,%d)=%g;", c.Interval.Start, c.Interval.End, c.Eps)
		}
	}
	return fmt.Sprintf("auto-%016x", h.Sum64())
}

// noiseRelease applies the Laplace mechanism (or noisy-max for ARGMAX)
// to one release. Caller holds e.mu (the noise stream is shared).
func (e *Engine) noiseRelease(r rel.Release) ReleaseResult {
	out := ReleaseResult{
		Desc:        r.Desc,
		Key:         r.Key,
		HasKey:      r.HasKey,
		Epsilon:     r.Epsilon,
		Sensitivity: r.Sensitivity,
		NoiseScale:  dp.LaplaceScale(r.Sensitivity, r.Epsilon),
		Begin:       r.Begin,
		End:         r.End,
	}
	if len(r.Scores) > 0 {
		out.IsArgmax = true
		best := 0
		bestScore := 0.0
		for i, s := range r.Scores {
			noisy := s.Raw + e.noise.Laplace(out.NoiseScale)
			if i == 0 || noisy > bestScore {
				best = i
				bestScore = noisy
			}
		}
		out.ArgmaxKey = r.Scores[best].Key
		if e.opts.Evaluation {
			// Raw winner for accuracy studies.
			rawBest := 0
			for i, s := range r.Scores {
				if s.Raw > r.Scores[rawBest].Raw {
					rawBest = i
				}
			}
			out.RawArgmaxKey = r.Scores[rawBest].Key
			out.RawSet = true
		}
		return out
	}
	out.Value = r.Raw + e.noise.Laplace(out.NoiseScale)
	if e.opts.Evaluation {
		out.Raw = r.Raw
		out.RawSet = true
	}
	return out
}

// resolveSplit turns a SPLIT statement into one concrete chunking
// shard per listed camera.
func (e *Engine) resolveSplit(st *query.SplitStmt) (*splitPlan, error) {
	plan := &splitPlan{multi: len(st.Cameras) > 1}
	for _, camName := range st.Cameras {
		sh, err := e.resolveShard(st, camName)
		if err != nil {
			return nil, err
		}
		plan.shards = append(plan.shards, sh)
	}
	return plan, nil
}

// resolveShard resolves one camera of a SPLIT statement: window
// intersection, chunk/stride frame conversion at the camera's FPS,
// mask policy lookup, and region scheme resolution.
func (e *Engine) resolveShard(st *query.SplitStmt, camName string) (*splitShard, error) {
	cam, err := e.lookupCamera(camName)
	if err != nil {
		return nil, err
	}
	info := cam.cfg.Source.Info()
	clock := info.Clock()

	iv := vtime.NewInterval(clock.FrameAt(st.Begin), clock.FrameAt(st.End))
	iv = iv.Intersect(info.Bounds())
	if iv.Empty() {
		return nil, fmt.Errorf("core: SPLIT window %v–%v is outside camera %q's stream", st.Begin, st.End, camName)
	}

	toFrames := func(d query.Dur) (int64, error) {
		if d.IsFrames {
			return d.Frames, nil
		}
		return info.FPS.Frames(time.Duration(d.Seconds * float64(time.Second)))
	}
	chunkF, err := toFrames(st.Chunk)
	if err != nil {
		return nil, fmt.Errorf("core: chunk duration: %w", err)
	}
	if chunkF <= 0 {
		return nil, fmt.Errorf("core: chunk duration must be at least one frame")
	}
	strideF, err := toFrames(st.Stride)
	if err != nil {
		return nil, fmt.Errorf("core: stride: %w", err)
	}

	// Resolve the mask: the effective policy comes from the published
	// policy map entry; no mask means the camera default. Every camera
	// of a multi-camera SPLIT must publish the mask itself.
	src := cam.cfg.Source
	pol := cam.cfg.Policy
	if st.Mask != "" {
		if cam.cfg.Policies == nil {
			return nil, fmt.Errorf("core: camera %q publishes no masks", camName)
		}
		entry, ok := cam.cfg.Policies.Lookup(st.Mask)
		if !ok {
			return nil, fmt.Errorf("core: camera %q has no mask %q", camName, st.Mask)
		}
		src = video.Masked(src, entry.Mask)
		pol = entry.Policy
	}

	sh := &splitShard{
		cam: cam, pol: pol, maskID: st.Mask, schemeName: st.Region,
		interval: iv, chunkF: chunkF, strideF: strideF,
	}

	if st.Region != "" {
		sch, ok := cam.cfg.Schemes[st.Region]
		switch {
		case ok:
			// Soft boundaries require chunk size 1 so an individual
			// can be in at most one chunk at a time (§7.2).
			if !sch.Hard && chunkF != 1 {
				return nil, fmt.Errorf("core: scheme %q has soft boundaries; BY REGION requires BY TIME 1frame", st.Region)
			}
			sh.regionsPerEvent = 1
		default:
			// Grid Split (§7.2 extension): any chunk size, with the
			// per-event region count derived from the owner's
			// object-size and speed bounds.
			g, gok := cam.cfg.GridSchemes[st.Region]
			if !gok {
				return nil, fmt.Errorf("core: camera %q has no region scheme %q", camName, st.Region)
			}
			sch = g.Scheme()
			sh.regionsPerEvent = g.RegionsPerChunk(chunkF, info.FPS)
		}
		for name, rsrc := range sch.Sources(src) {
			sh.splits = append(sh.splits, video.Split{
				Source:       rsrc,
				Interval:     iv,
				ChunkFrames:  chunkF,
				StrideFrames: strideF,
				Region:       name,
			})
		}
		sh.regions = len(sch.Regions)
	} else {
		sh.splits = []video.Split{{
			Source:       src,
			Interval:     iv,
			ChunkFrames:  chunkF,
			StrideFrames: strideF,
		}}
	}
	return sh, nil
}

// runProcess executes the analyst's executable over every chunk of the
// plan and materializes the intermediate table. Multi-camera plans run
// as a sharded pipeline: one worker per camera shard fans out over the
// engine's pool (bounded per camera by PerCameraParallelism), streams
// its partial table into the aggregator as it completes, and hits the
// chunk cache independently per camera — an N-camera query costs about
// the slowest shard's wall-clock, not the sum. Rows of multi-camera
// tables carry the trusted implicit camera column.
//
// Chunk results are memoized in the engine's chunk cache (when
// enabled): a chunk whose (content identity, executable, contract
// limits) key is already cached skips sandbox execution entirely.
// Caching affects only how fast the table materializes — admission and
// noise downstream never observe whether a row came from the sandbox
// or the cache.
//
// When every consuming SELECT of the table is a mergeable aggregation
// (cands, pre-grouped by executeStages; rel.PlanPartial accepts each),
// runProcess takes the streaming-merge path instead: each shard folds
// chunk blocks into per-plan partial states as they arrive and the
// full intermediate table is never materialized — peak memory scales
// with groups × cameras, not rows. The finalized releases are returned
// alongside an empty (schema- and metadata-correct) instance; they are
// differentially tested to match ExecuteSelect over the materialized
// table exactly. Per-chunk states are additionally memoized in the
// chunk cache's partial-state tier keyed on chunk content × plan
// identity, so a warm repeated or overlapping-window query skips both
// the sandbox and the per-chunk fold.
func (e *Engine) runProcess(st *query.ProcessStmt, plan *splitPlan, cands []*query.SelectStmt, sp *obs.Span) (*rel.Instance, map[*query.SelectStmt][]rel.Release, error) {
	if plan == nil || len(plan.shards) == 0 {
		return nil, nil, fmt.Errorf("core: PROCESS input %q has no SPLIT", st.Input)
	}
	fn, ok := e.registry.Lookup(st.Using)
	if !ok {
		return nil, nil, fmt.Errorf("core: executable %q not registered", st.Using)
	}
	cols := make([]table.Column, len(st.Schema))
	for i, c := range st.Schema {
		cols[i] = table.Column{Name: c.Name, Type: c.Type, Default: c.Default}
	}
	schema, err := table.NewSchema(cols...)
	if err != nil {
		return nil, nil, fmt.Errorf("core: PROCESS schema: %w", err)
	}
	// The executor always runs with a positive timeout. The parser
	// guarantees st.Timeout > 0 for parsed programs; programmatically
	// built Programs may leave it zero, which without the default would
	// make RunChecked block forever on a hung ProcessFunc — and, since
	// the slot-grace backstop scales off the timeout, leak that
	// execution's Parallelism slot permanently.
	effTimeout := st.Timeout
	if effTimeout <= 0 {
		effTimeout = e.opts.DefaultProcessTimeout
	}
	exec := sandbox.Executor{
		Fn:      fn,
		Timeout: effTimeout,
		MaxRows: st.MaxRows,
		Schema:  schema,
	}

	hasRegion := plan.shards[0].regions > 0
	full := schema.WithImplicitCols(hasRegion, plan.multi)

	// Shard metadata is derived entirely from the resolved plan — build
	// it up front so pushdown planning can see the same sensitivity
	// inputs ExecuteSelect would.
	metas := make([]rel.TableMeta, len(plan.shards))
	for i, sh := range plan.shards {
		info := sh.cam.cfg.Source.Info()
		clock := info.Clock()
		metas[i] = rel.TableMeta{
			Name:            st.Into,
			Camera:          sh.cam.cfg.Name,
			MaxRows:         st.MaxRows,
			ChunkFrames:     sh.chunkF,
			StrideFrames:    sh.strideF,
			FPS:             info.FPS,
			NumChunks:       sh.splits[0].NumChunks(),
			Begin:           clock.TimeOf(sh.interval.Start),
			End:             clock.TimeOf(sh.interval.End),
			Policy:          sh.pol,
			Regions:         sh.regions,
			RegionsPerEvent: sh.regionsPerEvent,
		}
	}

	// Pushdown decision: every candidate SELECT must plan as a mergeable
	// aggregation, else the whole table falls back to materialization
	// (a single table cannot be both streamed and materialized).
	var push *shardPushdown
	if len(cands) > 0 {
		pplans := make([]*rel.PartialPlan, 0, len(cands))
		for _, sel := range cands {
			pp := rel.PlanPartial(sel, st.Into, full, metas)
			if pp == nil {
				pplans = nil
				break
			}
			pplans = append(pplans, pp)
		}
		if pplans != nil {
			e.ppPlans.Add(uint64(len(pplans)))
			ids := make([]string, len(pplans))
			for i, pp := range pplans {
				ids[i] = pp.ID()
			}
			push = &shardPushdown{plans: pplans, ids: ids}
			sp.Set("pushdown_plans", len(pplans))
		} else {
			e.ppDeclined.Add(1)
		}
	}

	shardPar := e.opts.Parallelism
	if len(plan.shards) > 1 {
		shardPar = e.opts.PerCameraParallelism
	}

	if push != nil {
		// Streaming-merge path: per-shard fold, then a deterministic
		// merge in shard-index order (merge order cannot matter — the
		// property tests pin that — but determinism costs nothing).
		states := make([][]*rel.PartialState, len(plan.shards))
		errs := make([]error, len(plan.shards))
		if len(plan.shards) == 1 || e.opts.SerialShards {
			for i, sh := range plan.shards {
				states[i], errs[i] = e.runShardStreaming(sh, st, exec, schema, full, hasRegion, plan.multi, shardPar, push, sp)
			}
		} else {
			var wg sync.WaitGroup
			for i, sh := range plan.shards {
				wg.Add(1)
				go func(i int, sh *splitShard) {
					defer wg.Done()
					states[i], errs[i] = e.runShardStreaming(sh, st, exec, schema, full, hasRegion, plan.multi, shardPar, push, sp)
				}(i, sh)
			}
			wg.Wait()
		}
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
		agg := make([]*rel.PartialState, len(push.plans))
		for p, pp := range push.plans {
			agg[p] = pp.NewState()
		}
		for _, ss := range states {
			for p, pp := range push.plans {
				pp.Merge(agg[p], ss[p])
				e.ppMerges.Add(1)
			}
		}
		rels := make(map[*query.SelectStmt][]rel.Release, len(cands))
		for p, sel := range cands {
			rels[sel] = push.plans[p].Finalize(agg[p])
		}
		// The env still gets an instance with the right schema and shard
		// metadata, but no rows: every SELECT over this table is answered
		// from the merged states above.
		return rel.NewInstance(table.New(full), metas...), rels, nil
	}

	data := table.New(full)
	if len(plan.shards) == 1 || e.opts.SerialShards {
		for _, sh := range plan.shards {
			data.AppendTable(e.runShard(sh, st, exec, schema, full, hasRegion, plan.multi, shardPar, sp))
		}
	} else {
		// Sharded fan-out with a streaming aggregator: shards complete
		// in any order, but their columnar partials are appended in
		// shard order so the materialized table is deterministic (dedup
		// picks the same representative rows regardless of shard
		// timing).
		type partial struct {
			idx int
			tbl *table.Table
		}
		ch := make(chan partial, len(plan.shards))
		for i, sh := range plan.shards {
			go func(i int, sh *splitShard) {
				ch <- partial{idx: i, tbl: e.runShard(sh, st, exec, schema, full, hasRegion, plan.multi, shardPar, sp)}
			}(i, sh)
		}
		buffered := make(map[int]*table.Table, len(plan.shards))
		next := 0
		for range plan.shards {
			p := <-ch
			buffered[p.idx] = p.tbl
			for {
				tbl, ok := buffered[next]
				if !ok {
					break
				}
				data.AppendTable(tbl)
				delete(buffered, next)
				next++
			}
		}
	}

	return rel.NewInstance(data, metas...), nil, nil
}

// shardPushdown carries one PROCESS table's pushdown plans into the
// shard workers: the mergeable plan per candidate SELECT plus its
// precomputed identity (the partial-state cache key prefix).
type shardPushdown struct {
	plans []*rel.PartialPlan
	ids   []string
}

// shardTallies accumulates one shard's per-chunk counters in atomics
// (the chunk workers run concurrently); they land on the shard span
// once, keeping the span's mutex off the per-chunk hot path.
type shardTallies struct {
	hits, misses, sandboxNanos           atomic.Int64
	sfFollowers, sfHandoffs, sfAbandoned atomic.Int64
	stateChunks, folds                   atomic.Int64
}

// spanTallies lands the accumulated counters on a shard span.
func (e *Engine) spanTallies(ssp *obs.Span, tl *shardTallies) {
	if ssp == nil {
		return
	}
	if e.chunkCache != nil {
		ssp.Add("cache_hits", float64(tl.hits.Load()))
		ssp.Add("cache_misses", float64(tl.misses.Load()))
		// Chunks this shard did not execute because a concurrent
		// miss elsewhere led the same key (plus the failure modes:
		// promotions after a failed leader, waits abandoned after
		// flightWaitMultiple×TIMEOUT).
		if n := tl.sfFollowers.Load(); n > 0 {
			ssp.Add("singleflight_followers", float64(n))
		}
		if n := tl.sfHandoffs.Load(); n > 0 {
			ssp.Add("singleflight_handoffs", float64(n))
		}
		if n := tl.sfAbandoned.Load(); n > 0 {
			ssp.Add("singleflight_abandoned", float64(n))
		}
		// Chunks whose every plan's partial state came from the cache —
		// no sandbox execution and no fold.
		if n := tl.stateChunks.Load(); n > 0 {
			ssp.Add("partial_state_chunks", float64(n))
		}
	}
	if n := tl.folds.Load(); n > 0 {
		ssp.Add("partial_folds", float64(n))
	}
	ssp.Add("sandbox_seconds", time.Duration(tl.sandboxNanos.Load()).Seconds())
}

// fetchChunkBlock obtains one chunk's block in the declared schema —
// from the table cache, a singleflight peer, or a sandbox execution —
// and reports whether the block is clean (cache hits and shared
// results always are; an execution is clean unless the sandbox
// substituted fallback rows). key is empty exactly when the chunk
// cache is disabled.
func (e *Engine) fetchChunkBlock(key string, chunk *video.Chunk, exec sandbox.Executor, tl *shardTallies) (*table.Table, bool) {
	// execChunk is one raw sandbox execution: acquire a slot, run the
	// executable, return the chunk's block in the declared schema and
	// whether it completed cleanly.
	execChunk := func() (*table.Table, bool) {
		// The engine-wide semaphore keeps the total number of
		// in-flight sandbox executions — across every query
		// running concurrently — at Parallelism, so serving
		// many analysts cannot oversubscribe the CPU and push
		// executables past their wall-clock TIMEOUT.
		//
		// The slot is released when the executable goroutine
		// exits (on a timeout that is later than RunChecked's
		// return, so a slow executable cannot be double-booked)
		// — except that a hung executable forfeits its slot
		// after a grace period, so one non-terminating
		// ProcessFunc degrades to a bounded CPU leak instead of
		// permanently wedging every analyst's queries.
		e.procSem <- struct{}{}
		var once sync.Once
		var released atomic.Bool
		release := func() {
			once.Do(func() {
				released.Store(true)
				<-e.procSem
			})
		}
		runExec := exec
		runExec.Done = release
		execStart := time.Now()
		rows, clean := runExec.RunChecked(chunk)
		execDur := time.Since(execStart)
		e.met.sandbox(execDur, clean)
		tl.sandboxNanos.Add(int64(execDur))
		// Arm the grace backstop only when the slot is still
		// held — a panic's goroutine has already exited and
		// released, so it needs no timer. (A release racing
		// this check just leaves one harmless no-op timer.)
		// exec.Timeout is always positive (runProcess substitutes
		// the default for TIMEOUT-less programmatic statements), so
		// the backstop can always arm.
		if !clean && !released.Load() {
			time.AfterFunc(slotGraceMultiple*exec.Timeout, release)
		}
		return table.FromRows(exec.Schema, rows), clean
	}
	if e.chunkCache == nil {
		return execChunk()
	}
	if blk, ok := e.chunkCache.Get(key); ok {
		tl.hits.Add(1)
		return blk, true
	}
	tl.misses.Add(1)
	// Coalesce concurrent misses on this key onto one sandbox
	// execution: the leader executes and publishes, followers
	// share the frozen block by pointer.
	blk, clean, outcome := e.flight.Do(key, flightWaitMultiple*exec.Timeout, func() (*table.Table, bool) {
		// Re-check the cache under flight leadership: a clean
		// result published between this goroutine's miss above
		// and its Do call is in the cache by now (leaders cache
		// before dissolving the flight), and must not be
		// re-executed. Peek, not Get — the miss was already
		// counted above, and this internal re-check must not
		// distort the analyst-visible hit rate.
		if blk, ok := e.chunkCache.Peek(key); ok {
			return blk, true
		}
		blk, clean := execChunk()
		// Timeout/panic fallback rows depend on machine load,
		// not on the chunk; caching them would poison every
		// later query over this chunk with default rows. The
		// flight applies the same rule: an unclean result is
		// never published to followers (leadership is handed
		// off instead).
		if clean {
			e.chunkCache.Put(key, blk) // freezes blk
		}
		return blk, clean
	})
	switch outcome {
	case cache.Shared:
		tl.sfFollowers.Add(1)
	case cache.Handoff:
		tl.sfHandoffs.Add(1)
	case cache.Abandoned:
		tl.sfAbandoned.Add(1)
	}
	return blk, clean
}

// runShardStreaming is runShard's pushdown counterpart: instead of
// materializing the shard's stamped rows it folds every chunk into one
// partial state per plan and returns the shard's merged states (index-
// aligned with push.plans). Chunks whose every plan state is in the
// partial-state cache skip the sandbox and the fold entirely. The only
// error path is a fold failure, which PlanPartial's static checks make
// unreachable; it is propagated rather than swallowed so a planner bug
// turns into a query error, never a wrong release.
func (e *Engine) runShardStreaming(sh *splitShard, st *query.ProcessStmt, exec sandbox.Executor,
	schema, full table.Schema, hasRegion, multi bool, par int, push *shardPushdown, psp *obs.Span) ([]*rel.PartialState, error) {
	camName := sh.cam.cfg.Name
	camVal := table.S(camName)
	tl := &shardTallies{}
	ssp := psp.Child("shard")
	defer ssp.End()
	if ssp != nil {
		ssp.Set("camera", camName)
		ssp.Set("mode", "pushdown")
		chunks := 0
		for _, split := range sh.splits {
			chunks += len(split.ActiveChunks())
		}
		ssp.Set("chunks", chunks)
	}
	shard := make([]*rel.PartialState, len(push.plans))
	for p, pp := range push.plans {
		shard[p] = pp.NewState()
	}
	for _, split := range sh.splits {
		ords := split.ActiveChunks()
		stateByOrd := make([][]*rel.PartialState, len(ords))
		errByOrd := make([]error, len(ords))
		var keyPrefix string
		if e.chunkCache != nil {
			keyPrefix = chunkKeyPrefix(
				camName, sh.maskID, sh.schemeName,
				split.Region, st.Using, st.Timeout, st.MaxRows, schema,
				sh.chunkF, sh.strideF)
		}
		process := func(i int) {
			chunk := split.ChunkAt(ords[i])
			var chunkKey string
			if e.chunkCache != nil {
				chunkKey = keyPrefix + chunkKeySuffix(chunk.Interval)
				// Warm path: every plan's state for this chunk is
				// cached — no sandbox execution, no fold.
				states := make([]*rel.PartialState, len(push.plans))
				okAll := true
				for p := range push.plans {
					raw, ok := e.chunkCache.GetRaw(stateKey(push.ids[p], chunkKey))
					if !ok {
						okAll = false
						break
					}
					dec, err := rel.DecodePartialState(raw)
					if err != nil || !push.plans[p].Compatible(dec) {
						// Bit rot or a stale incompatible entry; fall
						// through to the fold path, which overwrites it.
						okAll = false
						break
					}
					states[p] = dec
				}
				if okAll {
					tl.stateChunks.Add(1)
					e.ppCachedChunks.Add(1)
					stateByOrd[i] = states
					return
				}
			}
			blk, clean := e.fetchChunkBlock(chunkKey, chunk, exec, tl)
			// Stamp the implicit columns onto a per-chunk mini-table so
			// the fold sees exactly the rows this chunk contributes to
			// the materialized table (same consts, same order).
			consts := make([]table.Value, 0, 3)
			consts = append(consts, table.N(float64(chunk.Start.Unix())))
			if hasRegion {
				consts = append(consts, table.S(split.Region))
			}
			if multi {
				consts = append(consts, camVal)
			}
			mini := table.New(full)
			mini.AppendBlock(blk, consts...)
			states := make([]*rel.PartialState, len(push.plans))
			for p, pp := range push.plans {
				ps, err := pp.Partial(mini, camName)
				if err != nil {
					errByOrd[i] = err
					return
				}
				tl.folds.Add(1)
				e.ppFolds.Add(1)
				if clean && e.chunkCache != nil {
					// Memoize only clean executions' states, mirroring
					// the table tier's fallback-row rule.
					e.chunkCache.PutRaw(stateKey(push.ids[p], chunkKey), ps.EncodeBinary())
				}
				states[p] = ps
			}
			stateByOrd[i] = states
		}
		if par > 1 && len(ords) > 1 {
			var wg sync.WaitGroup
			sem := make(chan struct{}, par)
			for i := range ords {
				wg.Add(1)
				sem <- struct{}{}
				go func(i int) {
					defer wg.Done()
					defer func() { <-sem }()
					process(i)
				}(i)
			}
			wg.Wait()
		} else {
			for i := range ords {
				process(i)
			}
		}
		for i := range ords {
			if errByOrd[i] != nil {
				return nil, fmt.Errorf("core: partial fold of chunk %d: %w", ords[i], errByOrd[i])
			}
			for p, pp := range push.plans {
				pp.Merge(shard[p], stateByOrd[i][p])
				e.ppMerges.Add(1)
			}
		}
	}
	e.spanTallies(ssp, tl)
	if ssp != nil {
		ssp.Set("rows", int(shard[0].Rows))
	}
	return shard, nil
}

// runShard executes the analyst's executable over every chunk of one
// camera shard and returns the stamped rows in deterministic chunk
// order. par bounds the shard's concurrent sandbox executions (the
// per-camera bound of the sharded executor); the engine-wide procSem
// still bounds the total across all shards and queries. Each shard
// records one child span under the PROCESS span (concurrent shards
// annotate sibling spans; Span is mutex-guarded).
func (e *Engine) runShard(sh *splitShard, st *query.ProcessStmt, exec sandbox.Executor,
	schema, full table.Schema, hasRegion, multi bool, par int, psp *obs.Span) *table.Table {
	out := table.New(full)
	camName := sh.cam.cfg.Name
	camVal := table.S(camName)
	tl := &shardTallies{}
	ssp := psp.Child("shard")
	defer ssp.End()
	if ssp != nil {
		ssp.Set("camera", camName)
		chunks := 0
		for _, split := range sh.splits {
			chunks += len(split.ActiveChunks())
		}
		ssp.Set("chunks", chunks)
	}
	for _, split := range sh.splits {
		ords := split.ActiveChunks()
		// Each chunk produces one frozen columnar block in the declared
		// PROCESS schema (the cacheable unit); blocks are stamped with
		// the implicit columns and merged in chunk order afterwards.
		blockByOrd := make([]*table.Table, len(ords))
		var keyPrefix string
		if e.chunkCache != nil {
			keyPrefix = chunkKeyPrefix(
				camName, sh.maskID, sh.schemeName,
				split.Region, st.Using, st.Timeout, st.MaxRows, schema,
				sh.chunkF, sh.strideF)
		}
		process := func(i int) {
			chunk := split.ChunkAt(ords[i])
			var key string
			if e.chunkCache != nil {
				key = keyPrefix + chunkKeySuffix(chunk.Interval)
			}
			blk, _ := e.fetchChunkBlock(key, chunk, exec, tl)
			blockByOrd[i] = blk
		}
		if par > 1 && len(ords) > 1 {
			var wg sync.WaitGroup
			sem := make(chan struct{}, par)
			for i := range ords {
				wg.Add(1)
				sem <- struct{}{}
				go func(i int) {
					defer wg.Done()
					defer func() { <-sem }()
					process(i)
				}(i)
			}
			wg.Wait()
		} else {
			for i := range ords {
				process(i)
			}
		}
		// Stamp implicit columns as per-block constants and merge in
		// chunk order: column-wise copies, no row materialization.
		for i, blk := range blockByOrd {
			consts := make([]table.Value, 0, 3)
			consts = append(consts, table.N(float64(split.ChunkAt(ords[i]).Start.Unix())))
			if hasRegion {
				consts = append(consts, table.S(split.Region))
			}
			if multi {
				consts = append(consts, camVal)
			}
			out.AppendBlock(blk, consts...)
		}
	}
	e.spanTallies(ssp, tl)
	if ssp != nil {
		ssp.Set("rows", out.Len())
	}
	return out
}
