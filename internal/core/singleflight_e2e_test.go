package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"privid/internal/obs"
	"privid/internal/policy"
	"privid/internal/query"
	"privid/internal/table"
	"privid/internal/video"
)

const singleflightQuery = `
SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/6:05am
  BY TIME 30sec STRIDE 0sec INTO chunks;
PROCESS chunks USING slowone TIMEOUT 5sec PRODUCING 5 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM t;`

// newSingleflightEngine builds an engine whose "slowone" executable
// emits one row per chunk after a short sleep (long enough that
// concurrent cold queries overlap in flight) and counts its
// executions.
func newSingleflightEngine(t *testing.T, execs *atomic.Int64) *Engine {
	t.Helper()
	e := New(Options{Seed: 1, Evaluation: true})
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: countScene(10)},
		Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
		Epsilon: 100,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Registry().Register("slowone", func(chunk *video.Chunk) []table.Row {
		execs.Add(1)
		time.Sleep(20 * time.Millisecond)
		return []table.Row{{table.N(1)}}
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSingleflightConcurrentColdQueries is the tentpole's e2e
// contract: 8 identical queries racing against a cold cache execute
// the sandbox exactly once per chunk — every other lookup is a cache
// hit or a singleflight follower sharing the leader's frozen block.
// Run under -race (followers share tables by pointer).
func TestSingleflightConcurrentColdQueries(t *testing.T) {
	var execs atomic.Int64
	e := newSingleflightEngine(t, &execs)
	prog, err := query.Parse(singleflightQuery)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const chunks = 10 // 5 min / 30 s
	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]*Result, workers)
	traces := make([]*obs.Trace, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			results[w], traces[w], errs[w] = e.ExecuteTraced(prog, fmt.Sprintf("sf-%d", w))
		}(w)
	}
	close(start)
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	// The heart of the contract: one sandbox execution per chunk,
	// total, across all 8 queries.
	if got := execs.Load(); got != chunks {
		t.Errorf("sandbox executed %d times, want %d (once per chunk)", got, chunks)
	}
	var buf strings.Builder
	if _, err := e.Metrics().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	exposition := buf.String()
	if want := fmt.Sprintf(`privid_sandbox_runs_total{result="clean"} %d`, chunks); !strings.Contains(exposition, want) {
		t.Errorf("exposition missing %q", want)
	}

	// Flow accounting: each of the 80 chunk lookups resolved as
	// exactly one of partial-state hit (the COUNT(*) pushes down, so a
	// worker arriving after another folded the chunk skips the sandbox
	// path entirely), table cache hit, singleflight follower, or
	// singleflight leader (leaders that found the block already
	// published re-served it from the cache without executing).
	// Nothing failed, so no handoffs and no abandoned waits.
	fs := e.FlightStats()
	cs := e.CacheStats()
	if cs.Hits+cs.StateHits+fs.Followers+fs.Leaders != workers*chunks {
		t.Errorf("hits(%d) + stateHits(%d) + followers(%d) + leaders(%d) != %d lookups",
			cs.Hits, cs.StateHits, fs.Followers, fs.Leaders, workers*chunks)
	}
	if fs.Followers == 0 {
		t.Errorf("no followers despite 8 overlapping cold queries")
	}
	if fs.Handoffs != 0 || fs.Timeouts != 0 {
		t.Errorf("clean run recorded handoffs=%d timeouts=%d", fs.Handoffs, fs.Timeouts)
	}
	if fs.Waiting != 0 {
		t.Errorf("%d followers still waiting after all queries returned", fs.Waiting)
	}
	for _, name := range []string{
		"privid_chunk_singleflight_leaders_total",
		"privid_chunk_singleflight_followers_total",
		"privid_chunk_singleflight_handoffs_total",
		"privid_chunk_singleflight_timeouts_total",
		"privid_chunk_singleflight_waiting",
		"privid_chunk_cache_puts_total",
	} {
		if !strings.Contains(exposition, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	if want := fmt.Sprintf("privid_chunk_cache_puts_total %d", chunks); !strings.Contains(exposition, want) {
		t.Errorf("exposition missing %q (fallback rows must not be stored)", want)
	}

	// The shard trace spans carry the follower tallies; summed over
	// every query's trace they must agree with the engine counter.
	var spanFollowers float64
	for _, tr := range traces {
		for _, sh := range findSpans(tr.Tree(), "shard") {
			spanFollowers += attrNum(t, sh, "singleflight_followers")
			if n := attrNum(t, sh, "singleflight_handoffs"); n != 0 {
				t.Errorf("clean run traced %v handoffs", n)
			}
		}
	}
	if spanFollowers != float64(fs.Followers) {
		t.Errorf("trace followers = %v, FlightStats.Followers = %d", spanFollowers, fs.Followers)
	}

	// Shared-by-pointer correctness: every query aggregated the same
	// intermediate rows, so every raw (pre-noise) count is identical.
	for w, res := range results {
		if len(res.Releases) != 1 {
			t.Fatalf("worker %d: %d releases", w, len(res.Releases))
		}
		if res.Releases[w%1].Raw != results[0].Releases[0].Raw {
			t.Errorf("worker %d raw=%v, worker 0 raw=%v (tables diverged)",
				w, res.Releases[0].Raw, results[0].Releases[0].Raw)
		}
	}
}

// TestSingleflightLeaderFailureHandoff drives the cancellation-safe
// handoff end to end: a leader whose execution panics (an unclean
// sandbox run) publishes nothing; a waiting follower is promoted,
// re-executes cleanly, and serves the result. The failed leader's
// query still completes (with the sandbox's fallback rows) and the
// followers are never wedged. Run under -race.
func TestSingleflightLeaderFailureHandoff(t *testing.T) {
	var execs atomic.Int64
	firstStarted := make(chan struct{})
	releaseFirst := make(chan struct{})
	e := New(Options{Seed: 1, Evaluation: true})
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: countScene(10)},
		Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
		Epsilon: 100,
	}); err != nil {
		t.Fatal(err)
	}
	// First execution blocks until the test has a follower waiting,
	// then panics; the retry succeeds.
	if err := e.Registry().Register("flaky", func(chunk *video.Chunk) []table.Row {
		if execs.Add(1) == 1 {
			close(firstStarted)
			<-releaseFirst
			panic("induced first-execution failure")
		}
		return []table.Row{{table.N(1)}}
	}); err != nil {
		t.Fatal(err)
	}
	const oneChunk = `
SPLIT camA BEGIN 03-15-2021/6:00am END 03-15-2021/6:01am
  BY TIME 60sec STRIDE 0sec INTO chunks;
PROCESS chunks USING flaky TIMEOUT 5sec PRODUCING 5 ROWS
  WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT SUM(range(one, 0, 1)) FROM t CONSUMING 0.2;`
	prog, err := query.Parse(oneChunk)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		res *Result
		err error
	}
	leaderDone := make(chan outcome, 1)
	followerDone := make(chan outcome, 1)
	go func() {
		res, err := e.Execute(prog)
		leaderDone <- outcome{res, err}
	}()
	<-firstStarted
	go func() {
		res, err := e.Execute(prog)
		followerDone <- outcome{res, err}
	}()
	// Only release the leader into its panic once the second query is
	// provably waiting on it, so the promotion path (not a fresh
	// flight) is what serves the follower.
	deadline := time.Now().Add(10 * time.Second)
	for e.FlightStats().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never started waiting on the leader")
		}
		time.Sleep(time.Millisecond)
	}
	close(releaseFirst)

	lead := <-leaderDone
	foll := <-followerDone
	if lead.err != nil {
		t.Fatalf("leader query failed: %v", lead.err)
	}
	if foll.err != nil {
		t.Fatalf("follower query failed: %v", foll.err)
	}
	// The leader's sandbox panicked: its table is the fallback default
	// row (one=0, so SUM=0). The promoted follower re-executed
	// cleanly: one row with one=1.
	if lead.res.Releases[0].Raw != 0 {
		t.Errorf("leader raw=%v, want 0 (fallback default row)", lead.res.Releases[0].Raw)
	}
	if foll.res.Releases[0].Raw != 1 {
		t.Errorf("follower raw=%v, want 1 (clean re-execution)", foll.res.Releases[0].Raw)
	}
	if got := execs.Load(); got != 2 {
		t.Errorf("executions=%d, want 2 (failed leader + promoted follower)", got)
	}
	fs := e.FlightStats()
	if fs.Handoffs != 1 {
		t.Errorf("handoffs=%d, want exactly 1", fs.Handoffs)
	}
	if fs.Timeouts != 0 {
		t.Errorf("timeouts=%d, want 0", fs.Timeouts)
	}
	// The clean retry was published and cached: a third query is pure
	// cache hits, no executions.
	if _, err := e.Execute(prog); err != nil {
		t.Fatalf("warm query failed: %v", err)
	}
	if got := execs.Load(); got != 2 {
		t.Errorf("warm query re-executed the sandbox (execs=%d)", got)
	}
}
