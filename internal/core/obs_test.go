package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"privid/internal/obs"
	"privid/internal/policy"
	"privid/internal/query"
	"privid/internal/video"
)

// findSpans collects every span named name, depth-first.
func findSpans(t obs.SpanTree, name string) []obs.SpanTree {
	var out []obs.SpanTree
	if t.Name == name {
		out = append(out, t)
	}
	for _, c := range t.Children {
		out = append(out, findSpans(c, name)...)
	}
	return out
}

// attrNum reads a numeric span attribute whatever its concrete type
// (Set stores ints, Add stores float64s).
func attrNum(t *testing.T, s obs.SpanTree, key string) float64 {
	t.Helper()
	switch v := s.Attrs[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	case int64:
		return float64(v)
	case nil:
		return 0
	default:
		t.Fatalf("attr %q has type %T", key, v)
		return 0
	}
}

// TestExecuteTracedSpanTree pins the trace contract: a multi-camera
// query yields one span per pipeline stage, one shard span per camera
// under PROCESS, and the shard spans' cache hit/miss tallies agree with
// the engine's cache counters.
func TestExecuteTracedSpanTree(t *testing.T) {
	e := newFleetEngine(t, Options{Seed: 1}, 3, 10)
	prog, err := query.Parse(fleetQuery)
	if err != nil {
		t.Fatal(err)
	}

	res, tr, err := e.ExecuteTraced(prog, "qhash-1")
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("no trace")
	}
	tree := tr.Tree()
	if tree.Name != "query" || tree.DurationNS <= 0 {
		t.Fatalf("root span: %+v", tree)
	}
	for _, stage := range []string{"split", "process", "aggregate", "admit", "wal_commit", "noise"} {
		if len(findSpans(tree, stage)) != 1 {
			t.Errorf("stage %q: %d spans, want 1", stage, len(findSpans(tree, stage)))
		}
	}

	shards := findSpans(tree, "shard")
	if len(shards) != 3 {
		t.Fatalf("shard spans: %d, want 3 (one per camera)", len(shards))
	}
	var misses float64
	cams := map[string]bool{}
	for _, sh := range shards {
		cams[sh.Attrs["camera"].(string)] = true
		if attrNum(t, sh, "chunks") != 60 { // 30 min / 30 s chunks
			t.Errorf("shard chunks = %v, want 60", sh.Attrs["chunks"])
		}
		if attrNum(t, sh, "cache_hits") != 0 {
			t.Errorf("cold run recorded cache hits: %v", sh.Attrs)
		}
		misses += attrNum(t, sh, "cache_misses")
	}
	for _, cam := range []string{"camA", "camB", "camC"} {
		if !cams[cam] {
			t.Errorf("no shard span for %s", cam)
		}
	}
	if stats := e.CacheStats(); misses != float64(stats.Misses) {
		t.Errorf("trace misses = %v, CacheStats.Misses = %d", misses, stats.Misses)
	}

	admit := findSpans(tree, "admit")[0]
	if admit.Attrs["outcome"] != "reserved" {
		t.Errorf("admit outcome: %v", admit.Attrs)
	}
	reserves := findSpans(tree, "reserve")
	if len(reserves) != 3 {
		t.Fatalf("reserve spans: %d, want 3", len(reserves))
	}
	var eps float64
	for _, r := range reserves {
		eps += attrNum(t, r, "epsilon")
	}
	if eps != res.EpsilonSpent*3 { // each release charges all 3 cameras
		t.Errorf("reserve epsilon sum = %v, want %v", eps, res.EpsilonSpent*3)
	}

	// Warm run: every chunk should come from the cache, and the shard
	// spans must say so in agreement with the cache counters.
	preHits := e.CacheStats().Hits
	_, tr2, err := e.ExecuteTraced(prog, "qhash-2")
	if err != nil {
		t.Fatal(err)
	}
	var hits float64
	for _, sh := range findSpans(tr2.Tree(), "shard") {
		hits += attrNum(t, sh, "cache_hits")
		if attrNum(t, sh, "cache_misses") != 0 {
			t.Errorf("warm run missed: %v", sh.Attrs)
		}
	}
	if got := e.CacheStats().Hits - preHits; hits != float64(got) {
		t.Errorf("trace hits = %v, CacheStats delta = %d", hits, got)
	}
}

// TestTracedDenialStillReturnsTrace pins that a budget denial produces
// a trace with the denial recorded on the admit span.
func TestTracedDenialStillReturnsTrace(t *testing.T) {
	e := newFleetEngine(t, Options{Seed: 1}, 1, 0.05) // budget below CONSUMING 0.2
	prog, err := query.Parse(strings.Replace(fleetQuery, "camA, camB, camC", "camA", 1))
	if err != nil {
		t.Fatal(err)
	}
	_, tr, err := e.ExecuteTraced(prog, "")
	if err == nil {
		t.Fatal("expected budget denial")
	}
	admits := findSpans(tr.Tree(), "admit")
	if len(admits) != 1 || admits[0].Attrs["outcome"] != "denied" {
		t.Fatalf("admit span: %+v", admits)
	}
	if admits[0].Attrs["denied_camera"] != "camA" {
		t.Errorf("denied_camera: %v", admits[0].Attrs)
	}
}

// TestEngineMetricsExposition executes queries and checks the scrape:
// valid Prometheus text, covering query stages, cache, per-camera
// budget, and outcome counters with exact values.
func TestEngineMetricsExposition(t *testing.T) {
	e := newFleetEngine(t, Options{Seed: 1}, 3, 10)
	prog, err := query.Parse(fleetQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(prog); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if _, err := e.Metrics().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if _, err := obs.CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, want := range []string{
		`privid_queries_total{outcome="ok"} 2`,
		`privid_epsilon_spent_total{camera="camB"} 0.4`,
		`privid_releases_total 2`,
		`privid_camera_epsilon_budget{camera="camA"} 10`,
		`privid_camera_epsilon_remaining{camera="camC"} 9.6`,
		`privid_chunk_cache_misses_total 180`,
		`privid_chunk_cache_hits_total 0`,
		`privid_partial_agg_plans_total 2`,
		`privid_partial_agg_folds_total 180`,
		`privid_partial_agg_state_hits_total 180`,
		`privid_partial_agg_state_puts_total 180`,
		`privid_query_stage_seconds_bucket{stage="process",le="+Inf"} 2`,
		`privid_sandbox_inflight 0`,
		"# TYPE privid_query_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(out, "privid_wal_bytes") {
		t.Error("WAL gauges exported without a state dir")
	}
}

// TestMetricsDenialAndDisable covers the denied outcome counter and the
// DisableMetrics escape hatch.
func TestMetricsDenialAndDisable(t *testing.T) {
	e := newFleetEngine(t, Options{Seed: 1}, 1, 0.05)
	prog, err := query.Parse(strings.Replace(fleetQuery, "camA, camB, camC", "camA", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(prog); err == nil {
		t.Fatal("expected denial")
	}
	var b strings.Builder
	if _, err := e.Metrics().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `privid_queries_total{outcome="denied"} 1`) {
		t.Error("denied outcome not counted")
	}

	d := newFleetEngine(t, Options{Seed: 1, DisableMetrics: true}, 1, 10)
	if d.Metrics() != nil {
		t.Error("DisableMetrics engine still has a registry")
	}
	if _, err := d.Execute(prog); err != nil {
		t.Fatalf("uninstrumented execute: %v", err)
	}
	if _, _, err := d.ExecuteTraced(prog, ""); err != nil {
		t.Fatalf("traced execute without metrics: %v", err)
	}
}

// TestCloseFlushesMetricsSnapshot pins the graceful-shutdown contract:
// Close writes a final exposition to StateDir/metrics.prom, and the
// registry stays scrapeable after Close (collectors must tolerate a
// closed WAL and idle engine).
func TestCloseFlushesMetricsSnapshot(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Seed: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterCamera(CameraConfig{
		Name:    "camA",
		Source:  &video.SceneSource{Camera: "camA", Scene: countScene(10)},
		Policy:  policy.Policy{Rho: 25 * time.Second, K: 1},
		Epsilon: 10,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Registry().Register("counter", countNewEntrants); err != nil {
		t.Fatal(err)
	}
	prog, err := query.Parse(strings.Replace(fleetQuery, "camA, camB, camC", "camA", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(prog); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(filepath.Join(dir, "metrics.prom"))
	if err != nil {
		t.Fatalf("final snapshot missing: %v", err)
	}
	if _, err := obs.CheckExposition(strings.NewReader(string(b))); err != nil {
		t.Fatalf("final snapshot invalid: %v", err)
	}
	if !strings.Contains(string(b), `privid_queries_total{outcome="ok"} 1`) {
		t.Error("final snapshot lost the query counter")
	}
	if !strings.Contains(string(b), "privid_wal_snapshots_total") {
		t.Error("final snapshot lacks WAL families")
	}

	// Post-Close scrape must still work cleanly.
	var after strings.Builder
	if _, err := e.Metrics().WriteTo(&after); err != nil {
		t.Fatalf("post-Close scrape: %v", err)
	}
	if _, err := obs.CheckExposition(strings.NewReader(after.String())); err != nil {
		t.Fatalf("post-Close exposition invalid: %v", err)
	}
}
