package table

import (
	"testing"
	"testing/quick"
)

func TestValueBasics(t *testing.T) {
	s := S("hello")
	if s.Type() != DString || s.Str() != "hello" {
		t.Errorf("string value: %+v", s)
	}
	if s.Num() != 0 {
		t.Errorf("non-numeric string Num=%v", s.Num())
	}
	n := N(3.5)
	if n.Type() != DNumber || n.Num() != 3.5 || n.Str() != "3.5" {
		t.Errorf("number value: %+v", n)
	}
	// Numeric strings parse.
	if S("42.5").Num() != 42.5 || S(" 7 ").Num() != 7 {
		t.Errorf("numeric string coercion failed")
	}
}

func TestValueEqualAndKey(t *testing.T) {
	if !S("a").Equal(S("a")) || S("a").Equal(S("b")) {
		t.Errorf("string equality wrong")
	}
	if !N(1).Equal(N(1)) || N(1).Equal(N(2)) {
		t.Errorf("number equality wrong")
	}
	if S("1").Equal(N(1)) {
		t.Errorf("cross-type equality must be false")
	}
	if S("1").Key() == N(1).Key() {
		t.Errorf("keys must be type-tagged")
	}
}

func TestValueCoerce(t *testing.T) {
	if v := S("42").Coerce(DNumber); v.Type() != DNumber || v.Num() != 42 {
		t.Errorf("S->N coerce: %+v", v)
	}
	if v := N(42).Coerce(DString); v.Type() != DString || v.Str() != "42" {
		t.Errorf("N->S coerce: %+v", v)
	}
	if v := N(1).Coerce(DNumber); v.Num() != 1 {
		t.Errorf("identity coerce: %+v", v)
	}
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "", Type: DNumber}); err == nil {
		t.Errorf("empty name accepted")
	}
	if _, err := NewSchema(Column{Name: "chunk", Type: DNumber}); err == nil {
		t.Errorf("reserved name accepted")
	}
	if _, err := NewSchema(Column{Name: "region", Type: DString}); err == nil {
		t.Errorf("reserved name accepted")
	}
	if _, err := NewSchema(
		Column{Name: "a", Type: DNumber},
		Column{Name: "a", Type: DString},
	); err == nil {
		t.Errorf("duplicate accepted")
	}
	s, err := NewSchema(Column{Name: "a", Type: DNumber, Default: N(5)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Index("a") != 0 || s.Index("b") != -1 || !s.Has("a") {
		t.Errorf("index/has wrong")
	}
}

func TestDefaultRow(t *testing.T) {
	s := MustSchema(
		Column{Name: "n", Type: DNumber, Default: N(-1)},
		Column{Name: "s", Type: DString, Default: S("x")},
		Column{Name: "coerced", Type: DNumber, Default: S("7")},
	)
	r := s.DefaultRow()
	if r[0].Num() != -1 || r[1].Str() != "x" {
		t.Errorf("defaults: %v", r)
	}
	if r[2].Type() != DNumber || r[2].Num() != 7 {
		t.Errorf("default not coerced to column type: %v", r[2])
	}
}

func TestWithImplicit(t *testing.T) {
	s := MustSchema(Column{Name: "n", Type: DNumber})
	si := s.WithImplicit(false)
	if !si.Has(ChunkColumn) || si.Has(RegionColumn) {
		t.Errorf("implicit columns: %v", si.Names())
	}
	sir := s.WithImplicit(true)
	if !sir.Has(RegionColumn) {
		t.Errorf("region column missing")
	}
	// Original schema untouched.
	if s.Has(ChunkColumn) {
		t.Errorf("WithImplicit mutated the original")
	}
}

func TestConform(t *testing.T) {
	s := MustSchema(
		Column{Name: "n", Type: DNumber, Default: N(0)},
		Column{Name: "s", Type: DString, Default: S("d")},
	)
	// Extra column dropped, types coerced.
	r := s.Conform(Row{S("9"), N(3), S("extra")})
	if len(r) != 2 || r[0].Num() != 9 || r[1].Str() != "3" {
		t.Errorf("conform: %v", r)
	}
	// Short row filled with defaults.
	r2 := s.Conform(Row{N(1)})
	if r2[1].Str() != "d" {
		t.Errorf("short conform: %v", r2)
	}
	// Empty row is all defaults.
	r3 := s.Conform(nil)
	if r3[0].Num() != 0 || r3[1].Str() != "d" {
		t.Errorf("empty conform: %v", r3)
	}
}

func TestTableColAndSort(t *testing.T) {
	s := MustSchema(
		Column{Name: "n", Type: DNumber},
		Column{Name: "s", Type: DString},
	)
	tb := New(s)
	tb.Append(Row{N(3), S("c")}, Row{N(1), S("a")}, Row{N(2), S("b")})
	if tb.Len() != 3 {
		t.Fatalf("len=%d", tb.Len())
	}
	col, err := tb.Col("n")
	if err != nil || len(col) != 3 {
		t.Fatalf("Col: %v %v", col, err)
	}
	if _, err := tb.Col("zzz"); err == nil {
		t.Errorf("missing column accepted")
	}
	if err := tb.SortBy("n"); err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][0].Num() != 1 || tb.Rows[2][0].Num() != 3 {
		t.Errorf("numeric sort wrong: %v", tb.Rows)
	}
	if err := tb.SortBy("s"); err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][1].Str() != "a" {
		t.Errorf("string sort wrong")
	}
}

func TestTableClone(t *testing.T) {
	s := MustSchema(Column{Name: "n", Type: DNumber})
	tb := New(s)
	tb.Append(Row{N(1)})
	c := tb.Clone()
	c.Rows[0][0] = N(99)
	c.Append(Row{N(2)})
	if tb.Rows[0][0].Num() != 1 || tb.Len() != 1 {
		t.Errorf("clone not deep")
	}
}

func TestConformProperties(t *testing.T) {
	s := MustSchema(
		Column{Name: "a", Type: DNumber, Default: N(0)},
		Column{Name: "b", Type: DString, Default: S("")},
	)
	// Conform always yields exactly the schema arity with declared
	// types, whatever garbage comes in.
	f := func(nums []float64, strs []string) bool {
		var raw Row
		for _, n := range nums {
			raw = append(raw, N(n))
		}
		for _, x := range strs {
			raw = append(raw, S(x))
		}
		out := s.Conform(raw)
		return len(out) == 2 && out[0].Type() == DNumber && out[1].Type() == DString
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
