package table

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueBasics(t *testing.T) {
	s := S("hello")
	if s.Type() != DString || s.Str() != "hello" {
		t.Errorf("string value: %+v", s)
	}
	if s.Num() != 0 {
		t.Errorf("non-numeric string Num=%v", s.Num())
	}
	n := N(3.5)
	if n.Type() != DNumber || n.Num() != 3.5 || n.Str() != "3.5" {
		t.Errorf("number value: %+v", n)
	}
	// Numeric strings parse.
	if S("42.5").Num() != 42.5 || S(" 7 ").Num() != 7 {
		t.Errorf("numeric string coercion failed")
	}
}

func TestValueEqualAndKey(t *testing.T) {
	if !S("a").Equal(S("a")) || S("a").Equal(S("b")) {
		t.Errorf("string equality wrong")
	}
	if !N(1).Equal(N(1)) || N(1).Equal(N(2)) {
		t.Errorf("number equality wrong")
	}
	if S("1").Equal(N(1)) {
		t.Errorf("cross-type equality must be false")
	}
	if S("1").Key() == N(1).Key() {
		t.Errorf("keys must be type-tagged")
	}
}

func TestValueCoerce(t *testing.T) {
	if v := S("42").Coerce(DNumber); v.Type() != DNumber || v.Num() != 42 {
		t.Errorf("S->N coerce: %+v", v)
	}
	if v := N(42).Coerce(DString); v.Type() != DString || v.Str() != "42" {
		t.Errorf("N->S coerce: %+v", v)
	}
	if v := N(1).Coerce(DNumber); v.Num() != 1 {
		t.Errorf("identity coerce: %+v", v)
	}
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "", Type: DNumber}); err == nil {
		t.Errorf("empty name accepted")
	}
	if _, err := NewSchema(Column{Name: "chunk", Type: DNumber}); err == nil {
		t.Errorf("reserved name accepted")
	}
	if _, err := NewSchema(Column{Name: "region", Type: DString}); err == nil {
		t.Errorf("reserved name accepted")
	}
	if _, err := NewSchema(
		Column{Name: "a", Type: DNumber},
		Column{Name: "a", Type: DString},
	); err == nil {
		t.Errorf("duplicate accepted")
	}
	s, err := NewSchema(Column{Name: "a", Type: DNumber, Default: N(5)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Index("a") != 0 || s.Index("b") != -1 || !s.Has("a") {
		t.Errorf("index/has wrong")
	}
}

func TestDefaultRow(t *testing.T) {
	s := MustSchema(
		Column{Name: "n", Type: DNumber, Default: N(-1)},
		Column{Name: "s", Type: DString, Default: S("x")},
		Column{Name: "coerced", Type: DNumber, Default: S("7")},
	)
	r := s.DefaultRow()
	if r[0].Num() != -1 || r[1].Str() != "x" {
		t.Errorf("defaults: %v", r)
	}
	if r[2].Type() != DNumber || r[2].Num() != 7 {
		t.Errorf("default not coerced to column type: %v", r[2])
	}
}

func TestWithImplicit(t *testing.T) {
	s := MustSchema(Column{Name: "n", Type: DNumber})
	si := s.WithImplicit(false)
	if !si.Has(ChunkColumn) || si.Has(RegionColumn) {
		t.Errorf("implicit columns: %v", si.Names())
	}
	sir := s.WithImplicit(true)
	if !sir.Has(RegionColumn) {
		t.Errorf("region column missing")
	}
	// Original schema untouched.
	if s.Has(ChunkColumn) {
		t.Errorf("WithImplicit mutated the original")
	}
}

func TestConform(t *testing.T) {
	s := MustSchema(
		Column{Name: "n", Type: DNumber, Default: N(0)},
		Column{Name: "s", Type: DString, Default: S("d")},
	)
	// Extra column dropped, types coerced.
	r := s.Conform(Row{S("9"), N(3), S("extra")})
	if len(r) != 2 || r[0].Num() != 9 || r[1].Str() != "3" {
		t.Errorf("conform: %v", r)
	}
	// Short row filled with defaults.
	r2 := s.Conform(Row{N(1)})
	if r2[1].Str() != "d" {
		t.Errorf("short conform: %v", r2)
	}
	// Empty row is all defaults.
	r3 := s.Conform(nil)
	if r3[0].Num() != 0 || r3[1].Str() != "d" {
		t.Errorf("empty conform: %v", r3)
	}
}

func TestTableColAndSort(t *testing.T) {
	s := MustSchema(
		Column{Name: "n", Type: DNumber},
		Column{Name: "s", Type: DString},
	)
	tb := New(s)
	tb.Append(Row{N(3), S("c")}, Row{N(1), S("a")}, Row{N(2), S("b")})
	if tb.Len() != 3 {
		t.Fatalf("len=%d", tb.Len())
	}
	col, err := tb.Col("n")
	if err != nil || len(col) != 3 {
		t.Fatalf("Col: %v %v", col, err)
	}
	if _, err := tb.Col("zzz"); err == nil {
		t.Errorf("missing column accepted")
	}
	if err := tb.SortBy("n"); err != nil {
		t.Fatal(err)
	}
	if tb.At(0, 0).Num() != 1 || tb.At(2, 0).Num() != 3 {
		t.Errorf("numeric sort wrong: %v", tb.Rows())
	}
	if err := tb.SortBy("s"); err != nil {
		t.Fatal(err)
	}
	if tb.At(0, 1).Str() != "a" {
		t.Errorf("string sort wrong")
	}
}

func TestTableClone(t *testing.T) {
	s := MustSchema(Column{Name: "n", Type: DNumber})
	tb := New(s)
	tb.Append(Row{N(1)})
	c := tb.Clone()
	c.Append(Row{N(2)})
	if err := c.SortBy("n"); err != nil {
		t.Fatal(err)
	}
	if tb.At(0, 0).Num() != 1 || tb.Len() != 1 {
		t.Errorf("clone not deep")
	}
}

func TestIngestCoercion(t *testing.T) {
	s := MustSchema(
		Column{Name: "n", Type: DNumber},
		Column{Name: "s", Type: DString},
	)
	tb := New(s)
	// Cells are coerced to the declared column type once, at ingest.
	tb.Append(Row{S("42.5"), N(7)}, Row{S("junk"), S("x")})
	if v := tb.At(0, 0); v.Type() != DNumber || v.Num() != 42.5 {
		t.Errorf("string->number ingest: %v", v)
	}
	if v := tb.At(1, 0); v.Num() != 0 {
		t.Errorf("unparseable string must coerce to 0: %v", v)
	}
	if v := tb.At(0, 1); v.Type() != DString || v.Str() != "7" {
		t.Errorf("number->string ingest: %v", v)
	}
	// The numeric view of a STRING column is the parse-once coercion.
	tb2 := New(MustSchema(Column{Name: "s", Type: DString}))
	tb2.Append(Row{S(" 7 ")}, Row{S("bad")}, Row{S("2.5")})
	nums, valid := tb2.Nums(0), tb2.Valid(0)
	if nums[0] != 7 || nums[1] != 0 || nums[2] != 2.5 {
		t.Errorf("numeric view: %v", nums)
	}
	if !valid[0] || valid[1] || !valid[2] {
		t.Errorf("validity view: %v", valid)
	}
}

func TestRowsMaterialization(t *testing.T) {
	s := MustSchema(
		Column{Name: "n", Type: DNumber},
		Column{Name: "s", Type: DString},
	)
	tb := FromRows(s, []Row{{N(1), S("a")}, {N(2), S("b")}})
	rows := tb.Rows()
	if len(rows) != 2 || !rows[1][0].Equal(N(2)) || !rows[1][1].Equal(S("b")) {
		t.Errorf("rows: %v", rows)
	}
	if r := tb.Row(0); !r[0].Equal(N(1)) || !r[1].Equal(S("a")) {
		t.Errorf("row 0: %v", r)
	}
}

func TestFreezePanicsOnMutation(t *testing.T) {
	tb := FromRows(MustSchema(Column{Name: "n", Type: DNumber}), []Row{{N(1)}})
	tb.Freeze()
	if !tb.Frozen() {
		t.Fatal("not frozen")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Append on frozen table must panic")
		}
	}()
	tb.Append(Row{N(2)})
}

func TestGather(t *testing.T) {
	s := MustSchema(
		Column{Name: "n", Type: DNumber},
		Column{Name: "s", Type: DString},
	)
	tb := FromRows(s, []Row{{N(1), S("a")}, {N(2), S("b")}, {N(3), S("c")}})
	g := tb.Gather([]int{2, 0})
	if g.Len() != 2 || g.At(0, 0).Num() != 3 || g.At(1, 1).Str() != "a" {
		t.Errorf("gather: %v", g.String())
	}
	if e := tb.Gather(nil); e.Len() != 0 {
		t.Errorf("empty gather: %d", e.Len())
	}
}

func TestAppendBlock(t *testing.T) {
	base := MustSchema(Column{Name: "n", Type: DNumber}, Column{Name: "s", Type: DString})
	full := base.WithImplicitCols(true, false)
	blk := FromRows(base, []Row{{N(1), S("a")}, {N(2), S("b")}}).Freeze()
	out := New(full)
	out.AppendBlock(blk, N(100), S("r0"))
	out.AppendBlock(blk, N(200), S("r1"))
	if out.Len() != 4 {
		t.Fatalf("len=%d", out.Len())
	}
	if out.At(1, 2).Num() != 100 || out.At(3, 2).Num() != 200 {
		t.Errorf("chunk consts wrong: %s", out.String())
	}
	if out.At(0, 3).Str() != "r0" || out.At(2, 3).Str() != "r1" {
		t.Errorf("region consts wrong: %s", out.String())
	}
	if out.At(2, 0).Num() != 1 || out.At(3, 1).Str() != "b" {
		t.Errorf("block copy wrong: %s", out.String())
	}
}

func TestKeyHashMatchesKeyEquality(t *testing.T) {
	vals := []Value{
		N(0), N(math.Copysign(0, -1)), N(1), N(-1), N(math.NaN()),
		N(math.Inf(1)), S("0"), S(""), S("a"), S("NaN"), N(42), S("42"),
	}
	for _, a := range vals {
		for _, b := range vals {
			wantEq := a.Key() == b.Key()
			if got := a.KeyEqual(b); got != wantEq {
				t.Errorf("KeyEqual(%v,%v)=%v want %v", a, b, got, wantEq)
			}
			if wantEq && a.KeyHash() != b.KeyHash() {
				t.Errorf("key-equal values %v,%v hash differently", a, b)
			}
		}
	}
	// NaNs are key-equal ("NaN"=="NaN"); +0 and -0 are not ("0"!="-0").
	if !N(math.NaN()).KeyEqual(N(math.NaN())) {
		t.Errorf("NaN keys must be equal")
	}
	if N(0).KeyEqual(N(math.Copysign(0, -1))) {
		t.Errorf("+0 and -0 keys must differ")
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	s := MustSchema(
		Column{Name: "n", Type: DNumber, Default: N(-1)},
		Column{Name: "s", Type: DString, Default: S("d")},
	)
	tb := FromRows(s, []Row{
		{N(1.5), S("a|b")},
		{N(math.Inf(-1)), S("")},
		{N(0), S(" 7 ")},
	})
	got, err := DecodeBinary(tb.EncodeBinary())
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != tb.String() {
		t.Errorf("round trip:\n%s\nvs\n%s", got.String(), tb.String())
	}
	// Parse-once view survives the trip.
	if got.Nums(1)[2] != 7 || !got.Valid(1)[2] {
		t.Errorf("numeric view not rebuilt: %v %v", got.Nums(1), got.Valid(1))
	}
	if got.Schema.Cols[1].Default.Str() != "d" {
		t.Errorf("default lost: %v", got.Schema.Cols[1].Default)
	}
	// Empty table round-trips too.
	empty := New(s)
	if got2, err := DecodeBinary(empty.EncodeBinary()); err != nil || got2.Len() != 0 {
		t.Errorf("empty round trip: %v %v", got2, err)
	}
}

func TestBinaryCodecRejectsMalformed(t *testing.T) {
	tb := FromRows(MustSchema(Column{Name: "n", Type: DNumber}), []Row{{N(1)}})
	enc := tb.EncodeBinary()
	for _, raw := range [][]byte{
		nil,
		{},
		{99},                                   // bad version
		enc[:len(enc)-3],                       // truncated payload
		append(append([]byte{}, enc...), 0xff), // trailing bytes
	} {
		if _, err := DecodeBinary(raw); err == nil {
			t.Errorf("malformed input %v accepted", raw)
		}
	}
	// Absurd row count bounded by payload length, not trusted.
	huge := append([]byte{codecVersion}, 1, 0, byte(DNumber), 1, 0, 'x', byte(DNumber), 0, 0, 0, 0, 0, 0, 0, 0)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff) // nrows = 4B
	if _, err := DecodeBinary(huge); err == nil {
		t.Errorf("oversized row count accepted")
	}
}

func TestConformProperties(t *testing.T) {
	s := MustSchema(
		Column{Name: "a", Type: DNumber, Default: N(0)},
		Column{Name: "b", Type: DString, Default: S("")},
	)
	// Conform always yields exactly the schema arity with declared
	// types, whatever garbage comes in.
	f := func(nums []float64, strs []string) bool {
		var raw Row
		for _, n := range nums {
			raw = append(raw, N(n))
		}
		for _, x := range strs {
			raw = append(raw, S(x))
		}
		out := s.Conform(raw)
		return len(out) == 2 && out[0].Type() == DNumber && out[1].Type() == DString
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// mixedRows builds n rows for a NUMBER,STRING,NUMBER,STRING schema.
func mixedSchemaRows(n int) (Schema, []Row) {
	s := MustSchema(
		Column{Name: "count", Type: DNumber, Default: N(0)},
		Column{Name: "class", Type: DString, Default: S("")},
		Column{Name: "conf", Type: DNumber, Default: N(0)},
		Column{Name: "tag", Type: DString, Default: S("-")},
	)
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{N(float64(i)), S("person"), N(0.5), S("3.25")}
	}
	return s, rows
}

// TestFromRowsArenaMatchesAppend pins the arena builder to the
// incremental path: identical contents, numeric views, and safe
// post-build mutation (a later Append must reallocate the touched
// column, never write into a neighbor's arena region).
func TestFromRowsArenaMatchesAppend(t *testing.T) {
	s, rows := mixedSchemaRows(37)
	arena := FromRows(s, rows)
	incr := New(s)
	incr.Append(rows...)
	if arena.Len() != incr.Len() {
		t.Fatalf("len: arena %d, incremental %d", arena.Len(), incr.Len())
	}
	for i := 0; i < arena.Len(); i++ {
		for j := range s.Cols {
			if !arena.At(i, j).Equal(incr.At(i, j)) {
				t.Fatalf("cell (%d,%d): arena %v, incremental %v", i, j, arena.At(i, j), incr.At(i, j))
			}
		}
	}
	// Parse-once numeric view of the STRING "tag" column.
	if got := arena.Nums(3)[0]; got != 3.25 {
		t.Errorf("tag numeric view = %v, want 3.25", got)
	}
	if arena.Valid(1)[0] {
		// "person" does not parse as a number; valid must be false.
		t.Errorf("class %q reported as numeric", "person")
	}
	if arena.Nums(1)[0] != 0 {
		t.Errorf("class numeric view = %v, want 0", arena.Nums(1)[0])
	}

	// Appending one more row grows column slices whose cap is clipped
	// to the arena region: every column must reallocate rather than
	// overrun into the next column's region.
	arena.Append(Row{N(99), S("car"), N(1), S("x")})
	if arena.Len() != 38 || arena.At(37, 0).Num() != 99 {
		t.Fatalf("post-arena Append broken: %v", arena.At(37, 0))
	}
	// Column 0's original region must be untouched by column growth.
	for i := 0; i < 37; i++ {
		if arena.At(i, 0).Num() != float64(i) {
			t.Fatalf("arena row %d corrupted after Append: %v", i, arena.At(i, 0))
		}
	}
}

func TestFromRowsEmpty(t *testing.T) {
	s, _ := mixedSchemaRows(0)
	tb := FromRows(s, nil)
	if tb.Len() != 0 {
		t.Fatalf("empty FromRows has %d rows", tb.Len())
	}
	tb.Append(Row{N(1), S("a"), N(2), S("b")}) // still usable
	if tb.Len() != 1 {
		t.Fatalf("append after empty FromRows: %d rows", tb.Len())
	}
}

// BenchmarkFromRows_Arena measures the bulk builder used on the
// PROCESS ingest path; its allocation count is enforced by the CI
// bench contract (3 arena blocks + table headers, independent of row
// count).
func BenchmarkFromRows_Arena(b *testing.B) {
	s, rows := mixedSchemaRows(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchTable = FromRows(s, rows)
	}
}

// BenchmarkFromRows_RowAppend is the pre-arena baseline: an empty
// table grown by incremental Append.
func BenchmarkFromRows_RowAppend(b *testing.B) {
	s, rows := mixedSchemaRows(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := New(s)
		t.Append(rows...)
		benchTable = t
	}
}

var benchTable *Table
