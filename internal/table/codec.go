package table

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary table codec (version 1) for the disk tier of the chunk cache.
// Layout, little-endian:
//
//	u8  version
//	u16 ncols
//	per column:
//	  u8  type (0 STRING, 1 NUMBER)
//	  u16 len(name) | name bytes
//	  u8  default type | default payload (8B float, or u32 len | bytes)
//	u32 nrows
//	per column data:
//	  NUMBER: 8*nrows bytes of IEEE-754 floats
//	  STRING: per row, u32 len | bytes
//
// Decode rebuilds the parse-once numeric view for STRING columns, so a
// table read back from disk is cell-for-cell identical to the one
// encoded — including its coercion behavior.

const codecVersion = 1

// EncodeBinary serializes the table.
func (t *Table) EncodeBinary() []byte {
	var b []byte
	b = append(b, codecVersion)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(t.Schema.Cols)))
	for _, c := range t.Schema.Cols {
		b = append(b, byte(c.Type))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(c.Name)))
		b = append(b, c.Name...)
		b = append(b, byte(c.Default.Type()))
		if c.Default.Type() == DNumber {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.Default.Num()))
		} else {
			s := c.Default.Str()
			b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
			b = append(b, s...)
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(t.n))
	for j := range t.Schema.Cols {
		if t.Schema.Cols[j].Type == DNumber {
			for _, f := range t.cols[j].nums {
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
			}
			continue
		}
		for _, s := range t.cols[j].strs {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
			b = append(b, s...)
		}
	}
	return b
}

type decoder struct {
	b   []byte
	off int
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

func (d *decoder) u8() (byte, error) {
	if d.remaining() < 1 {
		return 0, fmt.Errorf("table: truncated codec input")
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if d.remaining() < 2 {
		return 0, fmt.Errorf("table: truncated codec input")
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, fmt.Errorf("table: truncated codec input")
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, fmt.Errorf("table: truncated codec input")
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, fmt.Errorf("table: truncated codec input")
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v, nil
}

func (d *decoder) str(n uint32) (string, error) {
	raw, err := d.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

func decodeDType(b byte) (DType, error) {
	switch DType(b) {
	case DString, DNumber:
		return DType(b), nil
	default:
		return 0, fmt.Errorf("table: bad column type %d", b)
	}
}

// DecodeBinary deserializes a table encoded by EncodeBinary. It never
// panics on malformed input and bounds every allocation by the input
// length, so the disk tier can feed it untrusted (torn or corrupted)
// segment payloads.
func DecodeBinary(raw []byte) (*Table, error) {
	d := &decoder{b: raw}
	ver, err := d.u8()
	if err != nil {
		return nil, err
	}
	if ver != codecVersion {
		return nil, fmt.Errorf("table: codec version %d unsupported", ver)
	}
	ncols, err := d.u16()
	if err != nil {
		return nil, err
	}
	cols := make([]Column, 0, ncols)
	for c := 0; c < int(ncols); c++ {
		tb, err := d.u8()
		if err != nil {
			return nil, err
		}
		typ, err := decodeDType(tb)
		if err != nil {
			return nil, err
		}
		nameLen, err := d.u16()
		if err != nil {
			return nil, err
		}
		name, err := d.str(uint32(nameLen))
		if err != nil {
			return nil, err
		}
		db, err := d.u8()
		if err != nil {
			return nil, err
		}
		dtyp, err := decodeDType(db)
		if err != nil {
			return nil, err
		}
		var def Value
		if dtyp == DNumber {
			bits, err := d.u64()
			if err != nil {
				return nil, err
			}
			def = N(math.Float64frombits(bits))
		} else {
			sl, err := d.u32()
			if err != nil {
				return nil, err
			}
			s, err := d.str(sl)
			if err != nil {
				return nil, err
			}
			def = S(s)
		}
		cols = append(cols, Column{Name: name, Type: typ, Default: def})
	}
	nrows, err := d.u32()
	if err != nil {
		return nil, err
	}
	// Bound nrows by the minimum bytes each row must still occupy
	// (8 per NUMBER cell, a 4-byte length per STRING cell) before any
	// row-proportional allocation happens.
	minPerRow := 0
	for _, c := range cols {
		if c.Type == DNumber {
			minPerRow += 8
		} else {
			minPerRow += 4
		}
	}
	if minPerRow > 0 && int(nrows) > d.remaining()/minPerRow {
		return nil, fmt.Errorf("table: row count %d exceeds payload", nrows)
	}
	t := &Table{Schema: Schema{Cols: cols}, cols: make([]column, len(cols)), n: int(nrows)}
	for j, c := range cols {
		if c.Type == DNumber {
			nums := make([]float64, nrows)
			for i := range nums {
				bits, err := d.u64()
				if err != nil {
					return nil, err
				}
				nums[i] = math.Float64frombits(bits)
			}
			t.cols[j].nums = nums
			continue
		}
		strs := make([]string, nrows)
		nums := make([]float64, nrows)
		valid := make([]bool, nrows)
		for i := range strs {
			sl, err := d.u32()
			if err != nil {
				return nil, err
			}
			s, err := d.str(sl)
			if err != nil {
				return nil, err
			}
			strs[i] = s
			nums[i], valid[i] = parseNum(s)
		}
		t.cols[j].strs = strs
		t.cols[j].nums = nums
		t.cols[j].valid = valid
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("table: %d trailing bytes", d.remaining())
	}
	return t, nil
}
