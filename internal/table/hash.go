package table

import "math"

// Cell hashing for GROUP BY / JOIN key matching. The contract mirrors
// Value.Key() string equality without building the strings: key-equal
// cells hash identically, and CellKeyEqual is the exact equality check
// used to resolve hash collisions. Numbers hash their IEEE bits with
// every NaN normalized to one canonical pattern (all NaNs format as
// "NaN", so they are key-equal), while +0 and -0 keep distinct bits —
// they format as "0" and "-0" and were never key-equal.

// HashSeed is the initial accumulator for a HashCell chain; a single
// cell's chained hash equals its Value.KeyHash().
const HashSeed uint64 = fnvOffset

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	canonNaN  = 0x7ff8000000000000
	// tag bytes keep NUMBER and STRING content in disjoint hash spaces,
	// mirroring the "n:"/"s:" prefixes of Value.Key.
	tagNum = 0x01
	tagStr = 0x02
)

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func hashNum(h uint64, f float64) uint64 {
	bits := math.Float64bits(f)
	if math.IsNaN(f) {
		bits = canonNaN
	}
	h = hashByte(h, tagNum)
	for i := 0; i < 8; i++ {
		h = hashByte(h, byte(bits>>(8*i)))
	}
	return h
}

func hashStr(h uint64, s string) uint64 {
	h = hashByte(h, tagStr)
	for i := 0; i < len(s); i++ {
		h = hashByte(h, s[i])
	}
	return h
}

// HashCell folds the key hash of cell (i, j) into h. Chain calls across
// a key-column list to hash a composite grouping key.
func (t *Table) HashCell(h uint64, i, j int) uint64 {
	if t.Schema.Cols[j].Type == DNumber {
		return hashNum(h, t.cols[j].nums[i])
	}
	return hashStr(h, t.cols[j].strs[i])
}

// CellKeyEqual reports whether cell (ai, aj) of a and cell (bi, bj) of b
// are grouping-key equal (the Value.KeyEqual relation, cell-addressed).
func CellKeyEqual(a *Table, ai, aj int, b *Table, bi, bj int) bool {
	at, bt := a.Schema.Cols[aj].Type, b.Schema.Cols[bj].Type
	if at != bt {
		return false
	}
	if at == DString {
		return a.cols[aj].strs[ai] == b.cols[bj].strs[bi]
	}
	x, y := a.cols[aj].nums[ai], b.cols[bj].nums[bi]
	if math.IsNaN(x) || math.IsNaN(y) {
		return math.IsNaN(x) && math.IsNaN(y)
	}
	return x == y && math.Signbit(x) == math.Signbit(y)
}

// CellKeyEqualValue reports grouping-key equality between cell (i, j)
// and a standalone value (used to match analyst-requested WITH KEYS).
func (t *Table) CellKeyEqualValue(i, j int, v Value) bool {
	return t.At(i, j).KeyEqual(v)
}
