package table

import "fmt"

// Builder assembles a table column-wise with a known row count, letting
// the relational operators write whole columns (or share slices they
// already hold) instead of appending row by row. Shared slices are
// capacity-clipped so a later Append on the built table can never write
// into the source's backing array.
type Builder struct {
	t   *Table
	set []bool
}

// NewBuilder starts a table with schema s and exactly n rows.
func NewBuilder(s Schema, n int) *Builder {
	t := New(s)
	t.n = n
	return &Builder{t: t, set: make([]bool, len(s.Cols))}
}

func (b *Builder) mark(j int, typ DType) {
	if b.t == nil {
		panic("table: Builder used after Build")
	}
	if b.t.Schema.Cols[j].Type != typ {
		panic(fmt.Sprintf("table: builder column %d is %v", j, b.t.Schema.Cols[j].Type))
	}
	if b.set[j] {
		panic(fmt.Sprintf("table: builder column %d set twice", j))
	}
	b.set[j] = true
}

// SetNums installs vals as NUMBER column j, taking ownership.
func (b *Builder) SetNums(j int, vals []float64) {
	b.mark(j, DNumber)
	if len(vals) != b.t.n {
		panic(fmt.Sprintf("table: builder column %d has %d rows, want %d", j, len(vals), b.t.n))
	}
	b.t.cols[j].nums = vals[:len(vals):len(vals)]
}

// SetStrs installs vals as STRING column j, computing the parse-once
// numeric view.
func (b *Builder) SetStrs(j int, vals []string) {
	nums := make([]float64, len(vals))
	valid := make([]bool, len(vals))
	for i, s := range vals {
		nums[i], valid[i] = parseNum(s)
	}
	b.SetStrsView(j, vals, nums, valid)
}

// SetStrsView installs STRING column j with its precomputed numeric
// view, taking ownership of all three slices (which may be shared with
// another table — they are capacity-clipped here).
func (b *Builder) SetStrsView(j int, strs []string, nums []float64, valid []bool) {
	b.mark(j, DString)
	if len(strs) != b.t.n || len(nums) != b.t.n || len(valid) != b.t.n {
		panic(fmt.Sprintf("table: builder column %d has %d/%d/%d rows, want %d",
			j, len(strs), len(nums), len(valid), b.t.n))
	}
	b.t.cols[j].strs = strs[:len(strs):len(strs)]
	b.t.cols[j].nums = nums[:len(nums):len(nums)]
	b.t.cols[j].valid = valid[:len(valid):len(valid)]
}

// SetConstNum fills NUMBER column j with a constant.
func (b *Builder) SetConstNum(j int, f float64) {
	vals := make([]float64, b.t.n)
	for i := range vals {
		vals[i] = f
	}
	b.SetNums(j, vals)
}

// SetConstStr fills STRING column j with a constant.
func (b *Builder) SetConstStr(j int, s string) {
	f, ok := parseNum(s)
	strs := make([]string, b.t.n)
	nums := make([]float64, b.t.n)
	valid := make([]bool, b.t.n)
	for i := range strs {
		strs[i] = s
		nums[i] = f
		valid[i] = ok
	}
	b.SetStrsView(j, strs, nums, valid)
}

// Build finalizes the table. Every column must have been set.
func (b *Builder) Build() *Table {
	for j, ok := range b.set {
		if !ok {
			panic(fmt.Sprintf("table: builder column %d (%s) never set", j, b.t.Schema.Cols[j].Name))
		}
	}
	t := b.t
	b.t = nil
	return t
}
