// Package table implements Privid's intermediate tables: the untrusted
// tabular output of the analyst's per-chunk processing executables
// (§6.2). Values are typed STRING or NUMBER per the query grammar
// (Appendix D); every table additionally carries the implicit "chunk"
// column (the timestamp of the chunk's first frame) and, when spatial
// splitting is used, the implicit "region" column. Privid trusts these
// two columns (it creates them) and nothing else.
//
// Storage is column-major: each column is a []float64 or []string with
// a precomputed numeric view for STRING columns, so coercion to the
// declared schema happens exactly once, at ingest, rather than on every
// Num() call inside aggregation loops. The Row-oriented API (Row, At,
// Rows) materializes on demand and is unchanged for callers.
package table

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// DType is the data type of a column: STRING or NUMBER.
type DType int

const (
	// DString is an arbitrary string column.
	DString DType = iota
	// DNumber is a floating-point numeric column.
	DNumber
)

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case DString:
		return "STRING"
	case DNumber:
		return "NUMBER"
	default:
		return fmt.Sprintf("DType(%d)", int(d))
	}
}

// Value is a typed scalar. The zero Value is the empty STRING.
type Value struct {
	typ DType
	s   string
	n   float64
}

// S returns a STRING value.
func S(s string) Value { return Value{typ: DString, s: s} }

// N returns a NUMBER value.
func N(n float64) Value { return Value{typ: DNumber, n: n} }

// Type returns the value's data type.
func (v Value) Type() DType { return v.typ }

// Str returns the string content; NUMBER values are formatted.
func (v Value) Str() string {
	if v.typ == DNumber {
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	}
	return v.s
}

// parseNum is the single coercion rule from STRING content to a number:
// parse if possible, otherwise 0 (the paper's schema coercion — untrusted
// output is forced into the declared schema).
func parseNum(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if len(s) == 0 {
		return 0, false
	}
	// strconv.ParseFloat allocates a *NumError on failure, which on the
	// ingest path means one garbage allocation per non-numeric cell.
	// Every string ParseFloat accepts starts with a digit, sign, dot,
	// or an inf/nan spelling, so anything else is rejected up front.
	switch c := s[0]; {
	case c >= '0' && c <= '9', c == '+', c == '-', c == '.',
		c == 'i', c == 'I', c == 'n', c == 'N':
	default:
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// Num returns the numeric content; STRING values parse if possible and
// otherwise yield 0.
func (v Value) Num() float64 {
	if v.typ == DNumber {
		return v.n
	}
	f, _ := parseNum(v.s)
	return f
}

// Equal reports deep equality of two values (type and content).
func (v Value) Equal(o Value) bool {
	if v.typ != o.typ {
		return false
	}
	if v.typ == DNumber {
		return v.n == o.n || (math.IsNaN(v.n) && math.IsNaN(o.n))
	}
	return v.s == o.s
}

// Key returns a map-key-safe representation used for GROUP BY and JOIN
// matching.
func (v Value) Key() string {
	if v.typ == DNumber {
		return "n:" + strconv.FormatFloat(v.n, 'g', -1, 64)
	}
	return "s:" + v.s
}

// KeyEqual reports whether two values have equal grouping keys, i.e.
// v.Key() == o.Key() without formatting either. Numbers compare by
// their canonical decimal form: NaNs are key-equal, +0 and -0 are not
// (they format as "0" and "-0").
func (v Value) KeyEqual(o Value) bool {
	if v.typ != o.typ {
		return false
	}
	if v.typ == DString {
		return v.s == o.s
	}
	if math.IsNaN(v.n) || math.IsNaN(o.n) {
		return math.IsNaN(v.n) && math.IsNaN(o.n)
	}
	return v.n == o.n && math.Signbit(v.n) == math.Signbit(o.n)
}

// KeyHash returns a 64-bit hash consistent with KeyEqual: key-equal
// values hash identically.
func (v Value) KeyHash() uint64 {
	if v.typ == DNumber {
		return hashNum(fnvOffset, v.n)
	}
	return hashStr(fnvOffset, v.s)
}

// String implements fmt.Stringer.
func (v Value) String() string { return v.Str() }

// wireValue is Value's JSON form: {"t":"n","n":…} or {"t":"s","s":…}.
type wireValue struct {
	T string  `json:"t"`
	S string  `json:"s,omitempty"`
	N float64 `json:"n,omitempty"`
}

// MarshalJSON implements json.Marshaler so values survive persistence
// (the serving layer's durable job results) without losing their type.
func (v Value) MarshalJSON() ([]byte, error) {
	if v.typ == DNumber {
		return json.Marshal(wireValue{T: "n", N: v.n})
	}
	return json.Marshal(wireValue{T: "s", S: v.s})
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(b []byte) error {
	var w wireValue
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	switch w.T {
	case "n":
		*v = N(w.N)
	case "s":
		*v = S(w.S)
	default:
		return fmt.Errorf("table: unknown value type %q", w.T)
	}
	return nil
}

// Coerce forces v to type t, converting content as needed.
func (v Value) Coerce(t DType) Value {
	if v.typ == t {
		return v
	}
	if t == DNumber {
		return N(v.Num())
	}
	return S(v.Str())
}

// Column describes one column of an intermediate-table schema. Default
// is the value emitted when the analyst's executable crashes or exceeds
// its TIMEOUT (Appendix D).
type Column struct {
	Name    string
	Type    DType
	Default Value
}

// Reserved implicit column names. Privid adds these to every table; the
// analyst's schema may not redeclare them.
const (
	ChunkColumn  = "chunk"
	RegionColumn = "region"
	CameraColumn = "camera"
)

// Schema is an ordered set of columns.
type Schema struct {
	Cols []Column
}

// NewSchema validates and returns a schema from analyst-declared
// columns. Duplicate or reserved names are rejected.
func NewSchema(cols ...Column) (Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		name := c.Name
		if name == "" {
			return Schema{}, fmt.Errorf("table: empty column name")
		}
		if name == ChunkColumn || name == RegionColumn || name == CameraColumn {
			return Schema{}, fmt.Errorf("table: column name %q is reserved", name)
		}
		if seen[name] {
			return Schema{}, fmt.Errorf("table: duplicate column %q", name)
		}
		seen[name] = true
	}
	return Schema{Cols: append([]Column(nil), cols...)}, nil
}

// MustSchema is NewSchema that panics on error, for tests and fixtures.
func MustSchema(cols ...Column) Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Has reports whether the schema contains the named column.
func (s Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// DefaultRow returns the row of per-column default values, emitted when
// a chunk's processing crashes or times out.
func (s Schema) DefaultRow() Row {
	r := make(Row, len(s.Cols))
	for i, c := range s.Cols {
		r[i] = c.Default.Coerce(c.Type)
	}
	return r
}

// WithImplicit returns a copy of the schema with the implicit chunk
// column and, if region is true, the implicit region column appended.
func (s Schema) WithImplicit(region bool) Schema {
	return s.WithImplicitCols(region, false)
}

// WithImplicitCols returns a copy of the schema with the implicit
// trusted columns appended: chunk always, region when the split used
// BY REGION, and camera when the chunk set spans multiple cameras
// (multi-camera SPLIT or MERGE) so every row carries engine-stamped
// provenance.
func (s Schema) WithImplicitCols(region, camera bool) Schema {
	cols := append([]Column(nil), s.Cols...)
	cols = append(cols, Column{Name: ChunkColumn, Type: DNumber, Default: N(0)})
	if region {
		cols = append(cols, Column{Name: RegionColumn, Type: DString, Default: S("")})
	}
	if camera {
		cols = append(cols, Column{Name: CameraColumn, Type: DString, Default: S("")})
	}
	return Schema{Cols: cols}
}

// Row is one record of an intermediate table, positionally matching a
// Schema.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Conform coerces the untrusted raw row into the schema: extra columns
// are dropped, missing columns are filled with defaults, and each value
// is coerced to the declared type. This implements the paper's rule
// that Privid "interprets the output of each chunk according to the
// PROCESS schema and ignores extraneous columns".
func (s Schema) Conform(raw Row) Row {
	out := make(Row, len(s.Cols))
	for i, c := range s.Cols {
		if i < len(raw) {
			out[i] = raw[i].Coerce(c.Type)
		} else {
			out[i] = c.Default.Coerce(c.Type)
		}
	}
	return out
}

// column is the column-major backing of one schema column. NUMBER
// columns populate nums only. STRING columns hold strs plus a numeric
// view (nums, valid) computed once at ingest, so aggregation over a
// STRING column never re-parses.
type column struct {
	nums  []float64
	strs  []string
	valid []bool
}

// Table is an ordered collection of rows with a schema. The contents
// are untrusted (analyst-generated); only the schema shape and the
// implicit columns are trusted. Storage is column-major; a frozen table
// rejects mutation, letting caches hand out shared references.
type Table struct {
	Schema Schema

	cols   []column
	n      int
	frozen bool
}

// New returns an empty table with the given schema.
func New(s Schema) *Table {
	return &Table{Schema: s, cols: make([]column, len(s.Cols))}
}

// FromRows builds a table from the schema and rows, coercing each cell
// to the declared column type at ingest.
//
// Because the row count is known up front, storage is carved out of
// arena blocks — one []float64, one []string and one []bool allocation
// for the whole table regardless of column count — instead of growing
// each column slice independently as Append does. This is the PROCESS
// ingest path (every sandbox execution materializes its rows through
// here), so the builder allocation count is part of the CI bench
// contract. Each column gets a capacity-clipped view of its arena
// region, so a later Append on any column reallocates that column
// rather than clobbering its neighbor.
func FromRows(s Schema, rows []Row) *Table {
	t := New(s)
	n := len(rows)
	if n == 0 {
		return t
	}
	nc := len(s.Cols)
	strCols := 0
	for _, c := range s.Cols {
		if c.Type == DString {
			strCols++
		}
	}
	numArena := make([]float64, nc*n)
	var strArena []string
	var validArena []bool
	if strCols > 0 {
		strArena = make([]string, strCols*n)
		validArena = make([]bool, strCols*n)
	}
	si := 0
	for j := range s.Cols {
		c := &t.cols[j]
		c.nums = numArena[j*n : (j+1)*n : (j+1)*n]
		if s.Cols[j].Type == DString {
			c.strs = strArena[si*n : (si+1)*n : (si+1)*n]
			c.valid = validArena[si*n : (si+1)*n : (si+1)*n]
			si++
		}
	}
	for i, r := range rows {
		if len(r) != nc {
			panic(fmt.Sprintf("table: row width %d != schema width %d", len(r), nc))
		}
		for j := range s.Cols {
			c := &t.cols[j]
			if s.Cols[j].Type == DNumber {
				c.nums[i] = r[j].Num()
				continue
			}
			str := r[j].Str()
			f, ok := parseNum(str)
			c.strs[i] = str
			c.nums[i] = f
			c.valid[i] = ok
		}
	}
	t.n = n
	return t
}

// Len returns the number of rows.
func (t *Table) Len() int { return t.n }

// Frozen reports whether the table is immutable.
func (t *Table) Frozen() bool { return t.frozen }

// Freeze marks the table immutable: any further mutation panics. Caches
// freeze tables so Get can return shared references safely.
func (t *Table) Freeze() *Table {
	t.frozen = true
	return t
}

func (t *Table) mutable() {
	if t.frozen {
		panic("table: mutation of frozen table")
	}
}

// grow reserves capacity for m additional rows across all columns.
func (t *Table) grow(m int) {
	for j := range t.Schema.Cols {
		c := &t.cols[j]
		if t.Schema.Cols[j].Type == DNumber {
			c.nums = growFloats(c.nums, m)
			continue
		}
		c.strs = growStrings(c.strs, m)
		c.nums = growFloats(c.nums, m)
		c.valid = growBools(c.valid, m)
	}
}

// growCap picks a new capacity for a column that must hold m more
// elements: doubled so repeated single-row appends stay amortized O(1).
func growCap(n, c, m int) int {
	want := n + m
	if c*2 > want {
		want = c * 2
	}
	if want < 16 {
		want = 16
	}
	return want
}

func growFloats(s []float64, m int) []float64 {
	if cap(s)-len(s) >= m {
		return s
	}
	out := make([]float64, len(s), growCap(len(s), cap(s), m))
	copy(out, s)
	return out
}

func growStrings(s []string, m int) []string {
	if cap(s)-len(s) >= m {
		return s
	}
	out := make([]string, len(s), growCap(len(s), cap(s), m))
	copy(out, s)
	return out
}

func growBools(s []bool, m int) []bool {
	if cap(s)-len(s) >= m {
		return s
	}
	out := make([]bool, len(s), growCap(len(s), cap(s), m))
	copy(out, s)
	return out
}

// Append adds rows to the table, coercing every cell to its column's
// declared type once, at ingest. Rows must match the schema width
// (callers that ingest untrusted output must Conform rows first).
func (t *Table) Append(rows ...Row) {
	t.mutable()
	if len(rows) == 0 {
		return
	}
	t.grow(len(rows))
	for _, r := range rows {
		if len(r) != len(t.Schema.Cols) {
			panic(fmt.Sprintf("table: row width %d != schema width %d", len(r), len(t.Schema.Cols)))
		}
		for j := range t.Schema.Cols {
			t.appendCell(j, r[j])
		}
	}
	t.n += len(rows)
}

// appendCell ingests one cell into column j, coercing to the declared
// type.
func (t *Table) appendCell(j int, v Value) {
	c := &t.cols[j]
	if t.Schema.Cols[j].Type == DNumber {
		c.nums = append(c.nums, v.Num())
		return
	}
	s := v.Str()
	f, ok := parseNum(s)
	c.strs = append(c.strs, s)
	c.nums = append(c.nums, f)
	c.valid = append(c.valid, ok)
}

// AppendTable appends every row of src. Schemas must have identical
// column types (names may differ — callers align positionally).
func (t *Table) AppendTable(src *Table) {
	t.AppendBlock(src)
}

// AppendBlock appends src's rows column-wise, then fills t's trailing
// columns (beyond src's width) with the given constants, one per extra
// column. This is the engine's stamping path: a cached chunk block in
// the base schema lands in the full execution schema without any row
// materialization or re-parsing, and the shared (possibly frozen) src
// is never touched.
func (t *Table) AppendBlock(src *Table, consts ...Value) {
	t.mutable()
	if len(src.Schema.Cols)+len(consts) != len(t.Schema.Cols) {
		panic(fmt.Sprintf("table: block width %d+%d != schema width %d",
			len(src.Schema.Cols), len(consts), len(t.Schema.Cols)))
	}
	m := src.n
	if m == 0 && len(consts) == 0 {
		return
	}
	t.grow(m)
	for j := range src.Schema.Cols {
		if src.Schema.Cols[j].Type != t.Schema.Cols[j].Type {
			panic(fmt.Sprintf("table: column %d type mismatch (%v vs %v)",
				j, src.Schema.Cols[j].Type, t.Schema.Cols[j].Type))
		}
		dst, s := &t.cols[j], &src.cols[j]
		dst.nums = append(dst.nums, s.nums...)
		if t.Schema.Cols[j].Type == DString {
			dst.strs = append(dst.strs, s.strs...)
			dst.valid = append(dst.valid, s.valid...)
		}
	}
	for k, cv := range consts {
		j := len(src.Schema.Cols) + k
		c := &t.cols[j]
		if t.Schema.Cols[j].Type == DNumber {
			f := cv.Num()
			for i := 0; i < m; i++ {
				c.nums = append(c.nums, f)
			}
			continue
		}
		s := cv.Str()
		f, ok := parseNum(s)
		for i := 0; i < m; i++ {
			c.strs = append(c.strs, s)
			c.nums = append(c.nums, f)
			c.valid = append(c.valid, ok)
		}
	}
	t.n += m
}

// At returns the cell at row i, column j.
func (t *Table) At(i, j int) Value {
	if t.Schema.Cols[j].Type == DNumber {
		return N(t.cols[j].nums[i])
	}
	return S(t.cols[j].strs[i])
}

// Row materializes row i.
func (t *Table) Row(i int) Row {
	r := make(Row, len(t.Schema.Cols))
	for j := range t.Schema.Cols {
		r[j] = t.At(i, j)
	}
	return r
}

// Rows materializes every row. Intended for tests, debugging and
// row-oriented consumers; the relational operators work on columns.
func (t *Table) Rows() []Row {
	out := make([]Row, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.Row(i)
	}
	return out
}

// Nums returns the numeric view of column j: the stored values for a
// NUMBER column, or the parse-once coercion of a STRING column. The
// slice is shared with the table and must not be mutated.
func (t *Table) Nums(j int) []float64 { return t.cols[j].nums }

// Strs returns the string storage of STRING column j (nil for a NUMBER
// column). Shared; must not be mutated.
func (t *Table) Strs(j int) []string { return t.cols[j].strs }

// Valid reports, for STRING column j, which cells parsed as numbers
// (nil for a NUMBER column). Shared; must not be mutated.
func (t *Table) Valid(j int) []bool { return t.cols[j].valid }

// Gather returns a new table holding the rows selected by sel, in sel
// order. Output columns are preallocated to len(sel).
func (t *Table) Gather(sel []int) *Table {
	out := New(t.Schema)
	out.n = len(sel)
	for j := range t.Schema.Cols {
		src, dst := &t.cols[j], &out.cols[j]
		dst.nums = make([]float64, len(sel))
		for k, i := range sel {
			dst.nums[k] = src.nums[i]
		}
		if t.Schema.Cols[j].Type == DString {
			dst.strs = make([]string, len(sel))
			dst.valid = make([]bool, len(sel))
			for k, i := range sel {
				dst.strs[k] = src.strs[i]
				dst.valid[k] = src.valid[i]
			}
		}
	}
	return out
}

// Col returns the values of the named column, or an error if absent.
func (t *Table) Col(name string) ([]Value, error) {
	j := t.Schema.Index(name)
	if j < 0 {
		return nil, fmt.Errorf("table: no column %q", name)
	}
	out := make([]Value, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.At(i, j)
	}
	return out, nil
}

// Clone returns a deep, mutable copy of the table.
func (t *Table) Clone() *Table {
	out := New(t.Schema)
	out.n = t.n
	for j := range t.cols {
		out.cols[j].nums = append([]float64(nil), t.cols[j].nums...)
		if t.Schema.Cols[j].Type == DString {
			out.cols[j].strs = append([]string(nil), t.cols[j].strs...)
			out.cols[j].valid = append([]bool(nil), t.cols[j].valid...)
		}
	}
	return out
}

// SortBy sorts rows by the named column ascending (numeric comparison
// for NUMBER columns, lexicographic for STRING). Used by deterministic
// tests and output printers; relational semantics never depend on order.
func (t *Table) SortBy(name string) error {
	t.mutable()
	j := t.Schema.Index(name)
	if j < 0 {
		return fmt.Errorf("table: no column %q", name)
	}
	perm := make([]int, t.n)
	for i := range perm {
		perm[i] = i
	}
	if t.Schema.Cols[j].Type == DNumber {
		nums := t.cols[j].nums
		sort.SliceStable(perm, func(a, b int) bool { return nums[perm[a]] < nums[perm[b]] })
	} else {
		strs := t.cols[j].strs
		sort.SliceStable(perm, func(a, b int) bool { return strs[perm[a]] < strs[perm[b]] })
	}
	sorted := t.Gather(perm)
	t.cols = sorted.cols
	return nil
}

// MemBytes approximates the table's resident size: column storage plus
// string content. Used for cache accounting.
func (t *Table) MemBytes() int64 {
	var b int64
	for j := range t.cols {
		c := &t.cols[j]
		b += int64(len(c.nums)) * 8
		b += int64(len(c.valid))
		b += int64(len(c.strs)) * 16
		for _, s := range c.strs {
			b += int64(len(s))
		}
	}
	return b
}

// String renders a compact textual form for debugging.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Schema.Names(), "|"))
	b.WriteString("\n")
	for i := 0; i < t.n; i++ {
		for j := range t.Schema.Cols {
			if j > 0 {
				b.WriteString("|")
			}
			if t.Schema.Cols[j].Type == DNumber {
				b.WriteString(strconv.FormatFloat(t.cols[j].nums[i], 'g', -1, 64))
			} else {
				b.WriteString(t.cols[j].strs[i])
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
