// Package table implements Privid's intermediate tables: the untrusted
// tabular output of the analyst's per-chunk processing executables
// (§6.2). Values are typed STRING or NUMBER per the query grammar
// (Appendix D); every table additionally carries the implicit "chunk"
// column (the timestamp of the chunk's first frame) and, when spatial
// splitting is used, the implicit "region" column. Privid trusts these
// two columns (it creates them) and nothing else.
package table

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// DType is the data type of a column: STRING or NUMBER.
type DType int

const (
	// DString is an arbitrary string column.
	DString DType = iota
	// DNumber is a floating-point numeric column.
	DNumber
)

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case DString:
		return "STRING"
	case DNumber:
		return "NUMBER"
	default:
		return fmt.Sprintf("DType(%d)", int(d))
	}
}

// Value is a typed scalar. The zero Value is the empty STRING.
type Value struct {
	typ DType
	s   string
	n   float64
}

// S returns a STRING value.
func S(s string) Value { return Value{typ: DString, s: s} }

// N returns a NUMBER value.
func N(n float64) Value { return Value{typ: DNumber, n: n} }

// Type returns the value's data type.
func (v Value) Type() DType { return v.typ }

// Str returns the string content; NUMBER values are formatted.
func (v Value) Str() string {
	if v.typ == DNumber {
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	}
	return v.s
}

// Num returns the numeric content; STRING values parse if possible and
// otherwise yield 0 (mirroring the paper's schema coercion: untrusted
// output is forced into the declared schema).
func (v Value) Num() float64 {
	if v.typ == DNumber {
		return v.n
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
	if err != nil {
		return 0
	}
	return f
}

// Equal reports deep equality of two values (type and content).
func (v Value) Equal(o Value) bool {
	if v.typ != o.typ {
		return false
	}
	if v.typ == DNumber {
		return v.n == o.n || (math.IsNaN(v.n) && math.IsNaN(o.n))
	}
	return v.s == o.s
}

// Key returns a map-key-safe representation used for GROUP BY and JOIN
// matching.
func (v Value) Key() string {
	if v.typ == DNumber {
		return "n:" + strconv.FormatFloat(v.n, 'g', -1, 64)
	}
	return "s:" + v.s
}

// String implements fmt.Stringer.
func (v Value) String() string { return v.Str() }

// wireValue is Value's JSON form: {"t":"n","n":…} or {"t":"s","s":…}.
type wireValue struct {
	T string  `json:"t"`
	S string  `json:"s,omitempty"`
	N float64 `json:"n,omitempty"`
}

// MarshalJSON implements json.Marshaler so values survive persistence
// (the serving layer's durable job results) without losing their type.
func (v Value) MarshalJSON() ([]byte, error) {
	if v.typ == DNumber {
		return json.Marshal(wireValue{T: "n", N: v.n})
	}
	return json.Marshal(wireValue{T: "s", S: v.s})
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(b []byte) error {
	var w wireValue
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	switch w.T {
	case "n":
		*v = N(w.N)
	case "s":
		*v = S(w.S)
	default:
		return fmt.Errorf("table: unknown value type %q", w.T)
	}
	return nil
}

// Coerce forces v to type t, converting content as needed.
func (v Value) Coerce(t DType) Value {
	if v.typ == t {
		return v
	}
	if t == DNumber {
		return N(v.Num())
	}
	return S(v.Str())
}

// Column describes one column of an intermediate-table schema. Default
// is the value emitted when the analyst's executable crashes or exceeds
// its TIMEOUT (Appendix D).
type Column struct {
	Name    string
	Type    DType
	Default Value
}

// Reserved implicit column names. Privid adds these to every table; the
// analyst's schema may not redeclare them.
const (
	ChunkColumn  = "chunk"
	RegionColumn = "region"
	CameraColumn = "camera"
)

// Schema is an ordered set of columns.
type Schema struct {
	Cols []Column
}

// NewSchema validates and returns a schema from analyst-declared
// columns. Duplicate or reserved names are rejected.
func NewSchema(cols ...Column) (Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		name := c.Name
		if name == "" {
			return Schema{}, fmt.Errorf("table: empty column name")
		}
		if name == ChunkColumn || name == RegionColumn || name == CameraColumn {
			return Schema{}, fmt.Errorf("table: column name %q is reserved", name)
		}
		if seen[name] {
			return Schema{}, fmt.Errorf("table: duplicate column %q", name)
		}
		seen[name] = true
	}
	return Schema{Cols: append([]Column(nil), cols...)}, nil
}

// MustSchema is NewSchema that panics on error, for tests and fixtures.
func MustSchema(cols ...Column) Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Has reports whether the schema contains the named column.
func (s Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// DefaultRow returns the row of per-column default values, emitted when
// a chunk's processing crashes or times out.
func (s Schema) DefaultRow() Row {
	r := make(Row, len(s.Cols))
	for i, c := range s.Cols {
		r[i] = c.Default.Coerce(c.Type)
	}
	return r
}

// WithImplicit returns a copy of the schema with the implicit chunk
// column and, if region is true, the implicit region column appended.
func (s Schema) WithImplicit(region bool) Schema {
	return s.WithImplicitCols(region, false)
}

// WithImplicitCols returns a copy of the schema with the implicit
// trusted columns appended: chunk always, region when the split used
// BY REGION, and camera when the chunk set spans multiple cameras
// (multi-camera SPLIT or MERGE) so every row carries engine-stamped
// provenance.
func (s Schema) WithImplicitCols(region, camera bool) Schema {
	cols := append([]Column(nil), s.Cols...)
	cols = append(cols, Column{Name: ChunkColumn, Type: DNumber, Default: N(0)})
	if region {
		cols = append(cols, Column{Name: RegionColumn, Type: DString, Default: S("")})
	}
	if camera {
		cols = append(cols, Column{Name: CameraColumn, Type: DString, Default: S("")})
	}
	return Schema{Cols: cols}
}

// Row is one record of an intermediate table, positionally matching a
// Schema.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Conform coerces the untrusted raw row into the schema: extra columns
// are dropped, missing columns are filled with defaults, and each value
// is coerced to the declared type. This implements the paper's rule
// that Privid "interprets the output of each chunk according to the
// PROCESS schema and ignores extraneous columns".
func (s Schema) Conform(raw Row) Row {
	out := make(Row, len(s.Cols))
	for i, c := range s.Cols {
		if i < len(raw) {
			out[i] = raw[i].Coerce(c.Type)
		} else {
			out[i] = c.Default.Coerce(c.Type)
		}
	}
	return out
}

// Table is an ordered collection of rows with a schema. The contents
// are untrusted (analyst-generated); only the schema shape and the
// implicit columns are trusted.
type Table struct {
	Schema Schema
	Rows   []Row
}

// New returns an empty table with the given schema.
func New(s Schema) *Table { return &Table{Schema: s} }

// Append adds rows to the table without validation. Callers that ingest
// untrusted output must Conform rows first.
func (t *Table) Append(rows ...Row) { t.Rows = append(t.Rows, rows...) }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Col returns the values of the named column, or an error if absent.
func (t *Table) Col(name string) ([]Value, error) {
	i := t.Schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("table: no column %q", name)
	}
	out := make([]Value, len(t.Rows))
	for j, r := range t.Rows {
		out[j] = r[i]
	}
	return out, nil
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := New(t.Schema)
	out.Rows = make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		out.Rows[i] = r.Clone()
	}
	return out
}

// SortBy sorts rows by the named column ascending (numeric comparison
// for NUMBER columns, lexicographic for STRING). Used by deterministic
// tests and output printers; relational semantics never depend on order.
func (t *Table) SortBy(name string) error {
	i := t.Schema.Index(name)
	if i < 0 {
		return fmt.Errorf("table: no column %q", name)
	}
	numeric := t.Schema.Cols[i].Type == DNumber
	sort.SliceStable(t.Rows, func(a, b int) bool {
		if numeric {
			return t.Rows[a][i].Num() < t.Rows[b][i].Num()
		}
		return t.Rows[a][i].Str() < t.Rows[b][i].Str()
	})
	return nil
}

// String renders a compact textual form for debugging.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Schema.Names(), "|"))
	b.WriteString("\n")
	for _, r := range t.Rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.Str()
		}
		b.WriteString(strings.Join(parts, "|"))
		b.WriteString("\n")
	}
	return b.String()
}
