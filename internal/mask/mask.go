// Package mask implements Privid's spatial-masking optimization (§7.1,
// Appendix F): fixed grid-cell masks that remove long-lingering regions
// from the analyst's view, the persistence heatmaps used to find them
// (Fig. 3), the greedy mask-ordering of Algorithm 2, and the
// mask→policy map the video owner publishes (Appendix F.2).
package mask

import (
	"fmt"
	"math/bits"

	"privid/internal/geom"
)

// VisibleThreshold is the minimum unmasked fraction of an object's
// bounding box for the object to remain detectable. Masks black out
// pixels; an object mostly covered by black pixels is effectively
// removed from the video.
const VisibleThreshold = 0.4

// Mask is a set of masked grid cells over a frame. The zero-cell mask
// hides nothing.
type Mask struct {
	Grid geom.Grid
	bits []uint64
}

// New returns an empty mask over the given grid.
func New(g geom.Grid) *Mask {
	n := g.NumCells()
	return &Mask{Grid: g, bits: make([]uint64, (n+63)/64)}
}

// FromRects returns a mask covering every cell intersected by any of
// the given pixel rectangles.
func FromRects(g geom.Grid, rects ...geom.Rect) *Mask {
	m := New(g)
	for _, r := range rects {
		for _, c := range g.CellsFor(r) {
			m.Set(c)
		}
	}
	return m
}

// Invert returns the complement mask: every cell *not* covered by m.
// Queries like Q10–Q12 mask "everything except the traffic light".
func (m *Mask) Invert() *Mask {
	out := New(m.Grid)
	n := m.Grid.NumCells()
	for i := 0; i < n; i++ {
		if !m.getIndex(i) {
			out.setIndex(i)
		}
	}
	return out
}

func (m *Mask) setIndex(i int) {
	if i < 0 {
		return
	}
	m.bits[i/64] |= 1 << (i % 64)
}

func (m *Mask) getIndex(i int) bool {
	if i < 0 || i/64 >= len(m.bits) {
		return false
	}
	return m.bits[i/64]&(1<<(i%64)) != 0
}

// Set masks cell c.
func (m *Mask) Set(c geom.Cell) { m.setIndex(m.Grid.Index(c)) }

// Masked reports whether cell c is masked.
func (m *Mask) Masked(c geom.Cell) bool { return m.getIndex(m.Grid.Index(c)) }

// Count returns the number of masked cells.
func (m *Mask) Count() int {
	n := 0
	for _, w := range m.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Fraction returns the fraction of grid cells masked (the x-axis of
// Fig. 11).
func (m *Mask) Fraction() float64 {
	total := m.Grid.NumCells()
	if total == 0 {
		return 0
	}
	return float64(m.Count()) / float64(total)
}

// CoveredFraction returns the fraction of box's area covered by masked
// cells.
func (m *Mask) CoveredFraction(box geom.Rect) float64 {
	a := box.Area()
	if a <= 0 {
		return 0
	}
	var covered float64
	for _, c := range m.Grid.CellsFor(box) {
		if m.Masked(c) {
			covered += m.Grid.CellRect(c).Intersect(box).Area()
		}
	}
	return covered / a
}

// Visible reports whether an object occupying box survives the mask.
// It implements video.Occluder.
func (m *Mask) Visible(box geom.Rect) bool {
	return 1-m.CoveredFraction(box) >= VisibleThreshold
}

// Clone returns a deep copy.
func (m *Mask) Clone() *Mask {
	return &Mask{Grid: m.Grid, bits: append([]uint64(nil), m.bits...)}
}

// String summarizes the mask.
func (m *Mask) String() string {
	return fmt.Sprintf("mask{%d/%d cells}", m.Count(), m.Grid.NumCells())
}
