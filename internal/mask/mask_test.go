package mask

import (
	"testing"
	"time"

	"privid/internal/geom"
	"privid/internal/scene"
	"privid/internal/vtime"
)

func grid100() geom.Grid { return geom.NewGrid(100, 100, 10, 10) }

func TestMaskBasics(t *testing.T) {
	m := New(grid100())
	if m.Count() != 0 || m.Fraction() != 0 {
		t.Fatalf("new mask not empty")
	}
	m.Set(geom.Cell{Col: 0, Row: 0})
	m.Set(geom.Cell{Col: 5, Row: 5})
	m.Set(geom.Cell{Col: 5, Row: 5}) // idempotent
	if m.Count() != 2 {
		t.Errorf("Count=%d, want 2", m.Count())
	}
	if !m.Masked(geom.Cell{Col: 5, Row: 5}) || m.Masked(geom.Cell{Col: 1, Row: 1}) {
		t.Errorf("Masked wrong")
	}
	if m.Fraction() != 0.02 {
		t.Errorf("Fraction=%v", m.Fraction())
	}
}

func TestFromRectsAndCovered(t *testing.T) {
	// Mask the left half of the frame.
	m := FromRects(grid100(), geom.Rect{X0: 0, Y0: 0, X1: 50, Y1: 100})
	if m.Count() != 50 {
		t.Fatalf("Count=%d, want 50", m.Count())
	}
	// A box fully inside the masked area.
	if got := m.CoveredFraction(geom.Rect{X0: 10, Y0: 10, X1: 30, Y1: 30}); got != 1 {
		t.Errorf("fully covered = %v", got)
	}
	// A box straddling the boundary 50/50.
	if got := m.CoveredFraction(geom.Rect{X0: 40, Y0: 10, X1: 60, Y1: 30}); got != 0.5 {
		t.Errorf("half covered = %v", got)
	}
	// Visibility rule: needs >= 40% unmasked.
	if m.Visible(geom.Rect{X0: 10, Y0: 10, X1: 30, Y1: 30}) {
		t.Errorf("fully covered box should be invisible")
	}
	if !m.Visible(geom.Rect{X0: 40, Y0: 10, X1: 60, Y1: 30}) {
		t.Errorf("half-covered box should be visible (50%% >= 40%%)")
	}
	if !m.Visible(geom.Rect{X0: 60, Y0: 10, X1: 80, Y1: 30}) {
		t.Errorf("uncovered box should be visible")
	}
}

func TestInvert(t *testing.T) {
	m := FromRects(grid100(), geom.Rect{X0: 0, Y0: 0, X1: 30, Y1: 30})
	inv := m.Invert()
	if m.Count()+inv.Count() != grid100().NumCells() {
		t.Fatalf("invert counts: %d + %d != %d", m.Count(), inv.Count(), grid100().NumCells())
	}
	c := geom.Cell{Col: 1, Row: 1}
	if m.Masked(c) == inv.Masked(c) {
		t.Errorf("cell masked in both or neither")
	}
}

func TestClone(t *testing.T) {
	m := New(grid100())
	m.Set(geom.Cell{Col: 1, Row: 1})
	c := m.Clone()
	c.Set(geom.Cell{Col: 2, Row: 2})
	if m.Count() != 1 || c.Count() != 2 {
		t.Errorf("clone not independent: %d, %d", m.Count(), c.Count())
	}
}

// lingerScene builds a scene with transit walkers plus one long
// lingerer pinned at a fixed spot — the shape masking exploits.
func lingerScene() *scene.Scene {
	s := &scene.Scene{Name: "l", W: 100, H: 100, FPS: 10, Frames: 20000,
		Start: time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)}
	id := 0
	add := func(enter, exit int64, pts ...scene.Waypoint) {
		s.Ents = append(s.Ents, &scene.Entity{
			ID: id, Class: scene.Person,
			Appearances: []scene.Appearance{{
				Enter: enter, Exit: exit,
				Traj: scene.NewPath(enter, exit, 8, 8, 1, pts...),
			}},
		})
		id++
	}
	// 20 transits of 200 frames each across the middle.
	for i := 0; i < 20; i++ {
		start := int64(i * 500)
		add(start, start+200,
			scene.Waypoint{T: 0, P: geom.Point{X: 2, Y: 50}},
			scene.Waypoint{T: 1, P: geom.Point{X: 98, Y: 50}})
	}
	// One bench sitter: 10000 frames parked at (85, 85).
	add(1000, 11000,
		scene.Waypoint{T: 0, P: geom.Point{X: 85, Y: 85}},
		scene.Waypoint{T: 1, P: geom.Point{X: 85, Y: 85}})
	s.BuildIndex()
	return s
}

func TestCollectPresenceAndHeatmap(t *testing.T) {
	s := lingerScene()
	g := grid100()
	pres := CollectPresence(s, g, s.Bounds(), 10)
	if len(pres) != 21 {
		t.Fatalf("presence tracks=%d, want 21", len(pres))
	}
	heat := Heatmap(pres, g)
	// The bench cell must dominate the heatmap.
	benchCell, _ := g.CellOf(geom.Point{X: 85, Y: 85})
	benchHeat := heat[g.Index(benchCell)]
	maxOther := 0.0
	for i, h := range heat {
		if i != g.Index(benchCell) && h > maxOther {
			maxOther = h
		}
	}
	if benchHeat <= maxOther {
		t.Errorf("bench heat %v not dominant (max other %v)", benchHeat, maxOther)
	}
}

func TestPersistenceUnderMask(t *testing.T) {
	s := lingerScene()
	stats := PersistenceUnderMask(s, nil, s.Bounds(), 10)
	maxNoMask, retained := MaxVisible(stats)
	if retained != 1 {
		t.Fatalf("no mask should retain all identities, got %v", retained)
	}
	if maxNoMask < 900 {
		t.Fatalf("unmasked max persistence=%d, want ~1000 sampled frames", maxNoMask)
	}
	// Mask the bench corner: max persistence collapses to transits.
	m := FromRects(grid100(), geom.Rect{X0: 70, Y0: 70, X1: 100, Y1: 100})
	stats2 := PersistenceUnderMask(s, m, s.Bounds(), 10)
	maxMasked, retained2 := MaxVisible(stats2)
	if maxMasked > 40 {
		t.Errorf("masked max persistence=%d, want ~20 (transit length)", maxMasked)
	}
	// All transits survive; the lingerer is hidden.
	if retained2 < 0.9 || retained2 >= 1 {
		t.Errorf("retained=%v, want 20/21", retained2)
	}
	if maxNoMask/maxMasked < 10 {
		t.Errorf("mask reduction %dx, want >=10x", maxNoMask/maxMasked)
	}
}

func TestGreedyOrder(t *testing.T) {
	s := lingerScene()
	g := grid100()
	pres := CollectPresence(s, g, s.Bounds(), 10)
	steps := GreedyOrder(pres, g)
	if len(steps) == 0 {
		t.Fatal("no greedy steps")
	}
	// The first masked cell must be the bench (largest persistence).
	benchCell, _ := g.CellOf(geom.Point{X: 85, Y: 85})
	if steps[0].Cell != benchCell {
		t.Errorf("first greedy cell=%v, want bench %v", steps[0].Cell, benchCell)
	}
	// Max persistence must be non-increasing along the steps.
	for i := 1; i < len(steps); i++ {
		if steps[i].MaxPersistence > steps[i-1].MaxPersistence {
			t.Fatalf("step %d persistence increased: %d -> %d", i, steps[i-1].MaxPersistence, steps[i].MaxPersistence)
		}
	}
	// Identities retained must be non-increasing.
	for i := 1; i < len(steps); i++ {
		if steps[i].IdentitiesRetained > steps[i-1].IdentitiesRetained+1e-12 {
			t.Fatalf("step %d identities increased", i)
		}
	}
	// The final step should have eliminated everything.
	if last := steps[len(steps)-1]; last.MaxPersistence != 0 || last.IdentitiesRetained != 0 {
		t.Errorf("final step = %+v, want all masked", last)
	}
	// Masking the single bench cell should already cut max persistence
	// to the transit scale.
	if steps[0].MaxPersistence > 40 {
		t.Errorf("after first cell, max persistence=%d, want transit scale", steps[0].MaxPersistence)
	}
}

func TestMaskForTarget(t *testing.T) {
	s := lingerScene()
	g := grid100()
	pres := CollectPresence(s, g, s.Bounds(), 10)
	steps := GreedyOrder(pres, g)
	m, st := MaskForTarget(steps, g, 40)
	if st.MaxPersistence > 40 {
		t.Errorf("target not reached: %+v", st)
	}
	if m.Count() == 0 || m.Count() > 5 {
		t.Errorf("mask size=%d, want small", m.Count())
	}
}

func TestBuildPolicyMap(t *testing.T) {
	s := lingerScene()
	g := grid100()
	pres := CollectPresence(s, g, s.Bounds(), 10)
	pm := BuildPolicyMap("camA", pres, g, s.FPS, 10, 2, []float64{1, 2, 10})
	if len(pm.Entries) != 3 {
		t.Fatalf("%d entries, want 3", len(pm.Entries))
	}
	// Rho must be non-increasing as the factor grows.
	for i := 1; i < len(pm.Entries); i++ {
		if pm.Entries[i].Policy.Rho > pm.Entries[i-1].Policy.Rho {
			t.Errorf("rho increased between entries %d and %d", i-1, i)
		}
	}
	// Every policy keeps K.
	for _, e := range pm.Entries {
		if e.Policy.K != 2 {
			t.Errorf("K=%d, want 2", e.Policy.K)
		}
	}
	// The unmasked entry's rho must cover the lingerer (1000 sampled
	// frames * 10 stride / 10 fps = 1000s).
	if rho := pm.Entries[0].Policy.Rho; rho < 900*time.Second {
		t.Errorf("unmasked rho=%v, want >=900s", rho)
	}
	// Lookup and Best.
	if _, ok := pm.Lookup(pm.Entries[1].ID); !ok {
		t.Errorf("Lookup failed")
	}
	best, ok := pm.Best(1.0)
	if !ok || best.Policy.Rho != pm.Entries[len(pm.Entries)-1].Policy.Rho {
		t.Errorf("Best(1.0) = %+v", best)
	}
	if _, ok := pm.Best(-1); ok {
		t.Errorf("Best with impossible budget should fail")
	}
}

func TestPresenceClipping(t *testing.T) {
	s := lingerScene()
	g := grid100()
	// Clip to a window covering only the first transit.
	pres := CollectPresence(s, g, vtime.NewInterval(0, 250), 10)
	if len(pres) != 1 {
		t.Fatalf("clipped presence=%d tracks, want 1", len(pres))
	}
	if n := len(pres[0].Frames); n < 15 || n > 25 {
		t.Errorf("clipped track has %d sampled frames, want ~20", n)
	}
}
