package mask

import (
	"fmt"
	"sort"
	"time"

	"privid/internal/geom"
	"privid/internal/policy"
	"privid/internal/vtime"
)

// PolicyEntry pairs a published mask with the (ρ, K) policy that holds
// when the mask is applied. Masking reduces observable persistence, so
// heavier masks map to smaller ρ — and therefore less noise — at the
// same level of privacy (§7.1).
type PolicyEntry struct {
	ID     string
	Mask   *Mask
	Policy policy.Policy
}

// PolicyMap is the data structure the video owner computes from
// historical video and releases to analysts (Appendix F.2): a ladder of
// masks with their corresponding policies. At query time the analyst
// picks the entry that least disrupts their query while minimizing ρ.
//
// Releasing the map does not break the privacy guarantee: it can leak
// at most what the adversary would need to already know about an
// individual to interpret it (Appendix F.2's claim), and it describes
// only historical calibration video, never the queried video.
type PolicyMap struct {
	Camera  string
	Entries []PolicyEntry
}

// Lookup returns the entry with the given ID.
func (pm *PolicyMap) Lookup(id string) (PolicyEntry, bool) {
	for _, e := range pm.Entries {
		if e.ID == id {
			return e, true
		}
	}
	return PolicyEntry{}, false
}

// Best returns the entry with the smallest ρ whose mask covers at most
// maxFraction of the frame — the analyst-side selection rule.
func (pm *PolicyMap) Best(maxFraction float64) (PolicyEntry, bool) {
	var best PolicyEntry
	found := false
	for _, e := range pm.Entries {
		if e.Mask != nil && e.Mask.Fraction() > maxFraction {
			continue
		}
		if !found || e.Policy.Rho < best.Policy.Rho {
			best = e
			found = true
		}
	}
	return best, found
}

// BuildPolicyMap runs Algorithm 2 over historical presence data and
// returns a ladder of masks at the requested persistence-reduction
// factors (e.g. 1 = no mask, 2 = halve the max persistence, ...).
// K is carried through unchanged; stride and fps convert sampled
// frames back to wall-clock ρ. A one-sample safety margin is added to
// ρ so sampling cannot under-estimate it.
func BuildPolicyMap(camera string, pres []TrackPresence, grid geom.Grid, fps vtime.FrameRate, stride int64, k int, factors []float64) *PolicyMap {
	steps := GreedyOrder(pres, grid)
	base := 0
	for _, tp := range pres {
		if len(tp.Frames) > base {
			base = len(tp.Frames)
		}
	}
	pm := &PolicyMap{Camera: camera}
	sort.Float64s(factors)
	for _, f := range factors {
		if f < 1 {
			continue
		}
		target := int(float64(base) / f)
		var m *Mask
		reached := base
		if f == 1 {
			m = New(grid)
		} else {
			var last Step
			m, last = MaskForTarget(steps, grid, target)
			reached = last.MaxPersistence
		}
		rhoFrames := int64(reached+1) * stride // +1: sampling margin
		// IDs must be query-language identifiers (no '-').
		pm.Entries = append(pm.Entries, PolicyEntry{
			ID:     fmt.Sprintf("%s_x%g", sanitizeID(camera), f),
			Mask:   m,
			Policy: policy.Policy{Rho: time.Duration(float64(rhoFrames) / float64(fps) * float64(time.Second)), K: k},
		})
	}
	return pm
}

// sanitizeID maps a camera name to a query-language identifier.
func sanitizeID(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
