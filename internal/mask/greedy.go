package mask

import (
	"container/heap"
	"sort"

	"privid/internal/geom"
)

// Step is one iteration of Algorithm 2: masking one more grid box and
// the resulting scene-wide statistics. Walking the step list gives the
// cumulative curves of Fig. 11.
type Step struct {
	Cell geom.Cell
	// MaxPersistence is the maximum per-track persistence (in sampled
	// frames) remaining after this cell is masked.
	MaxPersistence int
	// IdentitiesRetained is the fraction of tracks still visible in at
	// least one frame.
	IdentitiesRetained float64
}

// GreedyOrder implements Algorithm 2: it repeatedly finds the track
// with the largest remaining persistence, masks the unmasked grid box
// that track intersects for the most frames, and updates every
// affected track. The returned steps are ordered so that each prefix
// is the best mask of that size under the greedy heuristic.
func GreedyOrder(pres []TrackPresence, grid geom.Grid) []Step {
	n := len(pres)
	if n == 0 {
		return nil
	}
	// alive[t][f] = number of unmasked cells track t intersects at its
	// f-th sampled frame; persistence[t] = #frames with alive > 0.
	alive := make([][]int32, n)
	persistence := make([]int, n)
	// invert: cell -> list of (track, frame) presence entries.
	type tf struct{ t, f int32 }
	invert := make(map[int32][]tf)
	// cellCount[t]: per-cell total frame counts for track t, as a
	// sorted candidate list (built lazily).
	type cellCount struct {
		cell  int32
		count int32
	}
	candidates := make([][]cellCount, n)

	for t, tp := range pres {
		alive[t] = make([]int32, len(tp.Frames))
		persistence[t] = len(tp.Frames)
		for f, fp := range tp.Frames {
			alive[t][f] = int32(len(fp.Cells))
			for _, c := range fp.Cells {
				invert[c] = append(invert[c], tf{int32(t), int32(f)})
			}
		}
	}

	buildCandidates := func(t int) {
		counts := make(map[int32]int32)
		for _, fp := range pres[t].Frames {
			for _, c := range fp.Cells {
				counts[c]++
			}
		}
		list := make([]cellCount, 0, len(counts))
		for c, k := range counts {
			list = append(list, cellCount{c, k})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].count != list[j].count {
				return list[i].count > list[j].count
			}
			return list[i].cell < list[j].cell
		})
		candidates[t] = list
	}

	// Max-persistence queue with lazy invalidation.
	pq := &maxHeap{}
	for t, p := range persistence {
		heap.Push(pq, heapItem{p, t})
	}
	masked := make(map[int32]bool)
	retainedCount := 0
	for _, p := range persistence {
		if p > 0 {
			retainedCount++
		}
	}

	var steps []Step
	for {
		// Pop the current max-persistence track (skipping stale items).
		var tmax int
		found := false
		for pq.Len() > 0 {
			top := (*pq)[0]
			if top.p != persistence[top.t] {
				heap.Pop(pq)
				continue
			}
			if top.p == 0 {
				break
			}
			tmax = top.t
			found = true
			break
		}
		if !found {
			break
		}
		if candidates[tmax] == nil {
			buildCandidates(tmax)
		}
		var cell int32 = -1
		for _, cc := range candidates[tmax] {
			if !masked[cc.cell] {
				cell = cc.cell
				break
			}
		}
		if cell < 0 {
			// All of the track's cells are masked yet persistence > 0:
			// cannot happen, but guard against an infinite loop.
			break
		}
		masked[cell] = true
		for _, e := range invert[cell] {
			alive[e.t][e.f]--
			if alive[e.t][e.f] == 0 {
				persistence[e.t]--
				heap.Push(pq, heapItem{persistence[e.t], int(e.t)})
				if persistence[e.t] == 0 {
					retainedCount--
				}
			}
		}
		maxP := 0
		if pq.Len() > 0 {
			// Lazily clean the heap top to read the current max.
			for pq.Len() > 0 {
				top := (*pq)[0]
				if top.p != persistence[top.t] {
					heap.Pop(pq)
					continue
				}
				maxP = top.p
				break
			}
		}
		steps = append(steps, Step{
			Cell:               grid.CellAt(int(cell)),
			MaxPersistence:     maxP,
			IdentitiesRetained: float64(retainedCount) / float64(n),
		})
	}
	return steps
}

// MaskForTarget walks a greedy step list and returns the smallest
// prefix mask whose remaining max persistence is at most target
// sampled frames, together with that prefix's statistics. If the
// target is unreachable it returns the full list's final mask.
func MaskForTarget(steps []Step, grid geom.Grid, target int) (*Mask, Step) {
	m := New(grid)
	var last Step
	for _, st := range steps {
		m.Set(st.Cell)
		last = st
		if st.MaxPersistence <= target {
			break
		}
	}
	return m, last
}

type heapItem struct {
	p int
	t int
}

type maxHeap []heapItem

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].p > h[j].p }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
