package mask

import (
	"privid/internal/geom"
	"privid/internal/scene"
	"privid/internal/vtime"
)

// FramePresence records which grid cells one track's box intersects at
// one sampled frame.
type FramePresence struct {
	Frame int64
	Cells []int32 // linear cell indices
}

// TrackPresence is one ground-truth appearance reduced to its sampled
// per-frame cell occupancy — the input representation of Algorithm 2.
type TrackPresence struct {
	EntityID   int
	Appearance int
	Frames     []FramePresence
}

// CollectPresence samples every stride-th frame of each private
// appearance in s within iv and records the grid cells its box
// intersects. stride trades resolution for speed; persistence values
// derived from the result are in units of sampled frames.
func CollectPresence(s *scene.Scene, grid geom.Grid, iv vtime.Interval, stride int64) []TrackPresence {
	if stride < 1 {
		stride = 1
	}
	var out []TrackPresence
	for _, e := range s.Ents {
		if !e.Class.Private() {
			continue
		}
		for ai, a := range e.Appearances {
			clip := a.Interval().Intersect(iv)
			if clip.Empty() {
				continue
			}
			tp := TrackPresence{EntityID: e.ID, Appearance: ai}
			for f := clip.Start; f < clip.End; f += stride {
				box := a.Traj.Box(f)
				cells := grid.CellsFor(box)
				if len(cells) == 0 {
					continue
				}
				fp := FramePresence{Frame: f, Cells: make([]int32, len(cells))}
				for i, c := range cells {
					fp.Cells[i] = int32(grid.Index(c))
				}
				tp.Frames = append(tp.Frames, fp)
			}
			if len(tp.Frames) > 0 {
				out = append(out, tp)
			}
		}
	}
	return out
}

// Heatmap returns the per-cell maximum persistence in sampled frames:
// for each cell, the largest number of sampled frames any single track
// spends intersecting it. This is the Fig. 3 heatmap (multiply by
// stride/fps for seconds).
func Heatmap(pres []TrackPresence, grid geom.Grid) []float64 {
	heat := make([]float64, grid.NumCells())
	counts := make(map[int32]int)
	for _, tp := range pres {
		clear(counts)
		for _, fp := range tp.Frames {
			for _, c := range fp.Cells {
				counts[c]++
			}
		}
		for c, n := range counts {
			if float64(n) > heat[c] {
				heat[c] = float64(n)
			}
		}
	}
	return heat
}

// PersistenceStat summarizes one appearance's visibility under a mask.
type PersistenceStat struct {
	EntityID      int
	Appearance    int
	TotalFrames   int64 // sampled frames in the appearance
	VisibleFrames int64 // sampled frames surviving the mask
}

// PersistenceUnderMask evaluates, for every private appearance in s
// within iv, how many sampled frames remain visible under mask m using
// the area-based visibility rule (the same rule the engine's masked
// sources apply). A nil mask hides nothing. The result backs the
// Fig. 4 persistence histograms.
func PersistenceUnderMask(s *scene.Scene, m *Mask, iv vtime.Interval, stride int64) []PersistenceStat {
	if stride < 1 {
		stride = 1
	}
	var out []PersistenceStat
	for _, e := range s.Ents {
		if !e.Class.Private() {
			continue
		}
		for ai, a := range e.Appearances {
			clip := a.Interval().Intersect(iv)
			if clip.Empty() {
				continue
			}
			st := PersistenceStat{EntityID: e.ID, Appearance: ai}
			for f := clip.Start; f < clip.End; f += stride {
				st.TotalFrames++
				if m == nil || m.Visible(a.Traj.Box(f)) {
					st.VisibleFrames++
				}
			}
			out = append(out, st)
		}
	}
	return out
}

// MaxVisible returns the maximum VisibleFrames over the stats and the
// fraction of appearances that remain visible at all ("% Identities
// Retained" in Table 6).
func MaxVisible(stats []PersistenceStat) (maxFrames int64, retained float64) {
	if len(stats) == 0 {
		return 0, 0
	}
	n := 0
	for _, s := range stats {
		if s.VisibleFrames > maxFrames {
			maxFrames = s.VisibleFrames
		}
		if s.VisibleFrames > 0 {
			n++
		}
	}
	return maxFrames, float64(n) / float64(len(stats))
}
