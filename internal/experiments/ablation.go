package experiments

import (
	"fmt"

	"privid/internal/query"
	"privid/internal/scene"
)

// runAblation quantifies the utility value of each design choice the
// paper argues for, end to end through the engine on the highway
// counting query:
//
//   - masking (§7.1): the same query with and without WITH MASK —
//     without it, the camera's unmasked (parked-car) ρ applies;
//   - chunk sizing (Fig. 6's X): the chosen 30 s chunk vs a 5 s chunk;
//   - budget split: CONSUMING 1 per release vs the engine default.
//
// Each variant reports its noise scale; the ratios are the measured
// benefit of each mechanism.
func runAblation(cfg Config) (*Summary, error) {
	sum := newSummary()
	p := scene.Highway()
	cs := setupCamera(p, cfg.Seed, cfg.window())
	begin := cs.scene.Start
	end := begin.Add(cfg.window())

	variant := func(name, maskClause, chunk, consuming string) (float64, error) {
		e := newEngine(cfg)
		if err := registerSceneCamera(e, cs); err != nil {
			return 0, err
		}
		if err := e.Registry().Register("entrants", entrantCounter(p, cfg.Seed)); err != nil {
			return 0, err
		}
		src := fmt.Sprintf(`
SPLIT %s BEGIN %s END %s BY TIME %s STRIDE 0sec %s INTO c;
PROCESS c USING entrants TIMEOUT 60sec PRODUCING %d ROWS WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM (SELECT bin(chunk, 3600) AS hr FROM t) GROUP BY hr %s;`,
			p.Name, fmtTS(begin), fmtTS(end), chunk, maskClause, fig5MaxRows(p), consuming)
		prog, err := query.Parse(src)
		if err != nil {
			return 0, err
		}
		res, err := e.Execute(prog)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		return res.Releases[0].NoiseScale, nil
	}

	masked, err := variant("masked", "WITH MASK "+maskLinger, "30sec", "CONSUMING 1")
	if err != nil {
		return nil, err
	}
	unmasked, err := variant("unmasked", "", "30sec", "CONSUMING 1")
	if err != nil {
		return nil, err
	}
	smallChunk, err := variant("small-chunk", "WITH MASK "+maskLinger, "5sec", "CONSUMING 1")
	if err != nil {
		return nil, err
	}
	defaultEps, err := variant("default-eps", "WITH MASK "+maskLinger, "30sec", "")
	if err != nil {
		return nil, err
	}

	cfg.printf("Ablation (highway hourly counts): noise scale per design choice\n")
	cfg.printf("  %-34s b=%8.1f\n", "masked, 30s chunks, eps=1 (chosen)", masked)
	cfg.printf("  %-34s b=%8.1f  (%.1fx worse)\n", "no mask (parked-car rho)", unmasked, unmasked/masked)
	cfg.printf("  %-34s b=%8.1f  (%.1fx worse)\n", "5s chunks", smallChunk, smallChunk/masked)
	cfg.printf("  %-34s b=%8.1f  (budget split across releases)\n", "default eps", defaultEps)

	sum.set("noise_masked", masked)
	sum.set("noise_unmasked", unmasked)
	sum.set("mask_benefit", unmasked/masked)
	sum.set("noise_smallchunk", smallChunk)
	sum.set("chunk_benefit", smallChunk/masked)
	sum.set("noise_default_eps", defaultEps)

	// The owner's published window/policy values, for the record.
	sum.set("rho_unmasked_sec", cs.policy.Rho.Seconds())
	sum.set("rho_masked_sec", cs.lingerPolicy.Rho.Seconds())
	return sum, nil
}
