package experiments

import (
	"time"

	"privid/internal/cv"
	"privid/internal/scene"
	"privid/internal/video"
)

// runTable1 reproduces Table 1: despite missing a large fraction of
// per-frame detections, the owner-side detector+tracker pipeline still
// produces a conservative (>= ground truth) estimate of the maximum
// duration any individual is visible in a 10-minute segment.
func runTable1(cfg Config) (*Summary, error) {
	sum := newSummary()
	cfg.printf("Table 1: conservative duration estimation (10-minute segments)\n")
	cfg.printf("%-10s %14s %14s %12s %12s\n", "video", "GT max (s)", "CV est (s)", "CV missed", "conservative")
	for _, p := range []scene.Profile{scene.Campus(), scene.Highway(), scene.Urban()} {
		const dur = 10 * time.Minute
		// The paper's footnote: "we ignored cars that were parked for
		// the entire duration of the segment". Our parked cars park
		// for ~90 minutes, so in a 10-minute segment they are parked
		// throughout — drop them from the segment entirely (otherwise
		// tracker fragments of an always-parked car pollute both
		// columns with segment-length artifacts).
		p.Parked = nil
		s := sceneFor(p, cfg.Seed+7, dur)
		src := &video.SceneSource{Camera: p.Name, Scene: s}

		// Defensively exclude near-full-segment appearances from both
		// sides of the comparison as well.
		full := float64(s.Frames) * 0.98
		gtFrames := int64(0)
		for _, e := range s.Ents {
			if !e.Class.Private() {
				continue
			}
			for _, a := range e.Appearances {
				l := a.Interval().Intersect(s.Bounds()).Len()
				if float64(l) >= full {
					continue
				}
				if l > gtFrames {
					gtFrames = l
				}
			}
		}
		gt := s.FPS.Seconds(gtFrames)

		rep := cv.EstimateDurations(src, s.Bounds(), cv.ParamsFor(p), ownerTracker(), cfg.Seed, 1)
		est := 0.0
		for _, tr := range rep.Tracks {
			if float64(tr.Frames()) >= full {
				continue
			}
			if sec := s.FPS.Seconds(tr.Frames()); sec > est {
				est = sec
			}
		}
		missed := rep.MissedFraction()

		conservative := est >= gt*0.95
		cons := "no"
		if conservative {
			cons = "yes"
		}
		cfg.printf("%-10s %14.1f %14.1f %11.1f%% %12s\n", p.Name, gt, est, missed*100, cons)
		sum.set("gt_"+p.Name, gt)
		sum.set("cv_"+p.Name, est)
		sum.set("missed_"+p.Name, missed)
		if conservative {
			sum.set("conservative_"+p.Name, 1)
		} else {
			sum.set("conservative_"+p.Name, 0)
		}
	}
	return sum, nil
}
