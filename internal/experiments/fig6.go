package experiments

import (
	"math"
	"time"

	"privid/internal/rel"
	"privid/internal/scene"
	"privid/internal/video"
	"privid/internal/vtime"
)

// runFig6 reproduces Fig. 6: RMSE of the hourly-count queries as a
// joint function of chunk size and max per-chunk output. Larger chunks
// give the analyst's tracker more context (the pre-noise error falls)
// but let any one individual influence a larger fraction of the table
// (the noise grows); small output caps truncate real rows.
//
// For each chunk size the pipeline is processed once, recording the
// untruncated per-chunk entrant counts; the output-range sweep and the
// noise variance are then evaluated analytically (the Laplace RMSE
// contribution is sqrt(2)·b exactly, which is what averaging 100 noisy
// samples estimates).
func runFig6(cfg Config) (*Summary, error) {
	sum := newSummary()
	window := cfg.window()
	if window > 2*time.Hour {
		window = 2 * time.Hour
	}
	chunkSecs := []int64{1, 5, 10, 30, 60, 120}
	rowMults := []float64{0.25, 0.5, 1, 2, 4}

	for _, p := range []scene.Profile{scene.Campus(), scene.Highway(), scene.Urban()} {
		cs := setupCamera(p, cfg.Seed, window)
		s := cs.scene
		fps := int64(s.FPS)
		hourFrames := fps * 3600
		numHours := int((s.Frames + hourFrames - 1) / hourFrames)
		orig := baselineHourly(cs, cfg.Seed, s.Bounds(), nil)
		lingerEntry, _ := cs.policyMap.Lookup(maskLinger)
		masked := video.Masked(cs.source, lingerEntry.Mask)
		baseRows := fig5MaxRows(p)

		cfg.printf("Fig 6 (%s): RMSE vs chunk size x max per-chunk output (window %v)\n", p.Name, window)
		cfg.printf("  %-8s", "rows\\c")
		for _, c := range chunkSecs {
			cfg.printf(" %8ds", c)
		}
		cfg.printf("\n")

		// Process once per chunk size, recording per-chunk counts.
		type chunkCount struct {
			hour int
			n    int
		}
		countsByChunkSec := map[int64][]chunkCount{}
		fn := entrantCounter(p, cfg.Seed)
		for _, c := range chunkSecs {
			split := video.Split{
				Source:      masked,
				Interval:    vtime.NewInterval(0, s.Frames),
				ChunkFrames: c * fps,
			}
			var counts []chunkCount
			n := split.NumChunks()
			for i := int64(0); i < n; i++ {
				chunk := split.ChunkAt(i)
				counts = append(counts, chunkCount{
					hour: int(chunk.Interval.Start / hourFrames),
					n:    len(fn(chunk)),
				})
			}
			countsByChunkSec[c] = counts
		}

		for _, mult := range rowMults {
			maxRows := int(float64(baseRows)*mult + 0.5)
			if maxRows < 1 {
				maxRows = 1
			}
			cfg.printf("  %-8d", maxRows)
			for _, c := range chunkSecs {
				// Privid's raw per-hour counts with truncation.
				raw := make([]float64, numHours)
				for _, cc := range countsByChunkSec[c] {
					v := cc.n
					if v > maxRows {
						v = maxRows
					}
					if cc.hour < numHours {
						raw[cc.hour] += float64(v)
					}
				}
				meta := rel.TableMeta{
					MaxRows:     maxRows,
					ChunkFrames: c * fps,
					FPS:         s.FPS,
					Policy:      cs.lingerPolicy,
				}
				b := meta.Delta() // eps = 1 per release
				var se float64
				for h := 0; h < numHours; h++ {
					o := 0.0
					if h < len(orig) {
						o = orig[h]
					}
					d := raw[h] - o
					se += d*d + 2*b*b // E[(bias+Lap)^2] = bias^2 + 2b^2
				}
				rmse := math.Sqrt(se / float64(numHours))
				cfg.printf(" %9.0f", rmse)
				if key := keyFig6(p.Name, c); mult == 1 && key != "" {
					sum.set(key, rmse)
				}
			}
			cfg.printf("\n")
		}
	}
	return sum, nil
}

func keyFig6(name string, chunkSec int64) string {
	switch chunkSec {
	case 1:
		return "rmse_c1_" + name
	case 30:
		return "rmse_c30_" + name
	case 120:
		return "rmse_c120_" + name
	default:
		return ""
	}
}
