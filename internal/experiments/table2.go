package experiments

import (
	"time"

	"privid/internal/region"
	"privid/internal/scene"
	"privid/internal/video"
	"privid/internal/vtime"
)

// runTable2 reproduces Table 2: splitting the frame into the owner's
// regions (crosswalks / highway directions) reduces the maximum number
// of distinct objects any single chunk can contain, and therefore the
// output range the noise must cover.
func runTable2(cfg Config) (*Summary, error) {
	sum := newSummary()
	cfg.printf("Table 2: spatial splitting output-range reduction\n")
	cfg.printf("%-10s %12s %12s %10s\n", "video", "max(frame)", "max(region)", "reduction")
	window := cfg.window()
	if window > 2*time.Hour {
		window = 2 * time.Hour
	}
	for _, p := range []scene.Profile{scene.Campus(), scene.Highway(), scene.Urban()} {
		if len(p.Schemes) == 0 {
			continue
		}
		s := sceneFor(p, cfg.Seed, window)
		src := &video.SceneSource{Camera: p.Name, Scene: s}
		sch := region.FromSpec(p.Schemes[0], p.W, p.H)
		chunkFrames := int64(p.FPS) * 30
		a := region.Analyze(src, sch, vtime.NewInterval(0, s.Frames), chunkFrames, int64(p.FPS))
		cfg.printf("%-10s %12d %12d %9.2fx\n", p.Name, a.FrameMax, a.RegionMax, a.Reduction())
		sum.set("frame_"+p.Name, float64(a.FrameMax))
		sum.set("region_"+p.Name, float64(a.RegionMax))
		sum.set("reduction_"+p.Name, a.Reduction())
	}
	return sum, nil
}
