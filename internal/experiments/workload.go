package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"privid/internal/core"
	"privid/internal/cv"
	"privid/internal/geom"
	"privid/internal/mask"
	"privid/internal/policy"
	"privid/internal/region"
	"privid/internal/sandbox"
	"privid/internal/scene"
	"privid/internal/table"
	"privid/internal/video"
	"privid/internal/vtime"
)

// ownerTracker is the owner-side tracking configuration (Appendix A's
// tuned hyperparameters, one setting that works across our profiles).
func ownerTracker() cv.TrackerParams {
	// MaxAge 150 frames (15 s) bridges the long detection gaps of
	// crowded, high-miss-rate video (urban) — at worst it chains
	// nearby objects, which only lengthens duration estimates (the
	// conservative direction Table 1 relies on).
	return cv.TrackerParams{IoUThreshold: 0.2, MaxAge: 150, MinHits: 3, DistGate: 50}
}

// sceneCache memoizes generated scenes across experiments (generation
// of a 12 h highway scene is the dominant setup cost).
var sceneCache sync.Map // key -> *scene.Scene

func sceneFor(p scene.Profile, seed int64, dur time.Duration) *scene.Scene {
	key := fmt.Sprintf("%s/%d/%d", p.Name, seed, dur)
	if v, ok := sceneCache.Load(key); ok {
		return v.(*scene.Scene)
	}
	s := scene.Generate(p, seed, dur)
	actual, _ := sceneCache.LoadOrStore(key, s)
	return actual.(*scene.Scene)
}

// camSetup is one evaluation camera: its scene, published mask ladder
// (unmasked + linger mask + light-only mask), and effective policies.
type camSetup struct {
	profile scene.Profile
	scene   *scene.Scene
	source  video.Source
	grid    geom.Grid

	// policy is the unmasked (ρ, K).
	policy policy.Policy
	// lingerPolicy is the (smaller ρ) policy under the linger mask.
	lingerPolicy policy.Policy
	policyMap    *mask.PolicyMap
}

const (
	maskLinger = "linger" // masks the profile's linger/parking regions
	maskLight  = "light"  // masks everything except the traffic light
)

// policyK returns the K bound for a profile: 2 when entities can
// reappear, 1 otherwise.
func policyK(p scene.Profile) int {
	if p.ReturnProb > 0 {
		return 2
	}
	return 1
}

// lingerMask masks the profile's linger spots and parking areas — the
// Fig. 3 masks, constructed from the owner's domain knowledge. Each
// region is grown by a margin so objects dwelling at its edge are
// fully covered (an object survives masking if ≥40% of its box stays
// visible).
func lingerMask(p scene.Profile, grid geom.Grid) *mask.Mask {
	const margin = 30 // pixels
	grow := func(r geom.Rect) geom.Rect {
		return geom.Rect{X0: r.X0 - margin, Y0: r.Y0 - margin, X1: r.X1 + margin, Y1: r.Y1 + margin}
	}
	var rects []geom.Rect
	for _, ls := range p.LingerSpots {
		rects = append(rects, grow(ls.Rect))
	}
	for _, pk := range p.Parked {
		rects = append(rects, grow(pk.Spot))
	}
	return mask.FromRects(grid, rects...)
}

// rhoUnder estimates the max observable duration (seconds) under a
// mask by sampling ground truth once per second, with a one-sample
// safety margin (the owner-side calibration of §5.2; Table 1 shows the
// CV path bounds this conservatively).
func rhoUnder(s *scene.Scene, m *mask.Mask) time.Duration {
	stride := int64(s.FPS)
	stats := mask.PersistenceUnderMask(s, m, s.Bounds(), stride)
	maxFrames, _ := mask.MaxVisible(stats)
	secs := float64(maxFrames+1) * float64(stride) / float64(s.FPS)
	return time.Duration(secs * float64(time.Second))
}

var setupCache sync.Map // key -> *camSetup

// setupCamera generates (and caches) the full owner-side registration
// for one profile at one scale.
func setupCamera(p scene.Profile, seed int64, dur time.Duration) *camSetup {
	key := fmt.Sprintf("%s/%d/%d", p.Name, seed, dur)
	if v, ok := setupCache.Load(key); ok {
		return v.(*camSetup)
	}
	s := sceneFor(p, seed, dur)
	grid := geom.NewGrid(s.W, s.H, 10, 10)
	k := policyK(p)

	cs := &camSetup{
		profile: p,
		scene:   s,
		source:  &video.SceneSource{Camera: p.Name, Scene: s},
		grid:    grid,
	}
	cs.policy = policy.Policy{Rho: rhoUnder(s, nil), K: k}

	lm := lingerMask(p, grid)
	cs.lingerPolicy = policy.Policy{Rho: rhoUnder(s, lm), K: k}
	pm := &mask.PolicyMap{Camera: p.Name}
	pm.Entries = append(pm.Entries, mask.PolicyEntry{ID: maskLinger, Mask: lm, Policy: cs.lingerPolicy})
	// The Case 4 mask: everything except the traffic light(s) is
	// blacked out, so no private object is observable at all (ρ=0).
	if len(p.Lights) > 0 {
		var lightRects []geom.Rect
		for _, l := range p.Lights {
			lightRects = append(lightRects, l.Box)
		}
		lightMask := mask.FromRects(grid, lightRects...).Invert()
		pm.Entries = append(pm.Entries, mask.PolicyEntry{
			ID: maskLight, Mask: lightMask,
			Policy: policy.Policy{Rho: 0, K: k},
		})
	}
	cs.policyMap = pm
	actual, _ := setupCache.LoadOrStore(key, cs)
	return actual.(*camSetup)
}

// newEngine returns an evaluation-mode engine seeded from the config.
func newEngine(cfg Config) *core.Engine {
	return core.New(core.Options{
		Seed:        cfg.Seed + 1000,
		Evaluation:  true,
		Parallelism: runtime.NumCPU(),
	})
}

// registerSceneCamera registers one profile camera with a generous
// per-frame budget (experiments run many queries over the same video).
func registerSceneCamera(e *core.Engine, cs *camSetup) error {
	return e.RegisterCamera(core.CameraConfig{
		Name:     cs.profile.Name,
		Source:   cs.source,
		Policy:   cs.policy,
		Epsilon:  1e6,
		Policies: cs.policyMap,
		Schemes:  schemesOf(cs.profile),
	})
}

func schemesOf(p scene.Profile) map[string]region.Scheme {
	out := map[string]region.Scheme{}
	for _, spec := range p.Schemes {
		out[spec.Name] = region.FromSpec(spec, p.W, p.H)
	}
	return out
}

// Analyst processing code (registered as the query's "executables").

// chunkSeed derives a deterministic per-chunk RNG seed: isolated
// instantiations must not share randomness across chunks (Appendix B),
// but the same chunk must process identically across runs.
func chunkSeed(base int64, chunk *video.Chunk) int64 {
	return base ^ chunk.Interval.Start*2654435761 ^ int64(len(chunk.Region))<<32
}

// analystTracker is the tracker configuration inside the analyst's
// processing code. The same configuration runs in the unchunked
// baseline so that accuracy comparisons isolate Privid's chunking and
// noise (the paper's baseline is "the same exact query implementation
// without Privid").
func analystTracker() cv.TrackerParams {
	return cv.TrackerParams{IoUThreshold: 0.2, MaxAge: 30, MinHits: 2, DistGate: 50}
}

// trackChunk runs the analyst's detector+tracker over one chunk.
func trackChunk(p scene.Profile, seed int64, chunk *video.Chunk) []cv.Track {
	det := cv.NewDetector(cv.ParamsFor(p), p.W, p.H, chunkSeed(seed, chunk))
	trk := cv.NewTracker(analystTracker())
	for f := int64(0); f < chunk.Len(); f++ {
		frame := chunk.Frame(f)
		trk.Observe(frame.Index, det.Detect(frame))
	}
	return trk.Flush()
}

// entrantCounter is the §6.2 pattern for counting objects without
// global IDs: a chunk emits one row per track that *starts* within the
// chunk, so each appearance yields exactly one row across all chunks.
// The three-second margin keeps objects carried over from the previous
// chunk but first *detected* late (high-miss-rate video) from being
// recounted: the chance of a carried object evading detection for 3 s
// is negligible even at urban's miss rate.
func entrantCounter(p scene.Profile, seed int64) sandbox.ProcessFunc {
	margin := entrantMargin(p)
	return func(chunk *video.Chunk) []table.Row {
		var rows []table.Row
		for _, tr := range trackChunk(p, seed, chunk) {
			if tr.First >= chunk.Interval.Start+margin {
				rows = append(rows, table.Row{table.N(1)})
			}
		}
		return rows
	}
}

// entrantMargin sizes the carried-over screening window from the
// detector's per-frame hit rate: long enough that a carried object is
// detected before it with ≥98% probability, short enough not to drop
// many true entrants.
func entrantMargin(p scene.Profile) int64 {
	pEff := p.DetectBase - 0.15
	if pEff < 0.05 {
		pEff = 0.05
	}
	n := int64(math.Ceil(math.Log(0.02) / math.Log(1-pEff)))
	if n < 2 {
		n = 2
	}
	if max := int64(p.FPS) * 3; n > max {
		n = max
	}
	return n
}

// plateEmitter emits the set of license plates detected in the chunk —
// the Listing 1 pattern, deduplicated downstream with GROUP BY plate.
func plateEmitter(p scene.Profile, seed int64) sandbox.ProcessFunc {
	return func(chunk *video.Chunk) []table.Row {
		det := cv.NewDetector(cv.ParamsFor(p), p.W, p.H, chunkSeed(seed, chunk))
		seen := map[string]bool{}
		var rows []table.Row
		for f := int64(0); f < chunk.Len(); f++ {
			frame := chunk.Frame(f)
			dets := det.Detect(frame)
			// Plate reading: associate each true detection with its
			// ground-truth observation by box overlap.
			for _, d := range dets {
				if d.FalsePositive {
					continue
				}
				for _, o := range frame.Objects {
					if o.Plate != "" && o.Box.IoU(d.Box) > 0.5 && !seen[o.Plate] {
						seen[o.Plate] = true
						rows = append(rows, table.Row{table.S(o.Plate)})
					}
				}
			}
		}
		return rows
	}
}

// treeReader reports each tree's foliage state (100 = leaves, 0 =
// bare) from a single frame — Q7-Q9's processing.
func treeReader() sandbox.ProcessFunc {
	return func(chunk *video.Chunk) []table.Row {
		var rows []table.Row
		for _, o := range chunk.Frame(0).Objects {
			if o.Class != scene.Tree {
				continue
			}
			v := 0.0
			if o.State == "leaves" {
				v = 100
			}
			rows = append(rows, table.Row{table.N(v)})
		}
		return rows
	}
}

// redLightMeter measures the mean duration of complete red phases
// within the chunk — Q10-Q12's processing.
func redLightMeter(fps vtime.FrameRate) sandbox.ProcessFunc {
	return func(chunk *video.Chunk) []table.Row {
		var reds []float64
		inRed := false
		var redStart int64
		started := false // saw a green before the current red
		for f := int64(0); f < chunk.Len(); f++ {
			state := ""
			for _, o := range chunk.Frame(f).Objects {
				if o.Class == scene.TrafficLight {
					state = o.State
					break
				}
			}
			switch {
			case state == "red" && !inRed:
				inRed = true
				redStart = f
			case state == "green" && inRed:
				if started {
					reds = append(reds, float64(f-redStart)/float64(fps))
				}
				inRed = false
				started = true
			case state == "green":
				started = true
			}
		}
		if len(reds) == 0 {
			return nil
		}
		var sum float64
		for _, r := range reds {
			sum += r
		}
		return []table.Row{{table.N(sum / float64(len(reds)))}}
	}
}

// directionalCounter counts people whose trajectory enters from the
// south edge and exits toward the north — Q13's stateful processing,
// which needs chunks long enough to contain whole trajectories.
func directionalCounter(p scene.Profile, seed int64) sandbox.ProcessFunc {
	return func(chunk *video.Chunk) []table.Row {
		det := cv.NewDetector(cv.ParamsFor(p), p.W, p.H, chunkSeed(seed, chunk))
		trk := cv.NewTracker(cv.TrackerParams{IoUThreshold: 0.2, MaxAge: 30, MinHits: 3, DistGate: 50})
		type span struct{ firstY, lastY float64 }
		spans := map[int]*span{}
		// Track boxes by re-running detection and recording per-track
		// extents via a second pass association: simplest is to record
		// first/last detection positions per frame cluster. We tag
		// detections by nearest final track using time overlap below,
		// so here we collect detections per frame first.
		type det2 struct {
			frame int64
			y     float64
		}
		var all []det2
		for f := int64(0); f < chunk.Len(); f++ {
			frame := chunk.Frame(f)
			ds := det.Detect(frame)
			trk.Observe(frame.Index, ds)
			for _, d := range ds {
				all = append(all, det2{frame.Index, d.Box.Center().Y})
			}
		}
		tracks := trk.Flush()
		// Approximate each track's first/last Y by the detections at
		// its boundary frames.
		for _, tr := range tracks {
			s := &span{firstY: -1, lastY: -1}
			for _, d := range all {
				if d.frame == tr.First && s.firstY < 0 {
					s.firstY = d.y
				}
				if d.frame == tr.Last {
					s.lastY = d.y
				}
			}
			spans[tr.ID] = s
		}
		var rows []table.Row
		for _, tr := range tracks {
			s := spans[tr.ID]
			if s == nil || s.firstY < 0 || s.lastY < 0 {
				continue
			}
			// Entered near the south (bottom) edge, exited in the
			// northern half heading north.
			if s.firstY > p.H*0.7 && s.lastY < p.H*0.45 {
				rows = append(rows, table.Row{table.N(1)})
			}
		}
		return rows
	}
}

// Baselines ("Original" in Fig. 5): the same analyst pipeline run
// without Privid — no chunking, no masking, no noise.

// baselineHourly counts new tracks per hour over the whole window in
// one unchunked pass.
func baselineHourly(cs *camSetup, seed int64, iv vtime.Interval, private func(scene.Class) bool) []float64 {
	_ = private
	p := cs.profile
	det := cv.NewDetector(cv.ParamsFor(p), p.W, p.H, seed)
	trk := cv.NewTracker(analystTracker())
	for f := iv.Start; f < iv.End; f++ {
		frame := cs.source.Frame(f)
		trk.Observe(f, det.Detect(frame))
	}
	hourFrames := int64(cs.scene.FPS) * 3600
	n := int((iv.Len() + hourFrames - 1) / hourFrames)
	out := make([]float64, n)
	for _, tr := range trk.Flush() {
		h := int((tr.First - iv.Start) / hourFrames)
		if h >= 0 && h < n {
			out[h]++
		}
	}
	return out
}
