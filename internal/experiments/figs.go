package experiments

import (
	"fmt"
	"math"
	"sort"

	"privid/internal/dp"
	"privid/internal/mask"
	"privid/internal/query"
	"privid/internal/scene"
)

// runFig3 reproduces Fig. 3: per-cell persistence heatmaps and the
// masks chosen from them. It prints a coarse ASCII rendering plus the
// hottest cells, and reports how much of the frame the linger mask
// covers.
func runFig3(cfg Config) (*Summary, error) {
	sum := newSummary()
	window := cfg.window()
	for _, p := range []scene.Profile{scene.Campus(), scene.Highway(), scene.Urban()} {
		cs := setupCamera(p, cfg.Seed, window)
		s := cs.scene
		pres := mask.CollectPresence(s, cs.grid, s.Bounds(), int64(s.FPS))
		heat := mask.Heatmap(pres, cs.grid)

		maxHeat := 0.0
		for _, h := range heat {
			if h > maxHeat {
				maxHeat = h
			}
		}
		cfg.printf("Fig 3 (%s): persistence heatmap, max cell persistence %.0f s, linger mask covers %.1f%% of cells\n",
			p.Name, maxHeat, lingerMask(p, cs.grid).Fraction()*100)
		printASCIIHeatmap(cfg, cs.grid.Cols(), cs.grid.Rows(), heat, maxHeat)
		sum.set("maxcell_"+p.Name, maxHeat)
		sum.set("maskfrac_"+p.Name, lingerMask(p, cs.grid).Fraction())

		// The hot cells must be concentrated: high-percentile cells
		// should sit far below the max (lingering is localized; even
		// the largest linger region covers only a few percent of
		// cells).
		sorted := append([]float64(nil), heat...)
		sort.Float64s(sorted)
		sum.set("p99cell_"+p.Name, sorted[len(sorted)*99/100])
		sum.set("p90cell_"+p.Name, sorted[len(sorted)*90/100])
	}
	return sum, nil
}

// printASCIIHeatmap renders the heatmap downsampled to <= 64x18 chars.
func printASCIIHeatmap(cfg Config, cols, rows int, heat []float64, maxHeat float64) {
	if maxHeat <= 0 {
		return
	}
	const outW, outH = 64, 12
	shades := []byte(" .:-=+*#%@")
	for oy := 0; oy < outH; oy++ {
		line := make([]byte, outW)
		for ox := 0; ox < outW; ox++ {
			// Max-pool the covered cell block.
			v := 0.0
			x0, x1 := ox*cols/outW, (ox+1)*cols/outW
			y0, y1 := oy*rows/outH, (oy+1)*rows/outH
			for y := y0; y <= y1 && y < rows; y++ {
				for x := x0; x <= x1 && x < cols; x++ {
					if h := heat[y*cols+x]; h > v {
						v = h
					}
				}
			}
			idx := int(math.Log1p(v) / math.Log1p(maxHeat) * float64(len(shades)-1))
			line[ox] = shades[idx]
		}
		cfg.printf("  |%s|\n", line)
	}
}

// runFig4 reproduces Fig. 4: the persistence distribution is heavy
// tailed, and the linger mask slashes the maximum persistence while
// retaining almost all objects.
func runFig4(cfg Config) (*Summary, error) {
	sum := newSummary()
	window := cfg.window()
	for _, p := range []scene.Profile{scene.Campus(), scene.Highway(), scene.Urban()} {
		cs := setupCamera(p, cfg.Seed, window)
		s := cs.scene
		stride := int64(s.FPS)
		orig := mask.PersistenceUnderMask(s, nil, s.Bounds(), stride)
		masked := mask.PersistenceUnderMask(s, lingerMask(p, cs.grid), s.Bounds(), stride)
		maxO, _ := mask.MaxVisible(orig)
		maxM, retained := mask.MaxVisible(masked)
		factor := 0.0
		if maxM > 0 {
			factor = float64(maxO) / float64(maxM)
		}
		cfg.printf("Fig 4 (%s): %d objects; max persistence %d s -> %d s (%.2fx); %.1f%% objects retained\n",
			p.Name, len(orig), maxO, maxM, factor, retained*100)
		printLogHistogram(cfg, "original", orig, false)
		printLogHistogram(cfg, "masked", masked, true)
		sum.set("factor_"+p.Name, factor)
		sum.set("retained_"+p.Name, retained)
		sum.set("objects_"+p.Name, float64(len(orig)))
	}
	return sum, nil
}

// printLogHistogram prints the relative-frequency histogram of
// ln(persistence seconds), matching Fig. 4's x axis.
func printLogHistogram(cfg Config, label string, stats []mask.PersistenceStat, visible bool) {
	buckets := make([]int, 13)
	total := 0
	for _, st := range stats {
		v := st.TotalFrames
		if visible {
			v = st.VisibleFrames
		}
		if v <= 0 {
			continue
		}
		b := int(math.Log(float64(v)))
		if b < 0 {
			b = 0
		}
		if b >= len(buckets) {
			b = len(buckets) - 1
		}
		buckets[b]++
		total++
	}
	cfg.printf("  %-9s", label)
	for _, n := range buckets {
		frac := 0.0
		if total > 0 {
			frac = float64(n) / float64(total)
		}
		cfg.printf(" %4.2f", frac)
	}
	cfg.printf("  (ln s = 0..12)\n")
}

// fig5MaxRows sizes PRODUCING for the hourly-count queries: roughly
// twice the peak expected entrants per 30 s chunk.
func fig5MaxRows(p scene.Profile) int {
	perHour := 0.0
	for _, a := range p.Arrivals {
		peak := 0.0
		for _, w := range a.Diurnal {
			if w > peak {
				peak = w
			}
		}
		perHour += a.PerHour * peak
	}
	m := int(perHour/120*1.4) + 2
	return m
}

// runFig5 reproduces Fig. 5: the Q1-Q3 hourly unique-object counts.
// For each video it prints the original (non-private) series, Privid's
// pre-noise series, the released noisy series, and the 99% noise band.
func runFig5(cfg Config) (*Summary, error) {
	sum := newSummary()
	window := cfg.window()
	for i, p := range []scene.Profile{scene.Campus(), scene.Highway(), scene.Urban()} {
		qid := fmt.Sprintf("q%d", i+1)
		cs := setupCamera(p, cfg.Seed, window)
		e := newEngine(cfg)
		if err := registerSceneCamera(e, cs); err != nil {
			return nil, err
		}
		if err := e.Registry().Register("entrants", entrantCounter(p, cfg.Seed)); err != nil {
			return nil, err
		}
		begin := cs.scene.Start
		end := begin.Add(window)
		src := fmt.Sprintf(`
SPLIT %s BEGIN %s END %s BY TIME 30sec STRIDE 0sec WITH MASK %s INTO c;
PROCESS c USING entrants TIMEOUT 60sec PRODUCING %d ROWS WITH SCHEMA (one:NUMBER=0) INTO t;
SELECT COUNT(*) FROM (SELECT bin(chunk, 3600) AS hr FROM t) GROUP BY hr CONSUMING 1;`,
			p.Name, fmtTS(begin), fmtTS(end), maskLinger, fig5MaxRows(p))
		prog, err := query.Parse(src)
		if err != nil {
			return nil, err
		}
		res, err := e.Execute(prog)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", p.Name, err)
		}
		orig := baselineHourly(cs, cfg.Seed, cs.scene.Bounds(), nil)

		cfg.printf("Fig 5 %s (%s): hourly unique objects; noise scale b=%.1f, 99%% band ±%.0f\n",
			qid, p.Name, res.Releases[0].NoiseScale, res.Releases[0].NoiseScale*math.Log(100))
		cfg.printf("  %-6s %10s %12s %10s\n", "hour", "original", "privid-raw", "privid")
		var accSum float64
		n := 0
		for h, r := range res.Releases {
			o := 0.0
			if h < len(orig) {
				o = orig[h]
			}
			cfg.printf("  %-6d %10.0f %12.0f %10.0f\n", h, o, r.Raw, r.Value)
			if o > 0 {
				accSum += accuracy(r.Raw, o, r.NoiseScale)
				n++
			}
		}
		acc := 0.0
		if n > 0 {
			acc = accSum / float64(n)
		}
		cfg.printf("  mean accuracy %.1f%%\n", acc*100)
		sum.set(qid+"_accuracy", acc)
		sum.set(qid+"_noise_scale", res.Releases[0].NoiseScale)
	}
	return sum, nil
}

// runFig7 reproduces Fig. 7 analytically: with chunk size and output
// range fixed, the per-hour noise needed to protect an individual
// decays as the query window grows, because the individual's chunks
// are a shrinking fraction of the aggregate.
func runFig7(cfg Config) (*Summary, error) {
	sum := newSummary()
	cfg.printf("Fig 7: noise (objects/hour) vs window size, chunk 30s, eps=1\n")
	cfg.printf("%-8s", "window")
	profiles := []scene.Profile{scene.Campus(), scene.Highway(), scene.Urban()}
	for _, p := range profiles {
		cfg.printf(" %10s", p.Name)
	}
	cfg.printf("\n")
	// Use the policies calibrated at the evaluation scale.
	var first, last [3]float64
	for _, hours := range []int{2, 4, 6, 8, 10, 12} {
		cfg.printf("%-8s", fmt.Sprintf("%dh", hours))
		for i, p := range profiles {
			cs := setupCamera(p, cfg.Seed, cfg.window())
			chunkFrames := int64(p.FPS) * 30
			delta := float64(fig5MaxRows(p)) * float64(cs.lingerPolicy.K) *
				float64(cs.lingerPolicy.MaxChunks(p.FPS, chunkFrames))
			// AVG-style release over the whole window, re-expressed as
			// an hourly rate: noise ∝ Δ / (ε · hours).
			noise := delta / float64(hours)
			cfg.printf(" %10.1f", noise)
			if hours == 2 {
				first[i] = noise
			}
			if hours == 12 {
				last[i] = noise
			}
		}
		cfg.printf("\n")
	}
	for i, p := range profiles {
		sum.set("noise2h_"+p.Name, first[i])
		sum.set("noise12h_"+p.Name, last[i])
	}
	return sum, nil
}

// runFig8 reproduces Fig. 8 / Eq. C.3: the adversary's maximum
// detection probability as an event exceeds the protected (ρ, K)
// bound, for several false-positive tolerances.
func runFig8(cfg Config) (*Summary, error) {
	sum := newSummary()
	alphas := []float64{0.001, 0.01, 0.1, 0.2}
	const (
		rhoFrames   = int64(300)
		chunkFrames = int64(50)
		baseEps     = 1.0
	)
	cfg.printf("Fig 8: P(detect) vs persistence ratio (eps=1 at ratio 1)\n")
	cfg.printf("%-7s", "ratio")
	for _, a := range alphas {
		cfg.printf(" %9s", fmt.Sprintf("a=%.3g", a))
	}
	cfg.printf("\n")
	for r := 0.0; r <= 12.0001; r += 1 {
		cfg.printf("%-7.1f", r)
		for _, a := range alphas {
			eff := dp.EffectiveEpsilon(baseEps, rhoFrames, 1, int64(r*float64(rhoFrames)), 1, chunkFrames)
			p := dp.DetectionProbability(eff, a)
			cfg.printf(" %9.4f", p)
			if r == 1 {
				sum.set(fmt.Sprintf("p_at_bound_a%.3g", a), p)
			}
			if r == 12 {
				sum.set(fmt.Sprintf("p_at_12x_a%.3g", a), p)
			}
		}
		cfg.printf("\n")
	}
	return sum, nil
}
