package experiments

import (
	"fmt"
	"time"

	"privid/internal/core"
	"privid/internal/scene"
	"privid/internal/table"
	"privid/internal/video"
)

// NewEvalEngine returns an engine with the three paper cameras
// (campus, highway, urban) registered — policies calibrated from
// historical scene data, mask ladders published ("linger", "light"),
// and region schemes installed — plus the standard analyst executables
// used throughout the evaluation:
//
//	entrants_<video>  — one row per object entering during the chunk
//	trees             — one row per tree with its foliage state (0/100)
//	redlight          — one row with the chunk's mean red-phase length
//	south2north       — one row with the count of south→north walkers
//
// It backs cmd/privid so ad-hoc queries can run against the synthetic
// deployment.
func NewEvalEngine(cfg Config) (*core.Engine, error) {
	e := newEngine(cfg)
	profiles := []scene.Profile{scene.Campus(), scene.Highway(), scene.Urban()}
	for _, p := range profiles {
		cs := setupCamera(p, cfg.Seed, cfg.window())
		if err := registerSceneCamera(e, cs); err != nil {
			return nil, err
		}
		if err := e.Registry().Register("entrants_"+p.Name, entrantCounter(p, cfg.Seed)); err != nil {
			return nil, err
		}
	}
	if err := e.Registry().Register("trees", treeReader()); err != nil {
		return nil, err
	}
	if err := e.Registry().Register("redlight", redLightMeter(profiles[0].FPS)); err != nil {
		return nil, err
	}
	counter := directionalCounter(profiles[0], cfg.Seed)
	if err := e.Registry().Register("south2north", func(chunk *video.Chunk) []table.Row {
		n := len(counter(chunk))
		if n > 25 {
			n = 25
		}
		return []table.Row{{table.N(float64(n))}}
	}); err != nil {
		return nil, err
	}
	return e, nil
}

// EvalWindow returns the [begin, end) wall-clock window the evaluation
// cameras cover at the given scale, for building query text.
func EvalWindow(cfg Config) (time.Time, time.Time) {
	start := scene.DefaultStart
	return start, start.Add(cfg.window())
}

// FormatTimestamp renders a time in the query language's literal
// format.
func FormatTimestamp(t time.Time) string { return fmtTS(t) }

// DescribeEngine prints the registered cameras' policies for the CLI.
func DescribeEngine(cfg Config) string {
	out := ""
	for _, p := range []scene.Profile{scene.Campus(), scene.Highway(), scene.Urban()} {
		cs := setupCamera(p, cfg.Seed, cfg.window())
		out += fmt.Sprintf("camera %-8s policy %v; masks:", p.Name, cs.policy)
		for _, e := range cs.policyMap.Entries {
			out += fmt.Sprintf(" %s->%v", e.ID, e.Policy)
		}
		out += "\n"
	}
	return out
}
