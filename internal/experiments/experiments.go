// Package experiments regenerates every table and figure of the
// paper's evaluation (§8, Appendices C and F). Each experiment builds
// its workload, runs the full Privid pipeline (and the non-private
// baseline it is compared against), and prints the same rows or series
// the paper reports, plus a machine-readable metric map consumed by
// the benchmark harness and EXPERIMENTS.md.
//
// Absolute numbers will not match the paper — the substrate is a
// simulator, not the authors' testbed — but the shapes must: who wins,
// by roughly what factor, and where crossovers fall.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale shrinks workloads for fast runs: window durations and
	// dataset spans are multiplied by Scale (clamped to sane minimums
	// per experiment). 1.0 reproduces paper scale.
	Scale float64
	// Seed drives every stochastic component.
	Seed int64
	// Out receives the printed rows; nil discards them.
	Out io.Writer
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// window returns the evaluation window: the paper's 12 h scaled, with
// a floor so tiny scales still exercise multiple hours.
func (c Config) window() time.Duration {
	d := time.Duration(float64(12*time.Hour) * c.scale())
	if d < 30*time.Minute {
		d = 30 * time.Minute
	}
	return d
}

// taxiDays returns the taxi-fleet span: the paper's 365 days scaled,
// clamped to [7, 365].
func (c Config) taxiDays() int {
	d := int(365 * c.scale())
	if d < 7 {
		d = 7
	}
	if d > 365 {
		d = 365
	}
	return d
}

func (c Config) printf(format string, args ...interface{}) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// Summary is an experiment's machine-readable outcome.
type Summary struct {
	// Metrics holds the headline numbers (accuracy, reduction factors,
	// ...), keyed by stable names.
	Metrics map[string]float64
}

func newSummary() *Summary { return &Summary{Metrics: map[string]float64{}} }

func (s *Summary) set(key string, v float64) { s.Metrics[key] = v }

// SortedKeys returns metric names in order.
func (s *Summary) SortedKeys() []string {
	keys := make([]string, 0, len(s.Metrics))
	for k := range s.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Experiment regenerates one paper table or figure.
type Experiment struct {
	// ID is the stable identifier (e.g. "table1", "fig5").
	ID string
	// Title describes the experiment.
	Title string
	// Paper summarizes what the paper reports, for side-by-side
	// comparison.
	Paper string
	// Run executes the experiment.
	Run func(Config) (*Summary, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{
			ID:    "table1",
			Title: "CV conservatively bounds max duration (Table 1)",
			Paper: "GT max 81/316/270 s vs CV estimate 83/439/354 s; 29/5/76% objects missed",
			Run:   runTable1,
		},
		{
			ID:    "table2",
			Title: "Spatial splitting shrinks per-chunk output range (Table 2)",
			Paper: "max(frame)/max(region): campus 3/6=2.00x ... highway 40/23=1.74x, urban 37/16=2.25x",
			Run:   runTable2,
		},
		{
			ID:    "table3",
			Title: "Query case studies Q4-Q13 (Table 3)",
			Paper: "accuracies 79.06-100%: taxi UNION/JOIN/ARGMAX, tree foliage, red lights, stateful filter",
			Run:   runTable3,
		},
		{
			ID:    "fig3",
			Title: "Persistence heatmaps and masks (Fig 3)",
			Paper: "lingering concentrated in a few fixed regions per video",
			Run:   runFig3,
		},
		{
			ID:    "fig4",
			Title: "Persistence distributions before/after masking (Fig 4)",
			Paper: "heavy tails; masks cut max persistence 1.71-9.65x keeping >=93% of objects",
			Run:   runFig4,
		},
		{
			ID:    "fig5",
			Title: "Hourly standing queries Q1-Q3 (Fig 5)",
			Paper: "Privid tracks the original hourly series within the noise ribbon",
			Run:   runFig5,
		},
		{
			ID:    "fig6",
			Title: "Chunk size x output range sweep (Fig 6)",
			Paper: "bigger chunks: mean error falls (context) but noise error bars grow",
			Run:   runFig6,
		},
		{
			ID:    "fig7",
			Title: "Noise vs query window size (Fig 7)",
			Paper: "noise added to meet the guarantee decays as the window grows (2-12h)",
			Run:   runFig7,
		},
		{
			ID:    "fig8",
			Title: "Graceful privacy degradation (Fig 8, Eq C.3)",
			Paper: "detection probability grows smoothly past the (rho,K) bound; bounded by e^eps*alpha",
			Run:   runFig8,
		},
		{
			ID:    "table6",
			Title: "Masking effectiveness on 10 videos (Table 6 / Fig 11)",
			Paper: "masks cut max persistence 4.29-47.92x while retaining 26.67-99.94% of identities",
			Run:   runTable6,
		},
		{
			ID:    "ablation",
			Title: "Design-choice ablation (masking, chunk size, budget split)",
			Paper: "each mechanism (sec 7.1/7.2, Fig 6) buys a measurable noise reduction",
			Run:   runAblation,
		},
		{
			ID:    "soak",
			Title: "Fleet soak: ledger and accuracy invariants under chaos",
			Paper: "no figure; operationalizes sec 5-7's enforcement claims (target: 0 violations)",
			Run:   runSoak,
		},
	}
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
