package experiments

import (
	"time"

	"privid/internal/mask"
	"privid/internal/scene"
)

// runTable6 reproduces Table 6 / Fig. 11: Algorithm 2's greedy mask
// ordering on all ten videos (the three Privid videos plus the BlazeIt
// and MIRIS extensions). For each video it reports the smallest greedy
// prefix achieving an 8x cut in max persistence, the fraction of grid
// boxes masked, and the identities retained, plus sampled points of
// the Fig. 11 cumulative curves.
func runTable6(cfg Config) (*Summary, error) {
	sum := newSummary()
	dur := cfg.window()
	if dur > 2*time.Hour {
		dur = 2 * time.Hour
	}
	cfg.printf("Table 6: greedy masking (Algorithm 2) on 10 videos (window %v)\n", dur)
	cfg.printf("%-14s %10s %12s %12s %10s %10s\n",
		"video", "% masked", "max before", "max after", "reduction", "retained")

	for _, name := range []string{
		"campus", "highway", "urban",
		"grand-canal", "venice-rialto", "taipei",
		"shibuya", "beach", "warsaw", "uav",
	} {
		p := scene.Profiles()[name]
		cs := setupCamera(p, cfg.Seed, dur)
		s := cs.scene
		pres := mask.CollectPresence(s, cs.grid, s.Bounds(), int64(s.FPS))
		if len(pres) == 0 {
			continue
		}
		base := 0
		for _, tp := range pres {
			if len(tp.Frames) > base {
				base = len(tp.Frames)
			}
		}
		steps := mask.GreedyOrder(pres, cs.grid)
		target := base / 8
		chosen := -1
		for i, st := range steps {
			if st.MaxPersistence <= target {
				chosen = i
				break
			}
		}
		if chosen < 0 {
			chosen = len(steps) - 1
		}
		st := steps[chosen]
		frac := float64(chosen+1) / float64(cs.grid.NumCells())
		reduction := float64(base)
		if st.MaxPersistence > 0 {
			reduction = float64(base) / float64(st.MaxPersistence)
		}
		cfg.printf("%-14s %9.1f%% %11ds %11ds %9.1fx %9.1f%%\n",
			name, frac*100, base, st.MaxPersistence, reduction, st.IdentitiesRetained*100)
		sum.set("reduction_"+name, reduction)
		sum.set("retained_"+name, st.IdentitiesRetained)
		sum.set("maskfrac_"+name, frac)

		// Fig 11: sampled cumulative curves.
		cfg.printf("  fig11 %-12s", name)
		for _, fr := range []float64{0.001, 0.01, 0.05, 0.1, 0.25, 0.5} {
			idx := int(fr * float64(cs.grid.NumCells()))
			if idx >= len(steps) {
				idx = len(steps) - 1
			}
			if idx < 0 {
				idx = 0
			}
			cfg.printf(" [%4.1f%%: %.2f/%.2f]",
				fr*100,
				float64(steps[idx].MaxPersistence)/float64(base),
				steps[idx].IdentitiesRetained)
		}
		cfg.printf("  (masked%%: persist-frac/identity-frac)\n")
	}
	return sum, nil
}
