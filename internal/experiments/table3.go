package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"privid/internal/core"
	"privid/internal/policy"
	"privid/internal/query"
	"privid/internal/scene"
	"privid/internal/table"
	"privid/internal/taxi"
	"privid/internal/video"
)

// fmtTS formats a timestamp for the query language.
func fmtTS(t time.Time) string { return t.Format("1-2-2006/3:04pm") }

// accuracy is the paper's metric computed analytically: the expected
// accuracy over noise draws, 1 − (|raw−orig| + E|Laplace(b)|)/|orig|,
// clamped to [0, 1]. E|Laplace(b)| = b.
func accuracy(raw, orig, noiseScale float64) float64 {
	denom := math.Abs(orig)
	if denom < 1e-9 {
		if math.Abs(raw)+noiseScale < 1e-9 {
			return 1
		}
		return 0
	}
	acc := 1 - (math.Abs(raw-orig)+noiseScale)/denom
	if acc < 0 {
		return 0
	}
	if acc > 1 {
		return 1
	}
	return acc
}

// runTable3 reproduces the Table 3 case studies Q4–Q13.
func runTable3(cfg Config) (*Summary, error) {
	sum := newSummary()
	cfg.printf("Table 3: query case studies\n")
	cfg.printf("%-4s %-34s %-10s %12s %12s %9s\n", "Q#", "description", "video", "original", "privid", "accuracy")
	if err := runTaxiCases(cfg, sum); err != nil {
		return nil, err
	}
	if err := runTreeCases(cfg, sum); err != nil {
		return nil, err
	}
	if err := runLightCases(cfg, sum); err != nil {
		return nil, err
	}
	if err := runQ13(cfg, sum); err != nil {
		return nil, err
	}
	return sum, nil
}

// taxiPolicy returns the per-camera (ρ, K) for a porto camera: ρ
// covers the camera's visibility tail, K bounds per-day revisits.
func taxiPolicy(f *taxi.Fleet, cam int) policy.Policy {
	rho := f.BaseVisibilitySec(cam) * 3.5
	if rho > 525 {
		rho = 525
	}
	return policy.Policy{Rho: time.Duration(rho * float64(time.Second)), K: 2}
}

// taxiEmitterFunc emits the distinct taxis visible in a chunk.
func taxiEmitterFunc(chunk *video.Chunk) []table.Row {
	seen := map[string]bool{}
	var rows []table.Row
	for f := int64(0); f < chunk.Len(); f++ {
		for _, o := range chunk.Frame(f).Objects {
			if o.Plate != "" && !seen[o.Plate] {
				seen[o.Plate] = true
				rows = append(rows, table.Row{table.S(o.Plate)})
			}
		}
	}
	return rows
}

func newTaxiEngine(cfg Config, fleet *taxi.Fleet, cams []int) (*core.Engine, error) {
	e := newEngine(cfg)
	for _, c := range cams {
		if err := e.RegisterCamera(core.CameraConfig{
			Name:    taxi.CameraName(c),
			Source:  fleet.Source(c),
			Policy:  taxiPolicy(fleet, c),
			Epsilon: 1e6,
		}); err != nil {
			return nil, err
		}
	}
	if err := e.Registry().Register("taxis", taxiEmitterFunc); err != nil {
		return nil, err
	}
	return e, nil
}

// splitProcess emits a SPLIT+PROCESS pair for one porto camera.
func taxiSplitProcess(b *strings.Builder, fleet *taxi.Fleet, cam, days int) {
	begin := fleet.Cfg.Start
	end := begin.Add(time.Duration(days) * 24 * time.Hour)
	fmt.Fprintf(b, "SPLIT %s BEGIN %s END %s BY TIME 15sec STRIDE 0sec INTO c%d;\n",
		taxi.CameraName(cam), fmtTS(begin), fmtTS(end), cam)
	fmt.Fprintf(b, "PROCESS c%d USING taxis TIMEOUT 30sec PRODUCING 4 ROWS WITH SCHEMA (plate:STRING=\"\") INTO t%d;\n", cam, cam)
}

func runTaxiCases(cfg Config, sum *Summary) error {
	days := cfg.taxiDays()
	tcfg := taxi.DefaultConfig()
	tcfg.Days = days
	tcfg.Seed = cfg.Seed
	fleet := taxi.NewFleet(tcfg)

	// ---- Q4: union across 2 cameras: distinct taxi-hours observed.
	e, err := newTaxiEngine(cfg, fleet, []int{10, 27})
	if err != nil {
		return err
	}
	var b strings.Builder
	taxiSplitProcess(&b, fleet, 10, days)
	taxiSplitProcess(&b, fleet, 27, days)
	b.WriteString(`SELECT COUNT(*) FROM
 (SELECT plate, bin(chunk, 3600) AS hr FROM t10 GROUP BY plate, hr)
 OUTER JOIN
 (SELECT plate, bin(chunk, 3600) AS hr FROM t27 GROUP BY plate, hr)
 ON plate, hr;`)
	prog, err := query.Parse(b.String())
	if err != nil {
		return err
	}
	res, err := e.Execute(prog)
	if err != nil {
		return fmt.Errorf("Q4: %w", err)
	}
	r := res.Releases[0]
	origQ4 := float64(countTaxiHours(fleet, days, []int{10, 27}, false))
	accQ4 := accuracy(r.Raw, origQ4, r.NoiseScale)
	hours := r.Value / float64(tcfg.Taxis) / float64(days)
	cfg.printf("%-4s %-34s %-10s %12.0f %12.0f %8.2f%%  (avg %.2f h/taxi-day)\n",
		"Q4", "taxi-hours, union of 2 cameras", "porto", origQ4, r.Value, accQ4*100, hours)
	sum.set("q4_accuracy", accQ4)

	// ---- Q5: intersection: taxi-days seen at BOTH cameras.
	var b5 strings.Builder
	taxiSplitProcess(&b5, fleet, 10, days)
	taxiSplitProcess(&b5, fleet, 27, days)
	b5.WriteString(`SELECT COUNT(*) FROM
 (SELECT plate, day(chunk) AS d FROM t10 GROUP BY plate, d)
 JOIN
 (SELECT plate, day(chunk) AS d FROM t27 GROUP BY plate, d)
 ON plate, d;`)
	e5, err := newTaxiEngine(cfg, fleet, []int{10, 27})
	if err != nil {
		return err
	}
	prog5, err := query.Parse(b5.String())
	if err != nil {
		return err
	}
	res5, err := e5.Execute(prog5)
	if err != nil {
		return fmt.Errorf("Q5: %w", err)
	}
	r5 := res5.Releases[0]
	origQ5 := float64(countTaxiHours(fleet, days, []int{10, 27}, true))
	accQ5 := accuracy(r5.Raw, origQ5, r5.NoiseScale)
	cfg.printf("%-4s %-34s %-10s %12.0f %12.0f %8.2f%%  (avg %.1f taxis/day)\n",
		"Q5", "taxi-days at both cameras", "porto", origQ5, r5.Value, accQ5*100, r5.Value/float64(days))
	sum.set("q5_accuracy", accQ5)

	// ---- Q6: ARGMAX over all cameras: the busiest junction.
	q6days := days / 6
	if q6days < 5 {
		q6days = 5
	}
	if q6days > 30 {
		q6days = 30
	}
	allCams := make([]int, fleet.Cfg.Cameras)
	for i := range allCams {
		allCams[i] = i
	}
	e6, err := newTaxiEngine(cfg, fleet, allCams)
	if err != nil {
		return err
	}
	var b6 strings.Builder
	for _, c := range allCams {
		taxiSplitProcess(&b6, fleet, c, q6days)
	}
	b6.WriteString("SELECT ARGMAX(cam) FROM\n")
	for i, c := range allCams {
		if i > 0 {
			b6.WriteString(" UNION ")
		}
		fmt.Fprintf(&b6, "(SELECT \"%s\" AS cam FROM t%d)", taxi.CameraName(c), c)
	}
	b6.WriteString("\nGROUP BY cam WITH KEYS [")
	for i, c := range allCams {
		if i > 0 {
			b6.WriteString(", ")
		}
		fmt.Fprintf(&b6, "%q", taxi.CameraName(c))
	}
	b6.WriteString("];")
	prog6, err := query.Parse(b6.String())
	if err != nil {
		return err
	}
	res6, err := e6.Execute(prog6)
	if err != nil {
		return fmt.Errorf("Q6: %w", err)
	}
	r6 := res6.Releases[0]
	truth := busiestCamera(fleet, q6days)
	accQ6 := 0.0
	if r6.ArgmaxKey.Str() == taxi.CameraName(truth) {
		accQ6 = 1
	}
	cfg.printf("%-4s %-34s %-10s %12s %12s %8.2f%%\n",
		"Q6", "busiest camera (argmax, 105 cams)", "porto", taxi.CameraName(truth), r6.ArgmaxKey.Str(), accQ6*100)
	sum.set("q6_accuracy", accQ6)
	return nil
}

// countTaxiHours counts, from ground truth, distinct (taxi, hour)
// pairs observed at any of the cameras (both=false) or distinct
// (taxi, day) pairs observed at every camera (both=true).
func countTaxiHours(f *taxi.Fleet, days int, cams []int, both bool) int {
	if both {
		seen := map[[2]int]map[int]bool{} // (taxi, day) -> cams
		for d := 0; d < days; d++ {
			dayVisits := f.Day(d)
			for _, c := range cams {
				for _, v := range dayVisits[c] {
					k := [2]int{v.Taxi, d}
					if seen[k] == nil {
						seen[k] = map[int]bool{}
					}
					seen[k][c] = true
				}
			}
		}
		n := 0
		for _, cs := range seen {
			if len(cs) == len(cams) {
				n++
			}
		}
		return n
	}
	seen := map[[2]int]bool{} // (taxi, hour)
	for d := 0; d < days; d++ {
		dayVisits := f.Day(d)
		for _, c := range cams {
			for _, v := range dayVisits[c] {
				for h := v.Start / 3600; h <= (v.End-1)/3600; h++ {
					seen[[2]int{v.Taxi, int(h)}] = true
				}
			}
		}
	}
	return len(seen)
}

// busiestCamera returns the camera with the most visit-chunks over the
// window (matching what COUNT over 15 s chunks measures).
func busiestCamera(f *taxi.Fleet, days int) int {
	counts := make(map[int]int64)
	for d := 0; d < days; d++ {
		for cam, vs := range f.Day(d) {
			for _, v := range vs {
				counts[cam] += (v.End - v.Start + 14) / 15
			}
		}
	}
	best, bestN := 0, int64(-1)
	for cam, n := range counts {
		if n > bestN {
			best, bestN = cam, n
		}
	}
	return best
}

// runTreeCases reproduces Q7–Q9: the bloomed fraction of (non-private)
// trees, sampled one frame every 10 minutes under the linger mask.
func runTreeCases(cfg Config, sum *Summary) error {
	for i, p := range []scene.Profile{scene.Campus(), scene.Highway(), scene.Urban()} {
		qid := fmt.Sprintf("Q%d", 7+i)
		cs := setupCamera(p, cfg.Seed, cfg.window())
		e := newEngine(cfg)
		if err := registerSceneCamera(e, cs); err != nil {
			return err
		}
		if err := e.Registry().Register("trees", treeReader()); err != nil {
			return err
		}
		begin := cs.scene.Start
		end := begin.Add(cfg.window())
		// The paper's Q7 setting: one-frame chunks with no stride. The
		// enormous chunk count is what makes the noise negligible —
		// C̃s grows with every chunk while the event's Δ stays fixed.
		src := fmt.Sprintf(`
SPLIT %s BEGIN %s END %s BY TIME 1frame STRIDE 0sec WITH MASK %s INTO c;
PROCESS c USING trees TIMEOUT 30sec PRODUCING %d ROWS WITH SCHEMA (leaf:NUMBER=0) INTO t;
SELECT AVG(range(leaf, 0, 100)) FROM t;`,
			p.Name, fmtTS(begin), fmtTS(end), maskLinger, p.TreeCount)
		prog, err := query.Parse(src)
		if err != nil {
			return err
		}
		res, err := e.Execute(prog)
		if err != nil {
			return fmt.Errorf("%s: %w", qid, err)
		}
		r := res.Releases[0]
		orig := 100 * float64(p.TreeLeafy) / float64(p.TreeCount)
		acc := accuracy(r.Raw, orig, r.NoiseScale)
		cfg.printf("%-4s %-34s %-10s %11.1f%% %11.1f%% %8.2f%%\n",
			qid, "fraction of trees with leaves", p.Name, orig, r.Value, acc*100)
		sum.set(strings.ToLower(qid)+"_accuracy", acc)
	}
	return nil
}

// runLightCases reproduces Q10–Q12: mean red-light duration with the
// everything-but-the-light mask (ρ = 0, so zero noise).
func runLightCases(cfg Config, sum *Summary) error {
	for i, p := range []scene.Profile{scene.Campus(), scene.Highway(), scene.Urban()} {
		qid := fmt.Sprintf("Q%d", 10+i)
		if len(p.Lights) == 0 {
			return fmt.Errorf("%s: profile %s has no traffic light", qid, p.Name)
		}
		cs := setupCamera(p, cfg.Seed, cfg.window())
		e := newEngine(cfg)
		if err := registerSceneCamera(e, cs); err != nil {
			return err
		}
		if err := e.Registry().Register("redlight", redLightMeter(p.FPS)); err != nil {
			return err
		}
		begin := cs.scene.Start
		end := begin.Add(cfg.window())
		src := fmt.Sprintf(`
SPLIT %s BEGIN %s END %s BY TIME 10min STRIDE 0sec WITH MASK %s INTO c;
PROCESS c USING redlight TIMEOUT 30sec PRODUCING 1 ROWS WITH SCHEMA (red:NUMBER=0) INTO t;
SELECT AVG(range(red, 0, 300)) FROM t;`,
			p.Name, fmtTS(begin), fmtTS(end), maskLight)
		prog, err := query.Parse(src)
		if err != nil {
			return err
		}
		res, err := e.Execute(prog)
		if err != nil {
			return fmt.Errorf("%s: %w", qid, err)
		}
		r := res.Releases[0]
		orig := p.Lights[0].RedSec
		acc := accuracy(r.Raw, orig, r.NoiseScale)
		cfg.printf("%-4s %-34s %-10s %11.1fs %11.1fs %8.2f%%  (noise scale %.3g)\n",
			qid, "red light duration", p.Name, orig, r.Value, acc*100, r.NoiseScale)
		sum.set(strings.ToLower(qid)+"_accuracy", acc)
		sum.set(strings.ToLower(qid)+"_noise", r.NoiseScale)
	}
	return nil
}

// runQ13 reproduces the stateful trajectory query: people entering
// from the south and exiting north, in 10-minute chunks.
func runQ13(cfg Config, sum *Summary) error {
	p := scene.Campus()
	cs := setupCamera(p, cfg.Seed, cfg.window())
	e := newEngine(cfg)
	if err := registerSceneCamera(e, cs); err != nil {
		return err
	}
	counter := directionalCounter(p, cfg.Seed)
	// Wrap to emit a single per-chunk count row (Table 3: sum with
	// range (0, 25)).
	if err := e.Registry().Register("south2north", func(chunk *video.Chunk) []table.Row {
		n := len(counter(chunk))
		if n > 25 {
			n = 25
		}
		return []table.Row{{table.N(float64(n))}}
	}); err != nil {
		return err
	}
	begin := cs.scene.Start
	end := begin.Add(cfg.window())
	src := fmt.Sprintf(`
SPLIT %s BEGIN %s END %s BY TIME 10min STRIDE 0sec WITH MASK %s INTO c;
PROCESS c USING south2north TIMEOUT 60sec PRODUCING 1 ROWS WITH SCHEMA (cnt:NUMBER=0) INTO t;
SELECT SUM(range(cnt, 0, 25)) FROM t;`,
		p.Name, fmtTS(begin), fmtTS(end), maskLinger)
	prog, err := query.Parse(src)
	if err != nil {
		return err
	}
	res, err := e.Execute(prog)
	if err != nil {
		return fmt.Errorf("Q13: %w", err)
	}
	r := res.Releases[0]

	// Baseline: the same pipeline over the whole (masked) window as a
	// single chunk — no chunking, no noise.
	entry, _ := cs.policyMap.Lookup(maskLinger)
	whole := video.Split{
		Source:      video.Masked(cs.source, entry.Mask),
		Interval:    cs.scene.Bounds(),
		ChunkFrames: cs.scene.Frames,
	}
	orig := float64(len(counter(whole.ChunkAt(0))))
	acc := accuracy(r.Raw, orig, r.NoiseScale)
	cfg.printf("%-4s %-34s %-10s %12.0f %12.0f %8.2f%%\n",
		"Q13", "people entering south, exiting north", p.Name, orig, r.Value, acc*100)
	sum.set("q13_accuracy", acc)
	return nil
}
