package experiments

import (
	"testing"
)

// testConfig is a tiny-scale configuration: shapes must hold even
// here, though absolute accuracies improve with scale (DP noise is
// scale-free while signals grow).
func testConfig() Config { return Config{Scale: 0.02, Seed: 1} }

func runExp(t *testing.T, id string) *Summary {
	t.Helper()
	exp, ok := Get(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	sum, err := exp.Run(testConfig())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return sum
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table6", "ablation", "soak"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("%d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d = %q, want %q", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Paper == "" || all[i].Run == nil {
			t.Errorf("experiment %q incomplete", id)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Errorf("Get accepted unknown id")
	}
}

// TestTable1Shape: CV estimates must be conservative on every video
// despite substantial per-frame miss rates.
func TestTable1Shape(t *testing.T) {
	sum := runExp(t, "table1")
	for _, v := range []string{"campus", "highway", "urban"} {
		if sum.Metrics["conservative_"+v] != 1 {
			t.Errorf("%s: CV estimate %.1f not conservative vs GT %.1f",
				v, sum.Metrics["cv_"+v], sum.Metrics["gt_"+v])
		}
	}
	// Miss rates must be substantial and ordered like the paper:
	// highway < campus < urban.
	if !(sum.Metrics["missed_highway"] < sum.Metrics["missed_campus"] &&
		sum.Metrics["missed_campus"] < sum.Metrics["missed_urban"]) {
		t.Errorf("miss-rate ordering wrong: %v %v %v",
			sum.Metrics["missed_highway"], sum.Metrics["missed_campus"], sum.Metrics["missed_urban"])
	}
	if sum.Metrics["missed_urban"] < 0.5 {
		t.Errorf("urban miss rate %.2f, want the paper's harsh conditions (>0.5)", sum.Metrics["missed_urban"])
	}
}

// TestTable2Shape: splitting must never hurt, and must help on the
// busy videos.
func TestTable2Shape(t *testing.T) {
	sum := runExp(t, "table2")
	for _, v := range []string{"campus", "highway", "urban"} {
		if sum.Metrics["region_"+v] > sum.Metrics["frame_"+v] {
			t.Errorf("%s: region max exceeds frame max", v)
		}
	}
	for _, v := range []string{"highway", "urban"} {
		if sum.Metrics["reduction_"+v] < 1.3 {
			t.Errorf("%s: reduction %.2fx, want >=1.3x", v, sum.Metrics["reduction_"+v])
		}
	}
}

// TestTable3Shape: the zero-noise and argmax cases must be exact even
// at tiny scale; the tree queries must stay accurate.
func TestTable3Shape(t *testing.T) {
	sum := runExp(t, "table3")
	for _, q := range []string{"q10", "q11", "q12"} {
		if sum.Metrics[q+"_accuracy"] != 1 {
			t.Errorf("%s accuracy %.2f, want 1 (rho=0 => no noise)", q, sum.Metrics[q+"_accuracy"])
		}
		if sum.Metrics[q+"_noise"] != 0 {
			t.Errorf("%s noise %.3f, want 0", q, sum.Metrics[q+"_noise"])
		}
	}
	if sum.Metrics["q6_accuracy"] != 1 {
		t.Errorf("q6 argmax missed the busiest camera")
	}
	for _, q := range []string{"q7", "q8", "q9"} {
		if sum.Metrics[q+"_accuracy"] < 0.7 {
			t.Errorf("%s accuracy %.2f, want >=0.7 even at tiny scale", q, sum.Metrics[q+"_accuracy"])
		}
	}
	if sum.Metrics["q4_accuracy"] < 0.2 {
		t.Errorf("q4 accuracy %.2f collapsed", sum.Metrics["q4_accuracy"])
	}
}

// TestFig4Shape: the linger masks must slash max persistence on the
// videos with lingerers while retaining almost all objects.
func TestFig4Shape(t *testing.T) {
	sum := runExp(t, "fig4")
	for _, v := range []string{"highway", "urban"} {
		if sum.Metrics["factor_"+v] < 3 {
			t.Errorf("%s: mask factor %.2fx, want >=3x", v, sum.Metrics["factor_"+v])
		}
		if sum.Metrics["retained_"+v] < 0.9 {
			t.Errorf("%s: retained %.2f, want >=0.9", v, sum.Metrics["retained_"+v])
		}
	}
}

// TestFig5Shape: the busy videos must track the original within
// usable accuracy even at tiny scale.
func TestFig5Shape(t *testing.T) {
	sum := runExp(t, "fig5")
	if sum.Metrics["q2_accuracy"] < 0.5 {
		t.Errorf("q2 accuracy %.2f, want >=0.5", sum.Metrics["q2_accuracy"])
	}
	// Noise scales must be positive and ordered with Delta (campus
	// smallest).
	if !(sum.Metrics["q1_noise_scale"] < sum.Metrics["q2_noise_scale"] &&
		sum.Metrics["q2_noise_scale"] < sum.Metrics["q3_noise_scale"]) {
		t.Errorf("noise ordering wrong: %v %v %v",
			sum.Metrics["q1_noise_scale"], sum.Metrics["q2_noise_scale"], sum.Metrics["q3_noise_scale"])
	}
}

// TestFig6Shape: tiny chunks are noise-dominated — RMSE at c=1s must
// exceed RMSE at c=30s for every video at the realistic output cap.
func TestFig6Shape(t *testing.T) {
	sum := runExp(t, "fig6")
	for _, v := range []string{"campus", "highway", "urban"} {
		if sum.Metrics["rmse_c1_"+v] <= sum.Metrics["rmse_c30_"+v] {
			t.Errorf("%s: RMSE(c=1s)=%.0f not worse than RMSE(c=30s)=%.0f",
				v, sum.Metrics["rmse_c1_"+v], sum.Metrics["rmse_c30_"+v])
		}
	}
}

// TestFig7Shape: noise must decay monotonically with window size.
func TestFig7Shape(t *testing.T) {
	sum := runExp(t, "fig7")
	for _, v := range []string{"campus", "highway", "urban"} {
		if sum.Metrics["noise12h_"+v] >= sum.Metrics["noise2h_"+v] {
			t.Errorf("%s: noise did not decay with window: %v -> %v",
				v, sum.Metrics["noise2h_"+v], sum.Metrics["noise12h_"+v])
		}
	}
}

// TestFig8Shape: Eq. C.3's curve — α·e^ε at the bound, saturating far
// past it.
func TestFig8Shape(t *testing.T) {
	sum := runExp(t, "fig8")
	if p := sum.Metrics["p_at_bound_a0.01"]; p < 0.02 || p > 0.03 {
		t.Errorf("P(detect at bound, a=1%%) = %v, want ~e*0.01", p)
	}
	if p := sum.Metrics["p_at_12x_a0.2"]; p < 0.99 {
		t.Errorf("P(detect at 12x, a=20%%) = %v, want ~1", p)
	}
}

// TestTable6Shape: greedy masking must achieve a large reduction on
// every one of the ten videos.
func TestTable6Shape(t *testing.T) {
	sum := runExp(t, "table6")
	videos := []string{"campus", "highway", "urban", "grand-canal", "venice-rialto",
		"taipei", "shibuya", "beach", "warsaw", "uav"}
	for _, v := range videos {
		if sum.Metrics["reduction_"+v] < 4 {
			t.Errorf("%s: greedy reduction %.1fx, want >=4x", v, sum.Metrics["reduction_"+v])
		}
		if sum.Metrics["maskfrac_"+v] > 0.6 {
			t.Errorf("%s: mask fraction %.2f, want a minority of cells", v, sum.Metrics["maskfrac_"+v])
		}
	}
}

// TestFig3Shape: lingering must be spatially concentrated: the 90th
// percentile cell is far below the max on videos with lingerers (the
// hot region covers only a few percent of the frame).
func TestFig3Shape(t *testing.T) {
	sum := runExp(t, "fig3")
	for _, v := range []string{"highway", "urban"} {
		if sum.Metrics["p90cell_"+v] > sum.Metrics["maxcell_"+v]*0.5 {
			t.Errorf("%s: persistence not concentrated (p90=%v max=%v)",
				v, sum.Metrics["p90cell_"+v], sum.Metrics["maxcell_"+v])
		}
	}
}

// TestAblationShape: removing the mask must cost noise (the parked-car
// rho applies), and shrinking chunks below the persistence scale must
// cost noise too.
func TestAblationShape(t *testing.T) {
	sum := runExp(t, "ablation")
	if sum.Metrics["mask_benefit"] < 2 {
		t.Errorf("mask benefit %.2fx, want >=2x (unmasked rho includes parked cars)", sum.Metrics["mask_benefit"])
	}
	if sum.Metrics["chunk_benefit"] < 1.5 {
		t.Errorf("chunk benefit %.2fx, want >=1.5x", sum.Metrics["chunk_benefit"])
	}
	if sum.Metrics["rho_masked_sec"] >= sum.Metrics["rho_unmasked_sec"] {
		t.Errorf("masked rho %.0fs not below unmasked %.0fs",
			sum.Metrics["rho_masked_sec"], sum.Metrics["rho_unmasked_sec"])
	}
}

// TestEvalEngine exercises the exported deployment constructor used by
// cmd/privid.
func TestEvalEngine(t *testing.T) {
	cfg := testConfig()
	e, err := NewEvalEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Registry().Lookup("trees"); !ok {
		t.Errorf("standard executable 'trees' missing")
	}
	begin, end := EvalWindow(cfg)
	if !end.After(begin) {
		t.Errorf("bad window %v-%v", begin, end)
	}
	if FormatTimestamp(begin) == "" || DescribeEngine(cfg) == "" {
		t.Errorf("describe helpers empty")
	}
}
