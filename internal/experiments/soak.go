package experiments

import (
	"fmt"
	"os"

	"privid/internal/sim"
)

// runSoak exercises the claim behind §5-§7 that matters operationally
// but has no figure: the budget ledger and released aggregates stay
// correct under a concurrent multi-analyst fleet workload, including
// process restarts, crashes and WAL faults. It runs the deterministic
// fleet simulator twice — clean and under chaos — and reports the
// workload shape plus the invariant-violation count (the reproduction
// target is zero).
func runSoak(cfg Config) (*Summary, error) {
	sum := newSummary()
	cams := int(240 * cfg.scale())
	if cams < 6 {
		cams = 6
	}
	if cams > 1000 {
		cams = 1000
	}
	for _, chaos := range []bool{false, true} {
		sc := sim.Scenario{
			Fleet:    sim.FleetConfig{Cameras: cams, Seed: cfg.Seed, Minutes: 3},
			Workload: sim.WorkloadConfig{Analysts: 4, OpsPerAnalyst: 4, StandingQueries: 2},
		}
		if chaos {
			sc.Chaos = sim.ChaosConfig{Restarts: 1, Crashes: 1, TornWAL: true, HungExec: true, CacheThrash: true}
		}
		var err error
		if sc.StateDir, err = os.MkdirTemp("", "privid-soak-state-*"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(sc.StateDir)
		if sc.DiskCacheDir, err = os.MkdirTemp("", "privid-soak-cache-*"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(sc.DiskCacheDir)

		tb := &sim.RuntimeTB{}
		rep, fatal := soakRun(tb, sc)
		tb.RunCleanups()
		if fatal != nil {
			return nil, fatal
		}
		mode := "clean"
		if chaos {
			mode = "chaos"
		}
		cfg.printf("  %-5s seed %d: %d cams, %d ops (done %d denied %d lost %d), %d standing releases, "+
			"%d restarts, %d crashes, %d violations\n",
			mode, rep.Seed, rep.Cameras, rep.Ops, rep.Done, rep.Denied, rep.Lost,
			rep.StandingReleases, rep.Restarts, rep.Crashes, len(rep.Violations))
		for _, v := range rep.Violations {
			cfg.printf("    violation: %s\n", v)
		}
		sum.set(mode+"_ops_done", float64(rep.Done))
		sum.set(mode+"_standing_releases", float64(rep.StandingReleases))
		sum.set(mode+"_violations", float64(len(rep.Violations)))
	}
	return sum, nil
}

// soakRun converts RuntimeTB's Fatalf panic into an error so one
// broken mode doesn't abort the whole experiment sweep uncleanly.
func soakRun(tb *sim.RuntimeTB, sc sim.Scenario) (rep *sim.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			if fe, ok := r.(sim.FatalError); ok {
				err = fmt.Errorf("soak: %w", fe)
				return
			}
			panic(r)
		}
	}()
	return sim.Run(tb, sc), nil
}
