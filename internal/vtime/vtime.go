// Package vtime provides frame/time arithmetic for video streams.
//
// Privid measures privacy policies (ρ) and chunk sizes in wall-clock
// seconds but executes over discrete frames. This package anchors a
// stream of frames at a wall-clock start time and converts between the
// two domains, and provides half-open frame intervals used throughout
// the system (chunking, budget accounting, event bounds).
package vtime

import (
	"fmt"
	"time"
)

// FrameRate is a video frame rate in frames per second. Privid requires
// chunk durations and strides to correspond to an integer number of
// frames (Appendix D), so rates are integral.
type FrameRate int

// Frames returns the exact number of frames spanned by d, or an error if
// d does not correspond to an integer frame count at rate r (the paper
// rejects such durations: "0.25 seconds is not permitted" at 30 fps).
func (r FrameRate) Frames(d time.Duration) (int64, error) {
	if r <= 0 {
		return 0, fmt.Errorf("vtime: non-positive frame rate %d", r)
	}
	if d < 0 {
		return 0, fmt.Errorf("vtime: negative duration %v", d)
	}
	// A frame boundary may not land on a whole nanosecond (e.g. one
	// frame at 24 fps), so tolerate sub-nanosecond rounding: accept d
	// if it is within one nanosecond of an exact frame count.
	total := d.Nanoseconds() * int64(r)
	n := (total + int64(time.Second)/2) / int64(time.Second)
	if diff := total - n*int64(time.Second); diff >= int64(r) || diff <= -int64(r) {
		return 0, fmt.Errorf("vtime: duration %v is not an integer number of frames at %d fps", d, r)
	}
	return n, nil
}

// FramesCeil returns the minimum whole number of frames that covers d.
// It is used for policy margins (ρ) where rounding up is the
// conservative direction.
func (r FrameRate) FramesCeil(d time.Duration) int64 {
	if r <= 0 || d <= 0 {
		return 0
	}
	total := d.Nanoseconds() * int64(r)
	n := total / int64(time.Second)
	if total%int64(time.Second) != 0 {
		n++
	}
	return n
}

// Duration returns the wall-clock duration of n frames at rate r.
func (r FrameRate) Duration(n int64) time.Duration {
	if r <= 0 {
		return 0
	}
	return time.Duration(n * int64(time.Second) / int64(r))
}

// Seconds returns the duration of n frames in seconds.
func (r FrameRate) Seconds(n int64) float64 {
	if r <= 0 {
		return 0
	}
	return float64(n) / float64(r)
}

// Clock anchors frame index 0 at a wall-clock instant.
type Clock struct {
	Start time.Time
	Rate  FrameRate
}

// FrameAt returns the index of the frame covering instant t. Instants
// before Start map to negative indices.
func (c Clock) FrameAt(t time.Time) int64 {
	d := t.Sub(c.Start)
	n := d.Nanoseconds() * int64(c.Rate) / int64(time.Second)
	if d < 0 && (d.Nanoseconds()*int64(c.Rate))%int64(time.Second) != 0 {
		n-- // floor toward -inf for pre-start instants
	}
	return n
}

// TimeOf returns the wall-clock instant of frame index i.
func (c Clock) TimeOf(i int64) time.Time {
	return c.Start.Add(c.Rate.Duration(i))
}

// Interval is a half-open range of frame indices [Start, End).
type Interval struct {
	Start, End int64
}

// NewInterval returns the interval [start, end), normalizing empty or
// inverted ranges to the canonical empty interval at start.
func NewInterval(start, end int64) Interval {
	if end < start {
		end = start
	}
	return Interval{Start: start, End: end}
}

// Len returns the number of frames in the interval.
func (iv Interval) Len() int64 {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End - iv.Start
}

// Empty reports whether the interval contains no frames.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Contains reports whether frame i lies in the interval.
func (iv Interval) Contains(i int64) bool { return i >= iv.Start && i < iv.End }

// Overlaps reports whether the two intervals share at least one frame.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start < o.End && o.Start < iv.End
}

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	s, e := max64(iv.Start, o.Start), min64(iv.End, o.End)
	return NewInterval(s, e)
}

// Union returns the smallest interval covering both. The inputs need not
// overlap; any gap between them is included.
func (iv Interval) Union(o Interval) Interval {
	if iv.Empty() {
		return o
	}
	if o.Empty() {
		return iv
	}
	return Interval{Start: min64(iv.Start, o.Start), End: max64(iv.End, o.End)}
}

// Expand widens the interval by margin frames on each side. Algorithm 1
// admits a query over [a, b] only if budget remains on [a−ρ, b+ρ]; Expand
// computes that admission interval.
func (iv Interval) Expand(margin int64) Interval {
	if iv.Empty() {
		return iv
	}
	return Interval{Start: iv.Start - margin, End: iv.End + margin}
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	return fmt.Sprintf("[%d,%d)", iv.Start, iv.End)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
